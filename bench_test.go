// Package repro's top-level benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (§4), plus the ablation
// benches of DESIGN.md §5. Each benchmark runs a bounded slice of the
// experiment so `go test -bench=.` terminates in minutes; the complete
// regeneration (all 60 kernels, full design spaces) is
// `go run ./cmd/flexcl-bench -exp all`, recorded in EXPERIMENTS.md.
package repro_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/rtlsim"
)

// quick bounds the per-iteration cost of the heavy suite benchmarks.
var quick = experiments.Config{MaxKernels: 3, SimMaxGroups: 4}

// BenchmarkTable2Rodinia regenerates Table 2 rows (per-kernel FlexCL and
// SDAccel estimation error + exploration time) over a Rodinia slice.
func BenchmarkTable2Rodinia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.Table2(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.AvgFlexCLErr, "flexcl-err-%")
		b.ReportMetric(sum.AvgSDAccelErr, "sdaccel-err-%")
	}
}

// BenchmarkPolybenchAccuracy regenerates the §4.2 PolyBench accuracy
// result (paper: 8.7 % average absolute error).
func BenchmarkPolybenchAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, sum, err := experiments.PolybenchAccuracy(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.AvgFlexCLErr, "flexcl-err-%")
	}
}

// BenchmarkFig4Hotspot3D regenerates the hotspot3D panel of Figure 4
// (estimated vs actual performance per design point).
func BenchmarkFig4Hotspot3D(b *testing.B) {
	benchFig4(b, "hotspot3D", "hotspot3D")
}

// BenchmarkFig4NN regenerates the nn panel of Figure 4.
func BenchmarkFig4NN(b *testing.B) {
	benchFig4(b, "nn", "nn")
}

func benchFig4(b *testing.B, benchName, kernel string) {
	b.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		b.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	for i := 0; i < b.N; i++ {
		r, err := dse.Explore(context.Background(), k, dse.Options{SimMaxGroups: 4, SkipBaseline: true})
		if err != nil {
			b.Fatal(err)
		}
		fe, _ := r.AvgErrors()
		b.ReportMetric(fe, "flexcl-err-%")
		b.ReportMetric(float64(len(r.Points)), "designs")
	}
}

// BenchmarkRobustnessKU060 regenerates the §4.2 robustness experiment
// (HotSpot + pathfinder on the UltraScale platform; paper: 9.7 %/13.6 %).
func BenchmarkRobustnessKU060(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Robustness(experiments.Config{SimMaxGroups: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.AvgErr, r.Kernel+"-err-%")
		}
	}
}

// BenchmarkDSESpeed measures the §4.3 exploration-speed claim: analytical
// evaluation of a full design space vs ground-truth simulation of the
// same space (the paper compares against hours of synthesis per point).
func BenchmarkDSESpeed(b *testing.B) {
	k := bench.Find("pathfinder", "dynproc")
	for i := 0; i < b.N; i++ {
		r, err := dse.Explore(context.Background(), k, dse.Options{SimMaxGroups: 4, SkipBaseline: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SimTime)/float64(r.ModelTime), "sim/model-x")
	}
}

// BenchmarkExploreParallel measures the sharded exploration engine:
// the same full exploration (model + baseline skipped, ground-truth
// simulation on) at one worker versus all cores. The two sub-benchmarks
// produce byte-identical Points (see dse.TestExploreDeterministic), so
// the wall-ms delta is pure scheduling win; on a single-core runner the
// two converge, on an n-core runner workers=all approaches n× for this
// simulation-dominated space.
func BenchmarkExploreParallel(b *testing.B) {
	k := bench.Find("pathfinder", "dynproc")
	if k == nil {
		b.Fatal("pathfinder/dynproc missing")
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=all", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := dse.Explore(context.Background(), k, dse.Options{
					SimMaxGroups: 4, SkipBaseline: true, Workers: bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.WallTime.Milliseconds()), "wall-ms")
				b.ReportMetric(float64(len(r.Points)), "designs")
			}
		})
	}
}

// BenchmarkDSEQuality measures the §4.3 selection-quality claims: gap to
// the true optimum (paper: 2.1 %) and speedup over the unoptimized design
// (paper: 273×).
func BenchmarkDSEQuality(b *testing.B) {
	kernels := []*bench.Kernel{
		bench.Find("nn", "nn"),
		bench.Find("kmeans", "swap"),
		bench.Find("pathfinder", "dynproc"),
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.DSEQuality(experiments.Config{SimMaxGroups: 4}, kernels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgGap, "gap-%")
		b.ReportMetric(r.AvgSpeedup, "speedup-x")
	}
}

// BenchmarkSearchComparison regenerates the §4.3 exhaustive-vs-heuristic
// comparison over a PolyBench slice (paper: 96 % vs 12 % optimal).
func BenchmarkSearchComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SearchComparison(experiments.Config{MaxKernels: 6, SimMaxGroups: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FlexCLOptimal*100, "flexcl-opt-%")
		b.ReportMetric(r.HeuristicOptimal*100, "heuristic-opt-%")
	}
}

// BenchmarkTable1Patterns regenerates Table 1: profiling the eight
// global-memory access-pattern latencies.
func BenchmarkTable1Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(experiments.Config{})
		if len(t.Rows) != 8 {
			b.Fatalf("pattern rows = %d", len(t.Rows))
		}
	}
}

// BenchmarkAblationMemoryPatterns (A1) measures the accuracy cost of
// replacing the eight-pattern memory model with one flat latency.
func BenchmarkAblationMemoryPatterns(b *testing.B) {
	benchAblation(b, model.Ablations{SingleMemLatency: true}, "A1")
}

// BenchmarkAblationSchedulingOverhead (A2) removes ΔL_schedule.
func BenchmarkAblationSchedulingOverhead(b *testing.B) {
	benchAblation(b, model.Ablations{NoSchedOverhead: true}, "A2")
}

// BenchmarkAblationSMSvsMII (A3) uses raw MII instead of the SMS-refined
// initiation interval.
func BenchmarkAblationSMSvsMII(b *testing.B) {
	benchAblation(b, model.Ablations{IIFromMII: true}, "A3")
}

// BenchmarkAblationCoalescing (A4) disables burst-coalescing modelling.
func BenchmarkAblationCoalescing(b *testing.B) {
	benchAblation(b, model.Ablations{NoCoalescing: true}, "A4")
}

func benchAblation(b *testing.B, ab model.Ablations, label string) {
	b.Helper()
	k := bench.Find("srad", "srad")
	p := device.Virtex7()
	designs := []model.Design{
		{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModeBarrier},
		{WGSize: 256, WIPipeline: true, PE: 2, CU: 2, Mode: model.ModeBarrier},
	}
	for i := 0; i < b.N; i++ {
		var full, ablated float64
		for _, d := range designs {
			f, err := k.Compile(d.WGSize)
			if err != nil {
				b.Fatal(err)
			}
			an, err := model.Analyze(context.Background(), f, p, k.Config(d.WGSize), model.AnalysisOptions{})
			if err != nil {
				b.Fatal(err)
			}
			f2, _ := k.Compile(d.WGSize)
			sim, err := rtlsim.Simulate(f2, p, k.Config(d.WGSize), d, rtlsim.Options{MaxGroups: 4})
			if err != nil {
				b.Fatal(err)
			}
			full += rtlsim.ErrorVs(an.Predict(d).Cycles, sim.Cycles)
			ablated += rtlsim.ErrorVs(an.PredictWith(d, ab).Cycles, sim.Cycles)
		}
		n := float64(len(designs))
		b.ReportMetric(full/n, "full-err-%")
		b.ReportMetric(ablated/n, label+"-err-%")
	}
}
