package flexclclient_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pkg/flexclclient"
)

// The client tests run end to end against a real serve.Server mounted
// in an httptest fixture — they are the executable form of the v2 API
// walkthrough in docs/API.md.

func newFixture(t *testing.T, cfg serve.Config) *flexclclient.Client {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return flexclclient.New(ts.URL, ts.Client())
}

func TestClientPredict(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
		Design: flexclclient.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: "pipeline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "hotspot/hotspot" || res.Cycles <= 0 {
		t.Fatalf("bad result: %+v", res)
	}

	// The second identical call is answered from the prediction cache.
	res, err = c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
		Design: flexclclient.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: "pipeline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "pred" {
		t.Errorf("cache = %q, want pred", res.Cache)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	_, err := c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "bogus/bogus"},
	})
	if !errors.Is(err, flexclclient.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	var ae *flexclclient.APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("err = %v, want *APIError with status 404", err)
	}
	if errors.Is(err, flexclclient.ErrShed) {
		t.Error("not_found must not match ErrShed")
	}

	_, err = c.Job(ctx, "zzz")
	if !errors.Is(err, flexclclient.ErrNotFound) {
		t.Fatalf("unknown job err = %v, want ErrNotFound", err)
	}
}

func TestClientBatch(t *testing.T) {
	c := newFixture(t, serve.Config{BatchTimeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := c.PredictBatch(ctx, flexclclient.BatchPredictRequest{
		Items: []flexclclient.PredictRequest{
			{Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
				Design: flexclclient.Design{WGSize: 64}},
			{Kernel: flexclclient.KernelRef{ID: "missing/missing"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 1 || out.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 1/1", out.Succeeded, out.Failed)
	}
	if out.Items[1].Error == nil || out.Items[1].Error.Code != "not_found" {
		t.Fatalf("item 1 error = %+v, want not_found", out.Items[1].Error)
	}
}

func TestClientExploreWaitJob(t *testing.T) {
	c := newFixture(t, serve.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	acc, err := c.Explore(ctx, flexclclient.ExploreRequest{
		Kernel: flexclclient.KernelRef{ID: "nn/nn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitJob(ctx, acc.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != flexclclient.JobDone {
		t.Fatalf("job state = %s (err %q), want done", v.State, v.Error)
	}
	if v.Summary == nil || v.Summary.Best == nil {
		t.Fatalf("bad summary: %+v", v.Summary)
	}
}

func TestClientKernels(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	list, err := c.Kernels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Count == 0 || len(list.Kernels) != list.Count {
		t.Fatalf("bad listing: count=%d kernels=%d", list.Count, len(list.Kernels))
	}
}
