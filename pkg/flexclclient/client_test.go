package flexclclient_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pkg/flexclclient"
)

// The client tests run end to end against a real serve.Server mounted
// in an httptest fixture — they are the executable form of the v2 API
// walkthrough in docs/API.md.

func newFixture(t *testing.T, cfg serve.Config) *flexclclient.Client {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return flexclclient.New(ts.URL, ts.Client())
}

func TestClientPredict(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
		Design: flexclclient.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: "pipeline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "hotspot/hotspot" || res.Cycles <= 0 {
		t.Fatalf("bad result: %+v", res)
	}

	// The second identical call is answered from the prediction cache.
	res, err = c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
		Design: flexclclient.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: "pipeline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "pred" {
		t.Errorf("cache = %q, want pred", res.Cache)
	}
}

func TestClientTypedErrors(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	_, err := c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "bogus/bogus"},
	})
	if !errors.Is(err, flexclclient.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	var ae *flexclclient.APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("err = %v, want *APIError with status 404", err)
	}
	if errors.Is(err, flexclclient.ErrShed) {
		t.Error("not_found must not match ErrShed")
	}

	_, err = c.Job(ctx, "zzz")
	if !errors.Is(err, flexclclient.ErrNotFound) {
		t.Fatalf("unknown job err = %v, want ErrNotFound", err)
	}
}

func TestClientBatch(t *testing.T) {
	c := newFixture(t, serve.Config{BatchTimeout: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := c.PredictBatch(ctx, flexclclient.BatchPredictRequest{
		Items: []flexclclient.PredictRequest{
			{Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
				Design: flexclclient.Design{WGSize: 64}},
			{Kernel: flexclclient.KernelRef{ID: "missing/missing"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 1 || out.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 1/1", out.Succeeded, out.Failed)
	}
	if out.Items[1].Error == nil || out.Items[1].Error.Code != "not_found" {
		t.Fatalf("item 1 error = %+v, want not_found", out.Items[1].Error)
	}
}

func TestClientExploreWaitJob(t *testing.T) {
	c := newFixture(t, serve.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	acc, err := c.Explore(ctx, flexclclient.ExploreRequest{
		Kernel: flexclclient.KernelRef{ID: "nn/nn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.WaitJob(ctx, acc.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != flexclclient.JobDone {
		t.Fatalf("job state = %s (err %q), want done", v.State, v.Error)
	}
	if v.Summary == nil || v.Summary.Best == nil {
		t.Fatalf("bad summary: %+v", v.Summary)
	}
}

func TestClientKernels(t *testing.T) {
	c := newFixture(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	list, err := c.Kernels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Count == 0 || len(list.Kernels) != list.Count {
		t.Fatalf("bad listing: count=%d kernels=%d", list.Count, len(list.Kernels))
	}
}

// TestClientRequestID: every client call stamps an X-Request-ID, and a
// typed error carries the server-echoed id so users can quote it
// against the access log and /debug/traces/{id}.
func TestClientRequestID(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		mu.Lock()
		if id == "" {
			t.Error("client request missing X-Request-ID")
		} else if seen[id] {
			t.Errorf("request id %q reused", id)
		}
		seen[id] = true
		mu.Unlock()
		w.Header().Set("X-Request-ID", id)
		http.Error(w, `{"error":{"code":"not_found","message":"nope"}}`, http.StatusNotFound)
	}))
	t.Cleanup(backend.Close)
	c := flexclclient.New(backend.URL, backend.Client())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, err := c.Job(ctx, "x")
		var ae *flexclclient.APIError
		if !errors.As(err, &ae) {
			t.Fatalf("err = %v, want *APIError", err)
		}
		if ae.RequestID == "" || !seen[ae.RequestID] {
			t.Errorf("APIError.RequestID = %q, not a sent id", ae.RequestID)
		}
		if !strings.Contains(ae.Error(), ae.RequestID) {
			t.Errorf("Error() %q does not quote the request id", ae.Error())
		}
	}
}

// TestClientRequestIDFallback: when the response carries no echo (a
// proxy answered), the error still carries the id the client sent.
func TestClientRequestIDFallback(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "proxy error", http.StatusBadGateway)
	}))
	t.Cleanup(backend.Close)
	c := flexclclient.New(backend.URL, backend.Client())
	_, err := c.Job(context.Background(), "x")
	var ae *flexclclient.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if !strings.HasPrefix(ae.RequestID, "cli-") {
		t.Errorf("RequestID = %q, want the client-sent cli-… id", ae.RequestID)
	}
}

// TestClientEndToEndTraceFetch: the id on a successful server round
// trip keys a retrievable trace — the correlation loop the request id
// exists for, exercised through the real server.
func TestClientEndToEndTraceFetch(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := serve.New(serve.Config{Logger: log})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	c := flexclclient.New(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Predict(ctx, flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"},
		Design: flexclclient.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: "pipeline"},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Tracer().List()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trace recorded for the client predict")
		}
		time.Sleep(10 * time.Millisecond)
	}
	id := s.Tracer().List()[0].ID
	if !strings.HasPrefix(id, "cli-") {
		t.Errorf("trace id = %q, want the client-stamped cli-… id", id)
	}
	resp, err := http.Get(ts.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/traces/%s = %d, want 200", id, resp.StatusCode)
	}
}
