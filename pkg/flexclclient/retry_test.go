package flexclclient

// White-box tests for the retry half of the shed/backoff loop: the
// RetryPolicy delay schedule, RFC 9110 Retry-After parsing (both
// delta-seconds and HTTP-date), and the do() loop wired to a fake
// sleeper so no test actually waits.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, false},
		{"120", 120, true},
		{"0", 0, true},
		// RFC 9110 says delay-seconds is non-negative; a negative value
		// is a server bug and must clamp to "retry now", never to a
		// negative backoff.
		{"-5", 0, true},
		{" 7 ", 7, true},
		// HTTP-date, 90 seconds in the future.
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90, true},
		// A date already in the past means retry immediately.
		{now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"soon", 0, false},
		{"Fri, 32 Foo 2026 99:99:99 GMT", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%d, %v), want (%d, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// HTTP dates carry whole seconds but now does not: a fractional
	// remainder rounds the wait up, never down below the server's ask.
	frac := now.Add(500 * time.Millisecond)
	if got, ok := parseRetryAfter(now.Add(2*time.Second).Format(http.TimeFormat), frac); !ok || got != 2 {
		t.Errorf("fractional remainder = (%d, %v), want ceil to 2s", got, ok)
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10}.withDefaults()
	if p.BaseDelay != 100*time.Millisecond || p.MaxDelay != 5*time.Second {
		t.Fatalf("defaults = %+v", p)
	}
	// Exponential: 100ms, 200ms, 400ms, ... capped at MaxDelay.
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second,
	} {
		if got := p.delay(i, nil); got != want {
			t.Errorf("delay(%d) = %v, want %v", i, got, want)
		}
	}
	// A huge attempt index must not overflow into a negative shift.
	if got := p.delay(80, nil); got != p.MaxDelay {
		t.Errorf("delay(80) = %v, want the cap %v", got, p.MaxDelay)
	}
	// The server's Retry-After hint raises the delay when larger…
	hint := &APIError{Code: "shed", RetryAfterSeconds: 2}
	if got := p.delay(0, hint); got != 2*time.Second {
		t.Errorf("delay(0, hint 2s) = %v, want 2s", got)
	}
	// …never lowers it…
	if got := p.delay(6, hint); got != 5*time.Second {
		t.Errorf("delay(6, hint 2s) = %v, want the 5s backoff", got)
	}
	// …and stays inside MaxDelay even when the hint is absurd.
	big := &APIError{Code: "shed", RetryAfterSeconds: 3600}
	if got := p.delay(0, big); got != p.MaxDelay {
		t.Errorf("delay(0, hint 1h) = %v, want the cap %v", got, p.MaxDelay)
	}
}

// shedServer sheds the first n requests with 429 + Retry-After, then
// answers 200 with the given body.
func shedServer(t *testing.T, n int, retryAfter string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int32(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"shed","message":"over capacity"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"j1","state":"done"}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// fakeSleep records requested backoffs without waiting.
func fakeSleep(into *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*into = append(*into, d)
		return ctx.Err()
	}
}

// TestRetryShedThenSucceed: with a policy, the client absorbs shed
// responses, waits the schedule (raised to the server hint) and
// delivers the eventual success to the caller.
func TestRetryShedThenSucceed(t *testing.T) {
	ts, calls := shedServer(t, 2, "1")
	var slept []time.Duration
	c := New(ts.URL, ts.Client()).WithRetry(RetryPolicy{MaxAttempts: 4})
	c.sleep = fakeSleep(&slept)

	v, err := c.Job(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone {
		t.Fatalf("state = %q", v.State)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 shed + 1 success)", got)
	}
	// Both backoffs honor the 1s Retry-After hint (the bare schedule
	// would have been 100ms and 200ms).
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Errorf("slept %v, want [1s 1s]", slept)
	}
}

// TestRetryHonorsHTTPDateHint: the hint works in the HTTP-date form
// too — the header parse feeds the same RetryAfterSeconds field the
// delay schedule reads.
func TestRetryHonorsHTTPDateHint(t *testing.T) {
	ts, _ := shedServer(t, 1, time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	var slept []time.Duration
	c := New(ts.URL, ts.Client()).WithRetry(RetryPolicy{MaxAttempts: 2})
	c.sleep = fakeSleep(&slept)
	if _, err := c.Job(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] < 2*time.Second || slept[0] > 3*time.Second {
		t.Errorf("slept %v, want ~3s from the HTTP-date hint", slept)
	}
}

// TestNoRetryWithoutPolicy: the historical contract — a client that
// never opted in fails fast on the first shed response.
func TestNoRetryWithoutPolicy(t *testing.T) {
	ts, calls := shedServer(t, 1, "1")
	c := New(ts.URL, ts.Client())
	_, err := c.Job(context.Background(), "j1")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

// TestRetryOnlyShed: non-shed failures are not retried even under a
// policy — only 429 guarantees the server performed no work.
func TestRetryOnlyShed(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":{"code":"not_found","message":"nope"}}`, http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)
	var slept []time.Duration
	c := New(ts.URL, ts.Client()).WithRetry(RetryPolicy{MaxAttempts: 5})
	c.sleep = fakeSleep(&slept)
	_, err := c.Job(context.Background(), "j1")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Errorf("not_found was retried: %d requests, %v slept", calls.Load(), slept)
	}
}

// TestRetryExhausted: a persistently shedding server yields the last
// shed error after exactly MaxAttempts tries.
func TestRetryExhausted(t *testing.T) {
	ts, calls := shedServer(t, 1000, "")
	var slept []time.Duration
	c := New(ts.URL, ts.Client()).WithRetry(RetryPolicy{MaxAttempts: 3})
	c.sleep = fakeSleep(&slept)
	_, err := c.Job(context.Background(), "j1")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
}

// TestRetryContextCanceled: a context cancelled during backoff aborts
// the loop with an error that reports both the cancellation and the
// shed it was waiting out.
func TestRetryContextCanceled(t *testing.T) {
	ts, calls := shedServer(t, 1000, "")
	c := New(ts.URL, ts.Client()).WithRetry(RetryPolicy{MaxAttempts: 5})
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(context.Context, time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.Job(ctx, "j1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests after cancellation, want 1", got)
	}
}

// TestWithRetryLeavesReceiver: WithRetry returns a copy; the original
// client keeps failing fast.
func TestWithRetryLeavesReceiver(t *testing.T) {
	ts, calls := shedServer(t, 1000, "")
	base := New(ts.URL, ts.Client())
	retrying := base.WithRetry(RetryPolicy{MaxAttempts: 2})
	var slept []time.Duration
	retrying.sleep = fakeSleep(&slept)

	if _, err := base.Job(context.Background(), "j1"); !errors.Is(err, ErrShed) {
		t.Fatalf("base err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("base client retried: %d requests", got)
	}
	if _, err := retrying.Job(context.Background(), "j1"); !errors.Is(err, ErrShed) {
		t.Fatalf("retrying err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("retrying client sent %d total requests, want 3", got)
	}
}
