package flexclclient_test

// Replica-awareness tests: peer list normalization, spread-path
// failover, bounded hedging, and the sticky routes that must never
// leave the primary. These run against scripted httptest backends so
// latency and failure are exact.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/flexclclient"
)

// fakeReplica answers /v2/predict with a canned result after an
// optional delay, counting the requests it saw.
func fakeReplica(t *testing.T, name string, delay time.Duration) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		// Drain the body so the server's background read can deliver the
		// client's first-wins cancellation to r.Context().
		io.Copy(io.Discard, r.Body)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return // hedging winner cancelled us
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"kernel":"hotspot/hotspot","cycles":42,"cache":"` + name + `"}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func predictReq() flexclclient.PredictRequest {
	return flexclclient.PredictRequest{Kernel: flexclclient.KernelRef{ID: "hotspot/hotspot"}}
}

func TestWithPeersDedupNormalize(t *testing.T) {
	c := flexclclient.New("http://a:1/", nil,
		flexclclient.WithPeers("http://a:1", "http://b:1/", " http://b:1", "http://c:1"))
	got := c.Peers()
	want := []string{"http://a:1", "http://b:1", "http://c:1"}
	if len(got) != len(want) {
		t.Fatalf("Peers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers() = %v, want %v (primary first, deduped, normalized)", got, want)
		}
	}
}

func TestClientFailoverOnDeadPrimary(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	alive, hits := fakeReplica(t, "alive", 0)

	c := flexclclient.New(deadURL, nil, flexclclient.WithPeers(deadURL, alive.URL))
	res, err := c.Predict(context.Background(), predictReq())
	if err != nil {
		t.Fatalf("spread route did not fail over: %v", err)
	}
	if res.Cycles != 42 || hits.Load() == 0 {
		t.Fatalf("failover answer = %+v (replica hits %d)", res, hits.Load())
	}
}

func TestClientStickyNeverFailsOver(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	alive, hits := fakeReplica(t, "alive", 0)

	c := flexclclient.New(deadURL, nil, flexclclient.WithPeers(deadURL, alive.URL))
	if _, err := c.Job(context.Background(), "job-1"); err == nil {
		t.Fatal("sticky route succeeded against a dead primary — it must not fail over")
	}
	if hits.Load() != 0 {
		t.Fatalf("sticky route touched a secondary replica %d times", hits.Load())
	}
}

func TestClientHedgeWinsOnSlowPrimary(t *testing.T) {
	slow, _ := fakeReplica(t, "slow", 2*time.Second)
	fast, fastHits := fakeReplica(t, "fast", 0)

	c := flexclclient.New(slow.URL, nil,
		flexclclient.WithPeers(slow.URL, fast.URL),
		flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: 10 * time.Millisecond}))
	t0 := time.Now()
	res, err := c.Predict(context.Background(), predictReq())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Fatalf("hedged predict took %v; the fast replica's answer should have won", elapsed)
	}
	if res.Cache != "fast" {
		t.Errorf("winner = %q, want the hedge's answer", res.Cache)
	}
	if fastHits.Load() != 1 {
		t.Errorf("hedge replica hits = %d, want 1", fastHits.Load())
	}
}

// TestClientHedgePromotedOnTransportError: a refused connection must
// launch the hedge immediately instead of burning the full delay.
func TestClientHedgePromotedOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	alive, _ := fakeReplica(t, "alive", 0)

	c := flexclclient.New(deadURL, nil,
		flexclclient.WithPeers(deadURL, alive.URL),
		flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: 30 * time.Second}))
	t0 := time.Now()
	res, err := c.Predict(context.Background(), predictReq())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("hedge waited %v after a transport error; promotion should be immediate", elapsed)
	}
	if res.Cycles != 42 {
		t.Fatalf("bad hedged answer: %+v", res)
	}
}

// TestClientHedgeVerdictWins: a typed API error from the first replica
// is a verdict — the client returns it rather than waiting out the
// hedge, and the retry policy stays in charge of sheds.
func TestClientHedgeVerdictWins(t *testing.T) {
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"unknown kernel"}}`))
	}))
	t.Cleanup(notFound.Close)
	slow, slowHits := fakeReplica(t, "slow", 2*time.Second)

	c := flexclclient.New(notFound.URL, nil,
		flexclclient.WithPeers(notFound.URL, slow.URL),
		flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: time.Hour}))
	_, err := c.Predict(context.Background(), predictReq())
	var apiErr *flexclclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want the primary's 404 verdict", err)
	}
	if slowHits.Load() != 0 {
		t.Errorf("hedge launched %d times despite an immediate verdict", slowHits.Load())
	}
}

func TestClientHedgeSingleReplicaNoop(t *testing.T) {
	only, hits := fakeReplica(t, "only", 0)
	c := flexclclient.New(only.URL, nil,
		flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: time.Millisecond}))
	res, err := c.Predict(context.Background(), predictReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 42 || hits.Load() != 1 {
		t.Fatalf("single-replica hedge: res=%+v hits=%d, want plain request", res, hits.Load())
	}
}

// TestClientSpreadRotation: successive spread-path calls rotate their
// first-choice replica so read load spreads across the fleet.
func TestClientSpreadRotation(t *testing.T) {
	a, aHits := fakeReplica(t, "a", 0)
	b, bHits := fakeReplica(t, "b", 0)
	c := flexclclient.New(a.URL, nil, flexclclient.WithPeers(a.URL, b.URL))
	for i := 0; i < 4; i++ {
		if _, err := c.Predict(context.Background(), predictReq()); err != nil {
			t.Fatal(err)
		}
	}
	if aHits.Load() != 2 || bHits.Load() != 2 {
		t.Errorf("rotation split = %d/%d over 4 calls, want 2/2", aHits.Load(), bHits.Load())
	}
}
