// Package flexclclient is the Go client for the flexcl-serve v2 HTTP
// API: synchronous predictions, batch predictions, asynchronous
// design-space exploration jobs and the kernel corpus listing.
//
// Every method takes a context.Context that bounds the whole call
// (connection, request and body decode); server-side failures come back
// as *APIError values that participate in errors.Is — shed responses
// (server over capacity, HTTP 429) match ErrShed and unknown
// kernels/jobs match ErrNotFound:
//
//	res, err := c.Predict(ctx, req)
//	if errors.Is(err, flexclclient.ErrShed) {
//	    backoff(flexclclient.RetryAfter(err))
//	}
//
// Construction takes functional options. A clustered deployment is
// addressed by listing its replicas and, optionally, hedging slow
// requests against a second replica:
//
//	c := flexclclient.New("http://replica-0:8080", nil,
//	    flexclclient.WithPeers("http://replica-1:8080", "http://replica-2:8080"),
//	    flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: 30 * time.Millisecond}),
//	    flexclclient.WithRetry(flexclclient.RetryPolicy{MaxAttempts: 4}))
//
// Stateless calls (Predict, PredictBatch, Kernels) rotate across the
// replica set and fail over when a replica is unreachable; job-scoped
// calls (Explore, Job, WaitJob) and Cluster stick to the primary
// replica, because exploration jobs live on the replica that accepted
// them.
package flexclclient

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve/api"
)

// Wire types, re-exported so client code needs only this package.
type (
	// Design is one design point (work-group size, pipelining, PE/CU
	// replication, communication mode).
	Design = api.Design
	// KernelRef names a kernel by corpus id, bench+kernel, or inline
	// OpenCL source.
	KernelRef = api.KernelRef
	// PredictRequest is one prediction (also the batch item shape).
	PredictRequest = api.PredictRequest
	// PredictResult is one prediction outcome.
	PredictResult = api.PredictResult
	// BatchPredictRequest is a multi-item prediction request.
	BatchPredictRequest = api.BatchPredictRequest
	// BatchPredictResponse carries per-item results in request order.
	BatchPredictResponse = api.BatchPredictResponse
	// BatchItem is one per-item batch outcome.
	BatchItem = api.BatchItem
	// ExploreRequest submits an asynchronous exploration job.
	ExploreRequest = api.ExploreRequest
	// JobAccepted acknowledges an exploration submission.
	JobAccepted = api.JobAccepted
	// JobView is the poll state of an exploration job.
	JobView = api.JobView
	// KernelList is the corpus listing.
	KernelList = api.KernelList
	// ClusterSnapshot is one replica's fleet view (GET /v2/cluster).
	ClusterSnapshot = cluster.Snapshot
	// PeerStats is one peer's health/traffic row in a ClusterSnapshot.
	PeerStats = cluster.PeerStats
)

// Job states, as reported in JobView.State.
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// Sentinel errors for errors.Is against *APIError responses.
var (
	// ErrShed matches 429 responses: the server's admission queue was
	// full and the request was refused without queueing work. Retry
	// after the hint returned by RetryAfter.
	ErrShed = errors.New("flexclclient: request shed, server over capacity")
	// ErrNotFound matches 404 responses (unknown kernel or job).
	ErrNotFound = errors.New("flexclclient: not found")
)

// APIError is a structured error response from the service.
type APIError struct {
	// Code is the machine-readable error code ("bad_request",
	// "not_found", "shed", "unavailable", "deadline", "internal").
	Code string
	// Message is the human-readable diagnostic.
	Message string
	// RetryAfterSeconds is the backoff hint on shed responses.
	RetryAfterSeconds int
	// Status is the HTTP status the error arrived with.
	Status int
	// RequestID is the correlation id of the failed request — the
	// server's X-Request-ID echo when present, else the id this client
	// sent. Quote it in bug reports: the server's access log and
	// /debug/traces/{id} are keyed by it.
	RequestID string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("flexcl-serve: %s (%s, HTTP %d, request %s)",
			e.Message, e.Code, e.Status, e.RequestID)
	}
	return fmt.Sprintf("flexcl-serve: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Is matches the sentinel errors by code, so call sites can use
// errors.Is(err, ErrShed) without unwrapping to *APIError.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrShed:
		return e.Code == api.CodeShed
	case ErrNotFound:
		return e.Code == api.CodeNotFound
	}
	return false
}

// RetryAfter extracts the backoff hint from a shed error, defaulting to
// one second when the error carries none (or is not an APIError).
func RetryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfterSeconds > 0 {
		return time.Duration(ae.RetryAfterSeconds) * time.Second
	}
	return time.Second
}

// RetryPolicy makes a client retry shed requests (ErrShed, HTTP 429)
// with bounded exponential backoff. A shed response is the one failure
// the server guarantees performed no work — the admission gate refused
// the request before queueing it — so every endpoint is safe to retry.
// Other failures (bad request, not found, deadline, transport errors)
// are never retried.
//
// The delay before attempt n is BaseDelay·2ⁿ, raised to the server's
// Retry-After hint when that is larger, and capped at MaxDelay; the
// request context bounds the whole exchange, retries included.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included
	// (≤ 1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps each delay, including server Retry-After hints
	// (0 = 5s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// delay returns the backoff before retry attempt (0-based: the delay
// after the attempt'th failure), honoring the shed response's
// Retry-After hint when it asks for more.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay { // overflow or past the cap
		d = p.MaxDelay
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfterSeconds > 0 {
		if hint := time.Duration(ae.RetryAfterSeconds) * time.Second; hint > d {
			d = hint
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// HedgePolicy makes a client launch a second, identical request
// against another replica when the first has not answered within
// Delay, racing the two and keeping whichever answers first (the loser
// is cancelled through its context). At most one hedge is ever in
// flight per call, and only stateless calls hedge — job submissions
// never run twice. Hedging needs at least two replicas (WithPeers);
// with one it is a no-op.
type HedgePolicy struct {
	// Delay is the latency threshold before the hedge launches
	// (0 disables hedging).
	Delay time.Duration
}

// Client talks to a flexcl-serve deployment — one replica, or a
// replica set via WithPeers. The zero value is not usable; construct
// with New.
type Client struct {
	base  string   // primary replica (New's baseURL)
	peers []string // full replica set, primary first
	http  *http.Client
	retry RetryPolicy
	hedge HedgePolicy
	// rr is the shared round-robin cursor for spread calls (a pointer,
	// so deprecated-style copies like WithRetry share the rotation).
	rr *atomic.Uint64
	// sleep is swapped out by tests; nil means a real timer wait.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option customizes a Client at construction; see New.
type Option func(*Client)

// WithRetry makes the client retry shed requests (ErrShed, 429) under
// the given policy.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// WithPeers adds replica base URLs to the client's set. The primary
// (New's baseURL) is always a member and stays first; duplicates and
// trailing slashes are folded away. Stateless calls rotate across the
// set and fail over past unreachable replicas.
func WithPeers(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u != "" && !slices.Contains(c.peers, u) {
				c.peers = append(c.peers, u)
			}
		}
	}
}

// WithHedge enables latency hedging for stateless calls (see
// HedgePolicy).
func WithHedge(p HedgePolicy) Option {
	return func(c *Client) { c.hedge = p }
}

// WithTransport sets the http.Client used for every exchange (nil is
// ignored, keeping the default).
func WithTransport(h *http.Client) Option {
	return func(c *Client) {
		if h != nil {
			c.http = h
		}
	}
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil (http.DefaultClient;
// WithTransport is the options-style spelling). Additional behavior —
// retries, replica awareness, hedging — is layered on with options.
func New(baseURL string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: httpClient,
		rr:   new(atomic.Uint64),
	}
	c.peers = []string{c.base}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithRetry returns a copy of the client that retries shed requests
// under the given policy. The receiver is unchanged.
//
// Deprecated: pass the package-level WithRetry option to New instead:
//
//	c := flexclclient.New(url, nil, flexclclient.WithRetry(flexclclient.RetryPolicy{MaxAttempts: 4}))
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p
	return &cp
}

// Peers returns the client's replica set, primary first.
func (c *Client) Peers() []string { return append([]string(nil), c.peers...) }

// routing classifies a call's relationship to the replica set.
type routing int

const (
	// sticky calls address the primary replica only: job state lives on
	// the replica that accepted the job, and submissions must not run
	// twice.
	sticky routing = iota
	// spread calls are stateless and idempotent: any replica answers
	// identically, so they rotate, fail over and hedge.
	spread
)

// Predict runs one synchronous prediction.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*PredictResult, error) {
	var out PredictResult
	if err := c.do(ctx, http.MethodPost, "/v2/predict", req, &out, spread); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictBatch runs N predictions in one request. Per-item failures do
// not fail the call — inspect BatchItem.Error; the returned error is
// non-nil only when the batch envelope itself was rejected.
func (c *Client) PredictBatch(ctx context.Context, req BatchPredictRequest) (*BatchPredictResponse, error) {
	var out BatchPredictResponse
	if err := c.do(ctx, http.MethodPost, "/v2/predict:batch", req, &out, spread); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explore submits an asynchronous exploration job; poll it with Job or
// WaitJob. Submissions go to the primary replica and are never hedged
// or failed over — a retried submission would create a second job.
func (c *Client) Explore(ctx context.Context, req ExploreRequest) (*JobAccepted, error) {
	var out JobAccepted
	if err := c.do(ctx, http.MethodPost, "/v2/explore", req, &out, sticky); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the current state of an exploration job (from the
// primary replica — jobs live where they were submitted).
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var out JobView
	if err := c.do(ctx, http.MethodGet, "/v2/jobs/"+id, nil, &out, sticky); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cluster fetches the primary replica's fleet view: ring version, peer
// table, per-peer health and forward counters.
func (c *Client) Cluster(ctx context.Context) (*ClusterSnapshot, error) {
	var out ClusterSnapshot
	if err := c.do(ctx, http.MethodGet, "/v2/cluster", nil, &out, sticky); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal state (done, failed
// or canceled) or ctx expires. poll is the polling interval (0 = 250ms).
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobView, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Kernels lists the bundled benchmark corpus.
func (c *Client) Kernels(ctx context.Context) (*KernelList, error) {
	var out KernelList
	if err := c.do(ctx, http.MethodGet, "/v2/kernels", nil, &out, spread); err != nil {
		return nil, err
	}
	return &out, nil
}

// reqSeq + reqPrefix generate per-request correlation ids: a random
// per-process prefix plus an atomic counter, unique across concurrent
// clients in one process and across processes.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
)

func newRequestID() string {
	return fmt.Sprintf("cli-%s-%d", reqPrefix, reqSeq.Add(1))
}

// do performs one logical API exchange: encode the body, route it
// across the replica set per mode, retry shed responses when the
// client carries a RetryPolicy. Each attempt is a fresh request with
// its own X-Request-ID.
func (c *Client) do(ctx context.Context, method, path string, body, out any, mode routing) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return fmt.Errorf("flexclclient: encoding request: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	policy := c.retry.withDefaults()
	for attempt := 0; ; attempt++ {
		raw, err := c.exchange(ctx, method, path, buf, mode)
		if err == nil {
			if out == nil {
				return nil
			}
			if uerr := json.Unmarshal(raw, out); uerr != nil {
				return fmt.Errorf("flexclclient: decoding %s %s response: %w", method, path, uerr)
			}
			return nil
		}
		if !errors.Is(err, ErrShed) || attempt+1 >= attempts {
			return err
		}
		if serr := c.wait(ctx, policy.delay(attempt, err)); serr != nil {
			// Context expired mid-backoff: surface the shed error (it
			// names the request id) wrapped with the context cause.
			return fmt.Errorf("flexclclient: giving up during retry backoff: %w (last error: %v)", serr, err)
		}
	}
}

// exchange routes one attempt across the replica set. Sticky calls go
// to the primary replica, full stop. Spread calls walk the rotated set
// — hedged when a HedgePolicy is armed and a second replica exists,
// sequential with failover otherwise.
func (c *Client) exchange(ctx context.Context, method, path string, body []byte, mode routing) ([]byte, error) {
	if mode == sticky {
		return c.sequential(ctx, method, path, body, c.peers[:1], false)
	}
	bases := c.rotation()
	if c.hedge.Delay > 0 && len(bases) > 1 {
		return c.hedged(ctx, method, path, body, bases)
	}
	return c.sequential(ctx, method, path, body, bases, true)
}

// rotation returns the replica set starting at the round-robin cursor:
// spread calls distribute load across the fleet while each call still
// sees every replica as a failover or hedge candidate.
func (c *Client) rotation() []string {
	if len(c.peers) <= 1 {
		return c.peers
	}
	start := int((c.rr.Add(1) - 1) % uint64(len(c.peers)))
	out := make([]string, 0, len(c.peers))
	for i := range c.peers {
		out = append(out, c.peers[(start+i)%len(c.peers)])
	}
	return out
}

// sequential tries bases in order. A server verdict — success or a
// typed API error — ends the walk; transport errors fall through to
// the next replica when failover is on.
func (c *Client) sequential(ctx context.Context, method, path string, body []byte, bases []string, failover bool) ([]byte, error) {
	var lastErr error
	for _, base := range bases {
		raw, err := c.roundTrip(ctx, method, base+path, body)
		var ae *APIError
		if err == nil || errors.As(err, &ae) {
			return raw, err
		}
		lastErr = err
		if !failover || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// hedged races the request against bases[0] and — once the hedge delay
// passes without a verdict, or immediately when the first attempt dies
// in transport — against bases[1]. The first server verdict (success
// or typed API error) wins and cancels the straggler through its
// context; the call fails only when every launched attempt failed.
func (c *Client) hedged(ctx context.Context, method, path string, body []byte, bases []string) ([]byte, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // first-wins: reels the losing attempt in
	type attempt struct {
		raw []byte
		err error
	}
	resc := make(chan attempt, 2)
	start := func(base string) {
		go func() {
			raw, err := c.roundTrip(hctx, method, base+path, body)
			resc <- attempt{raw, err}
		}()
	}
	start(bases[0])
	inflight, settled := 1, 0
	timer := time.NewTimer(c.hedge.Delay)
	defer timer.Stop()
	timerC := timer.C
	var lastErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			start(bases[1])
			inflight++
		case r := <-resc:
			settled++
			var ae *APIError
			if r.err == nil || errors.As(r.err, &ae) {
				return r.raw, r.err
			}
			lastErr = r.err
			if ctx.Err() != nil {
				return nil, lastErr
			}
			if inflight < 2 {
				// The first attempt died before the hedge timer fired:
				// promote the hedge immediately.
				timerC = nil
				start(bases[1])
				inflight++
			} else if settled == inflight {
				return nil, lastErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// wait sleeps for d or until ctx is done.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// roundTrip performs one HTTP exchange: stamp a fresh X-Request-ID for
// server-side correlation, send, map non-2xx responses to *APIError
// (carrying the request id), return the raw 2xx body.
func (c *Client) roundTrip(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, fmt.Errorf("flexclclient: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	reqID := newRequestID()
	req.Header.Set("X-Request-ID", reqID)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("flexclclient: %s %s: %w", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp, reqID)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("flexclclient: reading %s %s response: %w", method, url, err)
	}
	return raw, nil
}

// decodeError maps an error response to *APIError. v2 bodies carry
// {"error": {code, message, ...}}; anything else (v1 bodies, proxies)
// degrades to a synthesized code from the status. sentID is the
// request id this client stamped, the fallback when the response
// carries no echo (e.g. a proxy answered before the service).
func decodeError(resp *http.Response, sentID string) error {
	ae := &APIError{Status: resp.StatusCode, RequestID: sentID}
	if echo := resp.Header.Get("X-Request-ID"); echo != "" {
		ae.RequestID = echo
	}
	var envelope struct {
		Error json.RawMessage `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(raw, &envelope) == nil && len(envelope.Error) > 0 {
		var typed struct {
			Code              string `json:"code"`
			Message           string `json:"message"`
			RetryAfterSeconds int    `json:"retry_after_seconds"`
		}
		var flat string
		switch {
		case json.Unmarshal(envelope.Error, &typed) == nil && typed.Code != "":
			ae.Code, ae.Message = typed.Code, typed.Message
			ae.RetryAfterSeconds = typed.RetryAfterSeconds
		case json.Unmarshal(envelope.Error, &flat) == nil:
			ae.Message = flat
		}
	}
	if ae.Code == "" {
		switch resp.StatusCode {
		case http.StatusNotFound:
			ae.Code = api.CodeNotFound
		case http.StatusTooManyRequests:
			ae.Code = api.CodeShed
		case http.StatusServiceUnavailable:
			ae.Code = api.CodeUnavailable
		case http.StatusGatewayTimeout:
			ae.Code = api.CodeDeadline
		case http.StatusBadRequest:
			ae.Code = api.CodeBadRequest
		default:
			ae.Code = api.CodeInternal
		}
	}
	if ae.Message == "" {
		ae.Message = http.StatusText(resp.StatusCode)
	}
	if ae.RetryAfterSeconds == 0 {
		if secs, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			ae.RetryAfterSeconds = secs
		}
	}
	return ae
}

// parseRetryAfter reads a Retry-After header value in either RFC 9110
// form: delay-seconds ("120") or an HTTP-date ("Fri, 07 Aug 2026
// 15:04:05 GMT", interpreted relative to now and rounded up to whole
// seconds). Negative delays — a malformed header or a date already in
// the past — clamp to zero: "retry immediately", never a negative
// backoff. ok is false when the value parses as neither form.
func parseRetryAfter(v string, now time.Time) (seconds int, ok bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			secs = 0
		}
		return secs, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d <= 0 {
			return 0, true
		}
		return int(math.Ceil(d.Seconds())), true
	}
	return 0, false
}
