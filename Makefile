GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet test race cover serve fuzz-smoke bench-explore bench-serve bench-dse bench-profile bench-trace bench-replay check check-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The exploration engine shards design points over goroutines; every
# test must stay clean under the race detector.
race:
	$(GO) test -race ./...

# Coverage profile + per-function summary (coverage.out/coverage.txt are
# uploaded as a CI artifact).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out > coverage.txt
	@tail -n 1 coverage.txt

# Run the HTTP prediction/DSE service (see docs/SERVE.md).
serve:
	$(GO) run ./cmd/flexcl-serve

# Short fuzzing pass over the frontend targets: the seed corpora (all
# bundled Rodinia/PolyBench kernels plus hostile fragments) run on every
# plain `go test`; this additionally mutates for $(FUZZTIME) per target.
# Patterns are anchored: an unanchored -fuzz=FuzzParse matches both
# FuzzParse and FuzzParser and `go test` refuses to fuzz at all.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzLexer$$' -fuzztime=$(FUZZTIME) ./internal/opencl/lexer
	$(GO) test -run='^$$' -fuzz='^FuzzParser$$' -fuzztime=$(FUZZTIME) ./internal/opencl/parser
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/opencl/parser
	$(GO) test -run='^$$' -fuzz='^FuzzLowerBound$$' -fuzztime=$(FUZZTIME) ./internal/dse
	$(GO) test -run='^$$' -fuzz='^FuzzAffineAnalyzer$$' -fuzztime=$(FUZZTIME) ./internal/interp

# Serial-vs-parallel exploration wall time (see docs/MODEL.md
# "Exploration performance").
bench-explore:
	$(GO) test -run='^$$' -bench=BenchmarkExploreParallel -benchtime=3x .

# Prediction-path benchmarks: coalesced vs uncoalesced concurrent
# predictions (compare the computes/op metric — the singleflight prep
# cache turns 32 compile+analyze executions into 1), the cache-hit
# latency floor, and the cold-start vs warm-restart proof — the stride-6
# corpus served twice against one artifact directory, with per-request
# p50/p99, compute counts and the zero-recompute warm restart written to
# BENCH_serve.json (a CI artifact). See docs/API.md "Coalescing" and
# docs/SERVE.md "Persistent artifacts".
bench-serve:
	$(GO) test -run='^$$' -bench='BenchmarkPredict|BenchmarkServe' -benchtime=1x ./internal/serve
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -run='^TestWarmRestartArtifact$$' -count=1 -v ./internal/serve

# Guided search vs exhaustive exploration: per-kernel evaluations, wall
# time and speedup, written to BENCH_dse.json (a CI artifact). Uses the
# smoke kernel subset; BENCH_DSE_FLAGS=-bench-all runs all 60 kernels.
bench-dse:
	$(GO) run ./cmd/flexcl-dse -bench-json BENCH_dse.json $(BENCH_DSE_FLAGS)

# Static profiler fast path vs the interpreter: per-kernel prep wall
# time and speedup, written to BENCH_profile.json (a CI artifact). Uses
# the smoke kernel subset; BENCH_PROFILE_FLAGS=-all runs the full corpus
# plus the generated families.
bench-profile:
	$(GO) run ./cmd/flexcl-profile -json BENCH_profile.json $(BENCH_PROFILE_FLAGS)

# Tracing overhead proof: the predict hot path benchmarked with the
# tracer on vs off, written to BENCH_trace.json (a CI artifact). The
# budget is <3% overhead; the artifact records the measured ratio. See
# docs/OBSERVABILITY.md.
bench-trace:
	BENCH_TRACE_JSON=$(CURDIR)/BENCH_trace.json $(GO) test -run='^TestTraceOverheadArtifact$$' -count=1 -v ./internal/serve

# Clustered-serving replay: 1-replica vs 3-replica in-process fleets
# replay a randomized corpus stream; fleet-wide compute counts and
# request p50/p99 land in BENCH_replay.json (a CI artifact). The run
# fails unless every fleet keeps the compile-once property (fleet-wide
# computes == distinct keys). See docs/SERVE.md "Clustered serving".
bench-replay:
	$(GO) run ./cmd/flexcl-replay -out BENCH_replay.json $(BENCH_REPLAY_FLAGS)

# Cross-layer correctness audit (see docs/CHECK.md): model invariants,
# differential bands vs the simulator, serve consistency. check-smoke is
# the time-boxed subset CI runs on every push; check is the full corpus.
check:
	$(GO) run ./cmd/flexcl-check

# check-smoke also runs tracelint: every telemetry span must be ended or
# delegated (see cmd/tracelint) — an unended span never reaches the
# trace ring and skews the stage histograms.
check-smoke:
	$(GO) run ./cmd/tracelint -root .
	$(GO) run ./cmd/flexcl-check -smoke -timeout 5m

ci: build vet race fuzz-smoke bench-dse bench-profile bench-trace bench-replay check-smoke
