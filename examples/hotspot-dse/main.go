// Hotspot design-space exploration: the motivating use case of the paper
// (§1, §4.3). Synthesizing one OpenCL-to-FPGA design takes hours; FlexCL
// ranks the ~150-point design space of the Rodinia hotspot kernel in
// well under a second, and the example then validates the top picks
// against the cycle-level simulator.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	k := bench.Find("hotspot", "hotspot")
	if k == nil {
		log.Fatal("hotspot kernel not registered")
	}
	platform := core.Virtex7()

	// Phase 1: model-only exploration (this is what replaces hours of
	// synthesis per design point), sharded over every core. Workers: 1
	// would produce the identical ranking, just serially.
	modelOnly, err := core.ExploreOpts(context.Background(), k, core.ExploreOptions{
		Platform:   platform,
		SkipActual: true, SkipBaseline: true,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranked %d designs analytically in %v (%d workers, %v of model work)\n\n",
		len(modelOnly.Points), modelOnly.WallTime.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), modelOnly.ModelTime.Round(time.Millisecond))

	pts := modelOnly.Points
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Est < pts[j].Est })

	// Phase 2: validate the 5 best and 2 worst picks in the simulator.
	fmt.Println("design                               estimate     simulated")
	check := append(append([]int{}, 0, 1, 2, 3, 4), len(pts)-2, len(pts)-1)
	for _, idx := range check {
		pt := pts[idx]
		f, err := k.Compile(pt.Design.WGSize)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := core.Simulate(f, platform, k.Config(pt.Design.WGSize), pt.Design, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %9.0f cy %9.0f cy\n", pt.Design, pt.Est, sim.Cycles)
	}

	best := pts[0]
	worst := pts[len(pts)-1]
	fmt.Printf("\nbest/worst estimated ratio: %.0fx — the design space matters\n",
		worst.Est/best.Est)
	fmt.Printf("hotspot contains a barrier, so every design runs in %v mode\n",
		core.ModeBarrier)
}
