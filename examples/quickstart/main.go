// Quickstart: compile a small OpenCL kernel, analyze it for the Virtex-7
// platform, and compare the FlexCL analytical estimate against the
// cycle-level simulator at a few design points — the whole FlexCL flow
// (Figure 2 of the paper) in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
)

const saxpy = `
__kernel void saxpy(__global const float* x, __global float* y, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = 2.5f * x[i] + y[i];
    }
}`

func main() {
	prog, err := core.Compile("saxpy.cl", []byte(saxpy), nil)
	if err != nil {
		log.Fatal(err)
	}
	k := prog.Kernel("saxpy")
	platform := core.Virtex7()

	const n = 4096
	makeLaunch := func(wg int64) *core.Launch {
		x := core.NewFloatBuffer(core.Float, n)
		y := core.NewFloatBuffer(core.Float, n)
		for i := 0; i < n; i++ {
			x.F[i] = float64(i) * 0.25
			y.F[i] = 1.0
		}
		return &core.Launch{
			Range:   core.NDRange{Global: [3]int64{n}, Local: [3]int64{wg}},
			Buffers: map[string]*core.Buffer{"x": x, "y": y},
			Scalars: map[string]core.Arg{"n": core.IntArg(n)},
		}
	}

	designs := []core.Design{
		{WGSize: 64, WIPipeline: false, PE: 1, CU: 1, Mode: core.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: core.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: core.ModePipeline},
		{WGSize: 256, WIPipeline: true, PE: 8, CU: 4, Mode: core.ModePipeline},
	}

	fmt.Println("design                               estimate     simulated    error")
	for _, d := range designs {
		an, err := core.Analyze(context.Background(), k, platform, makeLaunch(d.WGSize))
		if err != nil {
			log.Fatal(err)
		}
		est := an.Predict(d)
		sim, err := core.Simulate(k, platform, makeLaunch(d.WGSize), d, 0)
		if err != nil {
			log.Fatal(err)
		}
		errPct := (est.Cycles - sim.Cycles) / sim.Cycles * 100
		fmt.Printf("%-36s %9.0f cy %9.0f cy %+6.1f%%\n",
			d, est.Cycles, sim.Cycles, errPct)
	}

	// The estimate also converts to wall time on the platform clock.
	an, _ := core.Analyze(context.Background(), k, platform, makeLaunch(64))
	best := an.Predict(designs[2])
	fmt.Printf("\nbest shown design runs in ~%.1f µs at %.0f MHz\n",
		best.Seconds*1e6, platform.ClockMHz)
}
