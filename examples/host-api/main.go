// Host-API example: the OpenCL host/kernel split of Figure 1 expressed
// through package host. Code structured like a real OpenCL host program
// (context → program → kernel → set args → enqueue) gains two extra
// verbs: Estimate (the FlexCL analytical model) and Simulate (the
// cycle-level ground truth) — performance introspection without leaving
// the host API.
package main

import (
	"fmt"
	"log"

	"repro/internal/host"
	"repro/internal/interp"
	"repro/internal/model"
	"repro/internal/opencl/ast"
)

const src = `
__kernel void dot_chunks(__global const float* a,
                         __global const float* b,
                         __global float* partial,
                         int chunk) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < chunk; j++) {
        acc += a[i * chunk + j] * b[i * chunk + j];
    }
    partial[i] = acc;
}`

func main() {
	ctx := host.NewContext(nil) // Virtex-7
	prog, err := ctx.CreateProgram("dot.cl", []byte(src), nil)
	if err != nil {
		log.Fatal(err)
	}
	k, err := prog.CreateKernel("dot_chunks")
	if err != nil {
		log.Fatal(err)
	}

	const (
		items = 1024
		chunk = 16
	)
	a := interp.NewFloatBuffer(ast.KFloat, items*chunk)
	b := interp.NewFloatBuffer(ast.KFloat, items*chunk)
	partial := interp.NewFloatBuffer(ast.KFloat, items)
	for i := range a.F {
		a.F[i] = 0.5
		b.F[i] = 2.0
	}

	must(k.SetArgBuffer(0, a))
	must(k.SetArgBuffer(1, b))
	must(k.SetArgBuffer(2, partial))
	must(k.SetArgInt(3, chunk))

	q := ctx.CreateQueue()

	// 1. Functional execution — exactly what clEnqueueNDRangeKernel does.
	must(q.EnqueueNDRange(k, [3]int64{items}, [3]int64{64}))
	fmt.Printf("partial[0] = %.1f (want %.1f)\n", partial.F[0], float64(chunk))

	// 2. Performance questions, still through the host API.
	for _, d := range []model.Design{
		{WGSize: 64, WIPipeline: false, PE: 1, CU: 1, Mode: model.ModeBarrier},
		{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline},
		{WGSize: 64, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModePipeline},
	} {
		est, err := q.Estimate(k, [3]int64{items}, [3]int64{64}, d)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := q.Simulate(k, [3]int64{items}, [3]int64{64}, d, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s est %8.0f cy  sim %8.0f cy\n", d, est.Cycles, sim.Cycles)
	}

	// The launch buffers were snapshotted: partial still holds results.
	fmt.Printf("partial[0] untouched by estimation: %.1f\n", partial.F[0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
