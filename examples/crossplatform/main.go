// Cross-platform robustness: the §4.2 experiment shape. The same kernel
// and design points are estimated and simulated on both the Virtex-7
// board and the KU060 UltraScale board; the model tracks the ground
// truth on each because every platform-specific quantity (op latencies,
// DRAM timings, scheduling overhead) is profiled, not hard-coded.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpumodel"
	"repro/internal/rtlsim"
)

func main() {
	k := bench.Find("pathfinder", "dynproc")
	if k == nil {
		log.Fatal("pathfinder kernel not registered")
	}

	designs := []core.Design{
		{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: core.ModeBarrier},
		{WGSize: 128, WIPipeline: true, PE: 2, CU: 2, Mode: core.ModeBarrier},
		{WGSize: 256, WIPipeline: true, PE: 4, CU: 4, Mode: core.ModeBarrier},
	}

	for _, p := range []*core.Platform{core.Virtex7(), core.KU060()} {
		fmt.Printf("%s (%.0f MHz, %d-bank DRAM):\n", p.Name, p.ClockMHz, p.DRAM.Banks)
		var sumErr float64
		for _, d := range designs {
			f, err := k.Compile(d.WGSize)
			if err != nil {
				log.Fatal(err)
			}
			an, err := core.Analyze(context.Background(), f, p, k.Config(d.WGSize))
			if err != nil {
				log.Fatal(err)
			}
			est := an.Predict(d)

			f2, err := k.Compile(d.WGSize)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := core.Simulate(f2, p, k.Config(d.WGSize), d, 8)
			if err != nil {
				log.Fatal(err)
			}
			e := rtlsim.ErrorVs(est.Cycles, sim.Cycles)
			sumErr += e
			fmt.Printf("  %-36s est %9.0f cy  sim %9.0f cy  err %5.1f%%  (%.2f ms)\n",
				d, est.Cycles, sim.Cycles, e, est.Seconds*1e3)
		}
		fmt.Printf("  avg |err| %.1f%% — same model, different platform description\n\n",
			sumErr/float64(len(designs)))
	}

	// §1's heterogeneous comparison: the same analysis also feeds a
	// first-order GPU roofline model, ranking FPGA designs against a
	// GPU ballpark without touching either device.
	f, err := k.Compile(256)
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.Analyze(context.Background(), f, core.Virtex7(), k.Config(256))
	if err != nil {
		log.Fatal(err)
	}
	best := an.Predict(designs[2])
	for _, g := range []*gpumodel.GPU{gpumodel.K20(), gpumodel.EmbeddedGPU()} {
		ge := gpumodel.Predict(an, g)
		bound := "compute"
		if ge.MemoryBound {
			bound = "memory"
		}
		fmt.Printf("GPU %-14s %.3f ms (%s-bound) vs best FPGA design %.3f ms — FPGA speedup %.2fx\n",
			g.Name, ge.Seconds*1e3, bound, best.Seconds*1e3,
			gpumodel.Compare(an, best, g))
	}
}
