// Memory-pattern analysis: the §3.4 global-memory model in isolation.
// Three kernels with identical computation but different access patterns
// (sequential, strided, random) are profiled; the example shows how the
// eight Table 1 patterns, the coalescing factor f, and the resulting
// per-work-item memory latency L_mem^wi diverge — and how that decides
// the barrier-vs-pipeline trade-off of Eq. 10–12.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/interp"
	"repro/internal/model"
	"repro/internal/trace"
)

const kernels = `
__kernel void seq(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[i] * 2.0f; }
}
__kernel void strided(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[(i * 64) % n] * 2.0f; }
}
__kernel void random_access(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = in[(i * 40503) % n] * 2.0f; }
}`

func main() {
	prog, err := core.Compile("patterns.cl", []byte(kernels), nil)
	if err != nil {
		log.Fatal(err)
	}
	p := device.Virtex7()
	const n, wg = 4096, 64

	fmt.Println("Table 1 pattern latencies (profiled on", p.Name+"):")
	lat := dram.ProfilePatterns(p.DRAM, 4096, device.HashString(p.Name))
	for pat := dram.Pattern(0); pat < dram.NumPatterns; pat++ {
		fmt.Printf("  ΔT %-9s %6.1f cycles\n", pat, lat.Get(pat))
	}
	fmt.Println()

	for _, name := range []string{"seq", "strided", "random_access"} {
		k := prog.Kernel(name)
		launch := makeLaunch(n, wg)
		prof, err := interp.ProfileKernel(k, launch, 4)
		if err != nil {
			log.Fatal(err)
		}
		layout := trace.NewLayout(k, trace.BufferCounts(k, launch), p.DRAM)
		cls := trace.ClassifyGrouped(prof.Traces, wg, layout, p.DRAM, p.MemAccessUnitBits/8)

		fmt.Printf("%s:\n", name)
		fmt.Printf("  accesses/WI raw %.2f -> coalesced %.2f (f = %.1f)\n",
			cls.RawPerWI, cls.BurstsPerWI, cls.CoalescingFactor())
		var hits, misses float64
		for pat := dram.Pattern(0); pat < dram.NumPatterns; pat++ {
			if pat.Hit() {
				hits += cls.N[pat]
			} else {
				misses += cls.N[pat]
			}
		}
		fmt.Printf("  row-buffer hits/WI %.2f, misses/WI %.2f\n", hits, misses)
		fmt.Printf("  L_mem^wi = %.2f cycles (Eq. 9)\n", trace.MemLatencyWI(cls, lat))

		// How the memory behaviour decides the communication mode.
		an, err := core.Analyze(context.Background(), k, p, makeLaunch(n, wg))
		if err != nil {
			log.Fatal(err)
		}
		bar := an.Predict(model.Design{WGSize: wg, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModeBarrier})
		pipe := an.Predict(model.Design{WGSize: wg, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline})
		fmt.Printf("  barrier mode %.0f cycles vs pipeline mode %.0f cycles -> use %s\n\n",
			bar.Cycles, pipe.Cycles, better(bar.Cycles, pipe.Cycles))
	}
}

func better(bar, pipe float64) string {
	if pipe < bar {
		return "pipeline"
	}
	return "barrier"
}

func makeLaunch(n int, wg int64) *core.Launch {
	in := core.NewFloatBuffer(core.Float, n)
	out := core.NewFloatBuffer(core.Float, n)
	for i := 0; i < n; i++ {
		in.F[i] = float64(i%13) * 0.5
	}
	return &core.Launch{
		Range:   core.NDRange{Global: [3]int64{int64(n)}, Local: [3]int64{wg}},
		Buffers: map[string]*core.Buffer{"in": in, "out": out},
		Scalars: map[string]core.Arg{"n": core.IntArg(int64(n))},
	}
}
