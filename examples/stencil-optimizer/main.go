// Stencil optimizer: §2.2's claim that FlexCL "can also be used to guide
// performance optimization for complex applications, such as iterative
// stencil algorithms [17]". Two implementations of the same Jacobi
// relaxation step — a naive one re-reading global memory, and a
// restructured one staging the tile in local memory — are ranked with
// the analytical model across their design spaces, and the bottleneck
// diagnosis shows *why* the restructuring is the one the model's own
// hints suggest.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
)

// The naive variant makes the classic mistake: it stores the grid
// column-major relative to the work-item order, so consecutive
// work-items touch addresses a whole column apart and nothing coalesces.
const naive = `
__kernel void jacobi(__global const float* in, __global float* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        out[x * h + y] = 0.25f * (in[x * h + y - 1] + in[x * h + y + 1]
                                + in[(x - 1) * h + y] + in[(x + 1) * h + y]);
    }
}`

const tiled = `
__kernel void jacobi(__global const float* in, __global float* out, int w, int h) {
    __local float t[WG];
    int x = get_global_id(0);
    int y = get_global_id(1);
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lw = get_local_size(0);
    int lh = get_local_size(1);
    int lidx = ly * lw + lx;
    if (x < w && y < h) { t[lidx] = in[y * w + x]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        float lf;
        float rt;
        float up;
        float dn;
        if (lx > 0) { lf = t[lidx - 1]; } else { lf = in[y * w + x - 1]; }
        if (lx < lw - 1) { rt = t[lidx + 1]; } else { rt = in[y * w + x + 1]; }
        if (ly > 0) { up = t[lidx - lw]; } else { up = in[(y - 1) * w + x]; }
        if (ly < lh - 1) { dn = t[lidx + lw]; } else { dn = in[(y + 1) * w + x]; }
        out[y * w + x] = 0.25f * (lf + rt + up + dn);
    }
}`

const dim = 64

func main() {
	variants := map[string]string{"naive": naive, "tiled-local": tiled}
	results := map[string]float64{}

	for name, src := range variants {
		w := &core.Workload{
			Suite: "example", Bench: "stencil", Name: name, Fn: "jacobi",
			Source: src, TwoD: true,
			Global: [3]int64{dim, dim},
			MinWG:  16, MaxWG: 256,
			Scalars: map[string]int64{"w": dim, "h": dim},
		}
		w.Bufs = append(w.Bufs,
			core.BufSpec{Name: "in", Float: true, Len: dim * dim, Fill: core.FillNoise},
			core.BufSpec{Name: "out", Float: true, Len: dim * dim},
		)

		// Rank the whole design space analytically, then validate the
		// winner in the simulator.
		r, err := core.Explore(context.Background(), w, core.Virtex7(), true)
		if err != nil {
			log.Fatal(err)
		}
		pts := r.Points
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].Est < pts[j].Est })
		best := pts[0]

		f, err := w.Compile(best.Design.WGSize)
		if err != nil {
			log.Fatal(err)
		}
		an, err := core.Analyze(context.Background(), f, core.Virtex7(), w.Config(best.Design.WGSize))
		if err != nil {
			log.Fatal(err)
		}
		est := an.Predict(best.Design)
		f2, _ := w.Compile(best.Design.WGSize)
		sim, err := core.Simulate(f2, core.Virtex7(), w.Config(best.Design.WGSize), best.Design, 8)
		if err != nil {
			log.Fatal(err)
		}
		results[name] = sim.Cycles

		diag := an.Diagnose(est)
		fmt.Printf("%-12s best design %v\n", name, best.Design)
		fmt.Printf("             est %.0f cy, sim %.0f cy, bottleneck: %v\n",
			est.Cycles, sim.Cycles, diag.Bottleneck)
		for _, h := range diag.Hints {
			fmt.Printf("             hint: %s\n", h)
		}
		fmt.Println()
	}

	fmt.Printf("restructuring speedup (naive/tiled): %.2fx\n",
		results["naive"]/results["tiled-local"])
}
