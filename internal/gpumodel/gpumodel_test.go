package gpumodel

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

func analyzeKernel(t *testing.T, benchName, kernel string, wg int64) *model.Analysis {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := model.Analyze(context.Background(), f, device.Virtex7(), k.Config(wg), model.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestStreamingKernelIsMemoryBound(t *testing.T) {
	an := analyzeKernel(t, "nn", "nn", 64)
	e := Predict(an, K20())
	if !e.MemoryBound {
		t.Errorf("nn on a K20 should be memory bound: compute %.2e s vs memory %.2e s",
			e.ComputeSeconds, e.MemorySeconds)
	}
	if e.Seconds <= 0 {
		t.Fatal("non-positive time")
	}
}

func TestComputeKernelLessMemoryBound(t *testing.T) {
	// lavaMD evaluates exp() per particle pair — far more arithmetic per
	// loaded word than the streaming memset.
	anC := analyzeKernel(t, "lavaMD", "lavaMD", 64)
	anM := analyzeKernel(t, "cfd", "memset", 64)
	c := Predict(anC, K20())
	m := Predict(anM, K20())
	ratioC := c.ComputeSeconds / c.MemorySeconds
	ratioM := m.ComputeSeconds / m.MemorySeconds
	if ratioC <= ratioM {
		t.Errorf("lavaMD compute/memory ratio (%v) should exceed memset's (%v)", ratioC, ratioM)
	}
}

func TestEmbeddedSlowerThanDiscrete(t *testing.T) {
	an := analyzeKernel(t, "srad", "srad", 64)
	big := Predict(an, K20())
	small := Predict(an, EmbeddedGPU())
	if small.Seconds < big.Seconds {
		t.Errorf("embedded GPU (%v s) predicted faster than K20 (%v s)",
			small.Seconds, big.Seconds)
	}
}

func TestCompareUsesSeconds(t *testing.T) {
	an := analyzeKernel(t, "pathfinder", "dynproc", 64)
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 4, CU: 4, Mode: model.ModeBarrier}
	fpga := an.Predict(d)
	speedup := Compare(an, fpga, K20())
	if speedup <= 0 {
		t.Fatalf("speedup = %v", speedup)
	}
	gpu := Predict(an, K20())
	want := gpu.Seconds / fpga.Seconds
	if speedup != want {
		t.Errorf("Compare = %v, want %v", speedup, want)
	}
}

func TestLaunchOverheadFloor(t *testing.T) {
	// A tiny kernel cannot beat the launch-overhead floor.
	an := analyzeKernel(t, "cfd", "memset", 64)
	e := Predict(an, K20())
	if e.Seconds < 5e-6 {
		t.Errorf("below launch floor: %v", e.Seconds)
	}
}
