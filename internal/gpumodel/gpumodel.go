// Package gpumodel is a first-order analytical GPU performance model used
// for the cross-architecture comparison the paper motivates in §1
// ("make performance comparison across heterogeneous architecture (GPUs
// v.s. FPGAs)"). It consumes the same kernel analysis FlexCL produces —
// frequency-weighted operation counts and the coalesced global-memory
// traffic — and applies a throughput (roofline) model of a streaming
// multiprocessor array instead of a spatial pipeline.
//
// The model is deliberately coarse (no cache hierarchy, no divergence
// penalty beyond branch serialization): its purpose is ranking FPGA
// designs against a GPU ballpark, not predicting GPU cycles precisely.
package gpumodel

import (
	"math"

	"repro/internal/device"
	"repro/internal/model"
)

// GPU describes a GPU target for the comparison.
type GPU struct {
	Name     string
	ClockMHz float64
	// SMs × LanesPerSM scalar operations retire per cycle at peak.
	SMs        int
	LanesPerSM int
	// MemBandwidthGBs is the DRAM bandwidth.
	MemBandwidthGBs float64
	// SFURatio divides throughput for transcendental ops.
	SFURatio float64
}

// K20 returns an NVIDIA Tesla K20-class device — the contemporary GPU a
// DAC'17 comparison would have used.
func K20() *GPU {
	return &GPU{
		Name: "tesla-k20", ClockMHz: 706,
		SMs: 13, LanesPerSM: 192,
		MemBandwidthGBs: 208,
		SFURatio:        6,
	}
}

// EmbeddedGPU returns a small embedded-class GPU for low-power
// comparisons.
func EmbeddedGPU() *GPU {
	return &GPU{
		Name: "embedded-gpu", ClockMHz: 600,
		SMs: 2, LanesPerSM: 128,
		MemBandwidthGBs: 25.6,
		SFURatio:        8,
	}
}

// Estimate is the GPU-side prediction.
type Estimate struct {
	GPU     *GPU
	Seconds float64
	// ComputeSeconds and MemorySeconds are the roofline components.
	ComputeSeconds float64
	MemorySeconds  float64
	// MemoryBound reports which side of the roofline binds.
	MemoryBound bool
}

// Predict estimates the kernel launch time on the GPU from a FlexCL
// analysis: total dynamic operations over peak throughput vs total
// coalesced traffic over bandwidth.
func Predict(a *model.Analysis, g *GPU) *Estimate {
	// Dynamic scalar operations per work-item, weighting expensive ops
	// by their throughput cost.
	var opsPerWI float64
	for _, b := range a.F.Blocks {
		w, ok := a.Freq[b]
		if !ok {
			w = 1
		}
		for _, in := range b.Instrs {
			lanes := float64(in.T.Lanes())
			switch device.Classify(in) {
			case device.ClassNop, device.ClassWorkItem, device.ClassVecShuffle,
				device.ClassPrivLoad, device.ClassPrivStore, device.ClassBarrierOp:
				// register traffic: free at this granularity
			case device.ClassFSqrt, device.ClassFExp, device.ClassFTrig:
				opsPerWI += w * lanes * g.SFURatio
			case device.ClassIDiv, device.ClassFDiv:
				opsPerWI += w * lanes * g.SFURatio
			default:
				opsPerWI += w * lanes
			}
		}
	}

	peakOps := float64(g.SMs) * float64(g.LanesPerSM) * g.ClockMHz * 1e6
	e := &Estimate{GPU: g}
	e.ComputeSeconds = opsPerWI * float64(a.NWI) / peakOps

	// GPU DRAM traffic: raw word accesses (the GPU's caches service
	// broadcasts and re-reads, unlike the FPGA's streaming port, so the
	// FPGA-side burst count would overstate GPU traffic).
	bytes := a.Mem.RawPerWI * 4 * float64(a.NWI)
	e.MemorySeconds = bytes / (g.MemBandwidthGBs * 1e9)

	e.Seconds = math.Max(e.ComputeSeconds, e.MemorySeconds)
	e.MemoryBound = e.MemorySeconds >= e.ComputeSeconds
	// Kernel launch overhead floor (~5 µs).
	if e.Seconds < 5e-6 {
		e.Seconds = 5e-6
	}
	return e
}

// Compare pits the best FPGA design estimate against the GPU estimate and
// returns the FPGA/GPU speedup (> 1 means the FPGA wins).
func Compare(a *model.Analysis, bestFPGA *model.Estimate, g *GPU) float64 {
	gpu := Predict(a, g)
	if bestFPGA.Seconds <= 0 {
		return 0
	}
	return gpu.Seconds / bestFPGA.Seconds
}
