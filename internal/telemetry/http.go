package telemetry

import (
	"encoding/json"
	"net/http"
)

// traceList is the GET /debug/traces response envelope.
type traceList struct {
	Count int `json:"count"`
	// Capacity and KeepSlowest echo the retention configuration so a
	// reader knows what window they are looking at.
	Capacity    int            `json:"capacity"`
	KeepSlowest int            `json:"keep_slowest"`
	Traces      []TraceSummary `json:"traces"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// HandleList serves GET /debug/traces: summaries of every retained
// trace, newest first.
func (t *Tracer) HandleList(w http.ResponseWriter, r *http.Request) {
	sums := t.List()
	if sums == nil {
		sums = []TraceSummary{}
	}
	var capacity, slowCap int
	if t != nil {
		capacity, slowCap = t.capacity, t.slowCap
	}
	writeJSON(w, http.StatusOK, traceList{
		Count:       len(sums),
		Capacity:    capacity,
		KeepSlowest: slowCap,
		Traces:      sums,
	})
}

// HandleGet serves GET /debug/traces/{id}: the full span tree of one
// finished trace. The id is the request's X-Request-ID (echoed on every
// response) or a job trace id.
func (t *Tracer) HandleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := t.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "unknown trace " + id + " (rotated out, or tracing disabled)",
		})
		return
	}
	writeJSON(w, http.StatusOK, v)
}
