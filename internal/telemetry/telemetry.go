// Package telemetry is the request-scoped tracing layer of the FlexCL
// service: context-propagated spans that follow one prediction from the
// HTTP edge through admission, the prep cache, frontend compilation,
// profiling, memory-trace classification and the analytical model, so a
// slow p99 can be attributed to the stage (and kernel) that ate it.
//
// The design mirrors the codebase's ctx-first convention: starting a
// span never changes a function signature, it rides the context —
//
//	ctx, sp := telemetry.Start(ctx, "compile")
//	defer sp.End()
//
// When the context carries no active trace, Start returns a nil span
// whose methods are all no-ops, so library code pays one context lookup
// and nothing else. Traces are created at the edge (one per HTTP
// request, keyed by its X-Request-ID) or by a CLI's -trace flag;
// finished traces land in a bounded in-memory ring with
// always-keep-slowest retention and are exported as JSON span trees via
// GET /debug/traces and /debug/traces/{id} (see http.go).
//
// Spans are safe for concurrent use: batch items and sharded DSE
// workers may open children of one request's trace from many
// goroutines, and a detached prep-cache fill may end its spans after
// the request's root span already finished (the trace view simply shows
// them completed later).
package telemetry

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// ctxKey carries the current *Span through a context.
type ctxKey struct{}

// withSpan returns ctx carrying sp as the current span.
func withSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Attr is one key/value annotation on a span (cache outcome, admission
// lane, kernel hash, …). Values are strings so the trace JSON stays
// schema-free.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one named stage of a trace. All fields are guarded by the
// owning trace's mutex; a nil *Span (no active trace) is valid and all
// its methods are no-ops.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time // zero while running
	attrs    []Attr
	children []*Span
}

// Trace is one request's span tree, rooted at the edge (or CLI) span.
type Trace struct {
	tracer *Tracer

	mu    sync.Mutex
	id    string
	name  string
	start time.Time
	end   time.Time // zero until the root span ends
	root  *Span
	spans int
}

// Options tunes a Tracer.
type Options struct {
	// Capacity bounds the finished-trace ring (0 = 256 entries;
	// negative disables tracing entirely — StartTrace returns nil
	// spans and the tracer retains nothing).
	Capacity int
	// KeepSlowest additionally retains the N slowest traces seen since
	// start, even after the ring has rotated past them (0 = 32).
	KeepSlowest int
	// StageObserver, when non-nil, receives every finished non-root
	// span's (name, duration) as the trace completes — the hook the
	// service uses to feed per-stage latency histograms into its
	// metrics registry. Spans still running when the root ends (e.g. a
	// detached cache fill the request stopped waiting for) are not
	// reported.
	StageObserver func(stage string, seconds float64)
}

// Tracer owns trace retention: a FIFO ring of recent finished traces
// plus an always-keep-slowest set, both bounded.
type Tracer struct {
	disabled bool
	capacity int
	slowCap  int
	observer func(stage string, seconds float64)

	mu     sync.Mutex
	recent []*Trace // newest last
	slow   []*Trace // the slowest traces seen, unordered
}

// New builds a Tracer. A nil *Tracer is also valid (fully disabled).
func New(opts Options) *Tracer {
	t := &Tracer{capacity: opts.Capacity, slowCap: opts.KeepSlowest, observer: opts.StageObserver}
	if opts.Capacity < 0 {
		t.disabled = true
		t.capacity = 0
		t.slowCap = 0
		return t
	}
	if t.capacity == 0 {
		t.capacity = 256
	}
	if t.slowCap == 0 {
		t.slowCap = 32
	}
	return t
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled }

// StartTrace opens a new trace with its root span and returns a context
// carrying it. id is the request id the trace is retrieved by; name is
// the root span's label (typically the route). The trace is finished —
// and becomes visible to Get/List — when the returned root span Ends.
func (t *Tracer) StartTrace(ctx context.Context, id, name string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	tr := &Trace{tracer: t, id: id, name: name, start: time.Now()}
	root := &Span{tr: tr, name: name, start: tr.start}
	tr.root = root
	tr.spans = 1
	return withSpan(ctx, root), root
}

// Start opens a child span of the context's current span, returning a
// context carrying the child. Without an active trace it returns the
// context unchanged and a nil (no-op) span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.tr
	sp := &Span{tr: tr, name: name, start: time.Now()}
	tr.mu.Lock()
	parent.children = append(parent.children, sp)
	tr.spans++
	tr.mu.Unlock()
	return withSpan(ctx, sp), sp
}

// Annotate attaches a key/value pair to the context's current span (a
// no-op without an active trace). Use it when the span itself is out of
// reach — e.g. annotating the request's root span from a handler.
func Annotate(ctx context.Context, key, value string) {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	sp.Annotate(key, value)
}

// ContextTraceID returns the id of the context's active trace, or "".
func ContextTraceID(ctx context.Context) string {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	if sp == nil {
		return ""
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.tr.id
}

// Annotate attaches a key/value pair to the span. Last write for a key
// wins in rendered views.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// End finishes the span (idempotent). Ending the root span finishes the
// whole trace: stage durations are reported to the StageObserver and
// the trace becomes retrievable from the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !s.end.IsZero() {
		tr.mu.Unlock()
		return
	}
	s.end = time.Now()
	isRoot := s == tr.root
	if isRoot {
		tr.end = s.end
	}
	tr.mu.Unlock()
	if isRoot {
		tr.tracer.finish(tr)
	}
}

// Duration returns the span's wall time so far (final once ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// finish reports stages and inserts the trace into the retention sets.
func (t *Tracer) finish(tr *Trace) {
	if t.observer != nil {
		// Snapshot under the trace lock, observe outside it: the
		// observer typically takes a metrics-registry lock of its own.
		type stage struct {
			name string
			dur  time.Duration
		}
		var stages []stage
		tr.mu.Lock()
		var walk func(s *Span)
		walk = func(s *Span) {
			if s != tr.root && !s.end.IsZero() {
				stages = append(stages, stage{s.name, s.end.Sub(s.start)})
			}
			for _, c := range s.children {
				walk(c)
			}
		}
		walk(tr.root)
		tr.mu.Unlock()
		for _, st := range stages {
			t.observer(st.name, st.dur.Seconds())
		}
	}

	dur := tr.duration()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recent = append(t.recent, tr)
	if len(t.recent) > t.capacity {
		t.recent = t.recent[1:]
	}
	if t.slowCap > 0 {
		if len(t.slow) < t.slowCap {
			t.slow = append(t.slow, tr)
		} else {
			// Replace the fastest of the kept-slowest set if this trace
			// is slower (linear scan; the set is small).
			minI, minD := -1, dur
			for i, cand := range t.slow {
				if d := cand.duration(); d < minD {
					minI, minD = i, d
				}
			}
			if minI >= 0 {
				t.slow[minI] = tr
			}
		}
	}
}

func (tr *Trace) duration() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.end.IsZero() {
		return time.Since(tr.start)
	}
	return tr.end.Sub(tr.start)
}

// Get returns the finished trace with the given id (the newest one,
// when a client reused an X-Request-ID).
func (t *Tracer) Get(id string) (*TraceView, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	var found *Trace
	for i := len(t.recent) - 1; i >= 0 && found == nil; i-- {
		if t.recent[i].idLocked() == id {
			found = t.recent[i]
		}
	}
	if found == nil {
		for _, tr := range t.slow {
			if tr.idLocked() == id {
				found = tr
				break
			}
		}
	}
	t.mu.Unlock()
	if found == nil {
		return nil, false
	}
	v := found.View()
	return &v, true
}

func (tr *Trace) idLocked() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.id
}

// List returns summaries of every retained trace, newest first, with
// the kept-slowest traces flagged.
func (t *Tracer) List() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	slowSet := make(map[*Trace]bool, len(t.slow))
	for _, tr := range t.slow {
		slowSet[tr] = true
	}
	seen := make(map[*Trace]bool, len(t.recent)+len(t.slow))
	all := make([]*Trace, 0, len(t.recent)+len(t.slow))
	for _, tr := range t.recent {
		if !seen[tr] {
			seen[tr] = true
			all = append(all, tr)
		}
	}
	for _, tr := range t.slow {
		if !seen[tr] {
			seen[tr] = true
			all = append(all, tr)
		}
	}
	t.mu.Unlock()

	out := make([]TraceSummary, 0, len(all))
	for _, tr := range all {
		out = append(out, tr.summary(slowSet[tr]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// attrMap flattens an attr list, last write per key winning.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// joinAttrs renders attrs as "k=v k2=v2" for table output.
func joinAttrs(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
	}
	return b.String()
}
