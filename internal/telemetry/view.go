package telemetry

import (
	"fmt"
	"io"
	"time"
)

// SpanView is the JSON rendering of one span, with times relative to
// the trace start so the tree reads as a timeline.
type SpanView struct {
	Name string `json:"name"`
	// StartMS is the span's offset from the trace start, milliseconds.
	StartMS float64 `json:"start_ms"`
	// DurationMS is the span's wall time. For a span still running when
	// the view was taken (Unfinished), it is the elapsed time so far.
	DurationMS float64 `json:"duration_ms"`
	// Unfinished marks spans that had not Ended when the view was
	// rendered (e.g. a detached prep-cache fill the request stopped
	// waiting for).
	Unfinished bool              `json:"unfinished,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanView        `json:"children,omitempty"`
}

// TraceView is the JSON rendering of one trace: the span tree plus a
// per-stage duration rollup (same-named spans summed).
type TraceView struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationMS is the root span's wall time.
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	// StageMS sums the duration of every finished non-root span by
	// name — the per-stage attribution a latency investigation starts
	// from.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
	Root    SpanView           `json:"root"`
}

// TraceSummary is one row of the trace listing.
type TraceSummary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	// Slow marks traces retained by the keep-slowest policy (they may
	// also still be in the recent ring).
	Slow bool `json:"slow,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// View renders the trace as a consistent snapshot (safe while detached
// spans are still ending).
func (tr *Trace) View() TraceView {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	v := TraceView{
		ID:      tr.id,
		Name:    tr.name,
		Start:   tr.start,
		Spans:   tr.spans,
		StageMS: make(map[string]float64),
	}
	end := tr.end
	if end.IsZero() {
		end = time.Now()
	}
	v.DurationMS = ms(end.Sub(tr.start))
	v.Root = tr.spanViewLocked(tr.root, &v)
	if len(v.StageMS) == 0 {
		v.StageMS = nil
	}
	return v
}

func (tr *Trace) spanViewLocked(s *Span, acc *TraceView) SpanView {
	sv := SpanView{
		Name:    s.name,
		StartMS: ms(s.start.Sub(tr.start)),
		Attrs:   attrMap(s.attrs),
	}
	if s.end.IsZero() {
		sv.Unfinished = true
		sv.DurationMS = ms(time.Since(s.start))
	} else {
		sv.DurationMS = ms(s.end.Sub(s.start))
		if s != tr.root {
			acc.StageMS[s.name] += sv.DurationMS
		}
	}
	for _, c := range s.children {
		sv.Children = append(sv.Children, tr.spanViewLocked(c, acc))
	}
	return sv
}

func (tr *Trace) summary(slow bool) TraceSummary {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	end := tr.end
	if end.IsZero() {
		end = time.Now()
	}
	return TraceSummary{
		ID:         tr.id,
		Name:       tr.name,
		Start:      tr.start,
		DurationMS: ms(end.Sub(tr.start)),
		Spans:      tr.spans,
		Slow:       slow,
	}
}

// WriteTable prints the span tree as an indented per-stage breakdown —
// the rendering behind the CLIs' -trace flag:
//
//	stage                             ms      %  notes
//	flexcl /v2/predict            12.402  100.0
//	  admission                    0.011    0.1  lane=interactive
//	  prep                        11.822   95.3  cache=miss kernel=hotspot/hotspot
//	    compile                    3.104   25.0
//	    ...
func (v *TraceView) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-34s %10s %6s  %s\n", "stage", "ms", "%", "notes")
	total := v.DurationMS
	var walk func(sv SpanView, depth int)
	walk = func(sv SpanView, depth int) {
		name := sv.Name
		for i := 0; i < depth; i++ {
			name = "  " + name
		}
		pct := 0.0
		if total > 0 {
			pct = sv.DurationMS / total * 100
		}
		notes := joinAttrs(sv.Attrs)
		if sv.Unfinished {
			if notes != "" {
				notes += " "
			}
			notes += "(unfinished)"
		}
		fmt.Fprintf(w, "%-34s %10.3f %6.1f  %s\n", name, sv.DurationMS, pct, notes)
		for _, c := range sv.Children {
			walk(c, depth+1)
		}
	}
	walk(v.Root, 0)
}
