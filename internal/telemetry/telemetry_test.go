package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNoopWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "stage")
	if sp != nil {
		t.Fatal("Start without a trace must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a trace must return the context unchanged")
	}
	// All nil-span methods are no-ops.
	sp.End()
	sp.Annotate("k", "v")
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	Annotate(ctx, "k", "v")
	if id := ContextTraceID(ctx); id != "" {
		t.Fatalf("ContextTraceID = %q, want empty", id)
	}
}

func TestDisabledTracer(t *testing.T) {
	tr := New(Options{Capacity: -1})
	if tr.Enabled() {
		t.Fatal("Capacity<0 must disable the tracer")
	}
	ctx, root := tr.StartTrace(context.Background(), "id1", "req")
	if root != nil {
		t.Fatal("disabled tracer must hand out nil spans")
	}
	root.End()
	if _, ok := tr.Get("id1"); ok {
		t.Fatal("disabled tracer must retain nothing")
	}
	if ContextTraceID(ctx) != "" {
		t.Fatal("disabled tracer must not mark the context")
	}
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer must read as disabled")
	}
	if _, ok := nilT.Get("x"); ok {
		t.Fatal("nil tracer Get must miss")
	}
	if l := nilT.List(); l != nil {
		t.Fatal("nil tracer List must be empty")
	}
}

func TestSpanTreeAndStages(t *testing.T) {
	var observed []string
	tr := New(Options{
		Capacity: 8,
		StageObserver: func(stage string, seconds float64) {
			if seconds < 0 {
				t.Errorf("stage %s observed negative duration", stage)
			}
			observed = append(observed, stage)
		},
	})
	ctx, root := tr.StartTrace(context.Background(), "req-1", "/v2/predict")
	if got := ContextTraceID(ctx); got != "req-1" {
		t.Fatalf("ContextTraceID = %q, want req-1", got)
	}

	actx, admission := Start(ctx, "admission")
	admission.Annotate("lane", "interactive")
	if ContextTraceID(actx) != "req-1" {
		t.Fatal("child context lost the trace")
	}
	admission.End()

	pctx, prep := Start(ctx, "prep")
	_, compile := Start(pctx, "compile")
	compile.End()
	_, profile := Start(pctx, "profile")
	profile.Annotate("source", "static")
	profile.End()
	prep.Annotate("cache", "miss")
	prep.End()

	_, model := Start(ctx, "model")
	model.End()
	root.End()

	v, ok := tr.Get("req-1")
	if !ok {
		t.Fatal("finished trace not retrievable")
	}
	if v.Spans != 6 {
		t.Fatalf("spans = %d, want 6", v.Spans)
	}
	if v.Root.Name != "/v2/predict" || len(v.Root.Children) != 3 {
		t.Fatalf("unexpected root: %+v", v.Root)
	}
	prepView := v.Root.Children[1]
	if prepView.Name != "prep" || len(prepView.Children) != 2 {
		t.Fatalf("unexpected prep subtree: %+v", prepView)
	}
	if prepView.Attrs["cache"] != "miss" {
		t.Fatalf("prep attrs = %v", prepView.Attrs)
	}
	for _, stage := range []string{"admission", "prep", "compile", "profile", "model"} {
		if _, ok := v.StageMS[stage]; !ok {
			t.Errorf("StageMS missing %q: %v", stage, v.StageMS)
		}
	}
	// Sequential children must fit inside their parent's wall time.
	sum := 0.0
	for _, c := range v.Root.Children {
		sum += c.DurationMS
	}
	if sum > v.DurationMS+0.001 {
		t.Fatalf("children sum %.3fms exceeds root %.3fms", sum, v.DurationMS)
	}
	if len(observed) != 5 {
		t.Fatalf("observer saw %d stages (%v), want 5", len(observed), observed)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := New(Options{Capacity: 4})
	_, root := tr.StartTrace(context.Background(), "id", "req")
	root.End()
	root.End() // must not re-finish (or panic)
	if got := len(tr.List()); got != 1 {
		t.Fatalf("trace retained %d times, want 1", got)
	}
}

func TestDetachedSpanEndsAfterRoot(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.StartTrace(context.Background(), "id", "req")
	_, late := Start(ctx, "fill")
	root.End()

	v, _ := tr.Get("id")
	if !v.Root.Children[0].Unfinished {
		t.Fatal("running detached span must render as unfinished")
	}
	late.End() // after the trace finished: must be safe
	v, _ = tr.Get("id")
	if v.Root.Children[0].Unfinished {
		t.Fatal("ended span still renders unfinished")
	}
}

func TestRingRetentionKeepsSlowest(t *testing.T) {
	tr := New(Options{Capacity: 4, KeepSlowest: 1})
	// One deliberately slow trace, then enough fast ones to rotate the
	// recent ring past it.
	_, slowRoot := tr.StartTrace(context.Background(), "slow", "req")
	time.Sleep(25 * time.Millisecond)
	slowRoot.End()
	for i := 0; i < 10; i++ {
		_, r := tr.StartTrace(context.Background(), fmt.Sprintf("fast-%d", i), "req")
		r.End()
	}
	if _, ok := tr.Get("fast-0"); ok {
		t.Fatal("fast-0 should have rotated out of a capacity-4 ring")
	}
	v, ok := tr.Get("slow")
	if !ok {
		t.Fatal("keep-slowest retention lost the slow trace")
	}
	if v.DurationMS < 20 {
		t.Fatalf("slow trace duration %.3fms, want ≥ 20ms", v.DurationMS)
	}
	var slowMarked bool
	for _, s := range tr.List() {
		if s.ID == "slow" && s.Slow {
			slowMarked = true
		}
	}
	if !slowMarked {
		t.Fatal("listing must flag the kept-slowest trace")
	}
	// 4 recent + 1 slow.
	if got := len(tr.List()); got != 5 {
		t.Fatalf("retained %d traces, want 5", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.StartTrace(context.Background(), "c", "batch")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ictx, item := Start(ctx, "item")
			item.Annotate("index", fmt.Sprint(i))
			_, child := Start(ictx, "model")
			child.End()
			item.End()
		}(i)
	}
	wg.Wait()
	root.End()
	v, _ := tr.Get("c")
	if v.Spans != 1+32 {
		t.Fatalf("spans = %d, want 33", v.Spans)
	}
	if len(v.Root.Children) != 16 {
		t.Fatalf("items = %d, want 16", len(v.Root.Children))
	}
}

func TestHTTPHandlers(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.StartTrace(context.Background(), "req-9", "/v2/predict")
	_, sp := Start(ctx, "prep")
	sp.End()
	root.End()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", tr.HandleList)
	mux.HandleFunc("GET /debug/traces/{id}", tr.HandleGet)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, `"req-9"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/debug/traces/req-9")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, `"prep"`) {
		t.Fatalf("get: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/debug/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	if body = readAll(t, resp); resp.StatusCode != 404 {
		t.Fatalf("missing trace: %d %s", resp.StatusCode, body)
	}
}

func TestWriteTable(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.StartTrace(context.Background(), "t", "flexcl hotspot")
	_, sp := Start(ctx, "model")
	sp.Annotate("design", "wg=64")
	sp.End()
	root.End()
	v, _ := tr.Get("t")
	var b strings.Builder
	v.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"stage", "flexcl hotspot", "  model", "design=wg=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
