// Package irgen lowers the semantically checked OpenCL AST into the
// package ir representation. Device helper functions are fully inlined at
// their call sites (as every OpenCL-to-FPGA flow does when building the
// hardware pipeline), so the result is one self-contained ir.Func per
// kernel.
package irgen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
	"repro/internal/opencl/sema"
	"repro/internal/opencl/token"
)

// maxInlineDepth bounds (indirect) recursion during inlining.
const maxInlineDepth = 16

// Error is an IR-generation diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Module is the lowered form of one OpenCL file.
type Module struct {
	Kernels []*ir.Func
}

// Kernel returns the lowered kernel with the given name, or nil.
func (m *Module) Kernel(name string) *ir.Func {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Build lowers every kernel of the checked file.
func Build(info *sema.Info) (*Module, error) {
	m := &Module{}
	for _, fn := range info.File.Kernels() {
		g := &generator{info: info, bindings: map[*sema.Symbol]*binding{}}
		f, err := g.lowerKernel(fn)
		if err != nil {
			return nil, err
		}
		m.Kernels = append(m.Kernels, f)
	}
	return m, nil
}

// memRef is a symbolic pointer: a storage object plus a runtime element
// index, with any not-yet-consumed array dimensions.
type memRef struct {
	store ir.Storage
	index ir.Value // element index; nil means constant 0
	rem   []int64  // remaining dims for partially indexed arrays
}

// binding associates a symbol with either a storage cell (scalar/array) or
// a direct value (scalar params), or a pointer binding (store + index
// cell holding the current element offset).
type binding struct {
	alloca *ir.Alloca // storage for mutable scalars and arrays
	value  ir.Value   // immutable direct value (scalar params, inlined args)
	ptr    *memRef    // for pointer-typed variables: fixed storage
	ptrOff *ir.Alloca // mutable element-offset cell for pointer variables
}

type loopCtx struct {
	breakBlk    *ir.Block
	continueBlk *ir.Block
}

type inlineCtx struct {
	retAlloca *ir.Alloca
	retBlock  *ir.Block
	fn        *ast.FuncDecl
}

type generator struct {
	info     *sema.Info
	f        *ir.Func
	cur      *ir.Block
	bindings map[*sema.Symbol]*binding
	loops    []loopCtx
	inlines  []inlineCtx
	err      *Error
}

func (g *generator) fail(pos token.Pos, format string, args ...any) {
	if g.err == nil {
		g.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (g *generator) lowerKernel(fn *ast.FuncDecl) (*ir.Func, error) {
	g.f = ir.NewFunc(fn.Name, true)
	g.f.Attrs = fn.Attrs
	for i, p := range fn.Params {
		ip := &ir.Param{PName: p.Name, T: p.Type, Index: i}
		g.f.Params = append(g.f.Params, ip)
		sym := g.info.ParamSyms[p]
		if p.Type.Ptr {
			g.bindings[sym] = &binding{ptr: &memRef{store: ip}}
		} else {
			g.bindings[sym] = &binding{value: ip}
		}
	}
	g.cur = g.f.NewBlock("entry")
	g.stmt(fn.Body)
	if g.err != nil {
		return nil, g.err
	}
	// Terminate any fall-through path.
	if g.cur != nil && g.cur.Term() == nil {
		g.emit(ir.OpRet, ast.Scalar(ast.KVoid))
	}
	// Terminate any leftover unterminated blocks (e.g. dead merge blocks).
	for _, b := range g.f.Blocks {
		if b.Term() == nil {
			r := g.f.NewInstr(ir.OpRet, ast.Scalar(ast.KVoid))
			g.f.Append(b, r)
		}
	}
	g.f.AnalyzeLoops()
	return g.f, nil
}

// emit appends a new instruction to the current block.
func (g *generator) emit(op ir.Op, t ast.Type) *ir.Instr {
	in := g.f.NewInstr(op, t)
	return g.f.Append(g.cur, in)
}

// br terminates the current block with an unconditional branch if it is
// not already terminated.
func (g *generator) br(to *ir.Block) {
	if g.cur == nil || g.cur.Term() != nil {
		g.cur = nil
		return
	}
	in := g.emit(ir.OpBr, ast.Scalar(ast.KVoid))
	in.To = to
	g.cur = nil
}

// condbr terminates the current block with a conditional branch.
func (g *generator) condbr(cond ir.Value, then, els *ir.Block) {
	if g.cur == nil || g.cur.Term() != nil {
		g.cur = nil
		return
	}
	in := g.emit(ir.OpCondBr, ast.Scalar(ast.KVoid))
	in.Args = []ir.Value{cond}
	in.To = then
	in.Else = els
	g.cur = nil
}

// ---- statements ----

func (g *generator) stmt(s ast.Stmt) {
	if g.err != nil || g.cur == nil {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			g.stmt(sub)
			if g.cur == nil {
				return // rest of block is unreachable
			}
		}
	case *ast.DeclStmt:
		g.decl(st)
	case *ast.ExprStmt:
		g.expr(st.X)
	case *ast.IfStmt:
		g.ifStmt(st)
	case *ast.ForStmt:
		g.forStmt(st)
	case *ast.WhileStmt:
		g.whileStmt(st)
	case *ast.DoWhileStmt:
		g.doWhileStmt(st)
	case *ast.ReturnStmt:
		g.returnStmt(st)
	case *ast.SwitchStmt:
		g.switchStmt(st)
	case *ast.BreakStmt:
		if len(g.loops) == 0 {
			g.fail(st.Pos(), "break outside loop or switch")
			return
		}
		g.br(g.loops[len(g.loops)-1].breakBlk)
	case *ast.ContinueStmt:
		// continue binds to the innermost loop, skipping switches.
		for i := len(g.loops) - 1; i >= 0; i-- {
			if g.loops[i].continueBlk != nil {
				g.br(g.loops[i].continueBlk)
				return
			}
		}
		g.fail(st.Pos(), "continue outside loop")
	case *ast.BarrierStmt:
		in := g.emit(ir.OpBarrier, ast.Scalar(ast.KVoid))
		switch {
		case st.Local && st.Global:
			in.Fn = "local|global"
		case st.Global:
			in.Fn = "global"
		default:
			in.Fn = "local"
		}
		g.f.HasBarrier = true
	case *ast.EmptyStmt:
	}
}

func (g *generator) decl(d *ast.DeclStmt) {
	sym := g.info.VarSyms[d]
	if sym == nil {
		g.fail(d.Pos(), "internal: unresolved declaration %s", d.Name)
		return
	}
	if d.Type.Ptr {
		// Pointer variable: must be initialized from a pointer expression;
		// the storage is fixed, the element offset lives in a cell.
		ref := memRef{}
		if d.Init != nil {
			ref = g.ptrExpr(d.Init)
		} else {
			g.fail(d.Pos(), "pointer variable %s must be initialized", d.Name)
			return
		}
		if ref.store == nil {
			return
		}
		off := g.newAlloca(d.Name+".off", ast.Scalar(ast.KLong), nil, ast.ASPrivate)
		g.storeTo(off, nil, g.indexValue(ref))
		g.bindings[sym] = &binding{ptr: &memRef{store: ref.store}, ptrOff: off}
		return
	}
	al := g.newAlloca(d.Name, elemTypeOf(sym), sym.Dims, spaceOf(sym))
	g.bindings[sym] = &binding{alloca: al}
	if d.Init != nil {
		v := g.coerce(g.expr(d.Init), elemTypeOf(sym))
		g.storeTo(al, nil, v)
	}
}

func elemTypeOf(sym *sema.Symbol) ast.Type {
	t := sym.Type
	t.Ptr = false
	t.Space = ast.ASPrivate
	return t
}

func spaceOf(sym *sema.Symbol) ast.AddrSpace {
	if sym.Space == ast.ASLocal {
		return ast.ASLocal
	}
	return ast.ASPrivate
}

func (g *generator) newAlloca(name string, elem ast.Type, dims []int64, space ast.AddrSpace) *ir.Alloca {
	count := int64(1)
	for _, d := range dims {
		count *= d
	}
	a := &ir.Alloca{
		AName: fmt.Sprintf("%s.%d", name, len(g.f.Allocas)),
		Elem:  elem, Count: count, Dims: dims, AS: space,
		Idx: len(g.f.Allocas),
	}
	g.f.Allocas = append(g.f.Allocas, a)
	return a
}

func (g *generator) ifStmt(st *ast.IfStmt) {
	cond := g.expr(st.Cond)
	thenB := g.f.NewBlock("then")
	var elseB *ir.Block
	merge := g.f.NewBlock("endif")
	if st.Else != nil {
		elseB = g.f.NewBlock("else")
		g.condbr(cond, thenB, elseB)
	} else {
		g.condbr(cond, thenB, merge)
	}
	g.cur = thenB
	g.stmt(st.Then)
	g.br(merge)
	if st.Else != nil {
		g.cur = elseB
		g.stmt(st.Else)
		g.br(merge)
	}
	g.cur = merge
}

func (g *generator) forStmt(st *ast.ForStmt) {
	if st.Init != nil {
		g.stmt(st.Init)
	}
	header := g.f.NewBlock("for.cond")
	body := g.f.NewBlock("for.body")
	latch := g.f.NewBlock("for.inc")
	exit := g.f.NewBlock("for.end")
	if trip, ok := g.staticTrip(st); ok {
		g.f.TripHints[header] = trip
	}
	if st.Unroll != 0 {
		g.f.UnrollHints[header] = st.Unroll
	}
	g.br(header)
	g.cur = header
	if st.Cond != nil {
		g.condbr(g.expr(st.Cond), body, exit)
	} else {
		g.br(body)
	}
	g.cur = body
	g.loops = append(g.loops, loopCtx{breakBlk: exit, continueBlk: latch})
	g.stmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.br(latch)
	g.cur = latch
	if st.Post != nil {
		g.expr(st.Post)
	}
	g.br(header)
	g.cur = exit
}

func (g *generator) whileStmt(st *ast.WhileStmt) {
	header := g.f.NewBlock("while.cond")
	body := g.f.NewBlock("while.body")
	exit := g.f.NewBlock("while.end")
	if st.Unroll != 0 {
		g.f.UnrollHints[header] = st.Unroll
	}
	g.br(header)
	g.cur = header
	g.condbr(g.expr(st.Cond), body, exit)
	g.cur = body
	g.loops = append(g.loops, loopCtx{breakBlk: exit, continueBlk: header})
	g.stmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.br(header)
	g.cur = exit
}

func (g *generator) doWhileStmt(st *ast.DoWhileStmt) {
	body := g.f.NewBlock("do.body")
	header := g.f.NewBlock("do.cond")
	exit := g.f.NewBlock("do.end")
	g.br(body)
	g.cur = body
	g.loops = append(g.loops, loopCtx{breakBlk: exit, continueBlk: header})
	g.stmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.br(header)
	g.cur = header
	g.condbr(g.expr(st.Cond), body, exit)
	g.cur = exit
}

// switchStmt lowers a C switch: a chain of equality tests dispatches into
// per-case bodies that fall through to each other unless they break.
func (g *generator) switchStmt(st *ast.SwitchStmt) {
	cond := g.expr(st.Cond)
	exit := g.f.NewBlock("sw.end")
	bodies := make([]*ir.Block, len(st.Cases))
	for i := range st.Cases {
		bodies[i] = g.f.NewBlock(fmt.Sprintf("sw.case%d", i))
	}
	defaultIdx := -1
	for i, cs := range st.Cases {
		if cs.Vals == nil {
			defaultIdx = i
		}
	}
	// Dispatch chain.
	for i, cs := range st.Cases {
		for _, v := range cs.Vals {
			if g.cur == nil {
				break
			}
			val := g.coerce(g.expr(v), cond.Type())
			cmp := g.emit(ir.OpICmp, ast.Scalar(ast.KInt))
			cmp.Pr = ir.PredEQ
			cmp.Args = []ir.Value{cond, val}
			next := g.f.NewBlock("sw.test")
			g.condbr(cmp, bodies[i], next)
			g.cur = next
		}
	}
	if defaultIdx >= 0 {
		g.br(bodies[defaultIdx])
	} else {
		g.br(exit)
	}
	// Bodies with C fallthrough.
	for i, cs := range st.Cases {
		g.cur = bodies[i]
		g.loops = append(g.loops, loopCtx{breakBlk: exit})
		for _, s := range cs.Body {
			g.stmt(s)
			if g.cur == nil {
				break
			}
		}
		g.loops = g.loops[:len(g.loops)-1]
		if i+1 < len(bodies) {
			g.br(bodies[i+1])
		} else {
			g.br(exit)
		}
	}
	g.cur = exit
}

func (g *generator) returnStmt(st *ast.ReturnStmt) {
	if len(g.inlines) > 0 {
		ic := g.inlines[len(g.inlines)-1]
		if st.X != nil && ic.retAlloca != nil {
			v := g.coerce(g.expr(st.X), ic.retAlloca.Elem)
			g.storeTo(ic.retAlloca, nil, v)
		}
		g.br(ic.retBlock)
		return
	}
	// Kernel return: terminate this path.
	g.emit(ir.OpRet, ast.Scalar(ast.KVoid))
	g.cur = nil
}

// staticTrip recognizes for (i = c0; i <cmp> cN; i += step) with integer
// constants and returns the trip count.
func (g *generator) staticTrip(st *ast.ForStmt) (int64, bool) {
	// Initial value.
	var ivSym *sema.Symbol
	var start int64
	switch init := st.Init.(type) {
	case *ast.DeclStmt:
		sym := g.info.VarSyms[init]
		v, ok := constInt(init.Init)
		if !ok {
			return 0, false
		}
		ivSym, start = sym, v
	case *ast.ExprStmt:
		as, ok := ast.Unparen(init.X).(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			return 0, false
		}
		id, ok := ast.Unparen(as.LHS).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, ok := constInt(as.RHS)
		if !ok {
			return 0, false
		}
		ivSym, start = g.info.Uses[id], v
	default:
		return 0, false
	}
	if ivSym == nil {
		return 0, false
	}
	// Condition i < N, i <= N, i > N, i >= N.
	cmp, ok := ast.Unparen(st.Cond).(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	id, ok := ast.Unparen(cmp.X).(*ast.Ident)
	if !ok || g.info.Uses[id] != ivSym {
		return 0, false
	}
	bound, ok := constInt(cmp.Y)
	if !ok {
		return 0, false
	}
	// Step from post: i++, i--, i+=c, i-=c.
	step := int64(0)
	switch post := ast.Unparen(st.Post).(type) {
	case *ast.UnaryExpr:
		pid, ok := ast.Unparen(post.X).(*ast.Ident)
		if !ok || g.info.Uses[pid] != ivSym {
			return 0, false
		}
		switch post.Op {
		case token.INC:
			step = 1
		case token.DEC:
			step = -1
		default:
			return 0, false
		}
	case *ast.AssignExpr:
		pid, ok := ast.Unparen(post.LHS).(*ast.Ident)
		if !ok || g.info.Uses[pid] != ivSym {
			return 0, false
		}
		c, ok := constInt(post.RHS)
		if !ok {
			return 0, false
		}
		switch post.Op {
		case token.ADDASSIGN:
			step = c
		case token.SUBASSIGN:
			step = -c
		default:
			return 0, false
		}
	default:
		return 0, false
	}
	if step == 0 {
		return 0, false
	}
	var trips int64
	switch cmp.Op {
	case token.LT:
		if step <= 0 || bound <= start {
			return 0, false
		}
		trips = ceilDiv(bound-start, step)
	case token.LEQ:
		if step <= 0 || bound < start {
			return 0, false
		}
		trips = ceilDiv(bound-start+1, step)
	case token.GT:
		if step >= 0 || bound >= start {
			return 0, false
		}
		trips = ceilDiv(start-bound, -step)
	case token.GEQ:
		if step >= 0 || bound > start {
			return 0, false
		}
		trips = ceilDiv(start-bound+1, -step)
	default:
		return 0, false
	}
	return trips, true
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func constInt(e ast.Expr) (int64, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.UnaryExpr:
		v, ok := constInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		}
	case *ast.BinaryExpr:
		a, ok1 := constInt(x.X)
		b, ok2 := constInt(x.Y)
		if ok1 && ok2 {
			switch x.Op {
			case token.ADD:
				return a + b, true
			case token.SUB:
				return a - b, true
			case token.MUL:
				return a * b, true
			case token.QUO:
				if b != 0 {
					return a / b, true
				}
			case token.SHL:
				return a << uint(b), true
			case token.SHR:
				return a >> uint(b), true
			}
		}
	case *ast.CastExpr:
		return constInt(x.X)
	}
	return 0, false
}
