package irgen

import (
	"repro/internal/ir"
	"repro/internal/opencl/ast"
	"repro/internal/opencl/sema"
	"repro/internal/opencl/token"
)

// indexValue materializes the element index of a memRef as a value.
func (g *generator) indexValue(ref memRef) ir.Value {
	if ref.index == nil {
		return ir.IntConst(ast.KLong, 0)
	}
	return ref.index
}

// loadFrom emits a load of one element from storage.
func (g *generator) loadFrom(store ir.Storage, index ir.Value, elem ast.Type) ir.Value {
	in := g.emit(ir.OpLoad, elem)
	in.Mem = store
	if index == nil {
		index = ir.IntConst(ast.KLong, 0)
	}
	in.Args = []ir.Value{index}
	return in
}

// storeTo emits a store of one element into storage.
func (g *generator) storeTo(store ir.Storage, index ir.Value, v ir.Value) {
	in := g.emit(ir.OpStore, ast.Scalar(ast.KVoid))
	in.Mem = store
	if index == nil {
		index = ir.IntConst(ast.KLong, 0)
	}
	in.Args = []ir.Value{index, v}
}

// elemOf returns the element type stored in a storage object.
func elemOf(store ir.Storage) ast.Type {
	switch s := store.(type) {
	case *ir.Param:
		return s.Elem()
	case *ir.Alloca:
		return s.Elem
	}
	return ast.Scalar(ast.KInt)
}

// coerce inserts a cast so v has type to (scalar widening, int<->float,
// scalar->vector splat).
func (g *generator) coerce(v ir.Value, to ast.Type) ir.Value {
	if v == nil {
		return ir.IntConst(ast.KInt, 0)
	}
	from := v.Type()
	if from.Equal(to) {
		return v
	}
	// Constant folding for scalar constants.
	if c, ok := v.(*ir.Const); ok && to.IsScalar() {
		nc := &ir.Const{T: to}
		if to.Base.IsFloat() {
			if from.Base.IsFloat() {
				nc.F = c.F
			} else {
				nc.F = float64(c.I)
			}
		} else {
			if from.Base.IsFloat() {
				nc.I = int64(c.F)
			} else {
				nc.I = c.I
			}
		}
		return nc
	}
	if from.IsScalar() && to.IsVector() {
		// Splat: build a vector from the scalar.
		sc := g.coerce(v, ast.Scalar(to.Base))
		in := g.emit(ir.OpVecBuild, to)
		for i := 0; i < to.Lanes(); i++ {
			in.Args = append(in.Args, sc)
		}
		return in
	}
	in := g.emit(ir.OpCast, to)
	in.Args = []ir.Value{v}
	return in
}

// ---- pointer expressions ----

// ptrExpr evaluates a pointer-typed expression to a symbolic memRef.
func (g *generator) ptrExpr(e ast.Expr) memRef {
	if g.err != nil {
		return memRef{}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sym := g.info.Uses[x]
		b := g.bindings[sym]
		if b == nil {
			g.fail(x.Pos(), "internal: unbound identifier %s", x.Name)
			return memRef{}
		}
		switch {
		case b.ptr != nil && b.ptrOff != nil:
			// Pointer variable: current offset from its cell.
			off := g.loadFrom(b.ptrOff, nil, ast.Scalar(ast.KLong))
			return memRef{store: b.ptr.store, index: off}
		case b.ptr != nil:
			return memRef{store: b.ptr.store, index: b.ptr.index}
		case b.alloca != nil && b.alloca.IsArray():
			rem := b.alloca.Dims
			if len(rem) > 0 {
				rem = rem[1:]
			}
			return memRef{store: b.alloca, rem: rem}
		default:
			g.fail(x.Pos(), "%s is not a pointer or array", x.Name)
			return memRef{}
		}
	case *ast.IndexExpr:
		base := g.ptrExpr(x.X)
		if base.store == nil {
			return memRef{}
		}
		idx := g.coerce(g.expr(x.Index), ast.Scalar(ast.KLong))
		if len(base.rem) > 0 {
			// Partially indexed multi-dim array: scale by the remaining
			// row size.
			row := int64(1)
			for _, d := range base.rem {
				row *= d
			}
			scaled := g.binOp(ir.OpMul, idx, ir.IntConst(ast.KLong, row))
			return memRef{
				store: base.store,
				index: g.addIndex(base.index, scaled),
				rem:   base.rem[1:],
			}
		}
		return memRef{store: base.store, index: g.addIndex(base.index, idx)}
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND: // &lv — address of an lvalue
			return g.addressOf(x.X)
		}
	case *ast.BinaryExpr:
		// Pointer arithmetic p + n / p - n.
		xt := x.X.TypeOf()
		yt := x.Y.TypeOf()
		var base memRef
		var offExpr ast.Expr
		neg := false
		switch {
		case xt.Ptr:
			base = g.ptrExpr(x.X)
			offExpr = x.Y
			neg = x.Op == token.SUB
		case yt.Ptr && x.Op == token.ADD:
			base = g.ptrExpr(x.Y)
			offExpr = x.X
		default:
			g.fail(x.Pos(), "unsupported pointer expression")
			return memRef{}
		}
		if base.store == nil {
			return memRef{}
		}
		off := g.coerce(g.expr(offExpr), ast.Scalar(ast.KLong))
		if neg {
			off = g.binOp(ir.OpSub, ir.IntConst(ast.KLong, 0), off)
		}
		return memRef{store: base.store, index: g.addIndex(base.index, off), rem: base.rem}
	case *ast.CastExpr:
		return g.ptrExpr(x.X)
	}
	g.fail(e.Pos(), "unsupported pointer expression %T", e)
	return memRef{}
}

// addressOf resolves &lvalue to a memRef.
func (g *generator) addressOf(e ast.Expr) memRef {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sym := g.info.Uses[x]
		b := g.bindings[sym]
		if b == nil || b.alloca == nil {
			g.fail(x.Pos(), "cannot take address of %s", x.Name)
			return memRef{}
		}
		return memRef{store: b.alloca}
	case *ast.IndexExpr:
		return g.ptrExpr(x)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return g.ptrExpr(x.X)
		}
	}
	g.fail(e.Pos(), "cannot take address of expression %T", e)
	return memRef{}
}

// addIndex adds two element indices, folding the common nil/0 cases.
func (g *generator) addIndex(a, b ir.Value) ir.Value {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if c, ok := a.(*ir.Const); ok && c.IsZero() {
		return b
	}
	if c, ok := b.(*ir.Const); ok && c.IsZero() {
		return a
	}
	return g.binOp(ir.OpAdd, a, b)
}

// binOp emits a binary arithmetic instruction with both operands coerced
// to a common type.
func (g *generator) binOp(op ir.Op, a, b ir.Value) ir.Value {
	t := a.Type()
	b = g.coerce(b, t)
	// Constant fold integer add/sub/mul to keep index chains short.
	if ca, ok := a.(*ir.Const); ok {
		if cb, ok2 := b.(*ir.Const); ok2 && t.IsScalar() && t.Base.IsInteger() {
			switch op {
			case ir.OpAdd:
				return ir.IntConst(t.Base, ca.I+cb.I)
			case ir.OpSub:
				return ir.IntConst(t.Base, ca.I-cb.I)
			case ir.OpMul:
				return ir.IntConst(t.Base, ca.I*cb.I)
			}
		}
	}
	in := g.emit(op, t)
	in.Args = []ir.Value{a, b}
	return in
}

// ---- lvalues ----

// assignTo stores v into the lvalue lhs, returning the stored value.
func (g *generator) assignTo(lhs ast.Expr, v ir.Value) ir.Value {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		sym := g.info.Uses[x]
		b := g.bindings[sym]
		if b == nil {
			g.fail(x.Pos(), "internal: unbound identifier %s", x.Name)
			return v
		}
		if b.ptrOff != nil {
			// Pointer variable reassignment: only offsets within the same
			// storage object are representable (handled in assign()).
			g.fail(x.Pos(), "pointer reassignment must use += / -= on %s", x.Name)
			return v
		}
		if b.alloca == nil {
			g.fail(x.Pos(), "cannot assign to %s", x.Name)
			return v
		}
		v = g.coerce(v, b.alloca.Elem)
		g.storeTo(b.alloca, nil, v)
		return v
	case *ast.IndexExpr:
		ref := g.ptrExpr(x)
		if ref.store == nil {
			return v
		}
		v = g.coerce(v, elemOf(ref.store))
		g.storeTo(ref.store, g.indexValue(ref), v)
		return v
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			ref := g.ptrExpr(x.X)
			if ref.store == nil {
				return v
			}
			v = g.coerce(v, elemOf(ref.store))
			g.storeTo(ref.store, g.indexValue(ref), v)
			return v
		}
	case *ast.MemberExpr:
		// Vector component store: load, insert, store back.
		inner := ast.Unparen(x.X)
		switch base := inner.(type) {
		case *ast.Ident:
			sym := g.info.Uses[base]
			b := g.bindings[sym]
			if b == nil || b.alloca == nil {
				g.fail(x.Pos(), "cannot assign to component of %s", base.Name)
				return v
			}
			vec := g.loadFrom(b.alloca, nil, b.alloca.Elem)
			nv := g.vecInsert(vec, x.Lanes, v)
			g.storeTo(b.alloca, nil, nv)
			return v
		case *ast.IndexExpr:
			ref := g.ptrExpr(base)
			if ref.store == nil {
				return v
			}
			idx := g.indexValue(ref)
			vec := g.loadFrom(ref.store, idx, elemOf(ref.store))
			nv := g.vecInsert(vec, x.Lanes, v)
			g.storeTo(ref.store, idx, nv)
			return v
		}
	}
	g.fail(lhs.Pos(), "unsupported assignment target %T", lhs)
	return v
}

func (g *generator) vecInsert(vec ir.Value, lanes []int, v ir.Value) ir.Value {
	t := vec.Type()
	elemT := ast.Scalar(t.Base)
	args := []ir.Value{vec}
	if len(lanes) == 1 {
		args = append(args, g.coerce(v, elemT))
	} else {
		// Vector-into-lanes: extract each lane of v.
		for i := range lanes {
			ext := g.emit(ir.OpVecExtract, elemT)
			ext.Args = []ir.Value{v}
			ext.Lanes = []int{i}
			args = append(args, ext)
		}
	}
	in := g.emit(ir.OpVecInsert, t)
	in.Args = args
	in.Lanes = lanes
	return in
}

// loadLValue reads the current value of an lvalue expression.
func (g *generator) loadLValue(e ast.Expr) ir.Value {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		sym := g.info.Uses[x]
		b := g.bindings[sym]
		if b == nil {
			g.fail(x.Pos(), "internal: unbound identifier %s", x.Name)
			return ir.IntConst(ast.KInt, 0)
		}
		switch {
		case b.value != nil:
			return b.value
		case b.alloca != nil && !b.alloca.IsArray():
			return g.loadFrom(b.alloca, nil, b.alloca.Elem)
		default:
			g.fail(x.Pos(), "cannot read %s as a value", x.Name)
			return ir.IntConst(ast.KInt, 0)
		}
	case *ast.IndexExpr:
		ref := g.ptrExpr(x)
		if ref.store == nil {
			return ir.IntConst(ast.KInt, 0)
		}
		return g.loadFrom(ref.store, g.indexValue(ref), elemOf(ref.store))
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			ref := g.ptrExpr(x.X)
			if ref.store == nil {
				return ir.IntConst(ast.KInt, 0)
			}
			return g.loadFrom(ref.store, g.indexValue(ref), elemOf(ref.store))
		}
	}
	return g.expr(e)
}

// ---- expressions ----

func (g *generator) expr(e ast.Expr) ir.Value {
	if g.err != nil {
		return ir.IntConst(ast.KInt, 0)
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return g.expr(x.X)
	case *ast.IntLit:
		return ir.IntConst(ast.KInt, x.Value)
	case *ast.FloatLit:
		return ir.FloatConst(ast.KFloat, x.Value)
	case *ast.Ident:
		return g.loadLValue(x)
	case *ast.IndexExpr:
		return g.loadLValue(x)
	case *ast.UnaryExpr:
		return g.unary(x)
	case *ast.BinaryExpr:
		return g.binary(x)
	case *ast.AssignExpr:
		return g.assign(x)
	case *ast.CondExpr:
		cond := g.expr(x.Cond)
		a := g.expr(x.Then)
		b := g.expr(x.Else)
		t := x.TypeOf()
		a = g.coerce(a, t)
		b = g.coerce(b, t)
		in := g.emit(ir.OpSelect, t)
		in.Args = []ir.Value{cond, a, b}
		return in
	case *ast.CallExpr:
		return g.call(x)
	case *ast.MemberExpr:
		vec := g.expr(x.X)
		t := x.TypeOf()
		in := g.emit(ir.OpVecExtract, t)
		in.Args = []ir.Value{vec}
		in.Lanes = x.Lanes
		return in
	case *ast.CastExpr:
		if x.To.Ptr {
			g.fail(x.Pos(), "pointer casts are not value expressions")
			return ir.IntConst(ast.KInt, 0)
		}
		return g.coerce(g.expr(x.X), x.To)
	case *ast.VecLit:
		return g.vecLit(x)
	}
	g.fail(e.Pos(), "unsupported expression %T", e)
	return ir.IntConst(ast.KInt, 0)
}

func (g *generator) vecLit(x *ast.VecLit) ir.Value {
	elemT := ast.Scalar(x.To.Base)
	var parts []ir.Value
	for _, el := range x.Elems {
		v := g.expr(el)
		if v.Type().IsVector() {
			for i := 0; i < v.Type().Lanes(); i++ {
				ext := g.emit(ir.OpVecExtract, elemT)
				ext.Args = []ir.Value{v}
				ext.Lanes = []int{i}
				parts = append(parts, ext)
			}
		} else {
			parts = append(parts, g.coerce(v, elemT))
		}
	}
	if len(parts) == 1 {
		// Splat.
		for len(parts) < x.To.Lanes() {
			parts = append(parts, parts[0])
		}
	}
	in := g.emit(ir.OpVecBuild, x.To)
	in.Args = parts
	return in
}

func (g *generator) unary(x *ast.UnaryExpr) ir.Value {
	switch x.Op {
	case token.ADD:
		return g.expr(x.X)
	case token.SUB:
		v := g.expr(x.X)
		t := v.Type()
		if c, ok := v.(*ir.Const); ok {
			if t.Base.IsFloat() {
				return ir.FloatConst(t.Base, -c.F)
			}
			return ir.IntConst(t.Base, -c.I)
		}
		op := ir.OpSub
		zero := ir.Value(ir.IntConst(t.Base, 0))
		if t.Base.IsFloat() {
			op = ir.OpFSub
			zero = ir.FloatConst(t.Base, 0)
		}
		if t.IsVector() {
			zero = g.coerce(zero, t)
		}
		in := g.emit(op, t)
		in.Args = []ir.Value{zero, v}
		return in
	case token.NOT:
		v := g.expr(x.X)
		in := g.emit(ir.OpICmp, ast.Scalar(ast.KInt))
		in.Pr = ir.PredEQ
		zero := ir.Value(ir.IntConst(v.Type().Base, 0))
		if v.Type().Base.IsFloat() {
			in.Op = ir.OpFCmp
			zero = ir.FloatConst(v.Type().Base, 0)
		}
		in.Args = []ir.Value{v, zero}
		return in
	case token.TILDE:
		v := g.expr(x.X)
		in := g.emit(ir.OpXor, v.Type())
		in.Args = []ir.Value{v, g.coerce(ir.IntConst(v.Type().Base, -1), v.Type())}
		return in
	case token.MUL:
		return g.loadLValue(x)
	case token.AND:
		g.fail(x.Pos(), "address-of is only supported in pointer contexts")
		return ir.IntConst(ast.KInt, 0)
	case token.INC, token.DEC:
		old := g.loadLValue(x.X)
		t := old.Type()
		op := ir.OpAdd
		var one ir.Value = ir.IntConst(t.Base, 1)
		if t.Base.IsFloat() {
			op = ir.OpFAdd
			one = ir.FloatConst(t.Base, 1)
		}
		if x.Op == token.DEC {
			if t.Base.IsFloat() {
				op = ir.OpFSub
			} else {
				op = ir.OpSub
			}
		}
		in := g.emit(op, t)
		in.Args = []ir.Value{old, one}
		g.assignTo(x.X, in)
		if x.Postfix {
			return old
		}
		return in
	}
	g.fail(x.Pos(), "unsupported unary operator %v", x.Op)
	return ir.IntConst(ast.KInt, 0)
}

func (g *generator) binary(x *ast.BinaryExpr) ir.Value {
	if x.Op == token.COMMA {
		g.expr(x.X)
		return g.expr(x.Y)
	}
	a := g.expr(x.X)
	b := g.expr(x.Y)
	switch x.Op {
	case token.LAND, token.LOR:
		// Hardware datapaths evaluate both sides; combine booleans.
		an := g.boolify(a)
		bn := g.boolify(b)
		op := ir.OpAnd
		if x.Op == token.LOR {
			op = ir.OpOr
		}
		in := g.emit(op, ast.Scalar(ast.KInt))
		in.Args = []ir.Value{an, bn}
		return in
	case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ:
		ct := commonType(a.Type(), b.Type())
		a = g.coerce(a, ct)
		b = g.coerce(b, ct)
		op := ir.OpICmp
		if ct.Base.IsFloat() {
			op = ir.OpFCmp
		}
		in := g.emit(op, x.TypeOf())
		in.Pr = predOf(x.Op)
		in.Args = []ir.Value{a, b}
		return in
	}
	t := x.TypeOf()
	a = g.coerce(a, t)
	b = g.coerce(b, t)
	var op ir.Op
	switch x.Op {
	case token.ADD:
		op = ir.OpAdd
	case token.SUB:
		op = ir.OpSub
	case token.MUL:
		op = ir.OpMul
	case token.QUO:
		op = ir.OpDiv
	case token.REM:
		op = ir.OpRem
	case token.AND:
		op = ir.OpAnd
	case token.OR:
		op = ir.OpOr
	case token.XOR:
		op = ir.OpXor
	case token.SHL:
		op = ir.OpShl
	case token.SHR:
		if t.Base.IsUnsigned() {
			op = ir.OpLShr
		} else {
			op = ir.OpAShr
		}
	default:
		g.fail(x.Pos(), "unsupported binary operator %v", x.Op)
		return ir.IntConst(ast.KInt, 0)
	}
	if t.Base.IsFloat() {
		switch op {
		case ir.OpAdd:
			op = ir.OpFAdd
		case ir.OpSub:
			op = ir.OpFSub
		case ir.OpMul:
			op = ir.OpFMul
		case ir.OpDiv:
			op = ir.OpFDiv
		}
	}
	in := g.emit(op, t)
	in.Args = []ir.Value{a, b}
	return in
}

// boolify converts a value to a 0/1 int.
func (g *generator) boolify(v ir.Value) ir.Value {
	t := v.Type()
	op := ir.OpICmp
	zero := ir.Value(ir.IntConst(t.Base, 0))
	if t.Base.IsFloat() {
		op = ir.OpFCmp
		zero = ir.FloatConst(t.Base, 0)
	}
	in := g.emit(op, ast.Scalar(ast.KInt))
	in.Pr = ir.PredNE
	in.Args = []ir.Value{v, zero}
	return in
}

func predOf(k token.Kind) ir.Pred {
	switch k {
	case token.EQ:
		return ir.PredEQ
	case token.NEQ:
		return ir.PredNE
	case token.LT:
		return ir.PredLT
	case token.LEQ:
		return ir.PredLE
	case token.GT:
		return ir.PredGT
	default:
		return ir.PredGE
	}
}

func commonType(a, b ast.Type) ast.Type {
	rank := func(k ast.BaseKind) int {
		switch k {
		case ast.KDouble:
			return 10
		case ast.KFloat:
			return 9
		case ast.KULong:
			return 8
		case ast.KLong:
			return 7
		case ast.KUInt:
			return 6
		default:
			return 5
		}
	}
	out := a
	if rank(b.Base) > rank(a.Base) {
		out.Base = b.Base
	}
	if b.Lanes() > out.Lanes() {
		out.Vec = b.Vec
	}
	return out
}

func (g *generator) assign(x *ast.AssignExpr) ir.Value {
	// Pointer-variable compound assignment: p += n adjusts the offset cell.
	if id, ok := ast.Unparen(x.LHS).(*ast.Ident); ok {
		if b := g.bindings[g.info.Uses[id]]; b != nil && b.ptrOff != nil {
			switch x.Op {
			case token.ADDASSIGN, token.SUBASSIGN:
				cur := g.loadFrom(b.ptrOff, nil, ast.Scalar(ast.KLong))
				delta := g.coerce(g.expr(x.RHS), ast.Scalar(ast.KLong))
				op := ir.OpAdd
				if x.Op == token.SUBASSIGN {
					op = ir.OpSub
				}
				nv := g.binOp(op, cur, delta)
				g.storeTo(b.ptrOff, nil, nv)
				return nv
			case token.ASSIGN:
				ref := g.ptrExpr(x.RHS)
				if ref.store != b.ptr.store {
					g.fail(x.Pos(), "pointer %s may only be reassigned within its original buffer", id.Name)
					return ir.IntConst(ast.KInt, 0)
				}
				g.storeTo(b.ptrOff, nil, g.indexValue(ref))
				return ir.IntConst(ast.KInt, 0)
			}
		}
	}
	if x.Op == token.ASSIGN {
		v := g.expr(x.RHS)
		return g.assignTo(x.LHS, v)
	}
	// Compound assignment: load, combine, store.
	old := g.loadLValue(x.LHS)
	rhs := g.expr(x.RHS)
	t := old.Type()
	rhs = g.coerce(rhs, t)
	var op ir.Op
	switch x.Op {
	case token.ADDASSIGN:
		op = ir.OpAdd
	case token.SUBASSIGN:
		op = ir.OpSub
	case token.MULASSIGN:
		op = ir.OpMul
	case token.QUOASSIGN:
		op = ir.OpDiv
	case token.REMASSIGN:
		op = ir.OpRem
	case token.ANDASSIGN:
		op = ir.OpAnd
	case token.ORASSIGN:
		op = ir.OpOr
	case token.XORASSIGN:
		op = ir.OpXor
	case token.SHLASSIGN:
		op = ir.OpShl
	case token.SHRASSIGN:
		op = ir.OpAShr
	default:
		g.fail(x.Pos(), "unsupported compound assignment %v", x.Op)
		return old
	}
	if t.Base.IsFloat() {
		switch op {
		case ir.OpAdd:
			op = ir.OpFAdd
		case ir.OpSub:
			op = ir.OpFSub
		case ir.OpMul:
			op = ir.OpFMul
		case ir.OpDiv:
			op = ir.OpFDiv
		}
	}
	in := g.emit(op, t)
	in.Args = []ir.Value{old, rhs}
	return g.assignTo(x.LHS, in)
}

func (g *generator) call(x *ast.CallExpr) ir.Value {
	if b := g.info.BuiltinCalls[x]; b != nil {
		return g.builtinCall(x, b)
	}
	fn := g.info.Calls[x]
	if fn == nil {
		g.fail(x.Pos(), "internal: unresolved call %s", x.Fun)
		return ir.IntConst(ast.KInt, 0)
	}
	return g.inlineCall(x, fn)
}

func (g *generator) builtinCall(x *ast.CallExpr, b *sema.Builtin) ir.Value {
	switch b.Kind {
	case sema.BWorkItem:
		dim := 0
		if len(x.Args) > 0 {
			if c, ok := constInt(x.Args[0]); ok {
				dim = int(c)
			} else {
				// Dynamic dimension arguments are rare; evaluate and pin 0.
				g.expr(x.Args[0])
			}
		}
		in := g.emit(ir.OpWorkItem, x.TypeOf())
		in.Fn = b.Name
		in.Dim = dim
		return in
	case sema.BConvert:
		return g.coerce(g.expr(x.Args[0]), x.TypeOf())
	case sema.BAtomic:
		ref := g.ptrExpr(x.Args[0])
		if ref.store == nil {
			return ir.IntConst(ast.KInt, 0)
		}
		args := []ir.Value{g.indexValue(ref)}
		for _, a := range x.Args[1:] {
			args = append(args, g.coerce(g.expr(a), elemOf(ref.store)))
		}
		in := g.emit(ir.OpAtomic, x.TypeOf())
		in.Fn = b.Name
		in.Mem = ref.store
		in.Args = args
		return in
	default: // BMath, BSelect
		t := x.TypeOf()
		var args []ir.Value
		for _, a := range x.Args {
			av := g.expr(a)
			// Element-wise builtins: unify operand ranks with the result.
			if t.IsVector() && av.Type().IsScalar() {
				av = g.coerce(av, t)
			}
			args = append(args, av)
		}
		in := g.emit(ir.OpCall, t)
		in.Fn = b.Name
		in.Args = args
		return in
	}
}

func (g *generator) inlineCall(x *ast.CallExpr, fn *ast.FuncDecl) ir.Value {
	if len(g.inlines) >= maxInlineDepth {
		g.fail(x.Pos(), "call nesting too deep (recursion?) at %s", fn.Name)
		return ir.IntConst(ast.KInt, 0)
	}
	// Bind arguments.
	saved := make(map[*sema.Symbol]*binding, len(fn.Params))
	for i, p := range fn.Params {
		sym := g.info.ParamSyms[p]
		saved[sym] = g.bindings[sym]
		if i >= len(x.Args) {
			g.bindings[sym] = &binding{value: ir.IntConst(ast.KInt, 0)}
			continue
		}
		if p.Type.Ptr {
			ref := g.ptrExpr(x.Args[i])
			g.bindings[sym] = &binding{ptr: &memRef{store: ref.store, index: ref.index, rem: ref.rem}}
		} else {
			v := g.coerce(g.expr(x.Args[i]), p.Type)
			// Parameters are mutable inside the callee: give them a cell.
			cell := g.newAlloca(fn.Name+"."+p.Name, p.Type, nil, ast.ASPrivate)
			g.storeTo(cell, nil, v)
			g.bindings[sym] = &binding{alloca: cell}
		}
	}
	var retAl *ir.Alloca
	if !fn.Ret.IsVoid() {
		retAl = g.newAlloca(fn.Name+".ret", fn.Ret, nil, ast.ASPrivate)
	}
	retBlk := g.f.NewBlock(fn.Name + ".exit")
	g.inlines = append(g.inlines, inlineCtx{retAlloca: retAl, retBlock: retBlk, fn: fn})
	g.stmt(fn.Body)
	g.inlines = g.inlines[:len(g.inlines)-1]
	g.br(retBlk)
	g.cur = retBlk
	// Restore outer bindings.
	for sym, b := range saved {
		if b == nil {
			delete(g.bindings, sym)
		} else {
			g.bindings[sym] = b
		}
	}
	if retAl != nil {
		return g.loadFrom(retAl, nil, fn.Ret)
	}
	return ir.IntConst(ast.KInt, 0)
}
