package irgen

import (
	"repro/internal/opencl/parser"
	"repro/internal/opencl/sema"
)

// Compile runs the full frontend — parse, semantic analysis, IR
// generation — over one OpenCL source buffer.
func Compile(file string, src []byte, defines map[string]string) (*Module, error) {
	f, err := parser.Parse(file, src, defines)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	return Build(info)
}
