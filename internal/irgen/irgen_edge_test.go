package irgen

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// mustFailCompile asserts an irgen-level failure mentioning want.
func mustFailCompile(t *testing.T, src, want string) {
	t.Helper()
	_, err := Compile("bad.cl", []byte(src), nil)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestUninitializedPointerVar(t *testing.T) {
	mustFailCompile(t, `
__kernel void k(__global float* x) {
    __global float* p;
    x[0] = p[0];
}`, "must be initialized")
}

func TestPointerReassignAcrossBuffers(t *testing.T) {
	mustFailCompile(t, `
__kernel void k(__global float* a, __global float* b) {
    __global float* p = a;
    p = b + 1;
    a[0] = p[0];
}`, "original buffer")
}

func TestBreakOutsideLoop(t *testing.T) {
	mustFailCompile(t, `
__kernel void k(__global int* x) {
    x[0] = 1;
    break;
}`, "break outside")
}

func TestContinueOutsideLoop(t *testing.T) {
	mustFailCompile(t, `
__kernel void k(__global int* x) {
    continue;
}`, "continue outside")
}

func TestContinueInsideSwitchOutsideLoop(t *testing.T) {
	// A switch provides a break target but not a continue target.
	mustFailCompile(t, `
__kernel void k(__global int* x) {
    switch (x[0]) {
    case 1:
        continue;
    }
}`, "continue outside")
}

func TestAddressOfNonLValue(t *testing.T) {
	mustFailCompile(t, `
int helper(__global int* p) { return p[0]; }
__kernel void k(__global int* x) {
    x[0] = helper(&(x[0] + 1));
}`, "")
}

func TestPointerVarWithinSameBufferOK(t *testing.T) {
	m, err := Compile("ok.cl", []byte(`
__kernel void k(__global float* a) {
    __global float* p = a + 4;
    p = a + 8;
    p += 2;
    p -= 1;
    a[0] = p[0];
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel("k") == nil {
		t.Fatal("kernel missing")
	}
}

func TestCommaOperatorLowered(t *testing.T) {
	m, err := Compile("c.cl", []byte(`
__kernel void k(__global int* x) {
    int a;
    int b;
    for (a = 0, b = 8; a < b; a++, b--) { x[a] = b; }
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	k.AnalyzeLoops()
	if len(k.Loops) != 1 {
		t.Fatalf("loops = %d", len(k.Loops))
	}
}

func TestNegativeConstantFolding(t *testing.T) {
	m, err := Compile("n.cl", []byte(`
__kernel void k(__global float* x) {
    x[0] = -2.5f * x[1] + (-3) * 1.0f;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	// -2.5 must be folded into a constant, not materialized as 0-2.5.
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFSub {
				if c, ok := in.Args[0].(*ir.Const); ok && c.F == 0 {
					t.Error("negation of a constant not folded")
				}
			}
		}
	}
}

func TestLogicalOpsEagerLowering(t *testing.T) {
	m, err := Compile("l.cl", []byte(`
__kernel void k(__global int* x, int n) {
    if (x[0] > 1 && x[1] < n || !(x[2] == 0)) { x[3] = 1; }
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	var ands, ors int
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAnd:
				ands++
			case ir.OpOr:
				ors++
			}
		}
	}
	if ands != 1 || ors != 1 {
		t.Errorf("and=%d or=%d, want 1/1 (datapath lowering)", ands, ors)
	}
}

func TestBitwiseNotAndShifts(t *testing.T) {
	m, err := Compile("b.cl", []byte(`
__kernel void k(__global int* x, __global uint* u) {
    x[0] = ~x[1] << 2;
    x[2] = x[3] >> 1;
    u[0] = u[1] >> 3;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	ops := map[ir.Op]int{}
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			ops[in.Op]++
		}
	}
	if ops[ir.OpXor] != 1 { // ~ lowers to xor -1
		t.Errorf("xor = %d, want 1", ops[ir.OpXor])
	}
	if ops[ir.OpShl] != 1 || ops[ir.OpAShr] != 1 || ops[ir.OpLShr] != 1 {
		t.Errorf("shifts = shl %d ashr %d lshr %d", ops[ir.OpShl], ops[ir.OpAShr], ops[ir.OpLShr])
	}
}

func TestDeepInlineChain(t *testing.T) {
	m, err := Compile("d.cl", []byte(`
float f1(float a) { return a + 1.0f; }
float f2(float a) { return f1(a) + 1.0f; }
float f3(float a) { return f2(a) + 1.0f; }
float f4(float a) { return f3(a) + 1.0f; }
__kernel void k(__global float* x) { x[0] = f4(x[1]); }
`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	adds := 0
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFAdd {
				adds++
			}
		}
	}
	if adds != 4 {
		t.Errorf("fadds = %d, want 4 (all levels inlined)", adds)
	}
}

func TestVecLitSplat(t *testing.T) {
	m, err := Compile("v.cl", []byte(`
__kernel void k(__global float4* x) {
    x[0] = (float4)(2.0f);
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel("k")
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpVecBuild && len(in.Args) != 4 {
				t.Errorf("splat vec.build has %d args, want 4", len(in.Args))
			}
		}
	}
}

func TestKernelModuleLookup(t *testing.T) {
	m, err := Compile("m.cl", []byte(`
__kernel void a(__global int* x) { x[0] = 1; }
__kernel void b(__global int* x) { x[0] = 2; }
`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel("a") == nil || m.Kernel("b") == nil || m.Kernel("c") != nil {
		t.Error("module kernel lookup wrong")
	}
	if len(m.Kernels) != 2 {
		t.Errorf("kernels = %d", len(m.Kernels))
	}
}
