package irgen

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

func compile(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func kernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m := compile(t, src)
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestVecAddIR(t *testing.T) {
	k := kernel(t, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}`, "vadd")
	if got := countOps(k, ir.OpWorkItem); got != 1 {
		t.Errorf("workitem ops = %d, want 1", got)
	}
	// Loads: a[i], b[i], plus loads of the local i. Global loads only:
	var globalLoads, globalStores int
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				if p, ok := in.Mem.(*ir.Param); ok && p.Space() == ast.ASGlobal {
					globalLoads++
				}
			}
			if in.Op == ir.OpStore {
				if p, ok := in.Mem.(*ir.Param); ok && p.Space() == ast.ASGlobal {
					globalStores++
				}
			}
		}
	}
	if globalLoads != 2 || globalStores != 1 {
		t.Errorf("global loads=%d stores=%d, want 2/1", globalLoads, globalStores)
	}
	if got := countOps(k, ir.OpFAdd); got != 1 {
		t.Errorf("fadd = %d, want 1", got)
	}
	if got := countOps(k, ir.OpCondBr); got != 1 {
		t.Errorf("condbr = %d, want 1", got)
	}
}

func TestLoopStructureAndTripHint(t *testing.T) {
	k := kernel(t, `
__kernel void sum16(__global float* x) {
    float acc = 0.0f;
    for (int i = 0; i < 16; i++) { acc += x[i]; }
    x[0] = acc;
}`, "sum16")
	if len(k.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(k.Loops))
	}
	if k.Loops[0].StaticTrip != 16 {
		t.Errorf("static trip = %d, want 16", k.Loops[0].StaticTrip)
	}
}

func TestStaticTripVariants(t *testing.T) {
	cases := []struct {
		loop string
		trip int64
	}{
		{"for (int i = 0; i < 10; i++)", 10},
		{"for (int i = 0; i <= 10; i++)", 11},
		{"for (int i = 2; i < 10; i += 3)", 3},
		{"for (int i = 10; i > 0; i--)", 10},
		{"for (int i = 9; i >= 0; i--)", 10},
		{"for (int i = 0; i < 7; i += 2)", 4},
	}
	for _, c := range cases {
		src := `__kernel void k(__global int* x) { int s = 0; ` + c.loop +
			` { s += x[i]; } x[0] = s; }`
		k := kernel(t, src, "k")
		if len(k.Loops) != 1 {
			t.Errorf("%s: loops = %d", c.loop, len(k.Loops))
			continue
		}
		if k.Loops[0].StaticTrip != c.trip {
			t.Errorf("%s: trip = %d, want %d", c.loop, k.Loops[0].StaticTrip, c.trip)
		}
	}
}

func TestDynamicTripNotStatic(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global int* x, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += x[i]; }
    x[0] = s;
}`, "k")
	if len(k.Loops) != 1 {
		t.Fatalf("loops = %d", len(k.Loops))
	}
	if k.Loops[0].StaticTrip != -1 {
		t.Errorf("trip = %d, want -1 (dynamic)", k.Loops[0].StaticTrip)
	}
}

func TestNestedLoops(t *testing.T) {
	k := kernel(t, `
__kernel void mm(__global float* a, __global float* b, __global float* c) {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 8; j++) {
            float acc = 0.0f;
            for (int p = 0; p < 16; p++) { acc += a[i*16+p] * b[p*8+j]; }
            c[i*8+j] = acc;
        }
    }
}`, "mm")
	if len(k.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(k.Loops))
	}
	depths := map[int]int{}
	for _, l := range k.Loops {
		depths[l.Depth()]++
	}
	if depths[1] != 1 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("loop depths = %v, want one each of 1,2,3", depths)
	}
}

func TestHelperInlining(t *testing.T) {
	k := kernel(t, `
float mulacc(float a, float b, float c) { return a * b + c; }
__kernel void k(__global float* x) {
    x[0] = mulacc(x[1], x[2], x[3]);
}`, "k")
	if got := countOps(k, ir.OpFMul); got != 1 {
		t.Errorf("fmul = %d, want 1 (inlined)", got)
	}
	if got := countOps(k, ir.OpFAdd); got != 1 {
		t.Errorf("fadd = %d, want 1 (inlined)", got)
	}
}

func TestInlinePointerArg(t *testing.T) {
	k := kernel(t, `
float first(__global float* p) { return p[0]; }
__kernel void k(__global float* x) {
    x[0] = first(x + 4);
}`, "k")
	// The load from p[0] must hit the x buffer.
	found := false
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				if p, ok := in.Mem.(*ir.Param); ok && p.PName == "x" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("inlined pointer arg does not reference buffer x")
	}
}

func TestBarrierLowering(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float* x) {
    __local float t[64];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[l] = t[63 - l];
}`, "k")
	if !k.HasBarrier {
		t.Error("HasBarrier not set")
	}
	if got := countOps(k, ir.OpBarrier); got != 1 {
		t.Errorf("barriers = %d, want 1", got)
	}
	locals := k.LocalAllocas()
	if len(locals) != 1 || locals[0].Count != 64 {
		t.Errorf("local allocas = %v", locals)
	}
}

func TestMultiDimArrayFlattening(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float* x) {
    __local float tile[4][8];
    int l = get_local_id(0);
    tile[l][l] = x[l];
    x[l] = tile[0][l];
}`, "k")
	// tile[l][l] should compute l*8 + l.
	var sawMul8 bool
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMul {
				for _, a := range in.Args {
					if c, ok := a.(*ir.Const); ok && c.I == 8 {
						sawMul8 = true
					}
				}
			}
		}
	}
	if !sawMul8 {
		t.Error("row scaling (×8) not found for tile[l][l]")
	}
}

func TestPointerVariable(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float* x, int n) {
    __global float* p = x + 2;
    p += 3;
    x[0] = p[1];
}`, "k")
	if k == nil {
		t.Fatal("nil kernel")
	}
	// Result must load from buffer x; index math is dynamic, just check
	// the load resolves to x.
	loads := 0
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				if p, ok := in.Mem.(*ir.Param); ok && p.PName == "x" {
					loads++
				}
			}
		}
	}
	if loads == 0 {
		t.Error("pointer variable load did not resolve to buffer x")
	}
}

func TestVectorOps(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float4* x) {
    float4 v = x[0];
    float4 w = v * 2.0f;
    w.x = v.y;
    x[1] = w;
}`, "k")
	if got := countOps(k, ir.OpVecInsert); got != 1 {
		t.Errorf("vec.insert = %d, want 1", got)
	}
	if countOps(k, ir.OpVecExtract) == 0 {
		t.Error("no vec.extract emitted for v.y")
	}
	if countOps(k, ir.OpFMul) != 1 {
		t.Error("vector multiply missing")
	}
}

func TestSelectForTernary(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float* x) {
    float v = x[0];
    x[1] = v > 0.0f ? v : -v;
}`, "k")
	if got := countOps(k, ir.OpSelect); got != 1 {
		t.Errorf("select = %d, want 1", got)
	}
}

func TestBreakContinueCFG(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global int* x, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (x[i] < 0) continue;
        if (x[i] == 99) break;
        s += x[i];
    }
    x[0] = s;
}`, "k")
	k.AnalyzeLoops()
	if len(k.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(k.Loops))
	}
	// All blocks terminated.
	for _, b := range k.Blocks {
		if b.Term() == nil {
			t.Errorf("block %s unterminated", b.Label())
		}
	}
}

func TestAtomicLowering(t *testing.T) {
	k := kernel(t, `
__kernel void hist(__global int* bins, __global int* data, int n) {
    int i = get_global_id(0);
    if (i < n) { atomic_add(bins + data[i], 1); }
}`, "hist")
	if got := countOps(k, ir.OpAtomic); got != 1 {
		t.Errorf("atomics = %d, want 1", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global float* x) {
    x[0] = sqrt(x[1]) + pow(x[2], 2.0f) + fmax(x[3], x[4]);
}`, "k")
	calls := map[string]int{}
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				calls[in.Fn]++
			}
		}
	}
	if calls["sqrt"] != 1 || calls["pow"] != 1 || calls["fmax"] != 1 {
		t.Errorf("calls = %v", calls)
	}
}

func TestIRStringDump(t *testing.T) {
	k := kernel(t, `__kernel void k(__global int* x) { x[0] = 1 + 2; }`, "k")
	s := k.String()
	if !strings.Contains(s, "func k(") {
		t.Errorf("dump missing header: %s", s)
	}
	if !strings.Contains(s, "store") {
		t.Errorf("dump missing store: %s", s)
	}
}

func TestDominators(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global int* x, int n) {
    if (n > 0) { x[0] = 1; } else { x[0] = 2; }
    x[1] = 3;
}`, "k")
	k.BuildCFG()
	idom := k.Dominators()
	entry := k.Entry()
	for _, b := range k.Blocks[1:] {
		if !ir.Dominates(idom, entry, b) {
			t.Errorf("entry does not dominate %s", b.Label())
		}
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global int* x) {
    x[0] = 1;
    return;
}`, "k")
	for _, b := range k.Blocks {
		if b.Term() == nil {
			t.Errorf("unterminated block %s", b.Label())
		}
	}
}

func TestUnrollHintPropagated(t *testing.T) {
	k := kernel(t, `
__kernel void k(__global int* x) {
    int s = 0;
    #pragma unroll 8
    for (int i = 0; i < 64; i++) { s += x[i]; }
    x[0] = s;
}`, "k")
	if len(k.Loops) != 1 || k.Loops[0].Unroll != 8 {
		t.Fatalf("unroll hint not propagated: %+v", k.Loops)
	}
}
