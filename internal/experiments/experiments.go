// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) on the simulated substrate. Each function returns the
// rendered artifact plus the summary statistics the paper quotes, and is
// reachable both from cmd/flexcl-bench and from the repository-level
// benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/dse"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/rtlsim"
)

// Config controls experiment scope and fidelity.
type Config struct {
	Platform *device.Platform
	// SimMaxGroups caps ground-truth simulation per design (0 = all
	// work-groups; experiments default to 8 with extrapolation).
	SimMaxGroups int
	// MaxKernels truncates suites for quick runs (0 = all).
	MaxKernels int
	// Workers shards each kernel's design space over this many
	// goroutines (0 = runtime.GOMAXPROCS, 1 = serial).
	Workers int
}

func (c Config) platform() *device.Platform {
	if c.Platform != nil {
		return c.Platform
	}
	return device.Virtex7()
}

func (c Config) simGroups() int {
	if c.SimMaxGroups > 0 {
		return c.SimMaxGroups
	}
	return 8
}

func limit(ks []*bench.Kernel, n int) []*bench.Kernel {
	if n > 0 && n < len(ks) {
		return ks[:n]
	}
	return ks
}

// SuiteSummary aggregates a Table 2-style run.
type SuiteSummary struct {
	Kernels          int
	AvgFlexCLErr     float64 // percent
	AvgSDAccelErr    float64 // percent
	BaselineFailRate float64 // fraction of design points
	TotalModelTime   time.Duration
	TotalSimTime     time.Duration
	AvgGap           float64 // percent from optimum (model-selected)
	AvgSpeedup       float64 // over unoptimized baseline design
	// GapKernels/SpeedupKernels count the kernels whose gap/speedup was
	// actually measurable (selected + optimum/baseline designs
	// simulated); the averages above are over these counts, so a
	// partial-simulation run cannot pull them toward "ideal".
	GapKernels     int
	SpeedupKernels int
}

// Table2 reproduces Table 2: per-kernel average estimation error of the
// SDAccel baseline and FlexCL against the ground truth, with exploration
// times, for the Rodinia suite.
func Table2(cfg Config) (*report.Table, *SuiteSummary, error) {
	return suiteTable("Table 2: Performance Estimation Results of Rodinia",
		limit(bench.Suite("rodinia"), cfg.MaxKernels), cfg)
}

// PolybenchAccuracy reproduces the §4.2 PolyBench accuracy result
// (average absolute error, paper: 8.7 %).
func PolybenchAccuracy(cfg Config) (*report.Table, *SuiteSummary, error) {
	return suiteTable("PolyBench accuracy (§4.2)",
		limit(bench.Suite("polybench"), cfg.MaxKernels), cfg)
}

func suiteTable(title string, kernels []*bench.Kernel, cfg Config) (*report.Table, *SuiteSummary, error) {
	t := report.New(title,
		"Benchmark", "Kernel", "#Designs",
		"SDAccel Err(%)", "FlexCL Err(%)",
		"SimRun Time", "FlexCL Time", "BaseFail")
	sum := &SuiteSummary{}
	var fails, points int
	for _, k := range kernels {
		r, err := dse.Explore(context.Background(), k, dse.Options{
			Platform:     cfg.platform(),
			SimMaxGroups: cfg.simGroups(),
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("table2 %s: %w", k.ID(), err)
		}
		fe, se := r.AvgErrors()
		t.Add(k.Bench, k.Name, len(r.Points), se, fe,
			r.SimTime.Round(time.Millisecond).String(),
			r.ModelTime.Round(time.Millisecond).String(),
			r.BaselineFailures)
		sum.Kernels++
		sum.AvgFlexCLErr += fe
		sum.AvgSDAccelErr += se
		sum.TotalModelTime += r.ModelTime
		sum.TotalSimTime += r.SimTime
		if gap, ok := r.GapToOptimum(); ok {
			sum.AvgGap += gap
			sum.GapKernels++
		}
		if sp, ok := r.SpeedupOverBaseline(); ok {
			sum.AvgSpeedup += sp
			sum.SpeedupKernels++
		}
		fails += r.BaselineFailures
		points += len(r.Points)
	}
	if sum.Kernels > 0 {
		n := float64(sum.Kernels)
		sum.AvgFlexCLErr /= n
		sum.AvgSDAccelErr /= n
	}
	if sum.GapKernels > 0 {
		sum.AvgGap /= float64(sum.GapKernels)
	}
	if sum.SpeedupKernels > 0 {
		sum.AvgSpeedup /= float64(sum.SpeedupKernels)
	}
	if points > 0 {
		sum.BaselineFailRate = float64(fails) / float64(points)
	}
	return t, sum, nil
}

// Fig4 reproduces Figure 4: estimated vs actual performance for every
// design point of hotspot3D and nn.
func Fig4(cfg Config) (map[string]*report.Series, error) {
	out := map[string]*report.Series{}
	for _, id := range [][2]string{{"hotspot3D", "hotspot3D"}, {"nn", "nn"}} {
		k := bench.Find(id[0], id[1])
		if k == nil {
			return nil, fmt.Errorf("fig4: kernel %s/%s missing", id[0], id[1])
		}
		r, err := dse.Explore(context.Background(), k, dse.Options{
			Platform:     cfg.platform(),
			SimMaxGroups: cfg.simGroups(),
			SkipBaseline: true,
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		s := report.NewSeries(
			fmt.Sprintf("Figure 4 (%s): actual vs FlexCL per design point", k.ID()),
			"config_id", "actual_cycles", "flexcl_cycles")
		for i, pt := range r.Points {
			s.Add(float64(i), pt.Actual, pt.Est)
		}
		out[k.Bench] = s
	}
	return out, nil
}

// RobustnessRow is one kernel of the §4.2 robustness experiment.
type RobustnessRow struct {
	Kernel string
	AvgErr float64
}

// Robustness evaluates HotSpot and pathfinder on the KU060 UltraScale
// platform (§4.2; paper: 9.7 % and 13.6 %).
func Robustness(cfg Config) ([]RobustnessRow, error) {
	p := device.KU060()
	var rows []RobustnessRow
	for _, id := range [][2]string{{"hotspot", "hotspot"}, {"pathfinder", "dynproc"}} {
		k := bench.Find(id[0], id[1])
		if k == nil {
			return nil, fmt.Errorf("robustness: kernel %s/%s missing", id[0], id[1])
		}
		r, err := dse.Explore(context.Background(), k, dse.Options{
			Platform:     p,
			SimMaxGroups: cfg.simGroups(),
			SkipBaseline: true,
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		fe, _ := r.AvgErrors()
		rows = append(rows, RobustnessRow{Kernel: k.ID(), AvgErr: fe})
	}
	return rows, nil
}

// DSEQualityResult captures the §4.3 exploration claims.
type DSEQualityResult struct {
	Kernels     int
	AvgGap      float64 // % from optimum (paper: 2.1 %)
	AvgSpeedup  float64 // over unoptimized (paper: 273×)
	SpeedupRate float64 // model-vs-sim evaluation wall-time ratio
	// GapKernels/SpeedupKernels count the kernels whose metric was
	// measurable (see dse.Result.GapToOptimum); the averages are over
	// these counts.
	GapKernels     int
	SpeedupKernels int
}

// DSEQuality measures how close the model-selected designs are to the
// true optimum and the speedup over the unoptimized design, over a suite
// sample.
func DSEQuality(cfg Config, kernels []*bench.Kernel) (*DSEQualityResult, error) {
	if kernels == nil {
		kernels = limit(bench.Suite("rodinia"), max(cfg.MaxKernels, 8))
	}
	res := &DSEQualityResult{}
	var tm, ts time.Duration
	for _, k := range kernels {
		r, err := dse.Explore(context.Background(), k, dse.Options{
			Platform:     cfg.platform(),
			SimMaxGroups: cfg.simGroups(),
			SkipBaseline: true,
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		res.Kernels++
		if gap, ok := r.GapToOptimum(); ok {
			res.AvgGap += gap
			res.GapKernels++
		}
		if sp, ok := r.SpeedupOverBaseline(); ok {
			res.AvgSpeedup += sp
			res.SpeedupKernels++
		}
		tm += r.ModelTime
		ts += r.SimTime
	}
	if res.GapKernels > 0 {
		res.AvgGap /= float64(res.GapKernels)
	}
	if res.SpeedupKernels > 0 {
		res.AvgSpeedup /= float64(res.SpeedupKernels)
	}
	if tm > 0 {
		res.SpeedupRate = float64(ts) / float64(tm)
	}
	return res, nil
}

// SearchComparisonResult captures the §4.3 search comparison: fraction of
// kernels whose selected configuration is optimal, for FlexCL-exhaustive
// vs the [16]-style heuristic (paper: 96 % vs 12 %).
type SearchComparisonResult struct {
	Kernels          int
	FlexCLOptimal    float64
	HeuristicOptimal float64
}

// SearchComparison runs both searches over the PolyBench suite.
func SearchComparison(cfg Config) (*SearchComparisonResult, error) {
	kernels := limit(bench.Suite("polybench"), cfg.MaxKernels)
	res := &SearchComparisonResult{}
	const tolPct = 1.0 // "optimal" = within 1 % of the measured optimum
	for _, k := range kernels {
		// Sharing one prep cache between the exhaustive exploration and
		// the heuristic search compiles each WG size exactly once.
		cache := dse.NewPrepCache()
		r, err := dse.Explore(context.Background(), k, dse.Options{
			Platform:     cfg.platform(),
			SimMaxGroups: cfg.simGroups(),
			SkipBaseline: true,
			Workers:      cfg.Workers,
			Cache:        cache,
		})
		if err != nil {
			return nil, err
		}
		analyses, err := cache.Analyses(k, cfg.platform())
		if err != nil {
			return nil, err
		}
		res.Kernels++
		if best, ok := r.BestByModel(); ok && r.NearOptimal(best.Design, tolPct) {
			res.FlexCLOptimal++
		}
		if hd, _, ok := dse.HeuristicSearch(k, analyses); ok && r.NearOptimal(hd, tolPct) {
			res.HeuristicOptimal++
		}
	}
	if res.Kernels > 0 {
		res.FlexCLOptimal /= float64(res.Kernels)
		res.HeuristicOptimal /= float64(res.Kernels)
	}
	return res, nil
}

// Table1 reproduces Table 1: the eight global-memory access patterns with
// their profiled latencies on the platform.
func Table1(cfg Config) *report.Table {
	p := cfg.platform()
	lat := dram.ProfilePatterns(p.DRAM, 4096, device.HashString(p.Name))
	t := report.New("Table 1: Global Memory Access Patterns ("+p.Name+")",
		"Pattern", "Access Latency (cycles)")
	for pat := dram.Pattern(0); pat < dram.NumPatterns; pat++ {
		t.Add(pat.String(), lat.Get(pat))
	}
	return t
}

// AblationRow is one model-variant accuracy measurement.
type AblationRow struct {
	Name   string
	AvgErr float64 // percent vs ground truth
}

// AblationStudy quantifies each design choice of DESIGN.md §5 by
// disabling it and re-measuring the model error over a kernel sample.
func AblationStudy(cfg Config, kernels []*bench.Kernel) ([]AblationRow, error) {
	if kernels == nil {
		kernels = []*bench.Kernel{
			bench.Find("nn", "nn"),
			bench.Find("hotspot3D", "hotspot3D"),
			bench.Find("pathfinder", "dynproc"),
			bench.Find("srad", "srad"),
			bench.Find("cfd", "memset"), // dispatch-sensitive: exposes A2
		}
	}
	variants := []struct {
		name string
		ab   model.Ablations
	}{
		{"full model", model.Ablations{}},
		{"A1 single memory latency", model.Ablations{SingleMemLatency: true}},
		{"A2 no scheduling overhead", model.Ablations{NoSchedOverhead: true}},
		{"A3 MII without SMS", model.Ablations{IIFromMII: true}},
		{"A4 no coalescing", model.Ablations{NoCoalescing: true}},
	}
	sums := make([]float64, len(variants))
	var n float64
	p := cfg.platform()
	for _, k := range kernels {
		if k == nil {
			continue
		}
		for _, wg := range k.WGSizes() {
			f, err := k.Compile(wg)
			if err != nil {
				return nil, err
			}
			an, err := model.Analyze(context.Background(), f, p, k.Config(wg), model.AnalysisOptions{})
			if err != nil {
				return nil, err
			}
			for _, pe := range []int{1, 4} {
				for _, cu := range []int{1, 4} {
					for _, mode := range []model.CommMode{model.ModeBarrier, model.ModePipeline} {
						d := model.Design{WGSize: wg, WIPipeline: true, PE: pe, CU: cu, Mode: mode}
						f2, err := k.Compile(wg)
						if err != nil {
							return nil, err
						}
						sim, err := rtlsim.Simulate(f2, p, k.Config(wg), d, rtlsim.Options{MaxGroups: cfg.simGroups()})
						if err != nil {
							return nil, err
						}
						for i, v := range variants {
							est := an.PredictWith(d, v.ab)
							sums[i] += rtlsim.ErrorVs(est.Cycles, sim.Cycles)
						}
						n++
					}
				}
			}
		}
	}
	rows := make([]AblationRow, len(variants))
	for i, v := range variants {
		rows[i] = AblationRow{Name: v.name}
		if n > 0 {
			rows[i].AvgErr = sums[i] / n
		}
	}
	return rows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
