package experiments

import (
	"strings"
	"testing"
)

// fast bounds every suite experiment to its smallest useful size.
var fast = Config{MaxKernels: 1, SimMaxGroups: 2}

func TestTable1HasEightPatterns(t *testing.T) {
	tab := Table1(Config{})
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	s := tab.String()
	for _, pat := range []string{"RAR/hit", "WAW/miss"} {
		if !strings.Contains(s, pat) {
			t.Errorf("missing pattern %s", pat)
		}
	}
}

func TestTable2Slice(t *testing.T) {
	tab, sum, err := Table2(fast)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kernels != 1 || len(tab.Rows) != 1 {
		t.Fatalf("kernels = %d rows = %d", sum.Kernels, len(tab.Rows))
	}
	if sum.AvgFlexCLErr <= 0 || sum.AvgFlexCLErr > 50 {
		t.Errorf("FlexCL err = %.1f%%", sum.AvgFlexCLErr)
	}
	if sum.AvgSDAccelErr <= sum.AvgFlexCLErr {
		t.Errorf("baseline err (%.1f%%) should exceed FlexCL (%.1f%%)",
			sum.AvgSDAccelErr, sum.AvgFlexCLErr)
	}
	if sum.TotalModelTime >= sum.TotalSimTime {
		t.Error("model not faster than simulation")
	}
}

func TestPolybenchSlice(t *testing.T) {
	_, sum, err := PolybenchAccuracy(fast)
	if err != nil {
		t.Fatal(err)
	}
	if sum.AvgFlexCLErr <= 0 || sum.AvgFlexCLErr > 50 {
		t.Errorf("FlexCL err = %.1f%%", sum.AvgFlexCLErr)
	}
}

func TestFig4Series(t *testing.T) {
	series, err := Fig4(Config{SimMaxGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hotspot3D", "nn"} {
		s := series[name]
		if s == nil || len(s.Points) < 100 {
			t.Fatalf("%s: series missing or too short", name)
		}
		for _, p := range s.Points {
			if p[1] <= 0 || p[2] <= 0 {
				t.Fatalf("%s: non-positive point %v", name, p)
			}
		}
	}
}

func TestRobustnessRows(t *testing.T) {
	rows, err := Robustness(Config{SimMaxGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (HotSpot, pathfinder)", len(rows))
	}
	for _, r := range rows {
		if r.AvgErr <= 0 || r.AvgErr > 40 {
			t.Errorf("%s err = %.1f%%, outside plausible band", r.Kernel, r.AvgErr)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	rows, err := AblationStudy(Config{SimMaxGroups: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d, want 5", len(rows))
	}
	full := rows[0].AvgErr
	// Removing the memory-pattern model or coalescing must hurt accuracy.
	if rows[1].AvgErr <= full {
		t.Errorf("A1 err %.1f%% not worse than full %.1f%%", rows[1].AvgErr, full)
	}
	if rows[4].AvgErr <= full {
		t.Errorf("A4 err %.1f%% not worse than full %.1f%%", rows[4].AvgErr, full)
	}
}
