package sched

import (
	"math"

	"repro/internal/ir"
)

// Affine is an index expression linear in the work-item id:
// index = Coef·wi + Const, where wi is the dimension-0 global or local id.
type Affine struct {
	Coef  int64
	Const int64
	OK    bool
}

// forwardMap maps single-store private scalar allocas to the value stored
// into them, enabling index analysis across the alloca/load indirection
// that irgen produces for `int i = get_global_id(0);`.
func forwardMap(f *ir.Func) map[*ir.Alloca]ir.Value {
	stores := map[*ir.Alloca][]*ir.Instr{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			if a, ok := in.Mem.(*ir.Alloca); ok && !a.IsArray() {
				stores[a] = append(stores[a], in)
			}
		}
	}
	fwd := map[*ir.Alloca]ir.Value{}
	for a, ss := range stores {
		if len(ss) == 1 {
			fwd[a] = ss[0].Args[1]
		}
	}
	return fwd
}

// analyzeAffine resolves a value to an affine function of the work-item
// id, following single-store alloca forwarding and casts.
func analyzeAffine(v ir.Value, fwd map[*ir.Alloca]ir.Value, depth int) Affine {
	if depth > 64 {
		return Affine{}
	}
	switch x := v.(type) {
	case *ir.Const:
		if x.T.Base.IsFloat() {
			return Affine{}
		}
		return Affine{Const: x.I, OK: true}
	case *ir.Instr:
		switch x.Op {
		case ir.OpWorkItem:
			switch x.Fn {
			case "get_global_id", "get_local_id":
				if x.Dim == 0 {
					return Affine{Coef: 1, OK: true}
				}
			}
			return Affine{}
		case ir.OpCast:
			if !typeIsIdx(x.T) {
				return Affine{}
			}
			return analyzeAffine(x.Args[0], fwd, depth+1)
		case ir.OpLoad:
			if a, ok := x.Mem.(*ir.Alloca); ok {
				if src, ok2 := fwd[a]; ok2 {
					return analyzeAffine(src, fwd, depth+1)
				}
			}
			return Affine{}
		case ir.OpAdd, ir.OpSub:
			l := analyzeAffine(x.Args[0], fwd, depth+1)
			r := analyzeAffine(x.Args[1], fwd, depth+1)
			if !l.OK || !r.OK {
				return Affine{}
			}
			if x.Op == ir.OpAdd {
				return Affine{Coef: l.Coef + r.Coef, Const: l.Const + r.Const, OK: true}
			}
			return Affine{Coef: l.Coef - r.Coef, Const: l.Const - r.Const, OK: true}
		case ir.OpMul:
			l := analyzeAffine(x.Args[0], fwd, depth+1)
			r := analyzeAffine(x.Args[1], fwd, depth+1)
			if !l.OK || !r.OK {
				return Affine{}
			}
			switch {
			case l.Coef == 0:
				return Affine{Coef: l.Const * r.Coef, Const: l.Const * r.Const, OK: true}
			case r.Coef == 0:
				return Affine{Coef: r.Const * l.Coef, Const: r.Const * l.Const, OK: true}
			default:
				return Affine{} // quadratic in wi
			}
		case ir.OpShl:
			l := analyzeAffine(x.Args[0], fwd, depth+1)
			r := analyzeAffine(x.Args[1], fwd, depth+1)
			if !l.OK || !r.OK || r.Coef != 0 || r.Const < 0 || r.Const > 32 {
				return Affine{}
			}
			m := int64(1) << uint(r.Const)
			return Affine{Coef: l.Coef * m, Const: l.Const * m, OK: true}
		}
	}
	return Affine{}
}

// AffineIndexOf exposes affine analysis for one memory instruction's index.
func AffineIndexOf(f *ir.Func, in *ir.Instr) Affine {
	fwd := forwardMap(f)
	if len(in.Args) == 0 {
		return Affine{}
	}
	return analyzeAffine(in.Args[0], fwd, 0)
}

// depPair is an inter-work-item dependence: work-item wi reads data that
// work-item wi−Distance wrote.
type depPair struct {
	Load     *ir.Instr
	Store    *ir.Instr
	Distance int64
}

// interWIDeps finds store→load dependences across work-items through
// local or global memory via affine index matching. A store at Coef·wi+cs
// feeds a load at Coef·wi+cl when (cs−cl) is a positive multiple of Coef.
func interWIDeps(f *ir.Func) []depPair {
	fwd := forwardMap(f)
	type memop struct {
		in *ir.Instr
		af Affine
	}
	loads := map[ir.Storage][]memop{}
	stores := map[ir.Storage][]memop{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			if in.Mem == nil || len(in.Args) == 0 {
				continue
			}
			if a, ok := in.Mem.(*ir.Alloca); ok && !a.IsArray() {
				continue // scalar privates carry no cross-WI data
			}
			af := analyzeAffine(in.Args[0], fwd, 0)
			if !af.OK || af.Coef == 0 {
				continue
			}
			if in.Op == ir.OpLoad {
				loads[in.Mem] = append(loads[in.Mem], memop{in, af})
			} else {
				stores[in.Mem] = append(stores[in.Mem], memop{in, af})
			}
		}
	}
	var out []depPair
	for mem, ss := range stores {
		for _, s := range ss {
			for _, l := range loads[mem] {
				if l.af.Coef != s.af.Coef {
					continue
				}
				diff := s.af.Const - l.af.Const
				if diff == 0 || diff%s.af.Coef != 0 {
					continue
				}
				d := diff / s.af.Coef
				if d > 0 {
					out = append(out, depPair{Load: l.in, Store: s.in, Distance: d})
				}
			}
		}
	}
	return out
}

// RecMII computes the recurrence-constrained MII from inter-work-item
// dependences: for each store→load pair with work-item distance d and
// dependence-chain latency L, RecMII ≥ ceil(L/d) (Eq. 2 and [22, 23]).
func RecMII(f *ir.Func, cfg *Config) int {
	deps := interWIDeps(f)
	if len(deps) == 0 {
		return 1
	}
	// Per-block unconstrained ASAP times for chain latency estimation.
	asap := map[*ir.Instr]int{}
	for _, b := range f.Blocks {
		latOf := func(in *ir.Instr) int { return cfg.Latency(in) }
		_, pred := blockDFG(b.Instrs, latOf)
		times := make([]int, len(b.Instrs))
		for i := range b.Instrs {
			for _, e := range pred[i] {
				if t := times[e.to] + e.delay; t > times[i] {
					times[i] = t
				}
			}
			asap[b.Instrs[i]] = times[i]
		}
	}
	mii := 1
	for _, d := range deps {
		var chain int
		if d.Load.Blk == d.Store.Blk {
			chain = asap[d.Store] + cfg.Latency(d.Store) - asap[d.Load]
		} else {
			// Cross-block recurrence: approximate the chain by the two
			// endpoint latencies plus one cycle of control transfer.
			chain = cfg.Latency(d.Load) + cfg.Latency(d.Store) + 1
		}
		if chain < 1 {
			chain = 1
		}
		if v := int(math.Ceil(float64(chain) / float64(d.Distance))); v > mii {
			mii = v
		}
	}
	return mii
}

// MII is Eq. 2: the lower bound on the work-item initiation interval.
func MII(f *ir.Func, freq map[*ir.Block]float64, cfg *Config) (mii, rec, res int) {
	rec = RecMII(f, cfg)
	res = ResMII(Totals(f, freq, cfg), cfg.Res)
	mii = rec
	if res > mii {
		mii = res
	}
	return mii, rec, res
}
