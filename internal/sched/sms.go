package sched

import (
	"math"
	"sort"

	"repro/internal/ir"
)

// PipelineResult is the outcome of work-item pipeline scheduling: the
// initiation interval II_comp^wi and the pipeline depth D_comp^PE of
// Eq. 1, together with the MII decomposition.
type PipelineResult struct {
	II     int
	Depth  int
	MII    int
	RecMII int
	ResMII int
}

// SMS runs the Swing-Modulo-Scheduling refinement of §3.3.1: starting from
// MII, it attempts a modulo placement of every operation into a reservation
// table of width II, increasing II until all resource constraints hold.
//
// offsets gives each block's start cycle along the CDFG schedule (computed
// by package cdfg from frequency-weighted critical paths); freq gives each
// block's average executions per work-item. Operations in straight-line
// code (freq ≈ 1) reserve a specific modulo slot; operations inside loops
// issue on every iteration and therefore load the reservation table
// uniformly.
func SMS(f *ir.Func, freq map[*ir.Block]float64, offsets map[*ir.Block]int, cfg *Config) *PipelineResult {
	mii, rec, res := MII(f, freq, cfg)
	r := &PipelineResult{MII: mii, RecMII: rec, ResMII: res}
	limits := cfg.Res.Sane()

	type node struct {
		in     *ir.Instr
		est    int // earliest start (block offset + intra-block ASAP)
		lat    int
		weight float64
		kind   resKind
		blk    *ir.Block
		idx    int
	}

	var nodes []*node
	byInstr := map[*ir.Instr]*node{}
	for _, b := range f.Blocks {
		latOf := func(in *ir.Instr) int { return cfg.Latency(in) }
		_, pred := blockDFG(b.Instrs, latOf)
		times := make([]int, len(b.Instrs))
		for i := range b.Instrs {
			for _, e := range pred[i] {
				if t := times[e.to] + e.delay; t > times[i] {
					times[i] = t
				}
			}
		}
		w, ok := freq[b]
		if !ok {
			w = 1
		}
		off := offsets[b]
		for i, in := range b.Instrs {
			if in.Op.IsTerminator() {
				continue
			}
			nd := &node{
				in: in, est: off + times[i], lat: latOf(in),
				weight: w, kind: cfg.resourceOf(in), blk: b, idx: i,
			}
			nodes = append(nodes, nd)
			byInstr[in] = nd
		}
	}

	// Sort by earliest start; ties broken by higher resource pressure
	// first (the "swing" priority: critical, contended ops placed first).
	sort.SliceStable(nodes, func(a, b int) bool {
		if nodes[a].est != nodes[b].est {
			return nodes[a].est < nodes[b].est
		}
		if (nodes[a].kind != resNone) != (nodes[b].kind != resNone) {
			return nodes[a].kind != resNone
		}
		return nodes[a].lat > nodes[b].lat
	})

	const maxII = 1 << 20
	for ii := mii; ii < maxII; ii++ {
		// evenShare: uniform table load from loop-resident operations.
		even := map[resKind]float64{}
		for _, nd := range nodes {
			if nd.kind != resNone && nd.weight > 1.5 {
				even[nd.kind] += nd.weight / float64(ii)
			}
		}
		// If uniform load alone exceeds a limit, II is infeasible.
		feasible := true
		for k, v := range even {
			if v > float64(limits.limit(k)) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}

		units := map[resKind][]float64{}
		slotUse := func(k resKind, s int) float64 {
			u := units[k]
			if s < len(u) {
				return u[s]
			}
			return 0
		}
		reserve := func(k resKind, s int) {
			u := units[k]
			for len(u) <= s {
				u = append(u, 0)
			}
			u[s]++
			units[k] = u
		}

		place := map[*ir.Instr]int{}
		ok := true
		depth := 0
		for _, nd := range nodes {
			est := nd.est
			// Respect already-placed intra-block predecessors.
			for _, a := range nd.in.Args {
				if def, isInstr := a.(*ir.Instr); isInstr {
					if p, placed := place[def]; placed {
						if pn := byInstr[def]; pn != nil {
							if t := p + pn.lat; t > est {
								est = t
							}
						}
					}
				}
			}
			t := est
			if nd.kind != resNone && nd.weight <= 1.5 {
				found := false
				for dt := 0; dt < ii; dt++ {
					s := (est + dt) % ii
					if slotUse(nd.kind, s)+1+even[nd.kind] <= float64(limits.limit(nd.kind))+1e-9 {
						t = est + dt
						reserve(nd.kind, s)
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			place[nd.in] = t
			if end := t + nd.lat; end > depth {
				depth = end
			}
		}
		if ok {
			r.II = ii
			r.Depth = depth
			if r.Depth < 1 {
				r.Depth = 1
			}
			return r
		}
	}
	// Degenerate fallback: fully serial.
	r.II = mii
	r.Depth = mii
	return r
}

// SerialDepth estimates the non-pipelined work-item latency: the
// frequency-weighted sum of block schedule lengths (every block executes
// in sequence, loops repeat their bodies).
func SerialDepth(f *ir.Func, freq map[*ir.Block]float64, cfg *Config) int {
	total := 0.0
	for _, b := range f.Blocks {
		w, ok := freq[b]
		if !ok {
			w = 1
		}
		if w <= 0 {
			continue
		}
		st := ScheduleBlock(b, cfg)
		total += w * float64(st.Length)
	}
	if total < 1 {
		return 1
	}
	return int(math.Ceil(total))
}
