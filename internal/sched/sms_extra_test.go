package sched_test

import (
	"testing"

	"repro/internal/cdfg"
	. "repro/internal/sched"
)

// TestSMSResourceConflictRaisesII: when straight-line code has more
// same-cycle local reads than ports, the modulo reservation table must
// push II above the aggregate ResMII bound or spread issues — II can
// never fall below MII, and tight ports must cost more than loose ones.
func TestSMSResourceConflictRaisesII(t *testing.T) {
	k := compileKernel(t, `
__kernel void manyreads(__global float* x) {
    __local float t[64];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    float a = t[l] * 1.1f;
    float b = t[(l + 1) % 64] * 1.2f;
    float c = t[(l + 2) % 64] * 1.3f;
    float d = t[(l + 3) % 64] * 1.4f;
    float e = t[(l + 4) % 64] * 1.5f;
    float f = t[(l + 5) % 64] * 1.6f;
    x[l] = a + b + c + d + e + f;
}`, "manyreads")

	tight := defaultCfg()
	tight.Res.LocalRead = 1
	loose := defaultCfg()
	loose.Res.LocalRead = 8

	gT := cdfg.Build(k, nil, tight)
	rT := SMS(k, gT.Freq, gT.BlockOffsets, tight)
	gL := cdfg.Build(k, nil, loose)
	rL := SMS(k, gL.Freq, gL.BlockOffsets, loose)

	if rT.II < rT.MII || rL.II < rL.MII {
		t.Fatalf("II below MII: tight %d/%d loose %d/%d", rT.II, rT.MII, rL.II, rL.MII)
	}
	if rT.II <= rL.II {
		t.Errorf("1 read port II (%d) should exceed 8 read ports II (%d)", rT.II, rL.II)
	}
	// 6 reads vs 1 port: ResMII alone demands at least 6.
	if rT.ResMII < 6 {
		t.Errorf("tight ResMII = %d, want >= 6", rT.ResMII)
	}
}

// TestSMSDepthAtLeastCriticalChain: pipeline depth covers the longest
// dependence chain regardless of II.
func TestSMSDepthAtLeastCriticalChain(t *testing.T) {
	k := compileKernel(t, `
__kernel void chain(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    v = v * 1.5f;
    v = v + 2.0f;
    v = sqrt(v);
    v = v / 3.0f;
    x[i] = v;
}`, "chain")
	cfg := defaultCfg()
	g := cdfg.Build(k, nil, cfg)
	r := SMS(k, g.Freq, g.BlockOffsets, cfg)
	// fmul(6+) + fadd(8+) + sqrt(28) + fdiv(28) alone exceed 70 cycles.
	if r.Depth < 70 {
		t.Errorf("depth %d too small for the serial chain", r.Depth)
	}
}

// TestLoopOpsLoadTableUniformly: a loop running T times per work-item
// must force II ≥ T/ports through the uniform reservation-table load.
func TestLoopOpsLoadTableUniformly(t *testing.T) {
	k := compileKernel(t, `
__kernel void loopreads(__global float* x) {
    __local float t[64];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    float s = 0.0f;
    for (int j = 0; j < 32; j++) { s += t[(l + j) % 64]; }
    x[l] = s;
}`, "loopreads")
	cfg := defaultCfg()
	cfg.Res.LocalRead = 2
	g := cdfg.Build(k, nil, cfg)
	r := SMS(k, g.Freq, g.BlockOffsets, cfg)
	// 32 local reads / 2 ports = 16 minimum interval.
	if r.II < 16 {
		t.Errorf("II = %d, want >= 16 (32 reads over 2 ports)", r.II)
	}
}
