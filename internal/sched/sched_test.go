package sched_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/irgen"
	. "repro/internal/sched"
)

func compileKernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	k.AnalyzeLoops()
	return k
}

func defaultCfg() *Config {
	p := device.Virtex7()
	return &Config{
		Table: device.Profile(p, 64),
		Res: Resources{
			LocalRead:  p.LocalReadPorts(),
			LocalWrite: p.LocalWritePorts(),
			Global:     2,
			DSPSlots:   8,
		},
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	k := compileKernel(t, `
__kernel void chain(__global float* x) {
    int i = get_global_id(0);
    float a = x[i];
    float b = a * a;
    float c = b * b;
    x[i] = c;
}`, "chain")
	cfg := defaultCfg()
	for _, b := range k.Blocks {
		st := ScheduleBlock(b, cfg)
		for _, in := range b.Instrs {
			for _, arg := range in.Args {
				def, ok := arg.(*ir.Instr)
				if !ok || def.Blk != b {
					continue
				}
				if st.Issue[in] < st.Issue[def]+cfg.Latency(def) && cfg.Latency(def) > 0 {
					t.Errorf("%v issued at %d before %v completes at %d",
						in, st.Issue[in], def, st.Issue[def]+cfg.Latency(def))
				}
			}
		}
	}
}

func TestScheduleLengthAtLeastCriticalPath(t *testing.T) {
	k := compileKernel(t, `
__kernel void cp(__global float* x) {
    int i = get_global_id(0);
    x[i] = sqrt(x[i] * 2.0f + 1.0f);
}`, "cp")
	cfg := defaultCfg()
	// Serial chain: load + fmul + fadd + sqrt + store latencies must be a
	// lower bound for the entry block containing them.
	var want int
	entry := k.Entry()
	for _, in := range entry.Instrs {
		switch device.Classify(in) {
		case device.ClassGlobalLoad, device.ClassFMul, device.ClassFAdd,
			device.ClassFSqrt, device.ClassGlobalStore:
			want += cfg.Latency(in)
		}
	}
	st := ScheduleBlock(entry, cfg)
	if st.Length < want {
		t.Errorf("schedule length %d < critical chain %d", st.Length, want)
	}
}

func TestResourceSerialization(t *testing.T) {
	// 8 independent local loads with 1 read port must serialize.
	k := compileKernel(t, `
__kernel void lp(__global float* x) {
    __local float t[64];
    int i = get_local_id(0);
    t[i] = x[i];
    barrier(CLK_LOCAL_MEM_FENCE);
    float s = t[0]+t[1]+t[2]+t[3]+t[4]+t[5]+t[6]+t[7];
    x[i] = s;
}`, "lp")
	one := defaultCfg()
	one.Res.LocalRead = 1
	many := defaultCfg()
	many.Res.LocalRead = 8
	var lenOne, lenMany int
	for _, b := range k.Blocks {
		lenOne += ScheduleBlock(b, one).Length
		lenMany += ScheduleBlock(b, many).Length
	}
	if lenOne <= lenMany {
		t.Errorf("1-port schedule (%d) should exceed 8-port schedule (%d)", lenOne, lenMany)
	}
}

func TestTotalsCounts(t *testing.T) {
	k := compileKernel(t, `
__kernel void cnt(__global float* x) {
    __local float t[32];
    int i = get_local_id(0);
    t[i] = x[i];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[i] = t[31 - i] * 2.0f;
}`, "cnt")
	cfg := defaultCfg()
	tot := Totals(k, nil, cfg)
	if tot.LocalReads != 1 || tot.LocalWrites != 1 {
		t.Errorf("local reads/writes = %v/%v, want 1/1", tot.LocalReads, tot.LocalWrites)
	}
	if tot.GlobalLoads != 1 || tot.GlobalStores != 1 {
		t.Errorf("global loads/stores = %v/%v, want 1/1", tot.GlobalLoads, tot.GlobalStores)
	}
	if tot.DSPOps < 1 {
		t.Errorf("DSP ops = %v, want >= 1 (fmul)", tot.DSPOps)
	}
}

func TestResMIIFormula(t *testing.T) {
	tot := FuncTotals{LocalReads: 7, LocalWrites: 3, DSPOps: 10}
	res := Resources{LocalRead: 2, LocalWrite: 1, Global: 1, DSPSlots: 4}
	// ceil(7/2)=4, ceil(3/1)=3, ceil(10/4)=3 → 4.
	if got := ResMII(tot, res); got != 4 {
		t.Errorf("ResMII = %d, want 4", got)
	}
}

func TestAffineAnalysis(t *testing.T) {
	k := compileKernel(t, `
__kernel void af(__global float* x, __global float* y) {
    int i = get_global_id(0);
    y[2*i + 3] = x[i];
}`, "af")
	var loads, stores []*ir.Instr
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Mem == nil {
				continue
			}
			if p, ok := in.Mem.(*ir.Param); ok {
				if in.Op == ir.OpLoad && p.PName == "x" {
					loads = append(loads, in)
				}
				if in.Op == ir.OpStore && p.PName == "y" {
					stores = append(stores, in)
				}
			}
		}
	}
	if len(loads) != 1 || len(stores) != 1 {
		t.Fatalf("loads=%d stores=%d", len(loads), len(stores))
	}
	la := AffineIndexOf(k, loads[0])
	if !la.OK || la.Coef != 1 || la.Const != 0 {
		t.Errorf("load affine = %+v, want 1*wi+0", la)
	}
	sa := AffineIndexOf(k, stores[0])
	if !sa.OK || sa.Coef != 2 || sa.Const != 3 {
		t.Errorf("store affine = %+v, want 2*wi+3", sa)
	}
}

// TestFigure3Example reproduces the paper's Figure 3 scenario: a kernel
// with an inter-work-item data dependence (work-item i consumes what
// work-item i−1 produced) must have RecMII > 1, and therefore II > the
// resource bound alone.
func TestFigure3Example(t *testing.T) {
	dep := compileKernel(t, `
__kernel void scanlike(__global int* b, __global const int* a) {
    int i = get_global_id(0);
    b[i] = b[i - 1] + a[i];
}`, "scanlike")
	indep := compileKernel(t, `
__kernel void maponly(__global int* b, __global const int* a) {
    int i = get_global_id(0);
    b[i] = a[i] + 1;
}`, "maponly")
	cfg := defaultCfg()
	recDep := RecMII(dep, cfg)
	recIndep := RecMII(indep, cfg)
	if recDep <= 1 {
		t.Errorf("dependent kernel RecMII = %d, want > 1", recDep)
	}
	if recIndep != 1 {
		t.Errorf("independent kernel RecMII = %d, want 1", recIndep)
	}
	gDep := cdfg.Build(dep, nil, cfg)
	smsDep := SMS(dep, gDep.Freq, gDep.BlockOffsets, cfg)
	if smsDep.II < recDep {
		t.Errorf("SMS II %d < RecMII %d", smsDep.II, recDep)
	}
	if smsDep.Depth < smsDep.II {
		t.Errorf("depth %d < II %d", smsDep.Depth, smsDep.II)
	}
}

func TestInterWIDistance(t *testing.T) {
	// Distance-4 dependence: RecMII should be about chain/4, smaller than
	// the distance-1 case.
	d1 := compileKernel(t, `
__kernel void k(__global float* b) {
    int i = get_global_id(0);
    b[i] = b[i - 1] * 0.5f;
}`, "k")
	d4 := compileKernel(t, `
__kernel void k(__global float* b) {
    int i = get_global_id(0);
    b[i] = b[i - 4] * 0.5f;
}`, "k")
	cfg := defaultCfg()
	r1 := RecMII(d1, cfg)
	r4 := RecMII(d4, cfg)
	if r4 >= r1 {
		t.Errorf("RecMII distance4 (%d) should be < distance1 (%d)", r4, r1)
	}
}

func TestSMSAtLeastMII(t *testing.T) {
	srcs := []string{
		`__kernel void a(__global float* x) {
            int i = get_global_id(0);
            x[i] = x[i] * 2.0f;
        }`,
		`__kernel void b(__global float* x) {
            __local float t[64];
            int i = get_local_id(0);
            t[i] = x[i];
            barrier(CLK_LOCAL_MEM_FENCE);
            float s = 0.0f;
            for (int j = 0; j < 64; j++) { s += t[j]; }
            x[i] = s;
        }`,
	}
	names := []string{"a", "b"}
	for n, src := range srcs {
		k := compileKernel(t, src, names[n])
		cfg := defaultCfg()
		g := cdfg.Build(k, nil, cfg)
		r := SMS(k, g.Freq, g.BlockOffsets, cfg)
		if r.II < r.MII {
			t.Errorf("%s: II %d < MII %d", names[n], r.II, r.MII)
		}
		if r.MII != max(r.RecMII, r.ResMII) {
			t.Errorf("%s: MII %d != max(rec %d, res %d)", names[n], r.MII, r.RecMII, r.ResMII)
		}
	}
}

func TestSerialDepthExceedsPipelinedDepth(t *testing.T) {
	k := compileKernel(t, `
__kernel void s(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    for (int j = 0; j < 32; j++) { v = v * 1.5f + 0.5f; }
    x[i] = v;
}`, "s")
	cfg := defaultCfg()
	g := cdfg.Build(k, nil, cfg)
	serial := SerialDepth(k, g.Freq, cfg)
	if serial < g.Depth/2 {
		t.Errorf("serial depth %d should be near/above CDFG depth %d", serial, g.Depth)
	}
	if serial <= 0 {
		t.Error("serial depth must be positive")
	}
}

func TestResMIIMonotonicProperty(t *testing.T) {
	// Property: more resources never increase ResMII; more work never
	// decreases it.
	f := func(reads, writes, dsp uint8, ports uint8) bool {
		tot := FuncTotals{
			LocalReads:  float64(reads),
			LocalWrites: float64(writes),
			DSPOps:      float64(dsp),
		}
		small := Resources{LocalRead: int(ports%4) + 1, LocalWrite: 1, Global: 1, DSPSlots: 1}
		big := Resources{LocalRead: small.LocalRead * 2, LocalWrite: 2, Global: 2, DSPSlots: 2}
		if ResMII(tot, big) > ResMII(tot, small) {
			return false
		}
		more := tot
		more.LocalReads += 5
		return ResMII(more, small) >= ResMII(tot, small)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleBlockDeterminism(t *testing.T) {
	k := compileKernel(t, `
__kernel void det(__global float* x) {
    int i = get_global_id(0);
    float a = x[i] * 2.0f;
    float b = x[i + 1] * 3.0f;
    float c = x[i + 2] * 4.0f;
    x[i] = a + b + c;
}`, "det")
	cfg := defaultCfg()
	first := ScheduleBlock(k.Entry(), cfg).Length
	for n := 0; n < 10; n++ {
		if got := ScheduleBlock(k.Entry(), cfg).Length; got != first {
			t.Fatalf("nondeterministic schedule: %d vs %d", got, first)
		}
	}
}
