// Package sched implements the scheduling algorithms of FlexCL's
// processing-element model (paper §3.3.1):
//
//   - a resource-aware, priority-ordered list scheduler (ASAP policy) that
//     estimates the execution latency of each basic block under local
//     memory port and DSP constraints;
//   - the minimum initiation interval MII = max(RecMII, ResMII), with
//     RecMII derived from inter-work-item data dependences found by affine
//     index analysis, and ResMII from Eq. 3–4;
//   - a Swing-Modulo-Scheduling-style refinement that searches for the
//     smallest feasible II at or above MII using a modulo reservation
//     table, and reports the pipeline depth.
package sched

import (
	"math"
	"sort"

	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// Resources are the per-PE issue constraints visible to the scheduler.
type Resources struct {
	LocalRead  int // local-memory read ports
	LocalWrite int // local-memory write ports
	Global     int // global-memory interface ports
	DSPSlots   int // DSP-backed cores available (issues per cycle)
}

// Sane returns a copy with non-positive limits raised to 1.
func (r Resources) Sane() Resources {
	if r.LocalRead <= 0 {
		r.LocalRead = 1
	}
	if r.LocalWrite <= 0 {
		r.LocalWrite = 1
	}
	if r.Global <= 0 {
		r.Global = 1
	}
	if r.DSPSlots <= 0 {
		r.DSPSlots = 1
	}
	return r
}

// Config parameterizes scheduling.
type Config struct {
	// Table supplies profiled average latencies (the analytical model's
	// view).
	Table *device.LatencyTable
	// Variant, when non-nil, overrides the latency of individual
	// instructions (the simulator's exact view).
	Variant func(*ir.Instr) int
	Res     Resources
}

// Latency returns the scheduling latency of one instruction in cycles.
func (c *Config) Latency(in *ir.Instr) int {
	if c.Variant != nil {
		return c.Variant(in)
	}
	cl := device.Classify(in)
	return int(math.Ceil(c.Table.Latency(cl)))
}

// resKind distinguishes the per-cycle resources.
type resKind int

const (
	resNone resKind = iota
	resLocalRead
	resLocalWrite
	resGlobal
	resDSP
)

// resourceOf maps an instruction to the issue resource it occupies.
func (c *Config) resourceOf(in *ir.Instr) resKind {
	cl := device.Classify(in)
	switch cl {
	case device.ClassLocalLoad:
		return resLocalRead
	case device.ClassLocalStore:
		return resLocalWrite
	case device.ClassGlobalLoad, device.ClassGlobalStore, device.ClassAtomic:
		return resGlobal
	}
	if c.Table.DSPCost(cl) > 0 {
		return resDSP
	}
	return resNone
}

func (r Resources) limit(k resKind) int {
	switch k {
	case resLocalRead:
		return r.LocalRead
	case resLocalWrite:
		return r.LocalWrite
	case resGlobal:
		return r.Global
	case resDSP:
		return r.DSPSlots
	default:
		return 0
	}
}

// BlockStats is the result of scheduling one basic block.
type BlockStats struct {
	// Length is the schedule makespan in cycles.
	Length int
	// Issue maps instructions to their start cycles.
	Issue map[*ir.Instr]int
	// Resource usage counts within the block.
	LocalReads   int
	LocalWrites  int
	GlobalLoads  int
	GlobalStores int
	DSPOps       int
}

// dfgEdge is a dependence with a latency delay.
type dfgEdge struct {
	to    int
	delay int
}

// blockDFG builds the intra-block dependence graph: def-use edges plus
// memory-ordering edges on the same storage object, with barriers and
// atomics acting as fences.
func blockDFG(instrs []*ir.Instr, latOf func(*ir.Instr) int) ([][]dfgEdge, [][]dfgEdge) {
	n := len(instrs)
	index := make(map[*ir.Instr]int, n)
	for i, in := range instrs {
		index[in] = i
	}
	succ := make([][]dfgEdge, n)
	pred := make([][]dfgEdge, n)
	add := func(from, to int) {
		d := latOf(instrs[from])
		if d < 1 {
			d = 1 // chained dependences still take a cycle boundary
		}
		succ[from] = append(succ[from], dfgEdge{to: to, delay: d})
		pred[to] = append(pred[to], dfgEdge{to: from, delay: d})
	}

	// Def-use edges.
	for i, in := range instrs {
		for _, a := range in.Args {
			if def, ok := a.(*ir.Instr); ok {
				if j, here := index[def]; here && j < i {
					add(j, i)
				}
			}
		}
	}

	// Memory ordering: last writer / readers per storage.
	lastWrite := map[ir.Storage]int{}
	readers := map[ir.Storage][]int{}
	lastFence := -1
	for i, in := range instrs {
		switch in.Op {
		case ir.OpLoad:
			if w, ok := lastWrite[in.Mem]; ok {
				add(w, i)
			}
			if lastFence >= 0 {
				add(lastFence, i)
			}
			readers[in.Mem] = append(readers[in.Mem], i)
		case ir.OpStore, ir.OpAtomic:
			if w, ok := lastWrite[in.Mem]; ok {
				add(w, i)
			}
			for _, r := range readers[in.Mem] {
				add(r, i)
			}
			if lastFence >= 0 {
				add(lastFence, i)
			}
			lastWrite[in.Mem] = i
			readers[in.Mem] = nil
		case ir.OpBarrier:
			// Full fence: order against every prior memory op.
			for s, w := range lastWrite {
				add(w, i)
				delete(lastWrite, s)
			}
			for s, rs := range readers {
				for _, r := range rs {
					add(r, i)
				}
				delete(readers, s)
			}
			lastFence = i
		}
	}
	return succ, pred
}

// ScheduleBlock runs resource-aware list scheduling (ASAP with
// critical-path priority) over one basic block and returns its latency
// and resource statistics.
func ScheduleBlock(b *ir.Block, cfg *Config) *BlockStats {
	res := cfg.Res.Sane()
	instrs := b.Instrs
	n := len(instrs)
	st := &BlockStats{Issue: make(map[*ir.Instr]int, n)}
	if n == 0 {
		return st
	}

	latOf := func(in *ir.Instr) int { return cfg.Latency(in) }
	succ, pred := blockDFG(instrs, latOf)

	// Priority: longest path to any sink (classic critical-path).
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := latOf(instrs[i])
		for _, e := range succ[i] {
			if v := e.delay + prio[e.to]; v > best {
				best = v
			}
		}
		prio[i] = best
	}

	// Earliest start from predecessors (updated as nodes are placed).
	ready := make([]int, n) // earliest cycle by dependences
	remaining := make([]int, n)
	for i := range instrs {
		remaining[i] = len(pred[i])
	}
	scheduled := make([]bool, n)
	start := make([]int, n)

	// Per-cycle resource usage tables grow on demand.
	usage := map[resKind][]int{}
	usedAt := func(k resKind, t int) int {
		u := usage[k]
		if t < len(u) {
			return u[t]
		}
		return 0
	}
	reserve := func(k resKind, t int) {
		u := usage[k]
		for len(u) <= t {
			u = append(u, 0)
		}
		u[t]++
		usage[k] = u
	}

	placed := 0
	cycle := 0
	const maxCycles = 1 << 22
	for placed < n && cycle < maxCycles {
		// Collect ready nodes at this cycle, highest priority first.
		var cand []int
		for i := range instrs {
			if !scheduled[i] && remaining[i] == 0 && ready[i] <= cycle {
				cand = append(cand, i)
			}
		}
		sort.Slice(cand, func(a, b int) bool {
			if prio[cand[a]] != prio[cand[b]] {
				return prio[cand[a]] > prio[cand[b]]
			}
			return cand[a] < cand[b]
		})
		for _, i := range cand {
			k := cfg.resourceOf(instrs[i])
			if k != resNone && usedAt(k, cycle) >= res.limit(k) {
				continue // resource conflict; try next cycle
			}
			if k != resNone {
				reserve(k, cycle)
			}
			scheduled[i] = true
			start[i] = cycle
			placed++
			for _, e := range succ[i] {
				if t := cycle + e.delay; t > ready[e.to] {
					ready[e.to] = t
				}
				remaining[e.to]--
			}
		}
		cycle++
	}

	length := 0
	for i, in := range instrs {
		st.Issue[in] = start[i]
		if end := start[i] + latOf(in); end > length {
			length = end
		}
		switch device.Classify(in) {
		case device.ClassLocalLoad:
			st.LocalReads++
		case device.ClassLocalStore:
			st.LocalWrites++
		case device.ClassGlobalLoad:
			st.GlobalLoads++
		case device.ClassGlobalStore:
			st.GlobalStores++
		case device.ClassAtomic:
			st.GlobalLoads++
			st.GlobalStores++
		}
		if cfg.Table != nil && cfg.Table.DSPCost(device.Classify(in)) > 0 {
			st.DSPOps++
		}
	}
	st.Length = length
	return st
}

// FuncTotals aggregates frequency-weighted resource counts over the whole
// work-item (N_read, N_write etc. of Eq. 4, where the counts are the
// maxima over the work-item pipeline).
type FuncTotals struct {
	LocalReads   float64
	LocalWrites  float64
	GlobalLoads  float64
	GlobalStores float64
	DSPOps       float64
	Instrs       float64
}

// Totals computes frequency-weighted operation totals per work-item.
// freq maps blocks to average executions per work-item (1 if absent).
func Totals(f *ir.Func, freq map[*ir.Block]float64, cfg *Config) FuncTotals {
	var t FuncTotals
	for _, b := range f.Blocks {
		w, ok := freq[b]
		if !ok {
			w = 1
		}
		for _, in := range b.Instrs {
			t.Instrs += w
			switch device.Classify(in) {
			case device.ClassLocalLoad:
				t.LocalReads += w
			case device.ClassLocalStore:
				t.LocalWrites += w
			case device.ClassGlobalLoad:
				t.GlobalLoads += w
			case device.ClassGlobalStore:
				t.GlobalStores += w
			case device.ClassAtomic:
				t.GlobalLoads += w
				t.GlobalStores += w
			}
			if cfg.Table != nil && cfg.Table.DSPCost(device.Classify(in)) > 0 {
				t.DSPOps += w
			}
		}
	}
	return t
}

// ResMII implements Eq. 3–4: the resource-constrained minimum initiation
// interval from local-memory ports and DSP cores.
func ResMII(t FuncTotals, res Resources) int {
	res = res.Sane()
	mii := 1
	if v := int(math.Ceil(t.LocalReads / float64(res.LocalRead))); v > mii {
		mii = v
	}
	if v := int(math.Ceil(t.LocalWrites / float64(res.LocalWrite))); v > mii {
		mii = v
	}
	if v := int(math.Ceil(t.DSPOps / float64(res.DSPSlots))); v > mii {
		mii = v
	}
	return mii
}

// typeIsIdx reports an integer scalar suitable for index chains.
func typeIsIdx(t ast.Type) bool { return t.IsScalar() && t.Base.IsInteger() }
