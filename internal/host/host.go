// Package host provides an OpenCL-host-style API over the FlexCL stack:
// contexts, programs, kernels with positional arguments, and command
// queues that can execute a launch functionally, estimate it analytically
// or simulate it cycle-accurately. It mirrors the host/kernel split of
// Figure 1, so code written against the real OpenCL host API ports
// directly.
package host

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/model"
	"repro/internal/rtlsim"
)

// Context owns a target platform, like a cl_context bound to one device.
type Context struct {
	Platform *device.Platform
}

// NewContext returns a context for the platform (nil = Virtex-7).
func NewContext(p *device.Platform) *Context {
	if p == nil {
		p = device.Virtex7()
	}
	return &Context{Platform: p}
}

// Program is a compiled translation unit (cl_program).
type Program struct {
	ctx    *Context
	module *irgen.Module
}

// CreateProgram compiles OpenCL source, like clCreateProgramWithSource +
// clBuildProgram. defines plays the role of -D build options.
func (c *Context) CreateProgram(name string, src []byte, defines map[string]string) (*Program, error) {
	m, err := irgen.Compile(name, src, defines)
	if err != nil {
		return nil, fmt.Errorf("host: build failed: %w", err)
	}
	return &Program{ctx: c, module: m}, nil
}

// Kernel is a kernel object with bound arguments (cl_kernel).
type Kernel struct {
	prog *Program
	f    *ir.Func
	// args holds one entry per parameter, bound positionally.
	bufs    map[string]*interp.Buffer
	scalars map[string]interp.Val
}

// CreateKernel looks a kernel up by name, like clCreateKernel.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	f := p.module.Kernel(name)
	if f == nil {
		return nil, fmt.Errorf("host: kernel %q not found", name)
	}
	return &Kernel{
		prog:    p,
		f:       f,
		bufs:    make(map[string]*interp.Buffer),
		scalars: make(map[string]interp.Val),
	}, nil
}

// NumArgs returns the kernel's parameter count.
func (k *Kernel) NumArgs() int { return len(k.f.Params) }

// ArgName returns the name of parameter idx.
func (k *Kernel) ArgName(idx int) string {
	if idx < 0 || idx >= len(k.f.Params) {
		return ""
	}
	return k.f.Params[idx].PName
}

// SetArgBuffer binds a buffer to pointer parameter idx (clSetKernelArg
// with a cl_mem).
func (k *Kernel) SetArgBuffer(idx int, b *interp.Buffer) error {
	if idx < 0 || idx >= len(k.f.Params) {
		return fmt.Errorf("host: argument index %d out of range", idx)
	}
	prm := k.f.Params[idx]
	if !prm.T.Ptr {
		return fmt.Errorf("host: argument %d (%s) is not a pointer", idx, prm.PName)
	}
	k.bufs[prm.PName] = b
	return nil
}

// SetArgInt binds an integer scalar to parameter idx.
func (k *Kernel) SetArgInt(idx int, v int64) error {
	if idx < 0 || idx >= len(k.f.Params) {
		return fmt.Errorf("host: argument index %d out of range", idx)
	}
	prm := k.f.Params[idx]
	if prm.T.Ptr {
		return fmt.Errorf("host: argument %d (%s) is a pointer; use SetArgBuffer", idx, prm.PName)
	}
	k.scalars[prm.PName] = interp.IntVal(v)
	return nil
}

// SetArgFloat binds a floating scalar to parameter idx.
func (k *Kernel) SetArgFloat(idx int, v float64) error {
	if idx < 0 || idx >= len(k.f.Params) {
		return fmt.Errorf("host: argument index %d out of range", idx)
	}
	prm := k.f.Params[idx]
	if prm.T.Ptr {
		return fmt.Errorf("host: argument %d (%s) is a pointer; use SetArgBuffer", idx, prm.PName)
	}
	k.scalars[prm.PName] = interp.FloatVal(v)
	return nil
}

// launch assembles the interp configuration, validating bindings.
func (k *Kernel) launch(global, local [3]int64) (*interp.Config, error) {
	for _, prm := range k.f.Params {
		if prm.T.Ptr {
			if k.bufs[prm.PName] == nil {
				return nil, fmt.Errorf("host: buffer argument %s unset", prm.PName)
			}
		} else if _, ok := k.scalars[prm.PName]; !ok {
			return nil, fmt.Errorf("host: scalar argument %s unset", prm.PName)
		}
	}
	return &interp.Config{
		Range:   interp.NDRange{Global: global, Local: local},
		Buffers: k.bufs,
		Scalars: k.scalars,
	}, nil
}

// Queue executes launches (cl_command_queue). Queues are synchronous:
// every enqueue completes before returning.
type Queue struct {
	ctx *Context
}

// CreateQueue returns a command queue on the context.
func (c *Context) CreateQueue() *Queue { return &Queue{ctx: c} }

// EnqueueNDRange executes the kernel functionally over the NDRange,
// mutating its bound buffers (clEnqueueNDRangeKernel + clFinish).
func (q *Queue) EnqueueNDRange(k *Kernel, global, local [3]int64) error {
	cfg, err := k.launch(global, local)
	if err != nil {
		return err
	}
	return interp.Run(k.f, cfg)
}

// Estimate predicts the launch's cycle count at a design point with the
// FlexCL analytical model. Buffers are snapshotted so the profiling run
// does not disturb bound data.
func (q *Queue) Estimate(k *Kernel, global, local [3]int64, d model.Design) (*model.Estimate, error) {
	cfg, err := k.launch(global, local)
	if err != nil {
		return nil, err
	}
	cfg = snapshot(cfg)
	an, err := model.Analyze(context.Background(), k.f, q.ctx.Platform, cfg, model.AnalysisOptions{})
	if err != nil {
		return nil, err
	}
	return an.Predict(d), nil
}

// Simulate measures the launch cycle-accurately at a design point.
// Buffers are snapshotted.
func (q *Queue) Simulate(k *Kernel, global, local [3]int64, d model.Design, maxGroups int) (*rtlsim.Result, error) {
	cfg, err := k.launch(global, local)
	if err != nil {
		return nil, err
	}
	cfg = snapshot(cfg)
	return rtlsim.Simulate(k.f, q.ctx.Platform, cfg, d, rtlsim.Options{MaxGroups: maxGroups})
}

// snapshot deep-copies the launch configuration. The previous local
// copy shared the Scalars map with the live kernel bindings, so a
// SetArg racing a profiling run mutated the snapshot's arguments;
// interp.Config.Clone copies maps and vector lanes too.
func snapshot(cfg *interp.Config) *interp.Config {
	return cfg.Clone()
}
