package host

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/model"
	"repro/internal/opencl/ast"
)

const saxpySrc = `
__kernel void saxpy(__global const float* x, __global float* y, int n) {
    int i = get_global_id(0);
    if (i < n) { y[i] = 2.0f * x[i] + y[i]; }
}`

func buildSaxpy(t *testing.T) (*Context, *Kernel) {
	t.Helper()
	ctx := NewContext(nil)
	prog, err := ctx.CreateProgram("saxpy.cl", []byte(saxpySrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, k
}

func TestHostFlow(t *testing.T) {
	ctx, k := buildSaxpy(t)
	if k.NumArgs() != 3 || k.ArgName(0) != "x" || k.ArgName(2) != "n" {
		t.Fatalf("arg reflection wrong: %d args", k.NumArgs())
	}
	const n = 128
	x := interp.NewFloatBuffer(ast.KFloat, n)
	y := interp.NewFloatBuffer(ast.KFloat, n)
	for i := 0; i < n; i++ {
		x.F[i] = float64(i)
		y.F[i] = 1
	}
	if err := k.SetArgBuffer(0, x); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(1, y); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(2, n); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateQueue()
	if err := q.EnqueueNDRange(k, [3]int64{n}, [3]int64{32}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if y.F[i] != 2*float64(i)+1 {
			t.Fatalf("y[%d] = %v", i, y.F[i])
		}
	}
}

func TestArgValidation(t *testing.T) {
	_, k := buildSaxpy(t)
	if err := k.SetArgInt(0, 1); err == nil || !strings.Contains(err.Error(), "pointer") {
		t.Errorf("int into pointer slot: %v", err)
	}
	buf := interp.NewFloatBuffer(ast.KFloat, 4)
	if err := k.SetArgBuffer(2, buf); err == nil || !strings.Contains(err.Error(), "not a pointer") {
		t.Errorf("buffer into scalar slot: %v", err)
	}
	if err := k.SetArgBuffer(7, buf); err == nil {
		t.Error("index out of range accepted")
	}
}

func TestUnsetArgumentsRejected(t *testing.T) {
	ctx, k := buildSaxpy(t)
	q := ctx.CreateQueue()
	err := q.EnqueueNDRange(k, [3]int64{32}, [3]int64{32})
	if err == nil || !strings.Contains(err.Error(), "unset") {
		t.Fatalf("launch with unset args: %v", err)
	}
}

func TestEstimateAndSimulateDoNotMutate(t *testing.T) {
	ctx, k := buildSaxpy(t)
	const n = 256
	x := interp.NewFloatBuffer(ast.KFloat, n)
	y := interp.NewFloatBuffer(ast.KFloat, n)
	for i := 0; i < n; i++ {
		x.F[i], y.F[i] = float64(i), 7
	}
	_ = k.SetArgBuffer(0, x)
	_ = k.SetArgBuffer(1, y)
	_ = k.SetArgInt(2, n)

	q := ctx.CreateQueue()
	d := model.Design{WGSize: 64, WIPipeline: true, PE: 1, CU: 1, Mode: model.ModePipeline}
	est, err := q.Estimate(k, [3]int64{n}, [3]int64{64}, d)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles <= 0 {
		t.Fatal("bad estimate")
	}
	sim, err := q.Simulate(k, [3]int64{n}, [3]int64{64}, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Cycles <= 0 {
		t.Fatal("bad simulation")
	}
	// The bound buffers must be untouched by estimation/simulation.
	for i := 0; i < n; i++ {
		if y.F[i] != 7 {
			t.Fatalf("estimation mutated y[%d] = %v", i, y.F[i])
		}
	}
}

func TestCreateKernelUnknown(t *testing.T) {
	ctx := NewContext(nil)
	prog, err := ctx.CreateProgram("s.cl", []byte(saxpySrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.CreateKernel("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestBuildError(t *testing.T) {
	ctx := NewContext(nil)
	if _, err := ctx.CreateProgram("bad.cl", []byte("__kernel void k( {"), nil); err == nil {
		t.Fatal("build error not reported")
	}
}

func TestFloatScalarArg(t *testing.T) {
	ctx := NewContext(nil)
	prog, err := ctx.CreateProgram("s.cl", []byte(`
__kernel void scale(__global float* y, float a) {
    int i = get_global_id(0);
    y[i] = y[i] * a;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	y := interp.NewFloatBuffer(ast.KFloat, 8)
	for i := range y.F {
		y.F[i] = 2
	}
	_ = k.SetArgBuffer(0, y)
	if err := k.SetArgFloat(1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := ctx.CreateQueue().EnqueueNDRange(k, [3]int64{8}, [3]int64{8}); err != nil {
		t.Fatal(err)
	}
	if y.F[0] != 3 {
		t.Fatalf("y[0] = %v", y.F[0])
	}
}
