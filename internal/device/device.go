// Package device describes the FPGA platforms FlexCL targets: resource
// budgets (DSP slices, BRAM, local-memory ports), per-operation latency
// databases with multiple hardware implementation variants, and DRAM
// timing parameters.
//
// The paper obtains per-IR-operation latencies by micro-benchmark
// profiling on the board (§3.2); Profile reproduces that step by averaging
// over the implementation variants the synthesis tool may choose, which is
// exactly the error source the paper identifies in §4.2 ("SDAccel may have
// multiple hardware implementation choices with different execution
// latencies ... we address this problem by computing the average latency").
package device

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// OpClass buckets IR operations into hardware IP-core classes with
// distinct latency/resource characteristics.
type OpClass int

// Operation classes.
const (
	ClassNop OpClass = iota
	ClassIAdd
	ClassIMul
	ClassIDiv
	ClassLogic // and/or/xor/shift/compare/select
	ClassFAdd
	ClassFMul
	ClassFDiv
	ClassFSqrt
	ClassFExp // exp/log/pow and other transcendental cores
	ClassFTrig
	ClassCast
	ClassLocalLoad
	ClassLocalStore
	ClassPrivLoad   // register-file access
	ClassPrivStore  // register-file access
	ClassGlobalLoad // interface issue latency; DRAM time is in the memory model
	ClassGlobalStore
	ClassAtomic
	ClassWorkItem
	ClassVecShuffle
	ClassBarrierOp

	numClasses
)

var classNames = [...]string{
	ClassNop: "nop", ClassIAdd: "iadd", ClassIMul: "imul", ClassIDiv: "idiv",
	ClassLogic: "logic", ClassFAdd: "fadd", ClassFMul: "fmul",
	ClassFDiv: "fdiv", ClassFSqrt: "fsqrt", ClassFExp: "fexp",
	ClassFTrig: "ftrig", ClassCast: "cast",
	ClassLocalLoad: "local.load", ClassLocalStore: "local.store",
	ClassPrivLoad: "priv.load", ClassPrivStore: "priv.store",
	ClassGlobalLoad: "global.load", ClassGlobalStore: "global.store",
	ClassAtomic: "atomic", ClassWorkItem: "workitem",
	ClassVecShuffle: "vec.shuffle", ClassBarrierOp: "barrier",
}

func (c OpClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes returns all operation classes.
func Classes() []OpClass {
	out := make([]OpClass, 0, numClasses)
	for c := OpClass(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Classify maps an IR instruction to its operation class.
func Classify(in *ir.Instr) OpClass {
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		return ClassIAdd
	case ir.OpMul:
		return ClassIMul
	case ir.OpDiv, ir.OpRem:
		return ClassIDiv
	case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpICmp, ir.OpSelect:
		return ClassLogic
	case ir.OpFAdd, ir.OpFSub:
		return ClassFAdd
	case ir.OpFMul:
		return ClassFMul
	case ir.OpFDiv:
		return ClassFDiv
	case ir.OpFCmp:
		return ClassLogic
	case ir.OpCast:
		return ClassCast
	case ir.OpCall:
		switch in.Fn {
		case "sqrt", "rsqrt", "native_sqrt", "hypot":
			return ClassFSqrt
		case "exp", "exp2", "log", "log2", "pow", "native_exp", "native_log":
			return ClassFExp
		case "sin", "cos", "tan", "atan2":
			return ClassFTrig
		case "fabs", "floor", "ceil", "round", "fmax", "fmin", "max", "min",
			"clamp", "select", "abs":
			return ClassLogic
		case "mad", "fma":
			return ClassFMul
		case "fmod":
			return ClassFDiv
		case "dot":
			return ClassFMul
		default:
			return ClassFAdd
		}
	case ir.OpLoad:
		switch in.Mem.Space() {
		case ast.ASGlobal, ast.ASConstant:
			return ClassGlobalLoad
		case ast.ASLocal:
			return ClassLocalLoad
		default:
			return ClassPrivLoad
		}
	case ir.OpStore:
		switch in.Mem.Space() {
		case ast.ASGlobal, ast.ASConstant:
			return ClassGlobalStore
		case ast.ASLocal:
			return ClassLocalStore
		default:
			return ClassPrivStore
		}
	case ir.OpAtomic:
		return ClassAtomic
	case ir.OpWorkItem:
		return ClassWorkItem
	case ir.OpVecBuild, ir.OpVecExtract, ir.OpVecInsert:
		return ClassVecShuffle
	case ir.OpBarrier:
		return ClassBarrierOp
	default:
		return ClassNop
	}
}

// OpInfo describes the hardware implementations available for one class.
type OpInfo struct {
	// Variants are the pipeline latencies (cycles) of the implementation
	// choices the synthesis tool may pick; selection is not exposed to
	// the programmer.
	Variants []int
	// DSP is the DSP-slice cost per scalar lane.
	DSP int
	// II is the initiation interval of the core itself (1 = fully
	// pipelined; integer dividers are typically not).
	II int
}

// DRAMParams parameterizes the off-chip memory model (§3.4): bank count,
// row-buffer geometry and the command timings that differentiate the eight
// access patterns of Table 1. All times are in kernel clock cycles.
type DRAMParams struct {
	Banks    int
	RowBytes int
	// BurstBytes is the data bus transfer granularity (the coalesced
	// memory access unit, 512 bit on SDAccel platforms).
	BurstBytes int
	TCL        int // read column access (row-buffer hit)
	TRCD       int // activate-to-access
	TRP        int // precharge
	TWR        int // write recovery
	TBus       int // data transfer per burst
	TurnRW     int // read-after-write turnaround penalty
	TurnWR     int // write-after-read turnaround penalty
}

// Platform is one FPGA board configuration.
type Platform struct {
	Name     string
	ClockMHz float64

	// Compute resources.
	DSPTotal    int
	BRAMTotalKb int

	// Local memory (per compute unit): banks × ports.
	LocalBanks        int
	PortsPerBankRead  int
	PortsPerBankWrite int

	// MemAccessUnitBits is the coalescing unit (§3.4).
	MemAccessUnitBits int

	// WGSchedOverhead is the work-group dispatch overhead ΔL_schedule
	// in cycles (Eq. 7–8).
	WGSchedOverhead int

	// MaxCU and MaxPE bound the design space on this part.
	MaxCU int
	MaxPE int

	DRAM DRAMParams

	ops map[OpClass]OpInfo
}

// OpInfo returns the implementation descriptor for a class.
func (p *Platform) OpInfo(c OpClass) OpInfo {
	if oi, ok := p.ops[c]; ok {
		return oi
	}
	return OpInfo{Variants: []int{1}, II: 1}
}

// LocalReadPorts returns the total local-memory read ports per CU.
func (p *Platform) LocalReadPorts() int { return p.LocalBanks * p.PortsPerBankRead }

// LocalWritePorts returns the total local-memory write ports per CU.
func (p *Platform) LocalWritePorts() int { return p.LocalBanks * p.PortsPerBankWrite }

// VariantFor deterministically selects the implementation variant the
// synthesis tool would choose for one op instance. The hash mixes kernel
// name, design-point id and instruction id so different designs of the
// same kernel can receive different implementations — the behaviour the
// paper identifies as a model error source.
func (p *Platform) VariantFor(c OpClass, hash uint64) int {
	oi := p.OpInfo(c)
	if len(oi.Variants) == 0 {
		return 1
	}
	return oi.Variants[hash%uint64(len(oi.Variants))]
}

// Mix64 is a split-mix style hash used for deterministic variant choice.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString folds a string into a 64-bit seed.
func HashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Virtex7 returns the Alpha Data ADM-PCIE-7V3 configuration used for the
// paper's main experiments: Xilinx Virtex-7 XC7VX690T, 16 GB DDR3 with 8
// banks and 1 KB row buffers, kernels clocked at 200 MHz (§4.1).
func Virtex7() *Platform {
	return &Platform{
		Name:              "virtex7-xc7vx690t",
		ClockMHz:          200,
		DSPTotal:          3600,
		BRAMTotalKb:       52920,
		LocalBanks:        4,
		PortsPerBankRead:  2,
		PortsPerBankWrite: 1,
		MemAccessUnitBits: 512,
		WGSchedOverhead:   48,
		MaxCU:             4,
		MaxPE:             16,
		DRAM: DRAMParams{
			Banks:      8,
			RowBytes:   1024,
			BurstBytes: 64,
			TCL:        11,
			TRCD:       11,
			TRP:        11,
			TWR:        12,
			TBus:       4,
			TurnRW:     6,
			TurnWR:     8,
		},
		ops: map[OpClass]OpInfo{
			ClassNop:         {Variants: []int{0}, II: 1},
			ClassIAdd:        {Variants: []int{1}, II: 1},
			ClassIMul:        {Variants: []int{3, 4, 4}, DSP: 4, II: 1},
			ClassIDiv:        {Variants: []int{34, 36}, II: 2},
			ClassLogic:       {Variants: []int{1}, II: 1},
			ClassFAdd:        {Variants: []int{8, 11, 12}, DSP: 2, II: 1},
			ClassFMul:        {Variants: []int{6, 8}, DSP: 3, II: 1},
			ClassFDiv:        {Variants: []int{28, 30}, II: 1},
			ClassFSqrt:       {Variants: []int{28}, II: 1},
			ClassFExp:        {Variants: []int{20, 26}, DSP: 7, II: 1},
			ClassFTrig:       {Variants: []int{32, 40}, DSP: 9, II: 1},
			ClassCast:        {Variants: []int{4, 6}, II: 1},
			ClassLocalLoad:   {Variants: []int{2}, II: 1},
			ClassLocalStore:  {Variants: []int{1}, II: 1},
			ClassPrivLoad:    {Variants: []int{0}, II: 1},
			ClassPrivStore:   {Variants: []int{0}, II: 1},
			ClassGlobalLoad:  {Variants: []int{4}, II: 1},
			ClassGlobalStore: {Variants: []int{2}, II: 1},
			ClassAtomic:      {Variants: []int{12}, II: 2},
			ClassWorkItem:    {Variants: []int{0}, II: 1},
			ClassVecShuffle:  {Variants: []int{0}, II: 1},
			ClassBarrierOp:   {Variants: []int{2}, II: 1},
		},
	}
}

// KU060 returns the NAS-120A / Kintex UltraScale KU060 configuration used
// for the robustness experiment (§4.2). The UltraScale fabric clocks the
// same kernels slightly differently: deeper floating-point pipelines,
// DDR4-style memory timings, more DSPs.
func KU060() *Platform {
	return &Platform{
		Name:              "ultrascale-ku060",
		ClockMHz:          240,
		DSPTotal:          2760,
		BRAMTotalKb:       38000,
		LocalBanks:        4,
		PortsPerBankRead:  2,
		PortsPerBankWrite: 1,
		MemAccessUnitBits: 512,
		WGSchedOverhead:   40,
		MaxCU:             4,
		MaxPE:             16,
		DRAM: DRAMParams{
			Banks:      16,
			RowBytes:   1024,
			BurstBytes: 64,
			TCL:        14,
			TRCD:       14,
			TRP:        14,
			TWR:        15,
			TBus:       3,
			TurnRW:     7,
			TurnWR:     9,
		},
		ops: map[OpClass]OpInfo{
			ClassNop:         {Variants: []int{0}, II: 1},
			ClassIAdd:        {Variants: []int{1}, II: 1},
			ClassIMul:        {Variants: []int{3, 3, 4}, DSP: 3, II: 1},
			ClassIDiv:        {Variants: []int{36}, II: 2},
			ClassLogic:       {Variants: []int{1}, II: 1},
			ClassFAdd:        {Variants: []int{10, 12, 14}, DSP: 2, II: 1},
			ClassFMul:        {Variants: []int{7, 9}, DSP: 3, II: 1},
			ClassFDiv:        {Variants: []int{30, 33}, II: 1},
			ClassFSqrt:       {Variants: []int{30}, II: 1},
			ClassFExp:        {Variants: []int{22, 28}, DSP: 7, II: 1},
			ClassFTrig:       {Variants: []int{36, 44}, DSP: 9, II: 1},
			ClassCast:        {Variants: []int{5, 6}, II: 1},
			ClassLocalLoad:   {Variants: []int{2}, II: 1},
			ClassLocalStore:  {Variants: []int{1}, II: 1},
			ClassPrivLoad:    {Variants: []int{0}, II: 1},
			ClassPrivStore:   {Variants: []int{0}, II: 1},
			ClassGlobalLoad:  {Variants: []int{5}, II: 1},
			ClassGlobalStore: {Variants: []int{2}, II: 1},
			ClassAtomic:      {Variants: []int{14}, II: 2},
			ClassWorkItem:    {Variants: []int{0}, II: 1},
			ClassVecShuffle:  {Variants: []int{0}, II: 1},
			ClassBarrierOp:   {Variants: []int{2}, II: 1},
		},
	}
}

// AlveoU250 returns a modern Alveo U250-class data-center card: more of
// everything (DSPs, BRAM, DDR4 channels collapsed into one faster
// in-order port) and a 300 MHz kernel clock. Useful for studying how the
// model's conclusions shift on newer parts; not part of the paper's
// evaluation.
func AlveoU250() *Platform {
	return &Platform{
		Name:              "alveo-u250",
		ClockMHz:          300,
		DSPTotal:          12288,
		BRAMTotalKb:       98304,
		LocalBanks:        8,
		PortsPerBankRead:  2,
		PortsPerBankWrite: 1,
		MemAccessUnitBits: 512,
		WGSchedOverhead:   32,
		MaxCU:             8,
		MaxPE:             16,
		DRAM: DRAMParams{
			Banks:      16,
			RowBytes:   2048,
			BurstBytes: 64,
			TCL:        13,
			TRCD:       13,
			TRP:        13,
			TWR:        14,
			TBus:       2,
			TurnRW:     5,
			TurnWR:     7,
		},
		ops: map[OpClass]OpInfo{
			ClassNop:         {Variants: []int{0}, II: 1},
			ClassIAdd:        {Variants: []int{1}, II: 1},
			ClassIMul:        {Variants: []int{3, 3}, DSP: 3, II: 1},
			ClassIDiv:        {Variants: []int{32}, II: 2},
			ClassLogic:       {Variants: []int{1}, II: 1},
			ClassFAdd:        {Variants: []int{7, 9, 11}, DSP: 2, II: 1},
			ClassFMul:        {Variants: []int{5, 7}, DSP: 3, II: 1},
			ClassFDiv:        {Variants: []int{26, 28}, II: 1},
			ClassFSqrt:       {Variants: []int{26}, II: 1},
			ClassFExp:        {Variants: []int{18, 24}, DSP: 7, II: 1},
			ClassFTrig:       {Variants: []int{30, 38}, DSP: 9, II: 1},
			ClassCast:        {Variants: []int{3, 5}, II: 1},
			ClassLocalLoad:   {Variants: []int{2}, II: 1},
			ClassLocalStore:  {Variants: []int{1}, II: 1},
			ClassPrivLoad:    {Variants: []int{0}, II: 1},
			ClassPrivStore:   {Variants: []int{0}, II: 1},
			ClassGlobalLoad:  {Variants: []int{4}, II: 1},
			ClassGlobalStore: {Variants: []int{2}, II: 1},
			ClassAtomic:      {Variants: []int{10}, II: 2},
			ClassWorkItem:    {Variants: []int{0}, II: 1},
			ClassVecShuffle:  {Variants: []int{0}, II: 1},
			ClassBarrierOp:   {Variants: []int{2}, II: 1},
		},
	}
}

// Platforms returns the catalogue of known platforms by name.
func Platforms() map[string]*Platform {
	return map[string]*Platform{
		"virtex7": Virtex7(),
		"ku060":   KU060(),
		"u250":    AlveoU250(),
	}
}

// LatencyTable is a profiled average latency per operation class — the
// numbers FlexCL's analytical model consumes.
type LatencyTable struct {
	Avg [numClasses]float64
	DSP [numClasses]int
	II  [numClasses]int
}

// Latency returns the profiled average latency of a class.
func (t *LatencyTable) Latency(c OpClass) float64 { return t.Avg[c] }

// DSPCost returns the DSP-slice cost of a class per scalar lane.
func (t *LatencyTable) DSPCost(c OpClass) int { return t.DSP[c] }

// CoreII returns the initiation interval of the class's core.
func (t *LatencyTable) CoreII(c OpClass) int {
	if t.II[c] <= 0 {
		return 1
	}
	return t.II[c]
}

// Profile runs the micro-benchmark profiling step: for each operation
// class it samples the implementation variants the tool chooses across
// many synthetic instances and records the mean latency. Deterministic
// for a given platform.
func Profile(p *Platform, samples int) *LatencyTable {
	if samples <= 0 {
		samples = 256
	}
	t := &LatencyTable{}
	seed := HashString(p.Name)
	for c := OpClass(0); c < numClasses; c++ {
		oi := p.OpInfo(c)
		sum := 0
		for s := 0; s < samples; s++ {
			sum += p.VariantFor(c, Mix64(seed^uint64(c)<<32^uint64(s)))
		}
		t.Avg[c] = float64(sum) / float64(samples)
		t.DSP[c] = oi.DSP
		t.II[c] = oi.II
	}
	return t
}
