package device

import (
	"testing"
	"testing/quick"

	"repro/internal/irgen"
	"repro/internal/opencl/ast"
)

func TestPlatformCatalogue(t *testing.T) {
	ps := Platforms()
	if ps["virtex7"] == nil || ps["ku060"] == nil {
		t.Fatal("platform catalogue incomplete")
	}
	v7 := ps["virtex7"]
	if v7.ClockMHz != 200 {
		t.Errorf("Virtex-7 clock = %v, want 200 MHz (§4.1)", v7.ClockMHz)
	}
	if v7.DRAM.Banks != 8 || v7.DRAM.RowBytes != 1024 {
		t.Errorf("Virtex-7 DRAM = %d banks / %d B rows, want 8 / 1024 (§4.1)",
			v7.DRAM.Banks, v7.DRAM.RowBytes)
	}
	if v7.DSPTotal != 3600 {
		t.Errorf("XC7VX690T DSPs = %d, want 3600", v7.DSPTotal)
	}
}

func TestClassifyCoversKernel(t *testing.T) {
	m, err := irgen.Compile("t.cl", []byte(`
__kernel void k(__global float* x, __global int* y) {
    __local float t[32];
    int i = get_local_id(0);
    t[i] = x[i] * 2.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = sqrt(t[31 - i]) / (t[0] + 1.0f);
    y[i] = (int)v % 3;
    atomic_add(y + 32, 1);
    x[i] = v;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernels[0]
	seen := map[OpClass]bool{}
	for _, b := range k.Blocks {
		for _, in := range b.Instrs {
			seen[Classify(in)] = true
		}
	}
	for _, want := range []OpClass{
		ClassGlobalLoad, ClassGlobalStore, ClassLocalLoad, ClassLocalStore,
		ClassFMul, ClassFDiv, ClassFSqrt, ClassCast, ClassAtomic,
		ClassWorkItem, ClassBarrierOp, ClassIDiv,
	} {
		if !seen[want] {
			t.Errorf("class %v not produced by the test kernel", want)
		}
	}
}

func TestProfileAveragesWithinVariantRange(t *testing.T) {
	p := Virtex7()
	tab := Profile(p, 512)
	for _, c := range Classes() {
		oi := p.OpInfo(c)
		lo, hi := oi.Variants[0], oi.Variants[0]
		for _, v := range oi.Variants {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		avg := tab.Latency(c)
		if avg < float64(lo) || avg > float64(hi) {
			t.Errorf("%v: profiled avg %.2f outside variant range [%d, %d]", c, avg, lo, hi)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := Profile(Virtex7(), 128)
	b := Profile(Virtex7(), 128)
	if *a != *b {
		t.Error("profiling is not deterministic")
	}
}

func TestVariantDeterministicAndInRange(t *testing.T) {
	p := Virtex7()
	f := func(h uint64) bool {
		v := p.VariantFor(ClassFAdd, h)
		if v != p.VariantFor(ClassFAdd, h) {
			return false
		}
		for _, x := range p.OpInfo(ClassFAdd).Variants {
			if v == x {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlatformsDiffer(t *testing.T) {
	a, b := Profile(Virtex7(), 256), Profile(KU060(), 256)
	same := true
	for _, c := range Classes() {
		if a.Latency(c) != b.Latency(c) {
			same = false
		}
	}
	if same {
		t.Error("Virtex-7 and KU060 profiles are identical; robustness test would be vacuous")
	}
}

func TestLocalPorts(t *testing.T) {
	p := Virtex7()
	if p.LocalReadPorts() != p.LocalBanks*p.PortsPerBankRead {
		t.Error("read port arithmetic wrong")
	}
	if p.LocalWritePorts() != p.LocalBanks*p.PortsPerBankWrite {
		t.Error("write port arithmetic wrong")
	}
}

func TestMix64Spread(t *testing.T) {
	// Cheap avalanche check: flipping one input bit changes many output bits.
	base := Mix64(12345)
	diff := base ^ Mix64(12345^1)
	bits := 0
	for i := 0; i < 64; i++ {
		if diff&(1<<i) != 0 {
			bits++
		}
	}
	if bits < 16 {
		t.Errorf("Mix64 avalanche too weak: %d bits flipped", bits)
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("hotspot") == HashString("hotspot3D") {
		t.Error("hash collision on similar names")
	}
}

func TestOpInfoDefault(t *testing.T) {
	p := &Platform{}
	oi := p.OpInfo(ClassFAdd)
	if len(oi.Variants) != 1 || oi.Variants[0] != 1 {
		t.Errorf("default OpInfo = %+v", oi)
	}
}

var _ = ast.KFloat // keep the ast import for buffer kinds used above

func TestU250Catalogued(t *testing.T) {
	p := Platforms()["u250"]
	if p == nil {
		t.Fatal("u250 missing from catalogue")
	}
	if p.ClockMHz <= Virtex7().ClockMHz {
		t.Error("U250 should clock higher than Virtex-7")
	}
	if p.DSPTotal <= Virtex7().DSPTotal {
		t.Error("U250 should have more DSPs")
	}
	tab := Profile(p, 128)
	if tab.Latency(ClassFMul) >= Profile(Virtex7(), 128).Latency(ClassFMul) {
		t.Error("U250 fmul should be faster (shallower pipeline at higher clock)")
	}
}
