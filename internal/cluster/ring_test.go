package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderInsensitiveAndDeduped(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	b := NewRing([]string{"http://c:1/", " http://a:1", "http://b:1", "http://b:1/"})
	if a.ID() != b.ID() {
		t.Fatalf("ring IDs differ for the same membership: %s vs %s", a.ID(), b.ID())
	}
	if got, want := len(b.Peers()), 3; got != want {
		t.Fatalf("Peers() = %d entries, want %d (dedup + normalize)", got, want)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q owned by %s on ring a but %s on ring b", key, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil)
	if _, ok := empty.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	one := NewRing([]string{"http://solo:1"})
	for i := 0; i < 10; i++ {
		owner, ok := one.Owner(fmt.Sprintf("k%d", i))
		if !ok || owner != "http://solo:1" {
			t.Fatalf("single-peer ring: owner = %q ok=%v", owner, ok)
		}
	}
}

// TestRingDistribution: 128 vnodes must keep each of three peers'
// share of a large key population within a loose band of even — a
// pathological hash would park everything on one peer and turn the
// fleet's "one cache" into one hot replica.
func TestRingDistribution(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(peers)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		owner, _ := r.Owner(fmt.Sprintf("kernelhash-%d|virtex7|64", i))
		counts[owner]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("peer %s owns %.1f%% of keys; want a rough third", p, 100*share)
		}
	}
}

// TestRingStabilityUnderMembershipChange: removing one peer of three
// must only remap keys that peer owned — consistent hashing's whole
// point. Keys owned by survivors stay put, so a replica crash does not
// invalidate the rest of the fleet's placement.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	without := NewRing([]string{"http://a:1", "http://c:1"})
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := full.Owner(key)
		after, _ := without.Owner(key)
		if before == "http://b:1" {
			continue // b's keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys owned by surviving peers were remapped; consistent hashing should move none", moved)
	}
}
