package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

func testKernel(t *testing.T) *bench.Kernel {
	t.Helper()
	k := bench.Find("nn", "nn")
	if k == nil {
		t.Fatal("kernel nn/nn missing")
	}
	return k
}

// ownerFor scans the kernel's WG sweep for a size whose ring owner is
// the given peer.
func ownerFor(c *Cluster, k *bench.Kernel, p *device.Platform, want string) (int64, bool) {
	for _, wg := range k.WGSizes() {
		if owner, _ := c.Owner(PrepKey(k, p, wg)); owner == want {
			return wg, true
		}
	}
	return 0, false
}

func TestClusterUnconfiguredIsInert(t *testing.T) {
	c := New(Options{})
	if c.Enabled() {
		t.Fatal("unconfigured cluster reports Enabled")
	}
	owner, self := c.Owner("any")
	if !self || owner != "" {
		t.Fatalf("unconfigured Owner = (%q, self=%v), want self", owner, self)
	}
	k := testKernel(t)
	rec, _, err := c.Fetch(context.Background(), k, device.Virtex7(), k.WGSizes()[0])
	if rec != nil || err != nil {
		t.Fatalf("unconfigured Fetch = (%v, %v), want tier-not-applicable", rec, err)
	}
}

func TestClusterConfigureAddsSelf(t *testing.T) {
	c := New(Options{})
	if err := c.Configure("http://self:1", []string{"http://peer:1"}); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Fatal("two-member cluster not enabled")
	}
	snap := c.Snapshot()
	if len(snap.Peers) != 2 {
		t.Fatalf("membership = %d, want 2 (self auto-added)", len(snap.Peers))
	}
	if err := c.Configure("", []string{"http://peer:1"}); err == nil {
		t.Fatal("Configure with empty self did not fail")
	}
}

// TestClusterFetchPeerOriginNeverForwards: the loop-prevention marker —
// a fill already running on behalf of another replica must not forward
// again even when the ring says a peer owns the key.
func TestClusterFetchPeerOriginNeverForwards(t *testing.T) {
	called := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}))
	defer srv.Close()
	c := New(Options{})
	if err := c.Configure("http://self:1", []string{srv.URL}); err != nil {
		t.Fatal(err)
	}
	k := testKernel(t)
	p := device.Virtex7()
	wg, ok := ownerFor(c, k, p, Normalize(srv.URL))
	if !ok {
		t.Skip("no WG size owned by the peer for this kernel")
	}
	rec, _, err := c.Fetch(WithPeerOrigin(context.Background()), k, p, wg)
	if rec != nil || err != nil || called {
		t.Fatalf("peer-origin Fetch forwarded anyway (rec=%v err=%v called=%v)", rec, err, called)
	}
}

// TestClusterFetchShedAndRecord drives Fetch against a fake owner that
// first sheds (429 + Retry-After) and then answers with a real record:
// the shed must surface as *ShedError with the owner's hint and no
// cooldown, and the success must decode the record.
func TestClusterFetchShedAndRecord(t *testing.T) {
	k := testKernel(t)
	p := device.Virtex7()

	f, err := k.Compile(k.WGSizes()[0])
	if err != nil {
		t.Fatal(err)
	}
	f.EnsureLoops()
	an, err := model.Analyze(context.Background(), f, p, k.Config(k.WGSizes()[0]), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.Key{Kernel: k.CacheKey(), Platform: p.Name, WG: k.WGSizes()[0]}
	data, err := artifact.Encode(artifact.New(key, an, 0))
	if err != nil {
		t.Fatal(err)
	}

	shedFirst := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PrepPath {
			t.Errorf("owner hit %s, want %s", r.URL.Path, PrepPath)
		}
		if got := r.Header.Get(LaneHeader); got != "bulk" {
			t.Errorf("lane header = %q, want bulk", got)
		}
		if got := r.Header.Get(PeerHeader); got != "http://self:1" {
			t.Errorf("peer header = %q, want the forwarder", got)
		}
		if shedFirst {
			shedFirst = false
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write(data)
	}))
	defer srv.Close()

	c := New(Options{})
	if err := c.Configure("http://self:1", []string{srv.URL}); err != nil {
		t.Fatal(err)
	}
	wg, ok := ownerFor(c, k, p, Normalize(srv.URL))
	if !ok {
		t.Skip("no WG size owned by the peer for this kernel")
	}
	ctx := WithLane(context.Background(), "bulk")

	_, _, err = c.Fetch(ctx, k, p, wg)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed response surfaced as %v, want *ShedError", err)
	}
	if shed.RetryAfterSeconds != 7 {
		t.Errorf("RetryAfterSeconds = %d, want the owner's 7", shed.RetryAfterSeconds)
	}

	// A shed is not a health failure: the peer must still be up and the
	// next fetch must go through.
	rec, owner, err := c.Fetch(ctx, k, p, wg)
	if err != nil || rec == nil {
		t.Fatalf("fetch after shed = (%v, %v), want the record", rec, err)
	}
	if owner != Normalize(srv.URL) {
		t.Errorf("owner = %q, want %q", owner, Normalize(srv.URL))
	}
	snap := c.Snapshot()
	for _, ps := range snap.Peers {
		if ps.Self {
			continue
		}
		if !ps.Healthy {
			t.Error("peer marked unhealthy after a shed")
		}
		if ps.Sheds != 1 || ps.ForwardHits != 1 || ps.Forwards != 2 {
			t.Errorf("peer stats = forwards=%d hits=%d sheds=%d, want 2/1/1",
				ps.Forwards, ps.ForwardHits, ps.Sheds)
		}
	}
}

// TestClusterFetchDownPeerFallsBackLocally: a transport failure marks
// the peer down for the cooldown; while down, Fetch reports
// tier-not-applicable immediately (no network wait) and counts a local
// fallback.
func TestClusterFetchDownPeerFallsBackLocally(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := srv.URL
	srv.Close() // connection refused from here on

	c := New(Options{Cooldown: time.Hour})
	if err := c.Configure("http://self:1", []string{dead}); err != nil {
		t.Fatal(err)
	}
	k := testKernel(t)
	p := device.Virtex7()
	wg, ok := ownerFor(c, k, p, Normalize(dead))
	if !ok {
		t.Skip("no WG size owned by the peer for this kernel")
	}

	rec, _, err := c.Fetch(context.Background(), k, p, wg)
	if rec != nil || err != nil {
		t.Fatalf("fetch against dead peer = (%v, %v), want silent local fallback", rec, err)
	}
	// Second fetch: the peer is in cooldown, so no forward is attempted.
	if rec, _, err = c.Fetch(context.Background(), k, p, wg); rec != nil || err != nil {
		t.Fatalf("fetch during cooldown = (%v, %v), want silent local fallback", rec, err)
	}
	snap := c.Snapshot()
	if snap.LocalFallbacks != 2 {
		t.Errorf("LocalFallbacks = %d, want 2", snap.LocalFallbacks)
	}
	for _, ps := range snap.Peers {
		if !ps.Self {
			if ps.Healthy {
				t.Error("dead peer still marked healthy")
			}
			if ps.Forwards != 1 {
				t.Errorf("Forwards = %d, want 1 (cooldown must skip the second attempt)", ps.Forwards)
			}
			if ps.Errors != 1 || ps.LastError == "" {
				t.Errorf("Errors = %d LastError=%q, want the transport failure recorded", ps.Errors, ps.LastError)
			}
		}
	}
}
