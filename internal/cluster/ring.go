// Package cluster turns N flexcl-serve replicas into one logical cache:
// a consistent-hash ring places every prep key — the
// (bench.Kernel.CacheKey, platform, work-group size) triple the
// dse.PrepCache and the artifact store already key on — on exactly one
// owner replica, and non-owners fetch the owner's compile+analyze
// result over HTTP instead of recomputing it. The fleet then performs
// one compile+analyze per distinct kernel, not one per replica, which
// is the difference between FlexCL's sub-second interactive latency and
// an N-fold cold-start stampede when a corpus sweep hits every replica.
//
// The membership is static (the -peers flag); there is no gossip,
// leader or rebalancing protocol. A peer that stops answering is marked
// down for a cooldown and its keys degrade to local compute — requests
// never fail because a peer died, the fleet only temporarily loses the
// compile-once property for that peer's share of the ring.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// vnodes is the number of virtual points each peer contributes to the
// ring. 128 keeps the per-peer key share within a few percent of even
// for small fleets without making ring construction measurable.
const vnodes = 128

// Ring is an immutable consistent-hash ring over a set of peer URLs.
// Build one with NewRing; concurrent readers need no locking.
type Ring struct {
	points []ringPoint
	peers  []string // sorted, deduplicated
	id     string   // short content hash of the membership
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring over the given peer URLs (order-insensitive;
// duplicates and trailing slashes are folded away). An empty or
// single-peer ring is valid: every key is then owned by that peer (or
// by nobody — Owner reports ok=false on an empty ring).
func NewRing(peers []string) *Ring {
	uniq := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p = Normalize(p); p != "" {
			uniq[p] = true
		}
	}
	r := &Ring{peers: make([]string, 0, len(uniq))}
	for p := range uniq {
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	for _, p := range r.peers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	sum := sha256.Sum256([]byte(strings.Join(r.peers, "\n")))
	r.id = hex.EncodeToString(sum[:6])
	return r
}

// Normalize canonicalizes a peer URL so that "http://a:8080" and
// "http://a:8080/" name the same replica.
func Normalize(url string) string {
	return strings.TrimRight(strings.TrimSpace(url), "/")
}

// Owner returns the peer that owns key. ok is false only on an empty
// ring.
func (r *Ring) Owner(key string) (peer string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].peer, true
}

// Peers returns the sorted membership.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// ID returns a short content hash of the membership — equal IDs on two
// replicas mean they agree on who owns what.
func (r *Ring) ID() string { return r.id }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
