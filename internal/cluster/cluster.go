package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/telemetry"
)

// Wire constants of the replica-to-replica prep protocol.
const (
	// PrepPath is the owner-side endpoint a non-owner forwards prep work
	// to. It is part of the v2 surface but exists for replicas, not end
	// users; see docs/SERVE.md "Clustered serving".
	PrepPath = "/v2/cluster/prep"
	// LaneHeader carries the originating admission lane of a forwarded
	// prep, so a batch item forwarded to its owner still queues behind
	// the owner's interactive traffic.
	LaneHeader = "X-Flexcl-Lane"
	// PeerHeader names the forwarding replica on a prep request. Its
	// presence marks the request as replica-originated: owners never
	// re-forward such work, so a stale ring cannot create loops.
	PeerHeader = "X-Flexcl-Peer"
)

// PrepRequest is the body of a forwarded prep: the fully resolved
// kernel (corpus, inline or generated — the forwarding replica already
// validated it), the platform catalogue key and the work-group size.
// Shipping the resolved kernel rather than the original reference makes
// the owner's CacheKey bit-identical to the forwarder's by
// construction.
type PrepRequest struct {
	Kernel   *bench.Kernel `json:"kernel"`
	Platform string        `json:"platform"`
	WG       int64         `json:"wg"`
}

// ShedError reports that the owner's admission gate refused a forwarded
// prep: the fleet is over capacity and the client should back off. The
// proxying replica surfaces it as its own 429, preserving the owner's
// Retry-After hint.
type ShedError struct {
	Peer              string
	RetryAfterSeconds int
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	return fmt.Sprintf("cluster: owner %s shed the forwarded prep (retry after %ds)",
		e.Peer, e.RetryAfterSeconds)
}

// ---- context markers ----

type ctxKey int

const (
	laneKey ctxKey = iota
	peerOriginKey
)

// WithLane annotates ctx with the admission lane name ("interactive" or
// "bulk") a forwarded prep should land in on the owner.
func WithLane(ctx context.Context, lane string) context.Context {
	return context.WithValue(ctx, laneKey, lane)
}

// LaneFrom returns the lane recorded by WithLane ("" when absent).
func LaneFrom(ctx context.Context) string {
	lane, _ := ctx.Value(laneKey).(string)
	return lane
}

// WithPeerOrigin marks ctx as serving a request another replica
// forwarded here. Fills under such a context never forward again —
// the owner is the end of the line.
func WithPeerOrigin(ctx context.Context) context.Context {
	return context.WithValue(ctx, peerOriginKey, true)
}

// PeerOrigin reports whether ctx carries the WithPeerOrigin marker.
func PeerOrigin(ctx context.Context) bool {
	on, _ := ctx.Value(peerOriginKey).(bool)
	return on
}

// ---- the cluster ----

// Options configures New.
type Options struct {
	// Client performs peer HTTP exchanges (nil = a private client; the
	// per-fetch deadline comes from Timeout either way).
	Client *http.Client
	// Timeout bounds one forwarded prep exchange (0 = 15s). It must
	// cover the owner's compile+analyze of a cold kernel, not just the
	// network hop.
	Timeout time.Duration
	// Cooldown is how long a peer stays marked down after a transport
	// failure before it is probed again (0 = 15s).
	Cooldown time.Duration
}

// PeerStats is the point-in-time health and traffic of one peer as kept
// by the local replica.
type PeerStats struct {
	URL      string `json:"url"`
	Self     bool   `json:"self"`
	Healthy  bool   `json:"healthy"`
	Forwards uint64 `json:"forwards"`
	// ForwardHits counts forwards that came back with the owner's
	// record; Forwards−ForwardHits−Sheds failed and fell back to local
	// compute.
	ForwardHits uint64 `json:"forward_hits"`
	Sheds       uint64 `json:"sheds"`
	Errors      uint64 `json:"errors"`
	LastError   string `json:"last_error,omitempty"`
}

// Snapshot is the full cluster view served on GET /v2/cluster.
type Snapshot struct {
	Enabled     bool        `json:"enabled"`
	Self        string      `json:"self,omitempty"`
	RingVersion string      `json:"ring_version,omitempty"`
	Generation  int         `json:"generation"`
	Peers       []PeerStats `json:"peers,omitempty"`
	// LocalFallbacks counts fills that should have been answered by a
	// peer but computed locally because the peer was down or returned an
	// unusable record.
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// PrepsServed counts forwarded preps this replica answered as owner,
	// by lane.
	PrepsServed map[string]uint64 `json:"preps_served,omitempty"`
}

// peerState is the mutable health/traffic record of one peer.
type peerState struct {
	downUntil   time.Time
	lastErr     string
	forwards    uint64
	forwardHits uint64
	sheds       uint64
	errors      uint64
}

// Cluster is one replica's view of the fleet: the ring, the peer health
// table and the HTTP client used to fetch owner results. A zero-
// configured Cluster (no Configure call, or a single-peer membership)
// is valid and inert: Enabled reports false and Owner always answers
// "self".
type Cluster struct {
	client   *http.Client
	timeout  time.Duration
	cooldown time.Duration

	mu         sync.Mutex
	self       string
	ring       *Ring
	peers      map[string]*peerState
	generation int

	localFallbacks atomic.Uint64
	prepsServed    sync.Map // lane string → *atomic.Uint64
}

// New builds an unconfigured (single-node) cluster; call Configure to
// join a fleet.
func New(opts Options) *Cluster {
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 15 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Cluster{
		client:   client,
		timeout:  opts.Timeout,
		cooldown: opts.Cooldown,
		ring:     NewRing(nil),
		peers:    map[string]*peerState{},
	}
}

// Configure (re)builds the ring over peers and names this replica.
// self must be one of peers (it is added when missing, so "-peers lists
// everyone, -self names me" and "-peers lists the others" both work).
// Existing health state is kept for peers that survive the change.
func (c *Cluster) Configure(self string, peers []string) error {
	self = Normalize(self)
	if self == "" {
		return errors.New("cluster: self URL is required when peers are configured")
	}
	all := append([]string{self}, peers...)
	ring := NewRing(all)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.self = self
	c.ring = ring
	c.generation++
	next := make(map[string]*peerState, len(ring.peers))
	for _, p := range ring.peers {
		if st, ok := c.peers[p]; ok {
			next[p] = st
		} else {
			next[p] = &peerState{}
		}
	}
	c.peers = next
	return nil
}

// Enabled reports whether the cluster has at least two members — below
// that every key is local and forwarding never happens.
func (c *Cluster) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.self != "" && len(c.ring.peers) > 1
}

// Self returns this replica's advertised URL ("" when unconfigured).
func (c *Cluster) Self() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.self
}

// Owner maps a prep key to its owning peer. self is true when this
// replica owns the key (always, for an unconfigured cluster).
func (c *Cluster) Owner(key string) (peer string, self bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.ring.Owner(key)
	if !ok || c.self == "" {
		return c.self, true
	}
	return p, p == c.self
}

// PrepKey renders the fleet-wide cache identity of one prep — the same
// triple dse.PrepCache and the artifact store key on.
func PrepKey(k *bench.Kernel, p *device.Platform, wg int64) string {
	return k.CacheKey() + "|" + p.Name + "|" + strconv.FormatInt(wg, 10)
}

// CountPrepServed records a forwarded prep answered by this replica as
// owner, attributed to the admission lane it ran in.
func (c *Cluster) CountPrepServed(lane string) {
	v, _ := c.prepsServed.LoadOrStore(lane, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(1)
}

// Fetch asks key's owner for its prepared analysis record. It
// implements dse.PeerFetcher:
//
//   - (rec, owner, nil): the owner answered; restore rec locally.
//   - (nil, "", nil): the tier does not apply — this replica owns the
//     key, the cluster is off, the request already came from a peer, or
//     the owner is down/unusable. The caller computes locally.
//   - (nil, "", err): a fleet-level refusal to propagate to the
//     client (the owner shed the prep: *ShedError).
//
// Transport failures mark the peer down for the cooldown; while down,
// its keys go straight to local compute with no network wait.
func (c *Cluster) Fetch(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (*artifact.Record, string, error) {
	if PeerOrigin(ctx) {
		return nil, "", nil
	}
	owner, self := c.Owner(PrepKey(k, p, wg))
	if self || owner == "" {
		return nil, "", nil
	}
	if !c.peerUp(owner) {
		c.localFallbacks.Add(1)
		return nil, "", nil
	}
	lane := LaneFrom(ctx)
	if lane == "" {
		lane = "interactive"
	}

	fctx, fsp := telemetry.Start(ctx, "forward")
	fsp.Annotate("peer", owner)
	fsp.Annotate("lane", lane)
	defer fsp.End()
	rec, err := c.fetch(fctx, owner, lane, PrepRequest{Kernel: k, Platform: p.Name, WG: wg})
	switch {
	case err == nil:
		c.markSuccess(owner, true)
		fsp.Annotate("outcome", "hit")
		return rec, owner, nil
	default:
		var shed *ShedError
		if errors.As(err, &shed) {
			c.markShed(owner)
			fsp.Annotate("outcome", "shed")
			return nil, "", err
		}
		c.markFailure(owner, err)
		c.localFallbacks.Add(1)
		fsp.Annotate("outcome", "error")
		fsp.Annotate("error", err.Error())
		return nil, "", nil
	}
}

// fetch performs one prep exchange against owner.
func (c *Cluster) fetch(ctx context.Context, owner, lane string, req PrepRequest) (*artifact.Record, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	body, err := encodeJSON(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+PrepPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(LaneHeader, lane)
	hreq.Header.Set(PeerHeader, c.Self())
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		rec, err := artifact.Decode(raw)
		if err != nil {
			// Version skew between replicas reads as a miss, not an
			// outage: compute locally until the fleet converges.
			return nil, fmt.Errorf("cluster: undecodable record from %s: %w", owner, err)
		}
		return rec, nil
	case http.StatusTooManyRequests:
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if secs < 0 {
			secs = 0
		}
		return nil, &ShedError{Peer: owner, RetryAfterSeconds: secs}
	default:
		return nil, fmt.Errorf("cluster: %s answered %d: %.200s", owner, resp.StatusCode, raw)
	}
}

func encodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding prep request: %w", err)
	}
	return b, nil
}

// peerUp reports whether the peer is currently considered reachable,
// counting the forward attempt when it is.
func (c *Cluster) peerUp(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.peers[peer]
	if !ok || !time.Now().After(st.downUntil) {
		return false
	}
	st.forwards++
	return true
}

func (c *Cluster) markSuccess(peer string, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.peers[peer]; ok {
		st.downUntil = time.Time{}
		st.lastErr = ""
		if hit {
			st.forwardHits++
		}
	}
}

func (c *Cluster) markShed(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.peers[peer]; ok {
		// A shed is a healthy peer protecting itself — no cooldown.
		st.sheds++
	}
}

func (c *Cluster) markFailure(peer string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.peers[peer]; ok {
		st.errors++
		st.lastErr = err.Error()
		st.downUntil = time.Now().Add(c.cooldown)
	}
}

// Snapshot returns the cluster view for GET /v2/cluster and the
// metrics exporter.
func (c *Cluster) Snapshot() Snapshot {
	c.mu.Lock()
	snap := Snapshot{
		Enabled:        c.self != "" && len(c.ring.peers) > 1,
		Self:           c.self,
		Generation:     c.generation,
		LocalFallbacks: c.localFallbacks.Load(),
	}
	if c.self != "" {
		snap.RingVersion = c.ring.ID()
	}
	now := time.Now()
	for _, p := range c.ring.peers {
		st := c.peers[p]
		snap.Peers = append(snap.Peers, PeerStats{
			URL:         p,
			Self:        p == c.self,
			Healthy:     p == c.self || now.After(st.downUntil),
			Forwards:    st.forwards,
			ForwardHits: st.forwardHits,
			Sheds:       st.sheds,
			Errors:      st.errors,
			LastError:   st.lastErr,
		})
	}
	c.mu.Unlock()
	c.prepsServed.Range(func(k, v any) bool {
		if snap.PrepsServed == nil {
			snap.PrepsServed = map[string]uint64{}
		}
		snap.PrepsServed[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return snap
}
