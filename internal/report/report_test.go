package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "Kernel", "Err(%)")
	tb.Add("hotspot", 8.9)
	tb.Add("nn", 12.1)
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "hotspot") {
		t.Fatalf("missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
	// Columns align: "Err(%)" starts at the same offset in every row.
	hdr := lines[1]
	off := strings.Index(hdr, "Err(%)")
	for _, l := range lines[3:] {
		if len(l) <= off {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(1, 2)
	tb.Add("x", 3.5)
	csv := tb.CSV()
	want := "a,b\n1,2\nx,3.5\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tb := New("", "Kernel", "Note")
	// A kernel name containing a comma must be quoted, not split into
	// two cells (RFC 4180 §2.6); embedded quotes are doubled (§2.7).
	tb.Add("srad/reduce, compress", `says "fast"`)
	tb.Add("nn", "plain")
	tb.Add("multi\nline", "cr\rcell")
	got := tb.CSV()
	want := "Kernel,Note\n" +
		"\"srad/reduce, compress\",\"says \"\"fast\"\"\"\n" +
		"nn,plain\n" +
		"\"multi\nline\",\"cr\rcell\"\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
	// Every record must parse back to exactly two fields.
	if strings.Count(strings.Split(got, "\n")[1], `","`) != 1 {
		t.Fatalf("comma cell not isolated: %q", got)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("Figure 4", "id", "actual", "est")
	s.Add(0, 100, 95)
	s.Add(1, 200, 210)
	out := s.String()
	if !strings.Contains(out, "# Figure 4") {
		t.Fatal("missing title comment")
	}
	if !strings.Contains(out, "0\t100\t95") {
		t.Fatalf("missing data row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Add(3.14159)
	if !strings.Contains(tb.String(), "3.1") {
		t.Fatalf("float not rounded to one decimal: %s", tb.String())
	}
}
