// Package report renders the tables and figure series of the evaluation
// (§4) as aligned ASCII tables and CSV, matching the rows/columns the
// paper prints.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns an empty table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing commas, quotes or line breaks are quoted, with embedded
// quotes doubled.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvField(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// csvField quotes a cell when RFC 4180 requires it.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Series is an (x, y...) numeric series for figure regeneration.
type Series struct {
	Title   string
	Columns []string
	Points  [][]float64
}

// NewSeries returns an empty series.
func NewSeries(title string, columns ...string) *Series {
	return &Series{Title: title, Columns: columns}
}

// Add appends a data point.
func (s *Series) Add(vals ...float64) { s.Points = append(s.Points, vals) }

// Write renders the series in gnuplot-friendly columns.
func (s *Series) Write(w io.Writer) {
	fmt.Fprintf(w, "# %s\n# %s\n", s.Title, strings.Join(s.Columns, "\t"))
	for _, p := range s.Points {
		for i, v := range p {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%.4g", v)
		}
		fmt.Fprintln(w)
	}
}

// String renders to a string.
func (s *Series) String() string {
	var sb strings.Builder
	s.Write(&sb)
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
