package trace

import (
	"testing"

	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/opencl/ast"
)

func compileKernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s missing", name)
	}
	return k
}

func TestLayoutRowAligned(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* a, __global float* b, __global int* c) {
    int i = get_global_id(0);
    c[i] = (int)(a[i] + b[i]);
}`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 100, "b": 100, "c": 100}, p)
	if l.Base["a"] != 0 {
		t.Errorf("a base = %d", l.Base["a"])
	}
	for name, base := range l.Base {
		if base%int64(p.RowBytes) != 0 {
			t.Errorf("%s base %d not row aligned", name, base)
		}
	}
	if l.Base["b"] == l.Base["c"] || l.Base["a"] == l.Base["b"] {
		t.Error("buffers overlap")
	}
}

func TestCoalesceUnitStride(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 1024}, p)
	prm := k.GlobalParams()[0]
	// One WI writing 16 consecutive floats = 64 bytes = 1 burst.
	var accs []interp.Access
	for i := 0; i < 16; i++ {
		accs = append(accs, interp.Access{Param: prm, Index: int64(i), Bytes: 4, Write: true})
	}
	bursts := CoalesceWI(accs, l, 64)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1 (f = 512/32 = 16)", len(bursts))
	}
	if !bursts[0].Write {
		t.Error("burst direction wrong")
	}
}

func TestCoalesceBreaksOnDirectionChange(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* a) { a[0] = a[1]; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 64}, p)
	prm := k.GlobalParams()[0]
	accs := []interp.Access{
		{Param: prm, Index: 0, Bytes: 4, Write: false},
		{Param: prm, Index: 1, Bytes: 4, Write: true}, // direction flips
		{Param: prm, Index: 2, Bytes: 4, Write: false},
	}
	bursts := CoalesceWI(accs, l, 64)
	if len(bursts) != 3 {
		t.Fatalf("bursts = %d, want 3 (no merging across direction changes)", len(bursts))
	}
}

func TestCoalesceStridedNoMerge(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* a) { a[0] = 0.0f; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 4096}, p)
	prm := k.GlobalParams()[0]
	// Stride-32 floats: 128-byte gaps, no coalescing.
	var accs []interp.Access
	for i := 0; i < 8; i++ {
		accs = append(accs, interp.Access{Param: prm, Index: int64(i * 32), Bytes: 4, Write: false})
	}
	bursts := CoalesceWI(accs, l, 64)
	if len(bursts) != 8 {
		t.Fatalf("bursts = %d, want 8", len(bursts))
	}
}

func runTrace(t *testing.T, src, name string, n int64, wg int64) (*ir.Func, *interp.Profile, *interp.Config) {
	t.Helper()
	k := compileKernel(t, src, name)
	buf := interp.NewFloatBuffer(ast.KFloat, int(n)*2)
	cfg := &interp.Config{
		Range:   interp.NDRange{Global: [3]int64{n}, Local: [3]int64{wg}},
		Buffers: map[string]*interp.Buffer{"a": buf},
		Scalars: map[string]interp.Val{"n": interp.IntVal(n)},
	}
	// Drop unused bindings silently.
	prof, err := interp.ProfileKernel(k, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	return k, prof, cfg
}

func TestClassifySequentialStream(t *testing.T) {
	k, prof, cfg := runTrace(t, `
__kernel void k(__global float* a, int n) {
    int i = get_global_id(0);
    if (i < n) { a[n + i] = a[i] * 2.0f; }
}`, "k", 256, 64)
	p := device.Virtex7().DRAM
	l := NewLayout(k, BufferCounts(k, cfg), p)
	c := Classify(prof.Traces, l, p, 64)
	if c.WorkItems != 128 {
		t.Fatalf("work-items = %d", c.WorkItems)
	}
	if c.BurstsPerWI <= 0 {
		t.Fatal("no bursts recorded")
	}
	// Sequential per-WI single accesses cannot coalesce within a WI
	// (one read + one write each), so ~2 bursts per WI.
	if c.BurstsPerWI < 1.5 || c.BurstsPerWI > 2.5 {
		t.Errorf("bursts/WI = %v, want ≈2", c.BurstsPerWI)
	}
	var total float64
	for _, n := range c.N {
		total += n
	}
	if total != c.BurstsPerWI {
		t.Errorf("pattern counts %v don't sum to bursts %v", total, c.BurstsPerWI)
	}
}

func TestMemLatencyWeightedSum(t *testing.T) {
	var c Classified
	c.N[dram.RARHit] = 2
	c.N[dram.WAWMiss] = 1
	var lat dram.PatternLatencies
	lat[dram.RARHit] = 10
	lat[dram.WAWMiss] = 50
	if got := MemLatencyWI(&c, lat); got != 70 {
		t.Errorf("Eq.9 = %v, want 70", got)
	}
}

func TestCoalescingFactorUnitStrideLoop(t *testing.T) {
	// One work-item reads 64 consecutive floats: f = 16 per §3.4 example.
	k, prof, cfg := runTrace(t, `
__kernel void k(__global float* a, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < 64; j++) { s += a[j]; }
    a[n + i] = s;
}`, "k", 64, 4)
	p := device.Virtex7().DRAM
	l := NewLayout(k, BufferCounts(k, cfg), p)
	c := Classify(prof.Traces, l, p, 64)
	// 64 reads coalesce to 4 bursts + 1 write burst: 65 raw / 5 bursts = 13.
	if c.CoalescingFactor() < 10 {
		t.Errorf("coalescing factor = %v, want > 10", c.CoalescingFactor())
	}
}

func TestRandomAccessHasMisses(t *testing.T) {
	k, prof, cfg := runTrace(t, `
__kernel void k(__global float* a, int n) {
    int i = get_global_id(0);
    int j = (i * 137) % n;
    a[n + j] = a[j * 7 % n];
}`, "k", 256, 64)
	p := device.Virtex7().DRAM
	l := NewLayout(k, BufferCounts(k, cfg), p)
	c := Classify(prof.Traces, l, p, 64)
	var misses float64
	for pat := dram.RARMiss; pat <= dram.WAWMiss; pat++ {
		misses += c.N[pat]
	}
	if misses == 0 {
		t.Error("random access pattern produced no row misses")
	}
}
