// Package trace converts the dynamic global-memory access traces produced
// by the profiler (package interp) into the quantities FlexCL's memory
// model consumes (§3.4): buffer layout in the DRAM address space, burst
// coalescing of consecutive same-direction accesses (factor f =
// MemoryAccessUnitSize / DataTypeBitWidth), mapping to banks under the
// byte-interleaved policy, and classification of every coalesced access
// into the eight patterns of Table 1.
package trace

import (
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Layout assigns every global buffer a base byte address.
type Layout struct {
	Base map[string]int64
	End  int64
}

// NewLayout lays the kernel's global buffers out sequentially, each
// aligned to a row boundary (the allocator behaviour on the board).
// counts gives each buffer's length in scalar elements.
func NewLayout(f *ir.Func, counts map[string]int64, p device.DRAMParams) Layout {
	align := int64(p.RowBytes)
	if align <= 0 {
		align = 1024
	}
	l := Layout{Base: make(map[string]int64)}
	var addr int64
	for _, prm := range f.GlobalParams() {
		l.Base[prm.PName] = addr
		n := counts[prm.PName]
		if n <= 0 {
			n = 1024
		}
		bytes := n * int64(prm.Elem().Base.Size())
		addr += (bytes + align - 1) / align * align
	}
	l.End = addr
	return l
}

// Burst is one coalesced memory transaction.
type Burst struct {
	Addr  int64
	Write bool
}

// CoalesceWI merges consecutive same-direction accesses to adjacent
// addresses within one work-item's trace into bursts of unitBytes, and
// returns the burst list. This implements the coalescing rule of §3.4:
// the access count divides by f = unit size / data width for unit-stride
// streams.
func CoalesceWI(accs []interp.Access, l Layout, unitBytes int) []Burst {
	if unitBytes <= 0 {
		unitBytes = 64
	}
	var bursts []Burst
	i := 0
	for i < len(accs) {
		a := accs[i]
		base, ok := l.Base[a.Param.PName]
		if !ok {
			i++
			continue
		}
		addr := base + a.Index*int64(a.Bytes)
		end := addr + int64(a.Bytes)
		j := i + 1
		// Extend the run while accesses are the same direction and
		// byte-contiguous.
		for j < len(accs) {
			b := accs[j]
			if b.Write != a.Write || b.Param != a.Param {
				break
			}
			nb := l.Base[b.Param.PName] + b.Index*int64(b.Bytes)
			if nb != end {
				break
			}
			end = nb + int64(b.Bytes)
			j++
		}
		// Emit ceil(run/unit) bursts, aligned down to the unit.
		first := addr / int64(unitBytes) * int64(unitBytes)
		for p := first; p < end; p += int64(unitBytes) {
			bursts = append(bursts, Burst{Addr: p, Write: a.Write})
		}
		i = j
	}
	return bursts
}

// Classified summarizes a kernel's coalesced global-memory behaviour per
// work-item: the N counts of Table 1 plus aggregate statistics.
type Classified struct {
	// N is the average per-work-item count of each pattern (third column
	// of Table 1, after coalescing).
	N [dram.NumPatterns]float64
	// BurstsPerWI is the total coalesced access count per work-item.
	BurstsPerWI float64
	// RawPerWI is the pre-coalescing access count per work-item.
	RawPerWI float64
	// WorkItems profiled.
	WorkItems int
	// Reads and Writes per work-item after coalescing.
	Reads, Writes float64
}

// CoalescingFactor returns raw/coalesced accesses (≥ 1 for unit-stride).
func (c *Classified) CoalescingFactor() float64 {
	if c.BurstsPerWI == 0 {
		return 1
	}
	return c.RawPerWI / c.BurstsPerWI
}

// Classify coalesces every work-item trace, maps bursts to banks under
// the interleaved policy and classifies each against the per-bank row
// buffer and last-operation state, accumulating per-work-item averages.
func Classify(traces [][]interp.Access, l Layout, p device.DRAMParams, unitBytes int) *Classified {
	c := &Classified{WorkItems: len(traces)}
	if len(traces) == 0 {
		return c
	}
	sim := dram.NewSim(p) // reuse bank/row mapping; timing ignored
	type bankState struct {
		hasOpen   bool
		openRow   int64
		prevWrite bool
	}
	banks := make([]bankState, sim.P.Banks)

	for _, tr := range traces {
		c.RawPerWI += float64(len(tr))
		bursts := CoalesceWI(tr, l, unitBytes)
		c.BurstsPerWI += float64(len(bursts))
		for _, b := range bursts {
			bi := sim.BankOf(b.Addr)
			row := sim.RowOf(b.Addr)
			st := &banks[bi]
			hit := st.hasOpen && st.openRow == row
			pat := patternOf(b.Write, st.prevWrite, hit)
			c.N[pat]++
			if b.Write {
				c.Writes++
			} else {
				c.Reads++
			}
			st.hasOpen = true
			st.openRow = row
			st.prevWrite = b.Write
		}
	}
	n := float64(len(traces))
	for i := range c.N {
		c.N[i] /= n
	}
	c.BurstsPerWI /= n
	c.RawPerWI /= n
	c.Reads /= n
	c.Writes /= n
	return c
}

// InterleaveWG builds one work-group's memory stream in pipeline issue
// order: with work-item pipelining, all work-items execute the same
// instruction in adjacent cycles, so the k-th access of every work-item
// issues before anyone's (k+1)-th. This column-major order is what lets
// SDAccel coalesce consecutive work-items' unit-stride accesses into
// 512-bit bursts (the f = unit/width rule of §3.4).
func InterleaveWG(traces [][]interp.Access) []interp.Access {
	maxLen := 0
	for _, tr := range traces {
		if len(tr) > maxLen {
			maxLen = len(tr)
		}
	}
	out := make([]interp.Access, 0, maxLen*len(traces))
	for k := 0; k < maxLen; k++ {
		for _, tr := range traces {
			if k < len(tr) {
				out = append(out, tr[k])
			}
		}
	}
	return out
}

// WGBursts groups the profiled work-item traces into work-groups of
// wgSize, interleaves each group column-major and coalesces it, returning
// the burst stream of every work-group.
func WGBursts(traces [][]interp.Access, wgSize int64, l Layout, unitBytes int) [][]Burst {
	if wgSize <= 0 {
		wgSize = 1
	}
	var out [][]Burst
	for lo := int64(0); lo < int64(len(traces)); lo += wgSize {
		hi := lo + wgSize
		if hi > int64(len(traces)) {
			hi = int64(len(traces))
		}
		stream := InterleaveWG(traces[lo:hi])
		out = append(out, CoalesceWI(stream, l, unitBytes))
	}
	return out
}

// ClassifyGrouped is Classify with work-group-level (column-major)
// coalescing: the realistic pipeline issue order. N counts remain
// per-work-item averages.
//
// The first quarter of the profiled groups serve as warm-up: their bursts
// update the bank state but are not counted, so the short profiling
// window of §3.2 does not over-represent cold row-buffer misses relative
// to the launch's steady state.
func ClassifyGrouped(traces [][]interp.Access, wgSize int64, l Layout, p device.DRAMParams, unitBytes int) *Classified {
	c := &Classified{WorkItems: len(traces)}
	if len(traces) == 0 {
		return c
	}
	sim := dram.NewSim(p)
	type bankState struct {
		hasOpen   bool
		openRow   int64
		prevWrite bool
	}
	banks := make([]bankState, sim.P.Banks)

	groups := WGBursts(traces, wgSize, l, unitBytes)
	warmup := 0
	if len(groups) > 1 {
		warmup = len(groups) / 4
		if warmup < 1 {
			warmup = 1
		}
	}
	counted := 0 // work-items in counted groups
	for gi, bursts := range groups {
		count := gi >= warmup
		if count {
			lo := int64(gi) * wgSize
			hi := lo + wgSize
			if hi > int64(len(traces)) {
				hi = int64(len(traces))
			}
			counted += int(hi - lo)
			for wi := lo; wi < hi; wi++ {
				c.RawPerWI += float64(len(traces[wi]))
			}
			c.BurstsPerWI += float64(len(bursts))
		}
		for _, b := range bursts {
			bi := sim.BankOf(b.Addr)
			row := sim.RowOf(b.Addr)
			st := &banks[bi]
			hit := st.hasOpen && st.openRow == row
			pat := patternOf(b.Write, st.prevWrite, hit)
			if count {
				c.N[pat]++
				if b.Write {
					c.Writes++
				} else {
					c.Reads++
				}
			}
			st.hasOpen = true
			st.openRow = row
			st.prevWrite = b.Write
		}
	}
	if counted == 0 {
		return c
	}
	n := float64(counted)
	for i := range c.N {
		c.N[i] /= n
	}
	c.BurstsPerWI /= n
	c.RawPerWI /= n
	c.Reads /= n
	c.Writes /= n
	return c
}

// patternOf mirrors the dram package's classification.
func patternOf(write, prevWrite, hit bool) dram.Pattern {
	var p dram.Pattern
	switch {
	case !write && !prevWrite:
		p = dram.RARHit
	case !write && prevWrite:
		p = dram.RAWHit
	case write && !prevWrite:
		p = dram.WARHit
	default:
		p = dram.WAWHit
	}
	if !hit {
		p += 4
	}
	return p
}

// MemLatencyWI evaluates Eq. 9: the per-work-item global-memory latency
// as the pattern-count-weighted sum of profiled pattern latencies.
func MemLatencyWI(c *Classified, lat dram.PatternLatencies) float64 {
	var sum float64
	for p := dram.Pattern(0); p < dram.NumPatterns; p++ {
		sum += c.N[p] * lat.Get(p)
	}
	return sum
}

// BufferCounts extracts buffer element counts from an interp
// configuration, for layout construction.
func BufferCounts(f *ir.Func, cfg *interp.Config) map[string]int64 {
	counts := make(map[string]int64)
	for _, prm := range f.GlobalParams() {
		if b, ok := cfg.Buffers[prm.PName]; ok {
			counts[prm.PName] = int64(b.Len())
		}
	}
	return counts
}
