package trace

import (
	"testing"

	"repro/internal/device"
	"repro/internal/interp"
)

func TestInterleaveWGColumnMajor(t *testing.T) {
	k := compileKernel(t, `__kernel void k(__global float* a) { a[0] = 1.0f; }`, "k")
	prm := k.GlobalParams()[0]
	mk := func(idx ...int64) []interp.Access {
		var out []interp.Access
		for _, i := range idx {
			out = append(out, interp.Access{Param: prm, Index: i, Bytes: 4})
		}
		return out
	}
	traces := [][]interp.Access{mk(0, 10), mk(1, 11), mk(2)}
	got := InterleaveWG(traces)
	wantIdx := []int64{0, 1, 2, 10, 11}
	if len(got) != len(wantIdx) {
		t.Fatalf("len = %d, want %d", len(got), len(wantIdx))
	}
	for i, w := range wantIdx {
		if got[i].Index != w {
			t.Errorf("pos %d: index %d, want %d", i, got[i].Index, w)
		}
	}
}

func TestGroupedCoalescingAcrossWorkItems(t *testing.T) {
	// 16 work-items each reading one consecutive float: within-WI
	// coalescing sees 16 separate bursts, column-major group coalescing
	// sees one.
	k := compileKernel(t, `__kernel void k(__global float* a) { a[0] = 1.0f; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 1024}, p)
	prm := k.GlobalParams()[0]
	traces := make([][]interp.Access, 16)
	for wi := range traces {
		traces[wi] = []interp.Access{{Param: prm, Index: int64(wi), Bytes: 4}}
	}
	perWI := Classify(traces, l, p, 64)
	grouped := ClassifyGrouped(traces, 16, l, p, 64)
	if perWI.BurstsPerWI != 1 {
		t.Errorf("per-WI coalescing: %v bursts/WI, want 1", perWI.BurstsPerWI)
	}
	if grouped.BurstsPerWI != 1.0/16 {
		t.Errorf("grouped coalescing: %v bursts/WI, want 1/16 (f = 16)", grouped.BurstsPerWI)
	}
}

func TestWGBurstsGrouping(t *testing.T) {
	k := compileKernel(t, `__kernel void k(__global float* a) { a[0] = 1.0f; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 4096}, p)
	prm := k.GlobalParams()[0]
	traces := make([][]interp.Access, 32)
	for wi := range traces {
		traces[wi] = []interp.Access{{Param: prm, Index: int64(wi), Bytes: 4}}
	}
	groups := WGBursts(traces, 16, l, 64)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for gi, bursts := range groups {
		if len(bursts) != 1 {
			t.Errorf("group %d: %d bursts, want 1", gi, len(bursts))
		}
	}
}

func TestGroupedPatternCountsSumToBursts(t *testing.T) {
	k := compileKernel(t, `__kernel void k(__global float* a) { a[0] = 1.0f; }`, "k")
	p := device.Virtex7().DRAM
	l := NewLayout(k, map[string]int64{"a": 65536}, p)
	prm := k.GlobalParams()[0]
	traces := make([][]interp.Access, 64)
	for wi := range traces {
		traces[wi] = []interp.Access{
			{Param: prm, Index: int64(wi * 137 % 4096), Bytes: 4},
			{Param: prm, Index: int64(wi), Bytes: 4, Write: true},
		}
	}
	c := ClassifyGrouped(traces, 64, l, p, 64)
	var total float64
	for _, n := range c.N {
		total += n
	}
	if diff := total - c.BurstsPerWI; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("pattern sum %v != bursts %v", total, c.BurstsPerWI)
	}
	if c.Reads+c.Writes != c.BurstsPerWI {
		t.Errorf("reads+writes (%v) != bursts (%v)", c.Reads+c.Writes, c.BurstsPerWI)
	}
}
