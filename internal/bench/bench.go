// Package bench provides the evaluation workloads of the paper (§4.1):
// all 45 Rodinia kernels of Table 2 and 15 PolyBench kernels, rewritten
// in the supported OpenCL subset with deterministic input generators.
// Each kernel preserves the loop structure, local-memory staging,
// barriers and global-access patterns of its original — the features the
// FlexCL model consumes.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/opencl/ast"
)

// Fill selects a deterministic buffer initializer.
type Fill int

// Buffer fill patterns.
const (
	FillZero Fill = iota
	FillRamp      // 0, 1, 2, ...
	FillMod       // (i % 17) * 0.5
	FillOne
	FillPerm    // pseudo-random permutation of [0, Len)
	FillSmall   // small positive ints (i%7 + 1)
	FillNoise   // deterministic pseudo-noise in [0, 1)
	FillRowPtr  // CSR-style row offsets: i * Aux
	FillConst   // constant Aux
	FillDiagDom // diagonally dominant matrix of row width Aux
)

// Buf describes one global buffer argument.
type Buf struct {
	Name  string
	Float bool
	Kind  ast.BaseKind // element kind; KFloat/KInt defaults apply when 0
	Len   int64
	Fill  Fill
	// Aux parameterizes some fills: row stride for FillRowPtr and
	// FillDiagDom, the constant for FillConst.
	Aux int64
	// Mod, when positive, reduces every generated value modulo Mod
	// (useful for index buffers that must stay in range).
	Mod int64
}

// Kernel is one benchmark kernel with its workload.
type Kernel struct {
	Suite  string // "rodinia" or "polybench"
	Bench  string // e.g. "backprop"
	Name   string // e.g. "layer" (Table 2 kernel name)
	Fn     string // kernel function name in Source
	Source string

	// Global is the NDRange global size.
	Global [3]int64
	// TwoD lays work-groups out in two dimensions.
	TwoD bool
	// MinWG/MaxWG bound the work-group-size sweep (local arrays sized by
	// the WG macro bound the upper end).
	MinWG, MaxWG int64

	Bufs    []Buf
	Scalars map[string]int64
	Defines map[string]string
}

// ID returns "bench/kernel".
func (k *Kernel) ID() string { return k.Bench + "/" + k.Name }

// SourceHash returns a stable hex digest of everything that determines
// the kernel's compiled form — source text, entry point and macro
// definitions — so caches keyed on it are invalidated the moment the
// kernel text changes.
func (k *Kernel) SourceHash() string {
	h := sha256.New()
	h.Write([]byte(k.Fn))
	h.Write([]byte{0})
	h.Write([]byte(k.Source))
	keys := make([]string, 0, len(k.Defines))
	for key := range k.Defines {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h.Write([]byte{0})
		h.Write([]byte(key))
		h.Write([]byte{'='})
		h.Write([]byte(k.Defines[key]))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// CacheKey returns a stable hex digest of everything that determines
// the kernel's *analysis*: the compiled form (SourceHash) plus the
// workload — NDRange geometry, buffer specs and scalar arguments.
// Analyses cached under this key may be shared by any two Kernel values
// with equal keys, even distinct allocations (e.g. inline kernels
// submitted by different API requests carrying identical source and
// launch), which is what lets a serving layer coalesce their
// compile+analyze work.
func (k *Kernel) CacheKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|g=%v|2d=%v", k.SourceHash(), k.Global, k.TwoD)
	for _, b := range k.Bufs {
		fmt.Fprintf(h, "|b=%s,%v,%d,%d,%d,%d,%d", b.Name, b.Float, b.Kind, b.Len, b.Fill, b.Aux, b.Mod)
	}
	keys := make([]string, 0, len(k.Scalars))
	for key := range k.Scalars {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(h, "|s=%s=%d", key, k.Scalars[key])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// NWI returns the total work-items of the launch.
func (k *Kernel) NWI() int64 {
	n := int64(1)
	for _, g := range k.Global {
		if g > 0 {
			n *= g
		}
	}
	return n
}

// WGSizes enumerates the power-of-two work-group sizes of the sweep.
func (k *Kernel) WGSizes() []int64 {
	lo, hi := k.MinWG, k.MaxWG
	if lo <= 0 {
		lo = 16
	}
	if hi <= 0 {
		hi = 256
	}
	var out []int64
	for wg := lo; wg <= hi; wg *= 2 {
		out = append(out, wg)
	}
	return out
}

// Compile builds the kernel's IR at one work-group size: the WG macro is
// predefined so local arrays scale with the sweep.
func (k *Kernel) Compile(wg int64) (*ir.Func, error) {
	defines := map[string]string{"WG": fmt.Sprint(wg)}
	for key, v := range k.Defines {
		defines[key] = v
	}
	m, err := irgen.Compile(k.ID()+".cl", []byte(k.Source), defines)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", k.ID(), err)
	}
	f := m.Kernel(k.Fn)
	if f == nil {
		return nil, fmt.Errorf("bench %s: kernel %s not found", k.ID(), k.Fn)
	}
	return f, nil
}

// Local returns the local size for a work-group size, splitting two
// dimensions when the kernel is 2-D.
func (k *Kernel) Local(wg int64) [3]int64 {
	if !k.TwoD {
		return [3]int64{wg, 1, 1}
	}
	// Largest power-of-two y ≤ √wg.
	y := int64(1)
	for y*y*4 <= wg {
		y *= 2
	}
	return [3]int64{wg / y, y, 1}
}

// Config builds a fresh launch configuration (buffers filled
// deterministically) for one work-group size.
func (k *Kernel) Config(wg int64) *interp.Config {
	cfg := &interp.Config{
		Range:   interp.NDRange{Global: k.Global, Local: k.Local(wg)},
		Buffers: make(map[string]*interp.Buffer),
		Scalars: make(map[string]interp.Val),
	}
	for _, b := range k.Bufs {
		cfg.Buffers[b.Name] = makeBuf(b)
	}
	for name, v := range k.Scalars {
		cfg.Scalars[name] = interp.IntVal(v)
	}
	return cfg
}

func makeBuf(b Buf) *interp.Buffer {
	kind := b.Kind
	if kind == ast.KVoid {
		if b.Float {
			kind = ast.KFloat
		} else {
			kind = ast.KInt
		}
	}
	n := int(b.Len)
	var buf *interp.Buffer
	if b.Float {
		buf = interp.NewFloatBuffer(kind, n)
	} else {
		buf = interp.NewIntBuffer(kind, n)
	}
	for i := 0; i < n; i++ {
		var fv float64
		var iv int64
		switch b.Fill {
		case FillRamp:
			fv, iv = float64(i), int64(i)
		case FillMod:
			fv, iv = float64(i%17)*0.5, int64(i%17)
		case FillOne:
			fv, iv = 1, 1
		case FillPerm:
			p := (int64(i)*2654435761 + 12345) % b.Len
			fv, iv = float64(p), p
		case FillSmall:
			fv, iv = float64(i%7+1), int64(i%7+1)
		case FillNoise:
			h := uint64(i) * 0x9e3779b97f4a7c15
			h ^= h >> 31
			fv = float64(h%1000) / 1000.0
			iv = int64(h % 1000)
		case FillRowPtr:
			aux := b.Aux
			if aux <= 0 {
				aux = 4
			}
			fv, iv = float64(int64(i)*aux), int64(i)*aux
		case FillConst:
			fv, iv = float64(b.Aux), b.Aux
		case FillDiagDom:
			aux := b.Aux
			if aux <= 0 {
				aux = 16
			}
			row, col := int64(i)/aux, int64(i)%aux
			if row == col {
				fv, iv = float64(aux)+8, aux+8
			} else {
				fv, iv = float64((int64(i)*7)%5)*0.25+0.25, (int64(i)*7)%5+1
			}
		}
		if b.Mod > 0 {
			iv = ((iv % b.Mod) + b.Mod) % b.Mod
			fv = float64(iv)
		}
		if b.Float {
			buf.F[i] = fv
		} else {
			buf.I[i] = iv
		}
	}
	return buf
}

var registry []*Kernel

func register(k *Kernel) {
	if k.MinWG == 0 {
		k.MinWG = 16
	}
	if k.MaxWG == 0 {
		k.MaxWG = 256
	}
	registry = append(registry, k)
}

// All returns every registered kernel, Rodinia first, in stable order.
func All() []*Kernel {
	out := make([]*Kernel, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite == "rodinia"
		}
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the kernels of one suite.
func Suite(name string) []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if k.Suite == name {
			out = append(out, k)
		}
	}
	return out
}

// FindID returns the kernel with the given "bench/kernel" ID (the form
// Kernel.ID renders and the serving API accepts), or nil.
func FindID(id string) *Kernel {
	b, n, ok := strings.Cut(id, "/")
	if !ok {
		return nil
	}
	return Find(b, n)
}

// Find returns the kernel with the given bench and kernel name, or nil.
func Find(bench, name string) *Kernel {
	for _, k := range registry {
		if k.Bench == bench && k.Name == name {
			return k
		}
	}
	return nil
}
