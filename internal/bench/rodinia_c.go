package bench

// Rodinia kernels, part 3: nn, nw, particlefilter, pathfinder, srad,
// streamcluster.

func init() {
	register(&Kernel{
		Suite: "rodinia", Bench: "nn", Name: "nn", Fn: "NearestNeighbor",
		Source: `
__kernel void NearestNeighbor(__global const float* d_locations_lat,
                              __global const float* d_locations_lng,
                              __global float* d_distances,
                              int numRecords, int lat_q, int lng_q) {
    int globalId = get_global_id(0);
    if (globalId < numRecords) {
        float lat = d_locations_lat[globalId] - (float)lat_q;
        float lng = d_locations_lng[globalId] - (float)lng_q;
        d_distances[globalId] = sqrt(lat * lat + lng * lng);
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "d_locations_lat", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_locations_lng", Float: true, Len: 4096, Fill: FillMod},
			{Name: "d_distances", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"numRecords": 4096, "lat_q": 30, "lng_q": 50},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "nw", Name: "nw1", Fn: "nw_kernel1",
		Source: `
// Needleman–Wunsch forward wave over work-group tiles: the running score
// propagates left-to-right through local memory between barriers.
__kernel void nw_kernel1(__global const int* reference,
                         __global int* input_itemsets,
                         int dim, int penalty) {
    __local int t[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    if (g < dim) { t[l] = input_itemsets[g]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int step = 0; step < 8; step++) {
        int v = t[l];
        if (l > 0 && g < dim) {
            int diag = t[l - 1] + reference[g];
            int left = t[l - 1] - penalty;
            int up = v - penalty;
            v = max(max(diag, left), up);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        t[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (g < dim) { input_itemsets[g] = t[l]; }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "reference", Len: 2048, Fill: FillSmall},
			{Name: "input_itemsets", Len: 2048, Fill: FillPerm, Mod: 64},
		},
		Scalars: map[string]int64{"dim": 2048, "penalty": 1},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "nw", Name: "nw2", Fn: "nw_kernel2",
		Source: `
// Backward wave (right-to-left) of the NW dynamic program.
__kernel void nw_kernel2(__global const int* reference,
                         __global int* input_itemsets,
                         int dim, int penalty) {
    __local int t[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    if (g < dim) { t[l] = input_itemsets[g]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int step = 0; step < 8; step++) {
        int v = t[l];
        if (l < lw - 1 && g < dim) {
            int diag = t[l + 1] + reference[g];
            int right = t[l + 1] - penalty;
            int up = v - penalty;
            v = max(max(diag, right), up);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        t[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (g < dim) { input_itemsets[g] = t[l]; }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "reference", Len: 2048, Fill: FillSmall},
			{Name: "input_itemsets", Len: 2048, Fill: FillPerm, Mod: 64},
		},
		Scalars: map[string]int64{"dim": 2048, "penalty": 1},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "particlefilter", Name: "find_index", Fn: "find_index_kernel",
		Source: `
__kernel void find_index_kernel(__global const float* CDF,
                                __global const float* u,
                                __global int* indices,
                                int n) {
    int i = get_global_id(0);
    if (i < n) {
        int index = n - 1;
        for (int x = 0; x < n; x++) {
            if (CDF[x] >= u[i]) {
                index = x;
                break;
            }
        }
        indices[i] = index;
    }
}`,
		Global: [3]int64{512},
		Bufs: []Buf{
			{Name: "CDF", Float: true, Len: 512, Fill: FillRamp},
			{Name: "u", Float: true, Len: 512, Fill: FillPerm, Mod: 512},
			{Name: "indices", Len: 512},
		},
		Scalars: map[string]int64{"n": 512},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "particlefilter", Name: "normalize", Fn: "normalize_weights",
		Source: `
__kernel void normalize_weights(__global float* weights,
                                __global const float* sum_weights,
                                int n) {
    int i = get_global_id(0);
    if (i < n) { weights[i] = weights[i] / sum_weights[0]; }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "weights", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "sum_weights", Float: true, Len: 1, Fill: FillOne},
		},
		Scalars: map[string]int64{"n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "particlefilter", Name: "sum", Fn: "sum_kernel",
		Source: `
// Tree reduction of partial weights within each work-group.
__kernel void sum_kernel(__global float* partial_sums, int n) {
    __local float t[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    t[l] = (g < n) ? partial_sums[g] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = lw / 2; s > 0; s = s / 2) {
        if (l < s) { t[l] += t[l + s]; }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l == 0) { partial_sums[get_group_id(0)] = t[0]; }
}`,
		Global:  [3]int64{4096},
		Bufs:    []Buf{{Name: "partial_sums", Float: true, Len: 4096, Fill: FillNoise}},
		Scalars: map[string]int64{"n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "particlefilter", Name: "likelihood", Fn: "likelihood_kernel",
		Source: `
__kernel void likelihood_kernel(__global const float* arrayX,
                                __global const float* arrayY,
                                __global float* likelihood,
                                __global const int* objxy,
                                int n, int countOnes) {
    int i = get_global_id(0);
    if (i < n) {
        float acc = 0.0f;
        for (int j = 0; j < countOnes; j++) {
            float x = arrayX[i] + (float)objxy[j * 2];
            float y = arrayY[i] + (float)objxy[j * 2 + 1];
            float d = x * x + y * y;
            acc += (d - 100.0f) * 0.005f - (d - 228.0f) * 0.005f;
        }
        likelihood[i] = acc / (float)countOnes;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "arrayX", Float: true, Len: 2048, Fill: FillNoise},
			{Name: "arrayY", Float: true, Len: 2048, Fill: FillMod},
			{Name: "likelihood", Float: true, Len: 2048},
			{Name: "objxy", Len: 2 * 24, Fill: FillSmall},
		},
		Scalars: map[string]int64{"n": 2048, "countOnes": 24},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "pathfinder", Name: "dynproc", Fn: "dynproc_kernel",
		Source: `
// Dynamic-programming wavefront: each iteration consumes the previous
// row held in local memory.
__kernel void dynproc_kernel(__global const int* wall,
                             __global const int* src,
                             __global int* dst,
                             int cols, int iters) {
    __local int prev[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    if (g < cols) { prev[l] = src[g]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int it = 0; it < iters; it++) {
        int ll = (l > 0) ? l - 1 : l;
        int lr = (l < lw - 1) ? l + 1 : l;
        int center = prev[l];
        int left = prev[ll];
        int right = prev[lr];
        int best = min(min(left, center), right);
        barrier(CLK_LOCAL_MEM_FENCE);
        if (g < cols) { prev[l] = best + wall[it * cols + g]; }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (g < cols) { dst[g] = prev[l]; }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "wall", Len: 8 * 2048, Fill: FillSmall},
			{Name: "src", Len: 2048, Fill: FillSmall},
			{Name: "dst", Len: 2048},
		},
		Scalars: map[string]int64{"cols": 2048, "iters": 8},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "extract", Fn: "extract_kernel",
		Source: `
__kernel void extract_kernel(__global float* d_I, int ne) {
    int i = get_global_id(0);
    if (i < ne) { d_I[i] = exp(d_I[i] / 255.0f); }
}`,
		Global:  [3]int64{4096},
		Bufs:    []Buf{{Name: "d_I", Float: true, Len: 4096, Fill: FillNoise}},
		Scalars: map[string]int64{"ne": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "prepare", Fn: "prepare_kernel",
		Source: `
__kernel void prepare_kernel(__global const float* d_I,
                             __global float* d_sums,
                             __global float* d_sums2,
                             int ne) {
    int i = get_global_id(0);
    if (i < ne) {
        float v = d_I[i];
        d_sums[i] = v;
        d_sums2[i] = v * v;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "d_I", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_sums", Float: true, Len: 4096},
			{Name: "d_sums2", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"ne": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "reduce", Fn: "reduce_kernel",
		Source: `
__kernel void reduce_kernel(__global float* d_sums,
                            __global float* d_sums2,
                            int ne) {
    __local float ps[WG];
    __local float ps2[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    ps[l] = (g < ne) ? d_sums[g] : 0.0f;
    ps2[l] = (g < ne) ? d_sums2[g] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = lw / 2; s > 0; s = s / 2) {
        if (l < s) {
            ps[l] += ps[l + s];
            ps2[l] += ps2[l + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l == 0) {
        d_sums[get_group_id(0)] = ps[0];
        d_sums2[get_group_id(0)] = ps2[0];
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "d_sums", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_sums2", Float: true, Len: 4096, Fill: FillMod},
		},
		Scalars: map[string]int64{"ne": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "srad", Fn: "srad_kernel",
		Source: `
// Diffusion-coefficient stencil (first SRAD pass).
__kernel void srad_kernel(__global const float* d_I,
                          __global float* d_c,
                          __global float* d_dN,
                          __global float* d_dS,
                          __global float* d_dW,
                          __global float* d_dE,
                          int rows, int cols, int q0) {
    int i = get_global_id(0);
    int r = i / cols;
    int c = i % cols;
    if (r < rows && c < cols) {
        int iN = (r > 0) ? i - cols : i;
        int iS = (r < rows - 1) ? i + cols : i;
        int iW = (c > 0) ? i - 1 : i;
        int iE = (c < cols - 1) ? i + 1 : i;
        float Jc = d_I[i];
        float dN = d_I[iN] - Jc;
        float dS = d_I[iS] - Jc;
        float dW = d_I[iW] - Jc;
        float dE = d_I[iE] - Jc;
        float G2 = (dN * dN + dS * dS + dW * dW + dE * dE) / (Jc * Jc + 0.001f);
        float L = (dN + dS + dW + dE) / (Jc + 0.001f);
        float num = (0.5f * G2) - ((1.0f / 16.0f) * (L * L));
        float den = 1.0f + 0.25f * L;
        float qsqr = num / (den * den + 0.001f);
        den = (qsqr - (float)q0) / ((float)q0 * (1.0f + (float)q0) + 0.001f);
        float cv = 1.0f / (1.0f + den);
        if (cv < 0.0f) { cv = 0.0f; }
        if (cv > 1.0f) { cv = 1.0f; }
        d_c[i] = cv;
        d_dN[i] = dN;
        d_dS[i] = dS;
        d_dW[i] = dW;
        d_dE[i] = dE;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "d_I", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_c", Float: true, Len: 4096},
			{Name: "d_dN", Float: true, Len: 4096},
			{Name: "d_dS", Float: true, Len: 4096},
			{Name: "d_dW", Float: true, Len: 4096},
			{Name: "d_dE", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"rows": 64, "cols": 64, "q0": 1},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "srad2", Fn: "srad2_kernel",
		Source: `
// Second SRAD pass: apply the diffusion update.
__kernel void srad2_kernel(__global float* d_I,
                           __global const float* d_c,
                           __global const float* d_dN,
                           __global const float* d_dS,
                           __global const float* d_dW,
                           __global const float* d_dE,
                           int rows, int cols) {
    int i = get_global_id(0);
    int r = i / cols;
    int c = i % cols;
    if (r < rows && c < cols) {
        int iS = (r < rows - 1) ? i + cols : i;
        int iE = (c < cols - 1) ? i + 1 : i;
        float cN = d_c[i];
        float cS = d_c[iS];
        float cW = cN;
        float cE = d_c[iE];
        float D = cN * d_dN[i] + cS * d_dS[i] + cW * d_dW[i] + cE * d_dE[i];
        d_I[i] = d_I[i] + 0.25f * 0.5f * D;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "d_I", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_c", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "d_dN", Float: true, Len: 4096, Fill: FillMod},
			{Name: "d_dS", Float: true, Len: 4096, Fill: FillMod},
			{Name: "d_dW", Float: true, Len: 4096, Fill: FillMod},
			{Name: "d_dE", Float: true, Len: 4096, Fill: FillMod},
		},
		Scalars: map[string]int64{"rows": 64, "cols": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "srad", Name: "compress", Fn: "compress_kernel",
		Source: `
__kernel void compress_kernel(__global float* d_I, int ne) {
    int i = get_global_id(0);
    if (i < ne) { d_I[i] = log(d_I[i] + 1.0f) * 255.0f; }
}`,
		Global:  [3]int64{4096},
		Bufs:    []Buf{{Name: "d_I", Float: true, Len: 4096, Fill: FillNoise}},
		Scalars: map[string]int64{"ne": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "streamcluster", Name: "memset", Fn: "memset_kernel",
		Source: `
__kernel void memset_kernel(__global int* mem, int val, int n) {
    int i = get_global_id(0);
    if (i < n) { mem[i] = val; }
}`,
		Global:  [3]int64{4096},
		Bufs:    []Buf{{Name: "mem", Len: 4096}},
		Scalars: map[string]int64{"val": 7, "n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "streamcluster", Name: "pgain", Fn: "pgain_kernel",
		Source: `
// Cost of reassigning each point to a candidate center.
__kernel void pgain_kernel(__global const float* p_x,
                           __global const float* p_y,
                           __global const float* p_weight,
                           __global const int* p_assign,
                           __global const float* p_cost,
                           __global float* lower,
                           int num, int K) {
    int i = get_global_id(0);
    if (i < num) {
        float dx = p_x[i] - p_x[K];
        float dy = p_y[i] - p_y[K];
        float x_cost = (dx * dx + dy * dy) * p_weight[i];
        float current_cost = p_cost[i];
        if (x_cost < current_cost) {
            lower[i] = current_cost - x_cost;
        } else {
            lower[p_assign[i]] += current_cost - x_cost;
        }
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "p_x", Float: true, Len: 2048, Fill: FillNoise},
			{Name: "p_y", Float: true, Len: 2048, Fill: FillMod},
			{Name: "p_weight", Float: true, Len: 2048, Fill: FillOne},
			{Name: "p_assign", Len: 2048, Fill: FillPerm, Mod: 2048},
			{Name: "p_cost", Float: true, Len: 2048, Fill: FillNoise},
			{Name: "lower", Float: true, Len: 2048},
		},
		Scalars: map[string]int64{"num": 2048, "K": 5},
	})
}
