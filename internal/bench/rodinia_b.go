package bench

// Rodinia kernels, part 2: hotspot, hotspot3D, hybridsort, kmeans,
// lavaMD, leukocyte, lud.

func init() {
	register(&Kernel{
		Suite: "rodinia", Bench: "hotspot", Name: "hotspot", Fn: "hotspot",
		TwoD: true,
		Source: `
// Thermal stencil with the tile staged in local memory (as the Rodinia
// original does) and a barrier separating load and compute phases.
__kernel void hotspot(__global const float* temp,
                      __global const float* power,
                      __global float* dst,
                      int w, int h) {
    __local float t[WG];
    int x = get_global_id(0);
    int y = get_global_id(1);
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lw = get_local_size(0);
    int lh = get_local_size(1);
    int idx = y * w + x;
    int lidx = ly * lw + lx;
    if (x < w && y < h) { t[lidx] = temp[idx]; }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        float c = t[lidx];
        float up;
        float dn;
        float lf;
        float rt;
        if (ly > 0) { up = t[lidx - lw]; } else { up = temp[idx - w]; }
        if (ly < lh - 1) { dn = t[lidx + lw]; } else { dn = temp[idx + w]; }
        if (lx > 0) { lf = t[lidx - 1]; } else { lf = temp[idx - 1]; }
        if (lx < lw - 1) { rt = t[lidx + 1]; } else { rt = temp[idx + 1]; }
        dst[idx] = c + 0.2f * (up + dn + lf + rt - 4.0f * c) + 0.1f * power[idx];
    }
}`,
		Global: [3]int64{64, 64},
		Bufs: []Buf{
			{Name: "temp", Float: true, Len: 64 * 64, Fill: FillNoise},
			{Name: "power", Float: true, Len: 64 * 64, Fill: FillMod},
			{Name: "dst", Float: true, Len: 64 * 64},
		},
		Scalars: map[string]int64{"w": 64, "h": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "hotspot3D", Name: "hotspot3D", Fn: "hotspotOpt1",
		TwoD: true,
		Source: `
__kernel void hotspotOpt1(__global const float* tIn,
                          __global const float* pIn,
                          __global float* tOut,
                          int nx, int ny, int nz) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            int c = i + nx * (j + ny * k);
            int iw = (i > 0) ? c - 1 : c;
            int ie = (i < nx - 1) ? c + 1 : c;
            int jn = (j > 0) ? c - nx : c;
            int js = (j < ny - 1) ? c + nx : c;
            int kb = (k > 0) ? c - nx * ny : c;
            int kt = (k < nz - 1) ? c + nx * ny : c;
            float cc = tIn[c];
            float sum = tIn[iw] + tIn[ie] + tIn[jn] + tIn[js] + tIn[kb] + tIn[kt];
            tOut[c] = 0.4f * cc + 0.0833f * sum + 0.05f * pIn[c];
        }
    }
}`,
		Global: [3]int64{32, 32},
		MaxWG:  256,
		Bufs: []Buf{
			{Name: "tIn", Float: true, Len: 32 * 32 * 8, Fill: FillNoise},
			{Name: "pIn", Float: true, Len: 32 * 32 * 8, Fill: FillMod},
			{Name: "tOut", Float: true, Len: 32 * 32 * 8},
		},
		Scalars: map[string]int64{"nx": 32, "ny": 32, "nz": 8},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "hybridsort", Name: "count", Fn: "bucketcount",
		Source: `
__kernel void bucketcount(__global const float* input,
                          __global int* indice,
                          __global int* d_prefixoffsets,
                          int n, int nbuckets) {
    int i = get_global_id(0);
    if (i < n) {
        float v = input[i];
        int b = (int)(v * (float)nbuckets);
        if (b >= nbuckets) { b = nbuckets - 1; }
        if (b < 0) { b = 0; }
        indice[i] = b;
        atomic_add(d_prefixoffsets + b, 1);
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "input", Float: true, Len: 2048, Fill: FillNoise},
			{Name: "indice", Len: 2048},
			{Name: "d_prefixoffsets", Len: 64},
		},
		Scalars: map[string]int64{"n": 2048, "nbuckets": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "hybridsort", Name: "prefix", Fn: "prefixsum",
		Source: `
// Hillis–Steele scan within each work-group, staged in local memory.
__kernel void prefixsum(__global int* d, int n) {
    __local int t[WG];
    __local int s[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    t[l] = (g < n) ? d[g] : 0;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int off = 1; off < lw; off = off * 2) {
        int v = t[l];
        if (l >= off) { v = v + t[l - off]; }
        barrier(CLK_LOCAL_MEM_FENCE);
        s[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
        t[l] = s[l];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (g < n) { d[g] = t[l]; }
}`,
		Global:  [3]int64{2048},
		Bufs:    []Buf{{Name: "d", Len: 2048, Fill: FillSmall}},
		Scalars: map[string]int64{"n": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "hybridsort", Name: "sort", Fn: "bitonicSort",
		Source: `
__kernel void bitonicSort(__global float* d, int n, int j, int k) {
    int i = get_global_id(0);
    int ixj = i ^ j;
    if (i < n && ixj > i && ixj < n) {
        float a = d[i];
        float b = d[ixj];
        int ascending = ((i & k) == 0);
        int swap = 0;
        if (ascending != 0) {
            if (a > b) { swap = 1; }
        } else {
            if (a < b) { swap = 1; }
        }
        if (swap != 0) { d[i] = b; d[ixj] = a; }
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "d", Float: true, Len: 2048, Fill: FillPerm, Mod: 2048},
		},
		Scalars: map[string]int64{"n": 2048, "j": 2, "k": 8},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "kmeans", Name: "center", Fn: "kmeans_kernel_c",
		Source: `
__kernel void kmeans_kernel_c(__global const float* feature,
                              __global const float* clusters,
                              __global int* membership,
                              int npoints, int nclusters, int nfeatures) {
    int point_id = get_global_id(0);
    if (point_id < npoints) {
        int index = 0;
        float min_dist = 3.4e37f;
        for (int i = 0; i < nclusters; i++) {
            float dist = 0.0f;
            for (int l = 0; l < nfeatures; l++) {
                float diff = feature[point_id * nfeatures + l] - clusters[i * nfeatures + l];
                dist += diff * diff;
            }
            if (dist < min_dist) {
                min_dist = dist;
                index = i;
            }
        }
        membership[point_id] = index;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "feature", Float: true, Len: 2048 * 8, Fill: FillNoise},
			{Name: "clusters", Float: true, Len: 5 * 8, Fill: FillMod},
			{Name: "membership", Len: 2048},
		},
		Scalars: map[string]int64{"npoints": 2048, "nclusters": 5, "nfeatures": 8},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "kmeans", Name: "swap", Fn: "kmeans_swap",
		Source: `
__kernel void kmeans_swap(__global const float* feature,
                          __global float* feature_swap,
                          int npoints, int nfeatures) {
    int tid = get_global_id(0);
    if (tid < npoints) {
        for (int i = 0; i < nfeatures; i++) {
            feature_swap[i * npoints + tid] = feature[tid * nfeatures + i];
        }
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "feature", Float: true, Len: 2048 * 8, Fill: FillNoise},
			{Name: "feature_swap", Float: true, Len: 2048 * 8},
		},
		Scalars: map[string]int64{"npoints": 2048, "nfeatures": 8},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "lavaMD", Name: "lavaMD", Fn: "kernel_gpu_opencl",
		Source: `
// Particle interactions between a home box and its neighbor boxes.
__kernel void kernel_gpu_opencl(__global const float* rv,
                                __global const float* qv,
                                __global float* fv,
                                __global const int* nn,
                                int nboxes, int perbox) {
    int i = get_global_id(0);
    int box = i / perbox;
    if (box < nboxes) {
        float xi = rv[i];
        float qi = qv[i];
        float acc = 0.0f;
        for (int nb = 0; nb < 4; nb++) {
            int obox = nn[box * 4 + nb];
            for (int j = 0; j < perbox; j++) {
                float xj = rv[obox * perbox + j];
                float r2 = (xi - xj) * (xi - xj) + 1.0f;
                float u2 = 0.5f * r2;
                float vij = exp(-u2);
                acc += qi * qv[obox * perbox + j] * vij * (xi - xj);
            }
        }
        fv[i] = acc;
    }
}`,
		Global: [3]int64{2048},
		MaxWG:  128,
		Bufs: []Buf{
			{Name: "rv", Float: true, Len: 2048, Fill: FillNoise},
			{Name: "qv", Float: true, Len: 2048, Fill: FillMod},
			{Name: "fv", Float: true, Len: 2048},
			{Name: "nn", Len: 64 * 4, Fill: FillPerm, Mod: 64},
		},
		Scalars: map[string]int64{"nboxes": 64, "perbox": 32},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "leukocyte", Name: "gicov", Fn: "GICOV_kernel",
		Source: `
__kernel void GICOV_kernel(__global const float* grad_x,
                           __global const float* grad_y,
                           __global float* gicov,
                           int w, int h) {
    int i = get_global_id(0);
    int x = i % w;
    int y = i / w;
    if (x < w && y < h) {
        float sum = 0.0f;
        float sum2 = 0.0f;
        for (int k = 0; k < 16; k++) {
            float gx = grad_x[y * w + (x + k) % w];
            float gy = grad_y[((y + k) % h) * w + x];
            float g = gx * 0.7f + gy * 0.3f;
            sum += g;
            sum2 += g * g;
        }
        float mean = sum / 16.0f;
        float var = sum2 / 16.0f - mean * mean;
        gicov[y * w + x] = (var > 0.0001f) ? mean * mean / var : 0.0f;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "grad_x", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "grad_y", Float: true, Len: 4096, Fill: FillMod},
			{Name: "gicov", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"w": 64, "h": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "leukocyte", Name: "dilate", Fn: "dilate_kernel",
		Source: `
__kernel void dilate_kernel(__global const float* img,
                            __global float* dilated,
                            int w, int h) {
    int i = get_global_id(0);
    int x = i % w;
    int y = i / w;
    if (x < w && y < h) {
        float mx = 0.0f;
        for (int dy = -2; dy <= 2; dy++) {
            for (int dx = -2; dx <= 2; dx++) {
                int xx = x + dx;
                int yy = y + dy;
                if (xx >= 0 && xx < w && yy >= 0 && yy < h) {
                    mx = fmax(mx, img[yy * w + xx]);
                }
            }
        }
        dilated[y * w + x] = mx;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "img", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "dilated", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"w": 64, "h": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "leukocyte", Name: "imgvf", Fn: "IMGVF_kernel",
		Source: `
__kernel void IMGVF_kernel(__global float* imgvf,
                           __global const float* img,
                           int w, int h, int iters) {
    int i = get_global_id(0);
    int x = i % w;
    int y = i / w;
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        float v = imgvf[y * w + x];
        for (int it = 0; it < iters; it++) {
            float up = imgvf[(y - 1) * w + x];
            float dn = imgvf[(y + 1) * w + x];
            float lf = imgvf[y * w + x - 1];
            float rt = imgvf[y * w + x + 1];
            v = 0.6f * v + 0.0875f * (up + dn + lf + rt) + 0.05f * img[y * w + x];
        }
        imgvf[y * w + x] = v;
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "imgvf", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "img", Float: true, Len: 4096, Fill: FillMod},
		},
		Scalars: map[string]int64{"w": 64, "h": 64, "iters": 4},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "lud", Name: "diagonal", Fn: "lud_diagonal",
		Source: `
// LU factorization of one 16×16 diagonal block per work-group, staged in
// local memory.
__kernel void lud_diagonal(__global float* m, int matrix_dim, int offset) {
    __local float shadow[16 * 16];
    int l = get_local_id(0);
    int blk = offset + get_group_id(0) * 16;
    int valid = (blk + 16 <= matrix_dim) ? 1 : 0;
    if (l < 16 && valid != 0) {
        for (int j = 0; j < 16; j++) {
            shadow[l * 16 + j] = m[(blk + l) * matrix_dim + blk + j];
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 15; k++) {
        if (l > k && l < 16 && valid != 0) {
            shadow[l * 16 + k] = shadow[l * 16 + k] / shadow[k * 16 + k];
            for (int j = k + 1; j < 16; j++) {
                shadow[l * 16 + j] -= shadow[l * 16 + k] * shadow[k * 16 + j];
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l < 16 && valid != 0) {
        for (int j = 0; j < 16; j++) {
            m[(blk + l) * matrix_dim + blk + j] = shadow[l * 16 + j];
        }
    }
}`,
		Global: [3]int64{64},
		MinWG:  16, MaxWG: 64,
		Bufs: []Buf{
			{Name: "m", Float: true, Len: 64 * 64, Fill: FillDiagDom, Aux: 64},
		},
		Scalars: map[string]int64{"matrix_dim": 64, "offset": 0},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "lud", Name: "perimeter", Fn: "lud_perimeter",
		Source: `
__kernel void lud_perimeter(__global float* m, int matrix_dim, int offset) {
    __local float dia[16 * 16];
    int l = get_local_id(0);
    int chunk = get_group_id(0);
    if (l < 16) {
        for (int j = 0; j < 16; j++) {
            dia[l * 16 + j] = m[(offset + l) * matrix_dim + offset + j];
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    int row = offset + 16 + chunk * 16 + l;
    if (l < 16 && row < matrix_dim) {
        for (int k = 0; k < 16; k++) {
            float sum = m[row * matrix_dim + offset + k];
            for (int j = 0; j < k; j++) {
                sum -= m[row * matrix_dim + offset + j] * dia[j * 16 + k];
            }
            m[row * matrix_dim + offset + k] = sum / dia[k * 16 + k];
        }
    }
}`,
		Global: [3]int64{64},
		MinWG:  16, MaxWG: 64,
		Bufs: []Buf{
			{Name: "m", Float: true, Len: 64 * 64, Fill: FillDiagDom, Aux: 64},
		},
		Scalars: map[string]int64{"matrix_dim": 64, "offset": 0},
	})
}
