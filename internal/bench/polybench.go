package bench

// PolyBench/GPU kernels (Grauer-Gray et al., InPar'12): the 15 benchmarks
// of the OpenCL suite, one representative kernel each. PolyBench kernels
// have simpler, regular structures than Rodinia (§4.2).

func init() {
	const n = 64 // matrix dimension; launches are n×n = 4096 work-items

	matrix := func(name string, fill Fill) Buf {
		return Buf{Name: name, Float: true, Len: n * n, Fill: fill}
	}
	vector := func(name string, fill Fill) Buf {
		return Buf{Name: name, Float: true, Len: n, Fill: fill}
	}

	register(&Kernel{
		Suite: "polybench", Bench: "2dconv", Name: "conv2d", Fn: "Convolution2D_kernel",
		TwoD: true,
		Source: `
__kernel void Convolution2D_kernel(__global const float* A,
                                   __global float* B, int ni, int nj) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i > 0 && i < ni - 1 && j > 0 && j < nj - 1) {
        B[i * nj + j] = 0.2f * A[(i - 1) * nj + j - 1] + 0.5f * A[(i - 1) * nj + j]
                      - 0.8f * A[(i - 1) * nj + j + 1] - 0.3f * A[i * nj + j - 1]
                      + 0.6f * A[i * nj + j] - 0.9f * A[i * nj + j + 1]
                      + 0.4f * A[(i + 1) * nj + j - 1] + 0.7f * A[(i + 1) * nj + j]
                      + 0.1f * A[(i + 1) * nj + j + 1];
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("A", FillNoise), matrix("B", FillZero)},
		Scalars: map[string]int64{"ni": n, "nj": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "3dconv", Name: "conv3d", Fn: "Convolution3D_kernel",
		TwoD: true,
		Source: `
__kernel void Convolution3D_kernel(__global const float* A,
                                   __global float* B,
                                   int ni, int nj, int nk) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i > 0 && i < ni - 1 && j > 0 && j < nj - 1) {
        for (int k = 1; k < nk - 1; k++) {
            int c = i * nj * nk + j * nk + k;
            B[c] = 0.2f * A[c - nj * nk - nk - 1] + 0.5f * A[c - nj * nk]
                 - 0.8f * A[c - nk] + 0.6f * A[c] - 0.9f * A[c + nk]
                 + 0.4f * A[c + nj * nk] + 0.1f * A[c + nj * nk + nk + 1];
        }
    }
}`,
		Global: [3]int64{32, 32},
		Bufs: []Buf{
			{Name: "A", Float: true, Len: 32 * 32 * 8, Fill: FillNoise},
			{Name: "B", Float: true, Len: 32 * 32 * 8},
		},
		Scalars: map[string]int64{"ni": 32, "nj": 32, "nk": 8},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "2mm", Name: "mm2", Fn: "mm2_kernel1",
		TwoD: true,
		Source: `
__kernel void mm2_kernel1(__global const float* A,
                          __global const float* B,
                          __global float* C, int ni, int nj, int nk) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < ni && j < nj) {
        float acc = 0.0f;
        for (int k = 0; k < nk; k++) {
            acc += A[i * nk + k] * B[k * nj + j];
        }
        C[i * nj + j] = acc;
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("A", FillNoise), matrix("B", FillMod), matrix("C", FillZero)},
		Scalars: map[string]int64{"ni": n, "nj": n, "nk": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "3mm", Name: "mm3", Fn: "mm3_kernel1",
		TwoD: true,
		Source: `
__kernel void mm3_kernel1(__global const float* A,
                          __global const float* B,
                          __global const float* C,
                          __global float* E, int ni, int nj, int nk) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < ni && j < nj) {
        float ab = 0.0f;
        for (int k = 0; k < nk; k++) {
            ab += A[i * nk + k] * B[k * nj + j];
        }
        float abc = 0.0f;
        for (int k = 0; k < nk; k++) {
            abc += ab * C[k * nj + j] * 0.125f;
        }
        E[i * nj + j] = abc;
    }
}`,
		Global: [3]int64{n, n},
		Bufs: []Buf{
			matrix("A", FillNoise), matrix("B", FillMod),
			matrix("C", FillNoise), matrix("E", FillZero),
		},
		Scalars: map[string]int64{"ni": n, "nj": n, "nk": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "atax", Name: "atax", Fn: "atax_kernel1",
		Source: `
__kernel void atax_kernel1(__global const float* A,
                           __global const float* x,
                           __global float* tmp, int nx, int ny) {
    int i = get_global_id(0);
    if (i < nx) {
        float acc = 0.0f;
        for (int j = 0; j < ny; j++) {
            acc += A[i * ny + j] * x[j];
        }
        tmp[i] = acc;
    }
}`,
		Global:  [3]int64{n * 8},
		Bufs:    []Buf{{Name: "A", Float: true, Len: 8 * n * n, Fill: FillNoise}, vector("x", FillMod), {Name: "tmp", Float: true, Len: 8 * n}},
		Scalars: map[string]int64{"nx": 8 * n, "ny": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "bicg", Name: "bicg", Fn: "bicg_kernel1",
		Source: `
__kernel void bicg_kernel1(__global const float* A,
                           __global const float* p,
                           __global float* q, int nx, int ny) {
    int i = get_global_id(0);
    if (i < nx) {
        float acc = 0.0f;
        for (int j = 0; j < ny; j++) {
            acc += A[i * ny + j] * p[j];
        }
        q[i] = acc;
    }
}`,
		Global:  [3]int64{n * 8},
		Bufs:    []Buf{{Name: "A", Float: true, Len: 8 * n * n, Fill: FillMod}, vector("p", FillNoise), {Name: "q", Float: true, Len: 8 * n}},
		Scalars: map[string]int64{"nx": 8 * n, "ny": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "correlation", Name: "corr", Fn: "corr_kernel",
		Source: `
__kernel void corr_kernel(__global const float* data,
                          __global const float* mean,
                          __global const float* stddev,
                          __global float* symmat, int m, int npts) {
    int j1 = get_global_id(0);
    if (j1 < m) {
        for (int j2 = j1; j2 < m; j2++) {
            float acc = 0.0f;
            for (int i = 0; i < npts; i++) {
                acc += (data[i * m + j1] - mean[j1]) * (data[i * m + j2] - mean[j2]);
            }
            symmat[j1 * m + j2] = acc / ((float)npts * stddev[j1] * stddev[j2] + 0.001f);
        }
    }
}`,
		Global: [3]int64{n},
		MaxWG:  64,
		Bufs: []Buf{
			matrix("data", FillNoise), vector("mean", FillMod),
			vector("stddev", FillOne), matrix("symmat", FillZero),
		},
		Scalars: map[string]int64{"m": n, "npts": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "covariance", Name: "covar", Fn: "covar_kernel",
		Source: `
__kernel void covar_kernel(__global const float* data,
                           __global const float* mean,
                           __global float* symmat, int m, int npts) {
    int j1 = get_global_id(0);
    if (j1 < m) {
        for (int j2 = j1; j2 < m; j2++) {
            float acc = 0.0f;
            for (int i = 0; i < npts; i++) {
                acc += (data[i * m + j1] - mean[j1]) * (data[i * m + j2] - mean[j2]);
            }
            symmat[j1 * m + j2] = acc / ((float)npts - 1.0f);
        }
    }
}`,
		Global: [3]int64{n},
		MaxWG:  64,
		Bufs: []Buf{
			matrix("data", FillNoise), vector("mean", FillMod), matrix("symmat", FillZero),
		},
		Scalars: map[string]int64{"m": n, "npts": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "fdtd2d", Name: "fdtd", Fn: "fdtd_kernel",
		TwoD: true,
		Source: `
__kernel void fdtd_kernel(__global float* ex,
                          __global float* ey,
                          __global float* hz, int nx, int ny) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < nx - 1 && j < ny - 1) {
        float dhz = hz[(i + 1) * ny + j] - hz[i * ny + j];
        ey[i * ny + j] = ey[i * ny + j] - 0.5f * dhz;
        float dhz2 = hz[i * ny + j + 1] - hz[i * ny + j];
        ex[i * ny + j] = ex[i * ny + j] - 0.5f * dhz2;
        hz[i * ny + j] = hz[i * ny + j]
            - 0.7f * (ex[i * ny + j + 1] - ex[i * ny + j]
                    + ey[(i + 1) * ny + j] - ey[i * ny + j]);
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("ex", FillNoise), matrix("ey", FillMod), matrix("hz", FillNoise)},
		Scalars: map[string]int64{"nx": n, "ny": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "gemm", Name: "gemm", Fn: "gemm_kernel",
		TwoD: true,
		Source: `
__kernel void gemm_kernel(__global const float* A,
                          __global const float* B,
                          __global float* C, int ni, int nj, int nk) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < ni && j < nj) {
        float acc = C[i * nj + j] * 0.5f;
        for (int k = 0; k < nk; k++) {
            acc += 1.5f * A[i * nk + k] * B[k * nj + j];
        }
        C[i * nj + j] = acc;
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("A", FillNoise), matrix("B", FillMod), matrix("C", FillNoise)},
		Scalars: map[string]int64{"ni": n, "nj": n, "nk": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "gesummv", Name: "gesummv", Fn: "gesummv_kernel",
		Source: `
__kernel void gesummv_kernel(__global const float* A,
                             __global const float* B,
                             __global const float* x,
                             __global float* y, int nn) {
    int i = get_global_id(0);
    if (i < nn) {
        float tmp = 0.0f;
        float yv = 0.0f;
        for (int j = 0; j < nn; j++) {
            tmp += A[i * nn + j] * x[j];
            yv += B[i * nn + j] * x[j];
        }
        y[i] = 1.5f * tmp + 2.5f * yv;
    }
}`,
		Global:  [3]int64{n},
		MaxWG:   64,
		Bufs:    []Buf{matrix("A", FillNoise), matrix("B", FillMod), vector("x", FillNoise), vector("y", FillZero)},
		Scalars: map[string]int64{"nn": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "gramschmidt", Name: "gramschmidt", Fn: "gramschmidt_kernel",
		Source: `
__kernel void gramschmidt_kernel(__global float* A,
                                 __global float* R,
                                 __global float* Q,
                                 int k, int nrows, int ncols) {
    int i = get_global_id(0);
    if (i < nrows) {
        float nrm = 0.0f;
        for (int r = 0; r < nrows; r++) {
            nrm += A[r * ncols + k] * A[r * ncols + k];
        }
        R[k * ncols + k] = sqrt(nrm);
        Q[i * ncols + k] = A[i * ncols + k] / (sqrt(nrm) + 0.001f);
    }
}`,
		Global:  [3]int64{n},
		MaxWG:   64,
		Bufs:    []Buf{matrix("A", FillNoise), matrix("R", FillZero), matrix("Q", FillZero)},
		Scalars: map[string]int64{"k": 3, "nrows": n, "ncols": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "mvt", Name: "mvt", Fn: "mvt_kernel1",
		Source: `
__kernel void mvt_kernel1(__global const float* a,
                          __global float* x1,
                          __global const float* y1, int nn) {
    int i = get_global_id(0);
    if (i < nn) {
        float acc = x1[i];
        for (int j = 0; j < nn; j++) {
            acc += a[i * nn + j] * y1[j];
        }
        x1[i] = acc;
    }
}`,
		Global:  [3]int64{n},
		MaxWG:   64,
		Bufs:    []Buf{matrix("a", FillNoise), vector("x1", FillMod), vector("y1", FillNoise)},
		Scalars: map[string]int64{"nn": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "syrk", Name: "syrk", Fn: "syrk_kernel",
		TwoD: true,
		Source: `
__kernel void syrk_kernel(__global const float* A,
                          __global float* C, int nn, int m) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < nn && j < nn) {
        float acc = C[i * nn + j] * 0.5f;
        for (int k = 0; k < m; k++) {
            acc += 2.0f * A[i * m + k] * A[j * m + k];
        }
        C[i * nn + j] = acc;
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("A", FillNoise), matrix("C", FillMod)},
		Scalars: map[string]int64{"nn": n, "m": n},
	})

	register(&Kernel{
		Suite: "polybench", Bench: "syr2k", Name: "syr2k", Fn: "syr2k_kernel",
		TwoD: true,
		Source: `
__kernel void syr2k_kernel(__global const float* A,
                           __global const float* B,
                           __global float* C, int nn, int m) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < nn && j < nn) {
        float acc = C[i * nn + j] * 0.5f;
        for (int k = 0; k < m; k++) {
            acc += 2.0f * A[i * m + k] * B[j * m + k];
            acc += 2.0f * B[i * m + k] * A[j * m + k];
        }
        C[i * nn + j] = acc;
    }
}`,
		Global:  [3]int64{n, n},
		Bufs:    []Buf{matrix("A", FillNoise), matrix("B", FillMod), matrix("C", FillNoise)},
		Scalars: map[string]int64{"nn": n, "m": n},
	})
}
