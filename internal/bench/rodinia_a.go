package bench

// Rodinia kernels, part 1: backprop, bfs, b+tree, cfd, dwt2d, gaussian.
// Each kernel mirrors the structure of the original Rodinia OpenCL code
// (loop nests, local-memory staging, barriers, access patterns) within
// the supported language subset. The WG macro is bound to the swept
// work-group size at compile time.

func init() {
	register(&Kernel{
		Suite: "rodinia", Bench: "backprop", Name: "layer", Fn: "bpnn_layerforward",
		Source: `
__kernel void bpnn_layerforward(__global const float* input,
                                __global const float* weights,
                                __global float* hidden,
                                int in_n, int hid_n) {
    int j = get_global_id(0);
    if (j < hid_n) {
        float sum = 0.0f;
        for (int i = 0; i < in_n; i++) {
            sum += input[i] * weights[i * hid_n + j];
        }
        hidden[j] = 1.0f / (1.0f + exp(-sum));
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "input", Float: true, Len: 64, Fill: FillMod},
			{Name: "weights", Float: true, Len: 64 * 2048, Fill: FillNoise},
			{Name: "hidden", Float: true, Len: 2048},
		},
		Scalars: map[string]int64{"in_n": 64, "hid_n": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "backprop", Name: "adjust", Fn: "bpnn_adjust_weights",
		Source: `
__kernel void bpnn_adjust_weights(__global float* w,
                                  __global const float* delta,
                                  __global const float* ly,
                                  int hid_n, int out_n) {
    int i = get_global_id(0);
    if (i < hid_n * out_n) {
        int r = i / out_n;
        int c = i % out_n;
        float grad = 0.3f * delta[c] * ly[r];
        w[i] = w[i] + grad + 0.0001f * w[i];
    }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "w", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "delta", Float: true, Len: 64, Fill: FillMod},
			{Name: "ly", Float: true, Len: 64, Fill: FillNoise},
		},
		Scalars: map[string]int64{"hid_n": 64, "out_n": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "bfs", Name: "bfs_1", Fn: "bfs_kernel_1",
		Source: `
__kernel void bfs_kernel_1(__global const int* row_start,
                           __global const int* row_len,
                           __global const int* edges,
                           __global int* mask,
                           __global int* updating,
                           __global int* cost,
                           int n) {
    int tid = get_global_id(0);
    if (tid < n && mask[tid] != 0) {
        mask[tid] = 0;
        int start = row_start[tid];
        int len = row_len[tid];
        for (int e = start; e < start + len; e++) {
            int id = edges[e];
            if (cost[id] < 0) {
                cost[id] = cost[tid] + 1;
                updating[id] = 1;
            }
        }
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "row_start", Len: 2048, Fill: FillRowPtr, Aux: 4},
			{Name: "row_len", Len: 2048, Fill: FillConst, Aux: 4},
			{Name: "edges", Len: 8192, Fill: FillPerm, Mod: 2048},
			{Name: "mask", Len: 2048, Fill: FillPerm, Mod: 2},
			{Name: "updating", Len: 2048},
			{Name: "cost", Len: 2048, Fill: FillConst, Aux: -1, Mod: 0},
		},
		Scalars: map[string]int64{"n": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "bfs", Name: "bfs_2", Fn: "bfs_kernel_2",
		Source: `
__kernel void bfs_kernel_2(__global int* mask,
                           __global int* updating,
                           __global int* over,
                           int n) {
    int tid = get_global_id(0);
    if (tid < n && updating[tid] != 0) {
        mask[tid] = 1;
        updating[tid] = 0;
        atomic_max(over, 1);
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "mask", Len: 2048},
			{Name: "updating", Len: 2048, Fill: FillPerm, Mod: 2},
			{Name: "over", Len: 1},
		},
		Scalars: map[string]int64{"n": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "b+tree", Name: "findK", Fn: "findK",
		Source: `
__kernel void findK(__global const int* knodes,
                    __global const int* keys,
                    __global int* ans,
                    int n, int height) {
    int tid = get_global_id(0);
    if (tid < n) {
        int key = keys[tid];
        int lo = 0;
        int hi = n - 1;
        for (int d = 0; d < height; d++) {
            int mid = (lo + hi) / 2;
            if (knodes[mid] < key) { lo = mid + 1; } else { hi = mid; }
        }
        ans[tid] = lo;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "knodes", Len: 2048, Fill: FillRamp},
			{Name: "keys", Len: 2048, Fill: FillPerm, Mod: 2048},
			{Name: "ans", Len: 2048},
		},
		Scalars: map[string]int64{"n": 2048, "height": 11},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "b+tree", Name: "rangeK", Fn: "findRangeK",
		Source: `
__kernel void findRangeK(__global const int* knodes,
                         __global const int* start,
                         __global const int* end,
                         __global int* recstart,
                         __global int* reclen,
                         int n, int height) {
    int tid = get_global_id(0);
    if (tid < n) {
        int ks = start[tid];
        int ke = end[tid];
        int lo = 0;
        int hi = n - 1;
        for (int d = 0; d < height; d++) {
            int mid = (lo + hi) / 2;
            if (knodes[mid] < ks) { lo = mid + 1; } else { hi = mid; }
        }
        int lo2 = lo;
        int hi2 = n - 1;
        for (int d = 0; d < height; d++) {
            int mid = (lo2 + hi2) / 2;
            if (knodes[mid] < ke) { lo2 = mid + 1; } else { hi2 = mid; }
        }
        recstart[tid] = lo;
        reclen[tid] = lo2 - lo;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "knodes", Len: 2048, Fill: FillRamp},
			{Name: "start", Len: 2048, Fill: FillPerm, Mod: 1024},
			{Name: "end", Len: 2048, Fill: FillPerm, Mod: 2048},
			{Name: "recstart", Len: 2048},
			{Name: "reclen", Len: 2048},
		},
		Scalars: map[string]int64{"n": 2048, "height": 11},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "cfd", Name: "memset", Fn: "memset_kernel",
		Source: `
__kernel void memset_kernel(__global float* mem, int n) {
    int i = get_global_id(0);
    if (i < n) { mem[i] = 0.0f; }
}`,
		Global:  [3]int64{4096},
		Bufs:    []Buf{{Name: "mem", Float: true, Len: 4096, Fill: FillNoise}},
		Scalars: map[string]int64{"n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "cfd", Name: "initialize", Fn: "initialize_variables",
		Source: `
__kernel void initialize_variables(__global float* variables,
                                   __global const float* ff_variable,
                                   int nelr) {
    int i = get_global_id(0);
    if (i < nelr) {
        for (int j = 0; j < 5; j++) {
            variables[j * nelr + i] = ff_variable[j];
        }
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "variables", Float: true, Len: 5 * 2048},
			{Name: "ff_variable", Float: true, Len: 5, Fill: FillSmall},
		},
		Scalars: map[string]int64{"nelr": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "cfd", Name: "compute", Fn: "compute_flux",
		Source: `
__kernel void compute_flux(__global const int* neighbors,
                           __global const float* variables,
                           __global float* fluxes,
                           int nelr) {
    int i = get_global_id(0);
    if (i < nelr) {
        float density = variables[i];
        float momentum = variables[nelr + i];
        float energy = variables[2 * nelr + i];
        float flux_d = 0.0f;
        float flux_m = 0.0f;
        for (int j = 0; j < 4; j++) {
            int nb = neighbors[i * 4 + j];
            float dn = variables[nb];
            float mn = variables[nelr + nb];
            float factor = 0.5f * (dn - density);
            flux_d += factor;
            flux_m += 0.5f * (mn - momentum) + sqrt(fabs(dn * density)) * 0.01f;
        }
        fluxes[i] = flux_d + 0.1f * energy;
        fluxes[nelr + i] = flux_m;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "neighbors", Len: 4 * 2048, Fill: FillPerm, Mod: 2048},
			{Name: "variables", Float: true, Len: 3 * 2048, Fill: FillNoise},
			{Name: "fluxes", Float: true, Len: 2 * 2048},
		},
		Scalars: map[string]int64{"nelr": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "cfd", Name: "time_step", Fn: "time_step",
		Source: `
__kernel void time_step(__global float* variables,
                        __global const float* old_variables,
                        __global const float* fluxes,
                        int nelr) {
    int i = get_global_id(0);
    if (i < nelr) {
        float factor = 0.5f;
        variables[i] = old_variables[i] + factor * fluxes[i];
        variables[nelr + i] = old_variables[nelr + i] + factor * fluxes[nelr + i];
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "variables", Float: true, Len: 2 * 2048},
			{Name: "old_variables", Float: true, Len: 2 * 2048, Fill: FillNoise},
			{Name: "fluxes", Float: true, Len: 2 * 2048, Fill: FillMod},
		},
		Scalars: map[string]int64{"nelr": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "dwt2d", Name: "components", Fn: "c_copy_components",
		Source: `
__kernel void c_copy_components(__global const int* src,
                                __global int* r,
                                __global int* g,
                                __global int* b,
                                int n) {
    int i = get_global_id(0);
    if (i < n) {
        r[i] = src[3 * i] - 128;
        g[i] = src[3 * i + 1] - 128;
        b[i] = src[3 * i + 2] - 128;
    }
}`,
		Global: [3]int64{2048},
		Bufs: []Buf{
			{Name: "src", Len: 3 * 2048, Fill: FillNoise, Mod: 256},
			{Name: "r", Len: 2048}, {Name: "g", Len: 2048}, {Name: "b", Len: 2048},
		},
		Scalars: map[string]int64{"n": 2048},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "dwt2d", Name: "component", Fn: "c_copy_component",
		Source: `
__kernel void c_copy_component(__global const int* src,
                               __global int* dst,
                               int n) {
    int i = get_global_id(0);
    if (i < n) { dst[i] = src[i] - 128; }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "src", Len: 4096, Fill: FillNoise, Mod: 256},
			{Name: "dst", Len: 4096},
		},
		Scalars: map[string]int64{"n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "dwt2d", Name: "fdwt", Fn: "fdwt53",
		Source: `
// 5/3 lifting wavelet over work-group tiles staged in local memory.
__kernel void fdwt53(__global const float* in, __global float* out, int n) {
    __local float t[WG];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int lw = get_local_size(0);
    t[l] = (g < n) ? in[g] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    // Predict: odd samples.
    if ((l & 1) == 1 && l + 1 < lw) {
        t[l] = t[l] - 0.5f * (t[l - 1] + t[l + 1]);
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    // Update: even samples.
    if ((l & 1) == 0 && l > 0 && l + 1 < lw) {
        t[l] = t[l] + 0.25f * (t[l - 1] + t[l + 1]);
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (g < n) { out[g] = t[l]; }
}`,
		Global: [3]int64{4096},
		Bufs: []Buf{
			{Name: "in", Float: true, Len: 4096, Fill: FillNoise},
			{Name: "out", Float: true, Len: 4096},
		},
		Scalars: map[string]int64{"n": 4096},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "dwt2d", Name: "compute", Fn: "dwt_vertical",
		TwoD: true,
		Source: `
__kernel void dwt_vertical(__global const float* in, __global float* out,
                           int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        int yu = (y > 0) ? y - 1 : y;
        int yd = (y < h - 1) ? y + 1 : y;
        float c = in[y * w + x];
        float up = in[yu * w + x];
        float dn = in[yd * w + x];
        out[y * w + x] = c - 0.5f * (up + dn);
    }
}`,
		Global: [3]int64{64, 64},
		Bufs: []Buf{
			{Name: "in", Float: true, Len: 64 * 64, Fill: FillNoise},
			{Name: "out", Float: true, Len: 64 * 64},
		},
		Scalars: map[string]int64{"w": 64, "h": 64},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "gaussian", Name: "fan1", Fn: "Fan1",
		Source: `
__kernel void Fan1(__global float* m_dev,
                   __global const float* a_dev,
                   int size, int t) {
    int i = get_global_id(0);
    if (i < size - 1 - t) {
        m_dev[(i + t + 1) * size + t] = a_dev[(i + t + 1) * size + t] / a_dev[t * size + t];
    }
}`,
		// The host launches one work-item per remaining row (size−1−t),
		// rounded up to the work-group size, as the Rodinia driver does.
		Global: [3]int64{64},
		MaxWG:  64,
		Bufs: []Buf{
			{Name: "m_dev", Float: true, Len: 64 * 64},
			{Name: "a_dev", Float: true, Len: 64 * 64, Fill: FillDiagDom, Aux: 64},
		},
		Scalars: map[string]int64{"size": 64, "t": 2},
	})

	register(&Kernel{
		Suite: "rodinia", Bench: "gaussian", Name: "fan2", Fn: "Fan2",
		TwoD: true,
		Source: `
__kernel void Fan2(__global float* a_dev,
                   __global float* b_dev,
                   __global const float* m_dev,
                   int size, int t) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < size - 1 - t && y < size - t) {
        a_dev[(x + t + 1) * size + (y + t)] -= m_dev[(x + t + 1) * size + t] * a_dev[t * size + (y + t)];
        if (y == 0) {
            b_dev[x + t + 1] -= m_dev[(x + t + 1) * size + t] * b_dev[t];
        }
    }
}`,
		Global: [3]int64{64, 64},
		Bufs: []Buf{
			{Name: "a_dev", Float: true, Len: 64 * 64, Fill: FillDiagDom, Aux: 64},
			{Name: "b_dev", Float: true, Len: 64, Fill: FillSmall},
			{Name: "m_dev", Float: true, Len: 64 * 64, Fill: FillNoise},
		},
		Scalars: map[string]int64{"size": 64, "t": 2},
	})
}
