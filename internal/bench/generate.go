package bench

import "fmt"

// GenSpec parameterizes one synthetic workload, HPCChallenge-style:
// pick a family and a problem size and Generate returns a complete
// Kernel — source, NDRange geometry and deterministically filled
// buffers — ready for Compile/Config like any bundled benchmark.
type GenSpec struct {
	// Family selects the kernel shape; see GenFamilies.
	Family string
	// N is the problem size: vector length for the 1-D families, the
	// matrix dimension for the 2-D ones. Families with work-group
	// granularity requirements round it up internally.
	N int64
}

// GenFamilies lists the generator families in stable order. The first
// six are affine — control flow and addresses are functions of IDs,
// constants and scalar arguments, so the static profiler covers them —
// while "datadep" routes a kernel-written buffer into its own
// addressing, forcing the interpreter fallback.
func GenFamilies() []string {
	return []string{"vecadd", "saxpy", "mm", "stencil", "transpose", "reduce", "datadep"}
}

// Generate synthesizes the workload for spec. Kernels are not added to
// the registry: the generator is a pure function, and equal specs
// produce Kernels with equal CacheKeys.
func Generate(spec GenSpec) (*Kernel, error) {
	n := spec.N
	if n <= 0 {
		return nil, fmt.Errorf("bench: generate %s: size %d not positive", spec.Family, n)
	}
	var k *Kernel
	switch spec.Family {
	case "vecadd":
		n = roundUp(n, 256)
		k = &Kernel{
			Fn: "gen_vecadd",
			Source: `
__kernel void gen_vecadd(__global const float* a, __global const float* b,
                         __global float* c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}`,
			Global: [3]int64{n},
			Bufs: []Buf{
				{Name: "a", Float: true, Len: n, Fill: FillNoise},
				{Name: "b", Float: true, Len: n, Fill: FillMod},
				{Name: "c", Float: true, Len: n},
			},
		}
	case "saxpy":
		n = roundUp(n, 256)
		k = &Kernel{
			Fn: "gen_saxpy",
			Source: `
__kernel void gen_saxpy(__global const float* x, __global float* y, int alpha) {
    int i = get_global_id(0);
    y[i] = (float)alpha * x[i] + y[i];
}`,
			Global: [3]int64{n},
			Bufs: []Buf{
				{Name: "x", Float: true, Len: n, Fill: FillNoise},
				{Name: "y", Float: true, Len: n, Fill: FillRamp},
			},
			Scalars: map[string]int64{"alpha": 3},
		}
	case "mm":
		n = roundUp(n, 16)
		k = &Kernel{
			Fn: "gen_mm", TwoD: true,
			Source: `
__kernel void gen_mm(__global const float* A, __global const float* B,
                     __global float* C, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
        acc += A[i * n + k] * B[k * n + j];
    }
    C[i * n + j] = acc;
}`,
			Global: [3]int64{n, n},
			Bufs: []Buf{
				{Name: "A", Float: true, Len: n * n, Fill: FillNoise},
				{Name: "B", Float: true, Len: n * n, Fill: FillMod},
				{Name: "C", Float: true, Len: n * n},
			},
			Scalars: map[string]int64{"n": n},
		}
	case "stencil":
		n = roundUp(n, 16)
		k = &Kernel{
			Fn: "gen_stencil", TwoD: true,
			Source: `
__kernel void gen_stencil(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i > 0 && i < n - 1 && j > 0 && j < n - 1) {
        out[i * n + j] = 0.25f * (in[(i - 1) * n + j] + in[(i + 1) * n + j]
                                + in[i * n + j - 1] + in[i * n + j + 1]);
    }
}`,
			Global: [3]int64{n, n},
			Bufs: []Buf{
				{Name: "in", Float: true, Len: n * n, Fill: FillNoise},
				{Name: "out", Float: true, Len: n * n},
			},
			Scalars: map[string]int64{"n": n},
		}
	case "transpose":
		n = roundUp(n, 16)
		k = &Kernel{
			Fn: "gen_transpose", TwoD: true,
			Source: `
__kernel void gen_transpose(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    out[j * n + i] = in[i * n + j];
}`,
			Global: [3]int64{n, n},
			Bufs: []Buf{
				{Name: "in", Float: true, Len: n * n, Fill: FillRamp},
				{Name: "out", Float: true, Len: n * n},
			},
			Scalars: map[string]int64{"n": n},
		}
	case "reduce":
		// One partial sum per work-group through a __local staging
		// array and a barrier tree: the launch must tile exactly.
		n = roundUp(n, 256)
		k = &Kernel{
			Fn: "gen_reduce",
			Source: `
__kernel void gen_reduce(__global const float* in, __global float* out) {
    __local float tmp[WG];
    int l = get_local_id(0);
    tmp[l] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = (int)get_local_size(0) / 2; s > 0; s /= 2) {
        if (l < s) {
            tmp[l] += tmp[l + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (l == 0) {
        out[get_group_id(0)] = tmp[0];
    }
}`,
			Global: [3]int64{n},
			Bufs: []Buf{
				{Name: "in", Float: true, Len: n, Fill: FillNoise},
				{Name: "out", Float: true, Len: n / 16},
			},
		}
	case "datadep":
		// The address of the second access reloads an index the kernel
		// itself just wrote: not statically derivable by construction,
		// so this family pins the interpreter fallback.
		n = roundUp(n, 256)
		k = &Kernel{
			Fn: "gen_datadep",
			Source: `
__kernel void gen_datadep(__global int* idx, __global float* a, int len) {
    int i = get_global_id(0);
    int j = idx[i];
    idx[i] = (j + 7) % len;
    a[idx[i]] = a[j] + 1.0f;
}`,
			Global: [3]int64{n},
			Bufs: []Buf{
				{Name: "idx", Float: false, Len: n, Fill: FillPerm, Mod: n},
				{Name: "a", Float: true, Len: n, Fill: FillMod},
			},
			Scalars: map[string]int64{"len": n},
		}
	default:
		return nil, fmt.Errorf("bench: generate: unknown family %q (see GenFamilies)", spec.Family)
	}
	k.Suite = "generated"
	k.Bench = "gen"
	k.Name = fmt.Sprintf("%s-n%d", spec.Family, n)
	// Bound the sweep by the launch: a work-group larger than the whole
	// NDRange would step outside the synthesized buffers.
	k.MaxWG = 256
	for k.MaxWG > k.NWI() {
		k.MaxWG /= 2
	}
	k.MinWG = 16
	if k.MinWG > k.MaxWG {
		k.MinWG = k.MaxWG
	}
	return k, nil
}

// GeneratedCorpus returns one kernel per family at a small and a medium
// size: the differential and fuzz harnesses use it to cover shapes the
// bundled suites miss.
func GeneratedCorpus() []*Kernel {
	var out []*Kernel
	for _, fam := range GenFamilies() {
		// 512 (not 256) as the larger size so families that round up to
		// work-group granularity still yield two distinct kernels.
		for _, n := range []int64{64, 512} {
			k, err := Generate(GenSpec{Family: fam, N: n})
			if err != nil {
				panic(err) // unreachable: every family accepts positive sizes
			}
			out = append(out, k)
		}
	}
	return out
}

func roundUp(n, m int64) int64 {
	if r := n % m; r != 0 {
		n += m - r
	}
	return n
}
