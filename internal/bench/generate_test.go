package bench

import (
	"testing"

	"repro/internal/interp"
)

// TestGenerateFamilies: every family at several sizes compiles,
// interprets under a sampled profile, and keys stably into the caches.
func TestGenerateFamilies(t *testing.T) {
	for _, fam := range GenFamilies() {
		// Sizes that stay distinct per family after granularity
		// rounding (1-D families round to 256, 2-D to 16).
		for _, n := range []int64{100, 300, 1000} {
			spec := GenSpec{Family: fam, N: n}
			k, err := Generate(spec)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, n, err)
			}
			t.Run(k.Name, func(t *testing.T) {
				if k.Suite != "generated" {
					t.Errorf("suite = %q, want generated", k.Suite)
				}
				for _, wg := range k.WGSizes() {
					f, err := k.Compile(wg)
					if err != nil {
						t.Fatalf("compile wg=%d: %v", wg, err)
					}
					prof, err := interp.ProfileKernel(f, k.Config(wg), 2)
					if err != nil {
						t.Fatalf("profile wg=%d: %v", wg, err)
					}
					if prof.WorkItems == 0 {
						t.Errorf("wg=%d: empty profile", wg)
					}
				}
				// Equal specs must produce equal cache keys (the
				// serving layer coalesces on them) …
				k2, err := Generate(spec)
				if err != nil {
					t.Fatal(err)
				}
				if k.CacheKey() != k2.CacheKey() {
					t.Error("same spec, different CacheKey")
				}
				// … and a different size a different key.
				k3, err := Generate(GenSpec{Family: fam, N: n + 512})
				if err != nil {
					t.Fatal(err)
				}
				if k.CacheKey() == k3.CacheKey() {
					t.Error("different size, same CacheKey")
				}
			})
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(GenSpec{Family: "vecadd", N: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Generate(GenSpec{Family: "nope", N: 64}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGeneratedCorpusShape(t *testing.T) {
	corpus := GeneratedCorpus()
	if want := len(GenFamilies()) * 2; len(corpus) != want {
		t.Fatalf("corpus size = %d, want %d", len(corpus), want)
	}
	seen := map[string]bool{}
	for _, k := range corpus {
		if seen[k.Name] {
			t.Errorf("duplicate corpus kernel %s", k.Name)
		}
		seen[k.Name] = true
	}
}

// TestGeneratedStaticCoverage pins the design intent: the affine
// families take the static profiler path, datadep falls back.
func TestGeneratedStaticCoverage(t *testing.T) {
	for _, fam := range GenFamilies() {
		k, err := Generate(GenSpec{Family: fam, N: 64})
		if err != nil {
			t.Fatal(err)
		}
		f, err := k.Compile(16)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		ok, reason := interp.StaticAnalyzable(f)
		if fam == "datadep" {
			if ok {
				t.Errorf("datadep should force the interpreter fallback")
			}
		} else if !ok {
			t.Errorf("%s should be statically analyzable, declined: %s", fam, reason)
		}
	}
}
