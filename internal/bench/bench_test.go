package bench

import (
	"math"
	"testing"

	"repro/internal/interp"
)

func TestCorpusComplete(t *testing.T) {
	rod := Suite("rodinia")
	if len(rod) != 45 {
		t.Errorf("rodinia kernels = %d, want 45 (Table 2)", len(rod))
	}
	poly := Suite("polybench")
	if len(poly) != 15 {
		t.Errorf("polybench kernels = %d, want 15", len(poly))
	}
	if len(All()) != 60 {
		t.Errorf("total = %d, want 60", len(All()))
	}
	// Table 2 benchmark groups.
	wantBenches := map[string]int{
		"backprop": 2, "bfs": 2, "b+tree": 2, "cfd": 4, "dwt2d": 4,
		"gaussian": 2, "hotspot": 1, "hotspot3D": 1, "hybridsort": 3,
		"kmeans": 2, "lavaMD": 1, "leukocyte": 3, "lud": 2, "nn": 1,
		"nw": 2, "particlefilter": 4, "pathfinder": 1, "srad": 6,
		"streamcluster": 2,
	}
	got := map[string]int{}
	for _, k := range rod {
		got[k.Bench]++
	}
	for b, n := range wantBenches {
		if got[b] != n {
			t.Errorf("bench %s: %d kernels, want %d", b, got[b], n)
		}
	}
}

// TestEveryKernelCompilesAndRuns is the corpus smoke test: every kernel
// must compile and execute its first two work-groups at the smallest and
// largest work-group sizes of its sweep.
func TestEveryKernelCompilesAndRuns(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.ID(), func(t *testing.T) {
			sizes := k.WGSizes()
			for _, wg := range []int64{sizes[0], sizes[len(sizes)-1]} {
				f, err := k.Compile(wg)
				if err != nil {
					t.Fatalf("wg=%d compile: %v", wg, err)
				}
				cfg := k.Config(wg)
				if _, err := interp.ProfileKernel(f, cfg, 2); err != nil {
					t.Fatalf("wg=%d run: %v", wg, err)
				}
			}
		})
	}
}

// TestEveryKernelFullRun executes every kernel over its whole NDRange at
// one medium work-group size — catches out-of-bounds accesses in late
// work-groups.
func TestEveryKernelFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run")
	}
	for _, k := range All() {
		k := k
		t.Run(k.ID(), func(t *testing.T) {
			sizes := k.WGSizes()
			wg := sizes[len(sizes)/2]
			f, err := k.Compile(wg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := interp.Run(f, k.Config(wg)); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

func TestGemmMatchesReference(t *testing.T) {
	k := Find("gemm", "gemm")
	if k == nil {
		t.Fatal("gemm missing")
	}
	const wg = 64
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := k.Config(wg)
	// Snapshot inputs.
	n := int(k.Scalars["ni"])
	A := append([]float64(nil), cfg.Buffers["A"].F...)
	B := append([]float64(nil), cfg.Buffers["B"].F...)
	C := append([]float64(nil), cfg.Buffers["C"].F...)
	if err := interp.Run(f, cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := C[i*n+j] * 0.5
			for kk := 0; kk < n; kk++ {
				want += 1.5 * float64(float32(A[i*n+kk])) * float64(float32(B[kk*n+j]))
			}
			got := cfg.Buffers["C"].F[i*n+j]
			if math.Abs(got-want) > 1e-2*(math.Abs(want)+1) {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestKmeansCenterMatchesReference(t *testing.T) {
	k := Find("kmeans", "center")
	if k == nil {
		t.Fatal("kmeans/center missing")
	}
	f, err := k.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := k.Config(64)
	feat := append([]float64(nil), cfg.Buffers["feature"].F...)
	clus := append([]float64(nil), cfg.Buffers["clusters"].F...)
	if err := interp.Run(f, cfg); err != nil {
		t.Fatal(err)
	}
	npoints, nclusters, nfeatures := 2048, 5, 8
	for p := 0; p < npoints; p += 97 {
		best, bestd := 0, math.Inf(1)
		for c := 0; c < nclusters; c++ {
			d := 0.0
			for ft := 0; ft < nfeatures; ft++ {
				diff := feat[p*nfeatures+ft] - clus[c*nfeatures+ft]
				d += diff * diff
			}
			if d < bestd {
				bestd, best = d, c
			}
		}
		if got := cfg.Buffers["membership"].I[p]; got != int64(best) {
			t.Fatalf("membership[%d] = %d, want %d", p, got, best)
		}
	}
}

func TestPathfinderMatchesReference(t *testing.T) {
	k := Find("pathfinder", "dynproc")
	if k == nil {
		t.Fatal("pathfinder missing")
	}
	const wg = 64
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := k.Config(wg)
	cols, iters := 2048, 8
	wall := append([]int64(nil), cfg.Buffers["wall"].I...)
	src := append([]int64(nil), cfg.Buffers["src"].I...)
	if err := interp.Run(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Reference: same wavefront with WG-local neighborhoods.
	prev := append([]int64(nil), src...)
	for it := 0; it < iters; it++ {
		next := make([]int64, cols)
		for g := 0; g < cols; g++ {
			l := g % wg
			left, right := prev[g], prev[g]
			if l > 0 {
				left = prev[g-1]
			}
			if l < wg-1 {
				right = prev[g+1]
			}
			best := prev[g]
			if left < best {
				best = left
			}
			if right < best {
				best = right
			}
			next[g] = best + wall[it*cols+g]
		}
		prev = next
	}
	for g := 0; g < cols; g += 131 {
		if got := cfg.Buffers["dst"].I[g]; got != prev[g] {
			t.Fatalf("dst[%d] = %d, want %d", g, got, prev[g])
		}
	}
}

func TestLocalSplit2D(t *testing.T) {
	k := &Kernel{TwoD: true}
	cases := map[int64][3]int64{
		16:  {4, 4, 1},
		64:  {8, 8, 1},
		256: {16, 16, 1},
	}
	for wg, want := range cases {
		if got := k.Local(wg); got != want {
			t.Errorf("Local(%d) = %v, want %v", wg, got, want)
		}
	}
	k1 := &Kernel{}
	if got := k1.Local(128); got != [3]int64{128, 1, 1} {
		t.Errorf("1D Local = %v", got)
	}
}

func TestConfigDeterministic(t *testing.T) {
	k := Find("hotspot", "hotspot")
	a := k.Config(64)
	b := k.Config(64)
	for name, buf := range a.Buffers {
		other := b.Buffers[name]
		for i := range buf.F {
			if buf.F[i] != other.F[i] {
				t.Fatalf("%s differs at %d", name, i)
			}
		}
	}
}
