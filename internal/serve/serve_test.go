package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.pool.stop(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, b)
		}
	}
	return resp
}

func TestPredictHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"bench": "hotspot", "kernel": "hotspot",
		"design": map[string]any{
			"wg_size": 64, "wi_pipeline": true, "pe": 4, "cu": 2, "mode": "pipeline",
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cycles <= 0 || pr.Seconds <= 0 {
		t.Fatalf("non-positive prediction: %+v", pr)
	}
	if pr.Cached {
		t.Error("first request reported cached")
	}
	// Same request again: must come out of the LRU cache, identically.
	resp2, body2 := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"bench": "hotspot", "kernel": "hotspot",
		"design": map[string]any{
			"wg_size": 64, "wi_pipeline": true, "pe": 4, "cu": 2, "mode": "pipeline",
		},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	var pr2 predictResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Cached {
		t.Error("second identical request missed the prediction cache")
	}
	if pr2.Cycles != pr.Cycles {
		t.Errorf("cached cycles %v != fresh cycles %v", pr2.Cycles, pr.Cycles)
	}
}

// TestPredictEveryKernel is the acceptance sweep: the service answers
// /v1/predict for every bundled Rodinia/PolyBench kernel.
func TestPredictEveryKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus sweep skipped in -short")
	}
	_, ts := newTestServer(t, Config{RequestTimeout: 2 * time.Minute})
	for _, k := range bench.All() {
		resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{
			"bench": k.Bench, "kernel": k.Name,
			"design": map[string]any{"wg_size": k.WGSizes()[0]},
		})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d, body %s", k.ID(), resp.StatusCode, body)
		}
	}
}

func TestPredictUnknownKernel404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"bench": "nope", "kernel": "missing",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown kernel") {
		t.Errorf("unhelpful 404 body: %s", body)
	}
}

func TestPredictMalformed400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		raw  string // used when non-empty
		body map[string]any
		want string
	}{
		"bad json":      {raw: "{not json", want: "bad request body"},
		"unknown field": {raw: `{"bench":"nn","kernel":"nn","bogus":1}`, want: "bogus"},
		"missing names": {body: map[string]any{}, want: "required"},
		"bad wg": {body: map[string]any{
			"bench": "nn", "kernel": "nn", "design": map[string]any{"wg_size": 57},
		}, want: "not in the kernel's sweep"},
		"bad mode": {body: map[string]any{
			"bench": "nn", "kernel": "nn", "design": map[string]any{"mode": "warp"},
		}, want: "barrier"},
		"pe too big": {body: map[string]any{
			"bench": "nn", "kernel": "nn",
			"design": map[string]any{"wi_pipeline": true, "pe": 1024},
		}, want: "out of range"},
		"pe without pipeline": {body: map[string]any{
			"bench": "nn", "kernel": "nn", "design": map[string]any{"pe": 4},
		}, want: "wi_pipeline"},
		"bad platform": {body: map[string]any{
			"bench": "nn", "kernel": "nn", "platform": "stratix",
		}, want: "unknown platform"},
	} {
		t.Run(name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.raw != "" {
				r, err := http.Post(ts.URL+"/v1/predict", "application/json",
					strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				defer r.Body.Close()
				body, _ = io.ReadAll(r.Body)
				resp = r
			} else {
				resp, body = postJSON(t, ts.URL+"/v1/predict", tc.body)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("400 body %q missing %q", body, tc.want)
			}
		})
	}
}

func TestPredictTimeout504(t *testing.T) {
	// A deadline too short for any analysis: the handler must answer
	// 504, not hang or 200.
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/v1/predict", map[string]any{
		"bench": "srad", "kernel": "srad",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("unhelpful 504 body: %s", body)
	}
}

func TestKernelsListing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out struct {
		Count   int          `json:"count"`
		Kernels []kernelInfo `json:"kernels"`
	}
	resp := getJSON(t, ts.URL+"/v1/kernels", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Count != len(bench.All()) || len(out.Kernels) != out.Count {
		t.Fatalf("count = %d, want %d", out.Count, len(bench.All()))
	}
	for _, k := range out.Kernels {
		if k.ID == "" || len(k.WGSizes) == 0 || k.DesignPoints == 0 {
			t.Fatalf("degenerate kernel info: %+v", k)
		}
	}
}

func waitJob(t *testing.T, url string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		resp := getJSON(t, url, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status = %d", resp.StatusCode)
		}
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", v.ID, v.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestExploreJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/explore", map[string]any{
		"bench": "nn", "kernel": "nn",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != acc.URL {
		t.Errorf("Location %q != url %q", loc, acc.URL)
	}
	v := waitJob(t, ts.URL+acc.URL, 2*time.Minute)
	if v.State != JobDone {
		t.Fatalf("job state = %s (%s)", v.State, v.Error)
	}
	if v.Summary == nil || v.Summary.Points == 0 || v.Summary.Best == nil {
		t.Fatalf("empty summary: %+v", v.Summary)
	}
	if v.Summary.Best.Est <= 0 {
		t.Errorf("best estimate %v", v.Summary.Best.Est)
	}
	if len(v.Summary.Top) == 0 || len(v.Summary.Top) > 10 {
		t.Errorf("top size %d", len(v.Summary.Top))
	}
}

func TestJobUnknown404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := getJSON(t, ts.URL+"/v1/jobs/j999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestExploreUnknownKernel404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/explore", map[string]any{
		"bench": "nope", "kernel": "nn",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentExploreJobs races several jobs over the shared prep
// cache and worker pool; run under -race in CI.
func TestConcurrentExploreJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	kernels := [][2]string{
		{"nn", "nn"}, {"kmeans", "swap"}, {"gemm", "gemm"},
		{"nn", "nn"}, {"kmeans", "swap"}, {"gemm", "gemm"},
	}
	urls := make([]string, len(kernels))
	var wg sync.WaitGroup
	for i, kk := range kernels {
		wg.Add(1)
		go func(i int, benchName, kernel string) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/explore", map[string]any{
				"bench": benchName, "kernel": kernel,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d body %s", i, resp.StatusCode, body)
				return
			}
			var acc struct {
				URL string `json:"url"`
			}
			if err := json.Unmarshal(body, &acc); err != nil {
				t.Error(err)
				return
			}
			urls[i] = acc.URL
		}(i, kk[0], kk[1])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, u := range urls {
		v := waitJob(t, ts.URL+u, 3*time.Minute)
		if v.State != JobDone {
			t.Errorf("job %d (%s): state %s (%s)", i, v.Kernel, v.State, v.Error)
		}
	}
}

// TestGracefulDrain submits jobs, fires the shutdown signal and checks
// that (a) every accepted job still finishes, (b) new work is refused,
// and (c) Serve returns within the drain budget.
func TestGracefulDrain(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := New(Config{
		Addr: "127.0.0.1:0", Workers: 2, DrainTimeout: 2 * time.Minute,
		Logger: log,
	})
	if _, err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()
	base := "http://" + s.Addr()

	// Occupy the pool with real explorations.
	var urls []string
	for _, kk := range [][2]string{{"nn", "nn"}, {"kmeans", "swap"}, {"gemm", "gemm"}} {
		resp, body := postJSON(t, base+"/v1/explore", map[string]any{
			"bench": kk[0], "kernel": kk[1],
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		urls = append(urls, acc.ID)
	}

	cancel() // SIGTERM equivalent
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(3 * time.Minute):
		t.Fatal("Serve did not drain in time")
	}
	// Every accepted job ran to completion (none canceled or dropped).
	for _, id := range urls {
		j, ok := s.pool.get(id)
		if !ok {
			t.Fatalf("job %s dropped during drain", id)
		}
		if v := j.view(); v.State != JobDone {
			t.Errorf("job %s state after drain = %s (%s)", id, v.State, v.Error)
		}
	}
	// The pool refuses new intake after drain.
	if _, err := s.pool.submit(exploreRequest{Bench: "nn", Kernel: "nn", Platform: "virtex7"}); err == nil {
		t.Error("pool accepted a job after drain")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate traffic: one miss, one hit, one 404.
	req := map[string]any{
		"bench": "nn", "kernel": "nn",
		"design": map[string]any{"wg_size": 16},
	}
	postJSON(t, ts.URL+"/v1/predict", req)
	postJSON(t, ts.URL+"/v1/predict", req)
	postJSON(t, ts.URL+"/v1/predict", map[string]any{"bench": "x", "kernel": "y"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	for _, want := range []string{
		`flexcl_requests_total{route="/v1/predict",code="200"} 2`,
		`flexcl_requests_total{route="/v1/predict",code="404"} 1`,
		`# TYPE flexcl_request_seconds histogram`,
		`flexcl_request_seconds_count{route="/v1/predict"} 3`,
		"flexcl_predict_cache_hits 1",
		"flexcl_predict_cache_misses 1",
		"flexcl_predict_cache_hit_ratio 0.5",
		"flexcl_jobs_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, out)
		}
	}
	// expvar endpoint serves JSON including our namespace.
	resp2, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	if _, ok := vars["flexcl"]; !ok {
		t.Error("expvar missing flexcl namespace")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestQueueFull503(t *testing.T) {
	// One worker, depth 1: the third submission while the first job
	// blocks must be refused with 503 — backpressure, not unbounded
	// memory.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Park the worker on a slow simulated exploration.
	resp, body := postJSON(t, ts.URL+"/v1/explore", map[string]any{
		"bench": "gemm", "kernel": "gemm", "sim": true, "sim_max_groups": 4,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	got503 := false
	for i := 0; i < 10 && !got503; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/explore", map[string]any{
			"bench": "nn", "kernel": "nn",
		})
		if resp.StatusCode == http.StatusServiceUnavailable {
			got503 = true
		}
	}
	if !got503 {
		t.Error("queue never refused work")
	}
	_ = s
}

func TestRouteLabelBounded(t *testing.T) {
	if got := route("/v1/jobs/j000123"); got != "/v1/jobs/{id}" {
		t.Errorf("route = %q", got)
	}
	if got := route("/v1/predict"); got != "/v1/predict" {
		t.Errorf("route = %q", got)
	}
}
