// Package serve implements flexcl-serve: a long-running HTTP JSON
// service in front of the FlexCL analytical model and design-space
// explorer. The point of the paper's model is that prediction is cheap
// enough to answer "what will this kernel/config cost?" interactively;
// this service is that interactive surface.
//
// Endpoints:
//
//	POST /v1/predict   — one kernel+design prediction (synchronous)
//	POST /v1/explore   — enqueue an async design-space exploration job
//	GET  /v1/jobs/{id} — poll an exploration job
//	GET  /v1/kernels   — list the bundled Rodinia/PolyBench corpus
//	GET  /metrics      — Prometheus text exposition
//	GET  /debug/vars   — expvar JSON
//	GET  /healthz      — liveness
//
// Explorations run on a bounded worker pool that reuses one
// dse.PrepCache across all requests; predictions additionally hit an
// LRU cache keyed by (kernel source hash, platform, design). Requests
// carry deadlines (504 on expiry) and SIGTERM drains in-flight work
// before the process exits.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
	"repro/internal/obs"
)

// Config tunes the service.
type Config struct {
	// Addr is the listen address (":0" picks an ephemeral port).
	Addr string
	// Workers bounds concurrent exploration jobs (0 = 2).
	Workers int
	// DSEWorkers shards each exploration's design points
	// (0 = GOMAXPROCS/Workers, at least 1).
	DSEWorkers int
	// QueueDepth bounds queued-but-not-running jobs (0 = 64).
	QueueDepth int
	// PredCacheSize bounds the LRU prediction cache (0 = 4096 entries;
	// negative disables caching).
	PredCacheSize int
	// RequestTimeout is the synchronous-endpoint deadline
	// (0 = 10 s); expired requests answer 504.
	RequestTimeout time.Duration
	// ExploreTimeout is the per-job deadline (0 = 5 min).
	ExploreTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (0 = 30 s).
	DrainTimeout time.Duration
	// MaxRetainedJobs bounds the finished-job history (0 = 1024).
	MaxRetainedJobs int
	// Logger receives request and job logs (nil = slog.Default()).
	Logger *slog.Logger
	// Namespace prefixes exported metrics (empty = "flexcl").
	Namespace string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DSEWorkers <= 0 {
		c.DSEWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.DSEWorkers < 1 {
			c.DSEWorkers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PredCacheSize == 0 {
		c.PredCacheSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ExploreTimeout <= 0 {
		c.ExploreTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Namespace == "" {
		c.Namespace = "flexcl"
	}
	return c
}

// Server is the flexcl prediction/DSE service.
type Server struct {
	cfg  Config
	log  *slog.Logger
	reg  *obs.Registry
	prep *dse.PrepCache
	pred *dse.PredCache
	pool *jobPool

	mu sync.Mutex
	ln net.Listener
}

// New builds a Server from cfg; call Listen + Serve (or ListenAndServe)
// to run it, or Handler to mount it in a test server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		log:  cfg.Logger,
		reg:  obs.NewRegistry(cfg.Namespace),
		prep: dse.NewPrepCache(),
		pred: dse.NewPredCache(cfg.PredCacheSize),
	}
	s.pool = newJobPool(s, cfg.Workers, cfg.QueueDepth, cfg.MaxRetainedJobs)
	s.reg.Help("requests_total", "HTTP requests by route and status code.")
	s.reg.Help("request_seconds", "HTTP request latency by route.")
	s.reg.Help("predict_cache_hit_ratio", "LRU prediction cache hit ratio since start.")
	s.reg.Help("jobs_inflight", "Exploration jobs currently queued or running.")
	s.reg.PublishExpvar(cfg.Namespace)
	return s
}

// Metrics returns the server's metric registry (tests and embedders).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the full middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return obs.AccessLog(s.log, s.instrument(s.deadline(mux)))
}

// deadline attaches the per-request timeout to the request context.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// route maps a request path to its bounded metric label (job IDs must
// not explode the label space).
func route(path string) string {
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	return path
}

// instrument records the request counter and latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := obs.NewResponseRecorder(w)
		next.ServeHTTP(rec, r)
		rt := route(r.URL.Path)
		s.reg.Counter("requests_total",
			fmt.Sprintf(`route="%s",code="%d"`, rt, rec.Code)).Inc()
		s.reg.Histogram("request_seconds", fmt.Sprintf(`route="%s"`, rt)).
			Observe(time.Since(t0).Seconds())
	})
}

// Listen binds the configured address and returns the bound address
// (useful with ":0").
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the service until ctx is cancelled (SIGTERM in main), then
// drains gracefully: the listener closes, in-flight HTTP requests
// finish, and queued + running exploration jobs complete — all within
// DrainTimeout, after which remaining jobs are cancelled hard.
func (s *Server) Serve(ctx context.Context) error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("serve: Serve called before Listen")
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Info("listening", "addr", ln.Addr().String(),
		"workers", s.cfg.Workers, "dse_workers", s.cfg.DSEWorkers,
		"pred_cache", s.pred.Cap())

	select {
	case err := <-errc:
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		s.pool.stop(sctx)
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining", "timeout", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if derr := s.pool.stop(dctx); derr != nil && err == nil {
		err = derr
	}
	s.log.Info("drained")
	return err
}

// Close drains the job pool without an HTTP listener: queued and
// running explorations finish (or are cancelled when ctx expires).
// It is the shutdown path for embedders that mounted Handler() in
// their own server (httptest fixtures, flexcl-check) instead of
// calling Serve.
func (s *Server) Close(ctx context.Context) error {
	return s.pool.stop(ctx)
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	return s.Serve(ctx)
}

// ---- request/response types ----

type apiError struct {
	Error string `json:"error"`
}

// DesignJSON is the wire form of a model.Design.
type DesignJSON struct {
	WGSize     int64  `json:"wg_size"`
	WIPipeline bool   `json:"wi_pipeline"`
	PE         int    `json:"pe"`
	CU         int    `json:"cu"`
	Mode       string `json:"mode"` // "barrier" | "pipeline"
}

func designToJSON(d model.Design) DesignJSON {
	return DesignJSON{
		WGSize: d.WGSize, WIPipeline: d.WIPipeline, PE: d.PE, CU: d.CU,
		Mode: d.Mode.String(),
	}
}

type predictRequest struct {
	Bench    string     `json:"bench"`
	Kernel   string     `json:"kernel"`
	Platform string     `json:"platform"`
	Design   DesignJSON `json:"design"`
}

type predictResponse struct {
	Bench         string     `json:"bench"`
	Kernel        string     `json:"kernel"`
	Platform      string     `json:"platform"`
	Design        DesignJSON `json:"design"`
	EffectiveMode string     `json:"effective_mode"`
	Cycles        float64    `json:"cycles"`
	Seconds       float64    `json:"seconds"`
	IIComp        int        `json:"ii_comp"`
	Depth         int        `json:"pipeline_depth"`
	NPE           int        `json:"n_pe"`
	NCU           int        `json:"n_cu"`
	Cached        bool       `json:"cached"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeStrict decodes a JSON body, rejecting unknown fields and
// trailing garbage — both answer 400.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// resolveKernel maps (bench, kernel) to the corpus entry: empty names
// are 400, unknown kernels 404.
func resolveKernel(w http.ResponseWriter, benchName, kernelName string) (*bench.Kernel, bool) {
	if benchName == "" || kernelName == "" {
		writeErr(w, http.StatusBadRequest, "bench and kernel are required")
		return nil, false
	}
	k := bench.Find(benchName, kernelName)
	if k == nil {
		writeErr(w, http.StatusNotFound, "unknown kernel %s/%s (see GET /v1/kernels)",
			benchName, kernelName)
		return nil, false
	}
	return k, true
}

// resolvePlatform maps a platform name ("" = virtex7) to its catalogue
// entry, answering 400 for unknown names.
func resolvePlatform(w http.ResponseWriter, name string) (*device.Platform, bool) {
	if name == "" {
		name = "virtex7"
	}
	p, ok := device.Platforms()[name]
	if !ok {
		known := make([]string, 0, len(device.Platforms()))
		for n := range device.Platforms() {
			known = append(known, n)
		}
		writeErr(w, http.StatusBadRequest, "unknown platform %q (known: %s)",
			name, strings.Join(known, ", "))
		return nil, false
	}
	return p, true
}

// resolveDesign validates the wire design against the kernel's sweep
// bounds and the platform's resource limits, applying friendly
// defaults (zero values mean "the unoptimized choice").
func resolveDesign(w http.ResponseWriter, k *bench.Kernel, p *device.Platform, dj DesignJSON) (model.Design, bool) {
	var zero model.Design
	wgs := k.WGSizes()
	if dj.WGSize == 0 {
		dj.WGSize = wgs[0]
	}
	valid := false
	for _, wg := range wgs {
		if wg == dj.WGSize {
			valid = true
			break
		}
	}
	if !valid {
		writeErr(w, http.StatusBadRequest, "wg_size %d not in the kernel's sweep %v",
			dj.WGSize, wgs)
		return zero, false
	}
	if dj.PE == 0 {
		dj.PE = 1
	}
	if dj.CU == 0 {
		dj.CU = 1
	}
	if dj.PE < 1 || dj.PE > p.MaxPE {
		writeErr(w, http.StatusBadRequest, "pe %d out of range [1, %d]", dj.PE, p.MaxPE)
		return zero, false
	}
	if dj.CU < 1 || dj.CU > p.MaxCU {
		writeErr(w, http.StatusBadRequest, "cu %d out of range [1, %d]", dj.CU, p.MaxCU)
		return zero, false
	}
	if dj.PE > 1 && !dj.WIPipeline {
		writeErr(w, http.StatusBadRequest,
			"pe %d requires wi_pipeline (parallel PEs share the pipeline control)", dj.PE)
		return zero, false
	}
	var mode model.CommMode
	switch dj.Mode {
	case "", "barrier":
		mode = model.ModeBarrier
	case "pipeline":
		mode = model.ModePipeline
	default:
		writeErr(w, http.StatusBadRequest, "mode %q must be \"barrier\" or \"pipeline\"", dj.Mode)
		return zero, false
	}
	return model.Design{
		WGSize: dj.WGSize, WIPipeline: dj.WIPipeline, PE: dj.PE, CU: dj.CU,
		Mode: mode,
	}, true
}

// predict computes (or recalls) one estimate. The analysis runs in its
// own goroutine so an expired request context answers 504 immediately;
// the abandoned computation still lands in the prep cache for the
// retry.
func (s *Server) predict(ctx context.Context, k *bench.Kernel, p *device.Platform, d model.Design) (*model.Estimate, bool, error) {
	key := k.SourceHash() + "|" + p.Name + "|" + d.String()
	if est, ok := s.pred.Get(key); ok {
		return est, true, nil
	}
	type out struct {
		est *model.Estimate
		err error
	}
	ch := make(chan out, 1)
	go func() {
		an, err := s.prep.Analysis(k, p, d.WGSize)
		if err != nil {
			ch <- out{nil, err}
			return
		}
		ch <- out{an.Predict(d), nil}
	}()
	select {
	case <-ctx.Done():
		return nil, false, ctx.Err()
	case o := <-ch:
		if o.err != nil {
			return nil, false, o.err
		}
		s.pred.Put(key, o.est)
		return o.est, false, nil
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	k, ok := resolveKernel(w, req.Bench, req.Kernel)
	if !ok {
		return
	}
	p, ok := resolvePlatform(w, req.Platform)
	if !ok {
		return
	}
	d, ok := resolveDesign(w, k, p, req.Design)
	if !ok {
		return
	}
	est, cached, err := s.predict(r.Context(), k, p, d)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeErr(w, http.StatusGatewayTimeout, "prediction timed out after %v",
				s.cfg.RequestTimeout)
			return
		}
		writeErr(w, http.StatusInternalServerError, "analysis failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Bench:         k.Bench,
		Kernel:        k.Name,
		Platform:      p.Name,
		Design:        designToJSON(d),
		EffectiveMode: est.Mode.String(),
		Cycles:        est.Cycles,
		Seconds:       est.Seconds,
		IIComp:        est.IIComp,
		Depth:         est.Depth,
		NPE:           est.NPE,
		NCU:           est.NCU,
		Cached:        cached,
	})
}

type kernelInfo struct {
	ID           string  `json:"id"`
	Suite        string  `json:"suite"`
	Bench        string  `json:"bench"`
	Kernel       string  `json:"kernel"`
	WorkItems    int64   `json:"work_items"`
	WGSizes      []int64 `json:"wg_sizes"`
	DesignPoints int     `json:"design_points"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	p := device.Virtex7()
	all := bench.All()
	out := make([]kernelInfo, 0, len(all))
	for _, k := range all {
		out = append(out, kernelInfo{
			ID:           k.ID(),
			Suite:        k.Suite,
			Bench:        k.Bench,
			Kernel:       k.Name,
			WorkItems:    k.NWI(),
			WGSizes:      k.WGSizes(),
			DesignPoints: len(dse.Space(k, p)),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"kernels": out, "count": len(out)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Fold the cache snapshots into gauges at scrape time so the text
	// endpoint always reflects the current counters.
	ps := s.pred.Stats()
	s.reg.Gauge("predict_cache_hits", "").Set(float64(ps.Hits))
	s.reg.Gauge("predict_cache_misses", "").Set(float64(ps.Misses))
	s.reg.Gauge("predict_cache_evictions", "").Set(float64(ps.Evictions))
	s.reg.Gauge("predict_cache_entries", "").Set(float64(s.pred.Len()))
	s.reg.Gauge("predict_cache_hit_ratio", "").Set(ps.HitRatio())
	qs := s.prep.Stats()
	s.reg.Gauge("prep_cache_hits", "").Set(float64(qs.Hits))
	s.reg.Gauge("prep_cache_misses", "").Set(float64(qs.Misses))
	s.reg.Gauge("prep_cache_entries", "").Set(float64(s.prep.Len()))
	s.pool.exportMetrics(s.reg)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
