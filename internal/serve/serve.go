// Package serve implements flexcl-serve: a long-running HTTP JSON
// service in front of the FlexCL analytical model and design-space
// explorer. The point of the paper's model is that prediction is cheap
// enough to answer "what will this kernel/config cost?" interactively;
// this service is that interactive surface.
//
// Endpoints (v2 is the current surface; v1 is frozen and served by thin
// adapters over the same handlers):
//
//	POST /v2/predict        — one kernel+design prediction (synchronous)
//	POST /v2/predict:batch  — N (kernel, design) pairs, per-item results
//	POST /v2/explore        — enqueue an async design-space exploration job
//	GET  /v2/jobs/{id}      — poll an exploration job
//	GET  /v2/kernels        — list the bundled Rodinia/PolyBench corpus
//	GET  /v2/cluster        — fleet view: ring version, peer health
//	POST /v2/cluster/prep   — replica-to-replica prep forwarding
//	POST /v1/predict        — legacy predict (flat bench/kernel fields)
//	POST /v1/explore        — legacy explore
//	GET  /v1/jobs/{id}      — legacy job poll
//	GET  /v1/kernels        — legacy corpus listing
//	GET  /metrics           — Prometheus text exposition
//	GET  /debug/vars        — expvar JSON
//	GET  /healthz           — liveness
//
// Synchronous predictions flow through a two-lane admission gate
// (interactive ahead of bulk) that sheds over-capacity load with 429 +
// Retry-After, and through a singleflight prep cache that coalesces
// concurrent compile+analyze work for the same kernel source into one
// execution. Explorations run on a bounded worker pool sharing the same
// dse.PrepCache; predictions additionally hit an LRU cache keyed by
// (kernel workload hash, platform, design). Requests carry deadlines
// (504 on expiry) propagated as context.Context through compile →
// analyze → predict, and SIGTERM drains in-flight work before the
// process exits. See docs/API.md for the wire reference.
//
// With Config.Peers set, N replicas form a consistent-hash fleet
// (internal/cluster): each prep key has one owning replica, non-owners
// fetch the owner's record through the prep cache's peer tier, and the
// fleet compiles each distinct kernel once. The /v1 surface is frozen
// and deprecated: every /v1 response carries Deprecation and Link
// (successor-version) headers pointing at its /v2 equivalent.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/telemetry"
)

// Config tunes the service.
type Config struct {
	// Addr is the listen address (":0" picks an ephemeral port).
	Addr string
	// Workers bounds concurrent exploration jobs (0 = 2).
	Workers int
	// DSEWorkers shards each exploration's design points
	// (0 = GOMAXPROCS/Workers, at least 1).
	DSEWorkers int
	// QueueDepth bounds queued-but-not-running jobs (0 = 64).
	QueueDepth int
	// MaxConcurrentPredicts bounds synchronous prediction analyses
	// executing at once, across both admission lanes (0 = GOMAXPROCS).
	MaxConcurrentPredicts int
	// PredictQueueDepth bounds each admission lane's wait queue
	// (0 = 128); requests beyond it are shed with 429 + Retry-After.
	PredictQueueDepth int
	// RetryAfter is the client backoff hint on shed responses (0 = 1s).
	RetryAfter time.Duration
	// MaxBatchItems bounds the items of one /v2/predict:batch request
	// (0 = 256).
	MaxBatchItems int
	// PredCacheSize bounds the LRU prediction cache (0 = 4096 entries;
	// negative disables caching).
	PredCacheSize int
	// PrepCacheSize bounds completed compile+analyze entries in the
	// singleflight prep cache (0 = dse.DefaultPrepCapacity; negative =
	// unbounded). In-flight fills are never evicted.
	PrepCacheSize int
	// ArtifactDir, when non-empty, persists compile+analyze results to
	// this directory and answers prep-cache misses from it, so restarts
	// (and other replicas sharing the directory) start warm. Corrupt or
	// stale files degrade to recompute, never errors.
	ArtifactDir string
	// SelfURL is this replica's advertised base URL in a clustered
	// deployment (e.g. "http://replica-0:8080"); required when Peers is
	// non-empty. Embedders that learn their URL only after binding a
	// listener (httptest fleets) may instead call ConfigureCluster.
	SelfURL string
	// Peers lists the fleet's replica base URLs (with or without
	// SelfURL — it is added when missing). Empty, or fewer than two
	// distinct members, leaves clustering off and the single-node
	// behavior unchanged.
	Peers []string
	// PeerTimeout bounds one forwarded prep exchange against a peer
	// (0 = 15 s). It must cover the owner's cold compile+analyze, not
	// just the network hop.
	PeerTimeout time.Duration
	// RequestTimeout is the synchronous-endpoint deadline
	// (0 = 10 s); expired requests answer 504.
	RequestTimeout time.Duration
	// BatchTimeout is the /v2/predict:batch deadline (0 = 2 min) —
	// batches amortize more work per request than single predicts.
	BatchTimeout time.Duration
	// ExploreTimeout is the per-job deadline (0 = 5 min).
	ExploreTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (0 = 30 s).
	DrainTimeout time.Duration
	// MaxRetainedJobs bounds the finished-job history (0 = 1024).
	MaxRetainedJobs int
	// Logger receives request and job logs (nil = slog.Default()).
	Logger *slog.Logger
	// Namespace prefixes exported metrics (empty = "flexcl").
	Namespace string
	// TraceCapacity bounds the in-memory ring of finished request
	// traces served on /debug/traces (0 = 256; negative disables
	// tracing entirely — spans become no-ops).
	TraceCapacity int
	// TraceKeepSlowest additionally retains the N slowest traces even
	// after they rotate out of the recent ring (0 = 32).
	TraceKeepSlowest int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DSEWorkers <= 0 {
		c.DSEWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.DSEWorkers < 1 {
			c.DSEWorkers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrentPredicts <= 0 {
		c.MaxConcurrentPredicts = runtime.GOMAXPROCS(0)
	}
	if c.PredictQueueDepth <= 0 {
		c.PredictQueueDepth = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.PredCacheSize == 0 {
		c.PredCacheSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Minute
	}
	if c.ExploreTimeout <= 0 {
		c.ExploreTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Namespace == "" {
		c.Namespace = "flexcl"
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 256
	}
	if c.TraceKeepSlowest == 0 {
		c.TraceKeepSlowest = 32
	}
	return c
}

// Server is the flexcl prediction/DSE service.
type Server struct {
	cfg       Config
	log       *slog.Logger
	reg       *obs.Registry
	prep      *dse.PrepCache
	pred      *dse.PredCache
	artifacts *artifact.Store
	cluster   *cluster.Cluster
	pool      *jobPool
	admit     *admitter
	fwdAdmit  *admitter
	tracer    *telemetry.Tracer

	mu sync.Mutex
	ln net.Listener
}

// New builds a Server from cfg; call Listen + Serve (or ListenAndServe)
// to run it, or Handler to mount it in a test server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var store *artifact.Store
	if cfg.ArtifactDir != "" {
		var err error
		store, err = artifact.Open(cfg.ArtifactDir)
		if err != nil {
			// A broken artifact directory must not keep the service
			// down — it only loses the warm start.
			cfg.Logger.Warn("artifact store disabled", "dir", cfg.ArtifactDir, "err", err)
			store = nil
		}
	}
	// The cluster is the prep cache's peer tier; unconfigured (the
	// single-node default) it is inert and every key is local.
	cl := cluster.New(cluster.Options{Timeout: cfg.PeerTimeout})
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		reg:       obs.NewRegistry(cfg.Namespace),
		prep:      dse.NewPrepCacheOpts(dse.PrepCacheOptions{Capacity: cfg.PrepCacheSize, Store: store, Peer: cl}),
		pred:      dse.NewPredCache(cfg.PredCacheSize),
		artifacts: store,
		cluster:   cl,
		admit:     newAdmitter(cfg.MaxConcurrentPredicts, cfg.PredictQueueDepth),
		// Forwarded preps admit through their own slot pool, disjoint
		// from the predict lanes. A forwarded prep is a leaf of the
		// fleet's wait graph (the owner never forwards again), while a
		// local predict may hold its slot across a forward to a peer —
		// sharing one pool lets every replica's slots fill with requests
		// that are all waiting on each other's queues, a distributed
		// deadlock that a single-CPU fleet (one slot per replica) hits
		// almost immediately.
		fwdAdmit:  newAdmitter(cfg.MaxConcurrentPredicts, cfg.PredictQueueDepth),
	}
	if len(cfg.Peers) > 0 {
		if err := s.ConfigureCluster(cfg.SelfURL, cfg.Peers); err != nil {
			// A misconfigured fleet must not keep the service down — it
			// only loses the compile-once property.
			cfg.Logger.Warn("clustering disabled", "err", err)
		}
	}
	s.tracer = telemetry.New(telemetry.Options{
		Capacity:    cfg.TraceCapacity,
		KeepSlowest: cfg.TraceKeepSlowest,
		StageObserver: func(stage string, seconds float64) {
			s.reg.Histogram("stage_seconds", obs.Label("stage", stage)).Observe(seconds)
		},
	})
	s.pool = newJobPool(s, cfg.Workers, cfg.QueueDepth, cfg.MaxRetainedJobs)
	s.reg.Help("requests_total", "HTTP requests by route and status code.")
	s.reg.Help("request_seconds", "HTTP request latency by route.")
	s.reg.Help("predict_cache_hit_ratio", "LRU prediction cache hit ratio since start.")
	s.reg.Help("jobs_inflight", "Exploration jobs currently queued or running.")
	s.reg.Help("predict_queue_depth", "Requests waiting in the admission queue, by lane.")
	s.reg.Help("predict_queue_wait_seconds", "Time spent queued for admission, by lane.")
	s.reg.Help("predict_shed_total", "Requests shed (429) because an admission lane was full.")
	s.reg.Help("predict_admitted_total", "Requests admitted to the prediction path, by lane.")
	s.reg.Help("predict_source_total", "Predictions by answer source (pred/prep/coalesced/miss).")
	s.reg.Help("prep_cache_computes", "Actual compile+analyze executions performed by the prep cache.")
	s.reg.Help("prep_cache_coalesced", "Lookups that joined an in-flight compile+analyze instead of duplicating it.")
	s.reg.Help("prep_cache_evictions", "Completed prep-cache entries dropped by the capacity bound.")
	s.reg.Help("prep_cache_disk_hits", "Prep-cache fills answered by the artifact store instead of a compile+analyze.")
	s.reg.Help("prep_cache_peer_hits", "Prep-cache fills answered by the key's owning replica instead of a local compile+analyze.")
	s.reg.Help("cluster_enabled", "1 when this replica is part of a multi-member fleet.")
	s.reg.Help("cluster_peers", "Fleet membership size, including this replica.")
	s.reg.Help("cluster_generation", "Membership reconfigurations applied to the ring since start.")
	s.reg.Help("cluster_local_fallbacks", "Peer-owned keys computed locally because the owner was down or returned an unusable record.")
	s.reg.Help("cluster_peer_healthy", "1 when the peer is outside its failure cooldown, by peer.")
	s.reg.Help("cluster_forwards", "Prep fetches attempted against each peer.")
	s.reg.Help("cluster_forward_hits", "Forwards that returned the owner's record, by peer.")
	s.reg.Help("cluster_forward_sheds", "Forwards the owner refused with 429, by peer.")
	s.reg.Help("cluster_forward_errors", "Forwards that failed in transport or decoding, by peer.")
	s.reg.Help("cluster_preps_served", "Forwarded preps this replica answered as owner, by admission lane.")
	s.reg.Help("forward_queue_wait_seconds", "Time forwarded preps spent queued for the forward slot pool, by lane.")
	s.reg.Help("forward_shed_total", "Forwarded preps shed (429) because a forward lane was full.")
	s.reg.Help("forward_admitted_total", "Forwarded preps admitted to the owner's compute path, by lane.")
	s.reg.Help("artifact_hits", "Artifact-store loads that returned a valid record.")
	s.reg.Help("artifact_misses", "Artifact-store loads that fell through to recompute (absent or invalid file).")
	s.reg.Help("artifact_writes", "Analysis records persisted to the artifact store.")
	s.reg.Help("artifact_write_errors", "Failed artifact-store writes (e.g. read-only directory); the computed result is kept.")
	s.reg.Help("artifact_corrupt", "Corrupt, truncated or version-mismatched artifact files deleted on load.")
	s.reg.Help("batch_items_total", "Batch prediction items by outcome.")
	s.reg.Help("stage_seconds", "Per-pipeline-stage latency, fed from finished request traces.")
	s.reg.PublishExpvar(cfg.Namespace)
	return s
}

// Tracer exposes the server's trace ring (CLIs and the debug listener).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Metrics returns the server's metric registry (tests and embedders).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the full middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("POST /v2/predict", s.handleV2Predict)
	mux.HandleFunc("POST /v2/predict:batch", s.handleV2Batch)
	mux.HandleFunc("POST /v2/explore", s.handleV2Explore)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleV2Job)
	mux.HandleFunc("GET /v2/kernels", s.handleKernels)
	mux.HandleFunc("GET /v2/cluster", s.handleClusterStatus)
	mux.HandleFunc("POST "+cluster.PrepPath, s.handleClusterPrep)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.tracer.HandleList)
	mux.HandleFunc("GET /debug/traces/{id}", s.tracer.HandleGet)
	return obs.AccessLog(s.log, s.trace(s.instrument(s.deadline(deprecateV1(mux)))))
}

// deprecateV1 stamps every /v1 response with the standard deprecation
// headers (RFC 8594 family): Deprecation marks the surface as frozen,
// and Link names the /v2 successor of the exact resource requested.
// Bodies are untouched — v1 responses stay byte-identical; only headers
// announce the migration path (docs/API.md, "v1 deprecation").
func deprecateV1(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link",
				fmt.Sprintf("</v2%s>; rel=\"successor-version\"", strings.TrimPrefix(r.URL.Path, "/v1")))
		}
		next.ServeHTTP(w, r)
	})
}

// deadline attaches the per-request timeout to the request context —
// the one deadline that then propagates as context through admission,
// compile, analyze and predict. Batch requests get their own (longer)
// budget.
func (s *Server) deadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		timeout := s.cfg.RequestTimeout
		if r.URL.Path == "/v2/predict:batch" {
			timeout = s.cfg.BatchTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// route maps a request path to its bounded metric label (job IDs must
// not explode the label space).
func route(path string) string {
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	if strings.HasPrefix(path, "/v2/jobs/") {
		return "/v2/jobs/{id}"
	}
	return path
}

// instrument records the request counter and latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := obs.NewResponseRecorder(w)
		next.ServeHTTP(rec, r)
		rt := route(r.URL.Path)
		s.reg.Counter("requests_total",
			fmt.Sprintf(`route="%s",code="%d"`, rt, rec.Code)).Inc()
		s.reg.Histogram("request_seconds", fmt.Sprintf(`route="%s"`, rt)).
			Observe(time.Since(t0).Seconds())
	})
}

// Listen binds the configured address and returns the bound address
// (useful with ":0").
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Addr returns the bound listen address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the service until ctx is cancelled (SIGTERM in main), then
// drains gracefully: the listener closes, in-flight HTTP requests
// finish, and queued + running exploration jobs complete — all within
// DrainTimeout, after which remaining jobs are cancelled hard.
func (s *Server) Serve(ctx context.Context) error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("serve: Serve called before Listen")
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.log.Info("listening", "addr", ln.Addr().String(),
		"workers", s.cfg.Workers, "dse_workers", s.cfg.DSEWorkers,
		"max_predicts", s.cfg.MaxConcurrentPredicts, "pred_cache", s.pred.Cap())

	select {
	case err := <-errc:
		sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		s.pool.stop(sctx)
		return err
	case <-ctx.Done():
	}
	s.log.Info("draining", "timeout", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if derr := s.pool.stop(dctx); derr != nil && err == nil {
		err = derr
	}
	// Artifact writes trail their fills (waiters are released first);
	// let them land so the next start is as warm as this run got.
	s.prep.Flush()
	s.log.Info("drained")
	return err
}

// Close drains the job pool without an HTTP listener: queued and
// running explorations finish (or are cancelled when ctx expires).
// It is the shutdown path for embedders that mounted Handler() in
// their own server (httptest fixtures, flexcl-check) instead of
// calling Serve.
func (s *Server) Close(ctx context.Context) error {
	err := s.pool.stop(ctx)
	s.prep.Flush()
	return err
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	return s.Serve(ctx)
}

// ---- request/response types ----

type apiError struct {
	Error string `json:"error"`
}

// DesignJSON is the wire form of a model.Design (shared with the v2
// envelope in internal/serve/api).
type DesignJSON = api.Design

func designToJSON(d model.Design) DesignJSON { return api.DesignToWire(d) }

type predictRequest struct {
	Bench    string     `json:"bench"`
	Kernel   string     `json:"kernel"`
	Platform string     `json:"platform"`
	Design   DesignJSON `json:"design"`
}

type predictResponse struct {
	Bench         string     `json:"bench"`
	Kernel        string     `json:"kernel"`
	Platform      string     `json:"platform"`
	Design        DesignJSON `json:"design"`
	EffectiveMode string     `json:"effective_mode"`
	Cycles        float64    `json:"cycles"`
	Seconds       float64    `json:"seconds"`
	IIComp        int        `json:"ii_comp"`
	Depth         int        `json:"pipeline_depth"`
	NPE           int        `json:"n_pe"`
	NCU           int        `json:"n_cu"`
	Cached        bool       `json:"cached"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeV1Err flattens a typed API error into the legacy {"error": msg}
// envelope (identical bytes to the historical v1 responses).
func writeV1Err(w http.ResponseWriter, e *api.Error) {
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds))
	}
	writeErr(w, e.Status, "%s", e.Message)
}

// writeV2Err renders a typed API error in the v2 {"error": {...}}
// envelope, mirroring any Retry-After hint into the header.
func writeV2Err(w http.ResponseWriter, e *api.Error) {
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds))
	}
	writeJSON(w, e.Status, struct {
		Error *api.Error `json:"error"`
	}{e})
}

// decodeStrict decodes a JSON body, rejecting unknown fields and
// trailing garbage — both answer 400.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// ---- the coalescing, admission-controlled prediction core ----

// predictOutcome is one computed (or recalled) estimate plus how it was
// obtained.
type predictOutcome struct {
	est *model.Estimate
	// cache ∈ {"pred", "prep", "coalesced", "peer", "miss"}; see
	// api.PredictResult.Cache.
	cache string
	// wait is the time spent queued for admission.
	wait time.Duration
	// servedBy names the replica whose compile+analyze produced the
	// analysis when the prep crossed a replica boundary ("" otherwise);
	// forwarded mirrors it as a boolean.
	servedBy  string
	forwarded bool
}

// predictErr maps a prediction-path failure to a typed API error. shed
// responses carry the Retry-After hint; context expiry is a deadline
// (timeout names the budget that expired, for the message only).
func (s *Server) predictErr(err error, timeout time.Duration) *api.Error {
	var shed *cluster.ShedError
	switch {
	case errors.Is(err, errShed):
		e := api.Errf(api.CodeShed, http.StatusTooManyRequests,
			"prediction queue full, retry after %v", s.cfg.RetryAfter)
		e.RetryAfterSeconds = int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		return e
	case errors.As(err, &shed):
		// The key's owner shed the forwarded prep: surface the fleet's
		// over-capacity signal with the owner's own backoff hint.
		e := api.Errf(api.CodeShed, http.StatusTooManyRequests,
			"fleet over capacity: %s shed the forwarded prep", shed.Peer)
		e.RetryAfterSeconds = shed.RetryAfterSeconds
		if e.RetryAfterSeconds <= 0 {
			e.RetryAfterSeconds = int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		}
		return e
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return api.Errf(api.CodeDeadline, http.StatusGatewayTimeout,
			"prediction timed out after %v", timeout)
	default:
		return api.Errf(api.CodeInternal, http.StatusInternalServerError,
			"analysis failed: %v", err)
	}
}

// predictCore computes (or recalls) one estimate. The path is:
// prediction LRU (free, no admission) → admission gate (bounded
// concurrency, lane-prioritized, shed beyond the queue bound) →
// singleflight prep cache (concurrent requests for the same kernel
// source share one compile+analyze fill) → predict. ctx carries the
// request deadline through every stage; an expired request unblocks
// immediately while an in-flight fill keeps running in the background
// and lands in the cache for the retry.
func (s *Server) predictCore(ctx context.Context, lane int, k *bench.Kernel, p *device.Platform, d model.Design) (predictOutcome, error) {
	telemetry.Annotate(ctx, "kernel", k.ID())
	telemetry.Annotate(ctx, "source_hash", k.SourceHash())
	obs.AddField(ctx, "lane", laneName(lane))
	key := k.CacheKey() + "|" + p.Name + "|" + d.String()
	if est, ok := s.pred.Get(key); ok {
		s.reg.Counter("predict_source_total", `source="pred"`).Inc()
		telemetry.Annotate(ctx, "cache", "pred")
		obs.AddField(ctx, "cache", "pred")
		return predictOutcome{est: est, cache: "pred"}, nil
	}
	ll := fmt.Sprintf(`lane="%s"`, laneName(lane))
	actx, asp := telemetry.Start(ctx, "admission")
	asp.Annotate("lane", laneName(lane))
	release, wait, err := s.admit.admit(actx, lane)
	asp.End()
	s.reg.Histogram("predict_queue_wait_seconds", ll, obs.QueueBuckets...).
		Observe(wait.Seconds())
	if err != nil {
		if errors.Is(err, errShed) {
			s.reg.Counter("predict_shed_total", ll).Inc()
		}
		return predictOutcome{wait: wait}, err
	}
	defer release()
	s.reg.Counter("predict_admitted_total", ll).Inc()

	// The lane rides the context into the fill: if this fill forwards to
	// the key's owner, the work lands in the same admission lane there.
	pctx, psp := telemetry.Start(cluster.WithLane(ctx, laneName(lane)), "prep")
	res, err := s.prep.AnalysisContextDetail(pctx, k, p, d.WGSize)
	psp.Annotate("outcome", res.Outcome.String())
	if res.Source != "" {
		psp.Annotate("source", res.Source)
	}
	psp.End()
	if err != nil {
		return predictOutcome{wait: wait}, err
	}
	_, msp := telemetry.Start(ctx, "model")
	est := res.An.Predict(d)
	msp.End()
	s.pred.Put(key, est)
	cache := "miss"
	switch {
	case res.Outcome == dse.PrepCoalesced:
		cache = "coalesced"
	case res.Outcome == dse.PrepCached:
		cache = "prep"
	case res.Source == dse.SourcePeer:
		cache = "peer"
	}
	telemetry.Annotate(ctx, "cache", cache)
	obs.AddField(ctx, "cache", cache)
	s.reg.Counter("predict_source_total", fmt.Sprintf(`source="%s"`, cache)).Inc()
	out := predictOutcome{est: est, cache: cache, wait: wait}
	// A prep the fleet answered (this request led the forward, or it
	// coalesced onto a fill that did) is attributed to its owner; once
	// the entry is warm in this replica's memory, later requests are
	// purely local and carry no attribution.
	if res.Source == dse.SourcePeer && res.Outcome != dse.PrepCached {
		out.servedBy, out.forwarded = res.Peer, true
	}
	return out, nil
}

// ---- v1 handlers (thin adapters over the v2 envelope) ----

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, apiErr := api.ResolvePredict(api.PredictRequest{
		Kernel:   api.KernelRef{Bench: req.Bench, Kernel: req.Kernel},
		Platform: req.Platform,
		Design:   req.Design,
	}, api.V1)
	if apiErr != nil {
		writeV1Err(w, apiErr)
		return
	}
	out, err := s.predictCore(r.Context(), laneInteractive, res.K, res.P, res.D)
	if err != nil {
		writeV1Err(w, s.predictErr(err, s.cfg.RequestTimeout))
		return
	}
	est := out.est
	writeJSON(w, http.StatusOK, predictResponse{
		Bench:         res.K.Bench,
		Kernel:        res.K.Name,
		Platform:      res.P.Name,
		Design:        designToJSON(res.D),
		EffectiveMode: est.Mode.String(),
		Cycles:        est.Cycles,
		Seconds:       est.Seconds,
		IIComp:        est.IIComp,
		Depth:         est.Depth,
		NPE:           est.NPE,
		NCU:           est.NCU,
		Cached:        out.cache == "pred",
	})
}

type kernelInfo = api.KernelInfo

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	p := device.Virtex7()
	all := bench.All()
	out := make([]kernelInfo, 0, len(all))
	for _, k := range all {
		out = append(out, api.KernelInfoOf(k, p))
	}
	writeJSON(w, http.StatusOK, api.KernelList{Count: len(out), Kernels: out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Fold the cache snapshots into gauges at scrape time so the text
	// endpoint always reflects the current counters.
	ps := s.pred.Stats()
	s.reg.Gauge("predict_cache_hits", "").Set(float64(ps.Hits))
	s.reg.Gauge("predict_cache_misses", "").Set(float64(ps.Misses))
	s.reg.Gauge("predict_cache_evictions", "").Set(float64(ps.Evictions))
	s.reg.Gauge("predict_cache_entries", "").Set(float64(s.pred.Len()))
	s.reg.Gauge("predict_cache_hit_ratio", "").Set(ps.HitRatio())
	qs := s.prep.Stats()
	s.reg.Gauge("prep_cache_hits", "").Set(float64(qs.Hits))
	s.reg.Gauge("prep_cache_misses", "").Set(float64(qs.Misses))
	s.reg.Gauge("prep_cache_entries", "").Set(float64(s.prep.Len()))
	s.reg.Gauge("prep_cache_computes", "").Set(float64(qs.Computes))
	s.reg.Gauge("prep_cache_coalesced", "").Set(float64(qs.Coalesced))
	s.reg.Gauge("prep_cache_evictions", "").Set(float64(qs.Evictions))
	s.reg.Gauge("prep_cache_disk_hits", "").Set(float64(qs.DiskHits))
	s.reg.Gauge("prep_cache_peer_hits", "").Set(float64(qs.PeerHits))
	if s.artifacts != nil {
		as := s.artifacts.Stats()
		s.reg.Gauge("artifact_hits", "").Set(float64(as.Hits))
		s.reg.Gauge("artifact_misses", "").Set(float64(as.Misses))
		s.reg.Gauge("artifact_writes", "").Set(float64(as.Writes))
		s.reg.Gauge("artifact_write_errors", "").Set(float64(as.WriteErrors))
		s.reg.Gauge("artifact_corrupt", "").Set(float64(as.Corrupt))
	}
	s.admit.exportMetrics(s.reg)
	s.pool.exportMetrics(s.reg)
	s.exportClusterMetrics()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	// Process-wide counters (profiler fast-path takes, etc.) live in
	// the global registry, under their own namespace.
	obs.Global().WritePrometheus(w)
}
