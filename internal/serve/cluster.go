package serve

import (
	"errors"
	"net/http"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/serve/api"
	"repro/internal/telemetry"
)

// The cluster endpoints of the v2 surface:
//
//	GET  /v2/cluster       — ring version, peer table, per-peer health
//	POST /v2/cluster/prep  — replica-to-replica prep forwarding (owners
//	                         answer with a serialized artifact record)
//
// The prep endpoint exists for replicas, not end users: a non-owner
// forwards the (kernel, platform, WG) prep here and restores the
// owner's record locally, so each distinct kernel is compiled once per
// fleet. The owner runs the work through the same prep cache as its
// own predictions, admitted under the lane the request originated from
// (a batch item stays bulk), and an owner-side shed propagates 429 +
// Retry-After back through the proxying replica.
//
// Forwarded preps admit through a slot pool of their own rather than
// the predict lanes. A local predict can hold its admission slot while
// it waits on a forward to a peer; if forwarded preps competed for
// those same slots, every replica's slots could fill with requests
// that are each queued on another replica — a distributed deadlock
// (certain on a one-slot-per-replica fleet). A forwarded prep never
// forwards again (see WithPeerOrigin below), so giving the leaves
// their own pool keeps the wait graph acyclic.

// ConfigureCluster (re)builds this replica's ring over the fleet
// membership. self is the replica's own advertised base URL (added to
// peers when missing). It exists as a post-construction call because
// embedders — httptest fleets, the replay driver — learn their URLs
// only after binding a listener; flexcl-serve calls it from flags
// via Config.SelfURL/Peers.
func (s *Server) ConfigureCluster(self string, peers []string) error {
	if err := s.cluster.Configure(self, peers); err != nil {
		return err
	}
	snap := s.cluster.Snapshot()
	s.log.Info("cluster configured",
		"self", snap.Self, "peers", len(snap.Peers), "ring", snap.RingVersion,
		"enabled", snap.Enabled)
	return nil
}

// Cluster exposes the replica's fleet view (tests and embedders).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// PrepStats exposes the prep cache's counters (the replay driver sums
// Computes across a fleet to prove the compile-once property).
func (s *Server) PrepStats() dse.CacheStats { return s.prep.Stats() }

// platformByName resolves the platform name a peer put on the wire.
// cluster.PrepRequest carries device.Platform.Name — the identity the
// prep cache and artifact store key on — not the catalogue key, so
// accept either spelling.
func platformByName(name string) (*device.Platform, bool) {
	cat := device.Platforms()
	if p, ok := cat[name]; ok {
		return p, true
	}
	for _, p := range cat {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// handleClusterStatus serves GET /v2/cluster.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Snapshot())
}

// handleClusterPrep serves POST /v2/cluster/prep: run (or recall) one
// compile+analyze as the key's owner and answer with the serialized
// record. The fill lands in this replica's prep cache and artifact
// store exactly like a local prediction's would.
func (s *Server) handleClusterPrep(w http.ResponseWriter, r *http.Request) {
	var req cluster.PrepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"bad request body: %v", err))
		return
	}
	if req.Kernel == nil {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"prep request carries no kernel"))
		return
	}
	if req.WG <= 0 {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"bad work-group size %d", req.WG))
		return
	}
	p, ok := platformByName(req.Platform)
	if !ok {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"unknown platform %q", req.Platform))
		return
	}
	// The originating lane rides the forward: a batch item stays bulk on
	// the owner, so forwarded bulk work cannot cut ahead of the owner's
	// interactive traffic.
	lane := laneInteractive
	if r.Header.Get(cluster.LaneHeader) == "bulk" {
		lane = laneBulk
	}
	obs.AddField(r.Context(), "lane", laneName(lane))
	telemetry.Annotate(r.Context(), "kernel", req.Kernel.ID())
	if peer := r.Header.Get(cluster.PeerHeader); peer != "" {
		obs.AddField(r.Context(), "peer", peer)
		telemetry.Annotate(r.Context(), "peer", peer)
	}

	ll := `lane="` + laneName(lane) + `"`
	actx, asp := telemetry.Start(r.Context(), "admission")
	asp.Annotate("lane", laneName(lane))
	release, wait, err := s.fwdAdmit.admit(actx, lane)
	asp.End()
	s.reg.Histogram("forward_queue_wait_seconds", ll, obs.QueueBuckets...).
		Observe(wait.Seconds())
	if err != nil {
		if errors.Is(err, errShed) {
			s.reg.Counter("forward_shed_total", ll).Inc()
		}
		writeV2Err(w, s.predictErr(err, s.cfg.RequestTimeout))
		return
	}
	defer release()
	s.reg.Counter("forward_admitted_total", ll).Inc()

	// WithPeerOrigin: the owner is the end of the line — a stale ring on
	// this side must compute locally, never forward again.
	pctx := cluster.WithPeerOrigin(r.Context())
	pctx, psp := telemetry.Start(pctx, "prep")
	res, err := s.prep.AnalysisContextDetail(pctx, req.Kernel, p, req.WG)
	psp.Annotate("outcome", res.Outcome.String())
	psp.End()
	if err != nil {
		writeV2Err(w, s.predictErr(err, s.cfg.RequestTimeout))
		return
	}
	s.cluster.CountPrepServed(laneName(lane))

	key := artifact.Key{Kernel: req.Kernel.CacheKey(), Platform: p.Name, WG: req.WG}
	data, err := artifact.Encode(artifact.New(key, res.An, 0))
	if err != nil {
		writeV2Err(w, api.Errf(api.CodeInternal, http.StatusInternalServerError,
			"encoding analysis record: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-flexcl-artifact")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// exportClusterMetrics folds the cluster snapshot into scrape-time
// gauges (the flexcl_cluster_* family; see docs/OBSERVABILITY.md).
func (s *Server) exportClusterMetrics() {
	snap := s.cluster.Snapshot()
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	s.reg.Gauge("cluster_enabled", "").Set(b2f(snap.Enabled))
	s.reg.Gauge("cluster_peers", "").Set(float64(len(snap.Peers)))
	s.reg.Gauge("cluster_generation", "").Set(float64(snap.Generation))
	s.reg.Gauge("cluster_local_fallbacks", "").Set(float64(snap.LocalFallbacks))
	for _, p := range snap.Peers {
		pl := obs.Label("peer", p.URL)
		s.reg.Gauge("cluster_peer_healthy", pl).Set(b2f(p.Healthy))
		s.reg.Gauge("cluster_forwards", pl).Set(float64(p.Forwards))
		s.reg.Gauge("cluster_forward_hits", pl).Set(float64(p.ForwardHits))
		s.reg.Gauge("cluster_forward_sheds", pl).Set(float64(p.Sheds))
		s.reg.Gauge("cluster_forward_errors", pl).Set(float64(p.Errors))
	}
	for lane, n := range snap.PrepsServed {
		s.reg.Gauge("cluster_preps_served", obs.Label("lane", lane)).Set(float64(n))
	}
}
