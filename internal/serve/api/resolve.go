package api

import (
	"net/http"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
)

// Flavor selects which API version's diagnostics a resolution emits.
// The validation logic is identical — only hint strings differ, so the
// v1 adapters stay byte-for-byte compatible with their historical
// error bodies.
type Flavor int

// API flavors.
const (
	V1 Flavor = iota + 1
	V2
)

func (f Flavor) kernelsPath() string {
	if f == V1 {
		return "/v1/kernels"
	}
	return "/v2/kernels"
}

// Resolved is a fully validated prediction/exploration target.
type Resolved struct {
	K *bench.Kernel
	P *device.Platform
	// PlatformKey is the catalogue key the platform was resolved from
	// (p.Name is the marketing name, e.g. "virtex7-xc7vx690t").
	PlatformKey string
	D           model.Design
}

// ResolvePredict validates a predict request end to end: kernel
// reference (corpus or inline), platform, then design against the
// kernel's sweep and the platform's resource limits.
func ResolvePredict(req PredictRequest, fl Flavor) (Resolved, *Error) {
	k, e := ResolveKernel(req.Kernel, fl)
	if e != nil {
		return Resolved{}, e
	}
	p, key, e := ResolvePlatform(req.Platform)
	if e != nil {
		return Resolved{}, e
	}
	d, e := ResolveDesign(k, p, req.Design)
	if e != nil {
		return Resolved{}, e
	}
	return Resolved{K: k, P: p, PlatformKey: key, D: d}, nil
}

// ResolveKernel maps a KernelRef to a kernel: corpus lookups answer
// not_found for unknown ids, inline references are compiled and get a
// synthesized workload. Mixing the corpus and inline shapes is
// rejected.
func ResolveKernel(ref KernelRef, fl Flavor) (*bench.Kernel, *Error) {
	if ref.IsInline() {
		if ref.ID != "" || ref.Bench != "" || ref.Kernel != "" {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"kernel ref is ambiguous: give id, bench+kernel, or source — not both")
		}
		return inlineKernel(ref)
	}
	benchName, kernelName := ref.Bench, ref.Kernel
	if ref.ID != "" {
		if benchName != "" || kernelName != "" {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"kernel ref is ambiguous: give id or bench+kernel, not both")
		}
		b, n, ok := strings.Cut(ref.ID, "/")
		if !ok {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"kernel id %q must look like \"bench/kernel\"", ref.ID)
		}
		benchName, kernelName = b, n
	}
	if benchName == "" || kernelName == "" {
		if fl == V1 {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"bench and kernel are required")
		}
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"kernel is required: give id, bench+kernel, or inline source+fn")
	}
	k := bench.Find(benchName, kernelName)
	if k == nil {
		return nil, Errf(CodeNotFound, http.StatusNotFound,
			"unknown kernel %s/%s (see GET %s)", benchName, kernelName, fl.kernelsPath())
	}
	return k, nil
}

// ResolvePlatform maps a platform name ("" = virtex7) to its catalogue
// entry and key.
func ResolvePlatform(name string) (*device.Platform, string, *Error) {
	if name == "" {
		name = "virtex7"
	}
	p, ok := device.Platforms()[name]
	if !ok {
		known := make([]string, 0, len(device.Platforms()))
		for n := range device.Platforms() {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, "", Errf(CodeBadRequest, http.StatusBadRequest,
			"unknown platform %q (known: %s)", name, strings.Join(known, ", "))
	}
	return p, name, nil
}

// ResolveDesign validates the wire design against the kernel's sweep
// bounds and the platform's resource limits, applying friendly
// defaults (zero values mean "the unoptimized choice").
func ResolveDesign(k *bench.Kernel, p *device.Platform, dj Design) (model.Design, *Error) {
	var zero model.Design
	wgs := k.WGSizes()
	if dj.WGSize == 0 {
		dj.WGSize = wgs[0]
	}
	valid := false
	for _, wg := range wgs {
		if wg == dj.WGSize {
			valid = true
			break
		}
	}
	if !valid {
		return zero, Errf(CodeBadRequest, http.StatusBadRequest,
			"wg_size %d not in the kernel's sweep %v", dj.WGSize, wgs)
	}
	if dj.PE == 0 {
		dj.PE = 1
	}
	if dj.CU == 0 {
		dj.CU = 1
	}
	if dj.PE < 1 || dj.PE > p.MaxPE {
		return zero, Errf(CodeBadRequest, http.StatusBadRequest,
			"pe %d out of range [1, %d]", dj.PE, p.MaxPE)
	}
	if dj.CU < 1 || dj.CU > p.MaxCU {
		return zero, Errf(CodeBadRequest, http.StatusBadRequest,
			"cu %d out of range [1, %d]", dj.CU, p.MaxCU)
	}
	if dj.PE > 1 && !dj.WIPipeline {
		return zero, Errf(CodeBadRequest, http.StatusBadRequest,
			"pe %d requires wi_pipeline (parallel PEs share the pipeline control)", dj.PE)
	}
	var mode model.CommMode
	switch dj.Mode {
	case "", "barrier":
		mode = model.ModeBarrier
	case "pipeline":
		mode = model.ModePipeline
	default:
		return zero, Errf(CodeBadRequest, http.StatusBadRequest,
			"mode %q must be \"barrier\" or \"pipeline\"", dj.Mode)
	}
	return model.Design{
		WGSize: dj.WGSize, WIPipeline: dj.WIPipeline, PE: dj.PE, CU: dj.CU,
		Mode: mode,
	}, nil
}

// DesignToWire renders a model.Design back into its wire form.
func DesignToWire(d model.Design) Design {
	return Design{
		WGSize: d.WGSize, WIPipeline: d.WIPipeline, PE: d.PE, CU: d.CU,
		Mode: d.Mode.String(),
	}
}

// KernelInfoOf builds the listing entry for one corpus kernel.
func KernelInfoOf(k *bench.Kernel, p *device.Platform) KernelInfo {
	return KernelInfo{
		ID:           k.ID(),
		Suite:        k.Suite,
		Bench:        k.Bench,
		Kernel:       k.Name,
		WorkItems:    k.NWI(),
		WGSizes:      k.WGSizes(),
		DesignPoints: len(dse.Space(k, p)),
	}
}
