package api

import (
	"net/http"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/opencl/ast"
)

// InlineBench is the bench name synthesized inline kernels carry; their
// id renders as "inline/<fn>".
const InlineBench = "inline"

// inlineKernel builds a bench.Kernel from an inline source reference:
// the source is compiled once (at the smallest swept work-group size)
// to validate it and enumerate its parameters, global pointer arguments
// get deterministic synthesized buffers, and scalar arguments must all
// be bound via ref.Scalars. The resulting kernel's CacheKey depends
// only on source + workload, so two requests carrying the same inline
// kernel coalesce onto one compile+analyze in the prep cache.
func inlineKernel(ref KernelRef) (*bench.Kernel, *Error) {
	if ref.Fn == "" {
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"inline kernel requires fn (the __kernel entry point)")
	}
	if len(ref.Global) == 0 || len(ref.Global) > 3 {
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"inline kernel requires global: 1-3 positive NDRange dimensions")
	}
	var global [3]int64
	for i := range global {
		global[i] = 1
	}
	for i, g := range ref.Global {
		if g <= 0 {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"inline kernel global[%d] = %d must be positive", i, g)
		}
		global[i] = g
	}

	k := &bench.Kernel{
		Suite:   "inline",
		Bench:   InlineBench,
		Name:    ref.Fn,
		Fn:      ref.Fn,
		Source:  ref.Source,
		Defines: ref.Defines,
		Global:  global,
		TwoD:    ref.TwoD,
		Scalars: ref.Scalars,
	}

	// Work-group sweep: default 16..256, clamped so every swept size
	// divides the leading global dimension (the interp lays 1-D groups
	// out along it) and never exceeds the total work-items.
	k.MinWG, k.MaxWG = ref.MinWG, ref.MaxWG
	if k.MinWG <= 0 {
		k.MinWG = 16
	}
	if k.MaxWG <= 0 {
		k.MaxWG = 256
	}
	for k.MaxWG > k.MinWG && (global[0]%k.MaxWG != 0 || k.MaxWG > k.NWI()) {
		k.MaxWG /= 2
	}
	if global[0]%k.MinWG != 0 {
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"inline kernel global[0] = %d is not divisible by the minimum work-group size %d (adjust global or min_wg)",
			global[0], k.MinWG)
	}

	// One validation compile enumerates the parameters; the serving
	// caches redo it per swept WG size under their own keys.
	f, err := k.Compile(k.MinWG)
	if err != nil {
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"inline kernel does not compile: %v", err)
	}

	var missing []string
	for _, prm := range f.Params {
		t := prm.T
		if !t.Ptr {
			if _, ok := ref.Scalars[prm.PName]; !ok {
				missing = append(missing, prm.PName)
			}
			continue
		}
		if t.Space != ast.ASGlobal {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"inline kernel parameter %q: only __global pointer arguments are supported", prm.PName)
		}
		if t.Vec > 1 {
			return nil, Errf(CodeBadRequest, http.StatusBadRequest,
				"inline kernel parameter %q: vector-element buffers are not supported", prm.PName)
		}
		n := ref.BufLens[prm.PName]
		if n <= 0 {
			n = k.NWI()
		}
		b := bench.Buf{Name: prm.PName, Kind: t.Base, Len: n}
		if t.Base.IsFloat() {
			b.Float = true
			b.Fill = bench.FillNoise
		} else {
			// Index-like ramp kept in range so inline kernels that use an
			// int buffer for gathers stay within their own buffers.
			b.Fill = bench.FillRamp
			b.Mod = n
		}
		k.Bufs = append(k.Bufs, b)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, Errf(CodeBadRequest, http.StatusBadRequest,
			"inline kernel scalar argument(s) unset: %s (bind them in scalars)",
			strings.Join(missing, ", "))
	}
	return k, nil
}
