// Package api defines the wire surface of the flexcl-serve HTTP
// service: the unified v2 request envelope (one kernel reference shape,
// one Design struct shared by predict, explore and batch), the response
// DTOs both API versions render, and the typed error model.
//
// The v1 endpoints are thin adapters over these same types — their
// request shapes are decoded in package serve and converted to the v2
// envelope before resolution, and their responses reuse the structs
// here, so the two versions cannot drift apart.
package api

import (
	"fmt"
	"time"
)

// Design is the wire form of a model.Design, shared by every endpoint
// (predict, explore results, batch items). Zero values mean "the
// unoptimized choice": first work-group size of the kernel's sweep,
// no pipelining, one PE, one CU, barrier mode.
type Design struct {
	WGSize     int64  `json:"wg_size"`
	WIPipeline bool   `json:"wi_pipeline"`
	PE         int    `json:"pe"`
	CU         int    `json:"cu"`
	Mode       string `json:"mode"` // "barrier" | "pipeline"
}

// KernelRef references a kernel one of three ways:
//
//   - by corpus id: {"id": "bench/kernel"}
//   - by corpus coordinates: {"bench": "...", "kernel": "..."}
//   - inline: {"source": "__kernel void f(...){...}", "fn": "f",
//     "global": [4096], ...}
//
// Exactly one of the three shapes must be used. Inline kernels carry
// their own workload definition: global is the NDRange global size (1–3
// dimensions), scalars binds every non-pointer kernel argument, and
// buffer arguments are synthesized automatically (deterministic fills,
// length = total work-items unless overridden via buf_lens).
type KernelRef struct {
	// Corpus reference.
	ID     string `json:"id,omitempty"`
	Bench  string `json:"bench,omitempty"`
	Kernel string `json:"kernel,omitempty"`

	// Inline kernel.
	Source  string            `json:"source,omitempty"`
	Fn      string            `json:"fn,omitempty"`
	Defines map[string]string `json:"defines,omitempty"`
	Global  []int64           `json:"global,omitempty"`
	TwoD    bool              `json:"two_d,omitempty"`
	Scalars map[string]int64  `json:"scalars,omitempty"`
	MinWG   int64             `json:"min_wg,omitempty"`
	MaxWG   int64             `json:"max_wg,omitempty"`
	BufLens map[string]int64  `json:"buf_lens,omitempty"`
}

// IsInline reports whether the reference carries inline source.
func (r KernelRef) IsInline() bool { return r.Source != "" }

// PredictRequest is one prediction: a kernel, a platform (default
// virtex7) and a design point. It is also the batch item shape.
type PredictRequest struct {
	Kernel   KernelRef `json:"kernel"`
	Platform string    `json:"platform,omitempty"`
	Design   Design    `json:"design"`
}

// PredictResult is one prediction outcome.
type PredictResult struct {
	Kernel        string  `json:"kernel"` // "bench/kernel" (inline: "inline/<fn>")
	SourceHash    string  `json:"source_hash"`
	Platform      string  `json:"platform"`
	Design        Design  `json:"design"`
	EffectiveMode string  `json:"effective_mode"`
	Cycles        float64 `json:"cycles"`
	Seconds       float64 `json:"seconds"`
	IIComp        int     `json:"ii_comp"`
	Depth         int     `json:"pipeline_depth"`
	NPE           int     `json:"n_pe"`
	NCU           int     `json:"n_cu"`
	// Cache reports how the answer was produced: "pred" (prediction LRU
	// hit), "prep" (analysis already prepared), "coalesced" (joined an
	// in-flight fill for the same kernel), "peer" (the compile+analyze
	// came from the key's owning replica) or "miss" (this request led the
	// compile+analyze).
	Cache string `json:"cache"`
	// ServedBy names the replica whose compile+analyze answered this
	// prediction when the prep was forwarded across the fleet; omitted
	// for locally-owned keys and single-node deployments, so those
	// bodies are byte-identical with clustering on or off.
	ServedBy string `json:"served_by,omitempty"`
	// Forwarded reports that the analysis behind this response crossed a
	// replica boundary (it was fetched from ServedBy).
	Forwarded bool `json:"forwarded,omitempty"`
}

// BatchPredictRequest is POST /v2/predict:batch: N independent
// (kernel, design) pairs evaluated with per-item results. Platform, when
// set, is the default for items that leave theirs empty.
type BatchPredictRequest struct {
	Platform string           `json:"platform,omitempty"`
	Items    []PredictRequest `json:"items"`
}

// BatchItem is one per-item outcome of a batch prediction; exactly one
// of Result and Error is set.
type BatchItem struct {
	OK     bool           `json:"ok"`
	Result *PredictResult `json:"result,omitempty"`
	Error  *Error         `json:"error,omitempty"`
}

// BatchPredictResponse reports per-item outcomes in request order.
// Item failures do not fail the batch: the response is 200 as long as
// the envelope itself was acceptable.
type BatchPredictResponse struct {
	Items     []BatchItem `json:"items"`
	Succeeded int         `json:"succeeded"`
	Failed    int         `json:"failed"`
}

// Search strategies accepted by ExploreRequest.Search.
const (
	SearchExhaustive = "exhaustive"
	SearchGuided     = "guided"
	SearchPareto     = "pareto"
)

// ExploreRequest is a design-space exploration job submission.
type ExploreRequest struct {
	Kernel       KernelRef `json:"kernel"`
	Platform     string    `json:"platform,omitempty"`
	Prune        bool      `json:"prune_infeasible,omitempty"`
	Sim          bool      `json:"sim,omitempty"`
	SimMaxGroups int       `json:"sim_max_groups,omitempty"`
	Workers      int       `json:"workers,omitempty"`
	Top          int       `json:"top,omitempty"`
	// Search selects the exploration strategy: "" or "exhaustive"
	// evaluates every design point; "guided" runs the branch-and-bound
	// search (same best design, a fraction of the evaluations; model
	// only, so it rejects sim); "pareto" additionally reports the
	// cycles-vs-resource Pareto frontier. v2 only.
	Search string `json:"search,omitempty"`
}

// JobAccepted is the 202 response to an exploration submission.
// (Field order matches the alphabetical key order the v1 endpoint has
// always rendered, keeping v1 responses byte-identical.)
type JobAccepted struct {
	ID     string `json:"id"`
	Kernel string `json:"kernel"`
	State  string `json:"state"`
	URL    string `json:"url"`
}

// Point is one evaluated design point of an exploration summary.
type Point struct {
	Design Design  `json:"design"`
	Est    float64 `json:"est_cycles"`
	Actual float64 `json:"actual_cycles,omitempty"`
}

// ExploreSummary is the result payload of a finished exploration job.
// The guided-search fields (Search, SpacePoints, Evaluated, Pruned,
// Frontier) are omitted on exhaustive explorations, keeping v1 response
// bodies byte-identical to before the strategies existed.
type ExploreSummary struct {
	Points           int     `json:"points"`
	BaselineFailures int     `json:"baseline_failures,omitempty"`
	WallMS           float64 `json:"wall_ms"`
	ModelMS          float64 `json:"model_ms"`
	SimMS            float64 `json:"sim_ms,omitempty"`
	Best             *Point  `json:"best,omitempty"`
	Top              []Point `json:"top,omitempty"`
	Search           string  `json:"search,omitempty"`
	SpacePoints      int     `json:"space_points,omitempty"`
	Evaluated        int     `json:"evaluated,omitempty"`
	Pruned           int     `json:"pruned,omitempty"`
	Frontier         []Point `json:"frontier,omitempty"`
}

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobView is the poll response for one exploration job.
type JobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Kernel   string          `json:"kernel"`
	Platform string          `json:"platform"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Summary  *ExploreSummary `json:"summary,omitempty"`
}

// KernelInfo describes one corpus kernel in listings.
type KernelInfo struct {
	ID           string  `json:"id"`
	Suite        string  `json:"suite"`
	Bench        string  `json:"bench"`
	Kernel       string  `json:"kernel"`
	WorkItems    int64   `json:"work_items"`
	WGSizes      []int64 `json:"wg_sizes"`
	DesignPoints int     `json:"design_points"`
}

// KernelList is the kernels listing. (Field order matches the
// alphabetical key order the v1 endpoint has always rendered.)
type KernelList struct {
	Count   int          `json:"count"`
	Kernels []KernelInfo `json:"kernels"`
}

// ---- error model ----

// Error codes.
const (
	CodeBadRequest  = "bad_request" // 400: malformed body or invalid field
	CodeNotFound    = "not_found"   // 404: unknown kernel or job
	CodeShed        = "shed"        // 429: admission queue full, retry later
	CodeUnavailable = "unavailable" // 503: draining or job queue full
	CodeDeadline    = "deadline"    // 504: request deadline expired
	CodeInternal    = "internal"    // 500: analysis failure
)

// Error is the typed wire error. v2 endpoints render it inside an
// {"error": {...}} envelope; v1 adapters flatten it to the legacy
// {"error": "message"} shape.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds is set on shed responses and mirrored in the
	// Retry-After header.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Status is the HTTP status the error maps to (not serialized; the
	// transport already carries it).
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Errf builds an Error from a code, status and format string.
func Errf(code string, status int, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), Status: status}
}

// StatusOf maps an error code to its HTTP status (the inverse clients
// use when only the body survived a proxy hop).
func StatusOf(code string) int {
	switch code {
	case CodeBadRequest:
		return 400
	case CodeNotFound:
		return 404
	case CodeShed:
		return 429
	case CodeUnavailable:
		return 503
	case CodeDeadline:
		return 504
	default:
		return 500
	}
}
