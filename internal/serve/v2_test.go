package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/serve/api"
)

func TestV2PredictHappyPathAndCacheField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{
		"kernel": map[string]any{"id": "hotspot/hotspot"},
		"design": map[string]any{
			"wg_size": 64, "wi_pipeline": true, "pe": 4, "cu": 2, "mode": "pipeline",
		},
	}
	resp, body := postJSON(t, ts.URL+"/v2/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res api.PredictResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if res.Kernel != "hotspot/hotspot" {
		t.Errorf("kernel = %q, want hotspot/hotspot", res.Kernel)
	}
	if res.SourceHash == "" {
		t.Error("source_hash is empty")
	}
	if res.Platform != "virtex7" {
		t.Errorf("platform = %q, want virtex7 (default)", res.Platform)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Errorf("non-positive estimate: cycles=%v seconds=%v", res.Cycles, res.Seconds)
	}
	if res.Cache != "miss" {
		t.Errorf("first request cache = %q, want miss", res.Cache)
	}

	resp, body = postJSON(t, ts.URL+"/v2/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cache != "pred" {
		t.Errorf("repeat request cache = %q, want pred", res.Cache)
	}
}

func TestV2PredictValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   map[string]any
		status int
		code   string
		substr string
	}{
		{"empty kernel", map[string]any{"design": map[string]any{}},
			400, api.CodeBadRequest, "kernel is required"},
		{"unknown kernel", map[string]any{"kernel": map[string]any{"id": "bogus/bogus"}},
			404, api.CodeNotFound, "unknown kernel bogus/bogus"},
		{"malformed id", map[string]any{"kernel": map[string]any{"id": "noslash"}},
			400, api.CodeBadRequest, "bench/kernel"},
		{"ambiguous ref", map[string]any{"kernel": map[string]any{"id": "hotspot/hotspot", "bench": "hotspot"}},
			400, api.CodeBadRequest, "ambiguous"},
		{"bad design", map[string]any{"kernel": map[string]any{"id": "hotspot/hotspot"},
			"design": map[string]any{"wg_size": 63}},
			400, api.CodeBadRequest, "not in the kernel's sweep"},
		{"bad platform", map[string]any{"kernel": map[string]any{"id": "hotspot/hotspot"},
			"platform": "asic"},
			400, api.CodeBadRequest, "unknown platform"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v2/predict", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.status, body)
			}
			var env struct {
				Error *api.Error `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
				t.Fatalf("not a v2 error envelope: %v\n%s", err, body)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if !strings.Contains(env.Error.Message, tc.substr) {
				t.Errorf("message %q does not contain %q", env.Error.Message, tc.substr)
			}
		})
	}
}

func TestV2PredictInlineKernel(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Minute})
	src := `__kernel void scale(__global const float* x, __global float* y, int n) {
	int i = get_global_id(0);
	y[i] = x[i] * 2.0f + (float)n;
}`
	req := map[string]any{
		"kernel": map[string]any{
			"source":  src,
			"fn":      "scale",
			"global":  []int64{1024},
			"scalars": map[string]int64{"n": 3},
		},
		"design": map[string]any{"wg_size": 64},
	}
	resp, body := postJSON(t, ts.URL+"/v2/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res api.PredictResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "inline/scale" {
		t.Errorf("kernel = %q, want inline/scale", res.Kernel)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles = %v, want > 0", res.Cycles)
	}

	// Unbound scalar arguments are a 400 naming the argument.
	bad := map[string]any{
		"kernel": map[string]any{
			"source": src, "fn": "scale", "global": []int64{1024},
		},
		"design": map[string]any{"wg_size": 64},
	}
	resp, body = postJSON(t, ts.URL+"/v2/predict", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unbound scalar: status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "scalar argument(s) unset: n") {
		t.Errorf("unbound scalar error does not name n: %s", body)
	}
}

// TestV2PredictCoalescing is the tentpole property: K concurrent
// predictions of the same kernel share ONE compile+analyze execution
// through the singleflight prep cache.
func TestV2PredictCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Minute})
	const K = 32
	req := map[string]any{
		"kernel": map[string]any{"id": "hotspot/hotspot"},
		"design": map[string]any{"wg_size": 64},
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v2/predict", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d, body %s", resp.StatusCode, body)
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d/%d requests failed", bad.Load(), K)
	}
	st := s.prep.Stats()
	if st.Computes != 1 {
		t.Errorf("prep computes = %d for %d concurrent identical predicts, want 1", st.Computes, K)
	}
	// The other K-1 requests must each have been served by a dedup
	// layer: coalesced onto the in-flight prep fill, a prep-cache hit,
	// or a pred-cache (estimate) hit. With the static-profile fast
	// path, prep can finish before the stragglers arrive, so the pred
	// cache legitimately absorbs them instead of singleflight.
	deduped := st.Coalesced + st.Hits + s.pred.Stats().Hits
	if deduped < K-1 {
		t.Errorf("deduplicated lookups = %d (coalesced %d, prep hits %d, pred hits %d), want >= %d",
			deduped, st.Coalesced, st.Hits, s.pred.Stats().Hits, K-1)
	}
}

func TestV2PredictShed429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrentPredicts: 1,
		PredictQueueDepth:     1,
		RetryAfter:            2 * time.Second,
		RequestTimeout:        time.Minute,
	})
	// Saturate: hold the only slot, then park one waiter to fill the
	// interactive lane's queue.
	release, _, err := s.admit.admit(context.Background(), laneInteractive)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if rel, _, err := s.admit.admit(waiterCtx, laneInteractive); err == nil {
			rel()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q, _ := s.admit.depths()
		if q[laneInteractive] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	for _, path := range []string{"/v1/predict", "/v2/predict"} {
		body := map[string]any{"kernel": map[string]any{"id": "hotspot/hotspot"}}
		if path == "/v1/predict" {
			body = map[string]any{"bench": "hotspot", "kernel": "hotspot"}
		}
		resp, raw := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status = %d, want 429; body %s", path, resp.StatusCode, raw)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Errorf("%s: Retry-After = %q, want \"2\"", path, ra)
		}
		if !strings.Contains(string(raw), "queue full") {
			t.Errorf("%s: body does not mention queue full: %s", path, raw)
		}
	}

	// The metrics endpoint reports the shed and the queue state.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		`flexcl_predict_shed_total{lane="interactive"} 2`,
		`flexcl_predict_queue_depth{lane="interactive"} 1`,
		`flexcl_predict_slots_free 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	cancelWaiter()
	<-waiterDone
}

// TestAnalyzeCancellation pins the context contract of the model layer:
// a cancelled context aborts Analyze with the context's error.
func TestAnalyzeCancellation(t *testing.T) {
	k := bench.Find("hotspot", "hotspot")
	if k == nil {
		t.Fatal("hotspot kernel missing")
	}
	f, err := k.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = model.Analyze(ctx, f, device.Virtex7(), k.Config(64), model.AnalysisOptions{})
	if err == nil {
		t.Fatal("Analyze with cancelled context succeeded")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestV2PredictDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/v2/predict", map[string]any{
		"kernel": map[string]any{"id": "hotspot/hotspot"},
		"design": map[string]any{"wg_size": 64},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	var env struct {
		Error *api.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("not a v2 error envelope: %s", body)
	}
	if env.Error.Code != api.CodeDeadline {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeDeadline)
	}
}

func TestV2BatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchTimeout: time.Minute})
	resp, body := postJSON(t, ts.URL+"/v2/predict:batch", map[string]any{
		"items": []map[string]any{
			{"kernel": map[string]any{"id": "hotspot/hotspot"},
				"design": map[string]any{"wg_size": 64}},
			{"kernel": map[string]any{"id": "nope/nope"},
				"design": map[string]any{"wg_size": 64}},
			{"kernel": map[string]any{"id": "hotspot/hotspot"},
				"design": map[string]any{"wg_size": 64, "pe": 4}},
			{"kernel": map[string]any{"id": "nn/nn"},
				"design": map[string]any{}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out api.BatchPredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	if out.Succeeded != 2 || out.Failed != 2 {
		t.Fatalf("succeeded/failed = %d/%d, want 2/2\n%s", out.Succeeded, out.Failed, body)
	}
	if !out.Items[0].OK || out.Items[0].Result == nil {
		t.Error("item 0 should succeed")
	}
	if out.Items[1].OK || out.Items[1].Error == nil || out.Items[1].Error.Code != api.CodeNotFound {
		t.Errorf("item 1 should fail not_found, got %+v", out.Items[1])
	}
	if out.Items[2].OK || out.Items[2].Error == nil ||
		out.Items[2].Error.Code != api.CodeBadRequest ||
		!strings.Contains(out.Items[2].Error.Message, "wi_pipeline") {
		t.Errorf("item 2 should fail bad_request naming wi_pipeline, got %+v", out.Items[2])
	}
	if !out.Items[3].OK {
		t.Errorf("item 3 should succeed, got %+v", out.Items[3])
	}
}

func TestV2BatchEnvelopeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	resp, body := postJSON(t, ts.URL+"/v2/predict:batch", map[string]any{
		"items": []map[string]any{},
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "batch is empty") {
		t.Errorf("empty batch: status = %d, body %s", resp.StatusCode, body)
	}
	item := map[string]any{"kernel": map[string]any{"id": "hotspot/hotspot"}}
	resp, body = postJSON(t, ts.URL+"/v2/predict:batch", map[string]any{
		"items": []map[string]any{item, item, item},
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "exceeds the limit of 2") {
		t.Errorf("oversize batch: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestV2BatchCoalescesDuplicates: a batch full of the same kernel also
// collapses to one compile+analyze.
func TestV2BatchCoalescesDuplicates(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchTimeout: time.Minute})
	items := make([]map[string]any, 16)
	for i := range items {
		items[i] = map[string]any{
			"kernel": map[string]any{"id": "hotspot/hotspot"},
			"design": map[string]any{"wg_size": 64},
		}
	}
	resp, body := postJSON(t, ts.URL+"/v2/predict:batch", map[string]any{"items": items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out api.BatchPredictResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 {
		t.Fatalf("failed = %d, want 0\n%s", out.Failed, body)
	}
	if st := s.prep.Stats(); st.Computes != 1 {
		t.Errorf("prep computes = %d for a 16-duplicate batch, want 1", st.Computes)
	}
}

func TestV2ExploreAndJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v2/explore", map[string]any{
		"kernel": map[string]any{"id": "nn/nn"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc api.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Kernel != "nn/nn" || !strings.HasPrefix(acc.URL, "/v2/jobs/") {
		t.Fatalf("bad acceptance: %+v", acc)
	}
	if loc := resp.Header.Get("Location"); loc != acc.URL {
		t.Errorf("Location = %q, want %q", loc, acc.URL)
	}
	v := waitJob(t, ts.URL+acc.URL, time.Minute)
	if v.State != JobDone {
		t.Fatalf("job state = %s (err %q), want done", v.State, v.Error)
	}
	if v.Summary == nil || v.Summary.Points == 0 || v.Summary.Best == nil {
		t.Fatalf("bad summary: %+v", v.Summary)
	}

	// Unknown job ids answer a typed 404.
	jr, err := http.Get(ts.URL + "/v2/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", jr.StatusCode)
	}
}

// TestV2ExploreGuided: the v2-only "search" field runs the
// branch-and-bound search and reports its evaluation accounting; the
// pareto strategy additionally returns the frontier.
func TestV2ExploreGuided(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v2/explore", map[string]any{
		"kernel": map[string]any{"id": "nn/nn"},
		"search": "pareto",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc api.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, ts.URL+acc.URL, time.Minute)
	if v.State != JobDone {
		t.Fatalf("job state = %s (err %q), want done", v.State, v.Error)
	}
	sum := v.Summary
	if sum == nil || sum.Best == nil {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.Search != "pareto" {
		t.Errorf("summary search = %q, want pareto", sum.Search)
	}
	if sum.Evaluated+sum.Pruned != sum.SpacePoints || sum.SpacePoints == 0 {
		t.Errorf("evaluated %d + pruned %d != space %d", sum.Evaluated, sum.Pruned, sum.SpacePoints)
	}
	if sum.Evaluated >= sum.SpacePoints {
		t.Errorf("guided search evaluated the whole space (%d of %d)", sum.Evaluated, sum.SpacePoints)
	}
	if len(sum.Frontier) == 0 {
		t.Error("pareto search returned no frontier")
	}

	// The guided best must match the exhaustive best for the same kernel.
	resp, body = postJSON(t, ts.URL+"/v2/explore", map[string]any{
		"kernel": map[string]any{"id": "nn/nn"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	ev := waitJob(t, ts.URL+acc.URL, time.Minute)
	if ev.State != JobDone || ev.Summary == nil || ev.Summary.Best == nil {
		t.Fatalf("exhaustive job: state %s summary %+v", ev.State, ev.Summary)
	}
	if *ev.Summary.Best != *sum.Best {
		t.Errorf("guided best %+v != exhaustive best %+v", *sum.Best, *ev.Summary.Best)
	}
	if ev.Summary.Search != "" || ev.Summary.SpacePoints != 0 || len(ev.Summary.Frontier) != 0 {
		t.Errorf("exhaustive summary leaked guided fields: %+v", ev.Summary)
	}
}

// TestV2ExploreSearchValidation: unknown strategies and incompatible
// combinations answer typed 400s.
func TestV2ExploreSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []map[string]any{
		{"kernel": map[string]any{"id": "nn/nn"}, "search": "bogus"},
		{"kernel": map[string]any{"id": "nn/nn"}, "search": "guided", "sim": true},
		{"kernel": map[string]any{"id": "nn/nn"}, "search": "pareto", "prune_infeasible": true},
	} {
		resp, b := postJSON(t, ts.URL+"/v2/explore", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%v: status = %d, want 400 (%s)", body, resp.StatusCode, b)
		}
	}
}
