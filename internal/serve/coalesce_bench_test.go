package serve

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
)

// The coalescing benchmarks quantify the tentpole win: with the
// singleflight prep cache, K concurrent predictions of one kernel
// execute ONE compile+analyze; without it (the pre-coalescing service,
// emulated with per-request caches) they execute K. Run them with
//
//	make bench-serve
//
// and compare the computes/op metric: coalesced must be at least 5x
// lower (it is K times lower by construction).

const benchFanout = 32

func benchTarget(b *testing.B) (*bench.Kernel, *device.Platform, model.Design) {
	b.Helper()
	k := bench.Find("hotspot", "hotspot")
	if k == nil {
		b.Fatal("hotspot kernel missing")
	}
	return k, device.Virtex7(), model.Design{WGSize: 64, PE: 1, CU: 1}
}

// BenchmarkPredictCoalesced: K concurrent predictions through one
// shared singleflight prep cache (the served configuration).
func BenchmarkPredictCoalesced(b *testing.B) {
	k, p, d := benchTarget(b)
	var computes, requests uint64
	for i := 0; i < b.N; i++ {
		prep := dse.NewPrepCache()
		var wg sync.WaitGroup
		for j := 0; j < benchFanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				an, _, err := prep.AnalysisContext(context.Background(), k, p, d.WGSize)
				if err != nil {
					b.Error(err)
					return
				}
				an.Predict(d)
			}()
		}
		wg.Wait()
		computes += prep.Stats().Computes
		requests += benchFanout
	}
	b.ReportMetric(float64(computes)/float64(b.N), "computes/op")
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

// BenchmarkPredictUncoalesced: the same K concurrent predictions, each
// with a private prep cache — every request pays its own
// compile+analyze, as the service did before the singleflight rework.
func BenchmarkPredictUncoalesced(b *testing.B) {
	k, p, d := benchTarget(b)
	var computes, requests uint64
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for j := 0; j < benchFanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prep := dse.NewPrepCache()
				an, _, err := prep.AnalysisContext(context.Background(), k, p, d.WGSize)
				if err != nil {
					b.Error(err)
					return
				}
				an.Predict(d)
				mu.Lock()
				computes += prep.Stats().Computes
				mu.Unlock()
			}()
		}
		wg.Wait()
		requests += benchFanout
	}
	b.ReportMetric(float64(computes)/float64(b.N), "computes/op")
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

// BenchmarkServePredictHot measures the full HTTP round trip for a
// prediction-cache hit — the latency floor of the interactive path.
func BenchmarkServePredictHot(b *testing.B) {
	s := New(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.pool.stop(ctx)
	}()
	k, p, d := benchTarget(b)
	// Warm both caches once.
	if _, err := s.predictCore(context.Background(), laneInteractive, k, p, d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.predictCore(context.Background(), laneInteractive, k, p, d); err != nil {
			b.Fatal(err)
		}
	}
}
