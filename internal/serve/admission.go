package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Admission lanes. Interactive traffic (/v1/predict, /v2/predict) is
// always granted a freed slot before bulk traffic (batch items), so a
// large batch can never starve interactive predictions — it only ever
// uses slots the interactive lane is not asking for.
const (
	laneInteractive = iota
	laneBulk
	laneCount
)

func laneName(lane int) string {
	if lane == laneBulk {
		return "bulk"
	}
	return "interactive"
}

// errShed reports that a lane's admission queue was full: the request
// was refused immediately (429 + Retry-After) instead of piling onto
// the worker pool. Load is shed at the door, not after queueing work.
var errShed = errors.New("serve: admission queue full")

// admitter is a two-lane admission gate for the synchronous prediction
// path: at most `slots` predictions execute concurrently, at most
// `depth` waiters queue per lane, and anything beyond that is shed.
// Freed slots are handed directly to the longest-waiting interactive
// waiter, then to bulk waiters, then returned to the free pool.
type admitter struct {
	mu    sync.Mutex
	slots int
	depth int
	q     [laneCount][]*admitWaiter
}

// admitWaiter is one queued request; a send on ch transfers one slot.
type admitWaiter struct {
	ch chan struct{}
}

func newAdmitter(slots, depth int) *admitter {
	return &admitter{slots: slots, depth: depth}
}

// admit blocks until a slot is free, ctx expires, or the lane's queue
// is full (errShed). On success the caller owns one slot and must call
// release exactly once. wait is the time spent queued.
func (a *admitter) admit(ctx context.Context, lane int) (release func(), wait time.Duration, err error) {
	a.mu.Lock()
	if a.slots > 0 {
		a.slots--
		a.mu.Unlock()
		return a.release, 0, nil
	}
	if len(a.q[lane]) >= a.depth {
		a.mu.Unlock()
		return nil, 0, errShed
	}
	w := &admitWaiter{ch: make(chan struct{}, 1)}
	a.q[lane] = append(a.q[lane], w)
	a.mu.Unlock()

	t0 := time.Now()
	select {
	case <-w.ch:
		return a.release, time.Since(t0), nil
	case <-ctx.Done():
		a.mu.Lock()
		removed := a.removeLocked(lane, w)
		a.mu.Unlock()
		if !removed {
			// The slot was granted concurrently with cancellation: take
			// it and pass it straight on so it is not lost.
			<-w.ch
			a.release()
		}
		return nil, time.Since(t0), ctx.Err()
	}
}

func (a *admitter) removeLocked(lane int, w *admitWaiter) bool {
	for i, cand := range a.q[lane] {
		if cand == w {
			a.q[lane] = append(a.q[lane][:i], a.q[lane][i+1:]...)
			return true
		}
	}
	return false
}

// release frees one slot, granting it to the head of the interactive
// queue first, then bulk, then back to the free pool.
func (a *admitter) release() {
	a.mu.Lock()
	for lane := 0; lane < laneCount; lane++ {
		if len(a.q[lane]) > 0 {
			w := a.q[lane][0]
			a.q[lane] = a.q[lane][1:]
			a.mu.Unlock()
			w.ch <- struct{}{}
			return
		}
	}
	a.slots++
	a.mu.Unlock()
}

// depths snapshots the per-lane queue lengths and free slots.
func (a *admitter) depths() (queued [laneCount]int, free int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for lane := range a.q {
		queued[lane] = len(a.q[lane])
	}
	return queued, a.slots
}

// exportMetrics folds the admitter's state into scrape-time gauges.
func (a *admitter) exportMetrics(reg *obs.Registry) {
	queued, free := a.depths()
	for lane := 0; lane < laneCount; lane++ {
		reg.Gauge("predict_queue_depth", fmt.Sprintf(`lane="%s"`, laneName(lane))).
			Set(float64(queued[lane]))
	}
	reg.Gauge("predict_slots_free", "").Set(float64(free))
}
