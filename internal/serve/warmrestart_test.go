package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/bench"
)

// warmCorpus is the deterministic stride-6 kernel subset (10 of the 60
// bundled kernels, spanning Rodinia and PolyBench) that flexcl-check
// -smoke and the DSE benchmarks also use.
func warmCorpus() []*bench.Kernel {
	var out []*bench.Kernel
	for i, k := range bench.All() {
		if i%6 == 0 {
			out = append(out, k)
		}
	}
	return out
}

// predictCorpus runs one /v2/predict per corpus kernel (first WG size
// each) and returns the raw response bodies keyed by kernel id plus the
// per-request wall times.
func predictCorpus(t *testing.T, baseURL string, ks []*bench.Kernel) (map[string][]byte, []time.Duration) {
	t.Helper()
	bodies := make(map[string][]byte, len(ks))
	times := make([]time.Duration, 0, len(ks))
	for _, k := range ks {
		req := map[string]any{
			"kernel": map[string]any{"id": k.ID()},
			"design": map[string]any{"wg_size": k.WGSizes()[0]},
		}
		t0 := time.Now()
		resp, body := postJSON(t, baseURL+"/v2/predict", req)
		times = append(times, time.Since(t0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: predict status %d: %s", k.ID(), resp.StatusCode, body)
		}
		bodies[k.ID()] = body
	}
	return bodies, times
}

func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// TestWarmRestartArtifact is the tentpole's acceptance proof: a server
// started against an artifact directory populated by a previous
// instance serves the corpus with ZERO compile+analyze computes — every
// prep fill restored from disk — and returns byte-identical prediction
// bodies. With BENCH_SERVE_JSON set it also writes the cold-vs-warm
// comparison as the `make bench-serve` CI artifact.
func TestWarmRestartArtifact(t *testing.T) {
	dir := t.TempDir()
	ks := warmCorpus()
	if len(ks) == 0 {
		t.Fatal("empty corpus")
	}

	// Cold start: empty directory, every prediction pays the full
	// compile+analyze.
	cold, coldTS := newTestServer(t, Config{ArtifactDir: dir})
	coldBodies, coldTimes := predictCorpus(t, coldTS.URL, ks)
	coldStats := cold.prep.Stats()
	if coldStats.Computes != uint64(len(ks)) {
		t.Fatalf("cold computes = %d, want %d (one per kernel)", coldStats.Computes, len(ks))
	}
	if coldStats.DiskHits != 0 {
		t.Fatalf("cold disk hits = %d, want 0", coldStats.DiskHits)
	}
	// Let the trailing artifact writes land before the "restart".
	cold.prep.Flush()
	if cold.artifacts == nil {
		t.Fatal("server opened no artifact store despite ArtifactDir")
	}
	if got := cold.artifacts.Len(); got != len(ks) {
		t.Fatalf("store holds %d records after the cold run, want %d", got, len(ks))
	}

	// Warm restart: a fresh process (new Server, new caches) on the
	// populated directory.
	warm, warmTS := newTestServer(t, Config{ArtifactDir: dir})
	warmBodies, warmTimes := predictCorpus(t, warmTS.URL, ks)
	warmStats := warm.prep.Stats()
	if warmStats.Computes != 0 {
		t.Errorf("warm restart ran %d compile+analyze computes, want 0", warmStats.Computes)
	}
	if warmStats.DiskHits != uint64(len(ks)) {
		t.Errorf("warm disk hits = %d, want %d", warmStats.DiskHits, len(ks))
	}
	for _, k := range ks {
		if !bytes.Equal(coldBodies[k.ID()], warmBodies[k.ID()]) {
			t.Errorf("%s: warm body differs from cold\ncold: %s\nwarm: %s",
				k.ID(), coldBodies[k.ID()], warmBodies[k.ID()])
		}
	}

	// The artifact counters surface on /metrics for fleet dashboards.
	resp, err := http.Get(warmTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb bytes.Buffer
	if _, err := sb.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"flexcl_artifact_hits", "flexcl_artifact_misses",
		"flexcl_prep_cache_disk_hits", "flexcl_prep_cache_evictions",
	} {
		if !bytes.Contains(sb.Bytes(), []byte(metric)) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	if out := os.Getenv("BENCH_SERVE_JSON"); out != "" {
		writeBenchServeArtifact(t, out, len(ks), coldStats.Computes, warmStats.DiskHits, coldTimes, warmTimes)
	}
}

// writeBenchServeArtifact records the cold-start vs warm-restart
// comparison as the `make bench-serve` CI artifact (BENCH_serve.json).
func writeBenchServeArtifact(t *testing.T, path string, kernels int, coldComputes, warmDiskHits uint64, coldTimes, warmTimes []time.Duration) {
	t.Helper()
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	var coldSum, warmSum time.Duration
	for _, d := range coldTimes {
		coldSum += d
	}
	for _, d := range warmTimes {
		warmSum += d
	}
	speedup := 0.0
	if warmSum > 0 {
		speedup = float64(coldSum) / float64(warmSum)
	}
	art := map[string]any{
		"benchmark":          "ServeColdVsWarmRestart",
		"kernels":            kernels,
		"cold_computes":      coldComputes,
		"warm_computes":      0,
		"warm_disk_hits":     warmDiskHits,
		"cold_p50_ms":        ms(quantile(coldTimes, 0.50)),
		"cold_p99_ms":        ms(quantile(coldTimes, 0.99)),
		"cold_total_ms":      ms(coldSum),
		"warm_p50_ms":        ms(quantile(warmTimes, 0.50)),
		"warm_p99_ms":        ms(quantile(warmTimes, 0.99)),
		"warm_total_ms":      ms(warmSum),
		"cold_over_warm":     speedup,
		"predictions_match":  true,
		"zero_warm_computes": true,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold p99 %.1fms, warm p99 %.1fms, cold/warm %.1fx over %d kernels",
		ms(quantile(coldTimes, 0.99)), ms(quantile(warmTimes, 0.99)), speedup, kernels)
}
