package serve

// End-to-end fleet tests for clustered serving: several Servers, each
// behind its own httptest listener, joined into one consistent-hash
// ring. The acceptance bar is the ISSUE's compile-once property — a
// randomized replay over empty caches must leave the fleet-wide
// compute count equal to the number of distinct (kernel, platform, WG)
// keys, with response bodies independent of which replica answered.

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/pkg/flexclclient"
)

// newTestFleet boots n servers with identical configs and joins them
// into one ring. Every server sees the same membership list, so all
// replicas agree on key placement.
func newTestFleet(t *testing.T, n int, cfg Config) ([]*Server, []*httptest.Server) {
	t.Helper()
	servers := make([]*Server, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		servers[i], listeners[i] = newTestServer(t, cfg)
		urls[i] = listeners[i].URL
	}
	if n > 1 {
		for i, s := range servers {
			if err := s.ConfigureCluster(urls[i], urls); err != nil {
				t.Fatal(err)
			}
		}
	}
	return servers, listeners
}

// fleetKey is one distinct prep unit of work.
type fleetKey struct {
	k  *bench.Kernel
	wg int64
}

// fleetCorpus picks n kernels spread across the corpus, one WG size
// each.
func fleetCorpus(t *testing.T, n int) []fleetKey {
	t.Helper()
	all := bench.All()
	if len(all) < n {
		t.Fatalf("corpus has %d kernels, need %d", len(all), n)
	}
	stride := len(all) / n
	keys := make([]fleetKey, 0, n)
	for i := 0; i < n; i++ {
		k := all[i*stride]
		keys = append(keys, fleetKey{k: k, wg: k.WGSizes()[0]})
	}
	return keys
}

func v2PredictBody(fk fleetKey) map[string]any {
	return map[string]any{
		"kernel": map[string]any{"id": fk.k.ID()},
		"design": map[string]any{"wg_size": fk.wg},
	}
}

// ownedBy scans the corpus for a key the given member owns — tests that
// need a forward (or a local serve) pick their key by placement rather
// than hoping the hash lands right.
func ownedBy(t *testing.T, c *cluster.Cluster, member string) fleetKey {
	t.Helper()
	p := device.Virtex7()
	for _, k := range bench.All() {
		for _, wg := range k.WGSizes() {
			if owner, _ := c.Owner(cluster.PrepKey(k, p, wg)); owner == cluster.Normalize(member) {
				return fleetKey{k: k, wg: wg}
			}
		}
	}
	t.Fatalf("no corpus key owned by %s", member)
	return fleetKey{}
}

// TestClusterSingleCompile is the headline e2e: a 3-replica fleet over
// empty caches serves a randomized replay of the corpus sample and
// compiles each distinct key exactly once fleet-wide, with bodies
// byte-identical no matter which replica took the request.
func TestClusterSingleCompile(t *testing.T) {
	const replicas, kernels, repeats = 3, 4, 3
	servers, listeners := newTestFleet(t, replicas, Config{})
	keys := fleetCorpus(t, kernels)

	// Randomized replay: every key hits every replica once, in a
	// shuffled order (deterministic seed so failures reproduce).
	type shot struct {
		key     fleetKey
		replica int
	}
	var shots []shot
	for _, fk := range keys {
		for r := 0; r < repeats; r++ {
			shots = append(shots, shot{fk, r % replicas})
		}
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shots), func(i, j int) { shots[i], shots[j] = shots[j], shots[i] })

	bodies := map[string]map[int]string{} // kernel id -> replica -> normalized v2 body
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range shots {
		wg.Add(1)
		go func(sh shot) {
			defer wg.Done()
			resp, raw := postJSON(t, listeners[sh.replica].URL+"/v2/predict", v2PredictBody(sh.key))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("replica %d, %s: status %d, body %s", sh.replica, sh.key.k.ID(), resp.StatusCode, raw)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			id := sh.key.k.ID()
			if bodies[id] == nil {
				bodies[id] = map[int]string{}
			}
			bodies[id][sh.replica] = normalizeV2(t, raw)
		}(sh)
	}
	wg.Wait()

	// Compile-once: fleet-wide computes == distinct keys.
	var computes uint64
	for _, s := range servers {
		computes += s.PrepStats().Computes
	}
	if computes != kernels {
		t.Errorf("fleet-wide computes = %d, want %d (one per distinct key)", computes, kernels)
	}

	// The forwarding actually happened: with 4 keys spread over 3
	// owners, at least one replica answered via a peer.
	var peerHits uint64
	for _, s := range servers {
		peerHits += s.PrepStats().PeerHits
	}
	if peerHits == 0 {
		t.Error("no peer hits across the fleet; forwarding never engaged")
	}

	// Identical verdicts everywhere: after stripping the attribution
	// fields (cache/served_by/forwarded legitimately differ by route),
	// every replica's v2 body for a key must match.
	for id, perReplica := range bodies {
		var want string
		for _, body := range perReplica {
			if want == "" {
				want = body
			} else if body != want {
				t.Errorf("%s: v2 bodies differ across replicas:\n%s\nvs\n%s", id, want, body)
			}
		}
	}

	// v1 has no attribution fields at all, so its bodies must be
	// byte-identical across replicas.
	for _, fk := range keys {
		var want []byte
		for i, ts := range listeners {
			resp, raw := postJSON(t, ts.URL+"/v1/predict", map[string]any{
				"bench": fk.k.Bench, "kernel": fk.k.Name,
				"design": map[string]any{"wg_size": fk.wg},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("v1 on replica %d: status %d, body %s", i, resp.StatusCode, raw)
			}
			if want == nil {
				want = raw
			} else if string(raw) != string(want) {
				t.Errorf("%s: v1 bodies differ byte-for-byte:\n%s\nvs\n%s", fk.k.ID(), want, raw)
			}
		}
	}

	// The replay must not have triggered any extra computes: v1 replays
	// hit warm caches.
	var after uint64
	for _, s := range servers {
		after += s.PrepStats().Computes
	}
	if after != kernels {
		t.Errorf("computes after v1 replay = %d, want still %d", after, kernels)
	}
}

// normalizeV2 strips the fields that legitimately vary with routing
// (cache tier, peer attribution) so the remaining body must be equal.
func normalizeV2(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad v2 body: %v\n%s", err, raw)
	}
	delete(m, "cache")
	delete(m, "served_by")
	delete(m, "forwarded")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestClusterStatusEndpoint: GET /v2/cluster exposes the ring — same
// version on every member, full peer table, self marked.
func TestClusterStatusEndpoint(t *testing.T) {
	servers, listeners := newTestFleet(t, 3, Config{})
	var version string
	for i, ts := range listeners {
		var snap cluster.Snapshot
		resp := getJSON(t, ts.URL+"/v2/cluster", &snap)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: /v2/cluster status %d", i, resp.StatusCode)
		}
		if !snap.Enabled {
			t.Errorf("replica %d: cluster not enabled", i)
		}
		if len(snap.Peers) != 3 {
			t.Errorf("replica %d: peer table has %d entries, want 3", i, len(snap.Peers))
		}
		if version == "" {
			version = snap.RingVersion
		} else if snap.RingVersion != version {
			t.Errorf("replica %d: ring version %q, others see %q", i, snap.RingVersion, version)
		}
		self := 0
		for _, ps := range snap.Peers {
			if ps.Self {
				self++
				if ps.URL != cluster.Normalize(listeners[i].URL) {
					t.Errorf("replica %d: self = %q, want %q", i, ps.URL, listeners[i].URL)
				}
			}
		}
		if self != 1 {
			t.Errorf("replica %d: %d peers marked self, want exactly 1", i, self)
		}
	}
	// Single-node servers answer too: enabled=false, just themselves.
	_, solo := newTestServer(t, Config{})
	var snap cluster.Snapshot
	getJSON(t, solo.URL+"/v2/cluster", &snap)
	if snap.Enabled {
		t.Error("single-node server reports a cluster")
	}
	_ = servers
}

// TestClusterPeerDownLocalCompute: the ISSUE's failure-mode bar — a
// down owner degrades to local compute, never to an error.
func TestClusterPeerDownLocalCompute(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	s, ts := newTestServer(t, Config{})
	if err := s.ConfigureCluster(ts.URL, []string{ts.URL, deadURL}); err != nil {
		t.Fatal(err)
	}
	fk := ownedBy(t, s.Cluster(), deadURL)

	resp, raw := postJSON(t, ts.URL+"/v2/predict", v2PredictBody(fk))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with dead owner: status %d, body %s", resp.StatusCode, raw)
	}
	var res map[string]any
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res["served_by"] != nil || res["forwarded"] != nil {
		t.Errorf("local-fallback response carries peer attribution: %s", raw)
	}
	if got := s.PrepStats().Computes; got != 1 {
		t.Errorf("local computes = %d, want 1 (fallback computed here)", got)
	}
	if snap := s.Cluster().Snapshot(); snap.LocalFallbacks == 0 {
		t.Error("LocalFallbacks not counted")
	}
}

// TestClusterOwnerShedPropagates: when the key's owner sheds the
// forwarded prep, the proxying replica surfaces the owner's 429 and
// Retry-After rather than retrying or computing locally — fleet
// over-capacity must look like over-capacity to the caller.
func TestClusterOwnerShedPropagates(t *testing.T) {
	proxy, proxyTS := newTestServer(t, Config{})
	owner, ownerTS := newTestServer(t, Config{
		MaxConcurrentPredicts: 1,
		PredictQueueDepth:     1,
		RetryAfter:            7 * time.Second,
		RequestTimeout:        time.Minute,
	})
	urls := []string{proxyTS.URL, ownerTS.URL}
	for i, s := range []*Server{proxy, owner} {
		if err := s.ConfigureCluster(urls[i], urls); err != nil {
			t.Fatal(err)
		}
	}
	fk := ownedBy(t, proxy.Cluster(), ownerTS.URL)

	// Saturate the owner's forward pool: hold its only slot, park a
	// waiter to fill the interactive queue. (Forwarded preps admit
	// through fwdAdmit, not the predict lanes — see handleClusterPrep.)
	release, _, err := owner.fwdAdmit.admit(context.Background(), laneInteractive)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	go func() {
		if rel, _, err := owner.fwdAdmit.admit(waiterCtx, laneInteractive); err == nil {
			rel()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q, _ := owner.fwdAdmit.depths()
		if q[laneInteractive] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued on the owner")
		}
		time.Sleep(time.Millisecond)
	}

	resp, raw := postJSON(t, proxyTS.URL+"/v2/predict", v2PredictBody(fk))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 propagated from the owner; body %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want the owner's \"7\"", ra)
	}
	if !strings.Contains(string(raw), "shed the forwarded prep") {
		t.Errorf("shed body does not name the fleet condition: %s", raw)
	}
	if got := proxy.PrepStats().Computes; got != 0 {
		t.Errorf("proxy computed %d preps during fleet shed, want 0", got)
	}
}

// TestClusterForwardsBypassPredictLanes: the deadlock-freedom
// property. A local predict holds its admission slot while it waits on
// a forward, so forwarded preps must not compete for those slots — an
// owner whose predict lanes are saturated still answers forwards. (On
// a one-slot-per-replica fleet, sharing the pool deadlocks the whole
// fleet; TestClusterSingleCompile exercises that end to end.)
func TestClusterForwardsBypassPredictLanes(t *testing.T) {
	proxy, proxyTS := newTestServer(t, Config{})
	owner, ownerTS := newTestServer(t, Config{MaxConcurrentPredicts: 1, RequestTimeout: time.Minute})
	urls := []string{proxyTS.URL, ownerTS.URL}
	for i, s := range []*Server{proxy, owner} {
		if err := s.ConfigureCluster(urls[i], urls); err != nil {
			t.Fatal(err)
		}
	}
	fk := ownedBy(t, proxy.Cluster(), ownerTS.URL)

	// The owner's only predict slot is taken for the whole test.
	release, _, err := owner.admit.admit(context.Background(), laneInteractive)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, raw := postJSON(t, proxyTS.URL+"/v2/predict", v2PredictBody(fk))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forward with saturated owner predict lanes: status %d, body %s", resp.StatusCode, raw)
	}
	if got := owner.PrepStats().Computes; got != 1 {
		t.Errorf("owner computes = %d, want 1 (the forward ran despite busy predict lanes)", got)
	}
}

// TestClusterForwardLaneAttribution: a batch item forwarded to the
// owner runs in the owner's bulk lane, an interactive predict in the
// interactive lane — admission class survives the hop.
func TestClusterForwardLaneAttribution(t *testing.T) {
	servers, listeners := newTestFleet(t, 2, Config{})
	proxy, owner := servers[0], servers[1]
	fk := ownedBy(t, proxy.Cluster(), listeners[1].URL)

	resp, raw := postJSON(t, listeners[0].URL+"/v2/predict:batch", map[string]any{
		"items": []any{v2PredictBody(fk)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", resp.StatusCode, raw)
	}
	snap := owner.Cluster().Snapshot()
	if snap.PrepsServed["bulk"] != 1 {
		t.Errorf("owner bulk preps = %d, want 1 (batch item forwarded into the bulk lane); served=%v",
			snap.PrepsServed["bulk"], snap.PrepsServed)
	}

	fk2 := ownedBy(t, proxy.Cluster(), listeners[1].URL)
	// Warm keys are memory hits and never forward; find a second key the
	// owner holds that the batch didn't already fill.
	if fk2.k.ID() == fk.k.ID() && fk2.wg == fk.wg {
		p := device.Virtex7()
	scan:
		for _, k := range bench.All() {
			for _, wgSize := range k.WGSizes() {
				o, _ := proxy.Cluster().Owner(cluster.PrepKey(k, p, wgSize))
				if o == cluster.Normalize(listeners[1].URL) && !(k.ID() == fk.k.ID() && wgSize == fk.wg) {
					fk2 = fleetKey{k: k, wg: wgSize}
					break scan
				}
			}
		}
	}
	resp, raw = postJSON(t, listeners[0].URL+"/v2/predict", v2PredictBody(fk2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", resp.StatusCode, raw)
	}
	snap = owner.Cluster().Snapshot()
	if snap.PrepsServed["interactive"] != 1 {
		t.Errorf("owner interactive preps = %d, want 1; served=%v",
			snap.PrepsServed["interactive"], snap.PrepsServed)
	}
}

// TestClusterHedgedPairSingleCompute: a client hedging across two
// replicas sends the same key twice; owner-side singleflight plus ring
// routing must still compile it exactly once fleet-wide.
func TestClusterHedgedPairSingleCompute(t *testing.T) {
	servers, listeners := newTestFleet(t, 2, Config{})
	cl := flexclclient.New(listeners[0].URL, nil,
		flexclclient.WithPeers(listeners[0].URL, listeners[1].URL),
		flexclclient.WithHedge(flexclclient.HedgePolicy{Delay: time.Nanosecond}))

	fk := fleetCorpus(t, 1)[0]
	res, err := cl.Predict(context.Background(), flexclclient.PredictRequest{
		Kernel: flexclclient.KernelRef{ID: fk.k.ID()},
		Design: flexclclient.Design{WGSize: fk.wg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != fk.k.ID() {
		t.Errorf("result kernel = %q, want %q", res.Kernel, fk.k.ID())
	}
	// Let the hedged loser's forwarded fill finish before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var computes uint64
		for _, s := range servers {
			computes += s.PrepStats().Computes
		}
		if computes == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet computes = %d after hedged pair, want exactly 1", computes)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestV1DeprecationHeaders: every /v1 response advertises the sunset
// and its /v2 successor; /v2 responses carry neither.
func TestV1DeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := getJSON(t, ts.URL+"/v1/kernels", nil)
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/v1/kernels: missing Deprecation: true")
	}
	if link := resp.Header.Get("Link"); link != `</v2/kernels>; rel="successor-version"` {
		t.Errorf("/v1/kernels: Link = %q", link)
	}

	// POST endpoints carry it too, including error responses.
	resp, _ = postJSON(t, ts.URL+"/v1/predict", map[string]any{"bench": "nope", "kernel": "nope"})
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/v1/predict error response: missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v2/predict") {
		t.Errorf("/v1/predict: Link = %q, want the /v2 successor", link)
	}

	for _, path := range []string{"/v2/kernels", "/healthz"} {
		resp := getJSON(t, ts.URL+path, nil)
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("%s: spurious Deprecation header", path)
		}
	}
}

// TestClusterMetricsExported: the flexcl_cluster_* family lands on
// /metrics once clustering is on.
func TestClusterMetricsExported(t *testing.T) {
	servers, listeners := newTestFleet(t, 2, Config{})
	fk := ownedBy(t, servers[0].Cluster(), listeners[1].URL)
	if resp, raw := postJSON(t, listeners[0].URL+"/v2/predict", v2PredictBody(fk)); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d, body %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(listeners[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, metric := range []string{
		"flexcl_cluster_enabled 1",
		"flexcl_cluster_peers 2",
		"flexcl_cluster_forwards",
		"flexcl_cluster_forward_hits",
		"flexcl_prep_cache_peer_hits 1",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}
