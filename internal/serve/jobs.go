package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/obs"
	"repro/internal/serve/api"
)

// Job states (wire values shared with the v2 envelope).
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// Job is one asynchronous design-space exploration.
type Job struct {
	ID string

	mu       sync.Mutex
	state    string
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	req      exploreRequest
	summary  *exploreSummary
}

// exploreRequest is the v1 wire shape of an exploration submission plus
// the resolved targets the worker runs against. v2 submissions resolve
// through the api envelope first (which also admits inline kernels) and
// fill k/p directly; v1 fills them through the same resolution, and the
// worker falls back to a corpus lookup when only wire fields are set
// (tests submit bare wire structs).
type exploreRequest struct {
	Bench        string `json:"bench"`
	Kernel       string `json:"kernel"`
	Platform     string `json:"platform"`
	Prune        bool   `json:"prune_infeasible"`
	Sim          bool   `json:"sim"`
	SimMaxGroups int    `json:"sim_max_groups"`
	Workers      int    `json:"workers"`
	Top          int    `json:"top"`

	// Search is the exploration strategy ("", exhaustive, guided,
	// pareto). v2-only: it is excluded from the JSON shape above so the
	// v1 endpoint's strict decoder keeps rejecting unknown fields and
	// the v1 wire surface stays frozen.
	Search string `json:"-"`

	k *bench.Kernel
	p *device.Platform
}

// Wire view types shared with the v2 envelope; the aliases keep the v1
// rendering (and this package's tests) pointed at one definition.
type (
	pointJSON      = api.Point
	exploreSummary = api.ExploreSummary
	jobView        = api.JobView
)

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:       j.ID,
		State:    j.state,
		Kernel:   j.req.Bench + "/" + j.req.Kernel,
		Platform: j.req.Platform,
		Created:  j.created,
		Error:    j.err,
		Summary:  j.summary,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	switch state {
	case JobRunning:
		j.started = time.Now()
	case JobDone, JobFailed, JobCanceled:
		j.finished = time.Now()
	}
}

// jobPool runs exploration jobs on a fixed set of worker goroutines
// with a bounded intake queue. Closing the pool (graceful drain) stops
// intake but lets queued and running jobs finish; the drain deadline
// cancels stragglers hard through their context.
type jobPool struct {
	srv     *Server
	queue   chan *Job
	wg      sync.WaitGroup
	workers int

	hardCtx    context.Context
	hardCancel context.CancelFunc

	mu       sync.Mutex
	seq      uint64
	jobs     map[string]*Job
	order    []string // insertion order, for history trimming
	retained int
	closed   bool
}

func newJobPool(srv *Server, workers, depth, retained int) *jobPool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &jobPool{
		srv:        srv,
		queue:      make(chan *Job, depth),
		workers:    workers,
		hardCtx:    ctx,
		hardCancel: cancel,
		jobs:       make(map[string]*Job),
		retained:   retained,
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *jobPool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		if p.hardCtx.Err() != nil {
			j.setState(JobCanceled)
			continue
		}
		j.setState(JobRunning)
		p.srv.runExplore(p.hardCtx, j)
	}
}

// submit enqueues a job, or reports why it can't (draining / full).
func (p *jobPool) submit(req exploreRequest) (*Job, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("server is draining")
	}
	p.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", p.seq),
		state:   JobQueued,
		created: time.Now(),
		req:     req,
	}
	select {
	case p.queue <- j:
	default:
		return nil, fmt.Errorf("job queue full (%d queued)", cap(p.queue))
	}
	p.jobs[j.ID] = j
	p.order = append(p.order, j.ID)
	p.trimLocked()
	return j, nil
}

// trimLocked drops the oldest finished jobs beyond the retention bound.
func (p *jobPool) trimLocked() {
	for len(p.order) > p.retained {
		dropped := false
		for i, id := range p.order {
			j := p.jobs[id]
			j.mu.Lock()
			fin := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
			j.mu.Unlock()
			if fin {
				delete(p.jobs, id)
				p.order = append(p.order[:i], p.order[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			return // everything live; let it grow
		}
	}
}

func (p *jobPool) get(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// counts returns jobs by state.
func (p *jobPool) counts() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int)
	for _, j := range p.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

func (p *jobPool) exportMetrics(reg *obs.Registry) {
	c := p.counts()
	for _, state := range []string{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled} {
		reg.Gauge("jobs", fmt.Sprintf(`state="%s"`, state)).Set(float64(c[state]))
	}
	reg.Gauge("jobs_inflight", "").Set(float64(c[JobQueued] + c[JobRunning]))
}

// stop drains the pool: no new intake, queued + running jobs finish.
// When ctx expires first, remaining jobs are cancelled through the hard
// context and stop returns the deadline error.
func (p *jobPool) stop(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.hardCancel()
		<-done
		return ctx.Err()
	}
}

// runExplore executes one job through the shared prep cache.
func (s *Server) runExplore(ctx context.Context, j *Job) {
	req := j.req
	k, p := req.k, req.p
	if k == nil {
		k = bench.FindID(req.Bench + "/" + req.Kernel)
	}
	if p == nil {
		p = device.Platforms()[req.Platform]
	}
	if k == nil || p == nil { // validated at submit; belt and braces
		j.mu.Lock()
		j.err = "kernel or platform vanished"
		j.mu.Unlock()
		j.setState(JobFailed)
		return
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ExploreTimeout)
	defer cancel()
	t0 := time.Now()
	// Each job gets its own trace under a predictable id so operators
	// can pull /debug/traces/job-{id} after polling the job.
	ctx, root := s.tracer.StartTrace(ctx, "job-"+j.ID, "explore "+k.ID())
	root.Annotate("job", j.ID)
	root.Annotate("kernel", k.ID())
	defer root.End()
	if req.Search == api.SearchGuided || req.Search == api.SearchPareto {
		s.runGuidedExplore(ctx, j, k, p, req, t0)
		return
	}
	s.reg.Counter("explore_search_total", `search="exhaustive"`).Inc()
	r, err := dse.Explore(ctx, k, dse.Options{
		Platform:        p,
		SkipActual:      !req.Sim,
		SkipBaseline:    true,
		SimMaxGroups:    req.SimMaxGroups,
		PruneInfeasible: req.Prune,
		Workers:         req.Workers,
		Cache:           s.prep,
	})
	if err != nil {
		j.mu.Lock()
		j.err = err.Error()
		j.mu.Unlock()
		if ctx.Err() != nil {
			j.setState(JobCanceled)
		} else {
			j.setState(JobFailed)
		}
		s.log.Warn("explore job failed", "id", j.ID, "kernel", k.ID(), "err", err)
		return
	}
	sum := &exploreSummary{
		Points:           len(r.Points),
		BaselineFailures: r.BaselineFailures,
		WallMS:           float64(r.WallTime.Microseconds()) / 1000,
		ModelMS:          float64(r.ModelTime.Microseconds()) / 1000,
		SimMS:            float64(r.SimTime.Microseconds()) / 1000,
	}
	if best, ok := r.BestByModel(); ok {
		sum.Best = &pointJSON{Design: designToJSON(best.Design), Est: best.Est, Actual: best.Actual}
	}
	top := req.Top
	if top <= 0 {
		top = 10
	}
	byEst := append([]dse.Point(nil), r.Points...)
	sort.SliceStable(byEst, func(a, b int) bool { return byEst[a].Est < byEst[b].Est })
	if top > len(byEst) {
		top = len(byEst)
	}
	for _, pt := range byEst[:top] {
		sum.Top = append(sum.Top, pointJSON{
			Design: designToJSON(pt.Design), Est: pt.Est, Actual: pt.Actual,
		})
	}
	s.reg.Counter("dse_points_total", `outcome="evaluated"`).Add(uint64(len(r.Points)))
	j.mu.Lock()
	j.summary = sum
	j.mu.Unlock()
	j.setState(JobDone)
	s.log.Info("explore job done", "id", j.ID, "kernel", k.ID(),
		"points", len(r.Points), "wall", time.Since(t0).Round(time.Millisecond))
}

// runGuidedExplore executes a guided/pareto job through dse.Search,
// sharing the server's prep cache with the exhaustive path.
func (s *Server) runGuidedExplore(ctx context.Context, j *Job, k *bench.Kernel, p *device.Platform, req exploreRequest, t0 time.Time) {
	s.reg.Counter("explore_search_total", fmt.Sprintf(`search="%s"`, req.Search)).Inc()
	r, err := dse.Search(ctx, k, dse.SearchOptions{
		Platform: p,
		Workers:  req.Workers,
		Cache:    s.prep,
		Pareto:   req.Search == api.SearchPareto,
	})
	if err != nil {
		j.mu.Lock()
		j.err = err.Error()
		j.mu.Unlock()
		if ctx.Err() != nil {
			j.setState(JobCanceled)
		} else {
			j.setState(JobFailed)
		}
		s.log.Warn("explore job failed", "id", j.ID, "kernel", k.ID(), "err", err)
		return
	}
	s.reg.Counter("dse_points_total", `outcome="evaluated"`).Add(uint64(r.Evaluated))
	s.reg.Counter("dse_points_total", `outcome="pruned"`).Add(uint64(r.Pruned))
	sum := &exploreSummary{
		Points:      len(r.Points),
		WallMS:      float64(r.WallTime.Microseconds()) / 1000,
		ModelMS:     float64(r.ModelTime.Microseconds()) / 1000,
		Search:      req.Search,
		SpacePoints: r.Space,
		Evaluated:   r.Evaluated,
		Pruned:      r.Pruned,
	}
	if r.BestOK {
		sum.Best = &pointJSON{Design: designToJSON(r.Best.Design), Est: r.Best.Est}
	}
	top := req.Top
	if top <= 0 {
		top = 10
	}
	byEst := append([]dse.Point(nil), r.Points...)
	sort.SliceStable(byEst, func(a, b int) bool { return byEst[a].Est < byEst[b].Est })
	if top > len(byEst) {
		top = len(byEst)
	}
	for _, pt := range byEst[:top] {
		sum.Top = append(sum.Top, pointJSON{Design: designToJSON(pt.Design), Est: pt.Est})
	}
	for _, pt := range r.Frontier {
		sum.Frontier = append(sum.Frontier, pointJSON{Design: designToJSON(pt.Design), Est: pt.Est})
	}
	j.mu.Lock()
	j.summary = sum
	j.mu.Unlock()
	j.setState(JobDone)
	s.log.Info("explore job done", "id", j.ID, "kernel", k.ID(),
		"search", req.Search, "evaluated", r.Evaluated, "pruned", r.Pruned,
		"wall", time.Since(t0).Round(time.Millisecond))
}

// submitExplore validates the bounds shared by both API versions and
// enqueues the job.
func (s *Server) submitExplore(req exploreRequest) (*Job, *api.Error) {
	if req.SimMaxGroups < 0 || req.Workers < 0 || req.Top < 0 {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"sim_max_groups, workers and top must be ≥ 0")
	}
	switch req.Search {
	case "", api.SearchExhaustive:
		req.Search = ""
	case api.SearchGuided, api.SearchPareto:
		if req.Sim {
			return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
				"search %q is model-only: it evaluates only the designs its bounds cannot prune, so sim is incompatible (use search=exhaustive)", req.Search)
		}
		if req.Prune {
			return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
				"search %q does not support prune_infeasible (the bound proof covers the full lattice)", req.Search)
		}
	default:
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"unknown search %q (want exhaustive, guided or pareto)", req.Search)
	}
	if req.Sim && req.SimMaxGroups == 0 {
		req.SimMaxGroups = 8
	}
	if req.Workers == 0 {
		req.Workers = s.cfg.DSEWorkers
	}
	j, err := s.pool.submit(req)
	if err != nil {
		return nil, api.Errf(api.CodeUnavailable, http.StatusServiceUnavailable,
			"cannot accept job: %v", err)
	}
	return j, nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	k, e := api.ResolveKernel(api.KernelRef{Bench: req.Bench, Kernel: req.Kernel}, api.V1)
	if e != nil {
		writeV1Err(w, e)
		return
	}
	p, key, e := api.ResolvePlatform(req.Platform)
	if e != nil {
		writeV1Err(w, e)
		return
	}
	req.Platform = key
	req.k, req.p = k, p
	j, e := s.submitExplore(req)
	if e != nil {
		writeV1Err(w, e)
		return
	}
	s.log.Info("explore job queued", "id", j.ID, "kernel", k.ID(), "platform", p.Name)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     j.ID,
		"state":  JobQueued,
		"url":    "/v1/jobs/" + j.ID,
		"kernel": k.ID(),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.pool.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}
