package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// requestIDHeader is the correlation header: honored when the client
// sends a well-formed value, generated otherwise, always echoed on the
// response so clients can quote it (and fetch /debug/traces/{id}).
const requestIDHeader = "X-Request-ID"

// reqSeq + reqPrefix make generated ids unique within and across
// processes: a per-process random prefix plus an atomic counter.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
)

func newRequestID() string {
	return fmt.Sprintf("req-%s-%d", reqPrefix, reqSeq.Add(1))
}

// validRequestID accepts client-supplied ids conservatively: short and
// from a charset that is safe in logs, headers and URL path segments.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// untraced lists the paths whose requests get a request id but no trace:
// scrapes and probes would otherwise rotate real traffic out of the
// ring, and tracing the trace API is just noise.
func untraced(path string) bool {
	return path == "/metrics" || path == "/healthz" || path == "/v2/cluster" ||
		strings.HasPrefix(path, "/debug/")
}

// trace assigns every request its id (honoring a well-formed client
// X-Request-ID) and opens the request-scoped root span that the rest of
// the pipeline hangs its stage spans off. The finished trace lands in
// the tracer's ring, retrievable as /debug/traces/{id} by the same id
// the response header and the access log carry.
func (s *Server) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		obs.AddField(r.Context(), "request_id", id)
		if untraced(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, root := s.tracer.StartTrace(r.Context(), id, r.Method+" "+route(r.URL.Path))
		if root == nil { // tracing disabled
			next.ServeHTTP(w, r)
			return
		}
		rec := obs.NewResponseRecorder(w)
		defer func() {
			root.Annotate("status", fmt.Sprint(rec.Code))
			root.End()
		}()
		next.ServeHTTP(rec, r.WithContext(ctx))
	})
}
