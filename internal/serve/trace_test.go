package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newBenchServer(b *testing.B, s *Server) *httptest.Server {
	b.Helper()
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func newDebugTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.DebugHandler())
	t.Cleanup(ts.Close)
	return ts
}

var tracePredictBody = map[string]any{
	"kernel": map[string]any{"id": "hotspot/hotspot"},
	"design": map[string]any{
		"wg_size": 64, "wi_pipeline": true, "pe": 4, "cu": 2, "mode": "pipeline",
	},
}

// getTrace polls /debug/traces/{id} until the trace lands in the ring:
// the root span ends in a middleware defer, after the client already has
// the response, so an immediate GET can race the insert.
func getTrace(t *testing.T, base, id string) telemetry.TraceView {
	t.Helper()
	var v telemetry.TraceView
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := getJSON(t, base+"/debug/traces/"+id, &v)
		if resp.StatusCode == http.StatusOK {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared (last status %d)", id, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spanNames(sv telemetry.SpanView, into map[string]int) {
	into[sv.Name]++
	for _, c := range sv.Children {
		spanNames(c, into)
	}
}

// TestPredictTraceSpans is the tentpole's acceptance test: one cold
// /v2/predict produces a retrievable trace whose span tree names every
// pipeline stage, with durations that fit inside the request wall time.
func TestPredictTraceSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(tracePredictBody)
	req, err := http.NewRequest("POST", ts.URL+"/v2/predict", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-e2e-1" {
		t.Fatalf("response request id = %q, want the one sent", got)
	}

	v := getTrace(t, ts.URL, "trace-e2e-1")
	if v.Spans < 6 {
		t.Errorf("trace has %d spans, want ≥ 6", v.Spans)
	}
	names := map[string]int{}
	spanNames(v.Root, names)
	for _, want := range []string{"admission", "prep", "compile", "profile", "memtrace", "model"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	// Per-stage attribution: each stage appears in the rollup, and the
	// root's direct children (sequential stages) fit in the wall time.
	for _, stage := range []string{"admission", "prep", "model"} {
		if _, ok := v.StageMS[stage]; !ok {
			t.Errorf("stage_ms missing %q: %v", stage, v.StageMS)
		}
	}
	var sum float64
	for _, c := range v.Root.Children {
		sum += c.DurationMS
	}
	if sum > v.DurationMS+0.5 {
		t.Errorf("children sum %.3fms exceeds request wall %.3fms", sum, v.DurationMS)
	}
	// Correlation annotations: kernel identity on the root, cache
	// outcome recorded, HTTP status annotated by the middleware.
	if v.Root.Attrs["kernel"] != "hotspot/hotspot" {
		t.Errorf("root kernel attr = %q", v.Root.Attrs["kernel"])
	}
	if v.Root.Attrs["cache"] != "miss" {
		t.Errorf("cold predict cache attr = %q, want miss", v.Root.Attrs["cache"])
	}
	if v.Root.Attrs["status"] != "200" {
		t.Errorf("status attr = %q, want 200", v.Root.Attrs["status"])
	}
	if v.Root.Attrs["source_hash"] == "" {
		t.Error("root missing source_hash attr")
	}

	// The listing includes it too.
	var list struct {
		Count  int                      `json:"count"`
		Traces []telemetry.TraceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/debug/traces", &list)
	found := false
	for _, s := range list.Traces {
		if s.ID == "trace-e2e-1" {
			found = true
		}
	}
	if !found {
		t.Error("trace listing does not include the finished request")
	}
}

// TestRequestIDGeneratedAndInvalidReplaced: missing and malformed client
// ids both yield a server-generated id on the response.
func TestRequestIDGeneratedAndInvalidReplaced(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no generated request id on the response")
	}

	for _, bad := range []string{"bad id with spaces", strings.Repeat("x", 65), "inj{ect}"} {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", bad)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" || id == bad {
			t.Errorf("malformed client id %q not replaced: %q", bad, id)
		}
	}
}

// TestScrapePathsUntraced: /metrics and /healthz carry request ids but
// must not occupy the trace ring.
func TestScrapePathsUntraced(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, p := range []string{"/metrics", "/healthz", "/debug/traces"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := len(s.Tracer().List()); got != 0 {
		t.Errorf("scrape paths produced %d traces, want 0", got)
	}
}

// TestTracingDisabled: TraceCapacity<0 serves requests untraced and the
// trace API answers with an empty listing.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceCapacity: -1})
	resp, body := postJSON(t, ts.URL+"/v2/predict", tracePredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d, body %s", resp.StatusCode, body)
	}
	var list struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/debug/traces", &list)
	if list.Count != 0 {
		t.Errorf("disabled tracer listed %d traces", list.Count)
	}
}

// TestBatchItemSpans: each batch item gets its own span subtree under
// the request trace.
func TestBatchItemSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	items := make([]map[string]any, 3)
	for i := range items {
		items[i] = map[string]any{
			"kernel": map[string]any{"id": "hotspot/hotspot"},
			"design": map[string]any{
				"wg_size": 64, "wi_pipeline": true, "pe": 1 + i, "cu": 1, "mode": "pipeline",
			},
		}
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]any{"items": items})
	req, _ := http.NewRequest("POST", ts.URL+"/v2/predict:batch", &buf)
	req.Header.Set("X-Request-ID", "batch-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	v := getTrace(t, ts.URL, "batch-e2e")
	names := map[string]int{}
	spanNames(v.Root, names)
	if names["item"] != 3 {
		t.Errorf("batch trace has %d item spans, want 3: %v", names["item"], names)
	}
}

// TestJobTrace: an exploration job records its own trace under the
// predictable job-{id} key, with the DSE stage spans.
func TestJobTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v2/explore", map[string]any{
		"kernel": map[string]any{"id": "hotspot/hotspot"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore status = %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	// Wait for the job to finish.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jv struct {
			State string `json:"state"`
		}
		getJSON(t, ts.URL+"/v2/jobs/"+acc.ID, &jv)
		if jv.State == "done" || jv.State == "failed" {
			if jv.State != "done" {
				t.Fatalf("job state = %q", jv.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(25 * time.Millisecond)
	}
	v := getTrace(t, ts.URL, "job-"+acc.ID)
	names := map[string]int{}
	spanNames(v.Root, names)
	for _, want := range []string{"prep", "sweep"} {
		if names[want] == 0 {
			t.Errorf("job trace missing %q span: %v", want, names)
		}
	}
}

// TestStageHistogramFed: finished traces feed the per-stage latency
// histogram on the metrics endpoint.
func TestStageHistogramFed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v2/predict", tracePredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d, body %s", resp.StatusCode, body)
	}
	// Wait for the deferred root-End to finish the trace.
	deadline := time.Now().Add(2 * time.Second)
	for s.reg.Histogram("stage_seconds", `stage="model"`).Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stage_seconds{stage=model} never observed a sample")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sb bytes.Buffer
	s.reg.WritePrometheus(&sb)
	if !bytes.Contains(sb.Bytes(), []byte(`flexcl_stage_seconds_count{stage="model"}`)) {
		t.Error("metrics output missing stage_seconds{stage=model}")
	}
}

// TestDebugHandler: the opt-in debug listener serves pprof and traces.
func TestDebugHandler(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Produce one trace via the main handler.
	resp, _ := postJSON(t, ts.URL+"/v2/predict", tracePredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	dbg := newDebugTestServer(t, s)
	for _, p := range []string{"/debug/pprof/", "/debug/vars", "/debug/traces"} {
		r, err := http.Get(dbg.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p, r.StatusCode)
		}
	}
}

// benchPredict measures the full HTTP round trip of a warm (pred-LRU
// hit) /v2/predict — the hot path the <3% tracing-overhead budget is
// defined against.
func benchPredict(b *testing.B, traceCapacity int) float64 {
	s := New(Config{
		Logger:        discardLogger(),
		TraceCapacity: traceCapacity,
	})
	ts := newBenchServer(b, s)
	body, _ := json.Marshal(tracePredictBody)
	// Warm the pred LRU once.
	resp, err := http.Post(ts.URL+"/v2/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v2/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.StopTimer()
	return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

func BenchmarkPredictTraced(b *testing.B)   { benchPredict(b, 256) }
func BenchmarkPredictUntraced(b *testing.B) { benchPredict(b, -1) }

// TestTraceOverheadArtifact runs the traced and untraced predict
// benchmarks and writes the overhead comparison to the JSON file named
// by BENCH_TRACE_JSON (the `make bench-trace` CI artifact). Without the
// env var it is skipped — a benchmark run inside go test would slow
// every plain `go test ./...` invocation.
func TestTraceOverheadArtifact(t *testing.T) {
	out := os.Getenv("BENCH_TRACE_JSON")
	if out == "" {
		t.Skip("set BENCH_TRACE_JSON=path to produce the trace-overhead artifact")
	}
	traced := testing.Benchmark(BenchmarkPredictTraced)
	untraced := testing.Benchmark(BenchmarkPredictUntraced)
	tNs := float64(traced.NsPerOp())
	uNs := float64(untraced.NsPerOp())
	ratio := 0.0
	if uNs > 0 {
		ratio = tNs/uNs - 1
	}
	art := map[string]any{
		"benchmark":        "PredictWarmHTTP",
		"traced_ns_op":     tNs,
		"untraced_ns_op":   uNs,
		"overhead_ratio":   ratio,
		"overhead_percent": ratio * 100,
		"traced_n":         traced.N,
		"untraced_n":       untraced.N,
		"budget_percent":   3.0,
		"within_budget":    ratio < 0.03,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("traced %.0f ns/op, untraced %.0f ns/op, overhead %.2f%%", tNs, uNs, ratio*100)
	// Report, don't hard-fail: HTTP round-trip noise on shared CI
	// runners can exceed the budget without any real regression. The
	// artifact records the measurement for the PR discussion.
	if ratio >= 0.03 {
		t.Logf("WARNING: tracing overhead %.2f%% exceeds the 3%% budget", ratio*100)
	}
}
