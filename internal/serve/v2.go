package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve/api"
	"repro/internal/telemetry"
)

// v2 handlers: the unified envelope (internal/serve/api) rendered with
// typed errors. The resolution and prediction core are shared with the
// v1 adapters — only the wire shapes differ.

// v2Predict resolves and executes one predict request on the given
// admission lane. The request context carries the deadline; timeout is
// the same budget by name, for failure messages.
func (s *Server) v2Predict(r *http.Request, req api.PredictRequest, lane int, timeout time.Duration) (*api.PredictResult, *api.Error) {
	res, apiErr := api.ResolvePredict(req, api.V2)
	if apiErr != nil {
		return nil, apiErr
	}
	out, err := s.predictCore(r.Context(), lane, res.K, res.P, res.D)
	if err != nil {
		return nil, s.predictErr(err, timeout)
	}
	est := out.est
	return &api.PredictResult{
		Kernel:        res.K.ID(),
		SourceHash:    res.K.SourceHash(),
		Platform:      res.PlatformKey,
		Design:        api.DesignToWire(res.D),
		EffectiveMode: est.Mode.String(),
		Cycles:        est.Cycles,
		Seconds:       est.Seconds,
		IIComp:        est.IIComp,
		Depth:         est.Depth,
		NPE:           est.NPE,
		NCU:           est.NCU,
		Cache:         out.cache,
		ServedBy:      out.servedBy,
		Forwarded:     out.forwarded,
	}, nil
}

func (s *Server) handleV2Predict(w http.ResponseWriter, r *http.Request) {
	var req api.PredictRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"bad request body: %v", err))
		return
	}
	res, apiErr := s.v2Predict(r, req, laneInteractive, s.cfg.RequestTimeout)
	if apiErr != nil {
		writeV2Err(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleV2Batch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchPredictRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"bad request body: %v", err))
		return
	}
	if len(req.Items) == 0 {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"batch is empty: items must carry at least one prediction"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"batch of %d items exceeds the limit of %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}

	// Fan the items out on the bulk lane: the admission gate bounds how
	// many analyze at once and keeps interactive predicts ahead of the
	// batch, while the singleflight prep cache collapses duplicate
	// kernels inside the batch to one compile+analyze.
	resp := api.BatchPredictResponse{Items: make([]api.BatchItem, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		item := req.Items[i]
		if item.Platform == "" {
			item.Platform = req.Platform
		}
		wg.Add(1)
		go func(i int, item api.PredictRequest) {
			defer wg.Done()
			ictx, isp := telemetry.Start(r.Context(), "item")
			isp.Annotate("index", fmt.Sprint(i))
			defer isp.End()
			res, apiErr := s.v2Predict(r.WithContext(ictx), item, laneBulk, s.cfg.BatchTimeout)
			if apiErr != nil {
				isp.Annotate("error", apiErr.Code)
				resp.Items[i] = api.BatchItem{OK: false, Error: apiErr}
				return
			}
			resp.Items[i] = api.BatchItem{OK: true, Result: res}
		}(i, item)
	}
	wg.Wait()
	for _, it := range resp.Items {
		if it.OK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	s.reg.Counter("batch_items_total", `outcome="ok"`).Add(uint64(resp.Succeeded))
	s.reg.Counter("batch_items_total", `outcome="error"`).Add(uint64(resp.Failed))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV2Explore(w http.ResponseWriter, r *http.Request) {
	var req api.ExploreRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeV2Err(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"bad request body: %v", err))
		return
	}
	k, e := api.ResolveKernel(req.Kernel, api.V2)
	if e != nil {
		writeV2Err(w, e)
		return
	}
	p, key, e := api.ResolvePlatform(req.Platform)
	if e != nil {
		writeV2Err(w, e)
		return
	}
	j, e := s.submitExplore(exploreRequest{
		Bench:        k.Bench,
		Kernel:       k.Name,
		Platform:     key,
		Prune:        req.Prune,
		Sim:          req.Sim,
		SimMaxGroups: req.SimMaxGroups,
		Workers:      req.Workers,
		Top:          req.Top,
		Search:       req.Search,
		k:            k,
		p:            p,
	})
	if e != nil {
		writeV2Err(w, e)
		return
	}
	s.log.Info("explore job queued", "id", j.ID, "kernel", k.ID(), "platform", p.Name)
	w.Header().Set("Location", "/v2/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, api.JobAccepted{
		ID:     j.ID,
		Kernel: k.ID(),
		State:  JobQueued,
		URL:    "/v2/jobs/" + j.ID,
	})
}

func (s *Server) handleV2Job(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.pool.get(id)
	if !ok {
		writeV2Err(w, api.Errf(api.CodeNotFound, http.StatusNotFound,
			"unknown job %q (see POST /v2/explore)", id))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}
