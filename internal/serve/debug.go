package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the handler for the opt-in debug listener
// (flexcl-serve -debug-addr): pprof profiles, expvar and the trace
// inspection API. It is deliberately a separate handler so production
// deployments can keep profiling off the service port (bind it to
// localhost or an operations network) without touching the API surface;
// /debug/traces remains available on the main port too.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.tracer.HandleList)
	mux.HandleFunc("GET /debug/traces/{id}", s.tracer.HandleGet)
	return mux
}
