package dse

import (
	"container/list"
	"sync"

	"repro/internal/model"
)

// CacheStats is a point-in-time snapshot of a cache's traffic.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Computes counts actual fills (compile+analyze executions) a
	// singleflight cache performed; zero for plain LRU caches.
	Computes uint64
	// Coalesced counts lookups that joined an in-flight fill instead of
	// starting their own; zero for plain LRU caches.
	Coalesced uint64
	// DiskHits counts fills answered by the persistent artifact store
	// instead of a full compile+analyze; zero for plain LRU caches and
	// for caches without a store.
	DiskHits uint64
	// PeerHits counts fills answered by another replica (the cluster
	// tier) instead of a local compile+analyze; zero outside clustered
	// deployments.
	PeerHits uint64
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PredCache is a bounded LRU cache of analytical predictions, keyed by
// an opaque string (the service keys on kernel source hash × platform ×
// design so editing a kernel invalidates its cached predictions). A
// capacity ≤ 0 disables caching: every Get misses and Put is a no-op,
// which lets callers keep one code path whether or not caching is on.
type PredCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats CacheStats
}

type predItem struct {
	key string
	est *model.Estimate
}

// NewPredCache returns an LRU prediction cache holding at most capacity
// entries.
func NewPredCache(capacity int) *PredCache {
	return &PredCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached estimate for key and marks it most
// recently used. Every call counts as a hit or a miss. The copy means a
// caller mutating its result cannot corrupt the cached entry (or any
// other caller's view of it).
func (c *PredCache) Get(key string) (*model.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*predItem).est.Clone(), true
	}
	c.stats.Misses++
	return nil, false
}

// Put inserts (or refreshes) an entry, evicting the least recently used
// entry when the cache is full. The cache stores its own copy, so later
// mutation of est by the caller does not reach the cache.
func (c *PredCache) Put(key string, est *model.Estimate) {
	if c.cap <= 0 {
		return
	}
	est = est.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*predItem).est = est
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&predItem{key: key, est: est})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*predItem).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached entries.
func (c *PredCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *PredCache) Cap() int { return c.cap }

// Stats returns a snapshot of the cache's hit/miss/eviction counters.
func (c *PredCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Keys returns the cached keys from most to least recently used
// (primarily for tests asserting eviction order).
func (c *PredCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*predItem).key)
	}
	return out
}
