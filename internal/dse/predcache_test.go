package dse

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
)

func est(cycles float64) *model.Estimate { return &model.Estimate{Cycles: cycles} }

func TestPredCacheLRUOrder(t *testing.T) {
	c := NewPredCache(3)
	c.Put("a", est(1))
	c.Put("b", est(2))
	c.Put("c", est(3))
	// Touch "a": it becomes most recent, so "b" is now the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", est(4))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// MRU-first order after the gets above: d, c, a.
	if got, want := c.Keys(), []string{"d", "c", "a"}; !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
}

func TestPredCacheEdgeCapacities(t *testing.T) {
	tests := []struct {
		name      string
		cap       int
		puts      []string
		wantLen   int
		wantHits  map[string]bool // key -> expect hit afterwards
		wantEvict uint64
	}{
		{
			name: "capacity 0 disables", cap: 0,
			puts: []string{"a", "b"}, wantLen: 0,
			wantHits:  map[string]bool{"a": false, "b": false},
			wantEvict: 0,
		},
		{
			name: "negative capacity disables", cap: -5,
			puts: []string{"a"}, wantLen: 0,
			wantHits: map[string]bool{"a": false},
		},
		{
			name: "capacity 1 keeps newest", cap: 1,
			puts: []string{"a", "b", "c"}, wantLen: 1,
			wantHits:  map[string]bool{"a": false, "b": false, "c": true},
			wantEvict: 2,
		},
		{
			name: "repeat put same key no eviction", cap: 1,
			puts: []string{"a", "a", "a"}, wantLen: 1,
			wantHits:  map[string]bool{"a": true},
			wantEvict: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := NewPredCache(tc.cap)
			for i, k := range tc.puts {
				c.Put(k, est(float64(i+1)))
			}
			if got := c.Len(); got != tc.wantLen {
				t.Errorf("len = %d, want %d", got, tc.wantLen)
			}
			for k, wantHit := range tc.wantHits {
				if _, ok := c.Get(k); ok != wantHit {
					t.Errorf("Get(%s) hit = %v, want %v", k, ok, wantHit)
				}
			}
			if got := c.Stats().Evictions; got != tc.wantEvict {
				t.Errorf("evictions = %d, want %d", got, tc.wantEvict)
			}
		})
	}
}

func TestPredCachePutRefreshesValue(t *testing.T) {
	c := NewPredCache(2)
	c.Put("k", est(10))
	c.Put("k", est(20))
	got, ok := c.Get("k")
	if !ok || got.Cycles != 20 {
		t.Fatalf("got %v ok=%v, want cycles 20", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d after double put", c.Len())
	}
}

func TestPredCacheConcurrentCounting(t *testing.T) {
	const (
		workers = 8
		rounds  = 500
	)
	c := NewPredCache(64)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("warm%d", i), est(float64(i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.Get(fmt.Sprintf("warm%d", i%32))         // hit
				c.Get(fmt.Sprintf("cold%d-%d", w, i))      // miss
				c.Put(fmt.Sprintf("extra%d", i%8), est(1)) // churn
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits != workers*rounds {
		t.Errorf("hits = %d, want %d", s.Hits, workers*rounds)
	}
	if s.Misses != workers*rounds {
		t.Errorf("misses = %d, want %d", s.Misses, workers*rounds)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", got)
	}
	if c.Len() > 64 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}

// TestPredCacheIsolation: the cache must not alias its stored estimate
// with any caller's pointer — mutating either the value passed to Put or
// a value returned by Get must not change what later Gets observe.
func TestPredCacheIsolation(t *testing.T) {
	c := NewPredCache(4)
	in := est(100)
	c.Put("k", in)
	in.Cycles = -1 // caller keeps mutating its own estimate
	got1, ok := c.Get("k")
	if !ok || got1.Cycles != 100 {
		t.Fatalf("Get after mutating the Put argument = %+v, ok=%v; want cycles 100", got1, ok)
	}
	got1.Cycles = -2 // caller mutates its returned copy
	got1.NPE = 99
	got2, ok := c.Get("k")
	if !ok || got2.Cycles != 100 || got2.NPE != 0 {
		t.Fatalf("Get after mutating a previous Get result = %+v, ok=%v; want cycles 100", got2, ok)
	}
	if got1 == got2 {
		t.Fatal("two Gets returned the same pointer")
	}
}

func TestEstimateCloneNil(t *testing.T) {
	var e *model.Estimate
	if e.Clone() != nil {
		t.Error("Clone of nil estimate should be nil")
	}
}

func TestCacheStatsHitRatioEmpty(t *testing.T) {
	if r := (CacheStats{}).HitRatio(); r != 0 {
		t.Errorf("empty hit ratio = %v", r)
	}
}
