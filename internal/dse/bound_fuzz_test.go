package dse

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

// fuzzPrep memoizes analyses and derived bounds across fuzz iterations:
// the property is about lowerBound vs Predict, not about re-running the
// (deterministic) analysis pipeline thousands of times.
var fuzzPrep struct {
	mu     sync.Mutex
	caches map[bool]*PrepCache // key: KU060?
	bounds map[fuzzBoundsKey]model.DesignBounds
}

type fuzzBoundsKey struct {
	id string
	wg int64
	ku bool
}

func fuzzAnalysis(t testing.TB, k *bench.Kernel, ku bool, wg int64) (*model.Analysis, model.DesignBounds) {
	t.Helper()
	p := device.Virtex7()
	if ku {
		p = device.KU060()
	}
	fuzzPrep.mu.Lock()
	defer fuzzPrep.mu.Unlock()
	if fuzzPrep.caches == nil {
		fuzzPrep.caches = map[bool]*PrepCache{}
		fuzzPrep.bounds = map[fuzzBoundsKey]model.DesignBounds{}
	}
	cache := fuzzPrep.caches[ku]
	if cache == nil {
		cache = NewPrepCache()
		fuzzPrep.caches[ku] = cache
	}
	e, _ := cache.get(context.Background(), k, p, wg)
	if e.err != nil {
		t.Fatalf("%s wg=%d: %v", k.ID(), wg, e.err)
	}
	key := fuzzBoundsKey{id: k.ID(), wg: wg, ku: ku}
	b, ok := fuzzPrep.bounds[key]
	if !ok {
		b = e.an.DesignBounds(model.PEValues(p.MaxPE), model.CUValues(p.MaxCU))
		fuzzPrep.bounds[key] = b
	}
	return e.an, b
}

// FuzzLowerBound is the property test behind the guided search's
// correctness: for every design in the lattice, the branch-and-bound
// lower bound never exceeds the model's predicted cycles. A violation
// here is exactly the failure that would make Search prune the true
// optimum, so the property is asserted raw (<=, no tolerance): the bound
// is constructed to be float-monotone, not merely approximately sound.
func FuzzLowerBound(f *testing.F) {
	for i := range bench.All() {
		f.Add(uint(i), uint(i%4), uint8(i%5), uint8(i%3), i%2 == 0, i%3 == 0, i%7 == 0)
	}
	kernels := bench.All()
	f.Fuzz(func(t *testing.T, kIdx, wgIdx uint, peSel, cuSel uint8, pipe, barrierMode, ku bool) {
		k := kernels[int(kIdx)%len(kernels)]
		wgs := k.WGSizes()
		if len(wgs) == 0 {
			t.Skip("empty work-group sweep")
		}
		wg := wgs[int(wgIdx)%len(wgs)]
		p := device.Virtex7()
		if ku {
			p = device.KU060()
		}
		peVals := model.PEValues(p.MaxPE)
		cuVals := model.CUValues(p.MaxCU)
		pe := peVals[int(peSel)%len(peVals)]
		cu := cuVals[int(cuSel)%len(cuVals)]
		if pe > 1 {
			pipe = true // the flow only replicates PEs inside a pipeline
		}
		mode := model.ModePipeline
		if barrierMode {
			mode = model.ModeBarrier
		}
		d := model.Design{WGSize: wg, WIPipeline: pipe, PE: pe, CU: cu, Mode: mode}

		an, b := fuzzAnalysis(t, k, ku, wg)
		lb := lowerBound(b, pipe, mode, pe, cu)
		est := an.Predict(d).Cycles
		if math.IsNaN(lb) || lb < 0 {
			t.Fatalf("%s %v: degenerate bound %v", k.ID(), d, lb)
		}
		if lb > est {
			t.Fatalf("%s %v: lowerBound %v > predicted cycles %v (unsound bound)",
				k.ID(), d, lb, est)
		}
	})
}
