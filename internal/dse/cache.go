package dse

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/model"
)

// PrepCache memoizes the per-work-group-size preparation of an
// exploration — kernel compilation plus FlexCL analysis — keyed by
// (kernel, platform, WG size). Each key is prepared exactly once no
// matter how many phases or worker goroutines request it: the first
// caller computes under a per-entry sync.Once while the rest block on
// the same entry (singleflight semantics), so a full Explore compiles
// each WG size once instead of once per simulated design point.
//
// A cache may be shared across Explore calls (e.g. a suite sweep on one
// platform, or an exploration followed by a heuristic search) to reuse
// the preparation work; the zero Options use a private per-call cache.
type PrepCache struct {
	mu    sync.Mutex
	m     map[prepKey]*prepEntry
	stats CacheStats
}

type prepKey struct {
	kernel   string
	wg       int64
	platform string
}

type prepEntry struct {
	once sync.Once
	f    *ir.Func
	an   *model.Analysis
	err  error
	// dur is the wall time the computing goroutine spent on compile +
	// analyze; Explore charges it to ModelTime only when this call did
	// the work (cache hits are free).
	dur time.Duration
}

// NewPrepCache returns an empty cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{m: make(map[prepKey]*prepEntry)}
}

// get returns the prepared entry for one WG size, computing it if this
// is the first request. computed reports whether this call did the work.
func (c *PrepCache) get(k *bench.Kernel, p *device.Platform, wg int64) (e *prepEntry, computed bool) {
	key := prepKey{kernel: k.ID(), wg: wg, platform: p.Name}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &prepEntry{}
		c.m[key] = e
		c.stats.Misses++
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		computed = true
		t0 := time.Now()
		f, err := k.Compile(wg)
		if err != nil {
			e.err = err
			return
		}
		// Freeze the loop analysis now, while this entry is still
		// exclusive: afterwards the function is shared read-only by
		// every concurrent Predict and Simulate.
		f.EnsureLoops()
		an, err := model.Analyze(f, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
		if err != nil {
			e.err = fmt.Errorf("dse %s wg=%d: %w", k.ID(), wg, err)
			return
		}
		e.f, e.an = f, an
		e.dur = time.Since(t0)
	})
	return e, computed
}

// Analyses returns the kernel's per-WG-size analysis map on platform p
// (the shape HeuristicSearch consumes), computing any missing entries.
func (c *PrepCache) Analyses(k *bench.Kernel, p *device.Platform) (map[int64]*model.Analysis, error) {
	out := make(map[int64]*model.Analysis)
	for _, wg := range k.WGSizes() {
		e, _ := c.get(k, p, wg)
		if e.err != nil {
			return nil, e.err
		}
		out[wg] = e.an
	}
	return out, nil
}

// Analysis returns the prepared analysis for one WG size, computing and
// caching it on first use. It is the per-point entry the prediction
// service uses; Explore and HeuristicSearch share the same entries.
func (c *PrepCache) Analysis(k *bench.Kernel, p *device.Platform, wg int64) (*model.Analysis, error) {
	e, _ := c.get(k, p, wg)
	if e.err != nil {
		return nil, e.err
	}
	return e.an, nil
}

// Len returns the number of prepared entries (including failed ones).
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the cache's hit/miss counters. A lookup
// counts as a miss when it created the entry (whether or not this
// caller went on to compute it) and a hit when the entry already
// existed — so an Explore of d design points over w WG sizes records w
// misses and d+w-ish hits, the reuse the cache exists to provide.
func (c *PrepCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
