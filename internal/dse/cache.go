package dse

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// PrepCache memoizes the per-work-group-size preparation of an
// exploration — kernel compilation plus FlexCL analysis — keyed by
// (kernel workload hash, platform, WG size). Each key is prepared
// exactly once no matter how many phases or worker goroutines request
// it: the first caller computes while the rest block on the entry's
// done channel (singleflight semantics), so a full Explore compiles
// each WG size once instead of once per simulated design point, and N
// concurrent service requests for the same kernel share one fill.
//
// The key is bench.Kernel.CacheKey (source hash + workload), not the
// kernel's identity, so two distinct Kernel allocations carrying the
// same source and launch — e.g. inline kernels submitted by separate
// API requests — coalesce onto one entry.
//
// Lookups are tiered: memory (singleflight) → artifact store (when the
// cache was built with one) → peer (when built with a PeerFetcher —
// the clustered deployment's owning replica) → compute. A disk or peer
// hit recompiles the kernel (cheap, deterministic) and re-attaches the
// stored profile instead of re-running the interpreter; fresh computes
// and peer-fetched records are persisted back to the store after the
// waiters are released, so restarts and sibling replicas sharing the
// directory start warm.
//
// Completed entries are bounded: beyond Capacity the least recently
// used completed entry is evicted (in-flight fills never are — that
// would break singleflight), so a long-running server fed distinct
// inline kernels cannot grow without bound. Failed fills are evicted as
// soon as their waiters are released: an error is returned to everyone
// who coalesced onto the fill, never cached against the key, so a
// transient failure does not poison later requests.
//
// A cache may be shared across Explore calls (e.g. a suite sweep on one
// platform, or an exploration followed by a heuristic search) to reuse
// the preparation work; the zero Options use a private per-call cache.
type PrepCache struct {
	mu    sync.Mutex
	m     map[prepKey]*prepEntry
	ll    *list.List                 // completed entries, front = most recently used
	idx   map[prepKey]*list.Element  // key → LRU element (completed entries only)
	cap   int                        // max completed entries; < 0 = unbounded
	store *artifact.Store            // nil = memory only
	peer  PeerFetcher                // nil = no cluster tier
	stats CacheStats

	// persist tracks artifact writes still in flight on fill
	// goroutines; Flush waits for them.
	persist sync.WaitGroup

	// testFillHook, when non-nil, runs at the start of every computed
	// fill (after the disk tier). Tests use it to inject transient
	// failures and to block fills; a non-nil return aborts the fill
	// with that error.
	testFillHook func(k *bench.Kernel, wg int64) error
}

// DefaultPrepCapacity bounds completed entries when PrepCacheOptions
// leaves Capacity zero. It is sized an order of magnitude above the
// bundled corpus × its WG sweeps (~300 entries), so corpus explorations
// and the golden tests never see an eviction; the bound exists for
// servers fed unbounded distinct inline kernels.
const DefaultPrepCapacity = 4096

// PrepCacheOptions configures NewPrepCacheOpts.
type PrepCacheOptions struct {
	// Capacity bounds completed entries (0 = DefaultPrepCapacity,
	// negative = unbounded). In-flight fills are never evicted.
	Capacity int
	// Store, when non-nil, persists completed fills and answers misses
	// from disk (see internal/artifact).
	Store *artifact.Store
	// Peer, when non-nil, is consulted after the artifact store and
	// before a local compute: in a clustered deployment it fetches the
	// key owner's record so each kernel is compiled once per fleet (see
	// internal/cluster).
	Peer PeerFetcher
}

// PeerFetcher is the cluster tier of the cache: it maps a prep key to
// its owning replica and fetches that replica's record.
//
//   - (rec, owner, nil): the owner answered; the cache restores rec
//     instead of computing.
//   - (nil, "", nil): the tier does not apply (self-owned key,
//     clustering off, owner down) — the cache computes locally.
//   - (nil, "", err): a fleet-level refusal (e.g. the owner shed the
//     work): the fill fails with err for every coalesced waiter and the
//     entry is evicted, so a later retry starts fresh.
type PeerFetcher interface {
	Fetch(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (rec *artifact.Record, owner string, err error)
}

type prepKey struct {
	kernel   string // bench.Kernel.CacheKey()
	wg       int64
	platform string
}

func (k prepKey) artifactKey() artifact.Key {
	return artifact.Key{Kernel: k.kernel, Platform: k.platform, WG: k.wg}
}

type prepEntry struct {
	// done is closed by the computing goroutine once f/an/err/dur are
	// final; waiters must not read them before <-done.
	done chan struct{}
	f    *ir.Func
	an   *model.Analysis
	err  error
	// dur is the wall time the computing goroutine spent filling this
	// entry (compile + analyze, or a disk restore); Explore charges it
	// to ModelTime only when this call did the work (cache hits are
	// free).
	dur time.Duration
	// src records which tier filled the entry (SourceCompute,
	// SourceDisk or SourcePeer) and peer the owning replica when src is
	// SourcePeer.
	src  string
	peer string
}

// Fill sources, as reported by PrepResult.Source.
const (
	// SourceCompute: a full local compile+analyze.
	SourceCompute = "compute"
	// SourceDisk: restored from the local artifact store.
	SourceDisk = "disk"
	// SourcePeer: fetched from the key's owning replica.
	SourcePeer = "peer"
)

// PrepOutcome reports how a context-aware cache lookup was satisfied.
type PrepOutcome int

// Lookup outcomes, in increasing order of luck.
const (
	// PrepComputed: this call created the entry and did the fill work
	// (a full compile+analyze, or a restore from the artifact store).
	PrepComputed PrepOutcome = iota
	// PrepCoalesced: the entry's fill was in flight; this call joined it
	// and waited instead of duplicating the work.
	PrepCoalesced
	// PrepCached: the entry was already complete.
	PrepCached
)

func (o PrepOutcome) String() string {
	switch o {
	case PrepCoalesced:
		return "coalesced"
	case PrepCached:
		return "cached"
	default:
		return "computed"
	}
}

// NewPrepCache returns an empty cache with the default capacity and no
// artifact store.
func NewPrepCache() *PrepCache {
	return NewPrepCacheOpts(PrepCacheOptions{})
}

// NewPrepCacheOpts returns an empty cache with explicit bounds and an
// optional persistent artifact store.
func NewPrepCacheOpts(opts PrepCacheOptions) *PrepCache {
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = DefaultPrepCapacity
	}
	return &PrepCache{
		m:     make(map[prepKey]*prepEntry),
		ll:    list.New(),
		idx:   make(map[prepKey]*list.Element),
		cap:   capacity,
		store: opts.Store,
		peer:  opts.Peer,
	}
}

// Store returns the artifact store backing this cache, or nil.
func (c *PrepCache) Store() *artifact.Store { return c.store }

// entry returns the cache slot for one WG size, creating it if absent.
// created reports whether this caller must run the fill; coalesced
// reports that the entry existed but its fill was still in flight.
func (c *PrepCache) entry(k *bench.Kernel, p *device.Platform, wg int64) (key prepKey, e *prepEntry, created, coalesced bool) {
	key = prepKey{kernel: k.CacheKey(), wg: wg, platform: p.Name}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		e = &prepEntry{done: make(chan struct{})}
		c.m[key] = e
		c.stats.Misses++
		return key, e, true, false
	}
	c.stats.Hits++
	select {
	case <-e.done:
		if el, ok := c.idx[key]; ok {
			c.ll.MoveToFront(el)
		}
	default:
		coalesced = true
		c.stats.Coalesced++
	}
	return key, e, false, coalesced
}

// run fills the entry with a full compile+analyze. It does not close
// done — fill publishes the entry's fate first, then releases waiters.
// Callers must pass a context that cannot be cancelled
// (context.WithoutCancel of the request, or context.Background()): the
// entry is shared, so one impatient request must not poison the fill
// every coalesced waiter (and the retry after a 504) depends on. The
// context still carries the creating request's trace, so the compile
// and model-analysis spans attach to it.
func (e *prepEntry) run(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64, hook func(*bench.Kernel, int64) error) {
	t0 := time.Now()
	if hook != nil {
		if err := hook(k, wg); err != nil {
			e.err = err
			return
		}
	}
	_, csp := telemetry.Start(ctx, "compile")
	csp.Annotate("kernel", k.ID())
	csp.Annotate("wg", fmt.Sprint(wg))
	f, err := k.Compile(wg)
	if err != nil {
		csp.Annotate("error", err.Error())
		csp.End()
		e.err = err
		return
	}
	// Freeze the loop analysis now, while this entry is still
	// exclusive: afterwards the function is shared read-only by
	// every concurrent Predict and Simulate.
	f.EnsureLoops()
	csp.End()
	an, err := model.Analyze(ctx, f, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		e.err = fmt.Errorf("dse %s wg=%d: %w", k.ID(), wg, err)
		return
	}
	e.f, e.an = f, an
	e.dur = time.Since(t0)
}

// restore attempts the disk tier: load the record, recompile the
// kernel (cheap and deterministic — no interpreter run) and re-attach
// the stored profile. A record whose structural fingerprint no longer
// matches the compiled function is invalidated and reported as a miss.
func (c *PrepCache) restore(ctx context.Context, key prepKey, e *prepEntry, k *bench.Kernel, wg int64, p *device.Platform) bool {
	if c.store == nil {
		return false
	}
	rec, ok := c.store.Load(key.artifactKey())
	if !ok {
		return false
	}
	if !c.attach(ctx, "artifact", e, rec, k, wg, p) {
		c.store.Invalidate(key.artifactKey())
		return false
	}
	return true
}

// attach completes an entry from a serialized record: recompile the
// kernel (cheap and deterministic — no interpreter run) and re-attach
// the stored profile. span names the telemetry stage ("artifact" for
// the disk tier, "restore" under a peer fetch's "forward" span). False
// means the record does not fit this build's compiled shape.
func (c *PrepCache) attach(ctx context.Context, span string, e *prepEntry, rec *artifact.Record, k *bench.Kernel, wg int64, p *device.Platform) bool {
	t0 := time.Now()
	_, sp := telemetry.Start(ctx, span)
	sp.Annotate("kernel", k.ID())
	sp.Annotate("wg", fmt.Sprint(wg))
	defer sp.End()
	f, err := k.Compile(wg)
	if err != nil {
		sp.Annotate("error", err.Error())
		return false
	}
	f.EnsureLoops()
	an, err := rec.Analysis(f, p)
	if err != nil {
		sp.Annotate("error", err.Error())
		return false
	}
	e.f, e.an = f, an
	e.dur = time.Since(t0)
	return true
}

// fill completes a freshly created entry: artifact store first, full
// compute otherwise. The entry's fate is published under the lock
// before done is closed — error entries leave the map immediately, so
// the error reaches exactly the requests that coalesced onto this fill
// and the next request for the key recomputes; successful entries join
// the completed-LRU (evicting over capacity). Fresh computes are
// persisted after the waiters are released, so coalesced requests
// never wait on disk I/O.
func (c *PrepCache) fill(ctx context.Context, key prepKey, e *prepEntry, k *bench.Kernel, p *device.Platform, wg int64) {
	if c.restore(ctx, key, e, k, wg, p) {
		e.src = SourceDisk
	}
	if e.src == "" && c.peer != nil {
		// Cluster tier: when another replica owns this key, fetch its
		// record instead of duplicating the compile+analyze. A hard
		// refusal (owner shed) fails the fill for every waiter; an
		// unreachable owner or an unusable record degrades to the local
		// compute below.
		rec, owner, err := c.peer.Fetch(ctx, k, p, wg)
		switch {
		case err != nil:
			e.err = err
		case rec != nil && c.attach(ctx, "restore", e, rec, k, wg, p):
			e.src, e.peer = SourcePeer, owner
		}
	}
	if e.src == "" && e.err == nil {
		c.mu.Lock()
		c.stats.Computes++
		hook := c.testFillHook
		c.mu.Unlock()
		e.run(ctx, k, p, wg, hook)
		e.src = SourceCompute
	}
	// Write-behind: persist fresh computes and peer-fetched records so
	// the next restart (or a sibling sharing the directory) starts warm.
	save := e.err == nil && e.src != SourceDisk && c.store != nil
	c.mu.Lock()
	if e.err != nil {
		// Never negative-cache: drop the entry (if it is still ours)
		// so the next request for this key starts a fresh fill.
		if cur, ok := c.m[key]; ok && cur == e {
			delete(c.m, key)
		}
	} else {
		switch e.src {
		case SourceDisk:
			c.stats.DiskHits++
		case SourcePeer:
			c.stats.PeerHits++
		}
		c.linkCompleted(key)
	}
	if save {
		// Register the pending write before releasing waiters so a
		// Flush racing the fill cannot miss it.
		c.persist.Add(1)
	}
	c.mu.Unlock()
	close(e.done)
	if save {
		defer c.persist.Done()
		c.store.Save(artifact.New(key.artifactKey(), e.an, e.dur))
	}
}

// linkCompleted (mu held) inserts a completed entry into the LRU and
// evicts least-recently-used completed entries beyond capacity.
// In-flight entries are not in the LRU and therefore never evicted —
// evicting one would detach its waiters from the singleflight.
func (c *PrepCache) linkCompleted(key prepKey) {
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(key)
	if c.cap < 0 {
		return
	}
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		old := oldest.Value.(prepKey)
		c.ll.Remove(oldest)
		delete(c.idx, old)
		delete(c.m, old)
		c.stats.Evictions++
	}
}

// Flush blocks until every artifact write started by a completed fill
// has finished. Call it before handing the artifact directory to
// another process (tests, restarts) — fills persist after releasing
// their waiters, so a caller can observe its result before the record
// is on disk.
func (c *PrepCache) Flush() { c.persist.Wait() }

// get returns the prepared entry for one WG size, computing it if this
// is the first request and blocking (without a deadline) while another
// goroutine computes it. computed reports whether this call did the
// work. It is the synchronous path Explore uses; services with request
// deadlines use AnalysisContext.
func (c *PrepCache) get(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (e *prepEntry, computed bool) {
	key, e, created, _ := c.entry(k, p, wg)
	if created {
		// WithoutCancel: keep the caller's trace attached to the fill's
		// spans but never let its cancellation poison the shared entry.
		c.fill(context.WithoutCancel(ctx), key, e, k, p, wg)
		return e, true
	}
	<-e.done
	return e, false
}

// AnalysisContext returns the prepared analysis for one WG size,
// respecting ctx while waiting. The first caller for a key starts the
// fill on its own goroutine; concurrent callers for the same key
// coalesce onto that fill instead of duplicating it. When ctx expires
// first the caller gets ctx's error immediately while the fill keeps
// running in the background and lands in the cache for the retry.
func (c *PrepCache) AnalysisContext(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (*model.Analysis, PrepOutcome, error) {
	res, err := c.AnalysisContextDetail(ctx, k, p, wg)
	return res.An, res.Outcome, err
}

// PrepResult is the detailed outcome of a context-aware cache lookup.
type PrepResult struct {
	An      *model.Analysis
	Outcome PrepOutcome
	// Source reports which tier originally filled the entry
	// (SourceCompute, SourceDisk or SourcePeer; "" when the lookup
	// failed before the fill resolved).
	Source string
	// Peer is the owning replica's URL when Source is SourcePeer.
	Peer string
}

// AnalysisContextDetail is AnalysisContext plus fill attribution: which
// tier produced the entry and, for the cluster tier, which replica owns
// the key. The serve layer uses it to report served_by/forwarded on v2
// responses.
func (c *PrepCache) AnalysisContextDetail(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (PrepResult, error) {
	key, e, created, coalesced := c.entry(k, p, wg)
	outcome := PrepCached
	switch {
	case created:
		outcome = PrepComputed
		go c.fill(context.WithoutCancel(ctx), key, e, k, p, wg)
	case coalesced:
		outcome = PrepCoalesced
	}
	select {
	case <-ctx.Done():
		return PrepResult{Outcome: outcome}, ctx.Err()
	case <-e.done:
	}
	if e.err != nil {
		return PrepResult{Outcome: outcome}, e.err
	}
	return PrepResult{An: e.an, Outcome: outcome, Source: e.src, Peer: e.peer}, nil
}

// Analyses returns the kernel's per-WG-size analysis map on platform p
// (the shape HeuristicSearch consumes), computing any missing entries.
func (c *PrepCache) Analyses(k *bench.Kernel, p *device.Platform) (map[int64]*model.Analysis, error) {
	out := make(map[int64]*model.Analysis)
	for _, wg := range k.WGSizes() {
		e, _ := c.get(context.Background(), k, p, wg)
		if e.err != nil {
			return nil, e.err
		}
		out[wg] = e.an
	}
	return out, nil
}

// Analysis returns the prepared analysis for one WG size, computing and
// caching it on first use. Explore and HeuristicSearch share the same
// entries; deadline-carrying callers should prefer AnalysisContext.
func (c *PrepCache) Analysis(k *bench.Kernel, p *device.Platform, wg int64) (*model.Analysis, error) {
	e, _ := c.get(context.Background(), k, p, wg)
	if e.err != nil {
		return nil, e.err
	}
	return e.an, nil
}

// Len returns the number of resident entries (completed + in flight).
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the completed-entry capacity (negative = unbounded).
func (c *PrepCache) Cap() int { return c.cap }

// Stats returns a snapshot of the cache's hit/miss counters. A lookup
// counts as a miss when it created the entry and a hit when the entry
// already existed — so an Explore of d design points over w WG sizes
// records w misses and d+w-ish hits, the reuse the cache exists to
// provide. Computes counts actual compile+analyze executions (misses
// answered by the artifact store instead appear in DiskHits),
// Coalesced counts lookups that joined a fill still in flight, and
// Evictions counts completed entries dropped by the capacity bound.
func (c *PrepCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
