package dse

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// PrepCache memoizes the per-work-group-size preparation of an
// exploration — kernel compilation plus FlexCL analysis — keyed by
// (kernel workload hash, platform, WG size). Each key is prepared
// exactly once no matter how many phases or worker goroutines request
// it: the first caller computes while the rest block on the entry's
// done channel (singleflight semantics), so a full Explore compiles
// each WG size once instead of once per simulated design point, and N
// concurrent service requests for the same kernel share one fill.
//
// The key is bench.Kernel.CacheKey (source hash + workload), not the
// kernel's identity, so two distinct Kernel allocations carrying the
// same source and launch — e.g. inline kernels submitted by separate
// API requests — coalesce onto one entry.
//
// A cache may be shared across Explore calls (e.g. a suite sweep on one
// platform, or an exploration followed by a heuristic search) to reuse
// the preparation work; the zero Options use a private per-call cache.
type PrepCache struct {
	mu    sync.Mutex
	m     map[prepKey]*prepEntry
	stats CacheStats
}

type prepKey struct {
	kernel   string // bench.Kernel.CacheKey()
	wg       int64
	platform string
}

type prepEntry struct {
	// done is closed by the computing goroutine once f/an/err/dur are
	// final; waiters must not read them before <-done.
	done chan struct{}
	f    *ir.Func
	an   *model.Analysis
	err  error
	// dur is the wall time the computing goroutine spent on compile +
	// analyze; Explore charges it to ModelTime only when this call did
	// the work (cache hits are free).
	dur time.Duration
}

// PrepOutcome reports how a context-aware cache lookup was satisfied.
type PrepOutcome int

// Lookup outcomes, in increasing order of luck.
const (
	// PrepComputed: this call created the entry and did the
	// compile+analyze work.
	PrepComputed PrepOutcome = iota
	// PrepCoalesced: the entry's fill was in flight; this call joined it
	// and waited instead of duplicating the work.
	PrepCoalesced
	// PrepCached: the entry was already complete.
	PrepCached
)

func (o PrepOutcome) String() string {
	switch o {
	case PrepCoalesced:
		return "coalesced"
	case PrepCached:
		return "cached"
	default:
		return "computed"
	}
}

// NewPrepCache returns an empty cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{m: make(map[prepKey]*prepEntry)}
}

// entry returns the cache slot for one WG size, creating it if absent.
// created reports whether this caller must run compute; coalesced
// reports that the entry existed but its fill was still in flight.
func (c *PrepCache) entry(k *bench.Kernel, p *device.Platform, wg int64) (e *prepEntry, created, coalesced bool) {
	key := prepKey{kernel: k.CacheKey(), wg: wg, platform: p.Name}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		e = &prepEntry{done: make(chan struct{})}
		c.m[key] = e
		c.stats.Misses++
		c.stats.Computes++
		return e, true, false
	}
	c.stats.Hits++
	select {
	case <-e.done:
	default:
		coalesced = true
		c.stats.Coalesced++
	}
	return e, false, coalesced
}

// compute fills the entry and closes done. Callers must pass a context
// that cannot be cancelled (context.WithoutCancel of the request, or
// context.Background()): the entry is shared, so one impatient request
// must not poison the fill every coalesced waiter (and the retry after
// a 504) depends on. The context still carries the creating request's
// trace, so the compile and model-analysis spans attach to it.
func (e *prepEntry) compute(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) {
	defer close(e.done)
	t0 := time.Now()
	_, csp := telemetry.Start(ctx, "compile")
	csp.Annotate("kernel", k.ID())
	csp.Annotate("wg", fmt.Sprint(wg))
	f, err := k.Compile(wg)
	if err != nil {
		csp.Annotate("error", err.Error())
		csp.End()
		e.err = err
		return
	}
	// Freeze the loop analysis now, while this entry is still
	// exclusive: afterwards the function is shared read-only by
	// every concurrent Predict and Simulate.
	f.EnsureLoops()
	csp.End()
	an, err := model.Analyze(ctx, f, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		e.err = fmt.Errorf("dse %s wg=%d: %w", k.ID(), wg, err)
		return
	}
	e.f, e.an = f, an
	e.dur = time.Since(t0)
}

// get returns the prepared entry for one WG size, computing it if this
// is the first request and blocking (without a deadline) while another
// goroutine computes it. computed reports whether this call did the
// work. It is the synchronous path Explore uses; services with request
// deadlines use AnalysisContext.
func (c *PrepCache) get(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (e *prepEntry, computed bool) {
	e, created, _ := c.entry(k, p, wg)
	if created {
		// WithoutCancel: keep the caller's trace attached to the fill's
		// spans but never let its cancellation poison the shared entry.
		e.compute(context.WithoutCancel(ctx), k, p, wg)
		return e, true
	}
	<-e.done
	return e, false
}

// AnalysisContext returns the prepared analysis for one WG size,
// respecting ctx while waiting. The first caller for a key starts the
// compile+analyze fill on its own goroutine; concurrent callers for the
// same key coalesce onto that fill instead of duplicating it. When ctx
// expires first the caller gets ctx's error immediately while the fill
// keeps running in the background and lands in the cache for the retry.
func (c *PrepCache) AnalysisContext(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (*model.Analysis, PrepOutcome, error) {
	e, created, coalesced := c.entry(k, p, wg)
	outcome := PrepCached
	switch {
	case created:
		outcome = PrepComputed
		go e.compute(context.WithoutCancel(ctx), k, p, wg)
	case coalesced:
		outcome = PrepCoalesced
	}
	select {
	case <-ctx.Done():
		return nil, outcome, ctx.Err()
	case <-e.done:
	}
	if e.err != nil {
		return nil, outcome, e.err
	}
	return e.an, outcome, nil
}

// Analyses returns the kernel's per-WG-size analysis map on platform p
// (the shape HeuristicSearch consumes), computing any missing entries.
func (c *PrepCache) Analyses(k *bench.Kernel, p *device.Platform) (map[int64]*model.Analysis, error) {
	out := make(map[int64]*model.Analysis)
	for _, wg := range k.WGSizes() {
		e, _ := c.get(context.Background(), k, p, wg)
		if e.err != nil {
			return nil, e.err
		}
		out[wg] = e.an
	}
	return out, nil
}

// Analysis returns the prepared analysis for one WG size, computing and
// caching it on first use. Explore and HeuristicSearch share the same
// entries; deadline-carrying callers should prefer AnalysisContext.
func (c *PrepCache) Analysis(k *bench.Kernel, p *device.Platform, wg int64) (*model.Analysis, error) {
	e, _ := c.get(context.Background(), k, p, wg)
	if e.err != nil {
		return nil, e.err
	}
	return e.an, nil
}

// Len returns the number of prepared entries (including failed ones).
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the cache's hit/miss counters. A lookup
// counts as a miss when it created the entry and a hit when the entry
// already existed — so an Explore of d design points over w WG sizes
// records w misses and d+w-ish hits, the reuse the cache exists to
// provide. Computes counts actual compile+analyze executions (== Misses
// for this cache, every created entry is computed exactly once) and
// Coalesced counts lookups that joined a fill still in flight.
func (c *PrepCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
