package dse

// White-box tests for the prep cache's peer tier (the clustered
// deployment's "memory → artifact → peer → compute" chain), driven by
// a fake PeerFetcher so no HTTP is involved: a peer-answered fill must
// count as PeerHits (never Computes), persist locally via write-behind,
// and report its owner through AnalysisContextDetail; a peer refusal
// must fail the fill without being negative-cached; an inapplicable
// tier must fall through to the local compute.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

// fakePeer is a scripted PeerFetcher.
type fakePeer struct {
	rec   *artifact.Record
	owner string
	err   error
	calls int
}

func (f *fakePeer) Fetch(ctx context.Context, k *bench.Kernel, p *device.Platform, wg int64) (*artifact.Record, string, error) {
	f.calls++
	return f.rec, f.owner, f.err
}

// peerRecord computes a real analysis out-of-band and serializes it,
// standing in for the owning replica's answer.
func peerRecord(t *testing.T, k *bench.Kernel, p *device.Platform, wg int64) *artifact.Record {
	t.Helper()
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	f.EnsureLoops()
	an, err := model.Analyze(context.Background(), f, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.Key{Kernel: k.CacheKey(), Platform: p.Name, WG: wg}
	rec := artifact.New(key, an, 0)
	// Round-trip through the wire encoding, exactly as a forwarded prep
	// arrives.
	data, err := artifact.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = artifact.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestPrepCachePeerHit(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	dir := t.TempDir()
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peer := &fakePeer{rec: peerRecord(t, k, p, wg), owner: "http://owner:1"}
	c := NewPrepCacheOpts(PrepCacheOptions{Store: store, Peer: peer})

	res, err := c.AnalysisContextDetail(context.Background(), k, p, wg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourcePeer || res.Peer != "http://owner:1" {
		t.Fatalf("fill attribution = (%q, %q), want (peer, http://owner:1)", res.Source, res.Peer)
	}
	if res.An == nil {
		t.Fatal("peer-answered fill returned nil analysis")
	}
	st := c.Stats()
	if st.Computes != 0 {
		t.Errorf("Computes = %d, want 0 (the owner did the work)", st.Computes)
	}
	if st.PeerHits != 1 {
		t.Errorf("PeerHits = %d, want 1", st.PeerHits)
	}
	// Write-behind must persist the peer's record locally too, so a
	// restart of this replica starts warm without re-asking the owner.
	c.Flush()
	if n := store.Len(); n != 1 {
		t.Errorf("artifact store holds %d records after a peer fill, want 1", n)
	}

	// The peer-restored analysis must predict identically to a local
	// compute.
	local := NewPrepCache()
	want, err := local.Analysis(k, p, wg)
	if err != nil {
		t.Fatal(err)
	}
	d := model.Design{WGSize: wg, PE: 1, CU: 1}
	if got, wantEst := res.An.Predict(d).Cycles, want.Predict(d).Cycles; got != wantEst {
		t.Errorf("peer-restored prediction = %v cycles, local = %v", got, wantEst)
	}

	// Warm path: the second lookup is a memory hit — no new peer call.
	if _, err := c.Analysis(k, p, wg); err != nil {
		t.Fatal(err)
	}
	if peer.calls != 1 {
		t.Errorf("peer fetched %d times, want 1 (second lookup is a memory hit)", peer.calls)
	}
}

func TestPrepCachePeerErrorNotCached(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	peer := &fakePeer{err: errors.New("owner shed the prep")}
	c := NewPrepCacheOpts(PrepCacheOptions{Peer: peer})

	if _, err := c.AnalysisContextDetail(context.Background(), k, p, wg); err == nil {
		t.Fatal("peer refusal did not fail the fill")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entry still resident: Len = %d, want 0 (never negative-cache)", n)
	}
	// The refusal clears: the retry must compute locally.
	peer.err = nil
	res, err := c.AnalysisContextDetail(context.Background(), k, p, wg)
	if err != nil {
		t.Fatalf("retry after peer refusal: %v", err)
	}
	if res.Source != SourceCompute {
		t.Errorf("retry source = %q, want compute", res.Source)
	}
	if st := c.Stats(); st.Computes != 1 || st.PeerHits != 0 {
		t.Errorf("stats = computes=%d peerHits=%d, want 1/0", st.Computes, st.PeerHits)
	}
}

func TestPrepCachePeerNotApplicableComputes(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	peer := &fakePeer{} // (nil, "", nil): self-owned / cluster off
	c := NewPrepCacheOpts(PrepCacheOptions{Peer: peer})
	res, err := c.AnalysisContextDetail(context.Background(), k, p, wg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceCompute || res.Peer != "" {
		t.Fatalf("fill attribution = (%q, %q), want (compute, \"\")", res.Source, res.Peer)
	}
	if st := c.Stats(); st.Computes != 1 {
		t.Errorf("Computes = %d, want 1", st.Computes)
	}
	if peer.calls != 1 {
		t.Errorf("peer consulted %d times, want 1", peer.calls)
	}
}

// TestPrepCacheDiskBeatsPeer: the artifact store answers before the
// peer tier is consulted — a warm local disk must not generate fleet
// traffic.
func TestPrepCacheDiskBeatsPeer(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	dir := t.TempDir()
	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the directory with a first cache, then reopen.
	warm := NewPrepCacheOpts(PrepCacheOptions{Store: store})
	if _, err := warm.Analysis(k, p, wg); err != nil {
		t.Fatal(err)
	}
	warm.Flush()

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peer := &fakePeer{rec: peerRecord(t, k, p, wg), owner: "http://owner:1"}
	c := NewPrepCacheOpts(PrepCacheOptions{Store: store2, Peer: peer})
	res, err := c.AnalysisContextDetail(context.Background(), k, p, wg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceDisk {
		t.Fatalf("source = %q, want disk", res.Source)
	}
	if peer.calls != 0 {
		t.Errorf("peer consulted %d times, want 0 (disk answered first)", peer.calls)
	}
}
