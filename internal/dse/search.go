// Guided design-space search: branch-and-bound over the (WGSize,
// pipelining, PE, CU, mode) lattice using lower bounds derived from the
// analytical model's proven structure (see model.DesignBounds and
// docs/MODEL.md "Guided exploration"), plus a Pareto-frontier mode that
// walks the cycles-vs-resource frontier one budget level at a time.
//
// The search is exact, not heuristic: every pruned subtree is proven —
// by a bound that only relaxes the model's own equations — to contain no
// design that beats (or ties at an earlier space index than) the
// incumbent, so Search returns byte-for-byte the same best design and
// the same Pareto frontier as exhaustive Explore, while evaluating a
// small fraction of the space. internal/check's "search" family asserts
// that equivalence over the whole corpus.
package dse

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Search strategies, as spelled on cmd/flexcl-dse's -search flag and the
// v2 API's explore "search" field.
const (
	StrategyExhaustive = "exhaustive"
	StrategyGuided     = "guided"
	StrategyPareto     = "pareto"
)

// SearchOptions tunes a guided exploration.
type SearchOptions struct {
	// Platform is the device model (nil = Virtex-7).
	Platform *device.Platform
	// Workers shards the per-WG-size preparation (compile + analyze +
	// bound derivation) over goroutines; 0 uses GOMAXPROCS. The search
	// itself sequences its pruning decisions on one goroutine, so the
	// result — including the exact set of evaluated designs — is
	// identical at any worker count.
	Workers int
	// Cache shares compiled kernels and analyses with Explore and other
	// Search calls (nil = private per-call cache).
	Cache *PrepCache
	// Pareto additionally computes the cycles-vs-resource Pareto
	// frontier (resource proxy: requested PE·CU), evaluating one
	// constrained search step per frontier budget level.
	Pareto bool
}

// SearchResult is the outcome of one guided search.
type SearchResult struct {
	Kernel *bench.Kernel
	// Space is the size of the full design space the search is
	// equivalent to (len(Space(k, p))).
	Space int
	// Best is the model-optimal design, identical to exhaustive
	// Explore's BestByModel — including tie-breaks (first in space
	// enumeration order). BestOK is false only for an empty space.
	Best      Point
	BestOK    bool
	BestIndex int
	// Frontier is the Pareto frontier (Pareto mode only): the designs
	// where the minimum achievable cycles strictly improves as the
	// PE·CU resource budget grows, identical to ParetoFrontierOf over
	// an exhaustive exploration.
	Frontier []Point
	// Evaluated counts full model evaluations (Analysis.Predict calls);
	// Pruned counts design points excluded by a bound without being
	// evaluated. Evaluated + Pruned == Space.
	Evaluated int
	Pruned    int
	// Points holds the evaluated points in space enumeration order (the
	// deterministic "Evaluated set" of the race/determinism tests).
	Points []Point

	// ModelTime is time spent in analysis, bound derivation and model
	// evaluation, summed over workers; WallTime is elapsed time.
	ModelTime time.Duration
	WallTime  time.Duration
}

// EvaluatedDesigns returns the evaluated designs in space enumeration
// order.
func (r *SearchResult) EvaluatedDesigns() []model.Design {
	out := make([]model.Design, len(r.Points))
	for i, pt := range r.Points {
		out[i] = pt.Design
	}
	return out
}

// lowerBound combines a WG size's DesignBounds into a sound lower bound
// on Predict(d).Cycles for every design d of the subtree with
// d.WIPipeline == pipe, d.Mode == mode, d.PE ≤ peMax and d.CU ≤ cuMax
// (PE/CU drawn from the lattice the bounds were derived on).
//
// Soundness argument, mirroring PredictWith's expression shapes so IEEE
// rounding stays monotone (every input here is ≤ its counterpart in the
// real evaluation, and +, ·, max, min and Ceil are monotone under
// round-to-nearest):
//
//	waves    ≥ ⌈(N_wi^wg − N_PE)/N_PE⌉ at N_PE = peMax   (Eq. 5, N_PE ≤ PE)
//	batches  ≥ ⌈N_wi/(N_wi^wg·N_CU)⌉ at N_CU = cuMax'    (Eq. 7–8, N_CU ≤ CU and ≤ groups)
//	L_CU     ≥ II_lb·waves + Depth_lb                     (Eq. 5, schedule minima)
//	barrier  : Cycles = max(mem, L) + min(mem, L)/N_CU — nondecreasing in
//	           L and N_CU⁻¹, so bounding L by L_CU·batches and N_CU by
//	           cuMax' bounds Eq. 10 from below.
//	pipeline : Cycles ≥ (max(II_lb, L_mem^wi)·waves + Depth_lb)·batches
//	           (Eq. 11–12 with N_PE·N_CU ≥ 1), floored by L_mem^wi·N_wi.
//	both     : Cycles ≥ ΔL_schedule·⌈N_wi/N_wi^wg⌉ (dispatcher floor).
func lowerBound(b model.DesignBounds, pipe bool, mode model.CommMode, peMax, cuMax int) float64 {
	nwg := float64(b.WGSize)
	nwi := float64(b.NWI)
	groups := math.Ceil(nwi / nwg)
	dispFloor := b.DLS * groups

	ii, depth := float64(b.PipeII), float64(b.PipeDepth)
	if !pipe {
		ii, depth = float64(b.SerialDepth), float64(b.SerialDepth)
	}
	waves := math.Ceil((nwg - float64(peMax)) / float64(peMax))
	if waves < 0 {
		waves = 0
	}
	ncu := cuMax
	if g := int(groups); g >= 1 && g < ncu {
		ncu = g
	}
	if ncu < 1 {
		ncu = 1
	}
	batches := math.Ceil(nwi / (nwg * float64(ncu)))

	memT := b.LMemWI * nwi
	if b.HasBarrier {
		mode = model.ModeBarrier
	}
	var lb float64
	switch mode {
	case model.ModeBarrier:
		// Eq. 10 rewritten: memT + L − (1−1/N_CU)·min(L, memT)
		// = max(memT, L) + min(memT, L)/N_CU, with L ≥ lcomp.
		lcomp := (ii*waves + depth) * batches
		lb = math.Max(memT, lcomp) + math.Min(memT, lcomp)/float64(ncu)
	default:
		iiWI := math.Max(ii, b.LMemWI)
		lb = (iiWI*waves + depth) * batches
		if lb < memT {
			lb = memT
		}
	}
	if lb < dispFloor {
		lb = dispFloor
	}
	return lb
}

// Resource returns the search's resource proxy for a design: the
// requested PE·CU replication (the area a design asks the flow for; the
// effective N_PE·N_CU of Eq. 6/8 is capped by it).
func Resource(d model.Design) int { return d.PE * d.CU }

// ParetoFrontierOf computes the cycles-vs-resource Pareto frontier of an
// exhaustively evaluated point set: for each resource budget level
// (distinct PE·CU product, ascending) the best point within budget —
// ties broken by evaluation order, like BestByModel — kept only where it
// strictly improves on every cheaper budget. Search's Pareto mode
// returns the identical frontier without the exhaustive sweep.
func ParetoFrontierOf(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	levels := map[int]bool{}
	for _, pt := range pts {
		levels[Resource(pt.Design)] = true
	}
	sorted := make([]int, 0, len(levels))
	for r := range levels {
		sorted = append(sorted, r)
	}
	sort.Ints(sorted)

	var out []Point
	prev := math.Inf(1)
	for _, level := range sorted {
		best, ok := -1, false
		for i, pt := range pts {
			if Resource(pt.Design) > level {
				continue
			}
			if !ok || pt.Est < pts[best].Est {
				best, ok = i, true
			}
		}
		if ok && pts[best].Est < prev {
			out = append(out, pts[best])
			prev = pts[best].Est
		}
	}
	return out
}

// searchGroup is one branch of the lattice: all designs sharing a WG
// size, pipelining choice and communication mode. Its members' PE×CU
// sub-lattice is what the bound relaxes over.
type searchGroup struct {
	wg         int64
	pipe       bool
	mode       model.CommMode
	members    []int // space indices, ascending
	minIdx     int
	peMax      int
	cuMax      int
	lb         float64
	hasBarrier bool
}

// Search runs the guided branch-and-bound exploration. It is equivalent
// to model-only exhaustive Explore — same best design (exact tie-breaks
// included) and, in Pareto mode, the same frontier — while evaluating
// only the design points no bound could exclude. Preparation (compile +
// analyze per WG size) is sharded over opts.Workers through the prep
// cache exactly like Explore; the bounding walk itself is sequenced so
// the evaluated set is deterministic at any worker count.
func Search(ctx context.Context, k *bench.Kernel, opts SearchOptions) (*SearchResult, error) {
	p := opts.Platform
	if p == nil {
		p = device.Virtex7()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPrepCache()
	}
	if ctx == nil {
		ctx = context.Background()
	}

	t0 := time.Now()
	res := &SearchResult{Kernel: k}

	// Phase 1: prepare every WG size concurrently (shared with Explore
	// through the cache) and derive its schedule bounds.
	wgs := k.WGSizes()
	type prep struct {
		an     *model.Analysis
		bounds model.DesignBounds
	}
	preps := make([]prep, len(wgs))
	errs := make([]error, len(wgs))
	peVals := model.PEValues(p.MaxPE)
	cuVals := model.CUValues(p.MaxCU)
	var prepNanos int64
	_, prepSpan := telemetry.Start(ctx, "prep")
	prepSpan.Annotate("wg_sizes", fmt.Sprint(len(wgs)))
	runShards(workers, len(wgs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		e, computed := cache.get(ctx, k, p, wgs[i])
		if e.err != nil {
			errs[i] = e.err
			return
		}
		b0 := time.Now()
		preps[i] = prep{an: e.an, bounds: e.an.DesignBounds(peVals, cuVals)}
		d := time.Since(b0)
		if computed {
			d += e.dur
		}
		atomic.AddInt64(&prepNanos, int64(d))
	})
	prepSpan.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prepByWG := make(map[int64]prep, len(wgs))
	for i, wg := range wgs {
		prepByWG[wg] = preps[i]
	}

	designs := Space(k, p)
	res.Space = len(designs)
	if len(designs) == 0 {
		res.WallTime = time.Since(t0)
		res.ModelTime = time.Duration(prepNanos)
		return res, nil
	}
	hasBarrier := prepByWG[designs[0].WGSize].bounds.HasBarrier

	// Group the space. Barrier-forced kernels run every design in
	// effective barrier mode (§3.5), so a pipeline-labeled design always
	// ties its barrier-labeled sibling at the immediately preceding
	// space index and can never win the first-index tie-break: skip the
	// whole mode without evaluation.
	groupOf := map[searchGroupKey]*searchGroup{}
	var groups []*searchGroup
	for i, d := range designs {
		if hasBarrier && d.Mode == model.ModePipeline {
			continue
		}
		key := searchGroupKey{wg: d.WGSize, pipe: d.WIPipeline, mode: d.Mode}
		g := groupOf[key]
		if g == nil {
			g = &searchGroup{
				wg: d.WGSize, pipe: d.WIPipeline, mode: d.Mode,
				minIdx: i, hasBarrier: hasBarrier,
			}
			groupOf[key] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, i)
		if d.PE > g.peMax {
			g.peMax = d.PE
		}
		if d.CU > g.cuMax {
			g.cuMax = d.CU
		}
	}
	for _, g := range groups {
		g.lb = lowerBound(prepByWG[g.wg].bounds, g.pipe, g.mode, g.peMax, g.cuMax)
	}
	// Visit the most promising branches first: ascending bound, then
	// ascending first index so tie-broken incumbents settle early.
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].lb != groups[b].lb {
			return groups[a].lb < groups[b].lb
		}
		return groups[a].minIdx < groups[b].minIdx
	})

	// Evaluation memo: each design point is Predicted at most once, no
	// matter how many frontier levels visit it.
	ests := make(map[int]float64, len(designs))
	var evalNanos int64
	evaluate := func(i int) float64 {
		if est, ok := ests[i]; ok {
			return est
		}
		m0 := time.Now()
		est := prepByWG[designs[i].WGSize].an.Predict(designs[i]).Cycles
		atomic.AddInt64(&evalNanos, int64(time.Since(m0)))
		ests[i] = est
		res.Evaluated++
		return est
	}

	// Incumbent with exhaustive Explore's exact tie-break: strictly
	// fewer cycles, or equal cycles at an earlier space index.
	incEst := math.Inf(1)
	incIdx := len(designs)
	consider := func(i int, est float64) {
		if est < incEst || (est == incEst && i < incIdx) {
			incEst, incIdx = est, i
		}
	}
	// pruned reports that no design of a subtree with the given bound
	// and minimum space index can displace the incumbent: the bound
	// exceeds it, or meets it exactly with every index losing the tie.
	pruned := func(lb float64, minIdx int) bool {
		return lb > incEst || (lb == incEst && minIdx > incIdx)
	}

	// walk runs one bounded sweep restricted to designs with
	// Resource(d) ≤ budget, updating the shared incumbent (valid across
	// ascending budgets: a smaller budget's space is a subset).
	bounds := func(wg int64) model.DesignBounds { return prepByWG[wg].bounds }
	walk := func(budget int) error {
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Subtree caps under this budget.
			peMax, cuMax, minIdx, probe := 0, 0, -1, -1
			for _, i := range g.members {
				d := designs[i]
				if Resource(d) > budget {
					continue
				}
				if minIdx < 0 {
					minIdx = i
				}
				if d.PE > peMax {
					peMax = d.PE
				}
				if d.CU > cuMax {
					cuMax = d.CU
				}
				probe = i // last in-budget member: max parallelism
			}
			if minIdx < 0 {
				continue
			}
			if glb := lowerBound(bounds(g.wg), g.pipe, g.mode, peMax, cuMax); pruned(glb, minIdx) {
				continue
			}
			// Probe the group's strongest design first: a tight incumbent
			// turns the ascending sweep below into pure pruning.
			if _, seen := ests[probe]; !seen {
				d := designs[probe]
				if !pruned(lowerBound(bounds(g.wg), g.pipe, g.mode, d.PE, d.CU), probe) {
					consider(probe, evaluate(probe))
				}
			}
			for _, i := range g.members {
				d := designs[i]
				if Resource(d) > budget {
					continue
				}
				if est, seen := ests[i]; seen {
					consider(i, est)
					continue
				}
				if pruned(lowerBound(bounds(g.wg), g.pipe, g.mode, d.PE, d.CU), i) {
					continue
				}
				consider(i, evaluate(i))
			}
		}
		return nil
	}

	maxBudget := 0
	levelSet := map[int]bool{}
	for _, d := range designs {
		r := Resource(d)
		levelSet[r] = true
		if r > maxBudget {
			maxBudget = r
		}
	}

	_, searchSpan := telemetry.Start(ctx, "search")
	defer func() {
		searchSpan.Annotate("evaluated", fmt.Sprint(res.Evaluated))
		searchSpan.Annotate("pruned", fmt.Sprint(res.Space-res.Evaluated))
		searchSpan.End()
	}()
	if opts.Pareto {
		// One constrained search per budget level, cheapest first; the
		// frontier keeps the levels whose optimum strictly improves.
		levels := make([]int, 0, len(levelSet))
		for r := range levelSet {
			levels = append(levels, r)
		}
		sort.Ints(levels)
		prev := math.Inf(1)
		for _, level := range levels {
			if err := walk(level); err != nil {
				return nil, err
			}
			if incIdx < len(designs) && incEst < prev {
				res.Frontier = append(res.Frontier, Point{Design: designs[incIdx], Est: incEst})
				prev = incEst
			}
		}
	} else if err := walk(maxBudget); err != nil {
		return nil, err
	}

	if incIdx < len(designs) {
		res.Best = Point{Design: designs[incIdx], Est: incEst}
		res.BestOK = true
		res.BestIndex = incIdx
	}
	res.Pruned = res.Space - res.Evaluated
	idxs := make([]int, 0, len(ests))
	for i := range ests {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	res.Points = make([]Point, 0, len(idxs))
	for _, i := range idxs {
		res.Points = append(res.Points, Point{Design: designs[i], Est: ests[i]})
	}
	res.ModelTime = time.Duration(prepNanos + evalNanos)
	res.WallTime = time.Since(t0)
	return res, nil
}

type searchGroupKey struct {
	wg   int64
	pipe bool
	mode model.CommMode
}
