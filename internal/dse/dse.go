// Package dse implements the design-space exploration of §4.3: exhaustive
// search driven by the FlexCL analytical model, the step-by-step heuristic
// search of Wang et al. [16] driven by a coarse model, and the metrics the
// paper reports (optimality rate, distance to optimum, speedup over the
// unoptimized baseline design, exploration time).
package dse

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/rtlsim"
)

// Point is one evaluated design.
type Point struct {
	Design model.Design
	// Est is the FlexCL model estimate in cycles.
	Est float64
	// Actual is the ground-truth ("System Run") cycles; 0 until measured.
	Actual float64
	// Baseline is the SDAccel estimate; negative when the tool failed.
	Baseline float64
}

// Space enumerates the kernel's design space: work-group sizes within the
// kernel's bounds × pipeline × PE × CU × communication mode.
func Space(k *bench.Kernel, p *device.Platform) []model.Design {
	var out []model.Design
	for _, wg := range k.WGSizes() {
		for _, d := range model.DefaultSpace(wg, p.MaxPE, p.MaxCU) {
			if d.WGSize == wg {
				out = append(out, d)
			}
		}
	}
	return out
}

// Result is a full exploration of one kernel.
type Result struct {
	Kernel *bench.Kernel
	Points []Point

	// ModelTime is the wall time spent on FlexCL analysis + prediction.
	ModelTime time.Duration
	// SimTime is the wall time spent on ground-truth simulation.
	SimTime time.Duration

	// BaselineFailures counts design points the SDAccel estimator
	// rejected.
	BaselineFailures int
}

// Options tunes exploration.
type Options struct {
	Platform *device.Platform
	// SimMaxGroups caps ground-truth simulation (0 = all groups).
	SimMaxGroups int
	// SkipActual skips ground-truth simulation (model-only exploration).
	SkipActual bool
	// SkipBaseline skips the SDAccel baseline.
	SkipBaseline bool
	// PruneInfeasible drops design points whose estimated resource usage
	// (DSPs, BRAM) exceeds the platform — they could never be placed.
	PruneInfeasible bool
}

// Explore evaluates every design point of the kernel with the FlexCL
// model, the SDAccel baseline and (optionally) ground-truth simulation.
func Explore(k *bench.Kernel, opts Options) (*Result, error) {
	p := opts.Platform
	if p == nil {
		p = device.Virtex7()
	}
	res := &Result{Kernel: k}

	// One analysis per work-group size serves every design at that size.
	analyses := map[int64]*model.Analysis{}
	t0 := time.Now()
	for _, wg := range k.WGSizes() {
		f, err := k.Compile(wg)
		if err != nil {
			return nil, err
		}
		an, err := model.Analyze(f, p, k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
		if err != nil {
			return nil, fmt.Errorf("dse %s wg=%d: %w", k.ID(), wg, err)
		}
		analyses[wg] = an
	}
	prep := time.Since(t0)

	designs := Space(k, p)
	res.Points = make([]Point, 0, len(designs))

	tModel := time.Duration(0)
	tSim := time.Duration(0)
	for _, d := range designs {
		an := analyses[d.WGSize]
		if opts.PruneInfeasible && !an.ResourceUsage(d).Feasible {
			continue
		}
		pt := Point{Design: d}

		m0 := time.Now()
		pt.Est = an.Predict(d).Cycles
		tModel += time.Since(m0)

		if !opts.SkipBaseline {
			if est, err := baseline.SDAccel(an, d); err == nil {
				pt.Baseline = est
			} else {
				pt.Baseline = -1
				res.BaselineFailures++
			}
		}

		if !opts.SkipActual {
			s0 := time.Now()
			f, err := k.Compile(d.WGSize)
			if err != nil {
				return nil, err
			}
			sim, err := rtlsim.Simulate(f, p, k.Config(d.WGSize), d, rtlsim.Options{MaxGroups: opts.SimMaxGroups})
			if err != nil {
				return nil, fmt.Errorf("dse %s %v: %w", k.ID(), d, err)
			}
			pt.Actual = sim.Cycles
			tSim += time.Since(s0)
		}
		res.Points = append(res.Points, pt)
	}
	res.ModelTime = prep + tModel
	res.SimTime = tSim
	return res, nil
}

// AvgErrors returns the mean absolute relative error (percent) of the
// FlexCL model and of the baseline (over the points the baseline
// supported) against the ground truth.
func (r *Result) AvgErrors() (flexcl, sdaccel float64) {
	var fsum, fn, ssum, sn float64
	for _, pt := range r.Points {
		if pt.Actual <= 0 {
			continue
		}
		fsum += rtlsim.ErrorVs(pt.Est, pt.Actual)
		fn++
		if pt.Baseline > 0 {
			ssum += rtlsim.ErrorVs(pt.Baseline, pt.Actual)
			sn++
		}
	}
	if fn > 0 {
		flexcl = fsum / fn
	}
	if sn > 0 {
		sdaccel = ssum / sn
	}
	return flexcl, sdaccel
}

// BestByModel returns the design the FlexCL model ranks fastest.
func (r *Result) BestByModel() Point {
	best := r.Points[0]
	for _, pt := range r.Points[1:] {
		if pt.Est < best.Est {
			best = pt
		}
	}
	return best
}

// BestActual returns the true optimum (requires measured points).
func (r *Result) BestActual() Point {
	best := r.Points[0]
	for _, pt := range r.Points[1:] {
		if pt.Actual > 0 && (best.Actual <= 0 || pt.Actual < best.Actual) {
			best = pt
		}
	}
	return best
}

// ActualOf looks up the measured cycles of a design.
func (r *Result) ActualOf(d model.Design) float64 {
	for _, pt := range r.Points {
		if pt.Design == d {
			return pt.Actual
		}
	}
	return 0
}

// GapToOptimum returns how far (percent) the model-selected design is
// from the true optimum, by actual performance (§4.3: 2.1 % average).
func (r *Result) GapToOptimum() float64 {
	sel := r.ActualOf(r.BestByModel().Design)
	opt := r.BestActual().Actual
	if opt <= 0 || sel <= 0 {
		return 0
	}
	return (sel - opt) / opt * 100
}

// BaselineDesign is the unoptimized reference configuration (§4.3's
// "baseline unoptimized design"): smallest work-group, no pipelining,
// single PE and CU, barrier mode.
func BaselineDesign(k *bench.Kernel) model.Design {
	return model.Design{
		WGSize: k.WGSizes()[0], WIPipeline: false, PE: 1, CU: 1,
		Mode: model.ModeBarrier,
	}
}

// SpeedupOverBaseline returns actual(baseline)/actual(selected).
func (r *Result) SpeedupOverBaseline() float64 {
	base := r.ActualOf(BaselineDesign(r.Kernel))
	sel := r.ActualOf(r.BestByModel().Design)
	if base <= 0 || sel <= 0 {
		return 1
	}
	return base / sel
}

// HeuristicSearch reproduces the step-by-step search of [16]: starting
// from the unoptimized design, optimize one parameter at a time with the
// coarse model, assuming independence between optimizations. Returns the
// chosen design and the number of coarse-model evaluations.
func HeuristicSearch(k *bench.Kernel, analyses map[int64]*model.Analysis) (model.Design, int) {
	cur := BaselineDesign(k)
	evals := 0
	score := func(d model.Design) float64 {
		evals++
		return baseline.Coarse(analyses[d.WGSize], d)
	}
	// 1. Work-group size.
	bestS := score(cur)
	for _, wg := range k.WGSizes() {
		d := cur
		d.WGSize = wg
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 2. Pipelining.
	for _, pipe := range []bool{false, true} {
		d := cur
		d.WIPipeline = pipe
		if !pipe && d.PE > 1 {
			continue
		}
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 3. PE parallelism (requires pipelining in the flow).
	for pe := 1; pe <= 16; pe *= 2 {
		d := cur
		d.PE = pe
		if pe > 1 {
			d.WIPipeline = true
		}
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 4. CU count.
	for cu := 1; cu <= 4; cu *= 2 {
		d := cur
		d.CU = cu
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 5. Communication mode.
	for _, m := range []model.CommMode{model.ModeBarrier, model.ModePipeline} {
		d := cur
		d.Mode = m
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	return cur, evals
}

// NearOptimal reports whether design d's actual performance is within
// tol percent of the optimum in r.
func (r *Result) NearOptimal(d model.Design, tol float64) bool {
	opt := r.BestActual().Actual
	act := r.ActualOf(d)
	if opt <= 0 || act <= 0 {
		return false
	}
	return (act-opt)/opt*100 <= tol
}

// SortedByActual returns the points ordered fastest-first by measured
// cycles (unmeasured points last).
func (r *Result) SortedByActual() []Point {
	pts := append([]Point(nil), r.Points...)
	sort.SliceStable(pts, func(i, j int) bool {
		ai, aj := pts[i].Actual, pts[j].Actual
		if ai <= 0 {
			return false
		}
		if aj <= 0 {
			return true
		}
		return ai < aj
	})
	return pts
}
