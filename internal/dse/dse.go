// Package dse implements the design-space exploration of §4.3: exhaustive
// search driven by the FlexCL analytical model, the step-by-step heuristic
// search of Wang et al. [16] driven by a coarse model, and the metrics the
// paper reports (optimality rate, distance to optimum, speedup over the
// unoptimized baseline design, exploration time).
package dse

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/rtlsim"
	"repro/internal/telemetry"
)

// Point is one evaluated design.
type Point struct {
	Design model.Design
	// Est is the FlexCL model estimate in cycles.
	Est float64
	// Actual is the ground-truth ("System Run") cycles; 0 until measured.
	Actual float64
	// Baseline is the SDAccel estimate; negative when the tool failed.
	Baseline float64
}

// Space enumerates the kernel's design space: work-group sizes within the
// kernel's bounds × pipeline × PE × CU × communication mode.
func Space(k *bench.Kernel, p *device.Platform) []model.Design {
	var out []model.Design
	for _, wg := range k.WGSizes() {
		for _, d := range model.DefaultSpace(wg, p.MaxPE, p.MaxCU) {
			if d.WGSize == wg {
				out = append(out, d)
			}
		}
	}
	return out
}

// Result is a full exploration of one kernel.
type Result struct {
	Kernel *bench.Kernel
	Points []Point

	// ModelTime is the time spent on FlexCL analysis + prediction,
	// summed over the worker shards (it can exceed WallTime when the
	// exploration runs in parallel).
	ModelTime time.Duration
	// SimTime is the time spent on ground-truth simulation, summed over
	// the worker shards.
	SimTime time.Duration
	// WallTime is the elapsed wall-clock time of the whole exploration.
	WallTime time.Duration

	// BaselineFailures counts design points the SDAccel estimator
	// rejected.
	BaselineFailures int
}

// Options tunes exploration.
type Options struct {
	Platform *device.Platform
	// SimMaxGroups caps ground-truth simulation (0 = all groups).
	SimMaxGroups int
	// SkipActual skips ground-truth simulation (model-only exploration).
	SkipActual bool
	// SkipBaseline skips the SDAccel baseline.
	SkipBaseline bool
	// PruneInfeasible drops design points whose estimated resource usage
	// (DSPs, BRAM) exceeds the platform — they could never be placed.
	PruneInfeasible bool
	// Workers is the number of goroutines evaluating design points
	// concurrently. 0 uses runtime.GOMAXPROCS(0); 1 reproduces the
	// serial exploration. Any worker count produces byte-identical
	// Points: design points are written into their slot by index.
	Workers int
	// Cache, when non-nil, shares compiled kernels and analyses across
	// Explore calls (and with HeuristicSearch via PrepCache.Analyses).
	// nil uses a private per-call cache.
	Cache *PrepCache
}

// Explore evaluates every design point of the kernel with the FlexCL
// model, the SDAccel baseline and (optionally) ground-truth simulation.
// ctx is the first parameter of every deadline-carrying entry point in
// this codebase (pass context.Background() when there is nothing to
// propagate): the design space is sharded over opts.Workers goroutines,
// each WG size is compiled and analyzed exactly once through the prep
// cache, and the first worker error (or ctx cancellation) stops the
// exploration without leaking goroutines.
func Explore(ctx context.Context, k *bench.Kernel, opts Options) (*Result, error) {
	p := opts.Platform
	if p == nil {
		p = device.Virtex7()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewPrepCache()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	t0 := time.Now()
	res := &Result{Kernel: k}

	// firstErr is set once by whichever worker fails first; cancel stops
	// the rest. Reads after runShards are safe: the WaitGroup join
	// orders them after every worker's writes.
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Phase 1: prepare (compile + analyze) every WG size concurrently.
	// One analysis per work-group size serves every design at that size.
	wgs := k.WGSizes()
	var prepNanos int64
	_, prepSpan := telemetry.Start(ctx, "prep")
	prepSpan.Annotate("wg_sizes", fmt.Sprint(len(wgs)))
	runShards(workers, len(wgs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		e, computed := cache.get(ctx, k, p, wgs[i])
		if e.err != nil {
			fail(e.err)
			return
		}
		if computed {
			atomic.AddInt64(&prepNanos, int64(e.dur))
		}
	})
	prepSpan.End()
	if firstErr != nil {
		return nil, firstErr
	}

	// Phase 2: fan the design points out over the workers. Each point is
	// independent given its WG size's analysis; results land in their
	// slot by index so the output order matches the serial exploration.
	designs := Space(k, p)
	type slot struct {
		pt   Point
		keep bool
	}
	slots := make([]slot, len(designs))
	var modelNanos, simNanos int64
	_, sweepSpan := telemetry.Start(ctx, "sweep")
	sweepSpan.Annotate("designs", fmt.Sprint(len(designs)))
	runShards(workers, len(designs), func(i int) {
		if ctx.Err() != nil {
			return
		}
		d := designs[i]
		e, _ := cache.get(ctx, k, p, d.WGSize)
		if e.err != nil {
			fail(e.err)
			return
		}
		an := e.an
		if opts.PruneInfeasible && !an.ResourceUsage(d).Feasible {
			return
		}
		pt := Point{Design: d}

		m0 := time.Now()
		pt.Est = an.Predict(d).Cycles
		atomic.AddInt64(&modelNanos, int64(time.Since(m0)))

		if !opts.SkipBaseline {
			if est, err := baseline.SDAccel(an, d); err == nil {
				pt.Baseline = est
			} else {
				pt.Baseline = -1
			}
		}

		if !opts.SkipActual {
			s0 := time.Now()
			sim, err := rtlsim.Simulate(e.f, p, k.Config(d.WGSize), d,
				rtlsim.Options{MaxGroups: opts.SimMaxGroups, Ctx: ctx})
			if err != nil {
				if ctx.Err() == nil {
					fail(fmt.Errorf("dse %s %v: %w", k.ID(), d, err))
				}
				return
			}
			pt.Actual = sim.Cycles
			atomic.AddInt64(&simNanos, int64(time.Since(s0)))
		}
		slots[i] = slot{pt: pt, keep: true}
	})
	sweepSpan.End()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Points = make([]Point, 0, len(designs))
	for i := range slots {
		if !slots[i].keep {
			continue
		}
		pt := slots[i].pt
		if !opts.SkipBaseline && pt.Baseline < 0 {
			res.BaselineFailures++
		}
		res.Points = append(res.Points, pt)
	}
	res.ModelTime = time.Duration(prepNanos + modelNanos)
	res.SimTime = time.Duration(simNanos)
	res.WallTime = time.Since(t0)
	return res, nil
}

// runShards fans n items over min(workers, n) goroutines pulling indices
// from a shared counter, and joins them all before returning (fn handles
// cancellation itself by returning early).
func runShards(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// AvgErrors returns the mean absolute relative error (percent) of the
// FlexCL model and of the baseline (over the points the baseline
// supported) against the ground truth.
func (r *Result) AvgErrors() (flexcl, sdaccel float64) {
	var fsum, fn, ssum, sn float64
	for _, pt := range r.Points {
		if pt.Actual <= 0 {
			continue
		}
		fsum += rtlsim.ErrorVs(pt.Est, pt.Actual)
		fn++
		if pt.Baseline > 0 {
			ssum += rtlsim.ErrorVs(pt.Baseline, pt.Actual)
			sn++
		}
	}
	if fn > 0 {
		flexcl = fsum / fn
	}
	if sn > 0 {
		sdaccel = ssum / sn
	}
	return flexcl, sdaccel
}

// BestByModel returns the design the FlexCL model ranks fastest. ok is
// false when the result holds no points at all (for example when
// PruneInfeasible dropped the entire space).
func (r *Result) BestByModel() (best Point, ok bool) {
	for i, pt := range r.Points {
		if i == 0 || pt.Est < best.Est {
			best = pt
		}
	}
	return best, len(r.Points) > 0
}

// BestActual returns the true optimum among the measured points. ok is
// false when no point has a ground-truth measurement (model-only
// explorations, or an empty result).
func (r *Result) BestActual() (best Point, ok bool) {
	for _, pt := range r.Points {
		if pt.Actual <= 0 {
			continue
		}
		if !ok || pt.Actual < best.Actual {
			best, ok = pt, true
		}
	}
	return best, ok
}

// ActualOf looks up the measured cycles of a design.
func (r *Result) ActualOf(d model.Design) float64 {
	for _, pt := range r.Points {
		if pt.Design == d {
			return pt.Actual
		}
	}
	return 0
}

// GapToOptimum returns how far (percent) the model-selected design is
// from the true optimum, by actual performance (§4.3: 2.1 % average).
// ok is false when the gap is unmeasurable — no points, no ground-truth
// measurements, or the model-selected design itself was never simulated
// — so partial-simulation runs cannot masquerade as "0 % from optimum".
func (r *Result) GapToOptimum() (gap float64, ok bool) {
	best, ok := r.BestByModel()
	if !ok {
		return 0, false
	}
	optPt, ok := r.BestActual()
	if !ok {
		return 0, false
	}
	sel := r.ActualOf(best.Design)
	opt := optPt.Actual
	if opt <= 0 || sel <= 0 {
		return 0, false
	}
	return (sel - opt) / opt * 100, true
}

// BaselineDesign is the unoptimized reference configuration (§4.3's
// "baseline unoptimized design"): smallest work-group, no pipelining,
// single PE and CU, barrier mode. ok is false when the kernel's
// work-group sweep is empty, leaving no work-group size to anchor the
// baseline to.
func BaselineDesign(k *bench.Kernel) (model.Design, bool) {
	wgs := k.WGSizes()
	if len(wgs) == 0 {
		return model.Design{}, false
	}
	return model.Design{
		WGSize: wgs[0], WIPipeline: false, PE: 1, CU: 1,
		Mode: model.ModeBarrier,
	}, true
}

// SpeedupOverBaseline returns actual(baseline)/actual(selected). ok is
// false when either side lacks a ground-truth measurement (or the
// baseline design does not exist), so partial-simulation runs report
// "unknown" instead of an ideal 1×.
func (r *Result) SpeedupOverBaseline() (speedup float64, ok bool) {
	best, ok := r.BestByModel()
	if !ok || r.Kernel == nil {
		return 0, false
	}
	bd, ok := BaselineDesign(r.Kernel)
	if !ok {
		return 0, false
	}
	base := r.ActualOf(bd)
	sel := r.ActualOf(best.Design)
	if base <= 0 || sel <= 0 {
		return 0, false
	}
	return base / sel, true
}

// HeuristicSearch reproduces the step-by-step search of [16]: starting
// from the unoptimized design, optimize one parameter at a time with the
// coarse model, assuming independence between optimizations. Returns the
// chosen design and the number of coarse-model evaluations. ok is false
// when there is nothing to search — an empty work-group sweep or no
// analyses to score against — matching BaselineDesign's sentinel instead
// of handing back a zero Design that callers could mistake for a choice.
func HeuristicSearch(k *bench.Kernel, analyses map[int64]*model.Analysis) (_ model.Design, evals int, ok bool) {
	cur, ok := BaselineDesign(k)
	if !ok || len(analyses) == 0 {
		return model.Design{}, 0, false
	}
	score := func(d model.Design) float64 {
		evals++
		return baseline.Coarse(analyses[d.WGSize], d)
	}
	// 1. Work-group size.
	bestS := score(cur)
	for _, wg := range k.WGSizes() {
		d := cur
		d.WGSize = wg
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 2. Pipelining.
	for _, pipe := range []bool{false, true} {
		d := cur
		d.WIPipeline = pipe
		if !pipe && d.PE > 1 {
			continue
		}
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 3. PE parallelism (requires pipelining in the flow).
	for pe := 1; pe <= 16; pe *= 2 {
		d := cur
		d.PE = pe
		if pe > 1 {
			d.WIPipeline = true
		}
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 4. CU count.
	for cu := 1; cu <= 4; cu *= 2 {
		d := cur
		d.CU = cu
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	// 5. Communication mode.
	for _, m := range []model.CommMode{model.ModeBarrier, model.ModePipeline} {
		d := cur
		d.Mode = m
		if s := score(d); s < bestS {
			bestS, cur = s, d
		}
	}
	return cur, evals, true
}

// NearOptimal reports whether design d's actual performance is within
// tol percent of the optimum in r.
func (r *Result) NearOptimal(d model.Design, tol float64) bool {
	optPt, ok := r.BestActual()
	if !ok {
		return false
	}
	opt := optPt.Actual
	act := r.ActualOf(d)
	if opt <= 0 || act <= 0 {
		return false
	}
	return (act-opt)/opt*100 <= tol
}

// SortedByActual returns the points ordered fastest-first by measured
// cycles (unmeasured points last).
func (r *Result) SortedByActual() []Point {
	pts := append([]Point(nil), r.Points...)
	sort.SliceStable(pts, func(i, j int) bool {
		ai, aj := pts[i].Actual, pts[j].Actual
		if ai <= 0 {
			return false
		}
		if aj <= 0 {
			return true
		}
		return ai < aj
	})
	return pts
}
