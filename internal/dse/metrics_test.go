package dse_test

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/model"
)

// fixtureResult builds a small hand-checkable exploration over nn/nn's
// real design vocabulary. Four points, of which three are measured:
//
//	base (the unoptimized BaselineDesign): Est 1000, Actual  800, Baseline 1100
//	mid:                                   Est  500, Actual  400, Baseline  -1 (failed)
//	best (model's pick, true optimum):     Est  100, Actual  200, Baseline  150
//	unmeasured:                            Est   90, Actual    0, Baseline    0
func fixtureResult(t *testing.T) (*dse.Result, dse.Point, dse.Point, dse.Point) {
	t.Helper()
	k := bench.Find("nn", "nn")
	if k == nil {
		t.Fatal("nn/nn missing")
	}
	base := dse.Point{Design: dse.BaselineDesign(k), Est: 1000, Actual: 800, Baseline: 1100}
	mid := dse.Point{
		Design: model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 1, Mode: model.ModeBarrier},
		Est:    500, Actual: 400, Baseline: -1,
	}
	best := dse.Point{
		Design: model.Design{WGSize: 128, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModePipeline},
		Est:    100, Actual: 200, Baseline: 150,
	}
	unmeasured := dse.Point{
		Design: model.Design{WGSize: 256, WIPipeline: true, PE: 8, CU: 4, Mode: model.ModePipeline},
		Est:    90, Actual: 0, Baseline: 0,
	}
	r := &dse.Result{Kernel: k, Points: []dse.Point{base, mid, best, unmeasured}, BaselineFailures: 1}
	return r, base, mid, best
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAvgErrorsFixture(t *testing.T) {
	r, _, _, _ := fixtureResult(t)
	// FlexCL errors over the three measured points:
	//   |1000-800|/800 = 25 %, |500-400|/400 = 25 %, |100-200|/200 = 50 %
	//   mean = 100/3 %.
	// SDAccel errors over the measured points it supported (base, best):
	//   |1100-800|/800 = 37.5 %, |150-200|/200 = 25 %  -> mean 31.25 %.
	fe, se := r.AvgErrors()
	if !near(fe, 100.0/3.0) {
		t.Errorf("FlexCL avg error = %v, want %v", fe, 100.0/3.0)
	}
	if !near(se, 31.25) {
		t.Errorf("SDAccel avg error = %v, want 31.25", se)
	}
}

func TestAvgErrorsNoMeasurements(t *testing.T) {
	r := &dse.Result{Points: []dse.Point{{Est: 10}, {Est: 20}}}
	fe, se := r.AvgErrors()
	if fe != 0 || se != 0 {
		t.Errorf("AvgErrors without measurements = %v, %v, want 0, 0", fe, se)
	}
}

func TestBestAndGapFixture(t *testing.T) {
	r, _, _, best := fixtureResult(t)
	// The model's pick is the unmeasured point (Est 90)... which has no
	// Actual, so GapToOptimum falls back to 0 via sel <= 0. Drop the
	// unmeasured point to exercise the interesting path.
	r.Points = r.Points[:3]
	got, ok := r.BestByModel()
	if !ok || got.Design != best.Design {
		t.Fatalf("BestByModel = %+v, %v; want the Est-100 point", got, ok)
	}
	gotA, ok := r.BestActual()
	if !ok || gotA.Design != best.Design {
		t.Fatalf("BestActual = %+v, %v; want the Actual-200 point", gotA, ok)
	}
	// Selected design IS the optimum: gap 0.
	if gap := r.GapToOptimum(); !near(gap, 0) {
		t.Errorf("GapToOptimum = %v, want 0", gap)
	}
	// Speedup = actual(baseline design) / actual(selected) = 800/200.
	if sp := r.SpeedupOverBaseline(); !near(sp, 4) {
		t.Errorf("SpeedupOverBaseline = %v, want 4", sp)
	}
}

func TestGapWhenModelPicksWrong(t *testing.T) {
	r, _, mid, best := fixtureResult(t)
	r.Points = r.Points[:3]
	// Make the model prefer the mid point (Est 50 < 100): the selected
	// design's actual is 400 vs optimum 200 -> gap 100 %.
	r.Points[1].Est = 50
	sel, ok := r.BestByModel()
	if !ok || sel.Design != mid.Design {
		t.Fatalf("BestByModel = %+v, want the mid point", sel)
	}
	if gap := r.GapToOptimum(); !near(gap, 100) {
		t.Errorf("GapToOptimum = %v, want 100", gap)
	}
	// Optimality-rate predicate: the true optimum is near-optimal at any
	// tolerance; the selected (2x slower) point only within >= 100 %.
	if !r.NearOptimal(best.Design, 0) {
		t.Error("optimum not NearOptimal at tol 0")
	}
	if r.NearOptimal(mid.Design, 99) {
		t.Error("2x-slower design NearOptimal at 99 %")
	}
	if !r.NearOptimal(mid.Design, 100) {
		t.Error("2x-slower design not NearOptimal at exactly 100 %")
	}
}

func TestActualOfMissingDesign(t *testing.T) {
	r, _, _, _ := fixtureResult(t)
	missing := model.Design{WGSize: 999, PE: 1, CU: 1}
	if v := r.ActualOf(missing); v != 0 {
		t.Errorf("ActualOf(missing) = %v, want 0", v)
	}
}
