package dse_test

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/dse"
	"repro/internal/model"
)

// fixtureResult builds a small hand-checkable exploration over nn/nn's
// real design vocabulary. Four points, of which three are measured:
//
//	base (the unoptimized BaselineDesign): Est 1000, Actual  800, Baseline 1100
//	mid:                                   Est  500, Actual  400, Baseline  -1 (failed)
//	best (model's pick, true optimum):     Est  100, Actual  200, Baseline  150
//	unmeasured:                            Est   90, Actual    0, Baseline    0
func fixtureResult(t *testing.T) (*dse.Result, dse.Point, dse.Point, dse.Point) {
	t.Helper()
	k := bench.Find("nn", "nn")
	if k == nil {
		t.Fatal("nn/nn missing")
	}
	bd, ok := dse.BaselineDesign(k)
	if !ok {
		t.Fatal("BaselineDesign not ok for nn/nn")
	}
	base := dse.Point{Design: bd, Est: 1000, Actual: 800, Baseline: 1100}
	mid := dse.Point{
		Design: model.Design{WGSize: 64, WIPipeline: true, PE: 2, CU: 1, Mode: model.ModeBarrier},
		Est:    500, Actual: 400, Baseline: -1,
	}
	best := dse.Point{
		Design: model.Design{WGSize: 128, WIPipeline: true, PE: 4, CU: 2, Mode: model.ModePipeline},
		Est:    100, Actual: 200, Baseline: 150,
	}
	unmeasured := dse.Point{
		Design: model.Design{WGSize: 256, WIPipeline: true, PE: 8, CU: 4, Mode: model.ModePipeline},
		Est:    90, Actual: 0, Baseline: 0,
	}
	r := &dse.Result{Kernel: k, Points: []dse.Point{base, mid, best, unmeasured}, BaselineFailures: 1}
	return r, base, mid, best
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAvgErrorsFixture(t *testing.T) {
	r, _, _, _ := fixtureResult(t)
	// FlexCL errors over the three measured points:
	//   |1000-800|/800 = 25 %, |500-400|/400 = 25 %, |100-200|/200 = 50 %
	//   mean = 100/3 %.
	// SDAccel errors over the measured points it supported (base, best):
	//   |1100-800|/800 = 37.5 %, |150-200|/200 = 25 %  -> mean 31.25 %.
	fe, se := r.AvgErrors()
	if !near(fe, 100.0/3.0) {
		t.Errorf("FlexCL avg error = %v, want %v", fe, 100.0/3.0)
	}
	if !near(se, 31.25) {
		t.Errorf("SDAccel avg error = %v, want 31.25", se)
	}
}

func TestAvgErrorsNoMeasurements(t *testing.T) {
	r := &dse.Result{Points: []dse.Point{{Est: 10}, {Est: 20}}}
	fe, se := r.AvgErrors()
	if fe != 0 || se != 0 {
		t.Errorf("AvgErrors without measurements = %v, %v, want 0, 0", fe, se)
	}
}

func TestBestAndGapFixture(t *testing.T) {
	r, _, _, best := fixtureResult(t)
	// The model's pick is the unmeasured point (Est 90), which has no
	// Actual: the gap and speedup are unmeasurable and must say so
	// instead of reporting the ideal 0 % / 1×.
	if gap, ok := r.GapToOptimum(); ok {
		t.Errorf("GapToOptimum measurable with an unsimulated selection (= %v)", gap)
	}
	if sp, ok := r.SpeedupOverBaseline(); ok {
		t.Errorf("SpeedupOverBaseline measurable with an unsimulated selection (= %v)", sp)
	}
	// Drop the unmeasured point to exercise the measured path.
	r.Points = r.Points[:3]
	got, ok := r.BestByModel()
	if !ok || got.Design != best.Design {
		t.Fatalf("BestByModel = %+v, %v; want the Est-100 point", got, ok)
	}
	gotA, ok := r.BestActual()
	if !ok || gotA.Design != best.Design {
		t.Fatalf("BestActual = %+v, %v; want the Actual-200 point", gotA, ok)
	}
	// Selected design IS the optimum: gap 0.
	if gap, ok := r.GapToOptimum(); !ok || !near(gap, 0) {
		t.Errorf("GapToOptimum = %v, %v; want 0, true", gap, ok)
	}
	// Speedup = actual(baseline design) / actual(selected) = 800/200.
	if sp, ok := r.SpeedupOverBaseline(); !ok || !near(sp, 4) {
		t.Errorf("SpeedupOverBaseline = %v, %v; want 4, true", sp, ok)
	}
}

// TestMetricsWithoutBaselineMeasurement: when the unoptimized baseline
// design was never simulated, the speedup is unknown — previously it
// reported an ideal 1×.
func TestMetricsWithoutBaselineMeasurement(t *testing.T) {
	r, _, _, _ := fixtureResult(t)
	r.Points = r.Points[:3]
	r.Points[0].Actual = 0 // un-simulate the baseline point
	if sp, ok := r.SpeedupOverBaseline(); ok {
		t.Errorf("SpeedupOverBaseline measurable without the baseline measurement (= %v)", sp)
	}
	// The gap stays measurable: it needs only the selection + optimum.
	if _, ok := r.GapToOptimum(); !ok {
		t.Error("GapToOptimum should stay measurable without the baseline point")
	}
}

func TestGapWhenModelPicksWrong(t *testing.T) {
	r, _, mid, best := fixtureResult(t)
	r.Points = r.Points[:3]
	// Make the model prefer the mid point (Est 50 < 100): the selected
	// design's actual is 400 vs optimum 200 -> gap 100 %.
	r.Points[1].Est = 50
	sel, ok := r.BestByModel()
	if !ok || sel.Design != mid.Design {
		t.Fatalf("BestByModel = %+v, want the mid point", sel)
	}
	if gap, ok := r.GapToOptimum(); !ok || !near(gap, 100) {
		t.Errorf("GapToOptimum = %v, %v; want 100, true", gap, ok)
	}
	// Optimality-rate predicate: the true optimum is near-optimal at any
	// tolerance; the selected (2x slower) point only within >= 100 %.
	if !r.NearOptimal(best.Design, 0) {
		t.Error("optimum not NearOptimal at tol 0")
	}
	if r.NearOptimal(mid.Design, 99) {
		t.Error("2x-slower design NearOptimal at 99 %")
	}
	if !r.NearOptimal(mid.Design, 100) {
		t.Error("2x-slower design not NearOptimal at exactly 100 %")
	}
}

func TestActualOfMissingDesign(t *testing.T) {
	r, _, _, _ := fixtureResult(t)
	missing := model.Design{WGSize: 999, PE: 1, CU: 1}
	if v := r.ActualOf(missing); v != 0 {
		t.Errorf("ActualOf(missing) = %v, want 0", v)
	}
}
