package dse_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
)

// searchKernels is the subset exercised by the unit tests; the full
// 60-kernel corpus is covered by internal/check's "search" family.
var searchKernels = [][2]string{
	{"nn", "nn"},           // no barrier: both comm modes live
	{"hotspot", "hotspot"}, // barrier kernel: pipeline mode collapses
	{"gemm", "gemm"},
	{"bfs", "bfs_1"},
}

func mustKernel(t *testing.T, benchName, kernel string) *bench.Kernel {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	return k
}

func TestSearchMatchesExhaustive(t *testing.T) {
	cache := dse.NewPrepCache()
	for _, id := range searchKernels {
		k := mustKernel(t, id[0], id[1])
		ex, err := dse.Explore(context.Background(), k, dse.Options{
			SkipActual: true, SkipBaseline: true, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := dse.Search(context.Background(), k, dse.SearchOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		want, ok := ex.BestByModel()
		if !ok || !sr.BestOK {
			t.Fatalf("%s: best missing (exhaustive ok=%v, guided ok=%v)", k.ID(), ok, sr.BestOK)
		}
		if sr.Best.Design != want.Design {
			t.Errorf("%s: guided best %v != exhaustive best %v", k.ID(), sr.Best.Design, want.Design)
		}
		if sr.Best.Est != want.Est {
			t.Errorf("%s: guided est %v != exhaustive est %v (must be bitwise equal)",
				k.ID(), sr.Best.Est, want.Est)
		}
		if sr.Space != len(ex.Points) {
			t.Errorf("%s: search space %d != exhaustive points %d", k.ID(), sr.Space, len(ex.Points))
		}
		if sr.Evaluated+sr.Pruned != sr.Space {
			t.Errorf("%s: Evaluated (%d) + Pruned (%d) != Space (%d)",
				k.ID(), sr.Evaluated, sr.Pruned, sr.Space)
		}
		if sr.Evaluated >= sr.Space {
			t.Errorf("%s: guided search evaluated the whole space (%d of %d)",
				k.ID(), sr.Evaluated, sr.Space)
		}
		// Every evaluated point must agree bitwise with the exhaustive
		// evaluation of the same design.
		byDesign := map[model.Design]float64{}
		for _, pt := range ex.Points {
			byDesign[pt.Design] = pt.Est
		}
		for _, pt := range sr.Points {
			if est, ok := byDesign[pt.Design]; !ok || est != pt.Est {
				t.Errorf("%s: evaluated point %v: est %v, exhaustive %v", k.ID(), pt.Design, pt.Est, est)
			}
		}
	}
}

func TestSearchParetoMatchesExhaustive(t *testing.T) {
	cache := dse.NewPrepCache()
	for _, id := range searchKernels {
		k := mustKernel(t, id[0], id[1])
		ex, err := dse.Explore(context.Background(), k, dse.Options{
			SkipActual: true, SkipBaseline: true, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := dse.Search(context.Background(), k, dse.SearchOptions{Cache: cache, Pareto: true})
		if err != nil {
			t.Fatal(err)
		}
		want := dse.ParetoFrontierOf(ex.Points)
		if len(pr.Frontier) != len(want) {
			t.Fatalf("%s: frontier has %d points, want %d", k.ID(), len(pr.Frontier), len(want))
		}
		for i := range want {
			if pr.Frontier[i].Design != want[i].Design || pr.Frontier[i].Est != want[i].Est {
				t.Errorf("%s: frontier[%d] = %v (%v), want %v (%v)", k.ID(), i,
					pr.Frontier[i].Design, pr.Frontier[i].Est, want[i].Design, want[i].Est)
			}
		}
		// The frontier's cheapest-resource end dominates nothing and its
		// Est sequence strictly decreases with growing budget.
		for i := 1; i < len(pr.Frontier); i++ {
			if dse.Resource(pr.Frontier[i].Design) <= dse.Resource(pr.Frontier[i-1].Design) {
				t.Errorf("%s: frontier resources not strictly increasing at %d", k.ID(), i)
			}
			if pr.Frontier[i].Est >= pr.Frontier[i-1].Est {
				t.Errorf("%s: frontier cycles not strictly decreasing at %d", k.ID(), i)
			}
		}
		// Pareto mode still reports the global best.
		if best, ok := ex.BestByModel(); ok && (!pr.BestOK || pr.Best.Design != best.Design) {
			t.Errorf("%s: pareto-mode best %v != exhaustive best %v", k.ID(), pr.Best.Design, best.Design)
		}
	}
}

// TestSearchDeterministicAcrossWorkers asserts the race/determinism
// contract: identical Best, identical Frontier, identical Evaluated and
// Pruned counts and an identical evaluated-design set at any worker
// count. Run under -race in CI (make race).
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	cache := dse.NewPrepCache()
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range searchKernels {
		k := mustKernel(t, id[0], id[1])
		var ref *dse.SearchResult
		for _, w := range counts {
			sr, err := dse.Search(context.Background(), k, dse.SearchOptions{
				Workers: w, Cache: cache, Pareto: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = sr
				continue
			}
			if sr.Best != ref.Best || sr.BestIndex != ref.BestIndex || sr.BestOK != ref.BestOK {
				t.Errorf("%s workers=%d: best %v (idx %d) != reference %v (idx %d)",
					k.ID(), w, sr.Best, sr.BestIndex, ref.Best, ref.BestIndex)
			}
			if sr.Evaluated != ref.Evaluated || sr.Pruned != ref.Pruned {
				t.Errorf("%s workers=%d: evaluated/pruned %d/%d != reference %d/%d",
					k.ID(), w, sr.Evaluated, sr.Pruned, ref.Evaluated, ref.Pruned)
			}
			got, want := sr.EvaluatedDesigns(), ref.EvaluatedDesigns()
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d evaluated designs, reference %d",
					k.ID(), w, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s workers=%d: evaluated[%d] = %v, reference %v",
						k.ID(), w, i, got[i], want[i])
				}
			}
			if len(sr.Frontier) != len(ref.Frontier) {
				t.Fatalf("%s workers=%d: frontier size %d != reference %d",
					k.ID(), w, len(sr.Frontier), len(ref.Frontier))
			}
			for i := range ref.Frontier {
				if sr.Frontier[i] != ref.Frontier[i] {
					t.Errorf("%s workers=%d: frontier[%d] differs", k.ID(), w, i)
				}
			}
		}
	}
}

func TestSearchContextCancel(t *testing.T) {
	k := mustKernel(t, "nn", "nn")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dse.Search(ctx, k, dse.SearchOptions{}); err == nil {
		t.Fatal("Search ignored a cancelled context")
	}
}

func TestSearchEmptySweep(t *testing.T) {
	k := &bench.Kernel{Bench: "synthetic", Name: "empty", MinWG: 512, MaxWG: 256}
	sr, err := dse.Search(context.Background(), k, dse.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.BestOK || sr.Space != 0 || sr.Evaluated != 0 || sr.Pruned != 0 {
		t.Errorf("empty sweep: %+v", sr)
	}
}

func TestParetoFrontierOfEmpty(t *testing.T) {
	if f := dse.ParetoFrontierOf(nil); f != nil {
		t.Errorf("frontier of no points = %v", f)
	}
}

func TestSearchKU060(t *testing.T) {
	// The bound derivation must hold on the robustness platform too.
	k := mustKernel(t, "srad", "srad")
	p := device.KU060()
	cache := dse.NewPrepCache()
	ex, err := dse.Explore(context.Background(), k, dse.Options{
		Platform: p, SkipActual: true, SkipBaseline: true, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := dse.Search(context.Background(), k, dse.SearchOptions{Platform: p, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	want, ok := ex.BestByModel()
	if !ok || !sr.BestOK || sr.Best.Design != want.Design || sr.Best.Est != want.Est {
		t.Errorf("KU060: guided best %v (%v) != exhaustive %v (%v)",
			sr.Best.Design, sr.Best.Est, want.Design, want.Est)
	}
}
