package dse_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/model"
)

func explore(t *testing.T, benchName, kernel string, opts dse.Options) *dse.Result {
	t.Helper()
	k := bench.Find(benchName, kernel)
	if k == nil {
		t.Fatalf("kernel %s/%s missing", benchName, kernel)
	}
	if opts.SimMaxGroups == 0 {
		opts.SimMaxGroups = 4
	}
	r, err := dse.Explore(context.Background(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpaceSize(t *testing.T) {
	k := bench.Find("nn", "nn")
	designs := dse.Space(k, device.Virtex7())
	// Table 2 reports 120–180 designs per kernel.
	if len(designs) < 100 || len(designs) > 200 {
		t.Errorf("design space = %d points, want 100–200", len(designs))
	}
}

func TestExploreModelOnlyIsFast(t *testing.T) {
	r := explore(t, "nn", "nn", dse.Options{SkipActual: true, SkipBaseline: true})
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range r.Points {
		if pt.Est <= 0 {
			t.Fatalf("non-positive estimate for %v", pt.Design)
		}
		if pt.Actual != 0 {
			t.Fatal("SkipActual ignored")
		}
	}
	if r.SimTime != 0 {
		t.Error("sim time recorded despite SkipActual")
	}
}

func TestExploreWithGroundTruth(t *testing.T) {
	r := explore(t, "nn", "nn", dse.Options{})
	fe, se := r.AvgErrors()
	if fe <= 0 || fe > 30 {
		t.Errorf("FlexCL avg error = %.1f%%, want (0, 30]", fe)
	}
	if se <= fe {
		t.Errorf("SDAccel error (%.1f%%) should exceed FlexCL error (%.1f%%)", se, fe)
	}
	if r.BaselineFailures == 0 {
		t.Error("baseline never failed; §4.2 observes ~42% failures")
	}
	if r.BaselineFailures >= len(r.Points) {
		t.Error("baseline always failed")
	}
	if r.ModelTime >= r.SimTime {
		t.Errorf("model (%v) not faster than simulation (%v)", r.ModelTime, r.SimTime)
	}
}

func TestSelectionNearOptimal(t *testing.T) {
	r := explore(t, "kmeans", "swap", dse.Options{SkipBaseline: true})
	gap, ok := r.GapToOptimum()
	if !ok {
		t.Fatal("GapToOptimum not measurable on a fully simulated exploration")
	}
	if gap > 25 {
		t.Errorf("model-selected design %.1f%% from optimum", gap)
	}
	sp, ok := r.SpeedupOverBaseline()
	if !ok {
		t.Fatal("SpeedupOverBaseline not measurable on a fully simulated exploration")
	}
	if sp < 1 {
		t.Errorf("selected design slower than unoptimized baseline (%.2fx)", sp)
	}
}

func TestHeuristicSearchFindsSomething(t *testing.T) {
	k := bench.Find("gemm", "gemm")
	analyses := map[int64]*model.Analysis{}
	p := device.Virtex7()
	for _, wg := range k.WGSizes() {
		f, err := k.Compile(wg)
		if err != nil {
			t.Fatal(err)
		}
		an, err := model.Analyze(context.Background(), f, p, k.Config(wg), model.AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		analyses[wg] = an
	}
	d, evals, ok := dse.HeuristicSearch(k, analyses)
	if !ok || evals == 0 {
		t.Fatalf("no evaluations (ok=%v)", ok)
	}
	// Exhaustive search evaluates the full space; the heuristic must be
	// far cheaper.
	if evals >= len(dse.Space(k, p)) {
		t.Errorf("heuristic used %d evals, not fewer than exhaustive %d",
			evals, len(dse.Space(k, p)))
	}
	if d.WGSize == 0 || d.PE == 0 || d.CU == 0 {
		t.Errorf("degenerate design chosen: %v", d)
	}
}

func TestBaselineDesign(t *testing.T) {
	k := bench.Find("nn", "nn")
	d, ok := dse.BaselineDesign(k)
	if !ok {
		t.Fatal("BaselineDesign not ok for a kernel with a WG sweep")
	}
	if d.WIPipeline || d.PE != 1 || d.CU != 1 || d.Mode != model.ModeBarrier {
		t.Errorf("baseline design not unoptimized: %v", d)
	}
}

func TestBaselineDesignEmptySweep(t *testing.T) {
	// MinWG above MaxWG leaves the power-of-two sweep empty; the old
	// implementation panicked on WGSizes()[0].
	k := &bench.Kernel{Bench: "synthetic", Name: "empty", MinWG: 512, MaxWG: 256}
	if len(k.WGSizes()) != 0 {
		t.Fatalf("fixture sweep not empty: %v", k.WGSizes())
	}
	if d, ok := dse.BaselineDesign(k); ok {
		t.Errorf("BaselineDesign ok on an empty sweep: %v", d)
	}
	if d, evals, ok := dse.HeuristicSearch(k, nil); ok || evals != 0 || d != (model.Design{}) {
		t.Errorf("HeuristicSearch on an empty sweep = %v, %d evals, ok=%v", d, evals, ok)
	}
}

func TestSortedByActual(t *testing.T) {
	r := explore(t, "nn", "nn", dse.Options{SkipBaseline: true})
	pts := r.SortedByActual()
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Actual > 0 && pts[i].Actual > 0 && pts[i-1].Actual > pts[i].Actual {
			t.Fatal("not sorted by actual cycles")
		}
	}
	best, ok := r.BestActual()
	if !ok {
		t.Fatal("no measured points")
	}
	if pts[0].Design != best.Design {
		t.Error("first sorted point is not the actual best")
	}
}

func TestNearOptimalPredicate(t *testing.T) {
	r := explore(t, "nn", "nn", dse.Options{SkipBaseline: true})
	best, ok := r.BestActual()
	if !ok {
		t.Fatal("no measured points")
	}
	if !r.NearOptimal(best.Design, 0.1) {
		t.Error("the optimum itself is not near-optimal")
	}
	worst := r.SortedByActual()[len(r.Points)-1]
	if worst.Actual > best.Actual*2 && r.NearOptimal(worst.Design, 1.0) {
		t.Error("a 2x-slower design classified as near-optimal")
	}
}

func TestPruneInfeasible(t *testing.T) {
	// On a part with almost no DSPs, high-PE designs of a multiply-heavy
	// kernel cannot be placed and must be pruned.
	tiny := device.Virtex7()
	tiny.DSPTotal = 64
	k := bench.Find("kmeans", "center")
	full, err := dse.Explore(context.Background(), k, dse.Options{
		Platform: tiny, SkipActual: true, SkipBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := dse.Explore(context.Background(), k, dse.Options{
		Platform: tiny, SkipActual: true, SkipBaseline: true,
		PruneInfeasible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Points) >= len(full.Points) {
		t.Errorf("pruning removed nothing: %d vs %d points",
			len(pruned.Points), len(full.Points))
	}
	if len(pruned.Points) == 0 {
		t.Error("pruning removed everything")
	}
}
