package dse

// White-box regression tests for the PrepCache rework: error entries
// must never be negative-cached, completed entries are bounded by an
// LRU that never touches in-flight fills, and the artifact-store tier
// answers misses from disk with byte-identical analyses. These tests
// sit inside the package to reach testFillHook, the injection point
// for transient failures and blocked fills.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

func cacheKernel(t *testing.T) *bench.Kernel {
	t.Helper()
	k := bench.Find("nn", "nn")
	if k == nil {
		t.Fatal("kernel nn/nn missing")
	}
	return k
}

// TestPrepCacheErrorNotCached is the regression for the negative-cache
// bug: a transient fill failure used to sit in the map forever, so
// every later request for the key replayed the stale error. Now the
// failed entry is evicted as its waiters are released and the next
// request recomputes — fail once, succeed on retry.
func TestPrepCacheErrorNotCached(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	c := NewPrepCache()
	calls := 0
	c.testFillHook = func(*bench.Kernel, int64) error {
		calls++
		if calls == 1 {
			return errors.New("transient: interpreter OOM")
		}
		return nil
	}

	if _, err := c.Analysis(k, p, wg); err == nil {
		t.Fatal("first fill succeeded despite the injected failure")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entry still resident: Len = %d, want 0", n)
	}
	an, err := c.Analysis(k, p, wg)
	if err != nil {
		t.Fatalf("retry after transient failure: %v (the old cache returned the stale error here)", err)
	}
	if an == nil {
		t.Fatal("retry returned a nil analysis")
	}
	if st := c.Stats(); st.Computes != 2 {
		t.Errorf("Computes = %d, want 2 (failed fill + successful retry)", st.Computes)
	}
	// Third lookup is a plain hit: no recompute.
	if _, err := c.Analysis(k, p, wg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Computes != 2 {
		t.Errorf("Computes grew to %d on a cached hit", st.Computes)
	}
}

// TestPrepCacheErrorReachesCoalescedWaiters: everyone who joined the
// failing fill gets the error (they asked while it was the truth), and
// a request arriving after the waiters drain recomputes successfully.
func TestPrepCacheErrorReachesCoalescedWaiters(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]

	c := NewPrepCache()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	failFirst := true
	c.testFillHook = func(*bench.Kernel, int64) error {
		if failFirst {
			failFirst = false
			once.Do(func() { close(entered) })
			<-release
			return errors.New("transient")
		}
		return nil
	}

	const waiters = 4
	errs := make(chan error, waiters)
	go func() {
		_, _, err := c.AnalysisContext(context.Background(), k, p, wg)
		errs <- err
	}()
	<-entered
	for i := 1; i < waiters; i++ {
		go func() {
			_, _, err := c.AnalysisContext(context.Background(), k, p, wg)
			errs <- err
		}()
	}
	// Let the extra waiters coalesce onto the blocked fill, then fail it.
	for c.Stats().Coalesced < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < waiters; i++ {
		if err := <-errs; err == nil {
			t.Fatal("a coalesced waiter got a result from the failed fill")
		}
	}
	if _, err := c.Analysis(k, p, wg); err != nil {
		t.Fatalf("fresh request after the failure: %v", err)
	}
	if st := c.Stats(); st.Computes != 2 {
		t.Errorf("Computes = %d, want 2", st.Computes)
	}
}

// TestPrepCacheCapacityEviction is the regression for the unbounded-
// growth bug: completed entries beyond Capacity are evicted in LRU
// order, counted in Stats().Evictions, and come back via recompute.
func TestPrepCacheCapacityEviction(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wgs := k.WGSizes()
	if len(wgs) < 3 {
		t.Fatalf("kernel %s has %d WG sizes, need 3", k.ID(), len(wgs))
	}
	c := NewPrepCacheOpts(PrepCacheOptions{Capacity: 2})
	if c.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", c.Cap())
	}
	for _, wg := range wgs[:3] {
		if _, err := c.Analysis(k, p, wg); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Errorf("Len = %d after filling 3 keys at capacity 2", n)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Computes != 3 {
		t.Errorf("Computes = %d, want 3", st.Computes)
	}
	// wgs[0] was least recently used — evicted; re-requesting it
	// recomputes (and evicts wgs[1] in turn).
	if _, err := c.Analysis(k, p, wgs[0]); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Computes != 4 {
		t.Errorf("Computes = %d after re-requesting the evicted key, want 4", st.Computes)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
	// wgs[2] stayed resident through both evictions: plain hit.
	if _, err := c.Analysis(k, p, wgs[2]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Computes; got != 4 {
		t.Errorf("Computes = %d, the MRU entry was evicted", got)
	}
}

// TestPrepCacheDefaultCapacityFitsCorpus: the default bound must be an
// order of magnitude above the corpus sweep, so no bundled workload
// ever sees an eviction (the bound exists for unbounded inline
// kernels, not for the corpus).
func TestPrepCacheDefaultCapacityFitsCorpus(t *testing.T) {
	total := 0
	for _, k := range bench.All() {
		total += len(k.WGSizes())
	}
	if total*4 > DefaultPrepCapacity {
		t.Fatalf("corpus needs %d entries; DefaultPrepCapacity %d leaves < 4x headroom",
			total, DefaultPrepCapacity)
	}
	if NewPrepCache().Cap() != DefaultPrepCapacity {
		t.Error("NewPrepCache not bounded by DefaultPrepCapacity")
	}
	if NewPrepCacheOpts(PrepCacheOptions{Capacity: -1}).Cap() >= 0 {
		t.Error("negative Capacity did not disable the bound")
	}
}

// TestPrepCacheInFlightNeverEvicted: an entry whose fill is still
// running is invisible to the LRU — evicting it would detach its
// coalesced waiters from the singleflight. Only completed entries
// compete for capacity.
func TestPrepCacheInFlightNeverEvicted(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wgs := k.WGSizes()
	if len(wgs) < 2 {
		t.Fatalf("kernel %s has %d WG sizes, need 2", k.ID(), len(wgs))
	}
	c := NewPrepCacheOpts(PrepCacheOptions{Capacity: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	c.testFillHook = func(_ *bench.Kernel, wg int64) error {
		if wg == wgs[0] {
			close(entered)
			<-release
		}
		return nil
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Analysis(k, p, wgs[0])
		done <- err
	}()
	<-entered

	// A second key completes while the first is mid-fill. Capacity is
	// 1 and both entries are resident: the in-flight one must survive.
	if _, err := c.Analysis(k, p, wgs[1]); err != nil {
		t.Fatal(err)
	}
	if n := c.Len(); n != 2 {
		t.Errorf("Len = %d with one fill in flight, want 2", n)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Errorf("Evictions = %d while the only other entry was in flight", ev)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Completion links wgs[0] into the LRU, which now evicts wgs[1].
	if n := c.Len(); n != 1 {
		t.Errorf("Len = %d after the in-flight fill completed, want 1", n)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("Evictions = %d, want 1", ev)
	}
	// The just-completed entry is the survivor: a repeat is a free hit.
	pre := c.Stats().Computes
	if _, err := c.Analysis(k, p, wgs[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Computes; got != pre {
		t.Errorf("Computes %d -> %d: the freshly completed entry was evicted", pre, got)
	}
}

// TestPrepCacheDiskTier: a cache backed by an artifact store persists
// its fills; a second cache on the same directory answers every key
// from disk — zero compile+analyze computes — with analyses whose
// predictions are deeply equal to the fresh ones.
func TestPrepCacheDiskTier(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	dir := t.TempDir()

	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewPrepCacheOpts(PrepCacheOptions{Store: store1})
	fresh := map[int64]*model.Analysis{}
	for _, wg := range k.WGSizes() {
		an, err := cold.Analysis(k, p, wg)
		if err != nil {
			t.Fatal(err)
		}
		fresh[wg] = an
	}
	cold.Flush()
	if st := cold.Stats(); st.Computes != uint64(len(k.WGSizes())) || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if store1.Len() != len(k.WGSizes()) {
		t.Fatalf("store holds %d records, want %d", store1.Len(), len(k.WGSizes()))
	}

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewPrepCacheOpts(PrepCacheOptions{Store: store2})
	for _, wg := range k.WGSizes() {
		an, err := warm.Analysis(k, p, wg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range model.DefaultSpace(wg, 4, 2) {
			if d.WGSize != wg {
				continue
			}
			if !reflect.DeepEqual(fresh[wg].Predict(d), an.Predict(d)) {
				t.Fatalf("wg=%d design %v: disk-restored prediction differs from fresh", wg, d)
			}
		}
	}
	st := warm.Stats()
	if st.Computes != 0 {
		t.Errorf("warm restart ran %d computes, want 0", st.Computes)
	}
	if st.DiskHits != uint64(len(k.WGSizes())) {
		t.Errorf("DiskHits = %d, want %d", st.DiskHits, len(k.WGSizes()))
	}
}

// TestPrepCacheDiskTierCorruptRecovers: a mangled artifact file must
// fall through to a full compute, and the recompute repairs the file
// on disk for the next process.
func TestPrepCacheDiskTierCorruptRecovers(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	wg := k.WGSizes()[0]
	dir := t.TempDir()

	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := NewPrepCacheOpts(PrepCacheOptions{Store: store})
	if _, err := seed.Analysis(k, p, wg); err != nil {
		t.Fatal(err)
	}
	seed.Flush()
	key := artifact.Key{Kernel: k.CacheKey(), Platform: p.Name, WG: wg}
	if err := corruptFile(store.Path(key)); err != nil {
		t.Fatal(err)
	}

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPrepCacheOpts(PrepCacheOptions{Store: store2})
	if _, err := c.Analysis(k, p, wg); err != nil {
		t.Fatalf("corrupt artifact must degrade to recompute, got %v", err)
	}
	c.Flush()
	st := c.Stats()
	if st.Computes != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 compute and 0 disk hits", st)
	}
	if _, ok := store2.Load(key); !ok {
		t.Error("recompute did not rewrite the corrupt record")
	}
}

// corruptFile truncates the file at path to its first 17 bytes — the
// shape a crashed writer without the temp-file discipline leaves.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 17 {
		return fmt.Errorf("file %s too short to truncate", path)
	}
	return os.WriteFile(path, data[:17], 0o644)
}

// TestPrepCacheConcurrentDiskAndMemory: hammer one disk-backed cache
// from many goroutines across keys — the singleflight, LRU and
// persistence must be race-detector clean and every caller must get a
// usable analysis.
func TestPrepCacheConcurrentDiskAndMemory(t *testing.T) {
	k := cacheKernel(t)
	p := device.Virtex7()
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewPrepCacheOpts(PrepCacheOptions{Store: store})
	wgs := k.WGSizes()
	var g sync.WaitGroup
	for i := 0; i < 16; i++ {
		g.Add(1)
		go func(i int) {
			defer g.Done()
			for j := 0; j < 4; j++ {
				wg := wgs[(i+j)%len(wgs)]
				an, _, err := c.AnalysisContext(context.Background(), k, p, wg)
				if err != nil {
					t.Errorf("wg=%d: %v", wg, err)
					return
				}
				if an == nil {
					t.Errorf("wg=%d: nil analysis", wg)
					return
				}
			}
		}(i)
	}
	g.Wait()
	c.Flush()
	if st := c.Stats(); st.Computes != uint64(len(wgs)) {
		t.Errorf("Computes = %d, want %d (one per key despite 64 lookups)", st.Computes, len(wgs))
	}
	if store.Len() != len(wgs) {
		t.Errorf("store holds %d records, want %d", store.Len(), len(wgs))
	}
}
