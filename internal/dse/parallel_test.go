package dse_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/dse"
)

// TestExploreDeterministic is the contract that makes the parallel
// engine safe to adopt: Workers: 1 and Workers: 8 must produce
// byte-identical Points slices (same order, same Est/Baseline/Actual)
// on real Rodinia kernels, with full baseline + ground-truth evaluation.
func TestExploreDeterministic(t *testing.T) {
	for _, id := range [][2]string{{"nn", "nn"}, {"kmeans", "swap"}} {
		k := bench.Find(id[0], id[1])
		if k == nil {
			t.Fatalf("kernel %s/%s missing", id[0], id[1])
		}
		serial, err := dse.Explore(context.Background(), k, dse.Options{SimMaxGroups: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := dse.Explore(context.Background(), k, dse.Options{SimMaxGroups: 2, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Points) == 0 {
			t.Fatalf("%s: no points", k.ID())
		}
		if !reflect.DeepEqual(serial.Points, parallel.Points) {
			for i := range serial.Points {
				if serial.Points[i] != parallel.Points[i] {
					t.Fatalf("%s: point %d diverges: serial %+v parallel %+v",
						k.ID(), i, serial.Points[i], parallel.Points[i])
				}
			}
			t.Fatalf("%s: Points slices differ", k.ID())
		}
		if serial.BaselineFailures != parallel.BaselineFailures {
			t.Errorf("%s: baseline failures %d (serial) vs %d (parallel)",
				k.ID(), serial.BaselineFailures, parallel.BaselineFailures)
		}
	}
}

// TestExplorePruneAllIsSafe: when pruning drops every design (a part
// with no DSPs for a multiply-heavy kernel), Explore must return an
// empty result and the Best* accessors must report !ok instead of
// panicking.
func TestExplorePruneAllIsSafe(t *testing.T) {
	dspless := device.Virtex7()
	dspless.DSPTotal = 0
	k := bench.Find("kmeans", "center")
	r, err := dse.Explore(context.Background(), k, dse.Options{
		Platform: dspless, SkipActual: true, SkipBaseline: true,
		PruneInfeasible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 0 {
		t.Fatalf("expected all %d points pruned on a DSP-less part", len(r.Points))
	}
	if _, ok := r.BestByModel(); ok {
		t.Error("BestByModel ok on empty result")
	}
	if _, ok := r.BestActual(); ok {
		t.Error("BestActual ok on empty result")
	}
	if gap, ok := r.GapToOptimum(); ok {
		t.Errorf("GapToOptimum measurable on empty result (= %v)", gap)
	}
	if sp, ok := r.SpeedupOverBaseline(); ok {
		t.Errorf("SpeedupOverBaseline measurable on empty result (= %v)", sp)
	}
	bd, ok := dse.BaselineDesign(k)
	if !ok {
		t.Fatal("BaselineDesign not ok")
	}
	if r.NearOptimal(bd, 100) {
		t.Error("NearOptimal true on empty result")
	}
}

// TestBestActualModelOnly: a model-only exploration has points but no
// measurements; BestActual must report !ok, BestByModel must still work.
func TestBestActualModelOnly(t *testing.T) {
	r := explore(t, "nn", "nn", dse.Options{SkipActual: true, SkipBaseline: true})
	if _, ok := r.BestActual(); ok {
		t.Error("BestActual ok without measured points")
	}
	best, ok := r.BestByModel()
	if !ok || best.Est <= 0 {
		t.Errorf("BestByModel = %+v, %v on a populated result", best, ok)
	}
}

// TestExploreCancel: a pre-cancelled context must abort the exploration
// with the context error and without leaking goroutines (the worker
// pool joins before ExploreContext returns).
func TestExploreCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := bench.Find("nn", "nn")
	_, err := dse.Explore(ctx, k, dse.Options{SimMaxGroups: 2, Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPrepCacheSharing: a cache shared between two explorations prepares
// each (kernel, platform, WG size) exactly once, and the second run's
// output is identical to the first.
func TestPrepCacheSharing(t *testing.T) {
	k := bench.Find("nn", "nn")
	cache := dse.NewPrepCache()
	opts := dse.Options{SkipActual: true, SkipBaseline: true, Cache: cache, Workers: 4}
	r1, err := dse.Explore(context.Background(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	entries := cache.Len()
	if want := len(k.WGSizes()); entries != want {
		t.Errorf("cache holds %d entries after explore, want %d (one per WG size)", entries, want)
	}
	r2, err := dse.Explore(context.Background(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != entries {
		t.Errorf("second explore grew the cache: %d -> %d", entries, cache.Len())
	}
	if !reflect.DeepEqual(r1.Points, r2.Points) {
		t.Error("cached re-exploration changed the Points")
	}
	an, err := cache.Analyses(k, device.Virtex7())
	if err != nil {
		t.Fatal(err)
	}
	if len(an) != len(k.WGSizes()) {
		t.Errorf("Analyses returned %d entries, want %d", len(an), len(k.WGSizes()))
	}
	if cache.Len() != entries {
		t.Errorf("Analyses recompiled cached entries: %d -> %d", entries, cache.Len())
	}
}
