package dse

import (
	"testing"

	"repro/internal/model"
)

// Best* selectors must behave on degenerate results: empty spaces
// (everything pruned) and single-point spaces.

func TestBestByModelEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		points []Point
		wantOK bool
		want   float64 // Est of expected best when ok
	}{
		{name: "empty", points: nil, wantOK: false},
		{
			name:   "single point",
			points: []Point{{Design: model.Design{WGSize: 16, PE: 1, CU: 1}, Est: 42}},
			wantOK: true, want: 42,
		},
		{
			name: "ties keep first",
			points: []Point{
				{Design: model.Design{WGSize: 16, PE: 1, CU: 1}, Est: 7},
				{Design: model.Design{WGSize: 32, PE: 1, CU: 1}, Est: 7},
			},
			wantOK: true, want: 7,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := &Result{Points: tc.points}
			best, ok := r.BestByModel()
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok && best.Est != tc.want {
				t.Errorf("best.Est = %v, want %v", best.Est, tc.want)
			}
			if ok && len(tc.points) > 1 && best.Design != tc.points[0].Design {
				t.Errorf("tie not broken toward first point: %v", best.Design)
			}
		})
	}
}

func TestBestActualEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		points []Point
		wantOK bool
		want   float64
	}{
		{name: "empty", points: nil, wantOK: false},
		{
			name:   "single unmeasured point",
			points: []Point{{Est: 10}}, // Actual == 0: model-only exploration
			wantOK: false,
		},
		{
			name:   "single measured point",
			points: []Point{{Est: 10, Actual: 100}},
			wantOK: true, want: 100,
		},
		{
			name: "unmeasured points skipped",
			points: []Point{
				{Est: 1, Actual: 0},
				{Est: 2, Actual: 50},
				{Est: 3, Actual: 40},
			},
			wantOK: true, want: 40,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := &Result{Points: tc.points}
			best, ok := r.BestActual()
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok && best.Actual != tc.want {
				t.Errorf("best.Actual = %v, want %v", best.Actual, tc.want)
			}
		})
	}
}

// Derived metrics must not divide by zero or invent numbers on
// degenerate results.
func TestDerivedMetricsOnEmptyResult(t *testing.T) {
	r := &Result{}
	if gap, ok := r.GapToOptimum(); ok || gap != 0 {
		t.Errorf("GapToOptimum on empty = %v, %v; want 0, false", gap, ok)
	}
	if sp, ok := r.SpeedupOverBaseline(); ok || sp != 0 {
		t.Errorf("SpeedupOverBaseline on empty = %v, %v; want 0, false", sp, ok)
	}
	fe, se := r.AvgErrors()
	if fe != 0 || se != 0 {
		t.Errorf("AvgErrors on empty = %v, %v", fe, se)
	}
	if pts := r.SortedByActual(); len(pts) != 0 {
		t.Errorf("SortedByActual on empty returned %d points", len(pts))
	}
}
