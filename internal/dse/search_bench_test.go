package dse_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/dse"
)

// BenchmarkSearchVsExplore compares guided branch-and-bound search with
// model-only exhaustive exploration on a shared pre-warmed prep cache,
// so the delta is pure evaluation work (the quantity `make bench-dse`
// reports per kernel into BENCH_dse.json via cmd/flexcl-dse).
func BenchmarkSearchVsExplore(b *testing.B) {
	kernels := []*bench.Kernel{
		bench.Find("nn", "nn"),
		bench.Find("hotspot", "hotspot"),
		bench.Find("gemm", "gemm"),
	}
	cache := dse.NewPrepCache()
	ctx := context.Background()
	for _, k := range kernels {
		if k == nil {
			b.Fatal("benchmark kernel missing")
		}
		// Warm compile+analyze once; both arms then pay only prediction.
		if _, err := dse.Search(ctx, k, dse.SearchOptions{Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.Run("explore/"+k.ID(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := dse.Explore(ctx, k, dse.Options{
					SkipActual: true, SkipBaseline: true, Cache: cache,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(r.Points)), "evals")
			}
		})
		b.Run("search/"+k.ID(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := dse.Search(ctx, k, dse.SearchOptions{Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Evaluated), "evals")
				b.ReportMetric(float64(r.Pruned), "pruned")
			}
		})
	}
}
