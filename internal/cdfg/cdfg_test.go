package cdfg_test

import (
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/device"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/sched"
)

func compileKernel(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := m.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func cfg() *sched.Config {
	p := device.Virtex7()
	return &sched.Config{
		Table: device.Profile(p, 64),
		Res: sched.Resources{
			LocalRead:  p.LocalReadPorts(),
			LocalWrite: p.LocalWritePorts(),
			Global:     2,
			DSPSlots:   8,
		},
	}
}

func TestDepthGrowsWithLoopTrips(t *testing.T) {
	mk := func(n string) *ir.Func {
		return compileKernel(t, `
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    for (int j = 0; j < `+n+`; j++) { v = v * 1.5f + 1.0f; }
    x[i] = v;
}`, "k")
	}
	c := cfg()
	g8 := cdfg.Build(mk("8"), nil, c)
	g64 := cdfg.Build(mk("64"), nil, c)
	if g64.Depth <= g8.Depth {
		t.Errorf("depth(64 trips)=%d should exceed depth(8 trips)=%d", g64.Depth, g8.Depth)
	}
	// Rough linearity: 64-trip loop should be several times deeper.
	if g64.Depth < 4*g8.Depth/2 {
		t.Errorf("depth scaling too weak: %d vs %d", g64.Depth, g8.Depth)
	}
}

func TestEffectiveFreqNested(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x) {
    float s = 0.0f;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 8; j++) { s += x[i*8+j]; }
    }
    x[0] = s;
}`, "k")
	k.AnalyzeLoops()
	freq := cdfg.EffectiveFreq(k, 16)
	// Inner body runs 4*8 = 32 times per work-item.
	var innerBody float64
	for b, f := range freq {
		if strings.Contains(b.BName, "for.body") && f > innerBody {
			innerBody = f
		}
	}
	if innerBody != 32 {
		t.Errorf("inner body freq = %v, want 32", innerBody)
	}
}

func TestUnrollReducesDepth(t *testing.T) {
	mk := func(pragma string) *ir.Func {
		return compileKernel(t, `
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    `+pragma+`
    for (int j = 0; j < 64; j++) { v = v * 1.5f; }
    x[i] = v;
}`, "k")
	}
	c := cfg()
	plain := cdfg.Build(mk(""), nil, c)
	unrolled := cdfg.Build(mk("#pragma unroll 8"), nil, c)
	if unrolled.Depth >= plain.Depth {
		t.Errorf("unrolled depth %d should be < plain depth %d", unrolled.Depth, plain.Depth)
	}
}

func TestLoopNodesCollapsed(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x, int n) {
    int i = get_global_id(0);
    float v = 0.0f;
    for (int j = 0; j < n; j++) { v += x[j]; }
    x[i] = v;
}`, "k")
	g := cdfg.Build(k, nil, cfg())
	var loopNodes int
	for _, n := range g.Nodes {
		if n.Loop != nil {
			loopNodes++
		}
	}
	if loopNodes != 1 {
		t.Errorf("loop nodes = %d, want 1", loopNodes)
	}
	// Merged graph must be smaller than the raw block list.
	if len(g.Nodes) >= len(k.Blocks) {
		t.Errorf("merged nodes %d should be < blocks %d", len(g.Nodes), len(k.Blocks))
	}
}

func TestBranchTakesHeavierPath(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x, int n) {
    int i = get_global_id(0);
    float v = x[i];
    if (n > 0) {
        v = sqrt(v) + sqrt(v + 1.0f) + sqrt(v + 2.0f);
    } else {
        v = v + 1.0f;
    }
    x[i] = v;
}`, "k")
	g := cdfg.Build(k, nil, cfg())
	// Depth must cover the expensive branch (3 sqrt ≈ 84+ cycles).
	if g.Depth < 60 {
		t.Errorf("depth %d too small to cover heavy branch", g.Depth)
	}
}

func TestBlockOffsetsMonotone(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    float a = x[i] * 2.0f;
    if (a > 0.0f) { a = a + 1.0f; }
    x[i] = a;
}`, "k")
	g := cdfg.Build(k, nil, cfg())
	k.BuildCFG()
	idom := k.Dominators()
	for _, b := range k.Blocks {
		for _, s := range b.Succs {
			if ir.Dominates(idom, s, b) {
				continue // back edge
			}
			if g.BlockOffsets[s] < g.BlockOffsets[b] {
				t.Errorf("offset(%s)=%d < offset(%s)=%d on forward edge",
					s.Label(), g.BlockOffsets[s], b.Label(), g.BlockOffsets[b])
			}
		}
	}
}

func TestGraphString(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x) {
    for (int j = 0; j < 8; j++) { x[j] = x[j] + 1.0f; }
}`, "k")
	g := cdfg.Build(k, nil, cfg())
	s := g.String()
	if !strings.Contains(s, "depth=") || !strings.Contains(s, "loop@") {
		t.Errorf("unexpected dump:\n%s", s)
	}
}
