package cdfg_test

import (
	"testing"

	"repro/internal/cdfg"
)

func TestApplyUnrollRescalesProfiledFreq(t *testing.T) {
	k := compileKernel(t, `
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    #pragma unroll 4
    for (int j = 0; j < 32; j++) { v = v * 1.01f; }
    x[i] = v;
}`, "k")
	k.AnalyzeLoops()
	// A profiled frequency of 32 on the loop body must shrink to 8 under
	// the unroll-by-4 hint.
	profiled := map[string]float64{}
	freq := cdfg.EffectiveFreq(k, 16)
	for b := range freq {
		profiled[b.BName] += freq[b]
	}
	var body float64
	for b, f := range freq {
		if b.BName == "for.body" {
			body = f
		}
	}
	if body != 8 {
		t.Errorf("unrolled body freq = %v, want 8 (32/4)", body)
	}
}

func TestFullUnrollCollapsesLoop(t *testing.T) {
	mk := func(pragma string) float64 {
		k := compileKernel(t, `
__kernel void k(__global float* x) {
    int i = get_global_id(0);
    float v = x[i];
    `+pragma+`
    for (int j = 0; j < 16; j++) { v = v + 1.0f; }
    x[i] = v;
}`, "k")
		g := cdfg.Build(k, nil, cfg())
		return float64(g.Depth)
	}
	plain := mk("")
	full := mk("#pragma unroll")
	if full >= plain {
		t.Errorf("full unroll depth %v should be < rolled %v", full, plain)
	}
	// Full unroll executes the body once (spatially replicated).
	if full > plain/4 {
		t.Errorf("full unroll depth %v not collapsed enough vs %v", full, plain)
	}
}
