// Package cdfg builds the control-data-flow graph of FlexCL's kernel
// analysis (§3.2): basic blocks are scheduled individually (package
// sched), simple chains are merged, loops are collapsed into weighted
// region nodes, and the frequency-weighted critical path through the
// resulting DAG gives the pipeline depth D_comp^PE used by Eq. 1.
package cdfg

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ir"
	"repro/internal/sched"
)

// Node is one CDFG node: a merged straight-line region or a collapsed
// loop.
type Node struct {
	ID      int
	Blocks  []*ir.Block
	Loop    *ir.Loop // non-nil when the node is a collapsed loop
	Latency float64  // frequency-weighted latency contribution
	Succs   []*Node
	Preds   []*Node
}

// Label returns a printable node name.
func (n *Node) Label() string {
	if n.Loop != nil {
		return "loop@" + n.Loop.Header.Label()
	}
	if len(n.Blocks) > 0 {
		return n.Blocks[0].Label()
	}
	return fmt.Sprintf("n%d", n.ID)
}

// Graph is the analyzed CDFG of one kernel.
type Graph struct {
	Func  *ir.Func
	Nodes []*Node

	// BlockLatency is each block's list-scheduled length in cycles.
	BlockLatency map[*ir.Block]int
	// BlockOffsets is each block's start cycle along the critical-path
	// schedule (input to SMS).
	BlockOffsets map[*ir.Block]int
	// Depth is D_comp^PE: the frequency-weighted critical path in cycles.
	Depth int
	// Freq is the per-work-item execution frequency used (copied or
	// derived from trip hints).
	Freq map[*ir.Block]float64
}

// EffectiveFreq builds per-block execution frequencies from static trip
// hints when no profile is available: every loop multiplies its body by
// its trip count (unknown trips default to defaultTrip). Unroll hints
// divide the effective trip count (the body is replicated spatially).
func EffectiveFreq(f *ir.Func, defaultTrip int64) map[*ir.Block]float64 {
	if defaultTrip <= 0 {
		defaultTrip = 16
	}
	freq := make(map[*ir.Block]float64, len(f.Blocks))
	for _, b := range f.Blocks {
		w := 1.0
		for _, l := range f.Loops {
			if !l.Blocks[b] {
				continue
			}
			trip := l.StaticTrip
			if trip < 0 {
				trip = defaultTrip
			}
			eff := float64(trip)
			switch {
			case l.Unroll < 0:
				eff = 1 // full unroll
			case l.Unroll > 1:
				eff = math.Ceil(eff / float64(l.Unroll))
			}
			if eff < 1 {
				eff = 1
			}
			// The header executes once more than the body.
			if b == l.Header {
				eff++
			}
			w *= eff
		}
		freq[b] = w
	}
	return freq
}

// ApplyUnroll rescales profiled frequencies by unroll hints: a loop body
// unrolled by u executes u iterations per hardware cycle of the replica.
func ApplyUnroll(f *ir.Func, freq map[*ir.Block]float64) map[*ir.Block]float64 {
	out := make(map[*ir.Block]float64, len(freq))
	for b, w := range freq {
		out[b] = w
	}
	for _, l := range f.Loops {
		u := float64(l.Unroll)
		if l.Unroll == 0 {
			continue
		}
		for b := range l.Blocks {
			if l.Unroll < 0 {
				out[b] = 1
			} else if u > 1 {
				out[b] = math.Ceil(out[b] / u)
			}
		}
	}
	return out
}

// Build schedules every block, computes the critical path and assembles
// the merged CDFG. freq maps blocks to executions per work-item; pass nil
// to derive it from static trip hints.
func Build(f *ir.Func, freq map[*ir.Block]float64, cfg *sched.Config) *Graph {
	f.EnsureLoops()
	if freq == nil {
		freq = EffectiveFreq(f, 16)
	} else {
		freq = ApplyUnroll(f, freq)
	}
	g := &Graph{
		Func:         f,
		BlockLatency: make(map[*ir.Block]int, len(f.Blocks)),
		BlockOffsets: make(map[*ir.Block]int, len(f.Blocks)),
		Freq:         freq,
	}
	for _, b := range f.Blocks {
		g.BlockLatency[b] = sched.ScheduleBlock(b, cfg).Length
	}

	// Critical path over the acyclic graph (back edges removed), with
	// node weight = freq × latency. Longest path via topological order.
	order, isBack := acyclicOrder(f)
	start := make(map[*ir.Block]float64, len(order))
	var depth float64
	for _, b := range order {
		w := freq[b] * float64(g.BlockLatency[b])
		end := start[b] + w
		if end > depth {
			depth = end
		}
		for _, s := range b.Succs {
			if isBack[edge{b, s}] {
				continue
			}
			if end > start[s] {
				start[s] = end
			}
		}
	}
	for b, s := range start {
		g.BlockOffsets[b] = int(math.Round(s))
	}
	g.Depth = int(math.Ceil(depth))
	if g.Depth < 1 {
		g.Depth = 1
	}

	g.Nodes = mergeNodes(f, g)
	return g
}

type edge struct{ from, to *ir.Block }

// acyclicOrder returns blocks in a topological order of the CFG with back
// edges removed, and the set of back edges. The CFG is current: Build's
// EnsureLoops rebuilt it, and rebuilding here would race when concurrent
// design-point evaluations share the compiled function.
func acyclicOrder(f *ir.Func) ([]*ir.Block, map[edge]bool) {
	idom := f.Dominators()
	isBack := map[edge]bool{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if ir.Dominates(idom, s, b) {
				isBack[edge{b, s}] = true
			}
		}
	}
	indeg := map[*ir.Block]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !isBack[edge{b, s}] {
				indeg[s]++
			}
		}
	}
	var queue []*ir.Block
	for _, b := range f.Blocks {
		if indeg[b] == 0 {
			queue = append(queue, b)
		}
	}
	var order []*ir.Block
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		order = append(order, b)
		for _, s := range b.Succs {
			if isBack[edge{b, s}] {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return order, isBack
}

// mergeNodes produces the simplified CDFG of Figure 3(c): innermost loops
// collapse to single nodes; single-entry single-exit chains merge.
func mergeNodes(f *ir.Func, g *Graph) []*Node {
	// Assign each block to its outermost loop (collapse whole loop nests).
	owner := map[*ir.Block]*ir.Loop{}
	for _, l := range f.Loops {
		top := l
		for top.Parent != nil {
			top = top.Parent
		}
		for b := range l.Blocks {
			if owner[b] == nil || owner[b] != top {
				owner[b] = top
			}
		}
	}
	nodeOf := map[*ir.Block]*Node{}
	loopNode := map[*ir.Loop]*Node{}
	var nodes []*Node
	newNode := func() *Node {
		n := &Node{ID: len(nodes)}
		nodes = append(nodes, n)
		return n
	}
	for _, b := range f.Blocks {
		if l := owner[b]; l != nil {
			n := loopNode[l]
			if n == nil {
				n = newNode()
				n.Loop = l
				loopNode[l] = n
			}
			n.Blocks = append(n.Blocks, b)
			n.Latency += g.Freq[b] * float64(g.BlockLatency[b])
			nodeOf[b] = n
			continue
		}
		n := newNode()
		n.Blocks = []*ir.Block{b}
		n.Latency = g.Freq[b] * float64(g.BlockLatency[b])
		nodeOf[b] = n
	}
	// Edges between distinct nodes.
	seen := map[[2]*Node]bool{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			a, c := nodeOf[b], nodeOf[s]
			if a == c || seen[[2]*Node{a, c}] {
				continue
			}
			seen[[2]*Node{a, c}] = true
			a.Succs = append(a.Succs, c)
			c.Preds = append(c.Preds, a)
		}
	}
	// Merge single-succ/single-pred chains of non-loop nodes.
	changed := true
	for changed {
		changed = false
		for _, n := range nodes {
			if n.Loop != nil || len(n.Succs) != 1 {
				continue
			}
			m := n.Succs[0]
			if m.Loop != nil || len(m.Preds) != 1 || m == n {
				continue
			}
			// Fold m into n.
			n.Blocks = append(n.Blocks, m.Blocks...)
			n.Latency += m.Latency
			n.Succs = m.Succs
			for _, s := range m.Succs {
				for i, p := range s.Preds {
					if p == m {
						s.Preds[i] = n
					}
				}
			}
			m.Blocks = nil
			m.Preds = nil
			m.Succs = nil
			changed = true
		}
	}
	var out []*Node
	for _, n := range nodes {
		if len(n.Blocks) > 0 {
			n.ID = len(out)
			out = append(out, n)
		}
	}
	return out
}

// String renders the merged CDFG for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cdfg %s depth=%d\n", g.Func.Name, g.Depth)
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  %s lat=%.1f ->", n.Label(), n.Latency)
		for _, s := range n.Succs {
			fmt.Fprintf(&sb, " %s", s.Label())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
