// Package obs is the observability layer of the FlexCL service: a
// small stdlib-only metrics registry (counters, gauges and latency
// histograms) rendered both through expvar and in Prometheus text
// exposition format, plus structured request logging built on log/slog.
//
// The registry is deliberately tiny — no client_golang dependency — but
// keeps the Prometheus data model (metric families with a TYPE, label
// sets per child, cumulative histogram buckets) so a real scraper can
// consume /metrics unchanged.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds, spanning cache-hit predictions (sub-millisecond) to full
// design-space explorations (seconds).
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// QueueBuckets are histogram bounds for admission-queue waits, in
// seconds. Most admissions are immediate (the 100 µs bucket) and the
// interesting signal is sub-second contention, so the resolution is
// concentrated below DefBuckets' first bound.
var QueueBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative, +Inf is implicit).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // sorted upper bounds
	counts  []uint64  // per-bucket (non-cumulative) counts; len = len(bounds)+1
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum and the total.
func (h *Histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.samples
}

// metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

type family struct {
	name  string
	typ   string
	help  string
	order []string // label sets in first-seen order
	items map[string]any
}

// Registry is a named collection of metric families. Get-or-create
// accessors make call sites self-registering:
//
//	reg.Counter("requests_total", `route="/v1/predict",code="200"`).Inc()
type Registry struct {
	namespace string
	mu        sync.Mutex
	order     []string
	fams      map[string]*family
}

// NewRegistry returns an empty registry; namespace (e.g. "flexcl")
// prefixes every exported metric name.
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace, fams: make(map[string]*family)}
}

func (r *Registry) family(name, typ, help string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help, items: make(map[string]any)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (r *Registry) child(name, typ, help, labels string, mk func() any) any {
	f := r.family(name, typ, help)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := f.items[labels]
	if !ok {
		m = mk()
		f.items[labels] = m
		f.order = append(f.order, labels)
	}
	return m
}

// Counter returns the counter child for a label set (`k="v",k2="v2"` or
// "" for no labels), creating it on first use.
func (r *Registry) Counter(name, labels string) *Counter {
	return r.child(name, typeCounter, "", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge child for a label set, creating it on first use.
func (r *Registry) Gauge(name, labels string) *Gauge {
	return r.child(name, typeGauge, "", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram child for a label set, creating it
// with the given bucket bounds (DefBuckets when empty) on first use.
func (r *Registry) Histogram(name, labels string, buckets ...float64) *Histogram {
	return r.child(name, typeHistogram, "", labels, func() any {
		b := buckets
		if len(b) == 0 {
			b = DefBuckets
		}
		bounds := append([]float64(nil), b...)
		sort.Float64s(bounds)
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}).(*Histogram)
}

// Help sets the HELP string of a family (optional; shown in /metrics).
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		f.help = help
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the text exposition format:
// backslash and newline (quotes are legal in help text).
func escapeHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Label renders one `key="value"` label pair with the value escaped, so
// call sites carrying arbitrary strings (kernel ids, error text,
// versions) cannot corrupt the exposition format. Join several with
// Labels.
func Label(key, value string) string {
	return key + `="` + escapeLabelValue(value) + `"`
}

// Labels joins pre-rendered label pairs into one label-set string.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }

func withLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	default:
		return "{" + base + "," + extra + "}"
	}
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.fams[name]
		labelSets := append([]string(nil), f.order...)
		typ, help := f.typ, f.help
		r.mu.Unlock()

		full := r.namespace + "_" + name
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", full, escapeHelp(help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", full, typ)
		for _, labels := range labelSets {
			r.mu.Lock()
			m := f.items[labels]
			r.mu.Unlock()
			switch v := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", full, withLabels(labels, ""), v.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", full, withLabels(labels, ""), fmtFloat(v.Value()))
			case *Histogram:
				cum, sum, total := v.snapshot()
				for i, bound := range v.bounds {
					le := `le="` + fmtFloat(bound) + `"`
					fmt.Fprintf(w, "%s_bucket%s %d\n", full, withLabels(labels, le), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", full, withLabels(labels, `le="+Inf"`), total)
				fmt.Fprintf(w, "%s_sum%s %s\n", full, withLabels(labels, ""), fmtFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", full, withLabels(labels, ""), total)
			}
		}
	}
}

// Expvar returns an expvar.Func exposing a flat snapshot of every
// metric (histograms as {count, sum}).
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		out := make(map[string]any)
		r.mu.Lock()
		names := append([]string(nil), r.order...)
		r.mu.Unlock()
		for _, name := range names {
			r.mu.Lock()
			f := r.fams[name]
			labelSets := append([]string(nil), f.order...)
			r.mu.Unlock()
			for _, labels := range labelSets {
				r.mu.Lock()
				m := f.items[labels]
				r.mu.Unlock()
				key := name + withLabels(labels, "")
				switch v := m.(type) {
				case *Counter:
					out[key] = v.Value()
				case *Gauge:
					out[key] = v.Value()
				case *Histogram:
					out[key] = map[string]any{"count": v.Count(), "sum": v.Sum()}
				}
			}
		}
		return out
	}
}

var publishMu sync.Mutex

// PublishExpvar publishes the registry under the given expvar name,
// skipping silently when the name is already taken (expvar.Publish
// panics on duplicates, which would break multi-server tests).
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.Expvar())
}
