package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry("t")
	c := r.Counter("reqs_total", `route="/x"`)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same child.
	if r.Counter("reqs_total", `route="/x"`) != c {
		t.Fatal("counter not memoized")
	}
	g := r.Gauge("inflight", "")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("lat_seconds", "", 0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.01"} 1`,
		`t_lat_seconds_bucket{le="0.1"} 2`,
		`t_lat_seconds_bucket{le="1"} 3`,
		`t_lat_seconds_bucket{le="+Inf"} 4`,
		"t_lat_seconds_count 4",
		"t_lat_seconds_sum 5.555",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry("flexcl")
	r.Counter("requests_total", `route="/v1/predict",code="200"`).Add(7)
	r.Counter("requests_total", `route="/v1/predict",code="404"`).Add(2)
	r.Help("requests_total", "HTTP requests by route and status.")
	r.Gauge("cache_entries", "").Set(42)
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP flexcl_requests_total HTTP requests by route and status.",
		"# TYPE flexcl_requests_total counter",
		`flexcl_requests_total{route="/v1/predict",code="200"} 7`,
		`flexcl_requests_total{route="/v1/predict",code="404"} 2`,
		"# TYPE flexcl_cache_entries gauge",
		"flexcl_cache_entries 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Rendering is deterministic (registration order).
	var sb2 bytes.Buffer
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Error("non-deterministic rendering")
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry("t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", "").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("reqs_total", `code="200"`).Add(3)
	r.Histogram("lat", "").Observe(0.2)
	raw := r.Expvar().String()
	var m map[string]any
	if err := json.Unmarshal([]byte(raw), &m); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, raw)
	}
	if m[`reqs_total{code="200"}`] != float64(3) {
		t.Fatalf("missing counter in %v", m)
	}
	// Publishing twice under one name must not panic.
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics")
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	h := AccessLog(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if line["code"] != float64(http.StatusTeapot) {
		t.Errorf("code = %v, want 418", line["code"])
	}
	if line["path"] != "/v1/kernels" {
		t.Errorf("path = %v", line["path"])
	}
	if line["bytes"] != float64(len("short and stout")) {
		t.Errorf("bytes = %v", line["bytes"])
	}
}
