package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Version is the release version stamped into the build_info metric.
// Overridable at link time:
//
//	go build -ldflags "-X repro/internal/obs.Version=v1.2.3" ./...
//
// When left as "dev", Global falls back to the VCS revision from the
// embedded build info when one is available.
var Version = "dev"

var (
	globalOnce sync.Once
	globalReg  *Registry
)

// Global returns the process-wide registry for metrics that belong to
// the process rather than to one server instance (e.g. the profiler
// fast-path counters bumped deep inside internal/interp, far from any
// Server). internal/serve renders it on /metrics alongside each
// server's own registry.
func Global() *Registry {
	globalOnce.Do(func() {
		globalReg = NewRegistry("flexcl_global")
		// Help applies to registered families, so register them eagerly:
		// the counters should render as 0 on /metrics before the first
		// profile rather than appear out of nowhere later.
		globalReg.Counter("profile_static_total", "")
		globalReg.Help("profile_static_total",
			"Kernel profiles produced by the static fast path (no work-group execution).")
		globalReg.Counter("profile_interp_total", "")
		globalReg.Help("profile_interp_total",
			"Kernel profiles produced by the interpreter (sequential or parallel work-groups).")
		// build_info is the standard replica-identification gauge:
		// constant 1, identity in the labels, so a scraper can tell
		// replicas (and rollout generations) apart.
		globalReg.Gauge("build_info", Labels(
			Label("version", buildVersion()),
			Label("goversion", runtime.Version()),
		)).Set(1)
		globalReg.Help("build_info",
			"Constant 1; build identity (release version, Go toolchain) in the labels.")
	})
	return globalReg
}

// buildVersion resolves the version label: the linker-stamped Version
// when set, else the module version or VCS revision from the embedded
// build info, else "dev".
func buildVersion() string {
	if Version != "dev" {
		return Version
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return Version
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return Version
}
