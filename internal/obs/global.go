package obs

import "sync"

var (
	globalOnce sync.Once
	globalReg  *Registry
)

// Global returns the process-wide registry for metrics that belong to
// the process rather than to one server instance (e.g. the profiler
// fast-path counters bumped deep inside internal/interp, far from any
// Server). internal/serve renders it on /metrics alongside each
// server's own registry.
func Global() *Registry {
	globalOnce.Do(func() {
		globalReg = NewRegistry("flexcl_global")
		// Help applies to registered families, so register them eagerly:
		// the counters should render as 0 on /metrics before the first
		// profile rather than appear out of nowhere later.
		globalReg.Counter("profile_static_total", "")
		globalReg.Help("profile_static_total",
			"Kernel profiles produced by the static fast path (no work-group execution).")
		globalReg.Counter("profile_interp_total", "")
		globalReg.Help("profile_interp_total",
			"Kernel profiles produced by the interpreter (sequential or parallel work-groups).")
	})
	return globalReg
}
