package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLabelValueEscaping: quotes, backslashes and newlines in label
// values must render escaped per the text exposition format — one
// metric line, no raw quote or newline inside the braces.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry("t")
	hostile := `he said "hi"` + "\n" + `back\slash`
	r.Counter("odd_total", Label("msg", hostile)).Inc()
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	out := sb.String()

	want := `t_odd_total{msg="he said \"hi\"\nback\\slash"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped line missing.\nwant %q\ngot:\n%s", want, out)
	}
	// Every non-comment line must be exactly `name{labels} value` with
	// no embedded raw newline having split a sample.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "t_odd_total") {
			t.Fatalf("stray line %q — a label value leaked a newline", line)
		}
	}
}

// TestLabelHelper: Label escapes, Labels joins.
func TestLabelHelper(t *testing.T) {
	if got, want := Label("k", `a"b`), `k="a\"b"`; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
	if got, want := Labels(Label("a", "1"), Label("b", "2")), `a="1",b="2"`; got != want {
		t.Errorf("Labels = %q, want %q", got, want)
	}
}

// TestHelpEscaping: backslash and newline in HELP text must render
// escaped so the exposition stays line-oriented.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry("t")
	r.Counter("x_total", "")
	r.Help("x_total", "line one\nwith a back\\slash")
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	out := sb.String()
	want := `# HELP t_x_total line one\nwith a back\\slash`
	if !strings.Contains(out, want) {
		t.Fatalf("help not escaped.\nwant %q\ngot:\n%s", want, out)
	}
}

// TestInfBucketCumulativeCount: the +Inf bucket must equal the total
// sample count even when samples land beyond the last finite bound, and
// the cumulative counts must be monotone.
func TestInfBucketCumulativeCount(t *testing.T) {
	r := NewRegistry("t")
	h := r.Histogram("lat", "", 0.1, 1)
	for _, v := range []float64{0.05, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	var sb bytes.Buffer
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_lat_bucket{le="0.1"} 1`,
		`t_lat_bucket{le="1"} 2`,
		`t_lat_bucket{le="+Inf"} 5`,
		`t_lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// A histogram with zero samples still renders a 0 +Inf bucket.
	r2 := NewRegistry("t")
	r2.Histogram("empty", "", 1)
	sb.Reset()
	r2.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `t_empty_bucket{le="+Inf"} 0`) {
		t.Errorf("empty histogram must render +Inf 0:\n%s", sb.String())
	}
}

// TestAccessLogFields: fields attached deep in the handler stack via
// AddField must appear on the access-log line.
func TestAccessLogFields(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	h := AccessLog(log, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		AddField(r.Context(), "request_id", "r-42")
		AddField(r.Context(), "lane", "interactive")
		AddField(r.Context(), "cache", "coalesced")
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("POST", "/v2/predict", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]string{
		"request_id": "r-42", "lane": "interactive", "cache": "coalesced",
	} {
		if line[k] != want {
			t.Errorf("%s = %v, want %q", k, line[k], want)
		}
	}
}

// TestAddFieldWithoutCarrier: AddField outside AccessLog is a no-op.
func TestAddFieldWithoutCarrier(t *testing.T) {
	req := httptest.NewRequest("GET", "/x", nil)
	AddField(req.Context(), "k", "v") // must not panic
}

// flushRecorder counts flushes so the passthrough is observable.
type flushRecorder struct {
	httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestResponseRecorderFlusher: wrapping must not hide the underlying
// Flusher from streaming handlers.
func TestResponseRecorderFlusher(t *testing.T) {
	under := &flushRecorder{ResponseRecorder: *httptest.NewRecorder()}
	rec := NewResponseRecorder(under)
	var w http.ResponseWriter = rec
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("ResponseRecorder must implement http.Flusher")
	}
	f.Flush()
	f.Flush()
	if under.flushes != 2 {
		t.Fatalf("flushes = %d, want 2 (passthrough broken)", under.flushes)
	}
	if rec.Unwrap() != http.ResponseWriter(under) {
		t.Fatal("Unwrap must expose the underlying writer")
	}
	// And a non-Flusher underlying writer must not panic.
	NewResponseRecorder(plainWriter{}).Flush()
}

type plainWriter struct{}

func (plainWriter) Header() http.Header         { return http.Header{} }
func (plainWriter) Write(p []byte) (int, error) { return len(p), nil }
func (plainWriter) WriteHeader(int)             {}

// TestBuildInfoGauge: the global registry must expose the replica
// identity gauge with version and goversion labels, value 1.
func TestBuildInfoGauge(t *testing.T) {
	var sb bytes.Buffer
	Global().WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "flexcl_global_build_info{") {
		t.Fatalf("build_info gauge missing:\n%s", out)
	}
	for _, want := range []string{`version="`, `goversion="go`} {
		if !strings.Contains(out, want) {
			t.Errorf("build_info missing label %q:\n%s", want, out)
		}
	}
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "flexcl_global_build_info{") {
			line = l
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build_info value should be 1: %q", line)
	}
}
