package obs

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// ResponseRecorder wraps a ResponseWriter to capture the status code
// and body size for logging and metrics. It passes http.Flusher through
// to the underlying writer, so streaming handlers keep working behind
// the middleware stack, and exposes Unwrap for http.ResponseController.
type ResponseRecorder struct {
	http.ResponseWriter
	Code  int
	Bytes int64
}

// NewResponseRecorder wraps w; Code defaults to 200 (net/http writes
// 200 implicitly when the handler never calls WriteHeader).
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader records the status code.
func (r *ResponseRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// Write records the body size.
func (r *ResponseRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.Bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer's Flusher when it has one
// (a no-op otherwise), so wrapping a streaming response does not
// silently swallow flushes.
func (r *ResponseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *ResponseRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// fieldsKey carries the per-request *Fields through a context.
type fieldsKey struct{}

// Fields is a per-request bag of extra access-log fields. AccessLog
// installs one into the request context; handlers deeper in the stack
// attach correlation fields (request id, admission lane, cache outcome)
// with AddField, and the final log line carries them. Safe for
// concurrent use: batch handlers add fields from item goroutines.
type Fields struct {
	mu sync.Mutex
	kv []any // alternating key, value — slog's loosely-typed arg shape
}

// WithFields returns a context carrying a fresh Fields bag (and the
// bag). Middleware-only; handlers use AddField.
func WithFields(ctx context.Context) (context.Context, *Fields) {
	f := &Fields{}
	return context.WithValue(ctx, fieldsKey{}, f), f
}

// AddField attaches one key/value to the request's access-log line. A
// no-op when the context carries no Fields bag (e.g. unit tests calling
// handlers directly). Setting the same key again appends — slog renders
// both, last one visually winning — which is fine for the rare
// overwrite (a batch's per-item cache outcomes) and keeps the hot path
// allocation-free beyond the append.
func AddField(ctx context.Context, key string, value any) {
	f, _ := ctx.Value(fieldsKey{}).(*Fields)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.kv = append(f.kv, key, value)
	f.mu.Unlock()
}

// snapshot returns the collected fields.
func (f *Fields) snapshot() []any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]any(nil), f.kv...)
}

// AccessLog wraps a handler with one structured log line per request:
// method, path, status, response bytes, wall time, plus any fields the
// handler stack attached via AddField (request_id, lane, cache, …).
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		rec := NewResponseRecorder(w)
		ctx, fields := WithFields(req.Context())
		next.ServeHTTP(rec, req.WithContext(ctx))
		args := []any{
			"method", req.Method,
			"path", req.URL.Path,
			"code", rec.Code,
			"bytes", rec.Bytes,
			"dur_ms", float64(time.Since(t0).Microseconds()) / 1000,
			"remote", req.RemoteAddr,
		}
		args = append(args, fields.snapshot()...)
		log.Info("http", args...)
	})
}
