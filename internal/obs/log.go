package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// ResponseRecorder wraps a ResponseWriter to capture the status code
// and body size for logging and metrics.
type ResponseRecorder struct {
	http.ResponseWriter
	Code  int
	Bytes int64
}

// NewResponseRecorder wraps w; Code defaults to 200 (net/http writes
// 200 implicitly when the handler never calls WriteHeader).
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader records the status code.
func (r *ResponseRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// Write records the body size.
func (r *ResponseRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.Bytes += int64(n)
	return n, err
}

// AccessLog wraps a handler with one structured log line per request:
// method, path, status, response bytes and wall time.
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		rec := NewResponseRecorder(w)
		next.ServeHTTP(rec, req)
		log.Info("http",
			"method", req.Method,
			"path", req.URL.Path,
			"code", rec.Code,
			"bytes", rec.Bytes,
			"dur_ms", float64(time.Since(t0).Microseconds())/1000,
			"remote", req.RemoteAddr,
		)
	})
}
