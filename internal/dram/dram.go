// Package dram models the off-chip global memory of §3.4: a multi-bank
// DRAM with per-bank row buffers and burst-interleaved data mapping.
// Every access is classified into one of the eight patterns of Table 1
// (read/write × after-read/after-write × row-buffer hit/miss), each with
// its own latency. ProfilePatterns reproduces the paper's micro-benchmark
// profiling of the per-pattern average latencies ΔT.
package dram

import (
	"fmt"

	"repro/internal/device"
)

// Pattern is one of the eight global-memory access patterns of Table 1.
type Pattern int

// The Table 1 patterns. Naming: <op> After <previous-op>, Hit/Miss of the
// bank's row buffer.
const (
	RARHit Pattern = iota
	RAWHit
	WARHit
	WAWHit
	RARMiss
	RAWMiss
	WARMiss
	WAWMiss
	NumPatterns
)

var patternNames = [...]string{
	"RAR/hit", "RAW/hit", "WAR/hit", "WAW/hit",
	"RAR/miss", "RAW/miss", "WAR/miss", "WAW/miss",
}

func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Read reports whether the pattern's current operation is a read.
func (p Pattern) Read() bool {
	switch p {
	case RARHit, RAWHit, RARMiss, RAWMiss:
		return true
	}
	return false
}

// Hit reports whether the pattern hits the row buffer.
func (p Pattern) Hit() bool { return p <= WAWHit }

// classify builds a Pattern from its components.
func classify(write, prevWrite, hit bool) Pattern {
	var p Pattern
	switch {
	case !write && !prevWrite:
		p = RARHit
	case !write && prevWrite:
		p = RAWHit
	case write && !prevWrite:
		p = WARHit
	default:
		p = WAWHit
	}
	if !hit {
		p += 4
	}
	return p
}

// bankState tracks one DRAM bank.
type bankState struct {
	hasOpen   bool
	openRow   int64
	prevWrite bool
	readyAt   int64
}

// Sim is a timing simulator for one DRAM channel. The channel is in
// order: the SDAccel-era AXI memory interface issues one outstanding
// transaction at a time, so bursts serialize through the controller even
// when they target different banks.
type Sim struct {
	P        device.DRAMParams
	banks    []bankState
	chanFree int64
	// Stats per pattern.
	Count [NumPatterns]int64
	Total [NumPatterns]int64
}

// NewSim returns a simulator for the given parameters.
func NewSim(p device.DRAMParams) *Sim {
	if p.Banks <= 0 {
		p.Banks = 8
	}
	if p.BurstBytes <= 0 {
		p.BurstBytes = 64
	}
	if p.RowBytes <= 0 {
		p.RowBytes = 1024
	}
	return &Sim{P: p, banks: make([]bankState, p.Banks)}
}

// Reset clears bank state and statistics.
func (s *Sim) Reset() {
	s.banks = make([]bankState, s.P.Banks)
	s.chanFree = 0
	s.Count = [NumPatterns]int64{}
	s.Total = [NumPatterns]int64{}
}

// BankOf maps a byte address to its bank under burst interleaving.
func (s *Sim) BankOf(addr int64) int {
	return int((addr / int64(s.P.BurstBytes)) % int64(s.P.Banks))
}

// RowOf maps a byte address to the row index within its bank.
func (s *Sim) RowOf(addr int64) int64 {
	local := addr / (int64(s.P.BurstBytes) * int64(s.P.Banks)) * int64(s.P.BurstBytes)
	local += addr % int64(s.P.BurstBytes)
	return local / int64(s.P.RowBytes)
}

// serviceTime returns the command latency for a pattern.
func (s *Sim) serviceTime(p Pattern) int64 {
	t := int64(s.P.TCL + s.P.TBus)
	if !p.Hit() {
		// Precharge (closing the old row) + activate before the column
		// access: three DRAM commands instead of one (§3.4).
		t += int64(s.P.TRP + s.P.TRCD)
	}
	switch p {
	case RAWHit, RAWMiss:
		t += int64(s.P.TurnRW) // bus turnaround write→read
	case WARHit, WARMiss:
		t += int64(s.P.TurnWR) // bus turnaround read→write
	}
	if p == WAWMiss || p == RAWMiss {
		t += int64(s.P.TWR) // write recovery before precharge
	}
	return t
}

// AccessAt performs one burst access at time now and returns the
// completion time and the pattern it was classified as. Bank conflicts
// (an earlier access still in flight on the same bank) delay the access.
func (s *Sim) AccessAt(now int64, addr int64, write bool) (done int64, pat Pattern) {
	b := &s.banks[s.BankOf(addr)]
	row := s.RowOf(addr)
	hit := b.hasOpen && b.openRow == row
	pat = classify(write, b.prevWrite, hit)

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	if s.chanFree > start {
		start = s.chanFree
	}
	lat := s.serviceTime(pat)
	done = start + lat
	s.chanFree = done

	b.hasOpen = true
	b.openRow = row
	b.prevWrite = write
	b.readyAt = done

	s.Count[pat]++
	s.Total[pat] += done - now
	return done, pat
}

// AvgLatency returns the observed mean latency of a pattern, or 0.
func (s *Sim) AvgLatency(p Pattern) float64 {
	if s.Count[p] == 0 {
		return 0
	}
	return float64(s.Total[p]) / float64(s.Count[p])
}

// PatternLatencies are the profiled ΔT values of Table 1 (cycles per
// coalesced access).
type PatternLatencies [NumPatterns]float64

// Get returns ΔT for a pattern.
func (l PatternLatencies) Get(p Pattern) float64 { return l[p] }

// ProfilePatterns reproduces the micro-benchmark profiling of §3.4: it
// drives the DRAM simulator with synthetic streams engineered to exercise
// every pattern and returns the observed average latency of each. The
// result is deterministic for given parameters and seed.
func ProfilePatterns(p device.DRAMParams, accesses int, seed uint64) PatternLatencies {
	if accesses <= 0 {
		accesses = 4096
	}
	s := NewSim(p)
	now := int64(0)
	burst := int64(s.P.BurstBytes)
	nbanks := int64(s.P.Banks)
	rowStride := int64(s.P.RowBytes) * nbanks

	// Phase 1: sequential reads within rows (RAR hits and periodic
	// misses at row boundaries).
	addr := int64(0)
	for i := 0; i < accesses; i++ {
		done, _ := s.AccessAt(now, addr, false)
		now = done
		addr += burst
	}
	// Phase 2: sequential writes (WAW hits + misses).
	addr = 0
	for i := 0; i < accesses; i++ {
		done, _ := s.AccessAt(now, addr, true)
		now = done
		addr += burst
	}
	// Phase 3: alternating read/write on the same rows (RAW/WAR hits).
	addr = 0
	for i := 0; i < accesses; i++ {
		done, _ := s.AccessAt(now, addr, i%2 == 0)
		now = done
		if i%2 == 1 {
			addr += burst
		}
	}
	// Phase 4: random row-hopping mix (all miss patterns).
	h := seed
	for i := 0; i < accesses; i++ {
		h = device.Mix64(h)
		row := int64(h % 512)
		h = device.Mix64(h)
		write := h&1 == 0
		a := row*rowStride + int64(h%uint64(rowStride/burst))*burst
		done, _ := s.AccessAt(now, a, write)
		now = done
	}

	var out PatternLatencies
	for pat := Pattern(0); pat < NumPatterns; pat++ {
		v := s.AvgLatency(pat)
		if v == 0 {
			// Unobserved pattern: fall back to its analytic service time.
			v = float64(s.serviceTime(pat))
		}
		out[pat] = v
	}
	return out
}
