package dram

import (
	"testing"

	"repro/internal/device"
)

func TestAvgLatencyTracksCounts(t *testing.T) {
	s := NewSim(params())
	now := int64(0)
	for i := 0; i < 64; i++ {
		done, _ := s.AccessAt(now, 0, false) // same address: RAR hits after first
		now = done
	}
	if s.Count[RARHit] != 63 {
		t.Errorf("RAR hits = %d, want 63", s.Count[RARHit])
	}
	if s.Count[RARMiss] != 1 {
		t.Errorf("RAR misses = %d, want 1", s.Count[RARMiss])
	}
	if avg := s.AvgLatency(RARHit); avg <= 0 {
		t.Errorf("avg RAR hit latency = %v", avg)
	}
	if s.AvgLatency(WAWMiss) != 0 {
		t.Error("unobserved pattern should have zero average")
	}
}

func TestResetClearsState(t *testing.T) {
	s := NewSim(params())
	s.AccessAt(0, 0, true)
	s.Reset()
	if s.Count[WAWMiss]+s.Count[WARMiss] != 0 {
		t.Error("counters survive Reset")
	}
	// After reset the same access must be a cold miss again and start at
	// time zero (no stale chanFree).
	done, pat := s.AccessAt(0, 0, true)
	if pat.Hit() {
		t.Error("row buffer survived Reset")
	}
	if done > 200 {
		t.Errorf("stale channel state after Reset: done = %d", done)
	}
}

func TestRowMappingWithinBank(t *testing.T) {
	s := NewSim(params())
	// Addresses one full row apart within the same bank map to adjacent
	// rows.
	stride := int64(s.P.RowBytes) * int64(s.P.Banks)
	if s.BankOf(0) != s.BankOf(stride) {
		t.Fatal("row stride changed bank")
	}
	if s.RowOf(stride) != s.RowOf(0)+1 {
		t.Errorf("row(%d) = %d, want %d", stride, s.RowOf(stride), s.RowOf(0)+1)
	}
}

func TestDifferentPlatformsDifferentLatencies(t *testing.T) {
	a := ProfilePatterns(device.Virtex7().DRAM, 2048, 1)
	b := ProfilePatterns(device.KU060().DRAM, 2048, 1)
	if a == b {
		t.Error("two different DRAM configurations profiled identically")
	}
}

func TestWriteRecoveryOnlyOnMisses(t *testing.T) {
	s := NewSim(params())
	// WAW hit avoids the TWR+precharge penalty that WAW miss pays.
	hit := s.serviceTime(WAWHit)
	miss := s.serviceTime(WAWMiss)
	if miss-hit < int64(s.P.TWR) {
		t.Errorf("WAW miss (%d) should exceed hit (%d) by at least TWR (%d)",
			miss, hit, s.P.TWR)
	}
}
