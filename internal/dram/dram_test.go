package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func params() device.DRAMParams { return device.Virtex7().DRAM }

func TestHitFasterThanMiss(t *testing.T) {
	s := NewSim(params())
	lat := func(p Pattern) int64 { return s.serviceTime(p) }
	pairs := [][2]Pattern{
		{RARHit, RARMiss}, {RAWHit, RAWMiss}, {WARHit, WARMiss}, {WAWHit, WAWMiss},
	}
	for _, pr := range pairs {
		if lat(pr[0]) >= lat(pr[1]) {
			t.Errorf("%v (%d) should be faster than %v (%d)", pr[0], lat(pr[0]), pr[1], lat(pr[1]))
		}
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	s := NewSim(params())
	if s.serviceTime(RAWHit) <= s.serviceTime(RARHit) {
		t.Error("read-after-write should cost more than read-after-read")
	}
	if s.serviceTime(WARHit) <= s.serviceTime(WAWHit) {
		t.Error("write-after-read should cost more than write-after-write")
	}
}

func TestSequentialReadsMostlyHit(t *testing.T) {
	s := NewSim(params())
	now := int64(0)
	var hits, total int64
	addr := int64(0)
	for i := 0; i < 1024; i++ {
		done, pat := s.AccessAt(now, addr, false)
		now = done
		if pat.Hit() {
			hits++
		}
		total++
		addr += int64(s.P.BurstBytes)
	}
	if float64(hits)/float64(total) < 0.8 {
		t.Errorf("sequential stream hit rate %d/%d too low", hits, total)
	}
}

func TestRowHoppingMisses(t *testing.T) {
	s := NewSim(params())
	now := int64(0)
	rowStride := int64(s.P.RowBytes) * int64(s.P.Banks)
	var misses, total int64
	for i := 0; i < 256; i++ {
		// Jump two rows each time within the same bank.
		addr := int64(i) * 2 * rowStride
		done, pat := s.AccessAt(now, addr, false)
		now = done
		if !pat.Hit() {
			misses++
		}
		total++
	}
	if misses < total-1 {
		t.Errorf("row hopping should almost always miss: %d/%d", misses, total)
	}
}

func TestBankInterleaving(t *testing.T) {
	s := NewSim(params())
	seen := map[int]bool{}
	for i := 0; i < s.P.Banks; i++ {
		seen[s.BankOf(int64(i)*int64(s.P.BurstBytes))] = true
	}
	if len(seen) != s.P.Banks {
		t.Errorf("consecutive bursts hit %d distinct banks, want %d", len(seen), s.P.Banks)
	}
}

func TestChannelSerialization(t *testing.T) {
	s := NewSim(params())
	// The in-order channel admits one transaction at a time: a second
	// access issued at the same instant queues behind the first,
	// regardless of its bank.
	done1, _ := s.AccessAt(0, 0, false)
	done2, _ := s.AccessAt(0, int64(s.P.BurstBytes), false) // different bank
	if done2 <= done1 {
		t.Errorf("channel should serialize: done2 %d vs done1 %d", done2, done1)
	}
	// But bank row buffers are still per bank: returning to bank 0's open
	// row is a hit even after visiting bank 1.
	_, pat := s.AccessAt(done2, 0, false)
	if pat != RARHit {
		t.Errorf("bank 0 reuse = %v, want RAR/hit", pat)
	}
}

func TestPatternClassificationSequence(t *testing.T) {
	s := NewSim(params())
	a0 := int64(0)
	_, p1 := s.AccessAt(0, a0, false) // first read: miss (no open row)
	if p1 != RARMiss {
		t.Errorf("first access = %v, want RAR/miss", p1)
	}
	_, p2 := s.AccessAt(100, a0, false) // same row read: RAR hit
	if p2 != RARHit {
		t.Errorf("second access = %v, want RAR/hit", p2)
	}
	_, p3 := s.AccessAt(200, a0, true) // write after read, same row
	if p3 != WARHit {
		t.Errorf("third access = %v, want WAR/hit", p3)
	}
	_, p4 := s.AccessAt(300, a0, true) // write after write
	if p4 != WAWHit {
		t.Errorf("fourth access = %v, want WAW/hit", p4)
	}
	_, p5 := s.AccessAt(400, a0, false) // read after write
	if p5 != RAWHit {
		t.Errorf("fifth access = %v, want RAW/hit", p5)
	}
}

func TestProfilePatternsComplete(t *testing.T) {
	lat := ProfilePatterns(params(), 2048, 42)
	for p := Pattern(0); p < NumPatterns; p++ {
		if lat.Get(p) <= 0 {
			t.Errorf("pattern %v has no latency", p)
		}
	}
	// Structural expectations on the profiled table.
	if lat.Get(RARHit) >= lat.Get(RARMiss) {
		t.Error("profiled RAR hit should be cheaper than miss")
	}
	if lat.Get(WAWHit) >= lat.Get(WAWMiss) {
		t.Error("profiled WAW hit should be cheaper than miss")
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := ProfilePatterns(params(), 1024, 7)
	b := ProfilePatterns(params(), 1024, 7)
	if a != b {
		t.Error("profiling is not deterministic")
	}
}

func TestMonotoneTimeProperty(t *testing.T) {
	// Property: completion time never precedes issue time, and repeated
	// accesses to one bank have non-decreasing completion times.
	f := func(addrs []uint16, writes []bool) bool {
		s := NewSim(params())
		now := int64(0)
		var lastDone int64
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			done, _ := s.AccessAt(now, int64(a), w)
			if done < now {
				return false
			}
			if done < lastDone && s.BankOf(int64(a)) == 0 {
				// only enforce per-bank monotonicity loosely via bank 0
				return false
			}
			lastDone = done
			now = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPatternPredicates(t *testing.T) {
	if !RARHit.Read() || !RAWMiss.Read() || WARHit.Read() || WAWMiss.Read() {
		t.Error("Read() predicate wrong")
	}
	if !RARHit.Hit() || RARMiss.Hit() {
		t.Error("Hit() predicate wrong")
	}
	if RARHit.String() != "RAR/hit" || WAWMiss.String() != "WAW/miss" {
		t.Error("String() wrong")
	}
}
