package ir

// BuildCFG recomputes predecessor/successor lists from terminators and
// removes blocks unreachable from the entry.
func (f *Func) BuildCFG() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpBr:
			link(b, t.To)
		case OpCondBr:
			link(b, t.To)
			link(b, t.Else)
		}
	}
	// Drop unreachable blocks so downstream analyses see a clean graph.
	if entry := f.Entry(); entry != nil {
		seen := map[*Block]bool{}
		var dfs func(*Block)
		dfs = func(b *Block) {
			if seen[b] {
				return
			}
			seen[b] = true
			for _, s := range b.Succs {
				dfs(s)
			}
		}
		dfs(entry)
		var kept []*Block
		for _, b := range f.Blocks {
			if seen[b] {
				kept = append(kept, b)
			}
		}
		if len(kept) != len(f.Blocks) {
			f.Blocks = kept
			// Re-link with the pruned set.
			for _, b := range f.Blocks {
				b.Preds = b.Preds[:0]
				b.Succs = b.Succs[:0]
			}
			for _, b := range f.Blocks {
				t := b.Term()
				if t == nil {
					continue
				}
				switch t.Op {
				case OpBr:
					link(b, t.To)
				case OpCondBr:
					link(b, t.To)
					link(b, t.Else)
				}
			}
		}
	}
}

func link(from, to *Block) {
	if to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ReversePostorder returns the blocks in reverse postorder from entry.
func (f *Func) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var order []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dominators computes the immediate-dominator map using the classic
// iterative algorithm of Cooper, Harvey and Kennedy.
func (f *Func) Dominators() map[*Block]*Block {
	rpo := f.ReversePostorder()
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	entry := f.Entry()
	if entry == nil {
		return idom
	}
	idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// EnsureLoops runs AnalyzeLoops at most once per function. Read-only
// consumers of a fully built function (the analytical model, the
// cycle-level simulator, the CDFG builder) call this instead of
// AnalyzeLoops so one compiled kernel can be shared by many goroutines
// without racing on CFG and loop state. Code that mutates the IR after
// construction must call AnalyzeLoops explicitly to recompute.
func (f *Func) EnsureLoops() {
	f.loopsOnce.Do(f.AnalyzeLoops)
}

// AnalyzeLoops finds natural loops (back edges whose target dominates the
// source), populates f.Loops innermost-last, assigns parents, and copies
// trip/unroll hints from the header maps.
func (f *Func) AnalyzeLoops() {
	f.BuildCFG()
	idom := f.Dominators()
	f.Loops = nil
	byHeader := map[*Block]*Loop{}

	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				continue
			}
			// Back edge b -> s: collect the natural loop body.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}, StaticTrip: -1}
				byHeader[s] = l
				f.Loops = append(f.Loops, l)
			}
			l.Latch = b
			var stack []*Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range n.Preds {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Parent assignment: the smallest strictly containing loop.
	for _, l := range f.Loops {
		var best *Loop
		for _, o := range f.Loops {
			if o == l || !o.Blocks[l.Header] {
				continue
			}
			if len(o.Blocks) <= len(l.Blocks) {
				continue
			}
			if best == nil || len(o.Blocks) < len(best.Blocks) {
				best = o
			}
		}
		l.Parent = best
	}

	for _, l := range f.Loops {
		if trip, ok := f.TripHints[l.Header]; ok {
			l.StaticTrip = trip
		}
		if u, ok := f.UnrollHints[l.Header]; ok {
			l.Unroll = u
		}
	}
}

// LoopOf returns the innermost loop containing b, or nil.
func (f *Func) LoopOf(b *Block) *Loop {
	var best *Loop
	for _, l := range f.Loops {
		if !l.Blocks[b] {
			continue
		}
		if best == nil || len(l.Blocks) < len(best.Blocks) {
			best = l
		}
	}
	return best
}

// LoopDepth returns the loop nesting depth of b (0 = not in a loop).
func (f *Func) LoopDepth(b *Block) int {
	d := 0
	for _, l := range f.Loops {
		if l.Blocks[b] {
			d++
		}
	}
	return d
}
