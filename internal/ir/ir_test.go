package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/opencl/ast"
)

// buildDiamond constructs entry → {then, else} → merge.
func buildDiamond() *Func {
	f := NewFunc("diamond", true)
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	merge := f.NewBlock("merge")

	cond := f.NewInstr(OpICmp, ast.Scalar(ast.KInt))
	cond.Pr = PredLT
	cond.Args = []Value{IntConst(ast.KInt, 1), IntConst(ast.KInt, 2)}
	f.Append(entry, cond)
	br := f.NewInstr(OpCondBr, ast.Scalar(ast.KVoid))
	br.Args = []Value{cond}
	br.To, br.Else = thenB, elseB
	f.Append(entry, br)

	for _, b := range []*Block{thenB, elseB} {
		j := f.NewInstr(OpBr, ast.Scalar(ast.KVoid))
		j.To = merge
		f.Append(b, j)
	}
	ret := f.NewInstr(OpRet, ast.Scalar(ast.KVoid))
	f.Append(merge, ret)
	return f
}

// buildLoop constructs entry → header ⇄ body, header → exit.
func buildLoop() *Func {
	f := NewFunc("loop", true)
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	j := f.NewInstr(OpBr, ast.Scalar(ast.KVoid))
	j.To = header
	f.Append(entry, j)

	cond := f.NewInstr(OpICmp, ast.Scalar(ast.KInt))
	cond.Pr = PredLT
	cond.Args = []Value{IntConst(ast.KInt, 0), IntConst(ast.KInt, 10)}
	f.Append(header, cond)
	br := f.NewInstr(OpCondBr, ast.Scalar(ast.KVoid))
	br.Args = []Value{cond}
	br.To, br.Else = body, exit
	f.Append(header, br)

	back := f.NewInstr(OpBr, ast.Scalar(ast.KVoid))
	back.To = header
	f.Append(body, back)

	ret := f.NewInstr(OpRet, ast.Scalar(ast.KVoid))
	f.Append(exit, ret)
	return f
}

func TestCFGDiamond(t *testing.T) {
	f := buildDiamond()
	f.BuildCFG()
	entry := f.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d", len(entry.Succs))
	}
	merge := f.Blocks[3]
	if len(merge.Preds) != 2 {
		t.Fatalf("merge preds = %d", len(merge.Preds))
	}
	idom := f.Dominators()
	if idom[merge] != entry {
		t.Errorf("idom(merge) = %v, want entry", idom[merge].Label())
	}
	if !Dominates(idom, entry, merge) {
		t.Error("entry must dominate merge")
	}
	if Dominates(idom, f.Blocks[1], merge) {
		t.Error("then must not dominate merge")
	}
}

func TestLoopDetection(t *testing.T) {
	f := buildLoop()
	f.AnalyzeLoops()
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header.BName != "header" {
		t.Errorf("header = %s", l.Header.BName)
	}
	if l.Latch == nil || l.Latch.BName != "body" {
		t.Errorf("latch = %v", l.Latch)
	}
	if !l.Contains(f.Blocks[2]) {
		t.Error("body not in loop")
	}
	if l.Contains(f.Blocks[3]) {
		t.Error("exit wrongly in loop")
	}
	if f.LoopDepth(f.Blocks[2]) != 1 || f.LoopDepth(f.Blocks[0]) != 0 {
		t.Error("loop depths wrong")
	}
}

func TestReversePostorderProperty(t *testing.T) {
	f := buildDiamond()
	f.BuildCFG()
	rpo := f.ReversePostorder()
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// In an acyclic CFG, every edge goes forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if pos[s] <= pos[b] {
				t.Errorf("edge %s -> %s not forward in RPO", b.Label(), s.Label())
			}
		}
	}
}

func TestUnreachableBlockPruned(t *testing.T) {
	f := buildDiamond()
	dead := f.NewBlock("dead")
	ret := f.NewInstr(OpRet, ast.Scalar(ast.KVoid))
	f.Append(dead, ret)
	f.BuildCFG()
	for _, b := range f.Blocks {
		if b.BName == "dead" {
			t.Fatal("unreachable block not pruned")
		}
	}
}

func TestTripHintsFlow(t *testing.T) {
	f := buildLoop()
	f.TripHints[f.Blocks[1]] = 10
	f.UnrollHints[f.Blocks[1]] = 2
	f.AnalyzeLoops()
	if f.Loops[0].StaticTrip != 10 {
		t.Errorf("trip = %d", f.Loops[0].StaticTrip)
	}
	if f.Loops[0].Unroll != 2 {
		t.Errorf("unroll = %d", f.Loops[0].Unroll)
	}
}

func TestConstProperties(t *testing.T) {
	f := func(v int64) bool {
		c := IntConst(ast.KInt, v)
		return c.I == v && !c.Type().Base.IsFloat() && (c.IsZero() == (v == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	fc := FloatConst(ast.KFloat, 2.5)
	if fc.Name() != "2.5" {
		t.Errorf("float const name = %q", fc.Name())
	}
}

func TestInstrString(t *testing.T) {
	f := NewFunc("k", true)
	b := f.NewBlock("entry")
	add := f.NewInstr(OpAdd, ast.Scalar(ast.KInt))
	add.Args = []Value{IntConst(ast.KInt, 1), IntConst(ast.KInt, 2)}
	f.Append(b, add)
	if s := add.String(); !strings.Contains(s, "add 1, 2") {
		t.Errorf("instr string = %q", s)
	}
	cmp := f.NewInstr(OpICmp, ast.Scalar(ast.KInt))
	cmp.Pr = PredLE
	cmp.Args = []Value{add, IntConst(ast.KInt, 5)}
	f.Append(b, cmp)
	if s := cmp.String(); !strings.Contains(s, "icmp.le") {
		t.Errorf("cmp string = %q", s)
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBr.IsTerminator() || !OpRet.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("IsTerminator wrong")
	}
	if !OpLoad.IsMemAccess() || !OpAtomic.IsMemAccess() || OpMul.IsMemAccess() {
		t.Error("IsMemAccess wrong")
	}
}

func TestGlobalParamsFilter(t *testing.T) {
	f := NewFunc("k", true)
	f.Params = []*Param{
		{PName: "g", T: ast.Pointer(ast.Scalar(ast.KFloat), ast.ASGlobal)},
		{PName: "l", T: ast.Pointer(ast.Scalar(ast.KFloat), ast.ASLocal)},
		{PName: "n", T: ast.Scalar(ast.KInt)},
		{PName: "c", T: ast.Pointer(ast.Scalar(ast.KInt), ast.ASConstant)},
	}
	gp := f.GlobalParams()
	if len(gp) != 2 || gp[0].PName != "g" || gp[1].PName != "c" {
		t.Errorf("global params = %v", gp)
	}
	if f.Param("n") == nil || f.Param("zz") != nil {
		t.Error("Param lookup wrong")
	}
}

func TestAllocaProperties(t *testing.T) {
	a := &Alloca{AName: "t", Elem: ast.Scalar(ast.KFloat), Count: 64, AS: ast.ASLocal}
	if !a.IsArray() || a.Space() != ast.ASLocal || a.StorageName() != "t" {
		t.Error("alloca accessors wrong")
	}
	s := &Alloca{AName: "x", Elem: ast.Scalar(ast.KInt), Count: 1}
	if s.IsArray() {
		t.Error("scalar alloca reported as array")
	}
}
