// Package ir defines the intermediate representation FlexCL analyzes: a
// typed, register-based IR organized as a control-flow graph of basic
// blocks. Memory is accessed through explicit storage objects (kernel
// buffer parameters and allocas) with element indices, which keeps
// address expressions analyzable for the memory model.
//
// The IR deliberately resembles the subset of LLVM IR that FlexCL's kernel
// analysis consumes: every instruction maps to one FPGA IP core with a
// latency entry in the device database (paper §3.2).
package ir

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/opencl/ast"
)

// Op is an IR opcode.
type Op int

// IR opcodes.
const (
	OpInvalid Op = iota

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons; Pred holds the predicate.
	OpICmp
	OpFCmp

	// OpSelect chooses Args[1] or Args[2] by Args[0].
	OpSelect

	// OpCast converts Args[0] to the instruction type.
	OpCast

	// Memory. Load: Args[0] = element index. Store: Args[0] = element
	// index, Args[1] = value. Mem names the storage object.
	OpLoad
	OpStore

	// OpAtomic is an atomic read-modify-write on Mem[Args[0]] with
	// operand Args[1] (absent for inc/dec); Fn holds the operation.
	OpAtomic

	// OpCall invokes the builtin named Fn with Args.
	OpCall

	// OpWorkItem reads an NDRange coordinate; Fn holds the query name and
	// Dim the dimension.
	OpWorkItem

	// Vector ops. VecBuild packs Args into a vector. VecExtract reads
	// Lanes from Args[0]. VecInsert writes Args[1..] into Lanes of a copy
	// of Args[0].
	OpVecBuild
	OpVecExtract
	OpVecInsert

	// Terminators.
	OpBr     // unconditional: To
	OpCondBr // Args[0] cond: To (true), Else (false)
	OpRet    // optional Args[0]

	// OpBarrier is a work-group barrier; Fn records "local"/"global"/
	// "local|global".
	OpBarrier
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp", OpSelect: "select", OpCast: "cast",
	OpLoad: "load", OpStore: "store", OpAtomic: "atomic", OpCall: "call",
	OpWorkItem: "workitem",
	OpVecBuild: "vec.build", OpVecExtract: "vec.extract", OpVecInsert: "vec.insert",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpBarrier: "barrier",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// IsMemAccess reports whether the op reads or writes a storage object.
func (o Op) IsMemAccess() bool { return o == OpLoad || o == OpStore || o == OpAtomic }

// Pred is a comparison predicate.
type Pred int

// Comparison predicates (shared by ICmp and FCmp).
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

func (p Pred) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[p]
}

// Value is anything usable as an instruction operand.
type Value interface {
	Type() ast.Type
	Name() string
}

// Const is a compile-time constant scalar or splat.
type Const struct {
	T ast.Type
	I int64   // integer payload
	F float64 // float payload
}

// IntConst returns an integer constant of the given kind.
func IntConst(k ast.BaseKind, v int64) *Const {
	return &Const{T: ast.Scalar(k), I: v}
}

// FloatConst returns a floating constant of the given kind.
func FloatConst(k ast.BaseKind, v float64) *Const {
	return &Const{T: ast.Scalar(k), F: v}
}

// Type returns the constant's type.
func (c *Const) Type() ast.Type { return c.T }

// Name returns the printed form of the constant.
func (c *Const) Name() string {
	if c.T.Base.IsFloat() {
		return fmt.Sprintf("%g", c.F)
	}
	return fmt.Sprintf("%d", c.I)
}

// IsZero reports whether the constant is zero.
func (c *Const) IsZero() bool {
	if c.T.Base.IsFloat() {
		return c.F == 0
	}
	return c.I == 0
}

// Param is a kernel argument. Pointer parameters double as storage
// objects for global/local/constant buffers.
type Param struct {
	PName string
	T     ast.Type
	Index int
}

// Type returns the parameter type.
func (p *Param) Type() ast.Type { return p.T }

// Name returns the parameter name.
func (p *Param) Name() string { return "%" + p.PName }

// Space returns the address space of a pointer parameter.
func (p *Param) Space() ast.AddrSpace { return p.T.Space }

// Elem returns the pointee element type of a pointer parameter.
func (p *Param) Elem() ast.Type { return p.T.Elem() }

// StorageName returns the buffer name used in traces.
func (p *Param) StorageName() string { return p.PName }

// Alloca is a private variable or a private/local array.
type Alloca struct {
	AName string
	Elem  ast.Type
	Count int64 // flattened element count; 1 for scalars
	Dims  []int64
	AS    ast.AddrSpace // ASPrivate or ASLocal
	Idx   int           // position within Func.Allocas
}

// Type returns the element type (allocas are referenced via Load/Store,
// never as first-class pointer values).
func (a *Alloca) Type() ast.Type { return a.Elem }

// Name returns the printed form of the alloca.
func (a *Alloca) Name() string { return "@" + a.AName }

// Space returns the address space of the alloca.
func (a *Alloca) Space() ast.AddrSpace { return a.AS }

// StorageName returns the buffer name used in traces.
func (a *Alloca) StorageName() string { return a.AName }

// IsArray reports whether the alloca has more than one element.
func (a *Alloca) IsArray() bool { return a.Count > 1 }

// Storage is a memory object addressable by Load/Store: a pointer Param
// or an Alloca.
type Storage interface {
	Value
	Space() ast.AddrSpace
	StorageName() string
}

// Instr is one IR instruction; it is also a Value (its result).
type Instr struct {
	ID   int
	Op   Op
	T    ast.Type
	Args []Value
	Pr   Pred    // for ICmp/FCmp
	Mem  Storage // for Load/Store/Atomic
	Fn   string  // for Call/Atomic/WorkItem/Barrier
	Dim  int     // for WorkItem
	// Lanes for VecExtract/VecInsert.
	Lanes []int
	// To/Else are branch targets.
	To, Else *Block
	Blk      *Block
}

// Type returns the result type.
func (i *Instr) Type() ast.Type { return i.T }

// Name returns the SSA-style name of the result.
func (i *Instr) Name() string { return fmt.Sprintf("%%v%d", i.ID) }

// String renders the instruction in a readable single-line form.
func (i *Instr) String() string {
	var sb strings.Builder
	if !i.T.IsVoid() && !i.Op.IsTerminator() && i.Op != OpStore && i.Op != OpBarrier {
		fmt.Fprintf(&sb, "%s = ", i.Name())
	}
	sb.WriteString(i.Op.String())
	if i.Op == OpICmp || i.Op == OpFCmp {
		sb.WriteByte('.')
		sb.WriteString(i.Pr.String())
	}
	if i.Fn != "" {
		sb.WriteByte(' ')
		sb.WriteString(i.Fn)
	}
	if i.Mem != nil {
		fmt.Fprintf(&sb, " %s[", i.Mem.Name())
		if len(i.Args) > 0 {
			sb.WriteString(i.Args[0].Name())
		}
		sb.WriteByte(']')
		for _, a := range i.Args[1:] {
			sb.WriteString(", ")
			sb.WriteString(a.Name())
		}
	} else {
		for n, a := range i.Args {
			if n == 0 {
				sb.WriteByte(' ')
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(a.Name())
		}
	}
	if i.To != nil {
		fmt.Fprintf(&sb, " -> %s", i.To.Label())
	}
	if i.Else != nil {
		fmt.Fprintf(&sb, " / %s", i.Else.Label())
	}
	if len(i.Lanes) > 0 {
		fmt.Fprintf(&sb, " lanes%v", i.Lanes)
	}
	return sb.String()
}

// Block is a basic block.
type Block struct {
	ID     int
	BName  string
	Instrs []*Instr // terminator is the last instruction
	Preds  []*Block
	Succs  []*Block
}

// Label returns the printable block label.
func (b *Block) Label() string { return fmt.Sprintf("b%d.%s", b.ID, b.BName) }

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Loop describes one natural loop discovered in the CFG or annotated by
// the IR generator.
type Loop struct {
	Header *Block
	Latch  *Block
	Blocks map[*Block]bool
	Parent *Loop
	// StaticTrip is the compile-time trip count, or -1 if unknown and to
	// be obtained by profiling.
	StaticTrip int64
	// Unroll is the requested unroll factor (0 none, -1 full).
	Unroll int
}

// Depth returns the nesting depth (outermost = 1).
func (l *Loop) Depth() int {
	d := 0
	for cur := l; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// Contains reports whether the loop body includes b.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// Func is one IR function (a fully inlined kernel).
type Func struct {
	Name    string
	Params  []*Param
	Allocas []*Alloca
	Blocks  []*Block
	Kernel  bool
	Attrs   []ast.Attr
	// Loops is populated by AnalyzeLoops; entries are annotated by irgen
	// with static trip counts and unroll hints via TripHints.
	Loops []*Loop
	// TripHints maps loop header blocks to statically known trip counts.
	TripHints map[*Block]int64
	// UnrollHints maps loop header blocks to unroll factors.
	UnrollHints map[*Block]int
	// HasBarrier reports whether any block contains a barrier.
	HasBarrier bool

	nextInstrID int
	nextBlockID int

	// loopsOnce backs EnsureLoops: the one-time loop analysis that makes
	// a fully built function shareable across goroutines.
	loopsOnce sync.Once
}

// NewFunc returns an empty function.
func NewFunc(name string, kernel bool) *Func {
	return &Func{
		Name:        name,
		Kernel:      kernel,
		TripHints:   make(map[*Block]int64),
		UnrollHints: make(map[*Block]int),
	}
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: f.nextBlockID, BName: name}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewInstr creates an instruction without inserting it.
func (f *Func) NewInstr(op Op, t ast.Type) *Instr {
	in := &Instr{ID: f.nextInstrID, Op: op, T: t}
	f.nextInstrID++
	return in
}

// Append places in at the end of b.
func (f *Func) Append(b *Block, in *Instr) *Instr {
	in.Blk = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Param returns the parameter named name, or nil.
func (f *Func) Param(name string) *Param {
	for _, p := range f.Params {
		if p.PName == name {
			return p
		}
	}
	return nil
}

// GlobalParams returns pointer parameters in the global/constant spaces —
// the kernel's off-chip buffers.
func (f *Func) GlobalParams() []*Param {
	var out []*Param
	for _, p := range f.Params {
		if p.T.Ptr && (p.T.Space == ast.ASGlobal || p.T.Space == ast.ASConstant) {
			out = append(out, p)
		}
	}
	return out
}

// LocalAllocas returns the __local arrays of the kernel.
func (f *Func) LocalAllocas() []*Alloca {
	var out []*Alloca
	for _, a := range f.Allocas {
		if a.AS == ast.ASLocal {
			out = append(out, a)
		}
	}
	return out
}

// String dumps the function as text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for n, p := range f.Params {
		if n > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %v", p.Name(), p.T)
	}
	sb.WriteString(")\n")
	for _, a := range f.Allocas {
		fmt.Fprintf(&sb, "  %s = alloca %v x %d (%v)\n", a.Name(), a.Elem, a.Count, a.AS)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label())
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}
