// Package artifact is the persistent, content-addressed store for
// compile+analysis results: everything dse.PrepCache derives for one
// (kernel workload, platform, work-group size) that is expensive to
// recompute — the profiled block frequencies, the classified memory
// trace and the device latency tables — serialized as one versioned
// record per key.
//
// The store exists so restarts begin warm: a flexcl-serve replica (or a
// corpus sweep) pointed at a populated -artifact-dir answers its first
// prediction of every kernel from disk instead of re-running the
// interpreter, and N replicas sharing one directory compile each kernel
// once per fleet instead of once per process.
//
// Records deliberately do not carry the ir.Func itself: IR is cheap to
// rebuild from source (parse + irgen), deterministic, and full of
// pointer graphs that do not serialize. Instead a record stores a
// structural fingerprint of the function (blocks and loop metadata) and
// the block-frequency profile keyed by block position; restoring a
// record recompiles the kernel and re-attaches the profile, refusing —
// and deleting the file — when the fingerprint no longer matches.
//
// Corrupt, truncated or version-mismatched files are never errors: every
// load failure degrades to a miss (the caller recomputes) and removes
// the offending file so the next fill rewrites it.
package artifact

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/trace"
)

// Version is the record format version. Bump it whenever the Record
// schema or the meaning of a field changes; old files then read as
// misses and are rewritten on the next fill.
const Version = 1

// header is the first line of every artifact file. It carries the
// format version so a truncated or foreign file is rejected before the
// JSON decoder runs.
const header = "flexcl-artifact v1"

// Key identifies one analysis artifact: the kernel workload hash
// (bench.Kernel.CacheKey — source, defines, NDRange, buffers, scalars),
// the platform name, and the work-group size the profile was taken at.
type Key struct {
	Kernel   string `json:"kernel"`
	Platform string `json:"platform"`
	WG       int64  `json:"wg"`
}

// BlockMeta fingerprints one basic block of the compiled function.
type BlockMeta struct {
	ID     int    `json:"id"`
	Name   string `json:"name"`
	Instrs int    `json:"instrs"`
}

// LoopMeta fingerprints one natural loop: block positions within
// Func.Blocks plus the static metadata the model consumes.
type LoopMeta struct {
	Header     int   `json:"header"`
	Latch      int   `json:"latch"` // -1 when the loop has no latch
	Blocks     int   `json:"blocks"`
	StaticTrip int64 `json:"static_trip"`
	Unroll     int   `json:"unroll"`
}

// FreqEntry is one profiled block-frequency sample, keyed by the
// block's position in Func.Blocks. Presence matters — consumers
// distinguish "never profiled" from "profiled zero times" — so the
// record stores exactly the entries of the profile map.
type FreqEntry struct {
	Block int     `json:"block"`
	Count float64 `json:"count"`
}

// Record is the serialized form of one prepared analysis: the model
// inputs that are expensive to recompute, plus the structural
// fingerprint that ties them to one compiled function shape.
type Record struct {
	Version int    `json:"version"`
	Key     Key    `json:"key"`
	Func    string `json:"func"`

	Blocks []BlockMeta `json:"blocks"`
	Loops  []LoopMeta  `json:"loops"`

	Freq     []FreqEntry      `json:"freq"`
	Mem      trace.Classified `json:"mem"`
	Barriers float64          `json:"barriers"`
	NWI      int64            `json:"nwi"`
	WGSize   int64            `json:"wg_size"`

	Table  device.LatencyTable   `json:"table"`
	PatLat dram.PatternLatencies `json:"pat_lat"`

	// FillNanos is the wall time the original compile+analyze fill
	// spent — what a cold start pays and a warm start saves.
	FillNanos int64 `json:"fill_nanos"`
}

// FillDuration returns the original fill's compile+analyze wall time.
func (r *Record) FillDuration() time.Duration { return time.Duration(r.FillNanos) }

// New captures a freshly computed analysis as a serializable record.
func New(key Key, an *model.Analysis, fill time.Duration) *Record {
	rec := &Record{
		Version:   Version,
		Key:       key,
		Func:      an.F.Name,
		Mem:       *an.Mem,
		Barriers:  an.Barriers,
		NWI:       an.NWI,
		WGSize:    an.WGSize,
		Table:     *an.Table,
		PatLat:    an.PatLat,
		FillNanos: int64(fill),
	}
	idx := make(map[*ir.Block]int, len(an.F.Blocks))
	for i, b := range an.F.Blocks {
		idx[b] = i
		rec.Blocks = append(rec.Blocks, BlockMeta{ID: b.ID, Name: b.BName, Instrs: len(b.Instrs)})
	}
	an.F.EnsureLoops()
	for _, l := range an.F.Loops {
		lm := LoopMeta{Header: idx[l.Header], Latch: -1,
			Blocks: len(l.Blocks), StaticTrip: l.StaticTrip, Unroll: l.Unroll}
		if l.Latch != nil {
			lm.Latch = idx[l.Latch]
		}
		rec.Loops = append(rec.Loops, lm)
	}
	// Sorted by block position for a deterministic file (maps iterate
	// randomly; identical analyses must serialize to identical bytes).
	rec.Freq = make([]FreqEntry, 0, len(an.Freq))
	for i, b := range an.F.Blocks {
		if c, ok := an.Freq[b]; ok {
			rec.Freq = append(rec.Freq, FreqEntry{Block: i, Count: c})
		}
	}
	return rec
}

// Analysis reconstructs the model.Analysis against a freshly compiled
// function. The record's structural fingerprint must match f exactly —
// same blocks, same loop metadata — otherwise the stored profile would
// silently attach to the wrong code and the error tells the store to
// treat the record as corrupt.
func (r *Record) Analysis(f *ir.Func, p *device.Platform) (*model.Analysis, error) {
	if r.Func != f.Name {
		return nil, fmt.Errorf("artifact: func %q, compiled %q", r.Func, f.Name)
	}
	if len(r.Blocks) != len(f.Blocks) {
		return nil, fmt.Errorf("artifact: %d blocks recorded, %d compiled", len(r.Blocks), len(f.Blocks))
	}
	for i, bm := range r.Blocks {
		b := f.Blocks[i]
		if bm.ID != b.ID || bm.Name != b.BName || bm.Instrs != len(b.Instrs) {
			return nil, fmt.Errorf("artifact: block %d is %s/%d instrs, recorded %s/%d",
				i, b.Label(), len(b.Instrs), fmt.Sprintf("b%d.%s", bm.ID, bm.Name), bm.Instrs)
		}
	}
	f.EnsureLoops()
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	if len(r.Loops) != len(f.Loops) {
		return nil, fmt.Errorf("artifact: %d loops recorded, %d analyzed", len(r.Loops), len(f.Loops))
	}
	for i, lm := range r.Loops {
		l := f.Loops[i]
		latch := -1
		if l.Latch != nil {
			latch = idx[l.Latch]
		}
		if lm.Header != idx[l.Header] || lm.Latch != latch ||
			lm.Blocks != len(l.Blocks) || lm.StaticTrip != l.StaticTrip || lm.Unroll != l.Unroll {
			return nil, fmt.Errorf("artifact: loop %d metadata drifted", i)
		}
	}
	freq := make(map[*ir.Block]float64, len(r.Freq))
	for _, fe := range r.Freq {
		if fe.Block < 0 || fe.Block >= len(f.Blocks) {
			return nil, fmt.Errorf("artifact: freq entry for block %d of %d", fe.Block, len(f.Blocks))
		}
		freq[f.Blocks[fe.Block]] = fe.Count
	}
	mem := r.Mem
	table := r.Table
	return &model.Analysis{
		F:        f,
		Platform: p,
		Table:    &table,
		PatLat:   r.PatLat,
		Freq:     freq,
		Mem:      &mem,
		NWI:      r.NWI,
		WGSize:   r.WGSize,
		Barriers: r.Barriers,
	}, nil
}

// Encode renders the record as a self-describing artifact file: the
// version header line followed by the JSON body.
func Encode(r *Record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding: %w", err)
	}
	out := make([]byte, 0, len(header)+1+len(body)+1)
	out = append(out, header...)
	out = append(out, '\n')
	out = append(out, body...)
	out = append(out, '\n')
	return out, nil
}

// Decode parses an artifact file, rejecting anything whose header line
// or version field does not match this build's format.
func Decode(data []byte) (*Record, error) {
	line, body, ok := strings.Cut(string(data), "\n")
	if !ok || line != header {
		return nil, fmt.Errorf("artifact: bad header %.40q", line)
	}
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("artifact: decoding: %w", err)
	}
	if rec.Version != Version {
		return nil, fmt.Errorf("artifact: version %d, want %d", rec.Version, Version)
	}
	return &rec, nil
}

// Stats is a snapshot of one store's traffic.
type Stats struct {
	// Hits and Misses count Load outcomes (a corrupt file is a miss).
	Hits, Misses uint64
	// Writes counts records persisted; WriteErrors counts Save failures
	// (e.g. a read-only directory) — the caller keeps its computed
	// result either way.
	Writes, WriteErrors uint64
	// Corrupt counts files deleted because they failed to decode or
	// validate.
	Corrupt uint64
}

// Store is a directory of artifact files, one per Key, safe for
// concurrent use by many goroutines and many processes: writes go
// through a unique temp file plus an atomic rename, so readers only
// ever observe complete records.
type Store struct {
	dir string

	hits, misses, writes, writeErrs, corrupt atomic.Uint64
}

// Open returns a store rooted at dir, creating the directory when
// possible. A pre-existing directory that cannot be written (a
// read-only volume) is still usable: loads work, saves count a
// WriteError and the caller keeps computing.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		if st, serr := os.Stat(dir); serr != nil || !st.IsDir() {
			return nil, fmt.Errorf("artifact: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// sanitize keeps file names shell- and filesystem-friendly whatever the
// platform name contains.
func sanitize(v string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, v)
}

// Path returns the file a key is stored at.
func (s *Store) Path(k Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s-wg%d.json", sanitize(k.Kernel), sanitize(k.Platform), k.WG))
}

// Load reads the record for a key. Every failure mode — missing,
// truncated, unparseable, wrong version, wrong key — returns ok=false;
// undecodable files are deleted so the next fill rewrites them.
func (s *Store) Load(k Key) (*Record, bool) {
	data, err := os.ReadFile(s.Path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	rec, err := Decode(data)
	if err != nil || rec.Key != k {
		s.Invalidate(k)
		return nil, false
	}
	s.hits.Add(1)
	return rec, true
}

// Invalidate deletes a key's file and counts it corrupt — the path for
// records that decoded but failed post-load validation (e.g. the
// compiled function's fingerprint no longer matches).
func (s *Store) Invalidate(k Key) {
	s.corrupt.Add(1)
	s.misses.Add(1)
	os.Remove(s.Path(k))
}

// Save persists a record atomically: a unique temp file in the same
// directory, then rename. Concurrent writers of one key are safe — the
// records they write are identical by construction (the key hashes
// every analysis input) and rename is atomic, so readers see one whole
// record regardless of who wins.
func (s *Store) Save(rec *Record) error {
	data, err := Encode(rec)
	if err != nil {
		s.writeErrs.Add(1)
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".artifact-*.tmp")
	if err != nil {
		s.writeErrs.Add(1)
		return fmt.Errorf("artifact: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.Path(rec.Key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.writeErrs.Add(1)
		return fmt.Errorf("artifact: %w", werr)
	}
	s.writes.Add(1)
	return nil
}

// Len returns the number of artifact files currently in the store.
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrs.Load(),
		Corrupt:     s.corrupt.Load(),
	}
}
