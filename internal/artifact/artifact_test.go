package artifact_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/model"
)

// analysisFor compiles and analyzes one corpus kernel the way
// dse.PrepCache does — the artifact store's only producer.
func analysisFor(t *testing.T, k *bench.Kernel, wg int64) *model.Analysis {
	t.Helper()
	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	f.EnsureLoops()
	an, err := model.Analyze(context.Background(), f, device.Virtex7(),
		k.Config(wg), model.AnalysisOptions{ProfileGroups: 8})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func testKernel(t *testing.T) (*bench.Kernel, int64) {
	t.Helper()
	k := bench.Find("nn", "nn")
	if k == nil {
		t.Fatal("kernel nn/nn missing")
	}
	return k, k.WGSizes()[0]
}

func keyFor(k *bench.Kernel, wg int64) artifact.Key {
	return artifact.Key{Kernel: k.CacheKey(), Platform: device.Virtex7().Name, WG: wg}
}

// TestRoundTripIdenticalPredictions is the store's core contract: a
// record decoded from its own bytes and re-attached to a freshly
// compiled function yields byte-identical model estimates across the
// design space — predictions from disk are indistinguishable from
// fresh ones.
func TestRoundTripIdenticalPredictions(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)

	rec := artifact.New(key, an, 123*time.Millisecond)
	data, err := artifact.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := artifact.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.FillDuration() != 123*time.Millisecond {
		t.Errorf("FillDuration = %v, want 123ms", rec2.FillDuration())
	}

	f2, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	an2, err := rec2.Analysis(f2, device.Virtex7())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range model.DefaultSpace(wg, 8, 4) {
		if d.WGSize != wg {
			continue
		}
		fresh := an.Predict(d)
		restored := an2.Predict(d)
		if !reflect.DeepEqual(fresh, restored) {
			t.Fatalf("design %v: fresh %+v, restored %+v", d, fresh, restored)
		}
	}
	// Encoding the restored analysis again must reproduce the bytes —
	// the determinism N replicas sharing one directory rely on.
	data2, err := artifact.Encode(artifact.New(key, an2, 123*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-encoded record differs from the original bytes")
	}
}

func TestStoreSaveLoad(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)

	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("Load hit on an empty store")
	}
	if err := s.Save(artifact.New(key, an, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	rec, ok := s.Load(key)
	if !ok {
		t.Fatal("Load missed a saved record")
	}
	if rec.Key != key {
		t.Errorf("loaded key %+v, want %+v", rec.Key, key)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 write", st)
	}
}

// corruptionCase mangles a valid artifact file; Load must treat every
// variant as a miss and delete the file so the next fill rewrites it.
func TestCorruptFilesDegradeToMiss(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)
	valid, err := artifact.Encode(artifact.New(key, an, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", valid[:10]},
		{"truncated-body", valid[:len(valid)/2]},
		{"wrong-version-header", []byte("flexcl-artifact v0\n" + `{"version":0}` + "\n")},
		{"version-field-mismatch", []byte("flexcl-artifact v1\n" + `{"version":99}` + "\n")},
		{"garbage-json", []byte("flexcl-artifact v1\nnot json at all\n")},
		{"unknown-field", []byte("flexcl-artifact v1\n" + `{"version":1,"bogus":true}` + "\n")},
		{"foreign-file", []byte("PK\x03\x04 some zip archive")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := artifact.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(key); ok {
				t.Fatal("Load returned ok for a corrupt file")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt file not deleted")
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Misses != 1 || st.Hits != 0 {
				t.Errorf("stats = %+v, want 1 corrupt miss", st)
			}
			// The store must still be writable after the cleanup.
			if err := s.Save(artifact.New(key, an, time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(key); !ok {
				t.Error("rewrite after corruption not readable")
			}
		})
	}
}

// TestWrongKeyInvalidated: a record stored under another key's file
// name (a botched copy between directories) decodes fine but names the
// wrong analysis; Load must reject and delete it.
func TestWrongKeyInvalidated(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := keyFor(k, wg)
	other := key
	other.WG = key.WG + 1
	if err := s.Save(artifact.New(key, an, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.Path(key), s.Path(other)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(other); ok {
		t.Fatal("Load accepted a record stored under the wrong key")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %+v, want the aliased record counted corrupt", st)
	}
}

// TestFingerprintMismatchRejected: a record whose structural
// fingerprint does not match the compiled function must refuse to
// attach its profile.
func TestFingerprintMismatchRejected(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	rec := artifact.New(keyFor(k, wg), an, time.Millisecond)
	rec.Blocks[0].Instrs++ // drift: one instruction appeared

	f, err := k.Compile(wg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Analysis(f, device.Virtex7()); err == nil {
		t.Fatal("Analysis accepted a drifted block fingerprint")
	}

	rec2 := artifact.New(keyFor(k, wg), an, time.Millisecond)
	rec2.Func = "somebody_else"
	if _, err := rec2.Analysis(f, device.Virtex7()); err == nil {
		t.Fatal("Analysis accepted the wrong function name")
	}

	rec3 := artifact.New(keyFor(k, wg), an, time.Millisecond)
	rec3.Freq = append(rec3.Freq, artifact.FreqEntry{Block: len(rec3.Blocks), Count: 1})
	if _, err := rec3.Analysis(f, device.Virtex7()); err == nil {
		t.Fatal("Analysis accepted an out-of-range frequency entry")
	}
}

// TestConcurrentWriters: many goroutines saving and loading one key
// concurrently must be race-free and every successful load must see a
// complete record (the atomic temp-file + rename contract).
func TestConcurrentWriters(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := artifact.New(key, an, time.Millisecond)

	var g sync.WaitGroup
	for i := 0; i < 8; i++ {
		g.Add(1)
		go func() {
			defer g.Done()
			for j := 0; j < 10; j++ {
				if err := s.Save(rec); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
			}
		}()
		g.Add(1)
		go func() {
			defer g.Done()
			for j := 0; j < 10; j++ {
				if got, ok := s.Load(key); ok && got.Key != key {
					t.Errorf("Load returned a torn record: %+v", got.Key)
					return
				}
			}
		}()
	}
	g.Wait()
	if got, ok := s.Load(key); !ok || got.Key != key {
		t.Fatalf("final Load = %v, %v", got, ok)
	}
	if st := s.Stats(); st.WriteErrors != 0 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want no write errors or corruption", st)
	}
	// No temp files may linger.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestUnwritableStoreDegrades: when the directory cannot accept writes
// (here: deleted out from under the store, the failure mode a full or
// yanked volume produces), Save must fail soft — count a WriteError,
// return the error, never panic — and Load must report a plain miss.
func TestUnwritableStoreDegrades(t *testing.T) {
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(artifact.New(key, an, time.Millisecond)); err == nil {
		t.Fatal("Save succeeded into a deleted directory")
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("Load hit in a deleted directory")
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 write error and 1 miss", st)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d in a deleted directory", s.Len())
	}
}

// TestReadOnlyDirectory: a store opened on a pre-existing directory
// that refuses writes still answers loads. Skipped as root (the
// container's default), where permission bits do not bind.
func TestReadOnlyDirectory(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions do not bind")
	}
	k, wg := testKernel(t)
	an := analysisFor(t, k, wg)
	key := keyFor(k, wg)
	dir := t.TempDir()
	rw, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Save(artifact.New(key, an, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })

	s, err := artifact.Open(dir)
	if err != nil {
		t.Fatalf("Open on a read-only directory: %v", err)
	}
	if _, ok := s.Load(key); !ok {
		t.Error("Load missed in a read-only store")
	}
	if err := s.Save(artifact.New(key, an, time.Millisecond)); err == nil {
		t.Error("Save succeeded into a read-only directory")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Errorf("stats = %+v, want 1 write error", st)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := artifact.Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.Open(file); err == nil {
		t.Error("Open on a plain file succeeded")
	}
}

// TestPathSanitized: keys carry whatever bench.CacheKey produces
// (inline kernels hash arbitrary source); the file name must stay
// inside the store directory and filesystem-safe regardless.
func TestPathSanitized(t *testing.T) {
	s, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := artifact.Key{Kernel: "../../etc/passwd ha:sh", Platform: "weird/plat form", WG: 64}
	p := s.Path(k)
	if filepath.Dir(p) != s.Dir() {
		t.Fatalf("Path %q escapes the store directory", p)
	}
	if strings.ContainsAny(filepath.Base(p), "/: ") {
		t.Errorf("Path base %q not sanitized", filepath.Base(p))
	}
}
