// Package token defines the lexical tokens of the OpenCL C subset accepted
// by the FlexCL frontend, together with source-position bookkeeping shared
// by the lexer, parser and diagnostics.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Layout mirrors go/token: literals first, then operators,
// then keywords, with marker constants bracketing each group.
const (
	ILLEGAL Kind = iota
	EOF

	literalBeg
	IDENT     // hotspot
	INTLIT    // 123, 0x7f
	FLOATLIT  // 0.5f, 1e-3
	CHARLIT   // 'a'
	STRINGLIT // "..."
	literalEnd

	operatorBeg
	ADD    // +
	SUB    // -
	MUL    // *
	QUO    // /
	REM    // %
	AND    // &
	OR     // |
	XOR    // ^
	SHL    // <<
	SHR    // >>
	LAND   // &&
	LOR    // ||
	NOT    // !
	TILDE  // ~
	ASSIGN // =

	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=

	EQ  // ==
	NEQ // !=
	LT  // <
	GT  // >
	LEQ // <=
	GEQ // >=

	INC // ++
	DEC // --

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	DOT      // .
	ARROW    // ->
	operatorEnd

	keywordBeg
	KWKERNEL   // __kernel / kernel
	KWGLOBAL   // __global / global
	KWLOCAL    // __local / local
	KWCONSTANT // __constant / constant
	KWPRIVATE  // __private / private

	KWCONST    // const
	KWRESTRICT // restrict
	KWVOLATILE // volatile
	KWUNSIGNED // unsigned
	KWSIGNED   // signed
	KWSTRUCT   // struct
	KWTYPEDEF  // typedef

	KWVOID   // void
	KWBOOL   // bool
	KWCHAR   // char
	KWSHORT  // short
	KWINT    // int
	KWLONG   // long
	KWFLOAT  // float
	KWDOUBLE // double
	KWSIZET  // size_t

	KWIF       // if
	KWELSE     // else
	KWFOR      // for
	KWWHILE    // while
	KWDO       // do
	KWRETURN   // return
	KWBREAK    // break
	KWCONTINUE // continue
	KWSWITCH   // switch
	KWCASE     // case
	KWDEFAULT  // default

	KWATTRIBUTE // __attribute__
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INTLIT:    "INTLIT",
	FLOATLIT:  "FLOATLIT",
	CHARLIT:   "CHARLIT",
	STRINGLIT: "STRINGLIT",

	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!", TILDE: "~", ASSIGN: "=",
	ADDASSIGN: "+=", SUBASSIGN: "-=", MULASSIGN: "*=", QUOASSIGN: "/=",
	REMASSIGN: "%=", ANDASSIGN: "&=", ORASSIGN: "|=", XORASSIGN: "^=",
	SHLASSIGN: "<<=", SHRASSIGN: ">>=",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	INC: "++", DEC: "--",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", COLON: ":",
	QUESTION: "?", DOT: ".", ARROW: "->",

	KWKERNEL: "__kernel", KWGLOBAL: "__global", KWLOCAL: "__local",
	KWCONSTANT: "__constant", KWPRIVATE: "__private",
	KWCONST: "const", KWRESTRICT: "restrict", KWVOLATILE: "volatile",
	KWUNSIGNED: "unsigned", KWSIGNED: "signed", KWSTRUCT: "struct",
	KWTYPEDEF: "typedef",
	KWVOID:    "void", KWBOOL: "bool", KWCHAR: "char", KWSHORT: "short",
	KWINT: "int", KWLONG: "long", KWFLOAT: "float", KWDOUBLE: "double",
	KWSIZET: "size_t",
	KWIF:    "if", KWELSE: "else", KWFOR: "for", KWWHILE: "while",
	KWDO: "do", KWRETURN: "return", KWBREAK: "break",
	KWCONTINUE: "continue", KWSWITCH: "switch", KWCASE: "case",
	KWDEFAULT:   "default",
	KWATTRIBUTE: "__attribute__",
}

// String returns the human-readable spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether the kind is an identifier or a literal constant.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether the kind is an operator or punctuation.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsAssign reports whether the kind is an assignment operator (including
// compound assignments such as +=).
func (k Kind) IsAssign() bool {
	return k == ASSIGN || (ADDASSIGN <= k && k <= SHRASSIGN)
}

// keywords maps the source spelling of every reserved word to its kind.
// OpenCL allows both the double-underscore and plain forms of the address
// space and kernel qualifiers.
var keywords = map[string]Kind{
	"__kernel": KWKERNEL, "kernel": KWKERNEL,
	"__global": KWGLOBAL, "global": KWGLOBAL,
	"__local": KWLOCAL, "local": KWLOCAL,
	"__constant": KWCONSTANT, "constant": KWCONSTANT,
	"__private": KWPRIVATE, "private": KWPRIVATE,
	"const": KWCONST, "restrict": KWRESTRICT, "__restrict": KWRESTRICT,
	"volatile": KWVOLATILE, "unsigned": KWUNSIGNED, "signed": KWSIGNED,
	"struct": KWSTRUCT, "typedef": KWTYPEDEF,
	"void": KWVOID, "bool": KWBOOL, "char": KWCHAR, "short": KWSHORT,
	"int": KWINT, "long": KWLONG, "float": KWFLOAT, "double": KWDOUBLE,
	"size_t": KWSIZET,
	"if":     KWIF, "else": KWELSE, "for": KWFOR, "while": KWWHILE,
	"do": KWDO, "return": KWRETURN, "break": KWBREAK,
	"continue": KWCONTINUE, "switch": KWSWITCH, "case": KWCASE,
	"default":       KWDEFAULT,
	"__attribute__": KWATTRIBUTE,
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not reserved.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token: its kind, original spelling and position.
type Token struct {
	Kind Kind
	Lit  string // original spelling for identifiers and literals
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return fmt.Sprintf("%v(%s)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
