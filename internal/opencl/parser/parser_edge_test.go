package parser

import (
	"strings"
	"testing"

	"repro/internal/opencl/ast"
	"repro/internal/opencl/token"
)

// mustFail asserts a parse error whose message mentions want.
func mustFail(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse("bad.cl", []byte(src), nil)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err.Error(), want)
	}
}

func TestErrorRecoveryReportsMultiple(t *testing.T) {
	src := `
__kernel void a(__global int* x) { x[0] = ; }
__kernel void b(__global int* x) { x[1] = 1; }
`
	_, err := Parse("t.cl", []byte(src), nil)
	if err == nil {
		t.Fatal("expected error")
	}
	// The error list implements error with a count suffix when several
	// diagnostics accumulate; a single clean diagnostic is fine too.
	if !strings.Contains(err.Error(), "expected expression") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMissingSemicolon(t *testing.T) {
	mustFail(t, `__kernel void k(__global int* x) { int a = 1 x[0] = a; }`, "expected")
}

func TestUnclosedBrace(t *testing.T) {
	mustFail(t, `__kernel void k(__global int* x) { if (x[0] > 0) { x[1] = 2; `, "")
}

func TestBadArrayDim(t *testing.T) {
	mustFail(t, `__kernel void k(__global int* x) { int a[; x[0] = 1; }`, "expected")
}

func TestEmptyForHeader(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
__kernel void k(__global int* x) {
    int i = 0;
    for (;;) { i++; if (i > 3) { break; } }
    x[0] = i;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	var fs *ast.ForStmt
	ast.Walk(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.ForStmt); ok {
			fs = s
		}
		return true
	})
	if fs == nil || fs.Init != nil || fs.Cond != nil || fs.Post != nil {
		t.Fatalf("empty for header misparsed: %+v", fs)
	}
}

func TestCommaOperator(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
__kernel void k(__global int* x) {
    int a;
    int b;
    for (a = 0, b = 10; a < b; a++, b--) { x[a] = b; }
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	var commas int
	ast.Walk(f, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.COMMA {
			commas++
		}
		return true
	})
	if commas != 2 {
		t.Errorf("comma ops = %d, want 2", commas)
	}
}

func TestNestedTernary(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
__kernel void k(__global int* x) {
    int v = x[0];
    x[1] = v < 0 ? -1 : v > 0 ? 1 : 0;
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Right-associative: outer Else is itself a CondExpr.
	var outer *ast.CondExpr
	ast.Walk(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CondExpr); ok && outer == nil {
			outer = c
		}
		return true
	})
	if outer == nil {
		t.Fatal("no ternary found")
	}
	if _, ok := ast.Unparen(outer.Else).(*ast.CondExpr); !ok {
		t.Errorf("ternary not right-associative: else is %T", outer.Else)
	}
}

func TestPragmaNotAttachedWhenFar(t *testing.T) {
	// An unroll pragma more than two lines above a loop must not attach.
	src := `__kernel void k(__global int* x) {
    #pragma unroll 4


    for (int i = 0; i < 8; i++) { x[i] = i; }
}`
	f, err := Parse("t.cl", []byte(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	var fs *ast.ForStmt
	ast.Walk(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.ForStmt); ok {
			fs = s
		}
		return true
	})
	if fs.Unroll != 0 {
		t.Errorf("distant pragma attached: unroll = %d", fs.Unroll)
	}
}

func TestFullUnrollPragma(t *testing.T) {
	src := `__kernel void k(__global int* x) {
    #pragma unroll
    for (int i = 0; i < 8; i++) { x[i] = i; }
}`
	f, err := Parse("t.cl", []byte(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	var fs *ast.ForStmt
	ast.Walk(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.ForStmt); ok {
			fs = s
		}
		return true
	})
	if fs.Unroll != -1 {
		t.Errorf("bare #pragma unroll should mean full unroll (-1), got %d", fs.Unroll)
	}
}

func TestPrototypeIgnored(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
float helper(float a);
float helper(float a) { return a + 1.0f; }
__kernel void k(__global float* x) { x[0] = helper(x[1]); }
`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Errorf("funcs = %d, want 2 (prototype dropped)", len(f.Funcs))
	}
}

func TestSizeTParameter(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
__kernel void k(__global float* x, size_t n) {
    size_t i = get_global_id(0);
    if (i < n) { x[i] = 0.0f; }
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := f.Kernels()[0]
	if k.Params[1].Type.Base != ast.KULong {
		t.Errorf("size_t lowered to %v", k.Params[1].Type.Base)
	}
}

func TestHexAndCharLiterals(t *testing.T) {
	f, err := Parse("t.cl", []byte(`
__kernel void k(__global int* x) {
    x[0] = 0xFF & x[1];
    x[2] = 'A';
}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	var vals []int64
	ast.Walk(f, func(n ast.Node) bool {
		if l, ok := n.(*ast.IntLit); ok {
			vals = append(vals, l.Value)
		}
		return true
	})
	has := func(v int64) bool {
		for _, x := range vals {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(255) || !has(65) {
		t.Errorf("literals = %v, want 255 and 65 present", vals)
	}
}
