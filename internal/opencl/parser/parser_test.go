package parser

import (
	"testing"

	"repro/internal/opencl/ast"
	"repro/internal/opencl/token"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

const vecAdd = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func TestVecAdd(t *testing.T) {
	f := parse(t, vecAdd)
	ks := f.Kernels()
	if len(ks) != 1 {
		t.Fatalf("expected 1 kernel, got %d", len(ks))
	}
	k := ks[0]
	if k.Name != "vadd" {
		t.Errorf("kernel name = %q", k.Name)
	}
	if len(k.Params) != 4 {
		t.Fatalf("expected 4 params, got %d", len(k.Params))
	}
	if !k.Params[0].Type.Ptr || k.Params[0].Type.Space != ast.ASGlobal {
		t.Errorf("param a type = %v", k.Params[0].Type)
	}
	if k.Params[3].Type.Ptr || k.Params[3].Type.Base != ast.KInt {
		t.Errorf("param n type = %v", k.Params[3].Type)
	}
	if len(k.Body.List) != 2 {
		t.Fatalf("expected 2 body statements, got %d", len(k.Body.List))
	}
	if _, ok := k.Body.List[0].(*ast.DeclStmt); !ok {
		t.Errorf("stmt 0 is %T, want DeclStmt", k.Body.List[0])
	}
	if _, ok := k.Body.List[1].(*ast.IfStmt); !ok {
		t.Errorf("stmt 1 is %T, want IfStmt", k.Body.List[1])
	}
}

func TestAttributes(t *testing.T) {
	src := `
__kernel __attribute__((reqd_work_group_size(16, 16, 1)))
void k(__global float* x) { x[0] = 1.0f; }
`
	f := parse(t, src)
	k := f.Kernels()[0]
	dims, ok := k.ReqdWorkGroupSize()
	if !ok {
		t.Fatal("reqd_work_group_size not found")
	}
	if dims != [3]int64{16, 16, 1} {
		t.Errorf("dims = %v", dims)
	}
}

func TestLocalArrayDecl(t *testing.T) {
	src := `
__kernel void k(__global float* x) {
    __local float tile[16][17];
    int lid = get_local_id(0);
    tile[lid][0] = x[lid];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[lid] = tile[0][lid];
}
`
	f := parse(t, src)
	k := f.Kernels()[0]
	d, ok := k.Body.List[0].(*ast.DeclStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", k.Body.List[0])
	}
	if d.Space != ast.ASLocal {
		t.Errorf("tile space = %v, want __local", d.Space)
	}
	if len(d.ArrayLen) != 2 {
		t.Errorf("tile dims = %d, want 2", len(d.ArrayLen))
	}
	var sawBarrier bool
	for _, s := range k.Body.List {
		if b, ok := s.(*ast.BarrierStmt); ok {
			sawBarrier = true
			if !b.Local || b.Global {
				t.Errorf("barrier flags local=%v global=%v", b.Local, b.Global)
			}
		}
	}
	if !sawBarrier {
		t.Error("barrier statement not recognized")
	}
}

func TestForLoopWithUnrollPragma(t *testing.T) {
	src := `
__kernel void k(__global int* x, int n) {
    int acc = 0;
    #pragma unroll 4
    for (int i = 0; i < n; i++) {
        acc += x[i];
    }
    x[0] = acc;
}
`
	f := parse(t, src)
	k := f.Kernels()[0]
	var forStmt *ast.ForStmt
	ast.Walk(k, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			forStmt = fs
		}
		return true
	})
	if forStmt == nil {
		t.Fatal("for loop not found")
	}
	if forStmt.Unroll != 4 {
		t.Errorf("unroll = %d, want 4", forStmt.Unroll)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `__kernel void k(__global int* x) { x[0] = 1 + 2 * 3; }`
	f := parse(t, src)
	var assign *ast.AssignExpr
	ast.Walk(f, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignExpr); ok {
			assign = a
		}
		return true
	})
	add, ok := assign.RHS.(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		t.Fatalf("rhs = %T, want +", assign.RHS)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		t.Fatalf("rhs.Y = %T, want *", add.Y)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	src := `__kernel void k(__global float* x, int n) {
        float v = x[0];
        v *= 2.0f;
        x[0] = v > 0.0f ? v : -v;
    }`
	f := parse(t, src)
	var conds, compounds int
	ast.Walk(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CondExpr:
			conds++
		case *ast.AssignExpr:
			if e.Op == token.MULASSIGN {
				compounds++
			}
		}
		return true
	})
	if conds != 1 || compounds != 1 {
		t.Errorf("conds=%d compounds=%d", conds, compounds)
	}
}

func TestVectorTypesAndSwizzles(t *testing.T) {
	src := `__kernel void k(__global float4* x) {
        float4 v = x[0];
        float2 lohi = v.xy;
        x[0].x = lohi.y;
    }`
	f := parse(t, src)
	var members int
	ast.Walk(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.MemberExpr); ok {
			members++
		}
		return true
	})
	if members != 3 {
		t.Errorf("member exprs = %d, want 3", members)
	}
}

func TestVecLit(t *testing.T) {
	src := `__kernel void k(__global float4* x) { x[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f); }`
	f := parse(t, src)
	var lit *ast.VecLit
	ast.Walk(f, func(n ast.Node) bool {
		if v, ok := n.(*ast.VecLit); ok {
			lit = v
		}
		return true
	})
	if lit == nil {
		t.Fatal("vector literal not found")
	}
	if len(lit.Elems) != 4 || lit.To.Vec != 4 {
		t.Errorf("lit = %+v", lit)
	}
}

func TestCasts(t *testing.T) {
	src := `__kernel void k(__global float* x, __global int* y) {
        x[0] = (float)y[0];
        y[1] = (int)(x[1] * 2.0f);
    }`
	f := parse(t, src)
	var casts int
	ast.Walk(f, func(n ast.Node) bool {
		if _, ok := n.(*ast.CastExpr); ok {
			casts++
		}
		return true
	})
	if casts != 2 {
		t.Errorf("casts = %d, want 2", casts)
	}
}

func TestWhileDoWhile(t *testing.T) {
	src := `__kernel void k(__global int* x) {
        int i = 0;
        while (i < 10) { i++; }
        do { i--; } while (i > 0);
        x[0] = i;
    }`
	f := parse(t, src)
	var w, dw int
	ast.Walk(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.WhileStmt:
			w++
		case *ast.DoWhileStmt:
			dw++
		}
		return true
	})
	if w != 1 || dw != 1 {
		t.Errorf("while=%d dowhile=%d", w, dw)
	}
}

func TestMultiDeclarator(t *testing.T) {
	src := `__kernel void k(__global int* x) { int a = 1, b = 2, c; c = a + b; x[0] = c; }`
	f := parse(t, src)
	k := f.Kernels()[0]
	decls := 0
	for _, s := range k.Body.List {
		if _, ok := s.(*ast.DeclStmt); ok {
			decls++
		}
	}
	if decls != 3 {
		t.Errorf("decls = %d, want 3", decls)
	}
}

func TestHelperFunction(t *testing.T) {
	src := `
float square(float v) { return v * v; }
__kernel void k(__global float* x) { x[0] = square(x[0]); }
`
	f := parse(t, src)
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(f.Funcs))
	}
	if f.Funcs[0].IsKernel {
		t.Error("helper marked as kernel")
	}
	if len(f.Kernels()) != 1 {
		t.Error("kernel count wrong")
	}
}

func TestBreakContinueReturn(t *testing.T) {
	src := `__kernel void k(__global int* x, int n) {
        for (int i = 0; i < n; i++) {
            if (x[i] < 0) { continue; }
            if (x[i] == 0) { break; }
        }
        return;
    }`
	f := parse(t, src)
	var br, cont, ret int
	ast.Walk(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BreakStmt:
			br++
		case *ast.ContinueStmt:
			cont++
		case *ast.ReturnStmt:
			ret++
		}
		return true
	})
	if br != 1 || cont != 1 || ret != 1 {
		t.Errorf("break=%d continue=%d return=%d", br, cont, ret)
	}
}

func TestSyntaxErrorReported(t *testing.T) {
	_, err := Parse("bad.cl", []byte("__kernel void k( {"), nil)
	if err == nil {
		t.Fatal("expected a parse error")
	}
}

func TestDefinesArgument(t *testing.T) {
	src := `__kernel void k(__global int* x) { __local int t[TSIZE]; t[0] = 1; x[0] = t[0]; }`
	f, err := Parse("t.cl", []byte(src), map[string]string{"TSIZE": "64"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d := f.Kernels()[0].Body.List[0].(*ast.DeclStmt)
	lit, ok := d.ArrayLen[0].(*ast.IntLit)
	if !ok || lit.Value != 64 {
		t.Errorf("array len = %v", d.ArrayLen[0])
	}
}

func TestUnsignedTypes(t *testing.T) {
	src := `__kernel void k(__global unsigned int* x, __global uint* y) {
        unsigned int a = x[0];
        uint b = y[0];
        x[1] = a + b;
    }`
	f := parse(t, src)
	k := f.Kernels()[0]
	if k.Params[0].Type.Base != ast.KUInt {
		t.Errorf("param0 base = %v", k.Params[0].Type.Base)
	}
	if k.Params[1].Type.Base != ast.KUInt {
		t.Errorf("param1 base = %v", k.Params[1].Type.Base)
	}
}

func TestPointerDerefAndAddressOf(t *testing.T) {
	src := `__kernel void k(__global int* x) { *x = 5; int v = *(x + 1); x[2] = v; }`
	f := parse(t, src)
	var derefs int
	ast.Walk(f, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.MUL {
			derefs++
		}
		return true
	})
	if derefs != 2 {
		t.Errorf("derefs = %d, want 2", derefs)
	}
}
