package parser_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/opencl/parser"
)

// FuzzParser complements FuzzParse (same invariant: parse must return
// cleanly, never panic or hang) with the realistic end of the input
// space: the seed corpus is every bundled Rodinia/PolyBench kernel
// source, so the fuzzer mutates working OpenCL instead of rediscovering
// its grammar from fragments. It lives in an external test package
// because importing the benchmark registry from `package parser` would
// be an import cycle. Run continuously with
// `go test -run='^$' -fuzz=FuzzParser ./internal/opencl/parser`.
func FuzzParser(f *testing.F) {
	for _, k := range bench.All() {
		f.Add([]byte(k.Source))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		// The WG macro is normally predefined by the compile driver;
		// parsing without it must still degrade to diagnostics, and the
		// defined case must not behave differently panic-wise.
		for _, defines := range []map[string]string{nil, {"WG": "64"}} {
			file, err := parser.Parse("fuzz.cl", src, defines)
			if err == nil && file == nil {
				t.Fatal("nil file without error")
			}
		}
	})
}
