package parser

import (
	"testing"
)

// FuzzParse exercises the whole frontend path on arbitrary input: the
// parser must return cleanly (source + diagnostics) and never panic or
// hang. Run with `go test -fuzz=FuzzParse ./internal/opencl/parser` for
// continuous fuzzing; the seed corpus below runs on every `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"__kernel void k() {}",
		"__kernel void k(__global float* x) { x[0] = 1.0f; }",
		"__kernel void k(__global int* x) { for (int i = 0; i < 4; i++) { x[i] = i; } }",
		"__kernel void k(__global int* x) { switch (x[0]) { case 1: break; default: x[1] = 2; } }",
		"#define N 4\n__kernel void k(__global int* x) { x[N] = N; }",
		"float f(float a) { return a * a; }",
		"__kernel void k(__global float4* v) { v[0].xyzw = v[1]; }",
		// Truncated and malformed fragments.
		"__kernel void k(",
		"__kernel void k(__global int* x) { x[0] = ",
		"for while do switch",
		"((((((((((",
		"__kernel __kernel __kernel",
		"int a[;",
		"#pragma unroll\n#pragma unroll 4",
		"#ifdef A\n__kernel void k() {}\n",
		"x \xff\xfe\x00 y",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		// Must terminate without panicking; errors are expected.
		f, err := Parse("fuzz.cl", src, nil)
		if err == nil && f == nil {
			t.Fatal("nil file without error")
		}
	})
}
