// Package parser implements a recursive-descent parser for the OpenCL C
// subset used by FlexCL. It consumes the token stream of the lexer and
// produces the package ast representation, attaching #pragma unroll hints
// to the loops that follow them.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/opencl/ast"
	"repro/internal/opencl/lexer"
	"repro/internal/opencl/token"
)

// Error is a syntax diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

// Parse tokenizes and parses one OpenCL source buffer. defines predefines
// object-like macros (as with -D on a compiler command line).
func Parse(file string, src []byte, defines map[string]string) (*ast.File, error) {
	lx := lexer.New(file, src)
	for k, v := range defines {
		lx.Define(k, v)
	}
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		list := make(ErrorList, len(errs))
		for i, e := range errs {
			list[i] = &Error{Pos: e.Pos, Msg: e.Msg}
		}
		return nil, list
	}
	p := &parser{toks: toks, pragmas: lx.Pragmas(), file: file}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return nil, p.errs
	}
	return f, nil
}

type parser struct {
	toks    []token.Token
	pos     int
	pragmas []lexer.Pragma
	file    string
	errs    ErrorList
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %v, found %v", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 20 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// sync skips tokens until a likely statement boundary after an error.
func (p *parser) sync() {
	for !p.at(token.EOF) {
		k := p.next().Kind
		if k == token.SEMI || k == token.RBRACE {
			return
		}
	}
}

// unrollHintBefore returns the unroll factor from a "#pragma unroll [N]"
// whose line immediately precedes (or is within 2 lines of) the loop.
func (p *parser) unrollHintBefore(pos token.Pos) int {
	for _, pr := range p.pragmas {
		if pr.Pos.Line < pos.Line && pos.Line-pr.Pos.Line <= 2 {
			fields := strings.Fields(pr.Text)
			if len(fields) >= 1 && fields[0] == "unroll" {
				if len(fields) >= 2 {
					if n, err := strconv.Atoi(fields[1]); err == nil {
						return n
					}
				}
				return -1 // full unroll
			}
		}
	}
	return 0
}

// ---- Types ----

// vecSuffix recognizes OpenCL vector type spellings like float4, int16.
func vecSuffix(name string) (ast.BaseKind, int, bool) {
	bases := map[string]ast.BaseKind{
		"char": ast.KChar, "uchar": ast.KUChar, "short": ast.KShort,
		"ushort": ast.KUShort, "int": ast.KInt, "uint": ast.KUInt,
		"long": ast.KLong, "ulong": ast.KULong, "float": ast.KFloat,
		"double": ast.KDouble,
	}
	for b, k := range bases {
		if strings.HasPrefix(name, b) {
			suf := name[len(b):]
			if suf == "" {
				return k, 1, true
			}
			switch suf {
			case "2", "3", "4", "8", "16":
				n, _ := strconv.Atoi(suf)
				return k, n, true
			}
		}
	}
	return 0, 0, false
}

// startsType reports whether the current token can begin a type.
func (p *parser) startsType() bool {
	switch p.cur().Kind {
	case token.KWVOID, token.KWBOOL, token.KWCHAR, token.KWSHORT, token.KWINT,
		token.KWLONG, token.KWFLOAT, token.KWDOUBLE, token.KWSIZET,
		token.KWUNSIGNED, token.KWSIGNED, token.KWCONST, token.KWVOLATILE,
		token.KWGLOBAL, token.KWLOCAL, token.KWCONSTANT, token.KWPRIVATE:
		return true
	case token.IDENT:
		name := p.cur().Lit
		if _, _, ok := vecSuffix(name); ok {
			// Scalar names like "int" are keywords; only multi-lane
			// spellings (uchar, uint, float4, ...) reach here.
			return true
		}
	}
	return false
}

// parseType parses [addr-space] [const] base [*] ... Returns the type and
// whether an explicit address space qualifier appeared.
func (p *parser) parseType() (ast.Type, bool) {
	space := ast.ASPrivate
	sawSpace := false
	isConst := false
	unsigned := false

	for {
		switch p.cur().Kind {
		case token.KWGLOBAL:
			space, sawSpace = ast.ASGlobal, true
			p.next()
			continue
		case token.KWLOCAL:
			space, sawSpace = ast.ASLocal, true
			p.next()
			continue
		case token.KWCONSTANT:
			space, sawSpace = ast.ASConstant, true
			p.next()
			continue
		case token.KWPRIVATE:
			space, sawSpace = ast.ASPrivate, true
			p.next()
			continue
		case token.KWCONST:
			isConst = true
			p.next()
			continue
		case token.KWVOLATILE, token.KWRESTRICT:
			p.next()
			continue
		case token.KWUNSIGNED:
			unsigned = true
			p.next()
			continue
		case token.KWSIGNED:
			p.next()
			continue
		}
		break
	}

	base := ast.KInt
	lanes := 1
	switch p.cur().Kind {
	case token.KWVOID:
		base = ast.KVoid
		p.next()
	case token.KWBOOL:
		base = ast.KBool
		p.next()
	case token.KWCHAR:
		base = ast.KChar
		p.next()
	case token.KWSHORT:
		base = ast.KShort
		p.next()
	case token.KWINT:
		base = ast.KInt
		p.next()
	case token.KWLONG:
		base = ast.KLong
		p.next()
		p.accept(token.KWLONG) // "long long"
		p.accept(token.KWINT)  // "long int"
	case token.KWFLOAT:
		base = ast.KFloat
		p.next()
	case token.KWDOUBLE:
		base = ast.KDouble
		p.next()
	case token.KWSIZET:
		base = ast.KULong
		p.next()
	case token.IDENT:
		if b, n, ok := vecSuffix(p.cur().Lit); ok {
			base, lanes = b, n
			p.next()
		} else if unsigned {
			// bare "unsigned x" — leave base as int
		} else {
			p.errorf(p.cur().Pos, "expected type, found %v", p.cur())
			p.next()
		}
	default:
		if !unsigned {
			p.errorf(p.cur().Pos, "expected type, found %v", p.cur())
		}
	}
	if unsigned {
		switch base {
		case ast.KChar:
			base = ast.KUChar
		case ast.KShort:
			base = ast.KUShort
		case ast.KInt:
			base = ast.KUInt
		case ast.KLong:
			base = ast.KULong
		}
	}

	t := ast.Type{Base: base, Vec: lanes, Const: isConst}
	for p.at(token.MUL) {
		p.next()
		t.Ptr = true
		t.Space = space
		// const/restrict/volatile after '*'
		for p.at(token.KWCONST) || p.at(token.KWRESTRICT) || p.at(token.KWVOLATILE) {
			p.next()
		}
	}
	if !t.Ptr && sawSpace {
		t.Space = space
	}
	return t, sawSpace
}

// ---- Top level ----

func (p *parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file}
	for _, pr := range p.pragmas {
		f.Pragmas = append(f.Pragmas, ast.Pragma{Position: pr.Pos, Text: pr.Text})
	}
	for !p.at(token.EOF) {
		fn := p.parseFunc()
		if fn != nil {
			f.Funcs = append(f.Funcs, fn)
		}
		if len(p.errs) >= 20 {
			break
		}
	}
	return f
}

func (p *parser) parseAttrs() []ast.Attr {
	var attrs []ast.Attr
	for p.at(token.KWATTRIBUTE) {
		p.next()
		p.expect(token.LPAREN)
		p.expect(token.LPAREN)
		for !p.at(token.RPAREN) && !p.at(token.EOF) {
			a := ast.Attr{Name: p.expect(token.IDENT).Lit}
			if p.accept(token.LPAREN) {
				for !p.at(token.RPAREN) && !p.at(token.EOF) {
					t := p.next()
					if t.Kind == token.INTLIT {
						v, _ := strconv.ParseInt(t.Lit, 0, 64)
						a.Args = append(a.Args, v)
					}
					if !p.accept(token.COMMA) && !p.at(token.RPAREN) {
						break
					}
				}
				p.expect(token.RPAREN)
			}
			attrs = append(attrs, a)
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.expect(token.RPAREN)
	}
	return attrs
}

func (p *parser) parseFunc() *ast.FuncDecl {
	pos := p.cur().Pos
	isKernel := false
	var attrs []ast.Attr
	for {
		switch {
		case p.at(token.KWKERNEL):
			isKernel = true
			p.next()
		case p.at(token.KWATTRIBUTE):
			attrs = append(attrs, p.parseAttrs()...)
		default:
			goto qualsDone
		}
	}
qualsDone:
	ret, _ := p.parseType()
	name := p.expect(token.IDENT).Lit
	fn := &ast.FuncDecl{
		Position: pos, Name: name, IsKernel: isKernel, Attrs: attrs, Ret: ret,
	}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		ppos := p.cur().Pos
		pt, _ := p.parseType()
		pname := ""
		if p.at(token.IDENT) {
			pname = p.next().Lit
		}
		// Array parameter notation a[] decays to a pointer.
		if p.accept(token.LBRACK) {
			for !p.at(token.RBRACK) && !p.at(token.EOF) {
				p.next()
			}
			p.expect(token.RBRACK)
			pt = ast.Pointer(pt, pt.Space)
		}
		fn.Params = append(fn.Params, &ast.ParamDecl{Position: ppos, Name: pname, Type: pt})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	if p.accept(token.SEMI) {
		return nil // prototype only; ignored
	}
	fn.Body = p.parseBlock()
	return fn
}

// ---- Statements ----

func (p *parser) parseBlock() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{Position: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		b.List = append(b.List, p.parseStmts()...)
		if p.pos == before { // no progress: bail out of a bad construct
			p.sync()
		}
	}
	p.expect(token.RBRACE)
	return b
}

// parseStmts parses one statement; declarations with several declarators
// expand to several DeclStmts, hence the slice.
func (p *parser) parseStmts() []ast.Stmt {
	switch p.cur().Kind {
	case token.LBRACE:
		return []ast.Stmt{p.parseBlock()}
	case token.SEMI:
		pos := p.next().Pos
		return []ast.Stmt{&ast.EmptyStmt{Position: pos}}
	case token.KWIF:
		return []ast.Stmt{p.parseIf()}
	case token.KWFOR:
		return []ast.Stmt{p.parseFor()}
	case token.KWWHILE:
		return []ast.Stmt{p.parseWhile()}
	case token.KWDO:
		return []ast.Stmt{p.parseDoWhile()}
	case token.KWRETURN:
		pos := p.next().Pos
		s := &ast.ReturnStmt{Position: pos}
		if !p.at(token.SEMI) {
			s.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		return []ast.Stmt{s}
	case token.KWSWITCH:
		return []ast.Stmt{p.parseSwitch()}
	case token.KWBREAK:
		pos := p.next().Pos
		p.expect(token.SEMI)
		return []ast.Stmt{&ast.BreakStmt{Position: pos}}
	case token.KWCONTINUE:
		pos := p.next().Pos
		p.expect(token.SEMI)
		return []ast.Stmt{&ast.ContinueStmt{Position: pos}}
	}
	if p.startsType() && !p.typeIsCastHere() {
		return p.parseDecl()
	}
	// barrier(...) as a statement.
	if p.at(token.IDENT) && p.cur().Lit == "barrier" && p.peek().Kind == token.LPAREN {
		return []ast.Stmt{p.parseBarrier()}
	}
	pos := p.cur().Pos
	x := p.parseExpr()
	p.expect(token.SEMI)
	return []ast.Stmt{&ast.ExprStmt{Position: pos, X: x}}
}

// typeIsCastHere disambiguates "(int)x" style casts at statement level —
// statements never begin with '(' followed by a type in this subset, so a
// type token at statement start is always a declaration. Kept for clarity.
func (p *parser) typeIsCastHere() bool { return false }

func (p *parser) parseBarrier() ast.Stmt {
	pos := p.next().Pos // 'barrier'
	p.expect(token.LPAREN)
	s := &ast.BarrierStmt{Position: pos}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		t := p.next()
		if t.Kind == token.IDENT {
			switch t.Lit {
			case "CLK_LOCAL_MEM_FENCE":
				s.Local = true
			case "CLK_GLOBAL_MEM_FENCE":
				s.Global = true
			}
		}
	}
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	if !s.Local && !s.Global {
		s.Local = true
	}
	return s
}

func (p *parser) parseDecl() []ast.Stmt {
	pos := p.cur().Pos
	baseT, _ := p.parseType()
	var out []ast.Stmt
	for {
		dpos := pos
		if p.at(token.IDENT) {
			dpos = p.cur().Pos
		}
		name := p.expect(token.IDENT).Lit
		d := &ast.DeclStmt{Position: dpos, Name: name, Type: baseT, Space: baseT.Space}
		for p.accept(token.LBRACK) {
			d.ArrayLen = append(d.ArrayLen, p.parseExpr())
			p.expect(token.RBRACK)
		}
		if p.accept(token.ASSIGN) {
			d.Init = p.parseAssignExpr()
		}
		out = append(out, d)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return out
}

func (p *parser) parseSwitch() ast.Stmt {
	pos := p.next().Pos // 'switch'
	p.expect(token.LPAREN)
	s := &ast.SwitchStmt{Position: pos, Cond: p.parseExpr()}
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		cpos := p.cur().Pos
		var vals []ast.Expr
		switch {
		case p.accept(token.KWCASE):
			vals = append(vals, p.parseCondExpr())
			p.expect(token.COLON)
			// Adjacent labels share one body: case 1: case 2: body.
			for p.at(token.KWCASE) {
				p.next()
				vals = append(vals, p.parseCondExpr())
				p.expect(token.COLON)
			}
		case p.accept(token.KWDEFAULT):
			p.expect(token.COLON)
		default:
			p.errorf(p.cur().Pos, "expected case or default, found %v", p.cur())
			p.sync()
			continue
		}
		var body []ast.Stmt
		for !p.at(token.KWCASE) && !p.at(token.KWDEFAULT) &&
			!p.at(token.RBRACE) && !p.at(token.EOF) {
			before := p.pos
			body = append(body, p.parseStmts()...)
			if p.pos == before {
				p.sync()
				break
			}
		}
		s.Cases = append(s.Cases, ast.SwitchCase{Position: cpos, Vals: vals, Body: body})
	}
	p.expect(token.RBRACE)
	return s
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.next().Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	s := &ast.IfStmt{Position: pos, Cond: cond}
	s.Then = p.stmtOrBlock()
	if p.accept(token.KWELSE) {
		s.Else = p.stmtOrBlock()
	}
	return s
}

// stmtOrBlock parses a single statement body, wrapping multi-declarator
// declarations in a block.
func (p *parser) stmtOrBlock() ast.Stmt {
	ss := p.parseStmts()
	if len(ss) == 1 {
		return ss[0]
	}
	return &ast.BlockStmt{Position: ss[0].Pos(), List: ss}
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.next().Pos
	unroll := p.unrollHintBefore(pos)
	p.expect(token.LPAREN)
	s := &ast.ForStmt{Position: pos, Unroll: unroll}
	if !p.at(token.SEMI) {
		if p.startsType() {
			decls := p.parseDecl() // consumes the ';'
			if len(decls) == 1 {
				s.Init = decls[0]
			} else {
				s.Init = &ast.BlockStmt{Position: pos, List: decls}
			}
		} else {
			x := p.parseExpr()
			s.Init = &ast.ExprStmt{Position: x.Pos(), X: x}
			p.expect(token.SEMI)
		}
	} else {
		p.next()
	}
	if !p.at(token.SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		s.Post = p.parseExpr()
	}
	p.expect(token.RPAREN)
	s.Body = p.stmtOrBlock()
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.next().Pos
	unroll := p.unrollHintBefore(pos)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	return &ast.WhileStmt{Position: pos, Cond: cond, Body: p.stmtOrBlock(), Unroll: unroll}
}

func (p *parser) parseDoWhile() ast.Stmt {
	pos := p.next().Pos
	body := p.stmtOrBlock()
	p.expect(token.KWWHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return &ast.DoWhileStmt{Position: pos, Cond: cond, Body: body}
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() ast.Expr {
	x := p.parseAssignExpr()
	for p.at(token.COMMA) {
		// Comma operator: evaluate left, result is right. Model as a
		// binary op so irgen can emit both sides.
		pos := p.next().Pos
		y := p.parseAssignExpr()
		x = &ast.BinaryExpr{Position: pos, Op: token.COMMA, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAssignExpr() ast.Expr {
	x := p.parseCondExpr()
	if p.cur().Kind.IsAssign() {
		op := p.next()
		rhs := p.parseAssignExpr()
		return &ast.AssignExpr{Position: op.Pos, Op: op.Kind, LHS: x, RHS: rhs}
	}
	return x
}

func (p *parser) parseCondExpr() ast.Expr {
	cond := p.parseBinaryExpr(1)
	if p.at(token.QUESTION) {
		pos := p.next().Pos
		then := p.parseAssignExpr()
		p.expect(token.COLON)
		els := p.parseCondExpr()
		return &ast.CondExpr{Position: pos, Cond: cond, Then: then, Else: els}
	}
	return cond
}

// binPrec returns the precedence of binary operator k (higher binds
// tighter), or 0 if k is not a binary operator.
func binPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.OR:
		return 3
	case token.XOR:
		return 4
	case token.AND:
		return 5
	case token.EQ, token.NEQ:
		return 6
	case token.LT, token.GT, token.LEQ, token.GEQ:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.ADD, token.SUB:
		return 9
	case token.MUL, token.QUO, token.REM:
		return 10
	}
	return 0
}

func (p *parser) parseBinaryExpr(minPrec int) ast.Expr {
	x := p.parseUnaryExpr()
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &ast.BinaryExpr{Position: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnaryExpr() ast.Expr {
	switch p.cur().Kind {
	case token.ADD, token.SUB, token.NOT, token.TILDE, token.MUL, token.AND:
		op := p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{Position: op.Pos, Op: op.Kind, X: x}
	case token.INC, token.DEC:
		op := p.next()
		x := p.parseUnaryExpr()
		return &ast.UnaryExpr{Position: op.Pos, Op: op.Kind, X: x}
	case token.LPAREN:
		// Cast, vector literal, or parenthesized expression.
		save := p.pos
		pos := p.next().Pos
		if p.startsType() {
			t, _ := p.parseType()
			if p.accept(token.RPAREN) {
				if p.at(token.LPAREN) && t.Vec >= 2 {
					// (float4)(a,b,c,d) vector literal
					p.next()
					v := &ast.VecLit{Position: pos, To: t}
					for !p.at(token.RPAREN) && !p.at(token.EOF) {
						v.Elems = append(v.Elems, p.parseAssignExpr())
						if !p.accept(token.COMMA) {
							break
						}
					}
					p.expect(token.RPAREN)
					return v
				}
				x := p.parseUnaryExpr()
				return &ast.CastExpr{Position: pos, To: t, X: x}
			}
			// Not a cast after all; rewind.
			p.pos = save
		} else {
			p.pos = save
		}
		p.next() // '('
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return p.parsePostfix(&ast.ParenExpr{Position: pos, X: x})
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		if p.at(token.LPAREN) {
			p.next()
			c := &ast.CallExpr{Position: t.Pos, Fun: t.Lit}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				c.Args = append(c.Args, p.parseAssignExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return c
		}
		return &ast.Ident{Position: t.Pos, Name: t.Lit}
	case token.INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			// Out-of-range positive literal; reparse as unsigned.
			u, uerr := strconv.ParseUint(t.Lit, 0, 64)
			if uerr != nil {
				p.errorf(t.Pos, "bad integer literal %q", t.Lit)
			}
			v = int64(u)
		}
		return &ast.IntLit{Position: t.Pos, Value: v}
	case token.FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q", t.Lit)
		}
		return &ast.FloatLit{Position: t.Pos, Value: v}
	case token.CHARLIT:
		p.next()
		var v int64
		if len(t.Lit) > 0 {
			v = int64(t.Lit[0])
		}
		return &ast.IntLit{Position: t.Pos, Value: v}
	}
	p.errorf(t.Pos, "expected expression, found %v", t)
	p.next()
	return &ast.IntLit{Position: t.Pos, Value: 0}
}

func (p *parser) parsePostfix(x ast.Expr) ast.Expr {
	for {
		switch p.cur().Kind {
		case token.LBRACK:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{Position: pos, X: x, Index: idx}
		case token.DOT:
			pos := p.next().Pos
			sel := p.expect(token.IDENT).Lit
			x = &ast.MemberExpr{Position: pos, X: x, Sel: sel}
		case token.INC, token.DEC:
			op := p.next()
			x = &ast.UnaryExpr{Position: op.Pos, Op: op.Kind, X: x, Postfix: true}
		default:
			return x
		}
	}
}
