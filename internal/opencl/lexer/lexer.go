// Package lexer implements the scanner for the OpenCL C subset used by
// FlexCL. It strips comments, processes a small set of preprocessor
// directives (#define of object-like macros, #undef, #ifdef/#ifndef/#else/
// #endif, #pragma), and produces a stream of tokens for the parser.
//
// Pragmas are not part of the token stream; they are collected with their
// source lines so the parser can attach loop-unroll and pipeline hints to
// the statements that follow them.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/opencl/token"
)

// Pragma is one #pragma directive encountered during scanning.
type Pragma struct {
	Pos  token.Pos
	Text string // directive text after "#pragma", trimmed
}

// Error is a lexical diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// Lexer scans a single OpenCL source buffer.
type Lexer struct {
	src     []byte
	file    string
	off     int
	line    int
	col     int
	pragmas []Pragma
	errs    []*Error

	macros map[string][]token.Token // object-like macros
	conds  []bool                   // #ifdef nesting: whether branch is active
	// pending holds tokens spliced in by macro expansion, consumed before
	// the underlying source advances.
	pending []token.Token
	// expanding guards against self-referential macros.
	expanding map[string]bool
}

// New returns a Lexer over src. The file name is used in positions only.
func New(file string, src []byte) *Lexer {
	return &Lexer{
		src:       src,
		file:      file,
		line:      1,
		col:       1,
		macros:    make(map[string][]token.Token),
		expanding: make(map[string]bool),
	}
}

// Pragmas returns the #pragma directives seen so far, in source order.
func (l *Lexer) Pragmas() []Pragma { return l.pragmas }

// Errors returns the lexical diagnostics accumulated so far.
func (l *Lexer) Errors() []*Error { return l.errs }

// Define predefines an object-like macro expanding to a single integer
// literal; it mirrors -D on a compiler command line.
func (l *Lexer) Define(name, value string) {
	l.macros[name] = []token.Token{{Kind: token.INTLIT, Lit: value}}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByteAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// active reports whether tokens at the current point survive conditional
// compilation.
func (l *Lexer) active() bool {
	for _, a := range l.conds {
		if !a {
			return false
		}
	}
	return true
}

// skipSpaceAndComments consumes whitespace, comments and preprocessor
// directives. It returns false at end of input.
func (l *Lexer) skipSpaceAndComments() bool {
	for {
		c := l.peekByte()
		switch {
		case c == 0:
			return false
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '\\' && l.peekByteAt(1) == '\n':
			l.advance()
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.peekByte() == 0 {
					l.errorf(start, "unterminated block comment")
					return false
				}
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '#' && l.col == colOfLineStart(l):
			l.directive()
		case !l.active():
			// Inside a false conditional branch: consume until the next
			// line so directives still get seen.
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.advance()
			}
		default:
			return true
		}
	}
}

// colOfLineStart reports the column at which a directive '#' may appear.
// We allow leading whitespace before '#', so compute whether everything
// before the current offset on this line is whitespace.
func colOfLineStart(l *Lexer) int {
	// Walk backwards from l.off to the previous newline.
	i := l.off - 1
	for i >= 0 && l.src[i] != '\n' {
		if l.src[i] != ' ' && l.src[i] != '\t' && l.src[i] != '\r' {
			return -1 // something non-blank precedes '#': not a directive
		}
		i--
	}
	return l.col
}

// directive parses one preprocessor line starting at '#'.
func (l *Lexer) directive() {
	pos := l.pos()
	l.advance() // '#'
	rest := l.readLogicalLine()
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return
	}
	name, args := fields[0], strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	switch name {
	case "pragma":
		if l.active() {
			l.pragmas = append(l.pragmas, Pragma{Pos: pos, Text: args})
		}
	case "define":
		if !l.active() {
			return
		}
		if len(fields) < 2 {
			l.errorf(pos, "#define requires a name")
			return
		}
		macro := fields[1]
		if strings.Contains(macro, "(") {
			l.errorf(pos, "function-like macros are not supported: %s", macro)
			return
		}
		body := strings.TrimSpace(strings.TrimPrefix(args, macro))
		l.macros[macro] = lexMacroBody(l.file, body)
	case "undef":
		if l.active() && len(fields) >= 2 {
			delete(l.macros, fields[1])
		}
	case "ifdef":
		_, defined := l.macros[strings.TrimSpace(args)]
		l.conds = append(l.conds, defined)
	case "ifndef":
		_, defined := l.macros[strings.TrimSpace(args)]
		l.conds = append(l.conds, !defined)
	case "if":
		// Only the forms "#if 0" and "#if 1" are supported.
		switch strings.TrimSpace(args) {
		case "0":
			l.conds = append(l.conds, false)
		case "1":
			l.conds = append(l.conds, true)
		default:
			l.errorf(pos, "unsupported #if condition %q (only 0/1)", args)
			l.conds = append(l.conds, true)
		}
	case "else":
		if len(l.conds) == 0 {
			l.errorf(pos, "#else without #if")
			return
		}
		l.conds[len(l.conds)-1] = !l.conds[len(l.conds)-1]
	case "endif":
		if len(l.conds) == 0 {
			l.errorf(pos, "#endif without #if")
			return
		}
		l.conds = l.conds[:len(l.conds)-1]
	case "include":
		// Headers are not resolved; OpenCL kernels in this corpus are
		// self-contained. The directive is ignored.
	default:
		l.errorf(pos, "unsupported preprocessor directive #%s", name)
	}
}

// readLogicalLine consumes the remainder of the current line, honouring
// backslash-newline continuation, and returns it.
func (l *Lexer) readLogicalLine() string {
	var sb strings.Builder
	for {
		c := l.peekByte()
		if c == 0 || c == '\n' {
			break
		}
		if c == '\\' && l.peekByteAt(1) == '\n' {
			l.advance()
			l.advance()
			sb.WriteByte(' ')
			continue
		}
		if c == '/' && l.peekByteAt(1) == '/' {
			for l.peekByte() != '\n' && l.peekByte() != 0 {
				l.advance()
			}
			break
		}
		sb.WriteByte(l.advance())
	}
	return sb.String()
}

// lexMacroBody tokenizes the replacement list of an object-like macro.
func lexMacroBody(file, body string) []token.Token {
	sub := New(file, []byte(body))
	var toks []token.Token
	for {
		t := sub.Next()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks
}

// Next returns the next token, expanding macros.
func (l *Lexer) Next() token.Token {
	for {
		if len(l.pending) > 0 {
			t := l.pending[0]
			l.pending = l.pending[1:]
			return t
		}
		t := l.scan()
		if t.Kind == token.IDENT {
			if body, ok := l.macros[t.Lit]; ok && !l.expanding[t.Lit] {
				// Splice the replacement list, rewriting positions to the
				// expansion site so diagnostics point at the use.
				out := make([]token.Token, len(body))
				for i, bt := range body {
					bt.Pos = t.Pos
					out[i] = bt
				}
				l.pending = append(out, l.pending...)
				continue
			}
		}
		return t
	}
}

// All tokenizes the remaining input to EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// scan produces one raw token from the source.
func (l *Lexer) scan() token.Token {
	if !l.skipSpaceAndComments() {
		return token.Token{Kind: token.EOF, Pos: l.pos()}
	}
	pos := l.pos()
	c := l.peekByte()

	switch {
	case isLetter(c):
		start := l.off
		for isLetter(l.peekByte()) || isDigit(l.peekByte()) {
			l.advance()
		}
		lit := string(l.src[start:l.off])
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}

	case isDigit(c) || (c == '.' && isDigit(l.peekByteAt(1))):
		return l.scanNumber(pos)

	case c == '\'':
		return l.scanChar(pos)

	case c == '"':
		return l.scanString(pos)
	}

	// Operators and punctuation.
	l.advance()
	two := func(next byte, yes, no token.Kind) token.Token {
		if l.peekByte() == next {
			l.advance()
			return token.Token{Kind: yes, Pos: pos}
		}
		return token.Token{Kind: no, Pos: pos}
	}
	switch c {
	case '+':
		if l.peekByte() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.ADDASSIGN, token.ADD)
	case '-':
		switch l.peekByte() {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.SUBASSIGN, token.SUB)
	case '*':
		return two('=', token.MULASSIGN, token.MUL)
	case '/':
		return two('=', token.QUOASSIGN, token.QUO)
	case '%':
		return two('=', token.REMASSIGN, token.REM)
	case '&':
		if l.peekByte() == '&' {
			l.advance()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		return two('=', token.ANDASSIGN, token.AND)
	case '|':
		if l.peekByte() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		return two('=', token.ORASSIGN, token.OR)
	case '^':
		return two('=', token.XORASSIGN, token.XOR)
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return two('=', token.SHLASSIGN, token.SHL)
		}
		return two('=', token.LEQ, token.LT)
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			return two('=', token.SHRASSIGN, token.SHR)
		}
		return two('=', token.GEQ, token.GT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// scanNumber scans integer and floating literals, including hex integers,
// exponents and the f/F, u/U, l/L suffixes.
func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	isFloat := false

	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peekByte()) {
			l.advance()
		}
	} else {
		for isDigit(l.peekByte()) {
			l.advance()
		}
		if l.peekByte() == '.' {
			isFloat = true
			l.advance()
			for isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if c := l.peekByte(); c == 'e' || c == 'E' {
			isFloat = true
			l.advance()
			if c := l.peekByte(); c == '+' || c == '-' {
				l.advance()
			}
			for isDigit(l.peekByte()) {
				l.advance()
			}
		}
	}
	lit := string(l.src[start:l.off])
	// Suffixes: f/F forces float; u/U and l/L are consumed but not kept.
	for {
		switch l.peekByte() {
		case 'f', 'F':
			isFloat = true
			l.advance()
			continue
		case 'u', 'U', 'l', 'L':
			l.advance()
			continue
		}
		break
	}
	kind := token.INTLIT
	if isFloat {
		kind = token.FLOATLIT
	}
	return token.Token{Kind: kind, Lit: lit, Pos: pos}
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		c := l.peekByte()
		if c == 0 || c == '\n' {
			l.errorf(pos, "unterminated character literal")
			break
		}
		l.advance()
		if c == '\'' {
			break
		}
		if c == '\\' {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Kind: token.CHARLIT, Lit: sb.String(), Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		c := l.peekByte()
		if c == 0 || c == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			sb.WriteByte(unescape(l.advance()))
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Kind: token.STRINGLIT, Lit: sb.String(), Pos: pos}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}
