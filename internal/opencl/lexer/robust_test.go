package lexer

import (
	"testing"
	"testing/quick"

	"repro/internal/opencl/token"
)

// TestLexerNeverPanics: arbitrary byte soup must produce a token stream
// ending in EOF without panicking, and every token must carry a valid
// position.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		l := New("fuzz.cl", src)
		for i := 0; i < len(src)+16; i++ {
			tok := l.Next()
			if tok.Kind == token.EOF {
				return true
			}
		}
		// Must have terminated by now: every Next consumes input or
		// returns EOF.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLexerProgress: the lexer must always make progress, even on
// pathological inputs made of illegal characters.
func TestLexerProgress(t *testing.T) {
	srcs := []string{
		"$$$$$", "@#`", "\x00\x01\x02", "''", `"""`, "####", "\\\\\\",
		"/*/*/*", "0x", "1e", "...", ">>>=",
	}
	for _, src := range srcs {
		l := New("t.cl", []byte(src))
		toks := l.All()
		if toks[len(toks)-1].Kind != token.EOF {
			t.Errorf("%q: no EOF", src)
		}
		if len(toks) > len(src)*2+4 {
			t.Errorf("%q: suspicious token explosion (%d tokens)", src, len(toks))
		}
	}
}

// TestConditionalStackAbuse: unbalanced directives error but terminate.
func TestConditionalStackAbuse(t *testing.T) {
	srcs := []string{
		"#endif\nint",
		"#else\nint",
		"#ifdef A\nint", // unterminated: silently treated as closed at EOF
		"#ifdef A\n#ifdef B\n#endif\nint",
	}
	for _, src := range srcs {
		l := New("t.cl", []byte(src))
		l.All() // must not hang or panic
	}
}

// TestTokenKindStringTotal: every defined kind has a printable name.
func TestTokenKindStringTotal(t *testing.T) {
	for k := token.Kind(0); k < 120; k++ {
		_ = k.String() // must not panic
	}
	if token.ADD.String() != "+" || token.KWKERNEL.String() != "__kernel" {
		t.Error("token spellings wrong")
	}
}
