package lexer

import (
	"testing"

	"repro/internal/opencl/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New("test.cl", []byte(src))
	var out []token.Kind
	for {
		tok := l.Next()
		if tok.Kind == token.EOF {
			break
		}
		out = append(out, tok.Kind)
	}
	for _, e := range l.Errors() {
		t.Errorf("unexpected lex error: %v", e)
	}
	return out
}

func eq(a, b []token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOperators(t *testing.T) {
	got := kinds(t, "+ - * / % << >> <<= >>= == != <= >= && || ++ -- -> . ? :")
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.SHL, token.SHR, token.SHLASSIGN, token.SHRASSIGN,
		token.EQ, token.NEQ, token.LEQ, token.GEQ, token.LAND, token.LOR,
		token.INC, token.DEC, token.ARROW, token.DOT, token.QUESTION, token.COLON,
	}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "__kernel kernel global __global int float4 myvar")
	want := []token.Kind{
		token.KWKERNEL, token.KWKERNEL, token.KWGLOBAL, token.KWGLOBAL,
		token.KWINT, token.IDENT, token.IDENT,
	}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNumbers(t *testing.T) {
	l := New("t.cl", []byte("42 0x1F 3.14 1e-3 2.5f 7u 9L"))
	lits := []struct {
		kind token.Kind
		lit  string
	}{
		{token.INTLIT, "42"}, {token.INTLIT, "0x1F"},
		{token.FLOATLIT, "3.14"}, {token.FLOATLIT, "1e-3"},
		{token.FLOATLIT, "2.5"}, {token.INTLIT, "7"}, {token.INTLIT, "9"},
	}
	for i, want := range lits {
		got := l.Next()
		if got.Kind != want.kind || got.Lit != want.lit {
			t.Errorf("token %d: got %v(%q) want %v(%q)", i, got.Kind, got.Lit, want.kind, want.lit)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\n b /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDefineExpansion(t *testing.T) {
	src := "#define BLOCK 16\nint x = BLOCK;"
	l := New("t.cl", []byte(src))
	toks := l.All()
	found := false
	for _, tok := range toks {
		if tok.Kind == token.INTLIT && tok.Lit == "16" {
			found = true
		}
		if tok.Kind == token.IDENT && tok.Lit == "BLOCK" {
			t.Error("macro BLOCK was not expanded")
		}
	}
	if !found {
		t.Error("expansion 16 not found in token stream")
	}
}

func TestDefineExpression(t *testing.T) {
	src := "#define N (4*8)\nN"
	l := New("t.cl", []byte(src))
	got := l.All()
	want := []token.Kind{token.LPAREN, token.INTLIT, token.MUL, token.INTLIT, token.RPAREN, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Kind != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i].Kind, want[i])
		}
	}
}

func TestUndef(t *testing.T) {
	src := "#define A 1\n#undef A\nA"
	l := New("t.cl", []byte(src))
	toks := l.All()
	if toks[0].Kind != token.IDENT || toks[0].Lit != "A" {
		t.Fatalf("expected raw ident A after #undef, got %v", toks[0])
	}
}

func TestIfdef(t *testing.T) {
	src := "#define USE_FLOAT 1\n#ifdef USE_FLOAT\nfloat\n#else\nint\n#endif\nx"
	got := kinds(t, src)
	want := []token.Kind{token.KWFLOAT, token.IDENT}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIfndef(t *testing.T) {
	src := "#ifndef MISSING\nfloat\n#else\nint\n#endif"
	got := kinds(t, src)
	want := []token.Kind{token.KWFLOAT}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := "#define A 1\n#ifdef A\n#ifdef B\none\n#else\ntwo\n#endif\n#endif"
	l := New("t.cl", []byte(src))
	toks := l.All()
	if len(toks) != 2 || toks[0].Lit != "two" {
		t.Fatalf("expected [two EOF], got %v", toks)
	}
}

func TestPragmaCapture(t *testing.T) {
	src := "#pragma unroll 4\nfor\n#pragma FLEXCL pipeline\nwhile"
	l := New("t.cl", []byte(src))
	l.All()
	prs := l.Pragmas()
	if len(prs) != 2 {
		t.Fatalf("expected 2 pragmas, got %d", len(prs))
	}
	if prs[0].Text != "unroll 4" {
		t.Errorf("pragma 0 text = %q", prs[0].Text)
	}
	if prs[1].Text != "FLEXCL pipeline" {
		t.Errorf("pragma 1 text = %q", prs[1].Text)
	}
	if prs[0].Pos.Line != 1 || prs[1].Pos.Line != 3 {
		t.Errorf("pragma lines = %d, %d", prs[0].Pos.Line, prs[1].Pos.Line)
	}
}

func TestPositions(t *testing.T) {
	l := New("k.cl", []byte("a\n  bb"))
	t1 := l.Next()
	t2 := l.Next()
	if t1.Pos.Line != 1 || t1.Pos.Col != 1 {
		t.Errorf("t1 pos = %v", t1.Pos)
	}
	if t2.Pos.Line != 2 || t2.Pos.Col != 3 {
		t.Errorf("t2 pos = %v", t2.Pos)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("t.cl", []byte("a /* never closed"))
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected an error for unterminated comment")
	}
}

func TestLineContinuation(t *testing.T) {
	got := kinds(t, "a \\\n b")
	want := []token.Kind{token.IDENT, token.IDENT}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDefineWithContinuation(t *testing.T) {
	src := "#define SUM a + \\\n b\nSUM"
	l := New("t.cl", []byte(src))
	toks := l.All()
	want := []token.Kind{token.IDENT, token.ADD, token.IDENT, token.EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, want[i])
		}
	}
}

func TestSelfReferentialMacroDoesNotLoop(t *testing.T) {
	// A macro whose body is (an expression over) itself must not expand
	// forever. The lexer re-expands through pending tokens, so guard with
	// a small source and ensure termination via test timeout.
	src := "#define X 1\nX X X"
	l := New("t.cl", []byte(src))
	toks := l.All()
	if len(toks) != 4 {
		t.Fatalf("expected 3 literals + EOF, got %v", toks)
	}
}

func TestCharAndStringLits(t *testing.T) {
	l := New("t.cl", []byte(`'a' '\n' "hi\t"`))
	t1, t2, t3 := l.Next(), l.Next(), l.Next()
	if t1.Kind != token.CHARLIT || t1.Lit != "a" {
		t.Errorf("t1 = %v(%q)", t1.Kind, t1.Lit)
	}
	if t2.Kind != token.CHARLIT || t2.Lit != "\n" {
		t.Errorf("t2 = %v(%q)", t2.Kind, t2.Lit)
	}
	if t3.Kind != token.STRINGLIT || t3.Lit != "hi\t" {
		t.Errorf("t3 = %v(%q)", t3.Kind, t3.Lit)
	}
}

func TestPredefine(t *testing.T) {
	l := New("t.cl", []byte("N"))
	l.Define("N", "256")
	tok := l.Next()
	if tok.Kind != token.INTLIT || tok.Lit != "256" {
		t.Fatalf("predefined macro: got %v(%q)", tok.Kind, tok.Lit)
	}
}
