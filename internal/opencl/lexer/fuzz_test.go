package lexer_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/opencl/lexer"
	"repro/internal/opencl/token"
)

// FuzzLexer feeds arbitrary bytes through the tokenizer: it must reach
// EOF in bounded steps and never panic, whatever the input. The seed
// corpus is every bundled Rodinia/PolyBench kernel source plus the
// hostile fragments below, so mutations start from realistic OpenCL
// rather than noise. Run continuously with
// `go test -run='^$' -fuzz=FuzzLexer ./internal/opencl/lexer`.
func FuzzLexer(f *testing.F) {
	for _, k := range bench.All() {
		f.Add([]byte(k.Source))
	}
	for _, s := range []string{
		"",
		"__kernel void k() {}",
		"0x 0x1p 1e+ 1.f .5f 'a' '\\",
		"/* unterminated",
		"// line\r\n#define A(x) x##y\n",
		"\"string with \\\" escape",
		"#include <no>\n#pragma OPENCL EXTENSION cl_khr_fp64 : enable",
		"a\xffb\x00c",
		">>= <<= ... ->",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		l := lexer.New("fuzz.cl", src)
		// Every Next() consumes at least one byte or drains pending
		// expansion tokens, so a generous per-byte budget distinguishes
		// a hang from slow progress.
		budget := 16*len(src) + 1024
		for i := 0; ; i++ {
			if i > budget {
				t.Fatalf("lexer did not reach EOF within %d tokens on %d bytes", budget, len(src))
			}
			if tok := l.Next(); tok.Kind == token.EOF {
				return
			}
		}
	})
}
