package sema

import (
	"strings"
	"testing"
)

func expectErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err.Error(), want)
	}
}

func TestDirectRecursionRejected(t *testing.T) {
	expectErr(t, `
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
__kernel void k(__global int* x) { x[0] = fact(5); }
`, "recursive")
}

func TestKernelCalledFromDevice(t *testing.T) {
	expectErr(t, `
__kernel void helper(__global int* x) { x[0] = 1; }
__kernel void k(__global int* x) { helper(x); }
`, "cannot call kernel")
}

func TestFunctionRedeclaration(t *testing.T) {
	expectErr(t, `
float f(float a) { return a; }
float f(float a) { return a + 1.0f; }
__kernel void k(__global float* x) { x[0] = f(x[1]); }
`, "redeclared")
}

func TestDerefNonPointer(t *testing.T) {
	expectErr(t, `__kernel void k(__global int* x) { int a = 1; x[0] = *a; }`,
		"dereference")
}

func TestSubscriptScalar(t *testing.T) {
	expectErr(t, `__kernel void k(__global int* x) { int a = 1; x[0] = a[2]; }`,
		"subscript")
}

func TestVectorMemberOnScalar(t *testing.T) {
	expectErr(t, `__kernel void k(__global float* x) { float a = x[0]; x[1] = a.x; }`,
		"non-vector")
}

func TestWrongUserFnArity(t *testing.T) {
	expectErr(t, `
float f(float a, float b) { return a + b; }
__kernel void k(__global float* x) { x[0] = f(x[1]); }
`, "arguments")
}

func TestScopesDoNotLeak(t *testing.T) {
	expectErr(t, `
__kernel void k(__global int* x) {
    if (x[0] > 0) { int inner = 1; x[1] = inner; }
    x[2] = inner;
}`, "undeclared")
}

func TestForScopeLocal(t *testing.T) {
	expectErr(t, `
__kernel void k(__global int* x) {
    for (int i = 0; i < 4; i++) { x[i] = i; }
    x[9] = i;
}`, "undeclared")
}

func TestPointerComparisonAllowed(t *testing.T) {
	mustCheck(t, `
__kernel void k(__global int* x, int n) {
    if (n > 0 && x[0] < x[1]) { x[2] = 1; }
}`)
}

func TestConstantFoldingInDims(t *testing.T) {
	info := mustCheck(t, `
__kernel void k(__global int* x) {
    __local int t[(1 << 4) + 16 / 2 - 3];
    t[0] = x[0];
    x[1] = t[0];
}`)
	for d, s := range info.VarSyms {
		if d.Name == "t" && s.Dims[0] != 16+8-3 {
			t.Errorf("folded dim = %d, want 21", s.Dims[0])
		}
	}
}

func TestSwitchChecks(t *testing.T) {
	expectErr(t, `__kernel void k(__global int* x) {
        switch (x[0]) { case 1: x[1] = 1; break; case 1: x[2] = 2; break; }
    }`, "duplicate case")
	expectErr(t, `__kernel void k(__global int* x) {
        switch (x[0]) { default: x[1] = 1; break; default: x[2] = 2; break; }
    }`, "duplicate default")
	expectErr(t, `__kernel void k(__global float* x) {
        switch (x[0]) { case 1: x[1] = 1.0f; break; }
    }`, "integer")
	expectErr(t, `__kernel void k(__global int* x, int n) {
        switch (x[0]) { case n: x[1] = 1; break; }
    }`, "constant")
	mustCheck(t, `__kernel void k(__global int* x) {
        switch (x[0] & 3) { case 0: case 1: x[1] = 1; break; default: x[2] = 2; }
    }`)
}
