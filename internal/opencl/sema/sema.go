package sema

import (
	"fmt"

	"repro/internal/opencl/ast"
	"repro/internal/opencl/token"
)

// SymKind classifies resolved symbols.
type SymKind int

// Symbol kinds.
const (
	SymParam SymKind = iota
	SymVar
	SymFunc
)

// Symbol is a resolved named entity.
type Symbol struct {
	Name  string
	Kind  SymKind
	Type  ast.Type
	Space ast.AddrSpace // for variables/arrays
	Dims  []int64       // folded array dimensions (nil for scalars)
	Param *ast.ParamDecl
	Decl  *ast.DeclStmt
	Func  *ast.FuncDecl
}

// IsArray reports whether the symbol is an array variable.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// TotalLen returns the flattened element count of an array symbol.
func (s *Symbol) TotalLen() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Info is the result of semantic analysis for one file.
type Info struct {
	File *ast.File
	// Uses maps identifier references to their symbols.
	Uses map[*ast.Ident]*Symbol
	// VarSyms maps declarations to their symbols.
	VarSyms map[*ast.DeclStmt]*Symbol
	// ParamSyms maps parameter declarations to their symbols.
	ParamSyms map[*ast.ParamDecl]*Symbol
	// Calls maps call expressions to the callee (user functions only).
	Calls map[*ast.CallExpr]*ast.FuncDecl
	// BuiltinCalls maps call expressions to builtin descriptors.
	BuiltinCalls map[*ast.CallExpr]*Builtin
}

// Error is a semantic diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%v: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

// Check runs semantic analysis over a parsed file.
func Check(f *ast.File) (*Info, error) {
	c := &checker{
		info: &Info{
			File:         f,
			Uses:         make(map[*ast.Ident]*Symbol),
			VarSyms:      make(map[*ast.DeclStmt]*Symbol),
			ParamSyms:    make(map[*ast.ParamDecl]*Symbol),
			Calls:        make(map[*ast.CallExpr]*ast.FuncDecl),
			BuiltinCalls: make(map[*ast.CallExpr]*Builtin),
		},
		funcs: make(map[string]*ast.FuncDecl),
	}
	for _, fn := range f.Funcs {
		if prev, dup := c.funcs[fn.Name]; dup && prev != fn {
			c.errorf(fn.Pos(), "function %s redeclared", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		c.checkFunc(fn)
	}
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	info    *Info
	funcs   map[string]*ast.FuncDecl
	errs    ErrorList
	cur     *scope
	curFunc *ast.FuncDecl
	// callStack guards against recursion (unsupported on FPGA pipelines).
	callStack []string
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 30 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) push() { c.cur = &scope{parent: c.cur, syms: map[string]*Symbol{}} }
func (c *checker) pop()  { c.cur = c.cur.parent }

func (c *checker) declare(sym *Symbol, pos token.Pos) {
	if _, dup := c.cur.syms[sym.Name]; dup {
		c.errorf(pos, "%s redeclared in this scope", sym.Name)
	}
	c.cur.syms[sym.Name] = sym
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.curFunc = fn
	c.callStack = append(c.callStack, fn.Name)
	defer func() { c.callStack = c.callStack[:len(c.callStack)-1] }()
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		if fn.IsKernel && p.Type.Ptr && p.Type.Space == ast.ASPrivate {
			c.errorf(p.Pos(), "kernel pointer parameter %s must have an address space qualifier", p.Name)
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, Space: p.Type.Space, Param: p}
		c.info.ParamSyms[p] = sym
		c.declare(sym, p.Pos())
	}
	if fn.Body != nil {
		c.checkStmt(fn.Body)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		c.push()
		for _, sub := range st.List {
			c.checkStmt(sub)
		}
		c.pop()
	case *ast.DeclStmt:
		c.checkDecl(st)
	case *ast.ExprStmt:
		c.checkExpr(st.X)
	case *ast.IfStmt:
		c.checkExpr(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *ast.ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.pop()
	case *ast.WhileStmt:
		c.checkExpr(st.Cond)
		c.checkStmt(st.Body)
	case *ast.DoWhileStmt:
		c.checkStmt(st.Body)
		c.checkExpr(st.Cond)
	case *ast.ReturnStmt:
		if st.X != nil {
			c.checkExpr(st.X)
			if c.curFunc.Ret.IsVoid() {
				c.errorf(st.Pos(), "return with value in void function %s", c.curFunc.Name)
			}
		} else if !c.curFunc.Ret.IsVoid() {
			c.errorf(st.Pos(), "return without value in non-void function %s", c.curFunc.Name)
		}
	case *ast.SwitchStmt:
		ct := c.checkExpr(st.Cond)
		if !ct.IsScalar() || !ct.Base.IsInteger() {
			c.errorf(st.Pos(), "switch condition must be an integer scalar, have %v", ct)
		}
		sawDefault := false
		seen := map[int64]bool{}
		for _, cs := range st.Cases {
			if cs.Vals == nil {
				if sawDefault {
					c.errorf(cs.Position, "duplicate default case")
				}
				sawDefault = true
			}
			for _, v := range cs.Vals {
				c.checkExpr(v)
				n, ok := c.constFold(v)
				if !ok {
					c.errorf(v.Pos(), "case label must be an integer constant")
					continue
				}
				if seen[n] {
					c.errorf(v.Pos(), "duplicate case value %d", n)
				}
				seen[n] = true
			}
			c.push()
			for _, s := range cs.Body {
				c.checkStmt(s)
			}
			c.pop()
		}
	case *ast.BarrierStmt, *ast.BreakStmt, *ast.ContinueStmt, *ast.EmptyStmt:
		// nothing to check
	}
}

func (c *checker) checkDecl(d *ast.DeclStmt) {
	sym := &Symbol{Name: d.Name, Kind: SymVar, Type: d.Type, Space: d.Space, Decl: d}
	for _, lenExpr := range d.ArrayLen {
		c.checkExpr(lenExpr)
		n, ok := c.constFold(lenExpr)
		if !ok || n <= 0 {
			c.errorf(lenExpr.Pos(), "array dimension of %s must be a positive constant", d.Name)
			n = 1
		}
		sym.Dims = append(sym.Dims, n)
	}
	if d.Init != nil {
		c.checkExpr(d.Init)
		if sym.IsArray() {
			c.errorf(d.Pos(), "array initializers are not supported (%s)", d.Name)
		}
	}
	c.info.VarSyms[d] = sym
	c.declare(sym, d.Pos())
}

// constFold evaluates an integer constant expression (literals, idents
// bound to macro-expanded literals arrive as literals, unary +/-, binary
// arithmetic and shifts).
func (c *checker) constFold(e ast.Expr) (int64, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.UnaryExpr:
		v, ok := c.constFold(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.TILDE:
			return ^v, true
		}
	case *ast.BinaryExpr:
		a, ok1 := c.constFold(x.X)
		b, ok2 := c.constFold(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b != 0 {
				return a / b, true
			}
		case token.REM:
			if b != 0 {
				return a % b, true
			}
		case token.SHL:
			return a << uint(b), true
		case token.SHR:
			return a >> uint(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
	case *ast.CastExpr:
		return c.constFold(x.X)
	}
	return 0, false
}

// setType assigns the computed type to an expression node.
func setType(e ast.Expr, t ast.Type) ast.Type {
	type typeSetter interface{ SetType(ast.Type) }
	if ts, ok := e.(typeSetter); ok {
		ts.SetType(t)
	}
	return t
}

// usualArith implements the usual arithmetic conversions for two operand
// types: float beats int, wider beats narrower, vectors dominate scalars.
func usualArith(a, b ast.Type) ast.Type {
	if a.Ptr {
		return a
	}
	if b.Ptr {
		return b
	}
	out := a
	if b.Lanes() > out.Lanes() {
		out.Vec = b.Vec
	}
	rank := func(k ast.BaseKind) int {
		switch k {
		case ast.KDouble:
			return 10
		case ast.KFloat:
			return 9
		case ast.KULong:
			return 8
		case ast.KLong:
			return 7
		case ast.KUInt:
			return 6
		case ast.KInt:
			return 5
		case ast.KUShort:
			return 4
		case ast.KShort:
			return 3
		case ast.KUChar:
			return 2
		case ast.KChar:
			return 1
		default:
			return 0
		}
	}
	if rank(b.Base) > rank(a.Base) {
		out.Base = b.Base
	}
	// Promote sub-int integers to int.
	if out.Base.IsInteger() && rank(out.Base) < rank(ast.KInt) {
		out.Base = ast.KInt
	}
	return out
}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return setType(x, ast.Scalar(ast.KInt))
	case *ast.FloatLit:
		return setType(x, ast.Scalar(ast.KFloat))
	case *ast.Ident:
		sym := c.cur.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos(), "undeclared identifier %s", x.Name)
			return setType(x, ast.Scalar(ast.KInt))
		}
		c.info.Uses[x] = sym
		t := sym.Type
		if sym.IsArray() {
			// Arrays decay to pointers into their storage space.
			t = ast.Pointer(sym.Type, sym.Space)
		}
		return setType(x, t)
	case *ast.ParenExpr:
		return setType(x, c.checkExpr(x.X))
	case *ast.UnaryExpr:
		t := c.checkExpr(x.X)
		switch x.Op {
		case token.NOT:
			return setType(x, ast.Scalar(ast.KInt))
		case token.MUL: // deref
			if !t.Ptr {
				c.errorf(x.Pos(), "cannot dereference non-pointer")
				return setType(x, t)
			}
			return setType(x, t.Elem())
		case token.AND: // address-of
			space := ast.ASPrivate
			if lv := c.lvalueSpace(x.X); lv != nil {
				space = *lv
			}
			return setType(x, ast.Pointer(t, space))
		default:
			return setType(x, t)
		}
	case *ast.BinaryExpr:
		a := c.checkExpr(x.X)
		b := c.checkExpr(x.Y)
		switch x.Op {
		case token.LAND, token.LOR, token.EQ, token.NEQ,
			token.LT, token.GT, token.LEQ, token.GEQ:
			t := ast.Scalar(ast.KInt)
			if a.IsVector() || b.IsVector() {
				t = usualArith(a, b)
				t.Base = ast.KInt
			}
			return setType(x, t)
		case token.COMMA:
			return setType(x, b)
		default:
			if a.Ptr || b.Ptr {
				// Pointer arithmetic keeps the pointer type.
				if a.Ptr {
					return setType(x, a)
				}
				return setType(x, b)
			}
			return setType(x, usualArith(a, b))
		}
	case *ast.AssignExpr:
		lt := c.checkExpr(x.LHS)
		c.checkExpr(x.RHS)
		if !c.isLvalue(x.LHS) {
			c.errorf(x.Pos(), "left side of assignment is not assignable")
		}
		return setType(x, lt)
	case *ast.CondExpr:
		c.checkExpr(x.Cond)
		a := c.checkExpr(x.Then)
		b := c.checkExpr(x.Else)
		return setType(x, usualArith(a, b))
	case *ast.CallExpr:
		return c.checkCall(x)
	case *ast.IndexExpr:
		bt := c.checkExpr(x.X)
		c.checkExpr(x.Index)
		if !bt.Ptr {
			c.errorf(x.Pos(), "subscript of non-pointer/array value")
			return setType(x, bt)
		}
		// Multi-dimensional arrays are stored flattened; indexing yields a
		// pointer until the last declared dimension is consumed.
		if sym, depth := c.arrayChain(x); sym != nil && depth < len(sym.Dims) {
			return setType(x, bt) // still a pointer into the array
		}
		return setType(x, bt.Elem())
	case *ast.MemberExpr:
		bt := c.checkExpr(x.X)
		if !bt.IsVector() {
			c.errorf(x.Pos(), "member selection on non-vector type %v", bt)
			return setType(x, bt)
		}
		lanes, ok := swizzleLanes(x.Sel, bt.Lanes())
		if !ok {
			c.errorf(x.Pos(), "bad vector component %q for %v", x.Sel, bt)
			lanes = []int{0}
		}
		x.Lanes = lanes
		t := bt
		if len(lanes) == 1 {
			t.Vec = 1
		} else {
			t.Vec = len(lanes)
		}
		return setType(x, t)
	case *ast.CastExpr:
		c.checkExpr(x.X)
		return setType(x, x.To)
	case *ast.VecLit:
		total := 0
		for _, el := range x.Elems {
			et := c.checkExpr(el)
			total += et.Lanes()
		}
		if total != x.To.Lanes() && total != 1 {
			c.errorf(x.Pos(), "vector literal of %v has %d elements", x.To, total)
		}
		return setType(x, x.To)
	}
	return ast.Scalar(ast.KInt)
}

func (c *checker) checkCall(x *ast.CallExpr) ast.Type {
	var argTypes []ast.Type
	for _, a := range x.Args {
		argTypes = append(argTypes, c.checkExpr(a))
	}
	if b := LookupBuiltin(x.Fun); b != nil {
		if b.NArgs >= 0 && len(x.Args) != b.NArgs {
			c.errorf(x.Pos(), "%s expects %d arguments, got %d", x.Fun, b.NArgs, len(x.Args))
		}
		c.info.BuiltinCalls[x] = b
		return setType(x, b.Ret(argTypes))
	}
	fn, ok := c.funcs[x.Fun]
	if !ok {
		c.errorf(x.Pos(), "call to undefined function %s", x.Fun)
		return setType(x, ast.Scalar(ast.KInt))
	}
	if fn.IsKernel {
		c.errorf(x.Pos(), "cannot call kernel %s from device code", x.Fun)
	}
	for _, active := range c.callStack {
		if active == fn.Name {
			c.errorf(x.Pos(), "recursive call to %s is not supported", fn.Name)
			return setType(x, fn.Ret)
		}
	}
	if len(x.Args) != len(fn.Params) {
		c.errorf(x.Pos(), "%s expects %d arguments, got %d", x.Fun, len(fn.Params), len(x.Args))
	}
	c.info.Calls[x] = fn
	return setType(x, fn.Ret)
}

// arrayChain resolves a nested index expression rooted at an array
// identifier, returning the array symbol and the number of subscripts
// consumed so far (including the receiver). Returns (nil, 0) when the base
// is not a declared array.
func (c *checker) arrayChain(e *ast.IndexExpr) (*Symbol, int) {
	depth := 0
	var cur ast.Expr = e
	for {
		ix, ok := ast.Unparen(cur).(*ast.IndexExpr)
		if !ok {
			break
		}
		depth++
		cur = ix.X
	}
	id, ok := ast.Unparen(cur).(*ast.Ident)
	if !ok {
		return nil, 0
	}
	sym := c.info.Uses[id]
	if sym == nil || !sym.IsArray() {
		return nil, 0
	}
	return sym, depth
}

// isLvalue reports whether e may appear on the left of an assignment.
func (c *checker) isLvalue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.MemberExpr:
		return c.isLvalue(x.X)
	case *ast.UnaryExpr:
		return x.Op == token.MUL
	}
	return false
}

// lvalueSpace returns the address space of an lvalue expression, or nil.
func (c *checker) lvalueSpace(e ast.Expr) *ast.AddrSpace {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if sym := c.cur.lookup(x.Name); sym != nil {
			sp := sym.Space
			return &sp
		}
	case *ast.IndexExpr:
		t := x.X.TypeOf()
		if t.Ptr {
			sp := t.Space
			return &sp
		}
	}
	return nil
}

// swizzleLanes resolves a vector component selector: xyzw names, sN hex
// digits, and lo/hi/even/odd halves.
func swizzleLanes(sel string, width int) ([]int, bool) {
	half := width / 2
	switch sel {
	case "lo":
		return seq(0, half), true
	case "hi":
		return seq(half, width), true
	case "even":
		return stride(0, width, 2), true
	case "odd":
		return stride(1, width, 2), true
	}
	if len(sel) >= 2 && sel[0] == 's' {
		var lanes []int
		for _, ch := range sel[1:] {
			v := hexVal(byte(ch))
			if v < 0 || v >= width {
				return nil, false
			}
			lanes = append(lanes, v)
		}
		return lanes, true
	}
	var lanes []int
	for i := 0; i < len(sel); i++ {
		var v int
		switch sel[i] {
		case 'x':
			v = 0
		case 'y':
			v = 1
		case 'z':
			v = 2
		case 'w':
			v = 3
		default:
			return nil, false
		}
		if v >= width {
			return nil, false
		}
		lanes = append(lanes, v)
	}
	return lanes, len(lanes) > 0
}

func seq(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func stride(start, end, step int) []int {
	var out []int
	for i := start; i < end; i += step {
		out = append(out, i)
	}
	return out
}

func hexVal(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
