package sema

import (
	"strings"
	"testing"

	"repro/internal/opencl/ast"
	"repro/internal/opencl/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	f, err := parser.Parse("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return info
}

func TestVecAddTypes(t *testing.T) {
	info := mustCheck(t, `
__kernel void vadd(__global const float* a, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] * 2.0f; }
}`)
	k := info.File.Kernels()[0]
	var assign *ast.AssignExpr
	ast.Walk(k, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignExpr); ok {
			assign = a
		}
		return true
	})
	if got := assign.LHS.TypeOf(); got.Base != ast.KFloat || got.Ptr {
		t.Errorf("c[i] type = %v, want float", got)
	}
	if got := assign.RHS.TypeOf(); got.Base != ast.KFloat {
		t.Errorf("a[i]*2 type = %v, want float", got)
	}
}

func TestUndeclaredIdent(t *testing.T) {
	_, err := check(t, `__kernel void k(__global int* x) { x[0] = missing; }`)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("want undeclared error, got %v", err)
	}
}

func TestRedeclaration(t *testing.T) {
	_, err := check(t, `__kernel void k(__global int* x) { int a = 1; int a = 2; x[0] = a; }`)
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("want redeclared error, got %v", err)
	}
}

func TestShadowingAllowed(t *testing.T) {
	mustCheck(t, `__kernel void k(__global int* x) {
        int a = 1;
        { int a = 2; x[0] = a; }
        x[1] = a;
    }`)
}

func TestKernelPointerNeedsAddrSpace(t *testing.T) {
	_, err := check(t, `__kernel void k(int* x) { x[0] = 1; }`)
	if err == nil || !strings.Contains(err.Error(), "address space") {
		t.Fatalf("want address space error, got %v", err)
	}
}

func TestArrayDimsFolded(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global int* x) {
        __local int tile[4*8][16];
        tile[0][0] = 1;
        x[0] = tile[0][0];
    }`)
	var sym *Symbol
	for d, s := range info.VarSyms {
		if d.Name == "tile" {
			sym = s
		}
	}
	if sym == nil {
		t.Fatal("tile symbol missing")
	}
	if len(sym.Dims) != 2 || sym.Dims[0] != 32 || sym.Dims[1] != 16 {
		t.Errorf("dims = %v, want [32 16]", sym.Dims)
	}
	if sym.TotalLen() != 512 {
		t.Errorf("total = %d", sym.TotalLen())
	}
}

func TestNonConstantArrayDim(t *testing.T) {
	_, err := check(t, `__kernel void k(__global int* x, int n) {
        int buf[n];
        buf[0] = 1;
        x[0] = buf[0];
    }`)
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Fatalf("want constant-dim error, got %v", err)
	}
}

func TestBuiltinResolution(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global float* x) {
        int i = get_global_id(0);
        x[i] = sqrt(fabs(x[i]));
    }`)
	if len(info.BuiltinCalls) != 3 {
		t.Errorf("builtin calls = %d, want 3", len(info.BuiltinCalls))
	}
}

func TestBuiltinArity(t *testing.T) {
	_, err := check(t, `__kernel void k(__global float* x) { x[0] = pow(x[0]); }`)
	if err == nil || !strings.Contains(err.Error(), "arguments") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestUserFunctionCall(t *testing.T) {
	info := mustCheck(t, `
float helper(float a, float b) { return a * b + 1.0f; }
__kernel void k(__global float* x) { x[0] = helper(x[0], x[1]); }`)
	if len(info.Calls) != 1 {
		t.Errorf("user calls = %d, want 1", len(info.Calls))
	}
}

func TestCallUndefined(t *testing.T) {
	_, err := check(t, `__kernel void k(__global float* x) { x[0] = nosuchfn(x[0]); }`)
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("want undefined fn error, got %v", err)
	}
}

func TestSwizzleResolution(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global float4* x) {
        float4 v = x[0];
        float s = v.w;
        float2 d = v.xy;
        float h = v.s3;
        x[0].x = s + d.x + h;
    }`)
	var wLanes, xyLanes, s3Lanes []int
	ast.Walk(info.File, func(n ast.Node) bool {
		if m, ok := n.(*ast.MemberExpr); ok {
			switch m.Sel {
			case "w":
				wLanes = m.Lanes
			case "xy":
				xyLanes = m.Lanes
			case "s3":
				s3Lanes = m.Lanes
			}
		}
		return true
	})
	if len(wLanes) != 1 || wLanes[0] != 3 {
		t.Errorf("w lanes = %v", wLanes)
	}
	if len(xyLanes) != 2 || xyLanes[0] != 0 || xyLanes[1] != 1 {
		t.Errorf("xy lanes = %v", xyLanes)
	}
	if len(s3Lanes) != 1 || s3Lanes[0] != 3 {
		t.Errorf("s3 lanes = %v", s3Lanes)
	}
}

func TestBadSwizzle(t *testing.T) {
	_, err := check(t, `__kernel void k(__global float2* x) { float2 v = x[0]; x[0].x = v.z; }`)
	if err == nil || !strings.Contains(err.Error(), "component") {
		t.Fatalf("want component error, got %v", err)
	}
}

func TestUsualArithConversions(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global float* x, __global int* y) {
        x[0] = x[0] + y[0];
    }`)
	var add *ast.BinaryExpr
	ast.Walk(info.File, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			add = b
		}
		return true
	})
	if got := add.TypeOf(); got.Base != ast.KFloat {
		t.Errorf("float+int = %v, want float", got)
	}
}

func TestComparisonIsInt(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global float* x) {
        int c = x[0] < x[1];
        x[2] = (float)c;
    }`)
	var cmp *ast.BinaryExpr
	ast.Walk(info.File, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op.String() == "<" {
			cmp = b
		}
		return true
	})
	if got := cmp.TypeOf(); got.Base != ast.KInt {
		t.Errorf("comparison type = %v, want int", got)
	}
}

func TestAssignToRvalue(t *testing.T) {
	_, err := check(t, `__kernel void k(__global int* x) { (x[0] + 1) = 2; }`)
	if err == nil || !strings.Contains(err.Error(), "not assignable") {
		t.Fatalf("want lvalue error, got %v", err)
	}
}

func TestConvertBuiltin(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global float* x, __global int* y) {
        y[0] = convert_int(x[0]);
    }`)
	found := false
	for call, b := range info.BuiltinCalls {
		if call.Fun == "convert_int" && b.Kind == BConvert {
			found = true
		}
	}
	if !found {
		t.Error("convert_int not resolved as BConvert")
	}
}

func TestParseTypeName(t *testing.T) {
	cases := []struct {
		in    string
		base  ast.BaseKind
		lanes int
		ok    bool
	}{
		{"int", ast.KInt, 1, true},
		{"uint", ast.KUInt, 1, true},
		{"float4", ast.KFloat, 4, true},
		{"uchar16", ast.KUChar, 16, true},
		{"double2", ast.KDouble, 2, true},
		{"float5", 0, 0, false},
		{"banana", 0, 0, false},
	}
	for _, c := range cases {
		got, ok := ParseTypeName(c.in)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (got.Base != c.base || got.Lanes() != c.lanes) {
			t.Errorf("%s: got %v", c.in, got)
		}
	}
}

func TestVoidReturnChecks(t *testing.T) {
	_, err := check(t, `__kernel void k(__global int* x) { x[0] = 0; return 1; }`)
	if err == nil || !strings.Contains(err.Error(), "void") {
		t.Fatalf("want void return error, got %v", err)
	}
	_, err = check(t, `
int f(int a) { return; }
__kernel void k(__global int* x) { x[0] = f(1); }`)
	if err == nil || !strings.Contains(err.Error(), "without value") {
		t.Fatalf("want missing-value error, got %v", err)
	}
}

func TestAtomicBuiltins(t *testing.T) {
	info := mustCheck(t, `__kernel void k(__global int* x) {
        atomic_add(x, 1);
        atomic_inc(x + 1);
    }`)
	n := 0
	for _, b := range info.BuiltinCalls {
		if b.Kind == BAtomic {
			n++
		}
	}
	if n != 2 {
		t.Errorf("atomic calls = %d, want 2", n)
	}
}
