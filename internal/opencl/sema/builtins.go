// Package sema implements semantic analysis for the OpenCL C subset:
// symbol resolution, type checking, vector-component selection, constant
// folding of array dimensions, and the builtin-function catalogue shared
// with the IR generator and interpreter.
package sema

import "repro/internal/opencl/ast"

// BuiltinKind classifies builtins by how the IR generator must lower them.
type BuiltinKind int

// Builtin lowering classes.
const (
	// BWorkItem: get_global_id and friends — lowered to IR work-item ops.
	BWorkItem BuiltinKind = iota
	// BMath: element-wise math — lowered to an IR call op with a latency
	// entry in the device database.
	BMath
	// BSelect: relational builtins returning one of the operands.
	BSelect
	// BAtomic: atomic read-modify-write on global/local memory.
	BAtomic
	// BConvert: convert_<type> explicit conversions.
	BConvert
)

// Builtin describes one builtin function.
type Builtin struct {
	Name  string
	Kind  BuiltinKind
	NArgs int
	// Ret computes the result type from argument types. For generic
	// ("gentype") math builtins the result matches the first argument.
	Ret func(args []ast.Type) ast.Type
}

func retFirst(args []ast.Type) ast.Type {
	if len(args) > 0 {
		return args[0]
	}
	return ast.Scalar(ast.KFloat)
}

func retFloatLike(args []ast.Type) ast.Type {
	t := retFirst(args)
	if !t.Base.IsFloat() {
		t = ast.Scalar(ast.KFloat)
	}
	return t
}

func retSizeT(_ []ast.Type) ast.Type { return ast.Scalar(ast.KULong) }

func retInt(_ []ast.Type) ast.Type { return ast.Scalar(ast.KInt) }

// Builtins is the catalogue of supported builtin functions.
var Builtins = map[string]*Builtin{
	// Work-item functions.
	"get_global_id":     {Name: "get_global_id", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_local_id":      {Name: "get_local_id", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_group_id":      {Name: "get_group_id", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_global_size":   {Name: "get_global_size", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_local_size":    {Name: "get_local_size", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_num_groups":    {Name: "get_num_groups", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},
	"get_work_dim":      {Name: "get_work_dim", Kind: BWorkItem, NArgs: 0, Ret: retSizeT},
	"get_global_offset": {Name: "get_global_offset", Kind: BWorkItem, NArgs: 1, Ret: retSizeT},

	// Unary element-wise math.
	"sqrt":        {Name: "sqrt", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"rsqrt":       {Name: "rsqrt", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"fabs":        {Name: "fabs", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"exp":         {Name: "exp", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"exp2":        {Name: "exp2", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"log":         {Name: "log", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"log2":        {Name: "log2", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"sin":         {Name: "sin", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"cos":         {Name: "cos", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"tan":         {Name: "tan", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"floor":       {Name: "floor", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"ceil":        {Name: "ceil", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"round":       {Name: "round", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"native_exp":  {Name: "native_exp", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"native_log":  {Name: "native_log", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"native_sqrt": {Name: "native_sqrt", Kind: BMath, NArgs: 1, Ret: retFloatLike},
	"abs":         {Name: "abs", Kind: BMath, NArgs: 1, Ret: retFirst},

	// Binary/ternary element-wise math.
	"pow":   {Name: "pow", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"fmax":  {Name: "fmax", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"fmin":  {Name: "fmin", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"fmod":  {Name: "fmod", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"atan2": {Name: "atan2", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"hypot": {Name: "hypot", Kind: BMath, NArgs: 2, Ret: retFloatLike},
	"max":   {Name: "max", Kind: BSelect, NArgs: 2, Ret: retFirst},
	"min":   {Name: "min", Kind: BSelect, NArgs: 2, Ret: retFirst},
	"mad":   {Name: "mad", Kind: BMath, NArgs: 3, Ret: retFirst},
	"fma":   {Name: "fma", Kind: BMath, NArgs: 3, Ret: retFirst},
	"clamp": {Name: "clamp", Kind: BSelect, NArgs: 3, Ret: retFirst},
	"select": {Name: "select", Kind: BSelect, NArgs: 3,
		Ret: retFirst},
	"dot": {Name: "dot", Kind: BMath, NArgs: 2,
		Ret: func(args []ast.Type) ast.Type {
			t := retFloatLike(args)
			t.Vec = 1
			return t
		}},

	// Atomics (on int/uint pointers).
	"atomic_add": {Name: "atomic_add", Kind: BAtomic, NArgs: 2, Ret: retInt},
	"atomic_sub": {Name: "atomic_sub", Kind: BAtomic, NArgs: 2, Ret: retInt},
	"atomic_inc": {Name: "atomic_inc", Kind: BAtomic, NArgs: 1, Ret: retInt},
	"atomic_dec": {Name: "atomic_dec", Kind: BAtomic, NArgs: 1, Ret: retInt},
	"atomic_min": {Name: "atomic_min", Kind: BAtomic, NArgs: 2, Ret: retInt},
	"atomic_max": {Name: "atomic_max", Kind: BAtomic, NArgs: 2, Ret: retInt},
	"atomic_xchg": {Name: "atomic_xchg", Kind: BAtomic, NArgs: 2,
		Ret: retInt},
	"atomic_cmpxchg": {Name: "atomic_cmpxchg", Kind: BAtomic, NArgs: 3,
		Ret: retInt},
}

// convertTargets enumerates the convert_<type> builtins lazily: any call
// named convert_T where T is a scalar or vector type is accepted.
func convertBuiltin(name string) (*Builtin, bool) {
	const prefix = "convert_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return nil, false
	}
	t, ok := ParseTypeName(name[len(prefix):])
	if !ok {
		return nil, false
	}
	return &Builtin{
		Name: name, Kind: BConvert, NArgs: 1,
		Ret: func([]ast.Type) ast.Type { return t },
	}, true
}

// ParseTypeName maps spellings like "int", "uint", "float4" to types.
func ParseTypeName(name string) (ast.Type, bool) {
	bases := map[string]ast.BaseKind{
		"bool": ast.KBool, "char": ast.KChar, "uchar": ast.KUChar,
		"short": ast.KShort, "ushort": ast.KUShort, "int": ast.KInt,
		"uint": ast.KUInt, "long": ast.KLong, "ulong": ast.KULong,
		"float": ast.KFloat, "double": ast.KDouble,
	}
	for b, k := range bases {
		if name == b {
			return ast.Scalar(k), true
		}
		if len(name) > len(b) && name[:len(b)] == b {
			switch name[len(b):] {
			case "2":
				return ast.Vector(k, 2), true
			case "3":
				return ast.Vector(k, 3), true
			case "4":
				return ast.Vector(k, 4), true
			case "8":
				return ast.Vector(k, 8), true
			case "16":
				return ast.Vector(k, 16), true
			}
		}
	}
	return ast.Type{}, false
}

// LookupBuiltin returns the builtin descriptor for name, handling the
// convert_<type> family, or nil.
func LookupBuiltin(name string) *Builtin {
	if b, ok := Builtins[name]; ok {
		return b
	}
	if b, ok := convertBuiltin(name); ok {
		return b
	}
	return nil
}
