package ast

import (
	"fmt"
	"strings"

	"repro/internal/opencl/token"
)

// Print renders the AST back to OpenCL C source. The output is
// semantically equivalent to the input (modulo formatting and resolved
// macros) and reparses to the same structure — used for debugging
// transformed kernels and by the frontend round-trip tests.
func Print(f *File) string {
	p := &printer{}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.nl()
		}
		p.fn(fn)
	}
	return p.sb.String()
}

// PrintStmt renders one statement subtree.
func PrintStmt(s Stmt) string {
	p := &printer{}
	p.stmt(s)
	return p.sb.String()
}

// PrintExpr renders one expression subtree.
func PrintExpr(e Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(s string)           { p.sb.WriteString(s) }
func (p *printer) f(f string, a ...any) { fmt.Fprintf(&p.sb, f, a...) }
func (p *printer) nl()                  { p.w("\n") }
func (p *printer) tab()                 { p.w(strings.Repeat("    ", p.indent)) }
func (p *printer) line(f string, a ...any) {
	p.tab()
	p.f(f, a...)
	p.nl()
}

func (p *printer) fn(fn *FuncDecl) {
	if fn.IsKernel {
		p.w("__kernel ")
	}
	for _, a := range fn.Attrs {
		p.f("__attribute__((%s(", a.Name)
		for i, v := range a.Args {
			if i > 0 {
				p.w(", ")
			}
			p.f("%d", v)
		}
		p.w("))) ")
	}
	p.f("%s %s(", typeStr(fn.Ret), fn.Name)
	for i, prm := range fn.Params {
		if i > 0 {
			p.w(", ")
		}
		p.f("%s %s", typeStr(prm.Type), prm.Name)
	}
	p.w(")")
	if fn.Body == nil {
		p.w(";\n")
		return
	}
	p.w(" ")
	p.block(fn.Body)
	p.nl()
}

func typeStr(t Type) string {
	var sb strings.Builder
	if t.Ptr {
		sb.WriteString(t.Space.String())
		sb.WriteByte(' ')
	}
	if t.Const {
		sb.WriteString("const ")
	}
	sb.WriteString(t.Base.String())
	if t.Vec >= 2 {
		fmt.Fprintf(&sb, "%d", t.Vec)
	}
	if t.Ptr {
		sb.WriteByte('*')
	}
	return sb.String()
}

func (p *printer) block(b *BlockStmt) {
	p.w("{\n")
	p.indent++
	for _, s := range b.List {
		p.stmt(s)
	}
	p.indent--
	p.tab()
	p.w("}")
}

func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.w("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.tab()
	p.w("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.tab()
		p.block(st)
		p.nl()
	case *DeclStmt:
		p.tab()
		if st.Space == ASLocal {
			p.w("__local ")
		}
		p.f("%s %s", typeStr(st.Type), st.Name)
		for _, d := range st.ArrayLen {
			p.w("[")
			p.expr(d, 0)
			p.w("]")
		}
		if st.Init != nil {
			p.w(" = ")
			p.expr(st.Init, 0)
		}
		p.w(";\n")
	case *ExprStmt:
		p.tab()
		p.expr(st.X, 0)
		p.w(";\n")
	case *IfStmt:
		p.tab()
		p.w("if (")
		p.expr(st.Cond, 0)
		p.w(") ")
		p.stmtAsBlock(st.Then)
		if st.Else != nil {
			p.w(" else ")
			p.stmtAsBlock(st.Else)
		}
		p.nl()
	case *ForStmt:
		if st.Unroll != 0 {
			if st.Unroll > 0 {
				p.line("#pragma unroll %d", st.Unroll)
			} else {
				p.line("#pragma unroll")
			}
		}
		p.tab()
		p.w("for (")
		switch init := st.Init.(type) {
		case nil:
			p.w(";")
		case *DeclStmt:
			p.f("%s %s", typeStr(init.Type), init.Name)
			if init.Init != nil {
				p.w(" = ")
				p.expr(init.Init, 0)
			}
			p.w(";")
		case *ExprStmt:
			p.expr(init.X, 0)
			p.w(";")
		default:
			p.w(";")
		}
		p.w(" ")
		if st.Cond != nil {
			p.expr(st.Cond, 0)
		}
		p.w("; ")
		if st.Post != nil {
			p.expr(st.Post, 0)
		}
		p.w(") ")
		p.stmtAsBlock(st.Body)
		p.nl()
	case *WhileStmt:
		p.tab()
		p.w("while (")
		p.expr(st.Cond, 0)
		p.w(") ")
		p.stmtAsBlock(st.Body)
		p.nl()
	case *DoWhileStmt:
		p.tab()
		p.w("do ")
		p.stmtAsBlock(st.Body)
		p.w(" while (")
		p.expr(st.Cond, 0)
		p.w(");\n")
	case *ReturnStmt:
		p.tab()
		if st.X != nil {
			p.w("return ")
			p.expr(st.X, 0)
			p.w(";\n")
		} else {
			p.w("return;\n")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *BarrierStmt:
		var flags []string
		if st.Local {
			flags = append(flags, "CLK_LOCAL_MEM_FENCE")
		}
		if st.Global {
			flags = append(flags, "CLK_GLOBAL_MEM_FENCE")
		}
		p.line("barrier(%s);", strings.Join(flags, " | "))
	case *SwitchStmt:
		p.tab()
		p.w("switch (")
		p.expr(st.Cond, 0)
		p.w(") {\n")
		for _, cs := range st.Cases {
			if cs.Vals == nil {
				p.line("default:")
			} else {
				for _, v := range cs.Vals {
					p.tab()
					p.w("case ")
					p.expr(v, 0)
					p.w(":\n")
				}
			}
			p.indent++
			for _, s := range cs.Body {
				p.stmt(s)
			}
			p.indent--
		}
		p.tab()
		p.w("}\n")
	case *EmptyStmt:
		p.line(";")
	}
}

// precedence for parenthesization decisions: mirror the parser's table.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *AssignExpr:
		return 0
	case *CondExpr:
		return 1
	case *BinaryExpr:
		switch x.Op {
		case token.LOR:
			return 2
		case token.LAND:
			return 3
		case token.OR:
			return 4
		case token.XOR:
			return 5
		case token.AND:
			return 6
		case token.EQ, token.NEQ:
			return 7
		case token.LT, token.GT, token.LEQ, token.GEQ:
			return 8
		case token.SHL, token.SHR:
			return 9
		case token.ADD, token.SUB:
			return 10
		case token.MUL, token.QUO, token.REM:
			return 11
		case token.COMMA:
			return 0
		}
		return 11
	case *UnaryExpr, *CastExpr:
		return 12
	default:
		return 13 // primary
	}
}

// expr prints e, parenthesizing when its precedence is below min.
func (p *printer) expr(e Expr, min int) {
	prec := exprPrec(e)
	if prec < min {
		p.w("(")
		defer p.w(")")
	}
	switch x := e.(type) {
	case *Ident:
		p.w(x.Name)
	case *IntLit:
		p.f("%d", x.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.w(s + "f")
	case *ParenExpr:
		// The parse tree's explicit parens are dropped; the inner
		// expression re-parenthesizes itself against the caller's
		// precedence requirement.
		p.expr(x.X, min)
	case *UnaryExpr:
		if x.Postfix {
			p.expr(x.X, prec)
			p.w(x.Op.String())
			return
		}
		p.w(x.Op.String())
		p.expr(x.X, prec)
	case *BinaryExpr:
		if x.Op == token.COMMA {
			p.expr(x.X, 1)
			p.w(", ")
			p.expr(x.Y, 1)
			return
		}
		p.expr(x.X, prec)
		p.f(" %s ", x.Op)
		p.expr(x.Y, prec+1)
	case *AssignExpr:
		p.expr(x.LHS, prec+1)
		p.f(" %s ", x.Op)
		p.expr(x.RHS, prec)
	case *CondExpr:
		p.expr(x.Cond, prec+1)
		p.w(" ? ")
		p.expr(x.Then, 0)
		p.w(" : ")
		p.expr(x.Else, prec)
	case *CallExpr:
		p.w(x.Fun)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a, 1)
		}
		p.w(")")
	case *IndexExpr:
		p.expr(x.X, 13)
		p.w("[")
		p.expr(x.Index, 0)
		p.w("]")
	case *MemberExpr:
		p.expr(x.X, 13)
		p.w("." + x.Sel)
	case *CastExpr:
		p.f("(%s)", typeStr(x.To))
		p.expr(x.X, prec)
	case *VecLit:
		p.f("(%s)(", typeStr(x.To))
		for i, el := range x.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.expr(el, 1)
		}
		p.w(")")
	}
}
