// Package ast defines the abstract syntax tree for the OpenCL C subset
// accepted by the FlexCL frontend, together with the source-level type
// representation shared by the semantic analyzer and the IR generator.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/opencl/token"
)

// AddrSpace is an OpenCL address space qualifier.
type AddrSpace int

// The OpenCL address spaces. ASPrivate is the default for locals and
// non-pointer parameters.
const (
	ASPrivate AddrSpace = iota
	ASGlobal
	ASLocal
	ASConstant
)

func (a AddrSpace) String() string {
	switch a {
	case ASGlobal:
		return "__global"
	case ASLocal:
		return "__local"
	case ASConstant:
		return "__constant"
	default:
		return "__private"
	}
}

// BaseKind is the scalar element kind of a type.
type BaseKind int

// Scalar element kinds.
const (
	KVoid BaseKind = iota
	KBool
	KChar
	KUChar
	KShort
	KUShort
	KInt
	KUInt
	KLong
	KULong
	KFloat
	KDouble
)

var baseNames = [...]string{
	KVoid: "void", KBool: "bool", KChar: "char", KUChar: "uchar",
	KShort: "short", KUShort: "ushort", KInt: "int", KUInt: "uint",
	KLong: "long", KULong: "ulong", KFloat: "float", KDouble: "double",
}

func (k BaseKind) String() string { return baseNames[k] }

// IsFloat reports whether the kind is a floating-point kind.
func (k BaseKind) IsFloat() bool { return k == KFloat || k == KDouble }

// IsInteger reports whether the kind is an integer (or bool/char) kind.
func (k BaseKind) IsInteger() bool { return k >= KBool && k <= KULong }

// IsUnsigned reports whether the kind is an unsigned integer kind.
func (k BaseKind) IsUnsigned() bool {
	switch k {
	case KBool, KUChar, KUShort, KUInt, KULong:
		return true
	}
	return false
}

// Size returns the size of the scalar kind in bytes.
func (k BaseKind) Size() int {
	switch k {
	case KVoid:
		return 0
	case KBool, KChar, KUChar:
		return 1
	case KShort, KUShort:
		return 2
	case KInt, KUInt, KFloat:
		return 4
	default:
		return 8
	}
}

// Type is a source-level OpenCL type: a scalar or vector element type,
// optionally a pointer, with an address space for pointees.
type Type struct {
	Base  BaseKind
	Vec   int       // vector width; 0 or 1 for scalar, else 2/3/4/8/16
	Ptr   bool      // pointer to the (possibly vector) element type
	Space AddrSpace // address space of the pointee (for Ptr) or of the object
	Const bool
}

// Scalar constructs a non-pointer scalar type in the private space.
func Scalar(k BaseKind) Type { return Type{Base: k, Vec: 1} }

// Vector constructs a non-pointer vector type in the private space.
func Vector(k BaseKind, w int) Type { return Type{Base: k, Vec: w} }

// Pointer constructs a pointer to elem within the given address space.
func Pointer(elem Type, space AddrSpace) Type {
	elem.Ptr = true
	elem.Space = space
	return elem
}

// Elem returns the pointee type of a pointer type.
func (t Type) Elem() Type {
	t.Ptr = false
	return t
}

// IsVoid reports whether the type is void (and not a pointer).
func (t Type) IsVoid() bool { return !t.Ptr && t.Base == KVoid }

// IsScalar reports whether the type is a non-pointer scalar.
func (t Type) IsScalar() bool { return !t.Ptr && t.Vec <= 1 && t.Base != KVoid }

// IsVector reports whether the type is a non-pointer vector.
func (t Type) IsVector() bool { return !t.Ptr && t.Vec >= 2 }

// Lanes returns the number of vector lanes (1 for scalars).
func (t Type) Lanes() int {
	if t.Vec <= 1 {
		return 1
	}
	return t.Vec
}

// ElemSize returns the size in bytes of one element of the type: the
// scalar size for scalars and pointees, scalar size × lanes for vectors.
func (t Type) ElemSize() int { return t.Base.Size() * t.Lanes() }

func (t Type) String() string {
	var sb strings.Builder
	if t.Ptr && t.Space != ASPrivate {
		sb.WriteString(t.Space.String())
		sb.WriteByte(' ')
	}
	sb.WriteString(t.Base.String())
	if t.Vec >= 2 {
		fmt.Fprintf(&sb, "%d", t.Vec)
	}
	if t.Ptr {
		sb.WriteByte('*')
	}
	return sb.String()
}

// Equal reports whether two types are identical (ignoring const).
func (t Type) Equal(o Type) bool {
	return t.Base == o.Base && t.Lanes() == o.Lanes() && t.Ptr == o.Ptr &&
		(!t.Ptr || t.Space == o.Space)
}

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
	// Type returns the type assigned by semantic analysis (zero value
	// before sema runs).
	TypeOf() Type
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Attr is one element of an __attribute__((...)) list.
type Attr struct {
	Name string
	Args []int64
}

// File is a parsed translation unit.
type File struct {
	Name    string
	Funcs   []*FuncDecl // kernels and helper functions, in source order
	Pragmas []Pragma
}

// Pragma records one #pragma with the line it appeared on.
type Pragma struct {
	Position token.Pos
	Text     string
}

// Pos returns the position of the first function, or an empty position.
func (f *File) Pos() token.Pos {
	if len(f.Funcs) > 0 {
		return f.Funcs[0].Pos()
	}
	return token.Pos{}
}

// Kernels returns only the __kernel functions of the file.
func (f *File) Kernels() []*FuncDecl {
	var ks []*FuncDecl
	for _, fn := range f.Funcs {
		if fn.IsKernel {
			ks = append(ks, fn)
		}
	}
	return ks
}

// Kernel returns the kernel with the given name, or nil.
func (f *File) Kernel(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.IsKernel && fn.Name == name {
			return fn
		}
	}
	return nil
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Position token.Pos
	Name     string
	Type     Type
}

func (p *ParamDecl) Pos() token.Pos { return p.Position }

// FuncDecl is a function definition (kernels and device helpers).
type FuncDecl struct {
	Position token.Pos
	Name     string
	IsKernel bool
	Attrs    []Attr
	Params   []*ParamDecl
	Ret      Type
	Body     *BlockStmt
}

func (f *FuncDecl) Pos() token.Pos { return f.Position }

// ReqdWorkGroupSize returns the reqd_work_group_size attribute if present.
func (f *FuncDecl) ReqdWorkGroupSize() (dims [3]int64, ok bool) {
	for _, a := range f.Attrs {
		if a.Name == "reqd_work_group_size" && len(a.Args) == 3 {
			copy(dims[:], a.Args)
			return dims, true
		}
	}
	return dims, false
}

// ---- Statements ----

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Position token.Pos
	List     []Stmt
}

// DeclStmt declares one variable (arrays included).
type DeclStmt struct {
	Position token.Pos
	Name     string
	Type     Type
	Space    AddrSpace // __local arrays inside kernels live in ASLocal
	ArrayLen []Expr    // nil for scalars; constant dimensions for arrays
	Init     Expr      // optional initializer
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Position token.Pos
	X        Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Position token.Pos
	Cond     Expr
	Then     Stmt
	Else     Stmt // may be nil
}

// ForStmt is a C for loop. Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	Position token.Pos
	Init     Stmt // may be nil
	Cond     Expr // may be nil
	Post     Expr // may be nil
	Body     Stmt
	Unroll   int // unroll factor from #pragma unroll; 0 = none, -1 = full
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Position token.Pos
	Cond     Expr
	Body     Stmt
	Unroll   int
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Position token.Pos
	Cond     Expr
	Body     Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Position token.Pos
	X        Expr // may be nil
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Position token.Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Position token.Pos }

// BarrierStmt is a call to barrier(...); it is a statement-level construct
// because it affects communication-mode inference and CDFG construction.
type BarrierStmt struct {
	Position token.Pos
	Global   bool // CLK_GLOBAL_MEM_FENCE present
	Local    bool // CLK_LOCAL_MEM_FENCE present
}

// SwitchStmt is a C switch over an integer expression. Cases preserve
// source order; fallthrough is implicit unless a body ends in break.
type SwitchStmt struct {
	Position token.Pos
	Cond     Expr
	Cases    []SwitchCase
}

// SwitchCase is one case (or default) arm of a switch.
type SwitchCase struct {
	Position token.Pos
	// Vals holds the case label expressions; nil marks default.
	Vals []Expr
	Body []Stmt
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ Position token.Pos }

func (s *BlockStmt) Pos() token.Pos    { return s.Position }
func (s *DeclStmt) Pos() token.Pos     { return s.Position }
func (s *ExprStmt) Pos() token.Pos     { return s.Position }
func (s *IfStmt) Pos() token.Pos       { return s.Position }
func (s *ForStmt) Pos() token.Pos      { return s.Position }
func (s *WhileStmt) Pos() token.Pos    { return s.Position }
func (s *DoWhileStmt) Pos() token.Pos  { return s.Position }
func (s *ReturnStmt) Pos() token.Pos   { return s.Position }
func (s *BreakStmt) Pos() token.Pos    { return s.Position }
func (s *ContinueStmt) Pos() token.Pos { return s.Position }
func (s *BarrierStmt) Pos() token.Pos  { return s.Position }
func (s *SwitchStmt) Pos() token.Pos   { return s.Position }
func (s *EmptyStmt) Pos() token.Pos    { return s.Position }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*BarrierStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// ---- Expressions ----

// typed carries the semantic type of an expression; embedded in each node.
type typed struct{ T Type }

// SetType records the semantic type; used by the sema package.
func (t *typed) SetType(ty Type) { t.T = ty }

// Ident is a reference to a named entity.
type Ident struct {
	typed
	Position token.Pos
	Name     string
}

// IntLit is an integer literal.
type IntLit struct {
	typed
	Position token.Pos
	Value    int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typed
	Position token.Pos
	Value    float64
}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	typed
	Position token.Pos
	X        Expr
}

// UnaryExpr is a prefix or postfix unary operation. For INC/DEC, Postfix
// distinguishes i++ from ++i.
type UnaryExpr struct {
	typed
	Position token.Pos
	Op       token.Kind // ADD SUB NOT TILDE MUL AND INC DEC
	X        Expr
	Postfix  bool
}

// BinaryExpr is an infix binary operation (non-assignment).
type BinaryExpr struct {
	typed
	Position token.Pos
	Op       token.Kind
	X, Y     Expr
}

// AssignExpr is =, += etc. LHS must be an lvalue.
type AssignExpr struct {
	typed
	Position token.Pos
	Op       token.Kind
	LHS, RHS Expr
}

// CondExpr is the ternary ?: operator.
type CondExpr struct {
	typed
	Position   token.Pos
	Cond       Expr
	Then, Else Expr
}

// CallExpr is a call to a builtin or helper function.
type CallExpr struct {
	typed
	Position token.Pos
	Fun      string
	Args     []Expr
}

// IndexExpr is array/pointer subscripting.
type IndexExpr struct {
	typed
	Position token.Pos
	X, Index Expr
}

// MemberExpr selects vector components: v.x, v.s0, v.xy (swizzles).
type MemberExpr struct {
	typed
	Position token.Pos
	X        Expr
	Sel      string
	Lanes    []int // resolved component indices (by sema)
}

// CastExpr is an explicit C-style cast.
type CastExpr struct {
	typed
	Position token.Pos
	To       Type
	X        Expr
}

// VecLit is a vector literal such as (float4)(a, b, c, d).
type VecLit struct {
	typed
	Position token.Pos
	To       Type
	Elems    []Expr
}

func (e *Ident) Pos() token.Pos      { return e.Position }
func (e *IntLit) Pos() token.Pos     { return e.Position }
func (e *FloatLit) Pos() token.Pos   { return e.Position }
func (e *ParenExpr) Pos() token.Pos  { return e.Position }
func (e *UnaryExpr) Pos() token.Pos  { return e.Position }
func (e *BinaryExpr) Pos() token.Pos { return e.Position }
func (e *AssignExpr) Pos() token.Pos { return e.Position }
func (e *CondExpr) Pos() token.Pos   { return e.Position }
func (e *CallExpr) Pos() token.Pos   { return e.Position }
func (e *IndexExpr) Pos() token.Pos  { return e.Position }
func (e *MemberExpr) Pos() token.Pos { return e.Position }
func (e *CastExpr) Pos() token.Pos   { return e.Position }
func (e *VecLit) Pos() token.Pos     { return e.Position }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*ParenExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*MemberExpr) exprNode() {}
func (*CastExpr) exprNode()   {}
func (*VecLit) exprNode()     {}

func (t *typed) TypeOf() Type { return t.T }

// Unparen strips any number of enclosing ParenExprs.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Walk calls fn for every node in the subtree rooted at n, parents before
// children. If fn returns false the node's children are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, f := range x.Funcs {
			Walk(f, fn)
		}
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, fn)
		}
		if x.Body != nil {
			Walk(x.Body, fn)
		}
	case *BlockStmt:
		for _, s := range x.List {
			Walk(s, fn)
		}
	case *DeclStmt:
		for _, d := range x.ArrayLen {
			Walk(d, fn)
		}
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *DoWhileStmt:
		Walk(x.Body, fn)
		Walk(x.Cond, fn)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *SwitchStmt:
		Walk(x.Cond, fn)
		for _, c := range x.Cases {
			for _, v := range c.Vals {
				Walk(v, fn)
			}
			for _, s := range c.Body {
				Walk(s, fn)
			}
		}
	case *ParenExpr:
		Walk(x.X, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *AssignExpr:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *CondExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *MemberExpr:
		Walk(x.X, fn)
	case *CastExpr:
		Walk(x.X, fn)
	case *VecLit:
		for _, e := range x.Elems {
			Walk(e, fn)
		}
	}
}
