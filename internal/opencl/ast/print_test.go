package ast_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/opencl/ast"
	"repro/internal/opencl/parser"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse("t.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestPrintSimpleKernel(t *testing.T) {
	f := parse(t, `
__kernel void vadd(__global const float* a, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] * 2.0f; }
}`)
	out := ast.Print(f)
	for _, want := range []string{
		"__kernel void vadd", "__global const float*", "get_global_id(0)",
		"if (i < n)", "c[i] = a[i] * 2.0f",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}

// TestRoundTrip checks the printer's central property: printed source
// reparses, and printing the reparse is a fixed point.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`__kernel void k(__global int* x, int n) {
            int s = 0;
            for (int i = 0; i < n; i += 2) { s += x[i] * (i - 1); }
            while (s > 100) { s = s / 2; }
            do { s++; } while (s < 10);
            x[0] = s > 0 ? s : -s;
        }`,
		`__kernel void v(__global float4* x) {
            float4 a = x[0];
            a.xy = a.zw;
            x[1] = (float4)(1.0f, 2.0f, 3.0f, 4.0f) + a;
        }`,
		`float helper(float a) { return sqrt(a) + 1.5f; }
        __kernel void h(__global float* x) {
            __local float t[32];
            int l = get_local_id(0);
            t[l] = helper(x[l]);
            barrier(CLK_LOCAL_MEM_FENCE);
            x[l] = t[31 - l];
        }`,
	}
	for i, src := range srcs {
		first := ast.Print(parse(t, src))
		second := ast.Print(parse(t, first))
		if first != second {
			t.Errorf("case %d: print is not a fixed point:\n--- first:\n%s\n--- second:\n%s",
				i, first, second)
		}
	}
}

// TestRoundTripCorpus round-trips every benchmark kernel in the repo.
func TestRoundTripCorpus(t *testing.T) {
	for _, k := range bench.All() {
		k := k
		t.Run(k.ID(), func(t *testing.T) {
			defines := map[string]string{"WG": "64"}
			for key, v := range k.Defines {
				defines[key] = v
			}
			f, err := parser.Parse(k.ID(), []byte(k.Source), defines)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			printed := ast.Print(f)
			f2, err := parser.Parse(k.ID()+".printed", []byte(printed), nil)
			if err != nil {
				t.Fatalf("reparse failed: %v\n%s", err, printed)
			}
			if again := ast.Print(f2); again != printed {
				t.Errorf("not a fixed point")
			}
		})
	}
}

func TestPrecedencePreserved(t *testing.T) {
	// (a + b) * c must keep its parentheses through the round trip.
	f := parse(t, `__kernel void k(__global int* x) { x[0] = (x[1] + x[2]) * x[3]; }`)
	out := ast.Print(f)
	if !strings.Contains(out, "(x[1] + x[2]) * x[3]") {
		t.Errorf("precedence lost:\n%s", out)
	}
	// a + b * c must NOT gain parentheses.
	f2 := parse(t, `__kernel void k(__global int* x) { x[0] = x[1] + x[2] * x[3]; }`)
	out2 := ast.Print(f2)
	if !strings.Contains(out2, "x[1] + x[2] * x[3]") {
		t.Errorf("spurious parens:\n%s", out2)
	}
}

func TestPrintExprAndStmt(t *testing.T) {
	f := parse(t, `__kernel void k(__global int* x) { x[0] = 1 + 2; }`)
	var es *ast.ExprStmt
	ast.Walk(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.ExprStmt); ok {
			es = s
		}
		return true
	})
	if got := ast.PrintExpr(es.X); got != "x[0] = 1 + 2" {
		t.Errorf("PrintExpr = %q", got)
	}
	if got := strings.TrimSpace(ast.PrintStmt(es)); got != "x[0] = 1 + 2;" {
		t.Errorf("PrintStmt = %q", got)
	}
}

func TestRoundTripSwitch(t *testing.T) {
	src := `__kernel void k(__global int* x) {
        switch (x[0] % 3) {
        case 0:
            x[1] = 1;
            break;
        case 1:
        case 2:
            x[1] = 2;
        default:
            x[1] = 3;
            break;
        }
    }`
	first := ast.Print(parse(t, src))
	second := ast.Print(parse(t, first))
	if first != second {
		t.Fatalf("switch round trip unstable:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, "switch (") || !strings.Contains(first, "default:") {
		t.Fatalf("switch not printed:\n%s", first)
	}
}
