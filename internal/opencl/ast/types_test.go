package ast

import (
	"testing"
	"testing/quick"
)

func TestTypeConstructors(t *testing.T) {
	f := Scalar(KFloat)
	if !f.IsScalar() || f.IsVector() || f.IsVoid() || f.Lanes() != 1 {
		t.Error("scalar predicates wrong")
	}
	v := Vector(KInt, 4)
	if !v.IsVector() || v.Lanes() != 4 || v.ElemSize() != 16 {
		t.Error("vector predicates wrong")
	}
	p := Pointer(Scalar(KFloat), ASGlobal)
	if !p.Ptr || p.Space != ASGlobal {
		t.Error("pointer construction wrong")
	}
	e := p.Elem()
	if e.Ptr || e.Base != KFloat {
		t.Error("Elem wrong")
	}
	if !Scalar(KVoid).IsVoid() {
		t.Error("void predicate wrong")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"float":           Scalar(KFloat),
		"int4":            Vector(KInt, 4),
		"__global float*": Pointer(Scalar(KFloat), ASGlobal),
		"__local int*":    Pointer(Scalar(KInt), ASLocal),
		"uchar":           Scalar(KUChar),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestBaseKindSizes(t *testing.T) {
	sizes := map[BaseKind]int{
		KVoid: 0, KBool: 1, KChar: 1, KUChar: 1, KShort: 2, KUShort: 2,
		KInt: 4, KUInt: 4, KFloat: 4, KLong: 8, KULong: 8, KDouble: 8,
	}
	for k, want := range sizes {
		if k.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", k, k.Size(), want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KFloat.IsFloat() || KInt.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if !KUInt.IsUnsigned() || KInt.IsUnsigned() || !KBool.IsUnsigned() {
		t.Error("IsUnsigned wrong")
	}
	if !KChar.IsInteger() || KFloat.IsInteger() || KVoid.IsInteger() {
		t.Error("IsInteger wrong")
	}
}

func TestTypeEqualProperty(t *testing.T) {
	f := func(b1, b2 uint8, v1, v2 uint8, ptr1, ptr2 bool) bool {
		t1 := Type{Base: BaseKind(b1 % 12), Vec: int(v1%4) + 1, Ptr: ptr1}
		t2 := Type{Base: BaseKind(b2 % 12), Vec: int(v2%4) + 1, Ptr: ptr2}
		// Equal must be reflexive and symmetric.
		if !t1.Equal(t1) || !t2.Equal(t2) {
			return false
		}
		return t1.Equal(t2) == t2.Equal(t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrSpaceStrings(t *testing.T) {
	want := map[AddrSpace]string{
		ASGlobal: "__global", ASLocal: "__local",
		ASConstant: "__constant", ASPrivate: "__private",
	}
	for sp, s := range want {
		if sp.String() != s {
			t.Errorf("%d.String() = %q", sp, sp.String())
		}
	}
}

func TestReqdWorkGroupSize(t *testing.T) {
	fn := &FuncDecl{Attrs: []Attr{{Name: "reqd_work_group_size", Args: []int64{8, 8, 1}}}}
	dims, ok := fn.ReqdWorkGroupSize()
	if !ok || dims != [3]int64{8, 8, 1} {
		t.Errorf("dims = %v ok = %v", dims, ok)
	}
	if _, ok := (&FuncDecl{}).ReqdWorkGroupSize(); ok {
		t.Error("phantom attribute")
	}
}
