package interp

import (
	"sync"

	"repro/internal/ir"
)

// groupIndependent reports whether a kernel's profiled behavior cannot
// depend on the execution order of its work-groups: no global buffer is
// both read and written by the kernel (an atomic is both at once), so
// no group can observe another group's writes. Only such kernels may be
// profiled with work-groups running in parallel — for the rest, the
// sequential dispatch order is part of the semantics the profile must
// reproduce.
func groupIndependent(f *ir.Func) bool {
	loaded := make(map[ir.Storage]bool)
	written := make(map[ir.Storage]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			p, isParam := in.Mem.(*ir.Param)
			if !isParam {
				continue // allocas are group- or work-item-private
			}
			switch in.Op {
			case ir.OpLoad:
				loaded[p] = true
			case ir.OpStore:
				written[p] = true
			case ir.OpAtomic:
				// Atomics additionally need launch-wide mutual exclusion,
				// which the per-group execution below does not provide.
				return false
			}
		}
	}
	for p := range written {
		if loaded[p] {
			return false
		}
	}
	return true
}

// executeParallel profiles the sampled work-groups on parallel workers.
// Each group runs into a private partial profile; partials are merged
// in dispatch order, so the result is bitwise identical to sequential
// execution at any worker count (per-block counts are integer-valued
// float sums, exact under any grouping below 2^53). ok is false when
// the launch has too few sampled groups to be worth fanning out;
// callers then fall back to the sequential path.
func executeParallel(f *ir.Func, cfg *Config, sample groupSample, workers int) (*Profile, bool, error) {
	nd := cfg.Range.Normalize()
	groups := nd.NumGroups()
	if nd.WorkGroupSize() <= 0 {
		return nil, false, nil // sequential path reports the error
	}

	// Enumerate the selected groups in dispatch order.
	var sels [][3]int64
	gid := int64(0)
loop:
	for gz := int64(0); gz < groups[2]; gz++ {
		for gy := int64(0); gy < groups[1]; gy++ {
			for gx := int64(0); gx < groups[0]; gx++ {
				if sample.last >= 0 && gid > sample.last {
					break loop
				}
				if sample.sel(gid) {
					sels = append(sels, [3]int64{gx, gy, gz})
				}
				gid++
			}
		}
	}
	if len(sels) < 2 {
		return nil, false, nil
	}
	if workers > len(sels) {
		workers = len(sels)
	}

	if err := validateArgs(f, cfg); err != nil {
		return nil, true, err
	}

	// Locals are per group and buffer cells are accessed with
	// per-element atomics (see readBuf), so concurrent groups are
	// race-free; group independence guarantees no group's profile can
	// observe another's buffer writes.
	partials := make([]*Profile, len(sels))
	errs := make([]error, len(sels))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := &Profile{BlockCounts: make(map[*ir.Block]float64)}
				var mu sync.Mutex
				errs[i] = runGroup(f, cfg, nd, sels[i], true, p, &mu)
				partials[i] = p
			}
		}()
	}
	for i := range sels {
		next <- i
	}
	close(next)
	wg.Wait()

	// Merge in dispatch order, stopping at the first failed group with
	// the partial profile of the groups before it — exactly what the
	// sequential path returns.
	prof := &Profile{BlockCounts: make(map[*ir.Block]float64)}
	for i := range sels {
		if errs[i] != nil {
			return prof, true, errs[i]
		}
		p := partials[i]
		prof.WorkItems += p.WorkItems
		for b, c := range p.BlockCounts {
			prof.BlockCounts[b] += c
		}
		prof.Barriers += p.Barriers
		prof.Traces = append(prof.Traces, p.Traces...)
	}
	finalizeProfile(prof)
	return prof, true, nil
}
