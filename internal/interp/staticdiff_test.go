// Corpus-wide differential harness: for every bundled and generated
// kernel whose profile the static analyzer claims, the static profile
// must be field-for-field identical to the interpreter's — and the
// interpreter itself must produce the same profile at every worker
// count, pinning parallel-execution determinism. The package is
// interp_test (not interp) because the corpus lives in bench, which
// imports interp.
package interp_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
)

func corpus() []*bench.Kernel {
	return append(bench.All(), bench.GeneratedCorpus()...)
}

func TestStaticVsInterpCorpus(t *testing.T) {
	const groups = 8
	kernels := corpus()
	for _, k := range kernels {
		k := k
		t.Run(k.Bench+"_"+k.Name, func(t *testing.T) {
			t.Parallel()
			wg := k.MinWG
			f, err := k.Compile(wg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if ok, _ := interp.StaticAnalyzable(f); !ok {
				return // fallback kernels are covered by the interp tests
			}
			for _, spread := range []bool{false, true} {
				sp, sok, err := interp.StaticProfile(f, k.Config(wg), groups, spread)
				if !sok {
					t.Fatal("StaticAnalyzable true but StaticProfile declined")
				}
				if err != nil {
					t.Fatalf("static profile (spread=%v): %v", spread, err)
				}
				// Fresh Config per run: the interpreter mutates buffers.
				for _, workers := range []int{1, 2, 4, 8} {
					ip, err := interp.InterpProfile(f, k.Config(wg), groups, spread, workers)
					if err != nil {
						t.Fatalf("interp profile (spread=%v, workers=%d): %v", spread, workers, err)
					}
					if d := sp.Diff(ip); d != "" {
						t.Fatalf("static != interp (spread=%v, workers=%d): %s", spread, workers, d)
					}
				}
			}
		})
	}
}

// TestStaticCoverageFloor pins the headline analyzability claim: at
// least 40% of the PolyBench suite takes the static path.
func TestStaticCoverageFloor(t *testing.T) {
	var ok40, total int
	for _, k := range bench.Suite("polybench") {
		f, err := k.Compile(k.MinWG)
		if err != nil {
			t.Fatalf("%s: %v", k.ID(), err)
		}
		total++
		if ok, _ := interp.StaticAnalyzable(f); ok {
			ok40++
		}
	}
	if total == 0 {
		t.Fatal("no polybench kernels")
	}
	if frac := float64(ok40) / float64(total); frac < 0.40 {
		t.Errorf("polybench static coverage = %d/%d (%.0f%%), want >= 40%%", ok40, total, 100*frac)
	} else {
		t.Logf("polybench static coverage: %d/%d (%.0f%%)", ok40, total, 100*frac)
	}
}

// TestDispatcherUsesStaticPath pins that ProfileKernel actually routes
// analyzable kernels through the fast path (Source tells which).
func TestDispatcherRecordsSource(t *testing.T) {
	va, err := bench.Generate(bench.GenSpec{Family: "vecadd", N: 256})
	if err != nil {
		t.Fatal(err)
	}
	f, err := va.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := interp.ProfileKernel(f, va.Config(64), 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Source != interp.SourceStatic {
		t.Errorf("vecadd profile source = %q, want %q", prof.Source, interp.SourceStatic)
	}

	dd, err := bench.Generate(bench.GenSpec{Family: "datadep", N: 256})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := dd.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	prof, err = interp.ProfileKernel(fd, dd.Config(64), 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Source == interp.SourceStatic {
		t.Error("datadep must not take the static path")
	}
}
