package interp

import (
	"testing"

	"repro/internal/opencl/ast"
)

func TestSwitchDispatch(t *testing.T) {
	k := compileKernel(t, `
__kernel void sw(__global int* x) {
    int i = get_global_id(0);
    int out;
    switch (x[i] % 4) {
    case 0:
        out = 100;
        break;
    case 1:
    case 2:
        out = 200;
        break;
    default:
        out = 300;
        break;
    }
    x[i] = out;
}`, "sw")
	x := NewIntBuffer(ast.KInt, 8)
	for i := range x.I {
		x.I[i] = int64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 200, 200, 300, 100, 200, 200, 300}
	for i := range want {
		if x.I[i] != want[i] {
			t.Fatalf("x[%d] = %d, want %d", i, x.I[i], want[i])
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	k := compileKernel(t, `
__kernel void ft(__global int* x) {
    int i = get_global_id(0);
    int acc = 0;
    switch (x[i]) {
    case 0:
        acc += 1;
    case 1:
        acc += 10;
    case 2:
        acc += 100;
        break;
    default:
        acc = -1;
    }
    x[i] = acc;
}`, "ft")
	x := NewIntBuffer(ast.KInt, 4)
	for i := range x.I {
		x.I[i] = int64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{4}, Local: [3]int64{4}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// 0 → 1+10+100; 1 → 10+100; 2 → 100; 3 → default −1.
	want := []int64{111, 110, 100, -1}
	for i := range want {
		if x.I[i] != want[i] {
			t.Fatalf("x[%d] = %d, want %d", i, x.I[i], want[i])
		}
	}
}

func TestSwitchInsideLoopContinue(t *testing.T) {
	// continue inside a switch must bind to the enclosing loop.
	k := compileKernel(t, `
__kernel void sl(__global int* x, int n) {
    int i = get_global_id(0);
    int s = 0;
    for (int j = 0; j < n; j++) {
        switch (j % 3) {
        case 0:
            continue;
        case 1:
            s += 10;
            break;
        default:
            s += 1;
            break;
        }
        s += 100;
    }
    x[i] = s;
}`, "sl")
	x := NewIntBuffer(ast.KInt, 1)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
		Scalars: map[string]Val{"n": IntVal(6)},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// j=0,3 continue; j=1,4: 10+100; j=2,5: 1+100 → 2*110 + 2*101 = 422.
	if x.I[0] != 422 {
		t.Fatalf("s = %d, want 422", x.I[0])
	}
}

func TestSwitchNoDefault(t *testing.T) {
	k := compileKernel(t, `
__kernel void nd(__global int* x) {
    int i = get_global_id(0);
    int out = 7;
    switch (x[i]) {
    case 42:
        out = 1;
        break;
    }
    x[i] = out;
}`, "nd")
	x := NewIntBuffer(ast.KInt, 2)
	x.I[0], x.I[1] = 42, 5
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{2}, Local: [3]int64{2}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if x.I[0] != 1 || x.I[1] != 7 {
		t.Fatalf("got %v, want [1 7]", x.I)
	}
}
