package interp

// Clone returns a deep copy of the value: vector lanes are copied
// recursively so no slice is shared with the original.
func (v Val) Clone() Val {
	if v.Vec == nil {
		return v
	}
	out := v
	out.Vec = make([]Val, len(v.Vec))
	for i, l := range v.Vec {
		out.Vec[i] = l.Clone()
	}
	return out
}

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	if b == nil {
		return nil
	}
	nb := &Buffer{Elem: b.Elem}
	if b.I != nil {
		nb.I = append([]int64(nil), b.I...)
	}
	if b.F != nil {
		nb.F = append([]float64(nil), b.F...)
	}
	return nb
}

// Clone returns a deep copy of the launch configuration: buffers,
// scalar map and vector-scalar lanes. Executing or profiling the copy
// cannot disturb the original, and no slice or map is shared between
// the two — handing a shallow copy to a concurrent worker is the same
// class of aliasing bug as the PredCache estimate aliasing fixed in the
// check subsystem PR, so callers that snapshot a Config must use Clone.
func (cfg *Config) Clone() *Config {
	if cfg == nil {
		return nil
	}
	out := &Config{
		Range:   cfg.Range,
		Buffers: make(map[string]*Buffer, len(cfg.Buffers)),
		Scalars: make(map[string]Val, len(cfg.Scalars)),
	}
	for name, b := range cfg.Buffers {
		out.Buffers[name] = b.Clone()
	}
	for name, v := range cfg.Scalars {
		out.Scalars[name] = v.Clone()
	}
	return out
}
