package interp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/irgen"
	"repro/internal/opencl/ast"
)

// The differential tester generates random integer expression programs,
// runs them through the full pipeline (lexer → parser → sema → irgen →
// interpreter) and compares against direct evaluation of the same
// expression tree in Go. Any divergence is a frontend or interpreter bug.

type exprGen struct {
	state uint64
	vars  int // number of available variables v0..v{vars-1}
}

func (g *exprGen) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 11
}

func (g *exprGen) intn(n int) int { return int(g.next() % uint64(n)) }

// gen returns (source, evaluator) for a random int expression of bounded
// depth. The evaluator mirrors C semantics on int32 (the interpreter
// truncates on cast; intermediate math is int64 like the datapath).
func (g *exprGen) gen(depth int) (string, func(env []int64) int64) {
	if depth <= 0 || g.intn(4) == 0 {
		switch g.intn(3) {
		case 0:
			v := g.intn(g.vars)
			return fmt.Sprintf("v%d", v), func(env []int64) int64 { return env[v] }
		default:
			c := int64(g.intn(21) - 10)
			return fmt.Sprintf("(%d)", c), func([]int64) int64 { return c }
		}
	}
	l, lf := g.gen(depth - 1)
	r, rf := g.gen(depth - 1)
	switch g.intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r), func(e []int64) int64 { return lf(e) + rf(e) }
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r), func(e []int64) int64 { return lf(e) - rf(e) }
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r), func(e []int64) int64 { return lf(e) * rf(e) }
	case 3:
		// Guard division: (l / (r | 1 with sign kept away from MinInt)).
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", l, r),
			func(e []int64) int64 { return lf(e) / ((rf(e) & 7) + 1) }
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 7) + 1))", l, r),
			func(e []int64) int64 { return lf(e) % ((rf(e) & 7) + 1) }
	case 5:
		return fmt.Sprintf("(%s & %s)", l, r), func(e []int64) int64 { return lf(e) & rf(e) }
	case 6:
		return fmt.Sprintf("(%s | %s)", l, r), func(e []int64) int64 { return lf(e) | rf(e) }
	default:
		return fmt.Sprintf("((%s < %s) ? %s : %s)", l, r, r, l),
			func(e []int64) int64 {
				if lf(e) < rf(e) {
					return rf(e)
				}
				return lf(e)
			}
	}
}

func TestDifferentialIntExpressions(t *testing.T) {
	const (
		programs = 60
		vars     = 4
		inputs   = 8
	)
	g := &exprGen{state: 0x5eed, vars: vars}
	for pi := 0; pi < programs; pi++ {
		src, ref := g.gen(4)
		var decls, params strings.Builder
		for v := 0; v < vars; v++ {
			fmt.Fprintf(&params, ", __global const int* in%d", v)
			fmt.Fprintf(&decls, "    int v%d = in%d[i];\n", v, v)
		}
		kernel := fmt.Sprintf(`
__kernel void diff(__global int* out%s) {
    int i = get_global_id(0);
%s    out[i] = %s;
}`, params.String(), decls.String(), src)

		m, err := irgen.Compile("diff.cl", []byte(kernel), nil)
		if err != nil {
			t.Fatalf("program %d failed to compile: %v\nsource: %s", pi, err, src)
		}
		k := m.Kernel("diff")

		out := NewIntBuffer(ast.KInt, inputs)
		cfg := &Config{
			Range:   NDRange{Global: [3]int64{inputs}, Local: [3]int64{inputs}},
			Buffers: map[string]*Buffer{"out": out},
		}
		env := make([][]int64, inputs)
		for v := 0; v < vars; v++ {
			buf := NewIntBuffer(ast.KInt, inputs)
			for i := 0; i < inputs; i++ {
				buf.I[i] = int64(g.intn(41) - 20)
			}
			cfg.Buffers[fmt.Sprintf("in%d", v)] = buf
			for i := 0; i < inputs; i++ {
				if env[i] == nil {
					env[i] = make([]int64, vars)
				}
				env[i][v] = buf.I[i]
			}
		}
		if err := Run(k, cfg); err != nil {
			t.Fatalf("program %d failed to run: %v\nsource: %s", pi, err, src)
		}
		for i := 0; i < inputs; i++ {
			want := ref(env[i])
			if out.I[i] != want {
				t.Fatalf("program %d input %d: pipeline %d, reference %d\nexpr: %s\nenv: %v",
					pi, i, out.I[i], want, src, env[i])
			}
		}
	}
}

// TestDifferentialFloatExpressions does the same over a float grammar
// (add/sub/mul plus fmin/fmax/fabs), comparing within an ulp-scaled
// tolerance because the kernel's float casts round through float32.
func TestDifferentialFloatExpressions(t *testing.T) {
	g := &exprGen{state: 0xfaceb00c, vars: 3}
	var genF func(depth int) (string, func(env []float64) float64)
	genF = func(depth int) (string, func(env []float64) float64) {
		if depth <= 0 || g.intn(4) == 0 {
			if g.intn(2) == 0 {
				v := g.intn(3)
				return fmt.Sprintf("v%d", v), func(e []float64) float64 { return e[v] }
			}
			c := float64(g.intn(17)-8) * 0.25
			return fmt.Sprintf("(%gf)", c), func([]float64) float64 { return c }
		}
		l, lf := genF(depth - 1)
		r, rf := genF(depth - 1)
		switch g.intn(6) {
		case 0:
			return fmt.Sprintf("(%s + %s)", l, r), func(e []float64) float64 { return lf(e) + rf(e) }
		case 1:
			return fmt.Sprintf("(%s - %s)", l, r), func(e []float64) float64 { return lf(e) - rf(e) }
		case 2, 3:
			return fmt.Sprintf("(%s * %s)", l, r), func(e []float64) float64 { return lf(e) * rf(e) }
		case 4:
			return fmt.Sprintf("fmax(%s, %s)", l, r), func(e []float64) float64 { return math.Max(lf(e), rf(e)) }
		default:
			return fmt.Sprintf("fmin(%s, %s)", l, r), func(e []float64) float64 { return math.Min(lf(e), rf(e)) }
		}
	}

	const programs = 40
	for pi := 0; pi < programs; pi++ {
		src, ref := genF(4)
		kernel := fmt.Sprintf(`
__kernel void diff(__global float* out, __global const float* in0,
                   __global const float* in1, __global const float* in2) {
    int i = get_global_id(0);
    float v0 = in0[i];
    float v1 = in1[i];
    float v2 = in2[i];
    out[i] = %s;
}`, src)
		m, err := irgen.Compile("diff.cl", []byte(kernel), nil)
		if err != nil {
			t.Fatalf("program %d compile: %v\nexpr: %s", pi, err, src)
		}
		k := m.Kernel("diff")
		const inputs = 8
		out := NewFloatBuffer(ast.KFloat, inputs)
		cfg := &Config{
			Range:   NDRange{Global: [3]int64{inputs}, Local: [3]int64{inputs}},
			Buffers: map[string]*Buffer{"out": out},
		}
		env := make([][]float64, inputs)
		for v := 0; v < 3; v++ {
			buf := NewFloatBuffer(ast.KFloat, inputs)
			for i := 0; i < inputs; i++ {
				buf.F[i] = float64(g.intn(33)-16) * 0.125
			}
			cfg.Buffers[fmt.Sprintf("in%d", v)] = buf
			for i := 0; i < inputs; i++ {
				if env[i] == nil {
					env[i] = make([]float64, 3)
				}
				env[i][v] = buf.F[i]
			}
		}
		if err := Run(k, cfg); err != nil {
			t.Fatalf("program %d run: %v\nexpr: %s", pi, err, src)
		}
		for i := 0; i < inputs; i++ {
			want := ref(env[i])
			if diff := math.Abs(out.F[i] - want); diff > 1e-6*(math.Abs(want)+1) {
				t.Fatalf("program %d input %d: pipeline %v, reference %v\nexpr: %s",
					pi, i, out.F[i], want, src)
			}
		}
	}
}
