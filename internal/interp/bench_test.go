package interp_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
)

// BenchmarkProfileStaticVsInterp times both profiler paths on a few
// representative kernels (a bandwidth-bound one, a compute-heavy one,
// and a 2-D stencil) at the prep pipeline's group budget, so the static
// path's speedup is visible in CI history via benchstat.
func BenchmarkProfileStaticVsInterp(b *testing.B) {
	const groups = 8
	for _, id := range []string{"backprop/layer", "gemm/gemm", "hotspot/hotspot"} {
		k := bench.FindID(id)
		if k == nil {
			b.Fatalf("kernel %s not bundled", id)
		}
		f, err := k.Compile(k.MinWG)
		if err != nil {
			b.Fatal(err)
		}
		if ok, reason := interp.StaticAnalyzable(f); !ok {
			b.Fatalf("%s not statically analyzable: %s", id, reason)
		}
		b.Run(fmt.Sprintf("static/%s", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := interp.StaticProfile(f, k.Config(k.MinWG), groups, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("interp/%s", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := interp.InterpProfile(f, k.Config(k.MinWG), groups, true, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
