package interp

import (
	"fmt"
	"math"
	"sync/atomic"
	"unsafe"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// exec evaluates one non-terminator instruction.
func (w *wiState) exec(in *ir.Instr) {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a := w.eval(in.Args[0])
		b := w.eval(in.Args[1])
		w.regs[in] = w.arith(in, a, b)

	case ir.OpICmp, ir.OpFCmp:
		a := w.eval(in.Args[0])
		b := w.eval(in.Args[1])
		w.regs[in] = compareVal(in, a, b)

	case ir.OpSelect:
		c := w.eval(in.Args[0])
		a := w.eval(in.Args[1])
		b := w.eval(in.Args[2])
		w.regs[in] = selectVal(in, c, a, b)

	case ir.OpCast:
		w.regs[in] = castVal(w.eval(in.Args[0]), in.Args[0].Type(), in.T)

	case ir.OpLoad:
		idx := w.eval(in.Args[0]).I
		w.regs[in] = w.loadElem(in.Mem, idx, in.T)

	case ir.OpStore:
		idx := w.eval(in.Args[0]).I
		v := w.eval(in.Args[1])
		w.storeElem(in.Mem, idx, v)

	case ir.OpAtomic:
		idx := w.eval(in.Args[0]).I
		var operand Val
		if len(in.Args) > 1 {
			operand = w.eval(in.Args[1])
		}
		w.regs[in] = w.atomic(in, idx, operand)

	case ir.OpCall:
		w.regs[in] = w.builtin(in)

	case ir.OpWorkItem:
		w.regs[in] = IntVal(w.workItem(in.Fn, in.Dim))

	case ir.OpVecBuild:
		args := make([]Val, len(in.Args))
		for i, a := range in.Args {
			args[i] = w.eval(a)
		}
		w.regs[in] = vecBuildVal(args)

	case ir.OpVecExtract:
		w.regs[in] = vecExtractVal(in, w.eval(in.Args[0]))

	case ir.OpVecInsert:
		args := make([]Val, len(in.Args))
		for i, a := range in.Args {
			args[i] = w.eval(a)
		}
		w.regs[in] = vecInsertVal(in, args)

	case ir.OpBarrier:
		w.barriers++
		if !w.bar.wait() {
			// A peer died; unwind without touching shared state again.
			panic(execError{errGroupAborted})
		}

	default:
		w.fail("unsupported op %v", in.Op)
	}
}

// lane extracts lane i of a (possibly scalar) value.
func lane(v Val, i int) Val {
	if v.Vec == nil {
		return v
	}
	if i >= len(v.Vec) {
		return Val{}
	}
	return v.Vec[i]
}

// The evaluators below are pure functions of (instruction, operand
// values) shared by the work-item interpreter and the static-profile
// plan executor, so the two paths cannot drift: one switch defines each
// operation's semantics.

func (w *wiState) arith(in *ir.Instr, a, b Val) Val {
	v, err := arithVal(in, a, b)
	if err != nil {
		panic(execError{err})
	}
	return v
}

func arithVal(in *ir.Instr, a, b Val) (Val, error) {
	t := in.T
	if t.IsVector() {
		out := Val{Vec: make([]Val, t.Lanes())}
		for i := range out.Vec {
			v, err := scalarArithVal(in, lane(a, i), lane(b, i))
			if err != nil {
				return Val{}, err
			}
			out.Vec[i] = v
		}
		return out, nil
	}
	return scalarArithVal(in, a, b)
}

func scalarArithVal(in *ir.Instr, a, b Val) (Val, error) {
	switch in.Op {
	case ir.OpAdd:
		return IntVal(a.I + b.I), nil
	case ir.OpSub:
		return IntVal(a.I - b.I), nil
	case ir.OpMul:
		return IntVal(a.I * b.I), nil
	case ir.OpDiv:
		if b.I == 0 {
			return Val{}, fmt.Errorf("interp: integer division by zero")
		}
		if in.T.Base.IsUnsigned() {
			return IntVal(int64(uint64(a.I) / uint64(b.I))), nil
		}
		return IntVal(a.I / b.I), nil
	case ir.OpRem:
		if b.I == 0 {
			return Val{}, fmt.Errorf("interp: integer remainder by zero")
		}
		if in.T.Base.IsUnsigned() {
			return IntVal(int64(uint64(a.I) % uint64(b.I))), nil
		}
		return IntVal(a.I % b.I), nil
	case ir.OpAnd:
		return IntVal(a.I & b.I), nil
	case ir.OpOr:
		return IntVal(a.I | b.I), nil
	case ir.OpXor:
		return IntVal(a.I ^ b.I), nil
	case ir.OpShl:
		return IntVal(a.I << uint(b.I&63)), nil
	case ir.OpLShr:
		return IntVal(int64(uint64(a.I) >> uint(b.I&63))), nil
	case ir.OpAShr:
		return IntVal(a.I >> uint(b.I&63)), nil
	case ir.OpFAdd:
		return FloatVal(a.F + b.F), nil
	case ir.OpFSub:
		return FloatVal(a.F - b.F), nil
	case ir.OpFMul:
		return FloatVal(a.F * b.F), nil
	case ir.OpFDiv:
		return FloatVal(a.F / b.F), nil
	}
	return Val{}, fmt.Errorf("interp: bad arith op %v", in.Op)
}

// selectVal implements OpSelect over evaluated operands.
func selectVal(in *ir.Instr, c, a, b Val) Val {
	if in.T.IsVector() && c.Vec != nil {
		out := Val{Vec: make([]Val, in.T.Lanes())}
		for i := range out.Vec {
			if lane(c, i).I != 0 || lane(c, i).F != 0 {
				out.Vec[i] = lane(a, i)
			} else {
				out.Vec[i] = lane(b, i)
			}
		}
		return out
	}
	if truthy(c) {
		return a
	}
	return b
}

// vecBuildVal packs evaluated args into a vector.
func vecBuildVal(args []Val) Val {
	out := Val{Vec: make([]Val, len(args))}
	copy(out.Vec, args)
	return out
}

// vecExtractVal implements OpVecExtract over an evaluated operand.
func vecExtractVal(in *ir.Instr, v Val) Val {
	if len(in.Lanes) == 1 {
		return lane(v, in.Lanes[0])
	}
	out := Val{Vec: make([]Val, len(in.Lanes))}
	for i, l := range in.Lanes {
		out.Vec[i] = lane(v, l)
	}
	return out
}

// vecInsertVal implements OpVecInsert; args holds every evaluated
// operand (the base vector followed by the inserted lanes).
func vecInsertVal(in *ir.Instr, args []Val) Val {
	lanes := in.T.Lanes()
	out := Val{Vec: make([]Val, lanes)}
	for i := 0; i < lanes; i++ {
		out.Vec[i] = lane(args[0], i)
	}
	for i, l := range in.Lanes {
		out.Vec[l] = args[1+i]
	}
	return out
}

func compareVal(in *ir.Instr, a, b Val) Val {
	cmp := func(a, b Val) Val {
		var r bool
		if in.Op == ir.OpFCmp {
			switch in.Pr {
			case ir.PredEQ:
				r = a.F == b.F
			case ir.PredNE:
				r = a.F != b.F
			case ir.PredLT:
				r = a.F < b.F
			case ir.PredLE:
				r = a.F <= b.F
			case ir.PredGT:
				r = a.F > b.F
			case ir.PredGE:
				r = a.F >= b.F
			}
		} else {
			switch in.Pr {
			case ir.PredEQ:
				r = a.I == b.I
			case ir.PredNE:
				r = a.I != b.I
			case ir.PredLT:
				r = a.I < b.I
			case ir.PredLE:
				r = a.I <= b.I
			case ir.PredGT:
				r = a.I > b.I
			case ir.PredGE:
				r = a.I >= b.I
			}
		}
		if r {
			return IntVal(1)
		}
		return IntVal(0)
	}
	if in.T.IsVector() {
		out := Val{Vec: make([]Val, in.T.Lanes())}
		for i := range out.Vec {
			out.Vec[i] = cmp(lane(a, i), lane(b, i))
		}
		return out
	}
	return cmp(a, b)
}

// castVal converts v from type 'from' to type 'to'.
func castVal(v Val, from, to ast.Type) Val {
	if to.IsVector() {
		out := Val{Vec: make([]Val, to.Lanes())}
		fs := ast.Scalar(from.Base)
		ts := ast.Scalar(to.Base)
		for i := range out.Vec {
			out.Vec[i] = castVal(lane(v, i), fs, ts)
		}
		return out
	}
	switch {
	case to.Base.IsFloat() && from.Base.IsFloat():
		f := v.F
		if to.Base == ast.KFloat {
			f = float64(float32(f))
		}
		return FloatVal(f)
	case to.Base.IsFloat():
		return FloatVal(float64(v.I))
	case from.Base.IsFloat():
		return IntVal(truncInt(int64(v.F), to.Base))
	default:
		return IntVal(truncInt(v.I, to.Base))
	}
}

// truncInt wraps an integer to the width of kind k.
func truncInt(v int64, k ast.BaseKind) int64 {
	switch k {
	case ast.KBool:
		if v != 0 {
			return 1
		}
		return 0
	case ast.KChar:
		return int64(int8(v))
	case ast.KUChar:
		return int64(uint8(v))
	case ast.KShort:
		return int64(int16(v))
	case ast.KUShort:
		return int64(uint16(v))
	case ast.KInt:
		return int64(int32(v))
	case ast.KUInt:
		return int64(uint32(v))
	default:
		return v
	}
}

// ---- memory ----

func (w *wiState) loadElem(store ir.Storage, idx int64, t ast.Type) Val {
	lanes := int64(t.Lanes())
	switch s := store.(type) {
	case *ir.Param:
		buf := w.cfg.Buffers[s.PName]
		base := idx * lanes
		if base < 0 || base+lanes > int64(buf.Len()) {
			w.fail("load out of bounds: %s[%d] (len %d)", s.PName, idx, buf.Len()/int(lanes))
		}
		if w.trace {
			w.accesses = append(w.accesses, Access{
				Param: s, Index: idx, Bytes: t.ElemSize(), Write: false,
			})
		}
		return readBuf(buf, base, lanes, t)
	case *ir.Alloca:
		cells := w.cells(s)
		base := idx * lanes
		if base < 0 || base+lanes > int64(len(cells)) {
			w.fail("load out of bounds: %s[%d] (len %d)", s.AName, idx, int64(len(cells))/lanes)
		}
		if lanes == 1 {
			return cells[base]
		}
		out := Val{Vec: make([]Val, lanes)}
		copy(out.Vec, cells[base:base+lanes])
		return out
	}
	w.fail("unknown storage %T", store)
	return Val{}
}

func (w *wiState) storeElem(store ir.Storage, idx int64, v Val) {
	switch s := store.(type) {
	case *ir.Param:
		buf := w.cfg.Buffers[s.PName]
		t := s.Elem()
		lanes := int64(t.Lanes())
		base := idx * lanes
		if base < 0 || base+lanes > int64(buf.Len()) {
			w.fail("store out of bounds: %s[%d] (len %d)", s.PName, idx, buf.Len()/int(lanes))
		}
		if w.trace {
			w.accesses = append(w.accesses, Access{
				Param: s, Index: idx, Bytes: t.ElemSize(), Write: true,
			})
		}
		writeBuf(buf, base, lanes, v)
	case *ir.Alloca:
		cells := w.cells(s)
		lanes := int64(s.Elem.Lanes())
		base := idx * lanes
		if base < 0 || base+lanes > int64(len(cells)) {
			w.fail("store out of bounds: %s[%d] (len %d)", s.AName, idx, int64(len(cells))/lanes)
		}
		if lanes == 1 {
			cells[base] = v
			return
		}
		for i := int64(0); i < lanes; i++ {
			cells[base+i] = lane(v, int(i))
		}
	default:
		w.fail("unknown storage %T", store)
	}
}

// cells returns the backing storage of an alloca for this work-item
// (private) or its group (local). Element granularity is scalar lanes.
func (w *wiState) cells(a *ir.Alloca) []Val {
	var cells []Val
	if a.AS == ast.ASLocal {
		cells = w.locals[a]
	} else {
		cells = w.priv[a]
	}
	// Vector-element allocas store lanes contiguously; size on demand.
	want := a.Count * int64(a.Elem.Lanes())
	if int64(len(cells)) < want {
		grown := make([]Val, want)
		copy(grown, cells)
		if a.AS == ast.ASLocal {
			w.locals[a] = grown
		} else {
			w.priv[a] = grown
		}
		cells = grown
	}
	return cells
}

// Work-items of a group run as concurrent goroutines, and OpenCL lets
// unsynchronized work-items race on global memory with an undefined
// value but a well-formed program (bfs work-items all storing the same
// termination flag, streamcluster accumulating switch costs). Plain Go
// slice accesses would make those kernels data races under the Go
// memory model, so buffer cells are read and written with per-element
// atomics: the winning value stays unspecified, exactly as in OpenCL,
// but the execution is defined.
func readBuf(b *Buffer, base, lanes int64, t ast.Type) Val {
	get := func(i int64) Val {
		if b.Elem.Base.IsFloat() {
			return FloatVal(math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(&b.F[i])))))
		}
		return IntVal(atomic.LoadInt64(&b.I[i]))
	}
	if lanes == 1 {
		return get(base)
	}
	out := Val{Vec: make([]Val, lanes)}
	for i := int64(0); i < lanes; i++ {
		out.Vec[i] = get(base + i)
	}
	return out
}

func writeBuf(b *Buffer, base, lanes int64, v Val) {
	put := func(i int64, s Val) {
		if b.Elem.Base.IsFloat() {
			atomic.StoreUint64((*uint64)(unsafe.Pointer(&b.F[i])), math.Float64bits(s.F))
		} else {
			atomic.StoreInt64(&b.I[i], s.I)
		}
	}
	if lanes == 1 {
		put(base, v)
		return
	}
	for i := int64(0); i < lanes; i++ {
		put(base+i, lane(v, int(i)))
	}
}

func (w *wiState) atomic(in *ir.Instr, idx int64, operand Val) Val {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.loadElemNoTrace(in.Mem, idx)
	var nv int64
	switch in.Fn {
	case "atomic_add":
		nv = old.I + operand.I
	case "atomic_sub":
		nv = old.I - operand.I
	case "atomic_inc":
		nv = old.I + 1
	case "atomic_dec":
		nv = old.I - 1
	case "atomic_min":
		nv = old.I
		if operand.I < nv {
			nv = operand.I
		}
	case "atomic_max":
		nv = old.I
		if operand.I > nv {
			nv = operand.I
		}
	case "atomic_xchg":
		nv = operand.I
	case "atomic_cmpxchg":
		// Args: idx, cmp, val — operand holds cmp; third arg is val.
		val := w.eval(in.Args[2])
		if old.I == operand.I {
			nv = val.I
		} else {
			nv = old.I
		}
	default:
		w.fail("unknown atomic %s", in.Fn)
	}
	// Record as one read + one write for the memory trace.
	if w.trace {
		if p, ok := in.Mem.(*ir.Param); ok {
			sz := p.Elem().ElemSize()
			w.accesses = append(w.accesses,
				Access{Param: p, Index: idx, Bytes: sz, Write: false},
				Access{Param: p, Index: idx, Bytes: sz, Write: true})
		}
	}
	w.storeElemNoTrace(in.Mem, idx, IntVal(nv))
	return old
}

func (w *wiState) loadElemNoTrace(store ir.Storage, idx int64) Val {
	saved := w.trace
	w.trace = false
	v := w.loadElem(store, idx, elemTypeOfStorage(store))
	w.trace = saved
	return v
}

func (w *wiState) storeElemNoTrace(store ir.Storage, idx int64, v Val) {
	saved := w.trace
	w.trace = false
	w.storeElem(store, idx, v)
	w.trace = saved
}

func elemTypeOfStorage(store ir.Storage) ast.Type {
	switch s := store.(type) {
	case *ir.Param:
		return s.Elem()
	case *ir.Alloca:
		return s.Elem
	}
	return ast.Scalar(ast.KInt)
}

func (w *wiState) workItem(fn string, dim int) int64 {
	v, ok := workItemVal(fn, dim, w.nd, w.group, w.local, w.global)
	if !ok {
		w.fail("unknown work-item query %s", fn)
	}
	return v
}

// workItemVal evaluates an NDRange coordinate query as a pure function
// of the work-item's position; ok is false for unknown queries.
func workItemVal(fn string, dim int, nd NDRange, group, local, global [3]int64) (int64, bool) {
	if dim < 0 || dim > 2 {
		dim = 0
	}
	switch fn {
	case "get_global_id":
		return global[dim], true
	case "get_local_id":
		return local[dim], true
	case "get_group_id":
		return group[dim], true
	case "get_global_size":
		return nd.Global[dim], true
	case "get_local_size":
		return nd.Local[dim], true
	case "get_num_groups":
		return nd.NumGroups()[dim], true
	case "get_work_dim":
		d := int64(1)
		if nd.Global[1] > 1 {
			d = 2
		}
		if nd.Global[2] > 1 {
			d = 3
		}
		return d, true
	case "get_global_offset":
		return 0, true
	}
	return 0, false
}

func (w *wiState) builtin(in *ir.Instr) Val {
	args := make([]Val, len(in.Args))
	for i, a := range in.Args {
		args[i] = w.eval(a)
	}
	v, err := builtinVal(in, args)
	if err != nil {
		panic(execError{err})
	}
	return v
}

// knownBuiltins lists every builtin both executors evaluate; the static
// analyzer consults KnownBuiltin so the fast path never meets a call it
// cannot execute.
var knownBuiltins = map[string]bool{
	"sqrt": true, "native_sqrt": true, "rsqrt": true, "fabs": true,
	"exp": true, "native_exp": true, "exp2": true,
	"log": true, "native_log": true, "log2": true,
	"sin": true, "cos": true, "tan": true,
	"floor": true, "ceil": true, "round": true, "abs": true,
	"pow": true, "fmax": true, "fmin": true, "fmod": true,
	"atan2": true, "hypot": true, "max": true, "min": true,
	"mad": true, "fma": true, "clamp": true, "select": true, "dot": true,
}

// KnownBuiltin reports whether the interpreter can evaluate the builtin.
func KnownBuiltin(fn string) bool { return knownBuiltins[fn] }

// knownAtomics lists the atomic operations wiState.atomic implements.
var knownAtomics = map[string]bool{
	"atomic_add": true, "atomic_sub": true, "atomic_inc": true,
	"atomic_dec": true, "atomic_min": true, "atomic_max": true,
	"atomic_xchg": true, "atomic_cmpxchg": true,
}

// KnownAtomic reports whether the interpreter can execute the atomic op.
func KnownAtomic(fn string) bool { return knownAtomics[fn] }

// builtinVal evaluates a builtin call over fully evaluated operands,
// splitting lanes for vector-result calls like the interpreter.
func builtinVal(in *ir.Instr, args []Val) (Val, error) {
	t := in.T
	if t.IsVector() {
		out := Val{Vec: make([]Val, t.Lanes())}
		for i := range out.Vec {
			ls := make([]Val, len(args))
			for j, a := range args {
				ls[j] = lane(a, i)
			}
			v, err := scalarBuiltinVal(in, ls, args, ast.Scalar(t.Base))
			if err != nil {
				return Val{}, err
			}
			out.Vec[i] = v
		}
		return out, nil
	}
	return scalarBuiltinVal(in, args, args, t)
}

// scalarBuiltinVal evaluates one scalar builtin application. a holds the
// per-lane operands, full the unsplit operands (for reductions like dot
// that consume whole vectors even when the result is scalar).
func scalarBuiltinVal(in *ir.Instr, a, full []Val, t ast.Type) (Val, error) {
	fn := in.Fn
	f1 := func(f func(float64) float64) Val { return FloatVal(f(a[0].F)) }
	isFloatArgs := len(in.Args) > 0 && in.Args[0].Type().Base.IsFloat()
	switch fn {
	case "sqrt", "native_sqrt":
		return f1(math.Sqrt), nil
	case "rsqrt":
		return FloatVal(1 / math.Sqrt(a[0].F)), nil
	case "fabs":
		return f1(math.Abs), nil
	case "exp", "native_exp":
		return f1(math.Exp), nil
	case "exp2":
		return f1(math.Exp2), nil
	case "log", "native_log":
		return f1(math.Log), nil
	case "log2":
		return f1(math.Log2), nil
	case "sin":
		return f1(math.Sin), nil
	case "cos":
		return f1(math.Cos), nil
	case "tan":
		return f1(math.Tan), nil
	case "floor":
		return f1(math.Floor), nil
	case "ceil":
		return f1(math.Ceil), nil
	case "round":
		return f1(math.Round), nil
	case "abs":
		if isFloatArgs {
			return f1(math.Abs), nil
		}
		if a[0].I < 0 {
			return IntVal(-a[0].I), nil
		}
		return a[0], nil
	case "pow":
		return FloatVal(math.Pow(a[0].F, a[1].F)), nil
	case "fmax":
		return FloatVal(math.Max(a[0].F, a[1].F)), nil
	case "fmin":
		return FloatVal(math.Min(a[0].F, a[1].F)), nil
	case "fmod":
		return FloatVal(math.Mod(a[0].F, a[1].F)), nil
	case "atan2":
		return FloatVal(math.Atan2(a[0].F, a[1].F)), nil
	case "hypot":
		return FloatVal(math.Hypot(a[0].F, a[1].F)), nil
	case "max":
		if isFloatArgs {
			return FloatVal(math.Max(a[0].F, a[1].F)), nil
		}
		if a[0].I > a[1].I {
			return a[0], nil
		}
		return a[1], nil
	case "min":
		if isFloatArgs {
			return FloatVal(math.Min(a[0].F, a[1].F)), nil
		}
		if a[0].I < a[1].I {
			return a[0], nil
		}
		return a[1], nil
	case "mad", "fma":
		if t.Base.IsFloat() {
			return FloatVal(a[0].F*a[1].F + a[2].F), nil
		}
		return IntVal(a[0].I*a[1].I + a[2].I), nil
	case "clamp":
		if isFloatArgs {
			return FloatVal(math.Min(math.Max(a[0].F, a[1].F), a[2].F)), nil
		}
		v := a[0].I
		if v < a[1].I {
			v = a[1].I
		}
		if v > a[2].I {
			v = a[2].I
		}
		return IntVal(v), nil
	case "select":
		// select(a, b, c): returns b when c is true (MSB set), else a.
		if truthy(a[2]) {
			return a[1], nil
		}
		return a[0], nil
	case "dot":
		x, y := full[0], full[1]
		sum := 0.0
		n := 1
		if x.Vec != nil {
			n = len(x.Vec)
		}
		for i := 0; i < n; i++ {
			sum += lane(x, i).F * lane(y, i).F
		}
		return FloatVal(sum), nil
	}
	return Val{}, fmt.Errorf("interp: unknown builtin %s", fn)
}
