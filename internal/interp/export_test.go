package interp

// SetProfileStepLimitForTest lowers the per-work-item runaway guard so
// tests (and the analyzer fuzzer) can exercise infinite-loop handling
// without executing 64M steps. It returns a restore function.
func SetProfileStepLimitForTest(n int64) (restore func()) {
	old := profStepLimit
	profStepLimit = n
	return func() { profStepLimit = old }
}

// GroupIndependentForTest exposes the parallel-execution gate.
var GroupIndependentForTest = groupIndependent
