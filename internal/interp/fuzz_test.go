package interp_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
)

// fuzzConfig synthesizes a small launch for an arbitrary compiled
// kernel: every pointer parameter gets a buffer, every scalar a small
// positive value, so fuzz inputs fail on the kernel's own behavior, not
// on missing arguments. Index-typed buffers are filled modulo the
// length so mutated gathers usually stay in bounds.
func isStepLimit(err error) bool {
	return err != nil && strings.Contains(err.Error(), "exceeded")
}

func fuzzConfig(f *ir.Func) *interp.Config {
	const n = 128
	cfg := &interp.Config{
		Range:   interp.NDRange{Global: [3]int64{32}, Local: [3]int64{16}},
		Buffers: make(map[string]*interp.Buffer),
		Scalars: make(map[string]interp.Val),
	}
	for _, prm := range f.Params {
		if !prm.T.Ptr {
			cfg.Scalars[prm.PName] = interp.IntVal(8)
			continue
		}
		e := prm.Elem()
		if e.Base.IsFloat() {
			b := interp.NewFloatBuffer(e.Base, n)
			for i := range b.F {
				b.F[i] = float64(i%13) * 0.25
			}
			cfg.Buffers[prm.PName] = b
		} else {
			b := interp.NewIntBuffer(e.Base, n)
			for i := range b.I {
				b.I[i] = int64(i % n)
			}
			cfg.Buffers[prm.PName] = b
		}
	}
	return cfg
}

// FuzzAffineAnalyzer feeds arbitrary OpenCL sources — seeded with every
// bundled benchmark and every generator family — through the static
// analyzer and both profiler paths. Invariants, for each kernel that
// compiles: nothing panics; and whenever the analyzer claims a kernel,
// the static profile must agree with the interpreter's bitwise or fail
// exactly where the interpreter fails. The analyzer declining is always
// acceptable; silently diverging never is.
func FuzzAffineAnalyzer(f *testing.F) {
	for _, k := range bench.All() {
		f.Add(k.Source)
	}
	for _, k := range bench.GeneratedCorpus() {
		f.Add(k.Source)
	}
	f.Add(`__kernel void k(__global float* x) { x[get_global_id(0)] = 1.0f; }`)
	f.Add(`__kernel void k(__global int* x) { for (int i = 0; i < 4; i++) { x[i] = i; } }`)
	f.Add(`__kernel void k(__global int* x) { while (x[0] < 3) { x[0]++; } }`)

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // pathological inputs belong to the frontend fuzzers
		}
		m, err := irgen.Compile("fuzz.cl", []byte(src), map[string]string{"WG": "16"})
		if err != nil {
			return // frontend rejections are the parser fuzzers' domain
		}
		// Keep runaway mutated loops cheap: profiling a fuzz kernel
		// never needs more than a few thousand steps to compare paths.
		restore := interp.SetProfileStepLimitForTest(1 << 14)
		defer restore()
		for _, kf := range m.Kernels {
			ok, reason := interp.StaticAnalyzable(kf)
			if !ok && reason == "" {
				t.Errorf("%s: declined without a reason", kf.Name)
			}
			cfg := fuzzConfig(kf)
			sp, sok, serr := interp.StaticProfile(kf, cfg, 2, false)
			if sok != ok {
				t.Errorf("%s: Analyzable=%v but StaticProfile ok=%v", kf.Name, ok, sok)
			}
			ip, ierr := interp.InterpProfile(kf, fuzzConfig(kf), 2, false, 1)
			if !sok {
				continue // interpreter-only kernel: reaching here without a panic is the invariant
			}
			// The runaway-step guard counts in different granularity on
			// the two paths (per block entry vs per instruction), so a
			// kernel at the limit's edge may legitimately trip only one
			// of them: step-limit faults are exempt from exact matching.
			if isStepLimit(serr) || isStepLimit(ierr) {
				continue
			}
			switch {
			case serr == nil && ierr == nil:
				if d := sp.Diff(ip); d != "" {
					t.Errorf("%s: static != interp: %s\nsource:\n%s", kf.Name, d, src)
				}
			case serr == nil && ierr != nil:
				t.Errorf("%s: static succeeded where interp failed (%v)\nsource:\n%s", kf.Name, ierr, src)
			case serr != nil && ierr == nil:
				// The dispatcher recovers by falling back, but an exact
				// executor should not fault more often than the
				// interpreter on the same launch.
				t.Errorf("%s: static failed (%v) where interp succeeded\nsource:\n%s", kf.Name, serr, src)
			default:
				if serr.Error() != ierr.Error() {
					t.Errorf("%s: error mismatch: static %q, interp %q", kf.Name, serr, ierr)
				}
			}
		}
	})
}
