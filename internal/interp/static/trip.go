package static

import (
	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// TripCounts derives compile-time trip counts for the canonical counted
// loops of f: loops the IR generator already annotated (Loop.StaticTrip)
// plus loops matching the affine pattern
//
//	i = c0;  while (i <pred> c1) { ...; i = i ± step }
//
// with a private scalar induction alloca, constant bounds and a
// constant step. The result maps loop headers to trip counts; loops
// whose bounds involve scalar arguments or profiled data are absent
// (the slice executor still counts them exactly — at run time).
func TripCounts(f *ir.Func) map[*ir.Block]int64 {
	f.EnsureLoops()
	out := make(map[*ir.Block]int64)
	for _, l := range f.Loops {
		if l.StaticTrip >= 0 {
			out[l.Header] = l.StaticTrip
			continue
		}
		if n, ok := affineTrip(f, l); ok {
			out[l.Header] = n
		}
	}
	return out
}

// affineTrip matches one natural loop against the canonical counted
// form and returns its trip count.
func affineTrip(f *ir.Func, l *ir.Loop) (int64, bool) {
	term := l.Header.Term()
	if term == nil || term.Op != ir.OpCondBr {
		return 0, false
	}
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return 0, false
	}
	// The comparison must read the induction variable on one side and a
	// constant on the other; the loop body must be the true edge.
	iv, bound, pred, ok := splitCmp(cmp, l)
	if !ok {
		return 0, false
	}
	if term.To == nil || !l.Contains(term.To) {
		return 0, false
	}
	init, step, ok := inductionOf(f, iv, l)
	if !ok {
		return 0, false
	}
	return countTrips(init, bound, step, pred)
}

// splitCmp finds the induction alloca load and the constant bound of a
// header comparison, normalizing the predicate so the load is the
// left-hand side.
func splitCmp(cmp *ir.Instr, l *ir.Loop) (*ir.Alloca, int64, ir.Pred, bool) {
	load := func(v ir.Value) *ir.Alloca {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpLoad {
			return nil
		}
		a, ok := in.Mem.(*ir.Alloca)
		if !ok || a.AS == ast.ASLocal || a.IsArray() {
			return nil
		}
		return a
	}
	cst := func(v ir.Value) (int64, bool) {
		c, ok := v.(*ir.Const)
		if !ok || c.T.Base.IsFloat() {
			return 0, false
		}
		return c.I, true
	}
	if a := load(cmp.Args[0]); a != nil {
		if b, ok := cst(cmp.Args[1]); ok {
			return a, b, cmp.Pr, true
		}
	}
	if a := load(cmp.Args[1]); a != nil {
		if b, ok := cst(cmp.Args[0]); ok {
			return a, b, flipPred(cmp.Pr), true
		}
	}
	return nil, 0, 0, false
}

func flipPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredLT:
		return ir.PredGT
	case ir.PredLE:
		return ir.PredGE
	case ir.PredGT:
		return ir.PredLT
	case ir.PredGE:
		return ir.PredLE
	}
	return p // EQ/NE are symmetric
}

// inductionOf checks that the alloca behaves as a canonical induction
// variable for l: one constant initialization outside the loop, one
// in-loop update of the form i = i ± const, and no other stores.
func inductionOf(f *ir.Func, iv *ir.Alloca, l *ir.Loop) (init, step int64, ok bool) {
	var haveInit, haveStep bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpStore || in.Mem != iv {
				continue
			}
			if !l.Contains(b) {
				c, isC := in.Args[1].(*ir.Const)
				if !isC || c.T.Base.IsFloat() || haveInit {
					return 0, 0, false
				}
				init, haveInit = c.I, true
				continue
			}
			// In-loop update: add/sub of a load of iv with a constant.
			upd, isI := in.Args[1].(*ir.Instr)
			if !isI || (upd.Op != ir.OpAdd && upd.Op != ir.OpSub) || haveStep {
				return 0, 0, false
			}
			ld, isL := upd.Args[0].(*ir.Instr)
			c, isC := upd.Args[1].(*ir.Const)
			if !isL || ld.Op != ir.OpLoad || ld.Mem != iv || !isC || c.T.Base.IsFloat() {
				return 0, 0, false
			}
			step = c.I
			if upd.Op == ir.OpSub {
				step = -step
			}
			haveStep = true
		}
	}
	if !haveInit || !haveStep || step == 0 {
		return 0, 0, false
	}
	return init, step, true
}

// countTrips evaluates the closed form for i = init; i <pred> bound;
// i += step.
func countTrips(init, bound, step int64, pred ir.Pred) (int64, bool) {
	switch pred {
	case ir.PredLT:
		if step <= 0 {
			return 0, false
		}
		if init >= bound {
			return 0, true
		}
		return (bound - init + step - 1) / step, true
	case ir.PredLE:
		if step <= 0 {
			return 0, false
		}
		if init > bound {
			return 0, true
		}
		return (bound - init + step) / step, true
	case ir.PredGT:
		if step >= 0 {
			return 0, false
		}
		if init <= bound {
			return 0, true
		}
		return (init - bound - step - 1) / (-step), true
	case ir.PredGE:
		if step >= 0 {
			return 0, false
		}
		if init < bound {
			return 0, true
		}
		return (init - bound - step) / (-step), true
	case ir.PredNE:
		if step == 0 {
			return 0, false
		}
		diff := bound - init
		if diff%step != 0 || diff/step < 0 {
			return 0, false // never hits the bound exactly
		}
		return diff / step, true
	}
	return 0, false
}
