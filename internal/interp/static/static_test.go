package static_test

import (
	"strings"
	"testing"

	"repro/internal/interp/static"
	"repro/internal/ir"
	"repro/internal/irgen"
)

func compile(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	m, err := irgen.Compile("test.cl", []byte(src), nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := m.Kernel(name)
	if f == nil {
		t.Fatalf("kernel %q not found", name)
	}
	return f
}

func TestAnalyzeVecAdd(t *testing.T) {
	f := compile(t, `
__kernel void vecadd(__global float* a, __global float* b, __global float* c) {
    int i = get_global_id(0);
    c[i] = a[i] + b[i];
}`, "vecadd")
	plan, err := static.Analyze(f, static.Options{})
	if err != nil {
		t.Fatalf("vecadd should be analyzable: %v", err)
	}
	// The float add is pure data computation: it must NOT be in the
	// slice. The address (global id, converts) must be.
	for in := range plan.Need {
		switch in.Op {
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			t.Errorf("data computation %v leaked into the slice", in.Op)
		}
	}
	if plan.NumRegs == 0 {
		t.Error("want at least one slice register for the address")
	}
	if len(plan.SliceParams) != 0 {
		t.Errorf("no address depends on buffer contents, SliceParams = %v", plan.SliceParams)
	}
}

func TestAnalyzeCountedLoop(t *testing.T) {
	f := compile(t, `
__kernel void rowsum(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < 12; j++) {
        s += a[i * 12 + j];
    }
    out[i] = s;
}`, "rowsum")
	plan, err := static.Analyze(f, static.Options{})
	if err != nil {
		t.Fatalf("counted loop should be analyzable: %v", err)
	}
	f.EnsureLoops()
	if len(f.Loops) == 0 {
		t.Fatal("expected a loop")
	}
	var found bool
	for _, l := range f.Loops {
		if n, ok := plan.LoopTrips[l.Header]; ok {
			found = true
			if n != 12 {
				t.Errorf("trip count = %d, want 12", n)
			}
		}
	}
	if !found {
		t.Errorf("constant-bound loop missing from LoopTrips %v", plan.LoopTrips)
	}
}

func TestAnalyzeScalarBoundLoop(t *testing.T) {
	// A scalar-argument bound is not a compile-time trip count, but the
	// slice still derives it at plan-execution time: analyzable.
	f := compile(t, `
__kernel void scale(__global float* a, int n) {
    int i = get_global_id(0);
    for (int j = 0; j < n; j++) {
        a[i * n + j] = a[i * n + j] * 2.0f;
    }
}`, "scale")
	if ok, reason := static.Analyzable(f, static.Options{}); !ok {
		t.Fatalf("scalar-bound loop should be analyzable, declined: %s", reason)
	}
}

func TestDeclineAddressFromWrittenBuffer(t *testing.T) {
	f := compile(t, `
__kernel void scatter(__global int* idx, __global float* out) {
    int i = get_global_id(0);
    int j = idx[i];
    idx[i] = j + 1;
    out[j] = 1.0f;
}`, "scatter")
	ok, reason := static.Analyzable(f, static.Options{})
	if ok {
		t.Fatal("address from a written buffer must decline")
	}
	if !strings.Contains(reason, "idx") || !strings.Contains(reason, "writes") {
		t.Errorf("reason = %q, want mention of written buffer idx", reason)
	}
}

func TestAnalyzeGatherFromReadOnlyBuffer(t *testing.T) {
	// Indirection through a buffer the kernel never writes is fine: the
	// launch buffers are the values every work-group observes.
	f := compile(t, `
__kernel void gather(__global int* idx, __global float* src, __global float* out) {
    int i = get_global_id(0);
    out[i] = src[idx[i]];
}`, "gather")
	plan, err := static.Analyze(f, static.Options{})
	if err != nil {
		t.Fatalf("gather via read-only index buffer should be analyzable: %v", err)
	}
	var names []string
	for p := range plan.SliceParams {
		names = append(names, p.PName)
	}
	if len(names) != 1 || names[0] != "idx" {
		t.Errorf("SliceParams = %v, want exactly [idx]", names)
	}
}

func TestDeclineAtomicResultAddressing(t *testing.T) {
	f := compile(t, `
__kernel void claim(__global int* ctr, __global float* out) {
    int slot = atomic_add(&ctr[0], 1);
    out[slot] = 1.0f;
}`, "claim")
	ok, reason := static.Analyzable(f, static.Options{})
	if ok {
		t.Fatal("atomic result feeding an address must decline")
	}
	if !strings.Contains(reason, "atomic") {
		t.Errorf("reason = %q, want mention of atomic", reason)
	}
}

func TestDeclineLocalArrayAddressing(t *testing.T) {
	f := compile(t, `
__kernel void viaLocal(__global int* src, __global float* out) {
    __local int tmp[16];
    int l = get_local_id(0);
    tmp[l] = src[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[tmp[15 - l]] = 1.0f;
}`, "viaLocal")
	ok, reason := static.Analyzable(f, static.Options{})
	if ok {
		t.Fatal("group-written __local contents in the slice must decline")
	}
	if !strings.Contains(reason, "__local") {
		t.Errorf("reason = %q, want mention of __local", reason)
	}
}

func TestAnalyzePrivateArrayAddressing(t *testing.T) {
	// A private array is per-work-item state: the slice models it.
	f := compile(t, `
__kernel void viaPrivate(__global float* out) {
    int t[4];
    for (int j = 0; j < 4; j++) {
        t[j] = j * 2;
    }
    int i = get_global_id(0);
    out[t[i % 4]] = 1.0f;
}`, "viaPrivate")
	plan, err := static.Analyze(f, static.Options{})
	if err != nil {
		t.Fatalf("private array addressing should be analyzable: %v", err)
	}
	if len(plan.TrackedAllocas) == 0 {
		t.Error("the private array should be tracked")
	}
}

func TestDeclineUnknownBuiltin(t *testing.T) {
	f := compile(t, `
__kernel void usesSqrt(__global float* out) {
    int i = get_global_id(0);
    out[i] = sqrt((float)i);
}`, "usesSqrt")
	// Executor claims to know nothing: every call declines.
	ok, reason := static.Analyzable(f, static.Options{
		KnownCall: func(string) bool { return false },
	})
	if ok {
		t.Fatal("unknown builtin must decline")
	}
	if !strings.Contains(reason, "sqrt") {
		t.Errorf("reason = %q, want mention of sqrt", reason)
	}
	// And with no gate it is analyzable (executor accepts all).
	if ok, reason := static.Analyzable(f, static.Options{}); !ok {
		t.Errorf("nil KnownCall should accept: %s", reason)
	}
}

func TestDeclineErrorIsTyped(t *testing.T) {
	f := compile(t, `
__kernel void claim(__global int* ctr, __global float* out) {
    int slot = atomic_add(&ctr[0], 1);
    out[slot] = 1.0f;
}`, "claim")
	_, err := static.Analyze(f, static.Options{})
	if err == nil {
		t.Fatal("want decline")
	}
	de, ok := err.(*static.DeclineError)
	if !ok {
		t.Fatalf("error type = %T, want *static.DeclineError", err)
	}
	if de.Reason == "" {
		t.Error("decline reason empty")
	}
}

func TestAnalyzeNilFunc(t *testing.T) {
	if _, err := static.Analyze(nil, static.Options{}); err == nil {
		t.Error("nil func should decline, not panic")
	}
}

func TestTripCounts(t *testing.T) {
	cases := []struct {
		name string
		loop string
		trip int64
	}{
		{"lt", "for (int j = 0; j < 10; j++)", 10},
		{"le", "for (int j = 0; j <= 10; j++)", 11},
		{"step", "for (int j = 0; j < 10; j += 3)", 4},
		{"down", "for (int j = 9; j >= 0; j--)", 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := compile(t, `
__kernel void k(__global float* a) {
    int i = get_global_id(0);
    `+c.loop+` {
        a[i] += 1.0f;
    }
}`, "k")
			f.EnsureLoops()
			if len(f.Loops) != 1 {
				t.Fatalf("loops = %d, want 1", len(f.Loops))
			}
			trips := static.TripCounts(f)
			if got := trips[f.Loops[0].Header]; got != c.trip {
				t.Errorf("trip = %d, want %d", got, c.trip)
			}
		})
	}
}
