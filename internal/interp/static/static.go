// Package static decides whether a kernel's dynamic profile — loop trip
// counts, barrier crossings and the global-memory access trace of §3.2 —
// can be produced without executing its work-groups, and prepares the
// executable plan for doing so.
//
// The profile consumed by the model depends only on the kernel's
// control flow and its memory *addresses*, never on the floating-point
// data it computes. For regular kernels (most of PolyBench) both are
// functions of compile-time constants, scalar arguments, work-item IDs
// and loop induction variables. The analyzer computes the backward
// slice of every branch condition and address expression; when that
// slice never reads a value the kernel itself may have written to
// global or __local memory, the profile is statically derivable: a
// plan executor can walk just the slice — skipping every data
// computation, every goroutine, every atomic — and emit a profile
// bitwise-identical to the interpreter's (enforced corpus-wide by the
// "profile" check family).
//
// The package deliberately depends only on the IR: package interp
// imports it to build the fast path, not the other way around.
package static

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// DeclineError explains why a kernel is not statically analyzable. It
// is a normal, expected outcome — the dispatcher falls back to the
// interpreter — but the reason is kept for diagnostics and metrics.
type DeclineError struct {
	Reason string
}

func (e *DeclineError) Error() string { return "static: " + e.Reason }

func decline(format string, args ...any) error {
	return &DeclineError{Reason: fmt.Sprintf(format, args...)}
}

// Options tunes Analyze. The evaluability of call instructions lives in
// the executing package (interp knows its builtins), so it is injected.
type Options struct {
	// KnownCall reports whether the executor can evaluate the builtin;
	// nil accepts every name (the executor will fail at run time).
	KnownCall func(name string) bool
	// KnownAtomic reports whether the executor understands the atomic
	// operation; nil accepts every name.
	KnownAtomic func(name string) bool
}

// Plan is the result of a successful analysis: everything the slice
// executor needs to reproduce the interpreter's profile for any launch
// configuration of the function.
type Plan struct {
	Fn *ir.Func

	// Need marks the instructions whose result value must actually be
	// computed: the backward slice of branch conditions, memory
	// addresses, tracked stores and integer div/rem fault checks.
	Need map[*ir.Instr]bool
	// RegIndex assigns each needed instruction a dense register slot.
	RegIndex map[*ir.Instr]int
	// NumRegs is the register file size.
	NumRegs int

	// TrackedAllocas are the private (or store-free __local) allocas
	// whose contents the executor must model because slice loads read
	// them. Indexed by Alloca.Idx truth.
	TrackedAllocas map[*ir.Alloca]bool
	// SliceParams are the pointer parameters the slice loads from; all
	// are provably read-only in the kernel, so their values come from
	// the initial launch buffers.
	SliceParams map[*ir.Param]bool

	// Steps lists, per block, the instructions the executor visits:
	// terminators, barriers, memory accesses (for the trace and bounds
	// checks) and every needed instruction, in original program order.
	Steps map[*ir.Block][]*ir.Instr

	// BlockIndex gives each block a dense slot for trip counting.
	BlockIndex map[*ir.Block]int

	// LoopTrips holds the trip counts the affine analyzer derived for
	// canonical counted loops (header block → trips). Diagnostic: the
	// executor recovers exact counts by walking the slice, but these
	// are what "statically known" means for reporting.
	LoopTrips map[*ir.Block]int64
}

// Analyze computes the profile slice of f and reports whether the
// profile is statically derivable. The returned error is a
// *DeclineError for expected analyzability limits.
func Analyze(f *ir.Func, opts Options) (*Plan, error) {
	if f == nil || f.Entry() == nil {
		return nil, decline("empty function")
	}
	f.EnsureLoops()

	a := &analyzer{
		f:       f,
		opts:    opts,
		need:    make(map[*ir.Instr]bool),
		written: make(map[ir.Storage]bool),
		atomics: make(map[ir.Storage]bool),
		stores:  make(map[ir.Storage][]*ir.Instr),
		loads:   make(map[ir.Storage]bool),
		tracked: make(map[ir.Storage]bool),
	}
	if err := a.prescan(); err != nil {
		return nil, err
	}
	if err := a.seed(); err != nil {
		return nil, err
	}
	if err := a.fix(); err != nil {
		return nil, err
	}
	return a.plan(), nil
}

// Analyzable reports whether f's profile is statically derivable, with
// the decline reason when it is not.
func Analyzable(f *ir.Func, opts Options) (bool, string) {
	if _, err := Analyze(f, opts); err != nil {
		var de *DeclineError
		if ok := asDecline(err, &de); ok {
			return false, de.Reason
		}
		return false, err.Error()
	}
	return true, ""
}

func asDecline(err error, out **DeclineError) bool {
	de, ok := err.(*DeclineError)
	if ok {
		*out = de
	}
	return ok
}

type analyzer struct {
	f    *ir.Func
	opts Options

	need    map[*ir.Instr]bool
	written map[ir.Storage]bool // any store/atomic targets the storage
	atomics map[ir.Storage]bool // any atomic targets the storage
	stores  map[ir.Storage][]*ir.Instr
	loads   map[ir.Storage]bool
	tracked map[ir.Storage]bool // slice loads read the storage's contents

	queue []*ir.Instr
}

// prescan indexes stores per storage object and rejects instructions
// the slice executor could never evaluate, wherever they appear: an
// unknown builtin or atomic that the interpreter would fault on is only
// reachable knowledge at run time, so the analyzer declines up front
// rather than risk diverging.
func (a *analyzer) prescan() error {
	for _, b := range a.f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
				ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
				ir.OpICmp, ir.OpFCmp, ir.OpSelect, ir.OpCast,
				ir.OpVecBuild, ir.OpVecExtract, ir.OpVecInsert,
				ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpBarrier:
				// Always evaluable.
			case ir.OpWorkItem:
				switch in.Fn {
				case "get_global_id", "get_local_id", "get_group_id",
					"get_global_size", "get_local_size", "get_num_groups",
					"get_work_dim", "get_global_offset":
				default:
					return decline("unknown work-item query %s", in.Fn)
				}
			case ir.OpCall:
				if a.opts.KnownCall != nil && !a.opts.KnownCall(in.Fn) {
					return decline("unknown builtin %s", in.Fn)
				}
			case ir.OpLoad:
				a.loads[in.Mem] = true
			case ir.OpStore:
				a.written[in.Mem] = true
				a.stores[in.Mem] = append(a.stores[in.Mem], in)
			case ir.OpAtomic:
				if a.opts.KnownAtomic != nil && !a.opts.KnownAtomic(in.Fn) {
					return decline("unknown atomic %s", in.Fn)
				}
				a.written[in.Mem] = true
				a.atomics[in.Mem] = true
				// The atomic reads the cell too.
				a.loads[in.Mem] = true
			default:
				return decline("unsupported op %v", in.Op)
			}
		}
	}
	return nil
}

// seed marks the roots of the slice: branch conditions, every memory
// address, and integer div/rem instructions (which must execute so the
// fast path faults on a zero divisor exactly where the interpreter
// does).
func (a *analyzer) seed() error {
	for _, b := range a.f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCondBr:
				a.needValue(in.Args[0])
			case ir.OpLoad, ir.OpStore, ir.OpAtomic:
				a.needValue(in.Args[0])
			case ir.OpDiv, ir.OpRem:
				a.needInstr(in)
			}
		}
	}
	return nil
}

// needValue marks a value as required by the slice.
func (a *analyzer) needValue(v ir.Value) {
	in, ok := v.(*ir.Instr)
	if !ok {
		return // constants and scalar parameters need no computation
	}
	a.needInstr(in)
}

func (a *analyzer) needInstr(in *ir.Instr) {
	if a.need[in] {
		return
	}
	a.need[in] = true
	a.queue = append(a.queue, in)
}

// fix processes the worklist to transitive closure, tracking storage
// contents as loads enter the slice.
func (a *analyzer) fix() error {
	for len(a.queue) > 0 {
		in := a.queue[len(a.queue)-1]
		a.queue = a.queue[:len(a.queue)-1]
		switch in.Op {
		case ir.OpLoad:
			if err := a.track(in.Mem); err != nil {
				return err
			}
			// The index operand is already seeded.
		case ir.OpAtomic:
			// The result of an atomic read-modify-write is the racing
			// pre-image of concurrent peers: not statically derivable.
			return decline("atomic result feeds control flow or addressing")
		case ir.OpWorkItem:
			// Pure function of the work-item's coordinates.
		default:
			for _, arg := range in.Args {
				a.needValue(arg)
			}
		}
	}
	return nil
}

// track records that slice loads read st's contents, so the executor
// must model them exactly.
func (a *analyzer) track(st ir.Storage) error {
	if a.tracked[st] {
		return nil
	}
	a.tracked[st] = true
	switch s := st.(type) {
	case *ir.Param:
		// Values come from the initial launch buffers — valid only if
		// the kernel itself never writes the buffer (another work-group
		// could otherwise have written it first; the interpreter runs
		// sampled groups in dispatch order and would observe that).
		if a.written[st] {
			return decline("address or branch depends on buffer %s, which the kernel writes", s.PName)
		}
	case *ir.Alloca:
		if a.atomics[st] {
			return decline("address or branch depends on atomically updated %s", s.AName)
		}
		if s.AS == ast.ASLocal && a.written[st] {
			// __local contents are produced cooperatively by the whole
			// work-group across barrier phases; modelling that is
			// cross-work-item scheduling, not slicing.
			return decline("address or branch depends on __local array %s written by the group", s.AName)
		}
		// Private alloca (or a never-written local, which stays zero):
		// every store's value joins the slice so contents stay exact.
		for _, st2 := range a.stores[st] {
			a.needValue(st2.Args[1])
		}
	default:
		return decline("unknown storage %T", st)
	}
	return nil
}

// plan freezes the analysis into the executable form.
func (a *analyzer) plan() *Plan {
	p := &Plan{
		Fn:             a.f,
		Need:           a.need,
		RegIndex:       make(map[*ir.Instr]int),
		TrackedAllocas: make(map[*ir.Alloca]bool),
		SliceParams:    make(map[*ir.Param]bool),
		Steps:          make(map[*ir.Block][]*ir.Instr, len(a.f.Blocks)),
		BlockIndex:     make(map[*ir.Block]int, len(a.f.Blocks)),
		LoopTrips:      TripCounts(a.f),
	}
	for st := range a.tracked {
		switch s := st.(type) {
		case *ir.Alloca:
			p.TrackedAllocas[s] = true
		case *ir.Param:
			p.SliceParams[s] = true
		}
	}
	for bi, b := range a.f.Blocks {
		p.BlockIndex[b] = bi
		var steps []*ir.Instr
		for _, in := range b.Instrs {
			if a.need[in] || in.Op.IsTerminator() || in.Op.IsMemAccess() || in.Op == ir.OpBarrier {
				steps = append(steps, in)
			}
			if a.need[in] {
				if _, ok := p.RegIndex[in]; !ok {
					p.RegIndex[in] = p.NumRegs
					p.NumRegs++
				}
			}
		}
		p.Steps[b] = steps
	}
	return p
}
