// Package interp executes FlexCL IR functionally. It plays two roles from
// the paper (§3.2): the dynamic profiler that runs "a few work-groups" of
// a kernel to collect loop trip counts and the global-memory access trace
// when static analysis cannot determine them, and the reference executor
// used to validate kernel translations against Go implementations.
package interp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/opencl/ast"
)

// Val is a runtime scalar or vector value.
type Val struct {
	I   int64
	F   float64
	Vec []Val // non-nil for vectors; lanes are scalars
}

// IntVal makes an integer scalar.
func IntVal(v int64) Val { return Val{I: v} }

// FloatVal makes a floating scalar.
func FloatVal(v float64) Val { return Val{F: v} }

// Buffer is a global/constant memory buffer bound to a kernel pointer
// argument. Data is stored as flattened scalars; vector element types use
// lane-major order.
type Buffer struct {
	Elem ast.Type // pointee element type of the kernel argument
	// Exactly one of I/F is used, by Elem.Base.IsFloat().
	I []int64
	F []float64
}

// NewIntBuffer allocates an integer buffer of n elements of kind k.
func NewIntBuffer(k ast.BaseKind, n int) *Buffer {
	return &Buffer{Elem: ast.Scalar(k), I: make([]int64, n)}
}

// NewFloatBuffer allocates a float buffer of n elements of kind k.
func NewFloatBuffer(k ast.BaseKind, n int) *Buffer {
	return &Buffer{Elem: ast.Scalar(k), F: make([]float64, n)}
}

// Len returns the element count (scalar slots / lanes).
func (b *Buffer) Len() int {
	if b.Elem.Base.IsFloat() {
		return len(b.F)
	}
	return len(b.I)
}

// Access is one recorded global-memory access of a work-item.
type Access struct {
	Param *ir.Param // which buffer argument
	Index int64     // element index into the buffer (scalar slots)
	Bytes int       // access width in bytes
	Write bool
}

// NDRange is the kernel launch geometry.
type NDRange struct {
	Global [3]int64 // global work size per dimension (0 → 1)
	Local  [3]int64 // work-group size per dimension (0 → 1)
}

// Normalize fills unset dimensions with 1.
func (n NDRange) Normalize() NDRange {
	for d := 0; d < 3; d++ {
		if n.Global[d] <= 0 {
			n.Global[d] = 1
		}
		if n.Local[d] <= 0 {
			n.Local[d] = 1
		}
	}
	return n
}

// NumGroups returns the work-group count per dimension.
func (n NDRange) NumGroups() [3]int64 {
	var g [3]int64
	for d := 0; d < 3; d++ {
		g[d] = (n.Global[d] + n.Local[d] - 1) / n.Local[d]
	}
	return g
}

// TotalWorkItems returns the NDRange size.
func (n NDRange) TotalWorkItems() int64 {
	return n.Global[0] * n.Global[1] * n.Global[2]
}

// WorkGroupSize returns work-items per work-group.
func (n NDRange) WorkGroupSize() int64 {
	return n.Local[0] * n.Local[1] * n.Local[2]
}

// TotalGroups returns the total work-group count.
func (n NDRange) TotalGroups() int64 {
	g := n.NumGroups()
	return g[0] * g[1] * g[2]
}

// Config binds a kernel launch: geometry, buffers and scalar arguments.
type Config struct {
	Range NDRange
	// Buffers maps pointer-parameter names to buffers.
	Buffers map[string]*Buffer
	// Scalars maps value-parameter names to values.
	Scalars map[string]Val
}

// Profile is the dynamic-profiling result.
type Profile struct {
	// BlockCounts is the average execution count of each block per
	// work-item (the trip-count information of §3.2).
	BlockCounts map[*ir.Block]float64
	// Traces holds the per-work-item global access sequences, in
	// work-item issue order within each profiled group.
	Traces [][]Access
	// WorkItems is the number of profiled work-items.
	WorkItems int
	// Barriers is the number of barrier crossings per work-item.
	Barriers float64
	// Source records which profiling path produced the profile (see
	// fastpath.go); it is informational and excluded from Diff.
	Source Source
}

// Run executes every work-group of the kernel, mutating the buffers.
// It returns an execution error (bad memory access, missing argument).
func Run(f *ir.Func, cfg *Config) error {
	_, err := execute(f, cfg, prefixSample(-1), false)
	return err
}

// ProfileKernel collects trip counts and global-memory traces for up to
// maxGroups work-groups (default 2). The profiled groups are the first
// maxGroups of the launch — FlexCL's own choice (§3.2), whose sampling
// bias is part of the modeled error.
//
// The profile is produced by the cheapest path that yields the exact
// interpreted result (see fastpath.go): the static slice executor when
// the kernel analyzes, else the interpreter with parallel work-group
// execution when groups are provably independent, else the sequential
// interpreter. Profile.Source records the path taken. Buffers are
// mutated only on the interpreted paths.
func ProfileKernel(f *ir.Func, cfg *Config, maxGroups int) (*Profile, error) {
	if maxGroups <= 0 {
		maxGroups = 2
	}
	return profileDispatch(f, cfg, maxGroups, false)
}

// ProfileKernelSpread is ProfileKernel with representative sampling:
// the maxGroups profiled work-groups are spread evenly across the whole
// launch instead of taken from its start. Ground-truth consumers
// (rtlsim) use this so extrapolating a sample to the full launch is not
// biased by atypical leading groups (boundary tiles, early-exit rows);
// the analytical model deliberately keeps the paper's prefix sampling.
// Work-groups of one launch are independent (OpenCL offers no
// inter-group ordering), so any subset is as valid to execute as a
// prefix. Buffers are mutated only on the interpreted paths (see
// ProfileKernel).
func ProfileKernelSpread(f *ir.Func, cfg *Config, maxGroups int) (*Profile, error) {
	if maxGroups <= 0 {
		maxGroups = 2
	}
	return profileDispatch(f, cfg, maxGroups, true)
}

// sampleFor builds the group sample of a profiling run: the prefix of
// the launch, or — for spread sampling with more groups than the sample
// — exactly maxGroups groups spread evenly across the launch. Include
// gid iff ⌊(gid+1)·m/t⌋ > ⌊gid·m/t⌋: deterministic, in dispatch order.
func sampleFor(cfg *Config, maxGroups int, spread bool) groupSample {
	if !spread {
		return prefixSample(maxGroups)
	}
	total := cfg.Range.Normalize().TotalGroups()
	if int64(maxGroups) >= total {
		return prefixSample(maxGroups)
	}
	m, t := int64(maxGroups), total
	sel := func(gid int64) bool {
		return (gid+1)*m/t > gid*m/t
	}
	return groupSample{sel: sel, last: t - 1}
}

// groupSample selects which work-groups (by linear dispatch index) an
// execution runs. last bounds the scan so prefix runs stop early.
type groupSample struct {
	sel  func(gid int64) bool
	last int64 // highest gid worth visiting; -1 = all
}

// prefixSample selects the first n groups (n < 0 = every group).
func prefixSample(n int) groupSample {
	if n < 0 {
		return groupSample{sel: func(int64) bool { return true }, last: -1}
	}
	return groupSample{sel: func(gid int64) bool { return gid < int64(n) }, last: int64(n) - 1}
}

// errGroupAborted marks work-items unwound because a peer died.
var errGroupAborted = errors.New("interp: work-group aborted after a peer error")

// execError aborts a work-item with a diagnostic.
type execError struct{ err error }

func execute(f *ir.Func, cfg *Config, sample groupSample, trace bool) (*Profile, error) {
	nd := cfg.Range.Normalize()
	groups := nd.NumGroups()
	wgSize := nd.WorkGroupSize()
	if wgSize <= 0 {
		return nil, fmt.Errorf("interp: empty work-group")
	}
	if err := validateArgs(f, cfg); err != nil {
		return nil, err
	}

	prof := &Profile{BlockCounts: make(map[*ir.Block]float64)}
	var mu sync.Mutex // guards prof and atomics

	gid := int64(0)
loop:
	for gz := int64(0); gz < groups[2]; gz++ {
		for gy := int64(0); gy < groups[1]; gy++ {
			for gx := int64(0); gx < groups[0]; gx++ {
				if sample.last >= 0 && gid > sample.last {
					break loop
				}
				if sample.sel(gid) {
					if err := runGroup(f, cfg, nd, [3]int64{gx, gy, gz}, trace, prof, &mu); err != nil {
						return prof, err
					}
				}
				gid++
			}
		}
	}
	finalizeProfile(prof)
	return prof, nil
}

// validateArgs checks that every kernel parameter is bound in cfg, with
// the same errors on every profiling path.
func validateArgs(f *ir.Func, cfg *Config) error {
	for _, p := range f.Params {
		if p.T.Ptr {
			if cfg.Buffers[p.PName] == nil {
				return fmt.Errorf("interp: missing buffer for parameter %s", p.PName)
			}
		} else if _, ok := cfg.Scalars[p.PName]; !ok {
			return fmt.Errorf("interp: missing scalar argument %s", p.PName)
		}
	}
	return nil
}

func finalizeProfile(p *Profile) {
	if p.WorkItems > 0 {
		for b := range p.BlockCounts {
			p.BlockCounts[b] /= float64(p.WorkItems)
		}
		p.Barriers /= float64(p.WorkItems)
	}
}

// wgBarrier is a reusable barrier for one work-group.
type wgBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newWGBarrier(n int) *wgBarrier {
	b := &wgBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until every live work-item of the group arrives. It
// reports false when the group has been aborted (a peer died), in which
// case the caller must unwind instead of touching shared state again.
func (b *wgBarrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n <= 0 { // aborted group
		return false
	}
	phase := b.phase
	b.count++
	if b.count >= b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for phase == b.phase {
		if b.n <= 0 {
			return false
		}
		b.cond.Wait()
	}
	return b.n > 0
}

func runGroup(f *ir.Func, cfg *Config, nd NDRange, group [3]int64, trace bool,
	prof *Profile, mu *sync.Mutex) error {

	wgSize := nd.WorkGroupSize()
	// Local memory shared by the group.
	locals := make(map[*ir.Alloca][]Val)
	for _, a := range f.Allocas {
		if a.AS == ast.ASLocal {
			locals[a] = make([]Val, a.Count)
		}
	}
	bar := newWGBarrier(int(wgSize))

	wis := make([]*wiState, 0, wgSize)
	for lz := int64(0); lz < nd.Local[2]; lz++ {
		for ly := int64(0); ly < nd.Local[1]; ly++ {
			for lx := int64(0); lx < nd.Local[0]; lx++ {
				gid := [3]int64{
					group[0]*nd.Local[0] + lx,
					group[1]*nd.Local[1] + ly,
					group[2]*nd.Local[2] + lz,
				}
				// Work-items beyond the global size still participate in
				// barriers (OpenCL requires uniform group sizes; our
				// kernels guard with if (gid < n)).
				w := &wiState{
					f: f, cfg: cfg, nd: nd, group: group,
					local: [3]int64{lx, ly, lz}, global: gid,
					locals: locals, bar: bar, trace: trace,
					blockCounts: make(map[*ir.Block]int64),
					mu:          mu,
				}
				wis = append(wis, w)
			}
		}
	}

	var wg sync.WaitGroup
	for _, w := range wis {
		wg.Add(1)
		go func(w *wiState) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ee, ok := r.(execError); ok {
						w.err = ee.err
					} else {
						w.err = fmt.Errorf("interp: panic: %v", r)
					}
					// Release peers stuck at barriers.
					w.bar.abort()
				}
			}()
			w.run()
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// Report the root cause, not the induced group-abort unwinds.
	var aborted error
	for _, w := range wis {
		if w.err != nil {
			if errors.Is(w.err, errGroupAborted) {
				aborted = w.err
				continue
			}
			return w.err
		}
	}
	if aborted != nil {
		return aborted
	}
	for _, w := range wis {
		prof.WorkItems++
		for b, c := range w.blockCounts {
			prof.BlockCounts[b] += float64(c)
		}
		prof.Barriers += float64(w.barriers)
		if trace {
			prof.Traces = append(prof.Traces, w.accesses)
		}
	}
	return nil
}

// abort releases all waiters after a work-item died so the group does not
// deadlock; subsequent waits pass through immediately.
func (b *wgBarrier) abort() {
	b.mu.Lock()
	b.n = 0
	b.phase++
	b.cond.Broadcast()
	b.mu.Unlock()
}

type wiState struct {
	f      *ir.Func
	cfg    *Config
	nd     NDRange
	group  [3]int64
	local  [3]int64
	global [3]int64

	locals map[*ir.Alloca][]Val
	priv   map[*ir.Alloca][]Val
	regs   map[*ir.Instr]Val
	bar    *wgBarrier

	trace       bool
	accesses    []Access
	blockCounts map[*ir.Block]int64
	barriers    int
	mu          *sync.Mutex
	err         error
}

func (w *wiState) fail(format string, args ...any) {
	panic(execError{fmt.Errorf("interp: "+format, args...)})
}

func (w *wiState) run() {
	w.priv = make(map[*ir.Alloca][]Val)
	for _, a := range w.f.Allocas {
		if a.AS != ast.ASLocal {
			w.priv[a] = make([]Val, a.Count)
		}
	}
	w.regs = make(map[*ir.Instr]Val)

	maxSteps := int(profStepLimit) // runaway-loop guard
	steps := 0
	blk := w.f.Entry()
	for blk != nil {
		w.blockCounts[blk]++
		var next *ir.Block
		for _, in := range blk.Instrs {
			steps++
			if steps > maxSteps {
				w.fail("work-item exceeded %d steps (infinite loop?)", maxSteps)
			}
			switch in.Op {
			case ir.OpBr:
				next = in.To
			case ir.OpCondBr:
				if truthy(w.eval(in.Args[0])) {
					next = in.To
				} else {
					next = in.Else
				}
			case ir.OpRet:
				return
			default:
				w.exec(in)
			}
		}
		blk = next
	}
}

func truthy(v Val) bool {
	if v.Vec != nil {
		for _, l := range v.Vec {
			if l.I != 0 || l.F != 0 {
				return true
			}
		}
		return false
	}
	return v.I != 0 || v.F != 0
}

func (w *wiState) eval(v ir.Value) Val {
	switch x := v.(type) {
	case *ir.Const:
		if x.T.Base.IsFloat() {
			return FloatVal(x.F)
		}
		return IntVal(x.I)
	case *ir.Param:
		sv, ok := w.cfg.Scalars[x.PName]
		if !ok {
			w.fail("read of unbound parameter %s", x.PName)
		}
		return sv
	case *ir.Instr:
		return w.regs[x]
	}
	w.fail("unknown value %T", v)
	return Val{}
}
