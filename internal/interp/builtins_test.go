package interp

import (
	"math"
	"testing"

	"repro/internal/opencl/ast"
)

// evalUnary runs a one-argument float builtin through the pipeline.
func evalUnary(t *testing.T, fn string, arg float64) float64 {
	t.Helper()
	k := compileKernel(t, `
__kernel void b(__global float* x) {
    x[0] = `+fn+`(x[1]);
}`, "b")
	x := NewFloatBuffer(ast.KFloat, 2)
	x.F[1] = arg
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	return x.F[0]
}

func TestUnaryMathBuiltins(t *testing.T) {
	cases := []struct {
		fn   string
		arg  float64
		want float64
	}{
		{"sqrt", 9, 3},
		{"native_sqrt", 16, 4},
		{"rsqrt", 4, 0.5},
		{"fabs", -2.5, 2.5},
		{"exp", 0, 1},
		{"native_exp", 1, math.E},
		{"exp2", 3, 8},
		{"log", math.E, 1},
		{"native_log", 1, 0},
		{"log2", 8, 3},
		{"sin", 0, 0},
		{"cos", 0, 1},
		{"tan", 0, 0},
		{"floor", 2.7, 2},
		{"ceil", 2.1, 3},
		{"round", 2.5, 3},
	}
	for _, c := range cases {
		got := evalUnary(t, c.fn, c.arg)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.arg, got, c.want)
		}
	}
}

func TestBinaryAndTernaryBuiltins(t *testing.T) {
	k := compileKernel(t, `
__kernel void b(__global float* x, __global int* y) {
    x[0] = fmod(7.5f, 2.0f);
    x[1] = atan2(1.0f, 1.0f);
    x[2] = hypot(3.0f, 4.0f);
    x[3] = mad(2.0f, 3.0f, 4.0f);
    x[4] = fma(2.0f, 3.0f, -1.0f);
    x[5] = clamp(5.0f, 0.0f, 2.0f);
    y[0] = min(3, 8);
    y[1] = max(3, 8);
    y[2] = clamp(-4, 0, 10);
    y[3] = abs(-9);
    x[6] = select(1.0f, 2.0f, y[1] > 5);
}`, "b")
	x := NewFloatBuffer(ast.KFloat, 8)
	y := NewIntBuffer(ast.KInt, 4)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x, "y": y},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	wantF := []float64{1.5, math.Pi / 4, 5, 10, 5, 2, 2}
	for i, w := range wantF {
		if math.Abs(x.F[i]-w) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, x.F[i], w)
		}
	}
	wantI := []int64{3, 8, 0, 9}
	for i, w := range wantI {
		if y.I[i] != w {
			t.Errorf("y[%d] = %d, want %d", i, y.I[i], w)
		}
	}
}

func TestDotBuiltin(t *testing.T) {
	k := compileKernel(t, `
__kernel void d(__global float4* v, __global float* out) {
    out[0] = dot(v[0], v[1]);
}`, "d")
	v := &Buffer{Elem: ast.Vector(ast.KFloat, 4), F: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	out := NewFloatBuffer(ast.KFloat, 1)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"v": v, "out": out},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if out.F[0] != 5+12+21+32 {
		t.Fatalf("dot = %v, want 70", out.F[0])
	}
}

func TestAllWorkItemQueries(t *testing.T) {
	k := compileKernel(t, `
__kernel void q(__global int* out) {
    int i = get_global_id(0) + get_global_id(1) * get_global_size(0);
    out[i * 8 + 0] = get_global_id(1);
    out[i * 8 + 1] = get_local_id(0);
    out[i * 8 + 2] = get_group_id(0);
    out[i * 8 + 3] = get_global_size(1);
    out[i * 8 + 4] = get_local_size(0);
    out[i * 8 + 5] = get_num_groups(0);
    out[i * 8 + 6] = get_work_dim();
    out[i * 8 + 7] = (int)get_global_offset(0);
}`, "q")
	out := NewIntBuffer(ast.KInt, 8*8)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{4, 2}, Local: [3]int64{2, 2}},
		Buffers: map[string]*Buffer{"out": out},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// Work-item at global (3,1): flat index 3 + 1*4 = 7.
	base := 7 * 8
	checks := map[int]int64{
		base + 0: 1, // global id dim1
		base + 1: 1, // local id (3 % 2)
		base + 2: 1, // group id (3 / 2)
		base + 3: 2, // global size dim1
		base + 4: 2, // local size
		base + 5: 2, // num groups dim0
		base + 6: 2, // work dim (2D launch)
		base + 7: 0, // global offset
	}
	for idx, want := range checks {
		if out.I[idx] != want {
			t.Errorf("out[%d] = %d, want %d", idx, out.I[idx], want)
		}
	}
}

func TestAtomicVariants(t *testing.T) {
	k := compileKernel(t, `
__kernel void a(__global int* x) {
    atomic_sub(x + 0, 3);
    atomic_dec(x + 1);
    atomic_min(x + 2, 5);
    atomic_max(x + 3, 5);
    atomic_xchg(x + 4, 42);
    atomic_cmpxchg(x + 5, 7, 99);
    atomic_cmpxchg(x + 6, 0, 99);
}`, "a")
	x := NewIntBuffer(ast.KInt, 7)
	x.I[0], x.I[1], x.I[2], x.I[3] = 10, 10, 10, 10
	x.I[4], x.I[5], x.I[6] = 10, 7, 10
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 9, 5, 10, 42, 99, 10}
	for i, w := range want {
		if x.I[i] != w {
			t.Errorf("x[%d] = %d, want %d", i, x.I[i], w)
		}
	}
}

func TestConvertBuiltins(t *testing.T) {
	k := compileKernel(t, `
__kernel void c(__global float* x, __global int* y) {
    y[0] = convert_int(x[0]);
    x[1] = convert_float(y[1]);
    y[2] = (int)convert_char(y[3]);
}`, "c")
	x := NewFloatBuffer(ast.KFloat, 2)
	y := NewIntBuffer(ast.KInt, 4)
	x.F[0] = 3.9
	y.I[1] = 7
	y.I[3] = 300 // truncates to char 44
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x, "y": y},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if y.I[0] != 3 || x.F[1] != 7 || y.I[2] != 44 {
		t.Fatalf("converts = %d %v %d, want 3 7 44", y.I[0], x.F[1], y.I[2])
	}
}
