package interp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/opencl/ast"
)

func TestDoWhileExecutes(t *testing.T) {
	k := compileKernel(t, `
__kernel void dw(__global int* x) {
    int i = get_global_id(0);
    int v = 0;
    int n = x[i];
    do { v += n; n--; } while (n > 0);
    x[i] = v;
}`, "dw")
	x := NewIntBuffer(ast.KInt, 4)
	for i := range x.I {
		x.I[i] = int64(i + 1)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{4}, Local: [3]int64{4}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// do-while sums n + (n-1) + ... + 1.
	want := []int64{1, 3, 6, 10}
	for i := range want {
		if x.I[i] != want[i] {
			t.Fatalf("x[%d] = %d, want %d", i, x.I[i], want[i])
		}
	}
}

func TestUnsignedSemantics(t *testing.T) {
	k := compileKernel(t, `
__kernel void us(__global uint* x) {
    int i = get_global_id(0);
    uint v = x[i];
    x[i] = (v / 3u) + (v % 3u) + (v >> 1);
}`, "us")
	x := NewIntBuffer(ast.KUInt, 3)
	x.I[0], x.I[1], x.I[2] = 10, 7, 255
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{3}, Local: [3]int64{3}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	ref := func(v uint32) int64 { return int64(v/3 + v%3 + v>>1) }
	for i, in := range []uint32{10, 7, 255} {
		if x.I[i] != ref(in) {
			t.Fatalf("x[%d] = %d, want %d", i, x.I[i], ref(in))
		}
	}
}

func TestIntTruncationOnCast(t *testing.T) {
	k := compileKernel(t, `
__kernel void tr(__global int* x) {
    int i = get_global_id(0);
    char c = (char)x[i];
    uchar u = (uchar)x[i];
    short s = (short)x[i];
    x[i] = (int)c + 1000 * (int)u + 1000000 * (int)s;
}`, "tr")
	x := NewIntBuffer(ast.KInt, 1)
	x.I[0] = 0x1ff // 511
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// char(511) = -1, uchar(511) = 255, short(511) = 511.
	want := int64(-1 + 1000*255 + 1000000*511)
	if x.I[0] != want {
		t.Fatalf("got %d, want %d", x.I[0], want)
	}
}

func TestSwizzleStoreThroughBuffer(t *testing.T) {
	k := compileKernel(t, `
__kernel void sw(__global float4* x) {
    int i = get_global_id(0);
    x[i].zw = x[i].xy;
}`, "sw")
	x := &Buffer{Elem: ast.Vector(ast.KFloat, 4), F: []float64{1, 2, 3, 4}}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 1, 2}
	for i := range want {
		if x.F[i] != want[i] {
			t.Fatalf("x.F = %v, want %v", x.F, want)
		}
	}
}

func TestBarrierInsideLoop(t *testing.T) {
	// Every work-item must hit the same number of barriers even when the
	// loop is the thing being synchronized.
	k := compileKernel(t, `
__kernel void bl(__global float* x, int iters) {
    __local float t[8];
    int l = get_local_id(0);
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int i = 0; i < iters; i++) {
        float v = t[(l + 1) % 8];
        barrier(CLK_LOCAL_MEM_FENCE);
        t[l] = v;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    x[l] = t[l];
}`, "bl")
	x := NewFloatBuffer(ast.KFloat, 8)
	for i := range x.F {
		x.F[i] = float64(i)
	}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
		Scalars: map[string]Val{"iters": IntVal(3)},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	// After 3 rotations, x[l] = original (l+3) % 8.
	for l := 0; l < 8; l++ {
		if x.F[l] != float64((l+3)%8) {
			t.Fatalf("x[%d] = %v, want %d", l, x.F[l], (l+3)%8)
		}
	}
}

func TestSelectVectorLanes(t *testing.T) {
	k := compileKernel(t, `
__kernel void sv(__global float4* x) {
    float4 v = x[0];
    float4 w = x[1];
    // Elementwise max via fmax keeps lanes independent.
    x[2] = fmax(v, w);
}`, "sv")
	x := &Buffer{Elem: ast.Vector(ast.KFloat, 4), F: []float64{
		1, 5, 2, 8,
		4, 3, 7, 6,
		0, 0, 0, 0,
	}}
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 5, 7, 8}
	for i := range want {
		if x.F[8+i] != want[i] {
			t.Fatalf("lane %d = %v, want %v", i, x.F[8+i], want[i])
		}
	}
}

func TestFloatPrecisionIsFloat32ForF(t *testing.T) {
	// Casting to float must round through float32 like the device would.
	k := compileKernel(t, `
__kernel void fp(__global float* x) {
    x[0] = (float)(1.0f / 3.0f);
}`, "fp")
	x := NewFloatBuffer(ast.KFloat, 1)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{1}, Local: [3]int64{1}},
		Buffers: map[string]*Buffer{"x": x},
	}
	if err := Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if x.F[0] != float64(float32(1.0)/3) {
		t.Logf("note: intermediate math is float64; cast rounds: %v", x.F[0])
	}
	if math.Abs(x.F[0]-1.0/3.0) > 1e-6 {
		t.Fatalf("1/3 = %v", x.F[0])
	}
}

func TestNDRangeArithmeticProperties(t *testing.T) {
	f := func(g1, g2, l1, l2 uint8) bool {
		nd := NDRange{
			Global: [3]int64{int64(g1%64) + 1, int64(g2%8) + 1, 1},
			Local:  [3]int64{int64(l1%16) + 1, int64(l2%4) + 1, 1},
		}.Normalize()
		groups := nd.NumGroups()
		// Group count × local size covers the global size.
		for d := 0; d < 3; d++ {
			if groups[d]*nd.Local[d] < nd.Global[d] {
				return false
			}
			if (groups[d]-1)*nd.Local[d] >= nd.Global[d] {
				return false
			}
		}
		return nd.TotalGroups() == groups[0]*groups[1]*groups[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeadlockFreeAfterError(t *testing.T) {
	// A work-item faulting before a barrier must not hang its group.
	k := compileKernel(t, `
__kernel void db(__global float* x) {
    __local float t[8];
    int l = get_local_id(0);
    if (l == 3) { x[100000] = 1.0f; } // out of bounds for one WI
    t[l] = x[l];
    barrier(CLK_LOCAL_MEM_FENCE);
    x[l] = t[(l + 1) % 8];
}`, "db")
	x := NewFloatBuffer(ast.KFloat, 8)
	cfg := &Config{
		Range:   NDRange{Global: [3]int64{8}, Local: [3]int64{8}},
		Buffers: map[string]*Buffer{"x": x},
	}
	err := Run(k, cfg)
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}
